(* Benchmark and reproduction harness.

   Running this executable regenerates every figure and table of the
   paper's evaluation (paper-vs-measured, Sections 3-6), reports the
   Table 12 implementation-size comparison, and finally runs Bechamel
   micro-benchmarks of the pipeline stages (ELF parsing, disassembly
   and scanning, metric computation, query layer).

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- fig3 table6   # selected experiments
     dune exec bench/main.exe -- --no-micro    # skip Bechamel runs
     dune exec bench/main.exe -- --packages 2000 *)

module Study = Core.Study
module P = Core.Distro.Package

let default_packages = 1400

let parse_args () =
  let ids = ref [] and micro = ref true and packages = ref default_packages in
  let rec go = function
    | [] -> ()
    | "--no-micro" :: rest ->
      micro := false;
      go rest
    | "--packages" :: n :: rest ->
      packages := int_of_string n;
      go rest
    | id :: rest ->
      ids := id :: !ids;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (List.rev !ids, !micro, !packages)

let count_loc () =
  (* Table 12 analogue: measure our own implementation size *)
  let rec walk dir acc =
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if entry = "_build" || entry = ".git" then acc else walk path acc
        else if Filename.check_suffix entry ".ml" then (
          let ic = open_in path in
          let lines = ref 0 in
          (try
             while true do
               ignore (input_line ic);
               incr lines
             done
           with End_of_file -> ());
          close_in ic;
          acc + !lines)
        else acc)
      acc (Sys.readdir dir)
  in
  try walk "." 0 with Sys_error _ -> 0

let print_table12 env =
  let dist = Study.Env.dist env in
  let store = env.Study.Env.store in
  let module R = Core.Report.Render in
  let rows =
    [ [ "source lines (paper: Python)"; "3105";
        string_of_int (count_loc ()) ^ " (OCaml, this repo)" ];
      [ "source lines (paper: SQL)"; "2423"; "0 (in-memory store)" ];
      [ "packages scanned"; "30976"; string_of_int (P.n_packages dist) ];
      [ "binaries analyzed"; "66275";
        string_of_int (List.length store.Core.Db.Store.bins) ];
      [ "installations (popcon)"; "2935744";
        string_of_int dist.P.total_installs ] ]
  in
  print_string
    (R.section ~title:"Table 12: implementation and corpus size"
       (R.table ~header:[ "metric"; "paper"; "this reproduction" ] rows))

let run_micro env =
  let open Bechamel in
  let dist = Study.Env.dist env in
  let store = env.Study.Env.store in
  let some_exe =
    List.find
      (fun (f : P.file) -> f.P.kind = P.Executable)
      (P.all_files dist)
  in
  let libc_bytes = List.assoc "libc.so.6" dist.P.runtime in
  let ranking = env.Study.Env.ranking in
  let tests =
    [ Test.make ~name:"elf-parse-exe" (Staged.stage (fun () ->
          Core.Elf.Reader.parse some_exe.P.bytes));
      Test.make ~name:"elf-parse-libc" (Staged.stage (fun () ->
          Core.Elf.Reader.parse libc_bytes));
      Test.make ~name:"disasm+scan-exe" (Staged.stage (fun () ->
          match Core.Elf.Reader.parse some_exe.P.bytes with
          | Ok img -> ignore (Core.Analysis.Binary.analyze img)
          | Error _ -> ()));
      Test.make ~name:"importance-all-syscalls" (Staged.stage (fun () ->
          ignore (Core.Metrics.Importance.syscall_importances store)));
      Test.make ~name:"rank-syscalls" (Staged.stage (fun () ->
          ignore (Core.Metrics.Importance.rank_syscalls store)));
      Test.make ~name:"completeness-curve" (Staged.stage (fun () ->
          ignore (Core.Metrics.Completeness.curve store ~ranking)));
      Test.make ~name:"weighted-completeness-top145" (Staged.stage (fun () ->
          let top = List.filteri (fun i _ -> i < 145) ranking in
          ignore (Core.Metrics.Completeness.of_syscall_set store top)));
      Test.make ~name:"uniqueness-stats" (Staged.stage (fun () ->
          ignore (Core.Metrics.Uniqueness.of_store store))) ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~quota ~kde:(Some 100) ())
      [ Toolkit.Instance.monotonic_clock ]
      test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  print_string "\n=============================\n";
  print_string "| Bechamel micro-benchmarks |\n";
  print_string "=============================\n";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-32s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        results)
    tests

let () =
  let ids, micro, packages = parse_args () in
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "Building the synthetic distribution (%d packages) and running the \
     full analysis pipeline...\n%!"
    packages;
  let env =
    Study.Env.create
      ~config:
        { Core.Distro.Generator.default_config with n_packages = packages }
      ()
  in
  Printf.printf "Pipeline complete in %.1fs.\n%!" (Unix.gettimeofday () -. t0);
  let mismatches = Core.Db.Pipeline.spot_check env.Study.Env.analyzed in
  Printf.printf
    "Spot check (Section 2.3): %d package footprint mismatches between \
     static analysis and ground truth.\n"
    (List.length mismatches);
  let selected =
    match ids with
    | [] -> Study.Experiments.all
    | ids -> List.filter_map Study.Experiments.find ids
  in
  List.iter
    (fun (x : Study.Experiments.t) ->
      print_string (x.Study.Experiments.render env);
      print_newline ())
    selected;
  if ids = [] then print_table12 env;
  if micro then run_micro env
