(* lapis — Linux API study CLI.

   Subcommands:
     generate   synthesize the distribution and write its binaries to disk
     analyze    run the pipeline and dump importance rankings
     report     regenerate a figure/table of the paper (or all of them)
     footprint  analyze a single ELF file and print its API footprint
     seccomp    emit a seccomp allow-list for an ELF file
     compat     weighted completeness of a user-provided syscall list *)

open Cmdliner
module Study = Core.Study
module P = Core.Distro.Package

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

let packages_arg =
  let doc = "Number of packages in the synthetic distribution." in
  Arg.(value & opt int 1400 & info [ "p"; "packages" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Generator seed (the distribution is deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let config packages seed =
  { Core.Distro.Generator.default_config with n_packages = packages; seed }

let make_env packages seed =
  setup_logs ();
  Printf.eprintf "# generating %d packages (seed %d) and analyzing...\n%!"
    packages seed;
  Study.Env.create ~config:(config packages seed) ()

(* --- generate ---------------------------------------------------------- *)

let generate_cmd =
  let out_arg =
    let doc = "Directory to write the distribution into." in
    Arg.(value & opt string "_distro" & info [ "o"; "output" ] ~docv:"DIR" ~doc)
  in
  let run packages seed out =
    setup_logs ();
    let dist = Core.Distro.Generator.generate ~config:(config packages seed) () in
    let write path bytes =
      let path = Filename.concat out path in
      let rec mkdirs d =
        if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
          mkdirs (Filename.dirname d);
          Sys.mkdir d 0o755
        end
      in
      mkdirs (Filename.dirname path);
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc
    in
    List.iter
      (fun (soname, bytes) -> write ("lib/" ^ soname) bytes)
      dist.P.runtime;
    List.iter
      (fun (pkg : P.t) ->
        List.iter
          (fun (f : P.file) ->
            write (Filename.concat pkg.P.name f.P.path) f.P.bytes)
          pkg.P.files)
      dist.P.packages;
    Printf.printf "wrote %d packages (%d files) under %s\n"
      (P.n_packages dist)
      (List.length (P.all_files dist))
      out
  in
  let doc = "Synthesize the calibrated distribution and write it to disk." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ out_arg)

(* --- report ------------------------------------------------------------ *)

let report_cmd =
  let ids_arg =
    let doc =
      "Experiment identifiers (fig1..fig8, table1..table7, table8..table11, \
       section6, ablations). Defaults to all."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run packages seed ids =
    let env = make_env packages seed in
    let selected =
      match ids with
      | [] -> Study.Experiments.all
      | ids ->
        List.map
          (fun id ->
            match Study.Experiments.find id with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %s; known: %s\n" id
                (String.concat " " Study.Experiments.ids);
              exit 2)
          ids
    in
    List.iter
      (fun (e : Study.Experiments.t) ->
        print_string (e.Study.Experiments.render env))
      selected
  in
  let doc = "Regenerate figures and tables of the paper's evaluation." in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ ids_arg)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let top_arg =
    let doc = "How many ranking rows to print." in
    Arg.(value & opt int 50 & info [ "top" ] ~docv:"N" ~doc)
  in
  let run packages seed top =
    let env = make_env packages seed in
    let store = env.Study.Env.store in
    Printf.printf "%-4s %-22s %-10s %-10s\n" "rank" "system call"
      "importance" "unweighted";
    List.iteri
      (fun i nr ->
        if i < top then
          Printf.printf "%-4d %-22s %-10.4f %-10.4f\n" (i + 1)
            (Core.Apidb.Syscall_table.name_of_nr nr)
            (Core.Metrics.Importance.importance store
               (Core.Apidb.Api.Syscall nr))
            (Core.Metrics.Importance.unweighted store
               (Core.Apidb.Api.Syscall nr)))
      env.Study.Env.ranking
  in
  let doc = "Print the system call importance ranking." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ top_arg)

(* --- footprint / seccomp ------------------------------------------------ *)

let elf_arg =
  let doc = "An ELF file produced by $(b,lapis generate)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"ELF" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

let with_world packages seed f =
  setup_logs ();
  let dist = Core.Distro.Generator.generate ~config:(config packages seed) () in
  let analyze_elf bytes =
    match Core.Elf.Reader.parse bytes with
    | Ok img -> Some (Core.Analysis.Binary.analyze img)
    | Error _ -> None
  in
  let runtime_sonames = List.map fst dist.P.runtime in
  let libs =
    List.filter_map
      (fun (soname, bytes) ->
        Option.map (fun b -> (soname, b)) (analyze_elf bytes))
      dist.P.runtime
    @ List.filter_map
        (fun (soname, _, bytes) ->
          Option.map (fun b -> (soname, b)) (analyze_elf bytes))
        dist.P.shared_libs
  in
  let ld_so = List.assoc_opt "ld-linux-x86-64.so.2" libs in
  let world =
    Core.Analysis.Resolve.make_world ?ld_so
      ~libc_family:(fun s -> List.mem s runtime_sonames)
      libs
  in
  f world

let footprint_of_file world path =
  match Core.Elf.Reader.parse (read_file path) with
  | Error e ->
    Printf.eprintf "cannot parse %s: %s\n" path
      (Fmt.str "%a" Core.Elf.Reader.pp_error e);
    exit 1
  | Ok img ->
    let bin = Core.Analysis.Binary.analyze img in
    Core.Analysis.Resolve.binary_footprint world bin

let footprint_cmd =
  let run packages seed path =
    with_world packages seed (fun world ->
        let fp = footprint_of_file world path in
        Printf.printf "# footprint of %s\n" path;
        List.iter
          (fun nr ->
            Printf.printf "syscall %-22s (%d)\n"
              (Core.Apidb.Syscall_table.name_of_nr nr)
              nr)
          (Core.Analysis.Footprint.syscalls fp);
        List.iter
          (fun (v, code) ->
            Printf.printf "vop     %s\n" (Core.Apidb.Vectored.name v code))
          (Core.Analysis.Footprint.vops fp);
        List.iter
          (fun p -> Printf.printf "pseudo  %s\n" p)
          (Core.Analysis.Footprint.pseudo_files fp))
  in
  let doc = "Print the resolved API footprint of one ELF binary." in
  Cmd.v
    (Cmd.info "footprint" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ elf_arg)

let seccomp_cmd =
  let run packages seed path =
    with_world packages seed (fun world ->
        let fp = footprint_of_file world path in
        print_endline
          (Core.Metrics.Uniqueness.seccomp_policy
             fp.Core.Analysis.Footprint.apis))
  in
  let doc = "Emit a seccomp-bpf allow-list for one ELF binary (Section 6)." in
  Cmd.v
    (Cmd.info "seccomp" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ elf_arg)

(* --- compat ------------------------------------------------------------- *)

let compat_cmd =
  let syscalls_arg =
    let doc =
      "System call names (or numbers) the prototype supports; pass \
       $(b,top:N) for the N most important."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"SYSCALL" ~doc)
  in
  let run packages seed names =
    let env = make_env packages seed in
    let nrs =
      List.concat_map
        (fun s ->
          match String.index_opt s ':' with
          | Some i when String.sub s 0 i = "top" ->
            let n =
              int_of_string (String.sub s (i + 1) (String.length s - i - 1))
            in
            List.filteri (fun j _ -> j < n) env.Study.Env.ranking
          | _ ->
            (match int_of_string_opt s with
             | Some nr -> [ nr ]
             | None ->
               (match Core.Apidb.Syscall_table.nr_of_name s with
                | Some nr -> [ nr ]
                | None ->
                  Printf.eprintf "unknown system call %s\n" s;
                  exit 2)))
        names
    in
    let c = Core.Metrics.Completeness.of_syscall_set env.Study.Env.store nrs in
    Printf.printf
      "supporting %d system calls -> weighted completeness %.2f%%\n"
      (List.length (List.sort_uniq compare nrs))
      (100.0 *. c)
  in
  let doc =
    "Weighted completeness of a prototype supporting the given syscalls."
  in
  Cmd.v
    (Cmd.info "compat" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ syscalls_arg)

let () =
  let doc =
    "reproduction of the EuroSys'16 study of Linux API usage and \
     compatibility"
  in
  let info = Cmd.info "lapis" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; report_cmd; analyze_cmd; footprint_cmd;
            seccomp_cmd; compat_cmd ]))
