examples/compat_eval.ml: Core List Printf
