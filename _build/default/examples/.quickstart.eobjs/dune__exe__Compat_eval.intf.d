examples/compat_eval.mli:
