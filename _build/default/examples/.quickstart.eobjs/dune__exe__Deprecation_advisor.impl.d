examples/deprecation_advisor.ml: Core List Printf String
