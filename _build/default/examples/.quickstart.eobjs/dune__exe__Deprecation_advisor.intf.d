examples/deprecation_advisor.mli:
