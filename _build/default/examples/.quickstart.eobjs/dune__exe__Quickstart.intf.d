examples/quickstart.mli:
