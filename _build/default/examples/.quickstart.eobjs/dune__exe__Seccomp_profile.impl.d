examples/seccomp_profile.ml: Core List Printf
