examples/seccomp_profile.mli:
