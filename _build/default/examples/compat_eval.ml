(* Section 4 application: evaluating a prototype's compatibility.

   Suppose you are building a new library OS. Given the list of system
   calls you have implemented so far, weighted completeness tells you
   what fraction of a typical installation's packages would run, and
   API importance tells you which missing call unlocks the most users
   next — the exact workflow the paper proposes for systems builders.

     dune exec examples/compat_eval.exe *)

module Api = Core.Apidb.Api
module Syscalls = Core.Apidb.Syscall_table
module Completeness = Core.Metrics.Completeness

(* the calls our imaginary prototype supports today: roughly stage I
   plus some file-system work *)
let my_prototype =
  Core.Apidb.Stages.stage1
  @ [ "ioctl"; "access"; "socket"; "poll"; "pipe"; "dup"; "select";
      "unlink"; "wait4"; "chdir"; "mkdir"; "rename"; "readlink";
      "nanosleep"; "gettimeofday"; "umask"; "connect"; "recvmsg";
      "sched_setscheduler"; "sched_setparam"; "sched_getscheduler" ]

let () =
  let env =
    Core.Study.Env.create
      ~config:{ Core.Distro.Generator.default_config with n_packages = 400 }
      ()
  in
  let store = env.Core.Study.Env.store in
  let supported = List.map Syscalls.nr_of_name_exn my_prototype in
  Printf.printf "prototype supports %d system calls\n"
    (List.length (List.sort_uniq compare supported));
  Printf.printf "weighted completeness: %.2f%%\n\n"
    (100. *. Completeness.of_syscall_set store supported);

  (* which additions pay off most? walk the global importance ranking
     and report the first missing calls together with the completeness
     each one would unlock *)
  print_endline "most valuable missing system calls:";
  let missing =
    List.filter (fun nr -> not (List.mem nr supported)) env.Core.Study.Env.ranking
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  List.iter
    (fun nr ->
      let with_it = Completeness.of_syscall_set store (nr :: supported) in
      Printf.printf "  + %-20s -> %.2f%%\n" (Syscalls.name_of_nr nr)
        (100. *. with_it))
    (take 10 missing);

  (* and the big picture: add missing calls in ranking order *)
  print_endline "\nincremental path (adding calls in importance order):";
  let acc = ref supported in
  List.iteri
    (fun i nr ->
      acc := nr :: !acc;
      if (i + 1) mod 25 = 0 then
        Printf.printf "  +%3d calls -> %.2f%%\n" (i + 1)
          (100. *. Completeness.of_syscall_set store !acc))
    (take 150 missing)
