(* Sections 3.1/5 application: deprecation advice for kernel
   maintainers.

   The paper argues OS developers lack tools to tell which interfaces
   can be retired cheaply and which secure replacements are failing to
   gain adoption. This example walks the measured data and produces a
   concrete advisory: calls that are safe to retire, calls whose only
   users are one or two packages (talk to those maintainers), and
   insecure variants still dominating their secure replacements.

     dune exec examples/deprecation_advisor.exe *)

module Api = Core.Apidb.Api
module Syscalls = Core.Apidb.Syscall_table
module Importance = Core.Metrics.Importance
module Variants = Core.Apidb.Variants

let () =
  let env =
    Core.Study.Env.create
      ~config:{ Core.Distro.Generator.default_config with n_packages = 400 }
      ()
  in
  let store = env.Core.Study.Env.store in

  (* 1. retire for free: no observed users at all *)
  print_endline "== safe to retire (no observed users) ==";
  List.iter
    (fun (r : Core.Study.Table3.row) ->
      Printf.printf "  %-20s %s\n" r.Core.Study.Table3.syscall
        r.Core.Study.Table3.reason)
    (Core.Study.Table3.run env);

  (* 2. retire with outreach: one or two dependent packages *)
  print_endline "\n== retire after contacting the maintainers of ==";
  List.iter
    (fun (r : Core.Study.Table2.row) ->
      Printf.printf "  %-20s -> %s\n" r.Core.Study.Table2.syscall
        (String.concat ", " r.Core.Study.Table2.packages))
    (List.filteri (fun i _ -> i < 10) (Core.Study.Table2.run env));

  (* 3. security campaigns: insecure variants still dominating *)
  print_endline "\n== secure replacements failing to gain adoption ==";
  List.iter
    (fun (f : Variants.family) ->
      let measured m =
        Importance.unweighted store (Syscalls.api_of_name m.Variants.syscall)
      in
      let insecure =
        List.filter (fun m -> m.Variants.role = Variants.Insecure)
          f.Variants.members
      and secure =
        List.filter (fun m -> m.Variants.role = Variants.Secure)
          f.Variants.members
      in
      match (insecure, secure) with
      | i :: _, s :: _ when measured i > 2.0 *. measured s ->
        Printf.printf "  %-24s %-12s %5.1f%%  vs  %-12s %5.1f%%\n"
          f.Variants.title i.Variants.syscall
          (100. *. measured i)
          s.Variants.syscall
          (100. *. measured s)
      | _ -> ())
    (Variants.with_category Variants.Directory_races
     @ Variants.with_category Variants.Id_management);

  (* 4. and the good news: replacements that worked *)
  print_endline "\n== replacements that did take hold ==";
  List.iter
    (fun (old_name, new_name) ->
      let u n = 100. *. Importance.unweighted store (Syscalls.api_of_name n) in
      if u new_name > u old_name then
        Printf.printf "  %-12s %5.1f%%  overtaken by  %-12s %5.1f%%\n"
          old_name (u old_name) new_name (u new_name))
    [ ("fork", "clone"); ("tkill", "tgkill"); ("utime", "utimes");
      ("signal", "rt_sigaction") ]
