(* Quickstart: build a small synthetic distribution, run the full
   static-analysis pipeline on its binaries, and ask the two headline
   questions of the paper — how important is each system call, and how
   complete would a prototype OS be after implementing the N most
   important ones?

     dune exec examples/quickstart.exe *)

module Api = Core.Apidb.Api
module Syscalls = Core.Apidb.Syscall_table

let () =
  (* 1. A complete study environment: synthesize packages as real ELF
     binaries, disassemble and analyze every one of them, aggregate
     footprints, and join with popularity-contest installation data. *)
  let env =
    Core.Study.Env.create
      ~config:{ Core.Distro.Generator.default_config with n_packages = 400 }
      ()
  in
  let store = env.Core.Study.Env.store in

  (* 2. API importance (Section 2.1): the probability that a random
     installation contains software requiring the call. *)
  print_endline "Some system calls are more equal than others:";
  List.iter
    (fun name ->
      let api = Api.Syscall (Syscalls.nr_of_name_exn name) in
      Printf.printf "  %-16s importance %6.2f%%   used by %5.2f%% of packages\n"
        name
        (100. *. Core.Metrics.Importance.importance store api)
        (100. *. Core.Metrics.Importance.unweighted store api))
    [ "read"; "ioctl"; "getxattr"; "kexec_load"; "mq_notify" ];

  (* 3. Weighted completeness (Section 2.2): what fraction of a typical
     installation works on a system supporting only N calls? *)
  print_endline "\nThe road from \"hello world\" to qemu (Figure 3):";
  List.iter
    (fun n ->
      let top = List.filteri (fun i _ -> i < n) env.Core.Study.Env.ranking in
      Printf.printf "  top %-3d system calls -> %6.2f%% of installs work\n" n
        (100. *. Core.Metrics.Completeness.of_syscall_set store top))
    [ 40; 81; 145; 202; 272 ];

  (* 4. Render a full figure exactly as the bench harness does. *)
  print_string
    (Core.Study.Fig2.render (Core.Study.Fig2.run env))
