(* Section 6 application: automatic seccomp policy generation.

   The paper observes that a third of all applications have a unique
   system call footprint, and that footprints can drive automatic
   sandbox policies. This example analyzes a few applications from the
   synthetic distribution, prints how tight each allow-list is, and
   emits the full policy for the most interesting one.

     dune exec examples/seccomp_profile.exe *)

module P = Core.Distro.Package
module Store = Core.Db.Store
module Footprint = Core.Analysis.Footprint

let () =
  let analyzed =
    Core.Db.Pipeline.run
      (Core.Distro.Generator.generate
         ~config:{ Core.Distro.Generator.default_config with n_packages = 400 }
         ())
  in
  let store = analyzed.Core.Db.Pipeline.store in

  (* overall uniqueness statistics first *)
  let stats = Core.Metrics.Uniqueness.of_store store in
  Printf.printf
    "%d applications analyzed; %d distinct syscall footprints, %d unique\n\n"
    stats.Core.Metrics.Uniqueness.applications
    stats.Core.Metrics.Uniqueness.distinct_footprints
    stats.Core.Metrics.Uniqueness.unique_footprints;

  (* policies for a few well-known binaries *)
  let interesting = [ "/usr/bin/qemu"; "/usr/bin/kexec-tools"; "/usr/bin/grep" ] in
  let bins =
    List.filter
      (fun (b : Store.bin_row) -> List.mem b.Store.br_path interesting)
      store.Store.bins
  in
  List.iter
    (fun (b : Store.bin_row) ->
      let fp = b.Store.br_resolved in
      Printf.printf "%-28s allow-list size: %d syscalls, %d ioctl codes\n"
        b.Store.br_path
        (List.length (Footprint.syscalls fp))
        (List.length
           (List.filter
              (fun (v, _) -> v = Core.Apidb.Api.Ioctl)
              (Footprint.vops fp))))
    bins;

  (* the tightest policy in full *)
  match
    List.find_opt
      (fun (b : Store.bin_row) -> b.Store.br_path = "/usr/bin/kexec-tools")
      store.Store.bins
  with
  | None -> print_endline "kexec-tools not found in this distribution"
  | Some b ->
    Printf.printf "\nfull policy for %s:\n%s\n" b.Store.br_path
      (Core.Metrics.Uniqueness.seccomp_policy
         b.Store.br_resolved.Footprint.apis)
