lib/analysis/binary.ml: Footprint Hashtbl Image Int Int32 Lapis_apidb Lapis_elf Lapis_x86 List Map Scan String
