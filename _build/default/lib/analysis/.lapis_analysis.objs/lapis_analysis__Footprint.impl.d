lib/analysis/footprint.ml: Api Fmt Lapis_apidb List Set String
