lib/analysis/footprint.mli: Api Format Lapis_apidb Set
