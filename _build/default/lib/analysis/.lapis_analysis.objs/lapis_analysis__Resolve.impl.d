lib/analysis/resolve.ml: Api Binary Footprint Hashtbl Lapis_apidb Lapis_elf List Scan
