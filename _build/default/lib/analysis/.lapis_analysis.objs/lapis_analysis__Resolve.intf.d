lib/analysis/resolve.mli: Binary Footprint Hashtbl
