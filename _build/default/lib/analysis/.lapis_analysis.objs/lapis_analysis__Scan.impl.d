lib/analysis/scan.ml: Api Footprint Insn Int32 Int64 Lapis_apidb Lapis_x86 List Map Option Pseudo_files
