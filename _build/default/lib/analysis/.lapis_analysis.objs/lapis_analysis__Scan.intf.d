lib/analysis/scan.mli: Footprint Lapis_x86
