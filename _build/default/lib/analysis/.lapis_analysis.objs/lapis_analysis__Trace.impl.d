lib/analysis/trace.ml: Api Binary Decode Footprint Hashtbl Insn Int32 Int64 Lapis_apidb Lapis_elf Lapis_x86 Map Option Pseudo_files Resolve Scan
