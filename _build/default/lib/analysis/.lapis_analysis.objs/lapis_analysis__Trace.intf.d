lib/analysis/trace.mli: Api Binary Footprint Lapis_apidb Resolve
