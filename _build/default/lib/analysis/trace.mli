(** Dynamic system call tracing — the strace analogue (Section 2.3).

    Executes a binary by interpreting the decoded instruction stream:
    concrete register file, call stack, cross-library control
    transfers through the PLT. Records every system call, vectored
    opcode, pseudo-file reference and symbol import the program
    actually performs along its (single, concrete) execution path. *)

open Lapis_apidb

type limits = { max_steps : int; max_depth : int }

val default_limits : limits

type outcome =
  | Finished  (** the program returned from its entry point *)
  | Step_limit
  | Depth_limit
  | Wild_jump of int  (** control reached an address outside any code *)

type result = {
  footprint : Footprint.t;  (** everything observed during execution *)
  steps : int;  (** instructions executed *)
  outcome : outcome;
}

val run : ?limits:limits -> Resolve.world -> Binary.t -> result
(** Execute [bin] from its entry point within [world]'s shared
    libraries. *)

val static_misses : Resolve.world -> Binary.t -> Api.Set.t
(** The paper's spot-check containment, inverted: system calls,
    pseudo-files and libc symbols observed dynamically that static
    analysis failed to predict (expected: empty). Vectored opcodes are
    excluded from the comparison — a concrete run can issue a vectored
    call with whatever value the opcode register happens to hold,
    which is input-dependent and invisible to any static analysis. *)
