lib/apidb/api.ml: Fmt Hashtbl Map Set Stdlib
