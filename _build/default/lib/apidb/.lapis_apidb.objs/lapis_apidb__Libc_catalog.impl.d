lib/apidb/libc_catalog.ml: Api Float Hashtbl List Option String Vectored
