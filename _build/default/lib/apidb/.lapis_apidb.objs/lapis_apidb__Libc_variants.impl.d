lib/apidb/libc_variants.ml: Hashtbl Libc_catalog List Option String
