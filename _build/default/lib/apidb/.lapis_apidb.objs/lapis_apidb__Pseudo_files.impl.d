lib/apidb/pseudo_files.ml: Api Hashtbl List String
