lib/apidb/stages.ml: Hashtbl List Printf Syscall_table
