lib/apidb/syscall_table.ml: Api Array Hashtbl List Printf
