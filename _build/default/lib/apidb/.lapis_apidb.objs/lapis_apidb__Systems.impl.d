lib/apidb/systems.ml: List Syscall_table
