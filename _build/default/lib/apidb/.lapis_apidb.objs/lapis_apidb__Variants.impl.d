lib/apidb/variants.ml: Hashtbl List
