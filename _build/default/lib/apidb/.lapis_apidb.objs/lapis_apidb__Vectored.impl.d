lib/apidb/vectored.ml: Api Hashtbl List Printf
