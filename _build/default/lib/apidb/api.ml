(** Identity of a system API, in the broad sense used by the study:
    system calls, vectored system call opcodes (ioctl/fcntl/prctl),
    pseudo-files under /proc, /dev and /sys, and libc exports. *)

type vector = Ioctl | Fcntl | Prctl

type t =
  | Syscall of int  (** x86-64 system call number *)
  | Vop of vector * int  (** operation code of a vectored system call *)
  | Pseudo_file of string  (** hard-coded pseudo-file path, normalized *)
  | Libc_sym of string  (** dynamic symbol exported by the C library *)

let vector_name = function Ioctl -> "ioctl" | Fcntl -> "fcntl" | Prctl -> "prctl"

let vector_syscall_nr = function Ioctl -> 16 | Fcntl -> 72 | Prctl -> 157

let vector_of_syscall_nr = function
  | 16 -> Some Ioctl
  | 72 -> Some Fcntl
  | 157 -> Some Prctl
  | _ -> None

let compare = Stdlib.compare
let equal a b = compare a b = 0

let hash = Hashtbl.hash

let pp ppf = function
  | Syscall nr -> Fmt.pf ppf "syscall:%d" nr
  | Vop (v, code) -> Fmt.pf ppf "%s:0x%x" (vector_name v) code
  | Pseudo_file path -> Fmt.pf ppf "file:%s" path
  | Libc_sym name -> Fmt.pf ppf "libc:%s" name

let to_string t = Fmt.str "%a" pp t

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)
