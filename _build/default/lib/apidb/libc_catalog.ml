(** Catalogue of the function symbols exported by the GNU C library
    family (libc, libpthread, librt, libdl and the dynamic linker), as
    studied in Sections 3.5 and 4.2. The paper measures 1,274 global
    function symbols in GNU libc 2.21; this catalogue models that
    export surface with real symbol names, grouped by subsystem.

    Groups are ordered by expected popularity. Importance tiers are
    assigned by cumulative rank so that the tier population matches
    Figure 7: 42.8% of exports at ~100% importance, 50.6% below 50%,
    and 39.7% below 1% (including a fully unused tail).

    Each export also records which system calls and vectored opcodes
    its implementation can issue; the synthetic libc binaries are
    assembled from exactly this information, so the static analyzer
    discovers these footprints from machine code, not from this
    table. *)

type lib = Libc | Libpthread | Librt | Libdl | Ld_so

let lib_soname = function
  | Libc -> "libc.so.6"
  | Libpthread -> "libpthread.so.0"
  | Librt -> "librt.so.1"
  | Libdl -> "libdl.so.2"
  | Ld_so -> "ld-linux-x86-64.so.2"

type tier =
  | Ubiquitous  (** ~100% API importance *)
  | High  (** 50-99% *)
  | Medium  (** 1-50% *)
  | Rare  (** below 1%, but used *)
  | Unused  (** exported yet referenced by no package *)

type entry = {
  name : string;
  lib : lib;
  tier : tier;
  syscalls : string list;  (** syscall names the implementation issues *)
  vops : (Api.vector * int) list;  (** vectored opcodes it requests *)
  size : int;  (** modelled code size in bytes, for Section 3.5 *)
  chk_of : string option;  (** fortified variant of this base symbol *)
}

(* ------------------------------------------------------------------ *)
(* Symbol groups, ordered by expected popularity (most popular first) *)
(* ------------------------------------------------------------------ *)

let runtime_startup =
  [ "__libc_start_main"; "__cxa_atexit"; "__cxa_finalize"; "abort";
    "exit"; "_exit"; "atexit"; "on_exit"; "__errno_location";
    "__stack_chk_fail"; "__assert_fail"; "__assert_perror_fail";
    "__fortify_fail"; "__chk_fail"; "__libc_current_sigrtmin";
    "__libc_current_sigrtmax"; "__sched_cpucount"; "__sched_cpualloc";
    "__sched_cpufree"; "__cxa_thread_atexit_impl" ]

let memory =
  [ "malloc"; "calloc"; "realloc"; "free"; "cfree"; "memalign";
    "posix_memalign"; "aligned_alloc"; "valloc"; "pvalloc"; "mallopt";
    "mallinfo"; "malloc_stats"; "malloc_trim"; "malloc_usable_size";
    "malloc_info"; "brk"; "sbrk" ]

let string_fns =
  [ "memcpy"; "memmove"; "memset"; "memcmp"; "memchr"; "memrchr";
    "rawmemchr"; "mempcpy"; "strcpy"; "strncpy"; "strcat"; "strncat";
    "strcmp"; "strncmp"; "strcasecmp"; "strncasecmp"; "strchr";
    "strrchr"; "strchrnul"; "strstr"; "strcasestr"; "strlen";
    "strnlen"; "strdup"; "strndup"; "strtok"; "strtok_r"; "strsep";
    "strspn"; "strcspn"; "strpbrk"; "strcoll"; "strxfrm"; "strerror";
    "strerror_r"; "strerror_l"; "strsignal"; "stpcpy"; "stpncpy";
    "strfry"; "memfrob"; "basename"; "dirname"; "index"; "rindex";
    "bcopy"; "bzero"; "bcmp"; "ffs"; "ffsl"; "ffsll"; "strverscmp";
    "strcoll_l"; "strxfrm_l"; "strcasecmp_l"; "strncasecmp_l" ]

let ctype =
  [ "isalpha"; "isdigit"; "isalnum"; "isspace"; "isupper"; "islower";
    "ispunct"; "isprint"; "isgraph"; "iscntrl"; "isxdigit"; "isblank";
    "isascii"; "toascii"; "toupper"; "tolower"; "__ctype_b_loc";
    "__ctype_tolower_loc"; "__ctype_toupper_loc"; "isalpha_l";
    "isdigit_l"; "isalnum_l"; "isspace_l"; "isupper_l"; "islower_l";
    "ispunct_l"; "isprint_l"; "isxdigit_l"; "toupper_l"; "tolower_l" ]

let stdio_core =
  [ "printf"; "fprintf"; "sprintf"; "snprintf"; "vprintf"; "vfprintf";
    "vsprintf"; "vsnprintf"; "asprintf"; "vasprintf"; "dprintf";
    "vdprintf"; "scanf"; "fscanf"; "sscanf"; "vscanf"; "vfscanf";
    "vsscanf"; "fopen"; "fdopen"; "freopen"; "fclose"; "fflush";
    "fread"; "fwrite"; "fgetc"; "fgets"; "fputc"; "fputs"; "getc";
    "putc"; "getchar"; "putchar"; "gets"; "puts"; "ungetc"; "fseek";
    "ftell"; "rewind"; "fseeko"; "ftello"; "fgetpos"; "fsetpos";
    "clearerr"; "feof"; "ferror"; "fileno"; "setbuf"; "setvbuf";
    "setbuffer"; "setlinebuf"; "perror"; "getline"; "getdelim";
    "popen"; "pclose"; "tmpfile"; "tmpnam"; "tempnam"; "ctermid";
    "remove"; "fopen64"; "freopen64"; "tmpfile64" ]

let conversion_core =
  [ "atoi"; "atol"; "atoll"; "atof"; "strtol"; "strtoul"; "strtoll";
    "strtoull"; "strtod"; "strtof"; "strtold"; "strtoimax";
    "strtoumax"; "strtoq"; "strtouq"; "abs"; "labs"; "llabs"; "div";
    "ldiv"; "lldiv"; "imaxabs"; "imaxdiv" ]

let fd_io_core =
  [ "open"; "open64"; "openat"; "openat64"; "creat"; "creat64";
    "close"; "read"; "write"; "pread"; "pwrite"; "pread64";
    "pwrite64"; "readv"; "writev"; "preadv"; "pwritev"; "lseek";
    "lseek64"; "dup"; "dup2";
    "dup3"; "pipe"; "pipe2"; "fcntl"; "ioctl"; "fsync"; "fdatasync";
    "ftruncate"; "ftruncate64"; "truncate"; "truncate64"; "select";
    "pselect"; "poll"; "ppoll"; "flock"; "lockf"; "lockf64";
    "isatty"; "sync"; "syncfs" ]

let fs_core =
  [ "stat"; "fstat"; "lstat"; "stat64"; "fstat64"; "lstat64";
    "__xstat"; "__fxstat"; "__lxstat"; "__xstat64"; "__fxstat64";
    "__lxstat64"; "__fxstatat"; "__fxstatat64"; "access"; "faccessat";
    "euidaccess"; "eaccess"; "chmod"; "fchmod"; "fchmodat"; "chown";
    "fchown"; "lchown"; "fchownat"; "umask"; "mkdir"; "mkdirat";
    "rmdir"; "rename"; "renameat"; "link"; "linkat"; "symlink";
    "symlinkat"; "unlink"; "unlinkat"; "readlink"; "readlinkat";
    "mknod"; "mknodat"; "mkfifo"; "mkfifoat"; "chdir"; "fchdir";
    "getcwd"; "get_current_dir_name"; "getwd"; "chroot"; "realpath";
    "canonicalize_file_name"; "pathconf"; "fpathconf"; "statfs";
    "fstatfs"; "statfs64"; "fstatfs64"; "statvfs"; "fstatvfs";
    "utime"; "utimes"; "futimes"; "lutimes"; "futimens"; "utimensat";
    "mkstemp"; "mkstemp64"; "mkstemps"; "mkostemp"; "mkdtemp";
    "mktemp" ]

let process_core =
  [ "fork"; "vfork"; "execve"; "execv"; "execvp"; "execvpe"; "execl";
    "execlp"; "execle"; "fexecve"; "wait"; "waitpid"; "wait3";
    "wait4"; "waitid"; "system"; "getpid"; "getppid"; "getpgid";
    "setpgid"; "getpgrp"; "setpgrp"; "setsid"; "getsid"; "nice";
    "getpriority"; "setpriority"; "sched_yield"; "getuid"; "geteuid";
    "getgid"; "getegid"; "setuid"; "seteuid"; "setgid"; "setegid";
    "setreuid"; "setregid"; "setresuid"; "setresgid"; "getresuid";
    "getresgid"; "getgroups"; "setgroups"; "initgroups";
    "group_member"; "getlogin"; "getlogin_r"; "getrlimit";
    "setrlimit"; "getrlimit64"; "setrlimit64"; "prlimit";
    "prlimit64"; "getrusage"; "times"; "daemon"; "raise"; "kill";
    "killpg"; "pause"; "alarm"; "ualarm"; "sleep"; "usleep";
    "nanosleep"; "ptrace"; "personality"; "acct"; "prctl"; "syscall" ]

let signal_core =
  [ "signal"; "sigaction"; "sigprocmask"; "sigpending"; "sigsuspend";
    "sigwait"; "sigwaitinfo"; "sigtimedwait"; "sigqueue";
    "sigemptyset"; "sigfillset"; "sigaddset"; "sigdelset";
    "sigismember"; "sigisemptyset"; "sigorset"; "sigandset";
    "sigaltstack"; "siginterrupt"; "sigblock"; "sigsetmask";
    "siggetmask"; "sighold"; "sigrelse"; "sigignore"; "sigset";
    "psignal"; "psiginfo"; "bsd_signal"; "sysv_signal"; "ssignal";
    "gsignal"; "sigreturn"; "sigstack"; "sigvec" ]

let env_misc_core =
  [ "getenv"; "setenv"; "unsetenv"; "putenv"; "clearenv";
    "secure_getenv"; "confstr"; "sysconf"; "getpagesize";
    "getdtablesize"; "gethostname"; "getdomainname"; "uname";
    "gnu_get_libc_version"; "gnu_get_libc_release"; "getopt";
    "getopt_long"; "getopt_long_only"; "error"; "error_at_line";
    "err"; "errx"; "warn"; "warnx"; "verr"; "verrx"; "vwarn";
    "vwarnx"; "bsearch"; "qsort"; "qsort_r"; "rand"; "srand";
    "rand_r"; "random"; "srandom"; "initstate"; "setstate";
    "getauxval"; "getsubopt"; "rpmatch"; "setjmp"; "_setjmp";
    "__sigsetjmp"; "longjmp"; "_longjmp"; "siglongjmp";
    "getcontext"; "setcontext"; "makecontext"; "swapcontext" ]

let fortify_chk =
  [ "__printf_chk"; "__fprintf_chk"; "__sprintf_chk"; "__snprintf_chk";
    "__vprintf_chk"; "__vfprintf_chk"; "__vsprintf_chk";
    "__vsnprintf_chk"; "__asprintf_chk"; "__vasprintf_chk";
    "__dprintf_chk"; "__vdprintf_chk"; "__memcpy_chk";
    "__memmove_chk"; "__memset_chk"; "__mempcpy_chk"; "__strcpy_chk";
    "__strncpy_chk"; "__strcat_chk"; "__strncat_chk"; "__stpcpy_chk";
    "__stpncpy_chk"; "__gets_chk"; "__fgets_chk";
    "__fgets_unlocked_chk"; "__read_chk"; "__pread_chk";
    "__pread64_chk"; "__recv_chk"; "__recvfrom_chk"; "__readlink_chk";
    "__readlinkat_chk"; "__getcwd_chk"; "__getwd_chk";
    "__realpath_chk"; "__confstr_chk"; "__getdomainname_chk";
    "__gethostname_chk"; "__getlogin_r_chk"; "__ttyname_r_chk";
    "__ptsname_r_chk"; "__syslog_chk"; "__vsyslog_chk";
    "__longjmp_chk"; "__fread_chk"; "__fread_unlocked_chk";
    "__poll_chk"; "__ppoll_chk"; "__wcscpy_chk";
    "__wcsncpy_chk"; "__wcscat_chk"; "__wcsncat_chk"; "__wmemcpy_chk";
    "__wmemmove_chk"; "__wmemset_chk"; "__wmempcpy_chk";
    "__wcpcpy_chk"; "__wcpncpy_chk"; "__swprintf_chk";
    "__vswprintf_chk"; "__wprintf_chk"; "__fwprintf_chk";
    "__vwprintf_chk"; "__vfwprintf_chk"; "__mbstowcs_chk";
    "__wcstombs_chk"; "__mbsrtowcs_chk"; "__wcsrtombs_chk";
    "__mbsnrtowcs_chk"; "__wcsnrtombs_chk" ]

(* C99-conformance wrappers the GNU headers substitute for the scanf
   family at compile time. Like the _chk symbols these appear in many
   binaries' import lists, but unlike them they have no base-symbol
   normalization, which is what keeps uClibc/musl below 50% weighted
   completeness even after normalization (Table 7). *)
let isoc99 =
  [ "__isoc99_scanf"; "__isoc99_fscanf"; "__isoc99_sscanf";
    "__isoc99_vscanf"; "__isoc99_vfscanf"; "__isoc99_vsscanf";
    "__isoc99_wscanf"; "__isoc99_fwscanf"; "__isoc99_swscanf" ]

let time_core =
  [ "time"; "stime"; "gettimeofday"; "settimeofday"; "adjtime";
    "adjtimex"; "clock_gettime"; "clock_settime"; "clock_getres";
    "clock_nanosleep"; "clock_getcpuclockid"; "clock"; "localtime";
    "gmtime"; "localtime_r"; "gmtime_r"; "mktime"; "timegm";
    "timelocal"; "asctime"; "asctime_r"; "ctime"; "ctime_r";
    "strftime"; "strftime_l"; "strptime"; "difftime"; "tzset";
    "ftime"; "getitimer"; "setitimer"; "dysize" ]

let locale_core =
  [ "setlocale"; "localeconv"; "newlocale"; "duplocale"; "freelocale";
    "uselocale"; "nl_langinfo"; "nl_langinfo_l"; "iconv";
    "iconv_open"; "iconv_close"; "gettext"; "dgettext"; "dcgettext";
    "ngettext"; "dngettext"; "dcngettext"; "textdomain";
    "bindtextdomain"; "bind_textdomain_codeset"; "catopen";
    "catgets"; "catclose" ]

let pthread_core =
  [ "pthread_create"; "pthread_join"; "pthread_detach"; "pthread_exit";
    "pthread_self"; "pthread_equal"; "pthread_cancel";
    "pthread_testcancel"; "pthread_setcancelstate";
    "pthread_setcanceltype"; "pthread_kill"; "pthread_sigmask";
    "pthread_once"; "pthread_atfork"; "pthread_key_create";
    "pthread_key_delete"; "pthread_getspecific";
    "pthread_setspecific"; "pthread_mutex_init";
    "pthread_mutex_destroy"; "pthread_mutex_lock";
    "pthread_mutex_trylock"; "pthread_mutex_timedlock";
    "pthread_mutex_unlock"; "pthread_mutexattr_init";
    "pthread_mutexattr_destroy"; "pthread_mutexattr_settype";
    "pthread_mutexattr_gettype"; "pthread_mutexattr_setpshared";
    "pthread_cond_init"; "pthread_cond_destroy"; "pthread_cond_wait";
    "pthread_cond_timedwait"; "pthread_cond_signal";
    "pthread_cond_broadcast"; "pthread_condattr_init";
    "pthread_condattr_destroy"; "pthread_condattr_setclock";
    "pthread_attr_init"; "pthread_attr_destroy";
    "pthread_attr_setdetachstate"; "pthread_attr_getdetachstate";
    "pthread_attr_setstacksize"; "pthread_attr_getstacksize";
    "pthread_attr_setschedparam"; "pthread_attr_getschedparam";
    "pthread_attr_setschedpolicy"; "pthread_attr_getschedpolicy";
    "pthread_attr_setinheritsched"; "pthread_attr_setscope";
    "pthread_setschedparam"; "pthread_getschedparam";
    "pthread_setname_np"; "pthread_getname_np";
    "pthread_setaffinity_np"; "pthread_getaffinity_np";
    "pthread_getattr_np"; "pthread_yield"; "sem_init"; "sem_destroy";
    "sem_open"; "sem_close"; "sem_unlink"; "sem_wait"; "sem_trywait";
    "sem_timedwait"; "sem_post"; "sem_getvalue" ]

let sockets_core =
  [ "socket"; "socketpair"; "bind"; "listen"; "accept"; "accept4";
    "connect"; "shutdown"; "send"; "recv"; "sendto"; "recvfrom";
    "sendmsg"; "recvmsg"; "sendmmsg"; "recvmmsg"; "getsockname";
    "getpeername"; "getsockopt"; "setsockopt"; "sockatmark";
    "isfdtype"; "htons"; "htonl"; "ntohs"; "ntohl"; "inet_addr";
    "inet_aton"; "inet_ntoa"; "inet_network"; "inet_makeaddr";
    "inet_lnaof"; "inet_netof"; "inet_ntop"; "inet_pton" ]

let termios =
  [ "tcgetattr"; "tcsetattr"; "tcsendbreak"; "tcdrain"; "tcflush";
    "tcflow"; "tcgetpgrp"; "tcsetpgrp"; "tcgetsid"; "cfgetispeed";
    "cfgetospeed"; "cfsetispeed"; "cfsetospeed"; "cfsetspeed";
    "cfmakeraw"; "openpty"; "forkpty"; "posix_openpt"; "grantpt";
    "unlockpt"; "ptsname"; "ptsname_r"; "getpt"; "ttyname";
    "ttyname_r"; "ttyslot" ]

let dirent_glob =
  [ "opendir"; "fdopendir"; "closedir"; "readdir"; "readdir64";
    "readdir_r"; "readdir64_r"; "rewinddir"; "seekdir"; "telldir";
    "dirfd"; "scandir"; "scandir64"; "scandirat"; "alphasort";
    "alphasort64"; "versionsort"; "versionsort64"; "glob"; "glob64";
    "globfree"; "globfree64"; "fnmatch"; "wordexp"; "wordfree";
    "ftw"; "ftw64"; "nftw"; "nftw64"; "fts_open"; "fts_read";
    "fts_children"; "fts_set"; "fts_close" ]

let mmap_ipc =
  [ "mmap"; "mmap64"; "munmap"; "mremap"; "mprotect"; "msync";
    "madvise"; "posix_madvise"; "mincore"; "mlock"; "munlock";
    "mlockall"; "munlockall"; "remap_file_pages"; "shmat"; "shmdt";
    "shmget"; "shmctl"; "semget"; "semop"; "semctl"; "semtimedop";
    "msgget"; "msgsnd"; "msgrcv"; "msgctl"; "ftok" ]

let net_db =
  [ "getaddrinfo"; "freeaddrinfo"; "getnameinfo"; "gai_strerror";
    "gethostbyname"; "gethostbyname2"; "gethostbyaddr";
    "gethostbyname_r"; "gethostbyname2_r"; "gethostbyaddr_r";
    "gethostent"; "sethostent"; "endhostent"; "getservbyname";
    "getservbyport"; "getservent"; "setservent"; "endservent";
    "getservbyname_r"; "getservbyport_r"; "getprotobyname";
    "getprotobynumber"; "getprotoent"; "setprotoent"; "endprotoent";
    "getnetbyname"; "getnetbyaddr"; "getnetent"; "setnetent";
    "endnetent"; "if_nametoindex"; "if_indextoname"; "if_nameindex";
    "if_freenameindex"; "getifaddrs"; "freeifaddrs"; "herror";
    "hstrerror"; "res_init"; "res_query"; "res_search";
    "res_mkquery"; "dn_comp"; "dn_expand"; "ether_ntoa";
    "ether_aton"; "ether_ntohost"; "ether_hostton"; "bindresvport";
    "rcmd"; "rexec"; "rresvport"; "ruserok" ]

let stdio_ext =
  [ "fread_unlocked"; "fwrite_unlocked"; "fgetc_unlocked";
    "fputc_unlocked"; "fgets_unlocked"; "fputs_unlocked";
    "getc_unlocked"; "putc_unlocked"; "getchar_unlocked";
    "putchar_unlocked"; "clearerr_unlocked"; "feof_unlocked";
    "ferror_unlocked"; "fileno_unlocked"; "fflush_unlocked";
    "flockfile"; "ftrylockfile"; "funlockfile"; "fmemopen";
    "open_memstream"; "fopencookie"; "fcloseall"; "tmpnam_r";
    "cuserid"; "obstack_printf"; "obstack_vprintf"; "__fpurge";
    "__freadable"; "__fwritable"; "__flbf"; "__fbufsize";
    "__fpending"; "_IO_getc"; "_IO_putc"; "_IO_feof"; "_IO_ferror";
    "_IO_puts" ]

let users_groups =
  [ "getpwnam"; "getpwuid"; "getpwnam_r"; "getpwuid_r"; "getpwent";
    "setpwent"; "endpwent"; "fgetpwent"; "putpwent"; "getgrnam";
    "getgrgid"; "getgrnam_r"; "getgrgid_r"; "getgrent"; "setgrent";
    "endgrent"; "fgetgrent"; "putgrent"; "getgrouplist"; "getspnam";
    "getspnam_r"; "getspent"; "setspent"; "endspent"; "sgetspent";
    "fgetspent"; "putspent"; "lckpwdf"; "ulckpwdf"; "crypt";
    "crypt_r"; "encrypt"; "setkey" ]

let syslog_mount_admin =
  [ "syslog"; "vsyslog"; "openlog"; "closelog"; "setlogmask";
    "iopl"; "ioperm";
    "mount"; "umount"; "umount2"; "swapon"; "swapoff"; "reboot";
    "sethostname"; "setdomainname"; "vhangup"; "klogctl";
    "quotactl"; "sysinfo"; "get_nprocs"; "get_nprocs_conf";
    "get_phys_pages"; "get_avphys_pages"; "getloadavg"; "gethostid";
    "sethostid"; "getmntent"; "getmntent_r"; "setmntent";
    "endmntent"; "addmntent"; "hasmntopt"; "getfsent"; "getfsspec";
    "getfsfile"; "setfsent"; "endfsent"; "sched_setscheduler";
    "sched_getscheduler"; "sched_setparam"; "sched_getparam";
    "sched_get_priority_max"; "sched_get_priority_min";
    "sched_rr_get_interval"; "sched_setaffinity"; "sched_getaffinity";
    "setfsuid"; "setfsgid"; "capget"; "capset" ]

let regex_search =
  [ "regcomp"; "regexec"; "regerror"; "regfree"; "re_comp"; "re_exec";
    "lsearch"; "lfind"; "hsearch"; "hcreate"; "hdestroy";
    "hsearch_r"; "hcreate_r"; "hdestroy_r"; "tsearch"; "tfind";
    "tdelete"; "twalk"; "tdestroy"; "insque"; "remque" ]

let rand48 =
  [ "drand48"; "erand48"; "lrand48"; "nrand48"; "mrand48"; "jrand48";
    "srand48"; "seed48"; "lcong48"; "drand48_r"; "erand48_r";
    "lrand48_r"; "nrand48_r"; "mrand48_r"; "jrand48_r"; "srand48_r";
    "seed48_r"; "lcong48_r"; "random_r"; "srandom_r"; "initstate_r";
    "setstate_r" ]

let wide_core =
  [ "wcscpy"; "wcsncpy"; "wcscat"; "wcsncat"; "wcscmp"; "wcsncmp";
    "wcscasecmp"; "wcsncasecmp"; "wcschr"; "wcsrchr"; "wcsstr";
    "wcslen"; "wcsnlen"; "wcsdup"; "wcstok"; "wcsspn"; "wcscspn";
    "wcspbrk"; "wcscoll"; "wcsxfrm"; "wmemcpy"; "wmemmove";
    "wmemset"; "wmemcmp"; "wmemchr"; "wmempcpy"; "wcpcpy"; "wcpncpy";
    "btowc"; "wctob"; "mbtowc"; "wctomb"; "mbstowcs"; "wcstombs";
    "mbrtowc"; "wcrtomb"; "mbsrtowcs"; "wcsrtombs"; "mbsnrtowcs";
    "wcsnrtombs"; "mbrlen"; "mbsinit"; "mblen"; "wcwidth";
    "wcswidth"; "iswalpha"; "iswdigit"; "iswalnum"; "iswspace";
    "iswupper"; "iswlower"; "iswpunct"; "iswprint"; "iswgraph";
    "iswcntrl"; "iswxdigit"; "iswblank"; "towupper"; "towlower";
    "towctrans"; "wctrans"; "wctype"; "iswctype" ]

let wide_io =
  [ "fgetwc"; "fputwc"; "getwc"; "putwc"; "getwchar"; "putwchar";
    "fgetws"; "fputws"; "ungetwc"; "fwide"; "wprintf"; "fwprintf";
    "swprintf"; "vwprintf"; "vfwprintf"; "vswprintf"; "wscanf";
    "fwscanf"; "swscanf"; "vwscanf"; "vfwscanf"; "vswscanf";
    "wcstol"; "wcstoul"; "wcstoll"; "wcstoull"; "wcstod"; "wcstof";
    "wcstold"; "wcstoimax"; "wcstoumax"; "wcsftime"; "getwdelim";
    "getwline" ]

let librt_fns =
  [ "aio_read"; "aio_write"; "aio_read64"; "aio_write64"; "aio_error";
    "aio_return"; "aio_cancel"; "aio_suspend"; "aio_fsync";
    "lio_listio"; "lio_listio64"; "mq_open"; "mq_close"; "mq_unlink";
    "mq_send"; "mq_receive"; "mq_timedsend"; "mq_timedreceive";
    "mq_notify"; "mq_getattr"; "mq_setattr"; "shm_open";
    "shm_unlink"; "timer_create"; "timer_delete"; "timer_settime";
    "timer_gettime"; "timer_getoverrun" ]

let pthread_ext =
  [ "pthread_rwlock_init"; "pthread_rwlock_destroy";
    "pthread_rwlock_rdlock"; "pthread_rwlock_tryrdlock";
    "pthread_rwlock_timedrdlock"; "pthread_rwlock_wrlock";
    "pthread_rwlock_trywrlock"; "pthread_rwlock_timedwrlock";
    "pthread_rwlock_unlock"; "pthread_rwlockattr_init";
    "pthread_rwlockattr_destroy"; "pthread_rwlockattr_setpshared";
    "pthread_spin_init"; "pthread_spin_destroy"; "pthread_spin_lock";
    "pthread_spin_trylock"; "pthread_spin_unlock";
    "pthread_barrier_init"; "pthread_barrier_destroy";
    "pthread_barrier_wait"; "pthread_barrierattr_init";
    "pthread_barrierattr_destroy"; "pthread_barrierattr_setpshared";
    "pthread_mutexattr_setrobust"; "pthread_mutexattr_getrobust";
    "pthread_mutexattr_setprotocol"; "pthread_mutexattr_getprotocol";
    "pthread_mutex_consistent"; "pthread_condattr_setpshared";
    "pthread_condattr_getpshared"; "pthread_getcpuclockid";
    "pthread_tryjoin_np"; "pthread_timedjoin_np";
    "pthread_setschedprio"; "pthread_attr_setguardsize";
    "pthread_attr_getguardsize"; "pthread_attr_setstack";
    "pthread_attr_getstack"; "pthread_attr_setaffinity_np";
    "pthread_attr_getaffinity_np" ]

let dl_fns =
  [ "dlopen"; "dlclose"; "dlsym"; "dlvsym"; "dladdr"; "dladdr1";
    "dlerror"; "dlinfo"; "dlmopen"; "dl_iterate_phdr";
    "_dl_allocate_tls"; "_dl_deallocate_tls"; "_dl_find_dso_for_object";
    "__tls_get_addr"; "_dl_sym"; "_dl_mcount" ]

let xattr_keys =
  [ "setxattr"; "lsetxattr"; "fsetxattr"; "getxattr"; "lgetxattr";
    "fgetxattr"; "listxattr"; "llistxattr"; "flistxattr";
    "removexattr"; "lremovexattr"; "fremovexattr"; "epoll_create";
    "epoll_create1"; "epoll_ctl"; "epoll_wait"; "epoll_pwait";
    "eventfd"; "eventfd_read"; "eventfd_write"; "signalfd";
    "timerfd_create"; "timerfd_settime"; "timerfd_gettime";
    "inotify_init"; "inotify_init1"; "inotify_add_watch";
    "inotify_rm_watch"; "fanotify_init"; "fanotify_mark"; "sendfile";
    "sendfile64"; "splice"; "tee"; "vmsplice"; "readahead";
    "posix_fadvise"; "posix_fadvise64"; "posix_fallocate";
    "posix_fallocate64"; "fallocate"; "fallocate64"; "unshare";
    "setns"; "name_to_handle_at"; "open_by_handle_at";
    "process_vm_readv"; "process_vm_writev"; "getcpu"; "mbind";
    "set_mempolicy"; "get_mempolicy"; "migrate_pages"; "move_pages" ]

let posix_spawn_fns =
  [ "posix_spawn"; "posix_spawnp"; "posix_spawn_file_actions_init";
    "posix_spawn_file_actions_destroy";
    "posix_spawn_file_actions_addclose";
    "posix_spawn_file_actions_addopen";
    "posix_spawn_file_actions_adddup2"; "posix_spawnattr_init";
    "posix_spawnattr_destroy"; "posix_spawnattr_setflags";
    "posix_spawnattr_getflags"; "posix_spawnattr_setpgroup";
    "posix_spawnattr_getpgroup"; "posix_spawnattr_setsigmask";
    "posix_spawnattr_getsigmask"; "posix_spawnattr_setsigdefault";
    "posix_spawnattr_getsigdefault"; "posix_spawnattr_setschedparam";
    "posix_spawnattr_getschedparam"; "posix_spawnattr_setschedpolicy";
    "posix_spawnattr_getschedpolicy" ]

let conversion_ext =
  [ "ecvt"; "fcvt"; "gcvt"; "ecvt_r"; "fcvt_r"; "qecvt"; "qfcvt";
    "qgcvt"; "qecvt_r"; "qfcvt_r"; "a64l"; "l64a"; "mtrace";
    "muntrace"; "mcheck"; "mcheck_check_all"; "mprobe"; "backtrace";
    "backtrace_symbols"; "backtrace_symbols_fd" ]

let utmp_fns =
  [ "getutent"; "getutid"; "getutline"; "pututline"; "setutent";
    "endutent"; "utmpname"; "updwtmp"; "logwtmp"; "login"; "logout";
    "login_tty"; "getutxent"; "getutxid"; "getutxline"; "pututxline";
    "setutxent"; "endutxent"; "utmpxname"; "getutent_r";
    "getutid_r"; "getutline_r"; "getttyent"; "getttynam";
    "setttyent"; "endttyent" ]

let argz_obstack_argp =
  [ "argp_parse"; "argp_usage"; "argp_error"; "argp_failure";
    "argp_help"; "argp_state_help"; "argz_add"; "argz_add_sep";
    "argz_append"; "argz_count"; "argz_create"; "argz_create_sep";
    "argz_delete"; "argz_extract"; "argz_insert"; "argz_next";
    "argz_replace"; "argz_stringify"; "envz_add"; "envz_entry";
    "envz_get"; "envz_merge"; "envz_remove"; "envz_strip";
    "obstack_free"; "_obstack_begin"; "_obstack_begin_1";
    "_obstack_newchunk"; "_obstack_memory_used"; "_obstack_allocated_p" ]

let rpc_xdr =
  [ "xdr_int"; "xdr_u_int"; "xdr_long"; "xdr_u_long"; "xdr_short";
    "xdr_u_short"; "xdr_char"; "xdr_u_char"; "xdr_bool"; "xdr_enum";
    "xdr_float"; "xdr_double"; "xdr_string"; "xdr_bytes";
    "xdr_array"; "xdr_vector"; "xdr_opaque"; "xdr_union";
    "xdr_reference"; "xdr_pointer"; "xdr_wrapstring"; "xdr_void";
    "xdr_free"; "xdrmem_create"; "xdrstdio_create"; "xdrrec_create";
    "clnt_create"; "clnt_perror"; "clnt_pcreateerror";
    "clnt_sperror"; "svc_register"; "svc_run"; "svc_sendreply";
    "svcudp_create"; "svctcp_create"; "callrpc"; "pmap_getport";
    "pmap_set"; "pmap_unset"; "xprt_register"; "xprt_unregister";
    "authnone_create"; "authunix_create"; "authunix_create_default";
    "clntudp_create"; "clnttcp_create"; "clntraw_create";
    "svcraw_create"; "svcerr_noproc"; "svcerr_decode";
    "svcerr_systemerr"; "svcerr_auth"; "get_myaddress";
    "getrpcbyname"; "getrpcbynumber"; "getrpcent"; "setrpcent";
    "endrpcent"; "getrpcport"; "bindresvport_sa" ]

let legacy_tail =
  [ "gtty"; "stty"; "sstk"; "revoke"; "vlimit"; "vtimes"; "profil";
    "sprofil"; "moncontrol"; "monstartup"; "__monstartup"; "mcount";
    "ustat"; "sysctl"; "nfsservctl"; "uselib_wrapper"; "fattach";
    "fdetach"; "getmsg"; "putmsg"; "getpmsg_wrapper";
    "putpmsg_wrapper"; "isastream"; "lchmod"; "getumask"; "setlogin";
    "fcrypt"; "__libc_init_first"; "__libc_freeres";
    "__libc_thread_freeres"; "__flushlbf"; "__fsetlocking";
    "__freading"; "__fwriting"; "__nss_configure_lookup";
    "__nss_database_lookup"; "__res_state"; "__h_errno_location";
    "__overflow"; "__underflow"; "__uflow";
    "_IO_file_open"; "_IO_file_close"; "_IO_file_read";
    "_IO_file_write"; "_IO_do_write"; "_IO_vfprintf"; "_IO_vfscanf";
    "_IO_flush_all"; "_IO_flush_all_linebuffered"; "_IO_getc";
    "_IO_putc"; "_IO_feof"; "_IO_ferror"; "_IO_puts";
    "_IO_list_lock"; "_IO_list_unlock"; "_IO_ftrylockfile";
    "_IO_funlockfile"; "_IO_peekc_locked";
    "getpass"; "getusershell"; "setusershell"; "endusershell";
    "getdirentries"; "getdirentries64"; "getsgent"; "getsgnam";
    "setsgent"; "endsgent"; "putsgent"; "fgetsgent"; "sgetsgent";
    "getaliasent"; "getaliasbyname"; "setaliasent"; "endaliasent";
    "ntp_gettime"; "ntp_adjtime";
    "_pthread_cleanup_push"; "_pthread_cleanup_pop";
    "inet6_opt_init"; "inet6_opt_append"; "inet6_opt_finish";
    "inet6_opt_next"; "inet6_opt_find"; "inet6_rth_space";
    "inet6_rth_init"; "inet6_rth_add"; "inet6_rth_reverse";
    "inet6_rth_segments"; "inet6_rth_getaddr" ]

(* ------------------------------------------------------------------ *)
(* Group metadata: owning library and typical per-function code size  *)
(* ------------------------------------------------------------------ *)

(* Groups in popularity order; tiers are assigned cumulatively over
   this order. (group name, functions, owning lib, base size). *)
let groups : (string * string list * lib * int) list =
  [ ("runtime", runtime_startup, Libc, 400);
    ("memory", memory, Libc, 900);
    ("string", string_fns, Libc, 250);
    ("ctype", ctype, Libc, 120);
    ("stdio", stdio_core, Libc, 700);
    ("conversion", conversion_core, Libc, 500);
    ("fd_io", fd_io_core, Libc, 300);
    ("fortify", fortify_chk, Libc, 200);
    ("isoc99", isoc99, Libc, 400);
    ("fs", fs_core, Libc, 350);
    ("process", process_core, Libc, 400);
    ("signal", signal_core, Libc, 300);
    ("env_misc", env_misc_core, Libc, 450);
    ("time", time_core, Libc, 600);
    ("dirent", dirent_glob, Libc, 550);
    ("locale", locale_core, Libc, 800);
    ("pthread", pthread_core, Libpthread, 350);
    ("sockets", sockets_core, Libc, 300);
    ("termios", termios, Libc, 250);
    ("mmap_ipc", mmap_ipc, Libc, 250);
    ("dl", dl_fns, Libdl, 500);
    ("net_db", net_db, Libc, 900);
    ("users_groups", users_groups, Libc, 600);
    ("stdio_ext", stdio_ext, Libc, 250);
    ("regex_search", regex_search, Libc, 1200);
    ("syslog_admin", syslog_mount_admin, Libc, 300);
    ("wide_core", wide_core, Libc, 250);
    ("rand48", rand48, Libc, 200);
    ("xattr_event", xattr_keys, Libc, 200);
    ("posix_spawn", posix_spawn_fns, Libc, 300);
    ("pthread_ext", pthread_ext, Libpthread, 250);
    ("librt", librt_fns, Librt, 400);
    ("wide_io", wide_io, Libc, 600);
    ("conversion_ext", conversion_ext, Libc, 350);
    ("utmp", utmp_fns, Libc, 400);
    ("argz", argz_obstack_argp, Libc, 500);
    ("rpc", rpc_xdr, Libc, 700);
    ("legacy", legacy_tail, Libc, 300) ]

(* ------------------------------------------------------------------ *)
(* Syscall footprints of individual libc functions                    *)
(* ------------------------------------------------------------------ *)

(* Syscalls issued by the implementation of selected exports. Exports
   absent from this map issue no system call themselves (pure
   user-space code), though they still count as libc APIs. *)
let syscall_map : (string * string list) list =
  [ ("__libc_start_main", [ "exit_group"; "mmap"; "mprotect"; "arch_prctl" ]);
    ("exit", [ "exit_group" ]);
    ("_exit", [ "exit_group"; "exit" ]);
    ("abort", [ "rt_sigprocmask"; "tgkill"; "getpid"; "gettid" ]);
    ("raise", [ "tgkill"; "getpid"; "gettid" ]);
    ("malloc", [ "brk"; "mmap"; "munmap" ]);
    ("calloc", [ "brk"; "mmap" ]);
    ("realloc", [ "brk"; "mmap"; "mremap"; "munmap" ]);
    ("free", [ "munmap"; "brk"; "madvise" ]);
    ("memalign", [ "mmap" ]);
    ("posix_memalign", [ "mmap" ]);
    ("brk", [ "brk" ]);
    ("sbrk", [ "brk" ]);
    ("malloc_trim", [ "madvise"; "brk" ]);
    (* stdio: buffered I/O bottoms out in read/write/open/close etc. *)
    ("printf", [ "write" ]);
    ("fprintf", [ "write" ]);
    ("vfprintf", [ "write" ]);
    ("vprintf", [ "write" ]);
    ("dprintf", [ "write" ]);
    ("vdprintf", [ "write" ]);
    ("puts", [ "write" ]);
    ("putchar", [ "write" ]);
    ("fputs", [ "write" ]);
    ("fputc", [ "write" ]);
    ("putc", [ "write" ]);
    ("fwrite", [ "write" ]);
    ("fread", [ "read" ]);
    ("fgets", [ "read" ]);
    ("fgetc", [ "read" ]);
    ("getc", [ "read" ]);
    ("getchar", [ "read" ]);
    ("gets", [ "read" ]);
    ("getline", [ "read" ]);
    ("getdelim", [ "read" ]);
    ("scanf", [ "read" ]);
    ("fscanf", [ "read" ]);
    ("vfscanf", [ "read" ]);
    ("fopen", [ "open"; "fstat"; "mmap" ]);
    ("fopen64", [ "open"; "fstat"; "mmap" ]);
    ("fdopen", [ "fcntl"; "fstat" ]);
    ("freopen", [ "open"; "close"; "dup2" ]);
    ("fclose", [ "close"; "munmap"; "write" ]);
    ("fflush", [ "write"; "lseek" ]);
    ("fseek", [ "lseek" ]);
    ("fseeko", [ "lseek" ]);
    ("ftell", [ "lseek" ]);
    ("ftello", [ "lseek" ]);
    ("rewind", [ "lseek" ]);
    ("setvbuf", [ "fstat" ]);
    ("perror", [ "write" ]);
    ("tmpfile", [ "open"; "unlink" ]);
    ("popen", [ "pipe2"; "clone"; "execve"; "close"; "dup2" ]);
    ("pclose", [ "wait4"; "close" ]);
    ("remove", [ "unlink"; "rmdir" ]);
    (* raw fd I/O *)
    ("open", [ "open" ]);
    ("open64", [ "open" ]);
    ("openat", [ "openat" ]);
    ("openat64", [ "openat" ]);
    ("creat", [ "open" ]);
    ("creat64", [ "open" ]);
    ("close", [ "close" ]);
    ("read", [ "read" ]);
    ("write", [ "write" ]);
    ("pread", [ "pread64" ]);
    ("pread64", [ "pread64" ]);
    ("pwrite", [ "pwrite64" ]);
    ("pwrite64", [ "pwrite64" ]);
    ("readv", [ "readv" ]);
    ("writev", [ "writev" ]);
    ("preadv", [ "preadv" ]);
    ("pwritev", [ "pwritev" ]);
    ("lseek", [ "lseek" ]);
    ("lseek64", [ "lseek" ]);
    ("dup", [ "dup" ]);
    ("dup2", [ "dup2" ]);
    ("dup3", [ "dup3" ]);
    ("pipe", [ "pipe" ]);
    ("pipe2", [ "pipe2" ]);
    ("fcntl", [ "fcntl" ]);
    ("ioctl", [ "ioctl" ]);
    ("fsync", [ "fsync" ]);
    ("fdatasync", [ "fdatasync" ]);
    ("ftruncate", [ "ftruncate" ]);
    ("ftruncate64", [ "ftruncate" ]);
    ("truncate", [ "truncate" ]);
    ("truncate64", [ "truncate" ]);
    ("select", [ "select" ]);
    ("pselect", [ "pselect6" ]);
    ("poll", [ "poll" ]);
    ("ppoll", [ "ppoll" ]);
    ("flock", [ "flock" ]);
    ("lockf", [ "fcntl" ]);
    ("lockf64", [ "fcntl" ]);
    ("sync", [ "sync" ]);
    ("syncfs", [ "syncfs" ]);
    ("sendfile", [ "sendfile" ]);
    ("sendfile64", [ "sendfile" ]);
    ("splice", [ "splice" ]);
    ("tee", [ "tee" ]);
    ("vmsplice", [ "vmsplice" ]);
    ("readahead", [ "readahead" ]);
    ("posix_fadvise", [ "fadvise64" ]);
    ("posix_fadvise64", [ "fadvise64" ]);
    ("posix_fallocate", [ "fallocate"; "pwrite64" ]);
    ("posix_fallocate64", [ "fallocate"; "pwrite64" ]);
    ("fallocate", [ "fallocate" ]);
    ("fallocate64", [ "fallocate" ]);
    (* filesystem metadata *)
    ("stat", [ "stat" ]);
    ("fstat", [ "fstat" ]);
    ("lstat", [ "lstat" ]);
    ("stat64", [ "stat" ]);
    ("fstat64", [ "fstat" ]);
    ("lstat64", [ "lstat" ]);
    ("__xstat", [ "stat" ]);
    ("__fxstat", [ "fstat" ]);
    ("__lxstat", [ "lstat" ]);
    ("__xstat64", [ "stat" ]);
    ("__fxstat64", [ "fstat" ]);
    ("__lxstat64", [ "lstat" ]);
    ("__fxstatat", [ "newfstatat" ]);
    ("__fxstatat64", [ "newfstatat" ]);
    ("access", [ "access" ]);
    ("faccessat", [ "faccessat" ]);
    ("euidaccess", [ "faccessat" ]);
    ("eaccess", [ "faccessat" ]);
    ("chmod", [ "chmod" ]);
    ("fchmod", [ "fchmod" ]);
    ("fchmodat", [ "fchmodat" ]);
    ("chown", [ "chown" ]);
    ("fchown", [ "fchown" ]);
    ("lchown", [ "lchown" ]);
    ("fchownat", [ "fchownat" ]);
    ("umask", [ "umask" ]);
    ("mkdir", [ "mkdir" ]);
    ("mkdirat", [ "mkdirat" ]);
    ("rmdir", [ "rmdir" ]);
    ("rename", [ "rename" ]);
    ("renameat", [ "renameat" ]);
    ("link", [ "link" ]);
    ("linkat", [ "linkat" ]);
    ("symlink", [ "symlink" ]);
    ("symlinkat", [ "symlinkat" ]);
    ("unlink", [ "unlink" ]);
    ("unlinkat", [ "unlinkat" ]);
    ("readlink", [ "readlink" ]);
    ("readlinkat", [ "readlinkat" ]);
    ("mknod", [ "mknod" ]);
    ("mknodat", [ "mknodat" ]);
    ("mkfifo", [ "mknod" ]);
    ("mkfifoat", [ "mknodat" ]);
    ("chdir", [ "chdir" ]);
    ("fchdir", [ "fchdir" ]);
    ("getcwd", [ "getcwd" ]);
    ("get_current_dir_name", [ "getcwd" ]);
    ("getwd", [ "getcwd" ]);
    ("chroot", [ "chroot" ]);
    ("realpath", [ "lstat"; "readlink"; "getcwd" ]);
    ("canonicalize_file_name", [ "lstat"; "readlink"; "getcwd" ]);
    ("pathconf", [ "statfs" ]);
    ("fpathconf", [ "fstatfs" ]);
    ("statfs", [ "statfs" ]);
    ("fstatfs", [ "fstatfs" ]);
    ("statfs64", [ "statfs" ]);
    ("fstatfs64", [ "fstatfs" ]);
    ("statvfs", [ "statfs"; "stat" ]);
    ("fstatvfs", [ "fstatfs"; "fstat" ]);
    ("utime", [ "utime" ]);
    ("utimes", [ "utimes" ]);
    ("futimes", [ "utimensat" ]);
    ("lutimes", [ "utimensat" ]);
    ("futimens", [ "utimensat" ]);
    ("utimensat", [ "utimensat" ]);
    ("mkstemp", [ "open" ]);
    ("mkstemp64", [ "open" ]);
    ("mkostemp", [ "open" ]);
    ("mkdtemp", [ "mkdir" ]);
    (* process control *)
    ("fork", [ "clone" ]);
    ("vfork", [ "vfork" ]);
    ("execve", [ "execve" ]);
    ("execv", [ "execve" ]);
    ("execvp", [ "execve" ]);
    ("execvpe", [ "execve" ]);
    ("execl", [ "execve" ]);
    ("execlp", [ "execve" ]);
    ("execle", [ "execve" ]);
    ("fexecve", [ "execve" ]);
    ("wait", [ "wait4" ]);
    ("waitpid", [ "wait4" ]);
    ("wait3", [ "wait4" ]);
    ("wait4", [ "wait4" ]);
    ("waitid", [ "waitid" ]);
    ("system", [ "clone"; "execve"; "wait4"; "rt_sigaction"; "rt_sigprocmask" ]);
    ("getpid", [ "getpid" ]);
    ("getppid", [ "getppid" ]);
    ("getpgid", [ "getpgid" ]);
    ("setpgid", [ "setpgid" ]);
    ("getpgrp", [ "getpgrp" ]);
    ("setpgrp", [ "setpgid" ]);
    ("setsid", [ "setsid" ]);
    ("getsid", [ "getsid" ]);
    ("nice", [ "setpriority"; "getpriority" ]);
    ("getpriority", [ "getpriority" ]);
    ("setpriority", [ "setpriority" ]);
    ("sched_yield", [ "sched_yield" ]);
    ("getuid", [ "getuid" ]);
    ("geteuid", [ "geteuid" ]);
    ("getgid", [ "getgid" ]);
    ("getegid", [ "getegid" ]);
    ("setuid", [ "setuid" ]);
    ("seteuid", [ "setresuid" ]);
    ("setgid", [ "setgid" ]);
    ("setegid", [ "setresgid" ]);
    ("setreuid", [ "setreuid" ]);
    ("setregid", [ "setregid" ]);
    ("setresuid", [ "setresuid" ]);
    ("setresgid", [ "setresgid" ]);
    ("getresuid", [ "getresuid" ]);
    ("getresgid", [ "getresgid" ]);
    ("getgroups", [ "getgroups" ]);
    ("setgroups", [ "setgroups" ]);
    ("initgroups", [ "setgroups" ]);
    ("getrlimit", [ "prlimit64" ]);
    ("setrlimit", [ "prlimit64"; "setrlimit" ]);
    ("getrlimit64", [ "prlimit64" ]);
    ("setrlimit64", [ "prlimit64" ]);
    ("prlimit", [ "prlimit64" ]);
    ("prlimit64", [ "prlimit64" ]);
    ("getrusage", [ "getrusage" ]);
    ("times", [ "times" ]);
    ("daemon", [ "clone"; "setsid"; "chdir"; "open"; "dup2"; "close" ]);
    ("kill", [ "kill" ]);
    ("killpg", [ "kill" ]);
    ("pause", [ "pause" ]);
    ("alarm", [ "alarm" ]);
    ("ualarm", [ "setitimer" ]);
    ("sleep", [ "nanosleep" ]);
    ("usleep", [ "nanosleep" ]);
    ("nanosleep", [ "nanosleep" ]);
    ("ptrace", [ "ptrace" ]);
    ("personality", [ "personality" ]);
    ("acct", [ "acct" ]);
    ("prctl", [ "prctl" ]);
    ("syscall", []);
    (* signals *)
    ("signal", [ "rt_sigaction" ]);
    ("sigaction", [ "rt_sigaction" ]);
    ("sigprocmask", [ "rt_sigprocmask" ]);
    ("sigpending", [ "rt_sigpending" ]);
    ("sigsuspend", [ "rt_sigsuspend" ]);
    ("sigwait", [ "rt_sigtimedwait" ]);
    ("sigwaitinfo", [ "rt_sigtimedwait" ]);
    ("sigtimedwait", [ "rt_sigtimedwait" ]);
    ("sigqueue", [ "rt_sigqueueinfo" ]);
    ("sigaltstack", [ "sigaltstack" ]);
    ("sigblock", [ "rt_sigprocmask" ]);
    ("sigsetmask", [ "rt_sigprocmask" ]);
    ("sighold", [ "rt_sigprocmask" ]);
    ("sigrelse", [ "rt_sigprocmask" ]);
    ("sigignore", [ "rt_sigaction" ]);
    ("sigset", [ "rt_sigaction"; "rt_sigprocmask" ]);
    ("psignal", [ "write" ]);
    ("bsd_signal", [ "rt_sigaction" ]);
    ("sysv_signal", [ "rt_sigaction" ]);
    (* env & misc *)
    ("confstr", []);
    ("sysconf", [ "getrlimit" ]);
    ("getpagesize", []);
    ("gethostname", [ "uname" ]);
    ("getdomainname", [ "uname" ]);
    ("uname", [ "uname" ]);
    ("getauxval", []);
    ("getcontext", [ "rt_sigprocmask" ]);
    ("setcontext", [ "rt_sigprocmask" ]);
    ("swapcontext", [ "rt_sigprocmask" ]);
    (* time *)
    ("time", [ "time" ]);
    ("stime", [ "settimeofday" ]);
    ("gettimeofday", [ "gettimeofday" ]);
    ("settimeofday", [ "settimeofday" ]);
    ("adjtime", [ "adjtimex" ]);
    ("adjtimex", [ "adjtimex" ]);
    ("ntp_gettime", [ "adjtimex" ]);
    ("ntp_adjtime", [ "adjtimex" ]);
    ("clock_gettime", [ "clock_gettime" ]);
    ("clock_settime", [ "clock_settime" ]);
    ("clock_getres", [ "clock_getres" ]);
    ("clock_nanosleep", [ "clock_nanosleep" ]);
    ("localtime", [ "open"; "read"; "close"; "fstat"; "mmap" ]);
    ("localtime_r", [ "open"; "read"; "close" ]);
    ("tzset", [ "open"; "read"; "close"; "fstat" ]);
    ("strftime", []);
    ("getitimer", [ "getitimer" ]);
    ("setitimer", [ "setitimer" ]);
    ("clock", [ "times" ]);
    ("ftime", [ "gettimeofday" ]);
    (* dirent *)
    ("opendir", [ "open"; "fstat"; "getdents" ]);
    ("fdopendir", [ "fstat"; "fcntl" ]);
    ("closedir", [ "close" ]);
    ("readdir", [ "getdents" ]);
    ("readdir64", [ "getdents64" ]);
    ("readdir_r", [ "getdents" ]);
    ("readdir64_r", [ "getdents64" ]);
    ("rewinddir", [ "lseek" ]);
    ("seekdir", [ "lseek" ]);
    ("scandir", [ "open"; "getdents"; "close" ]);
    ("scandir64", [ "open"; "getdents64"; "close" ]);
    ("glob", [ "open"; "getdents"; "close"; "lstat" ]);
    ("glob64", [ "open"; "getdents64"; "close"; "lstat" ]);
    ("ftw", [ "open"; "getdents"; "lstat"; "close" ]);
    ("nftw", [ "open"; "getdents"; "lstat"; "close"; "fchdir" ]);
    ("fts_open", [ "open"; "fstat" ]);
    ("fts_read", [ "getdents"; "lstat"; "close" ]);
    ("getdirentries", [ "getdents"; "lseek" ]);
    ("getdirentries64", [ "getdents64"; "lseek" ]);
    (* locale: reads locale archives *)
    ("setlocale", [ "open"; "read"; "fstat"; "mmap"; "close" ]);
    ("newlocale", [ "open"; "read"; "fstat"; "mmap"; "close" ]);
    ("iconv_open", [ "open"; "fstat"; "mmap"; "close" ]);
    ("gettext", [ "open"; "fstat"; "mmap"; "close" ]);
    ("dcgettext", [ "open"; "fstat"; "mmap"; "close" ]);
    ("bindtextdomain", []);
    ("catopen", [ "open"; "fstat"; "mmap"; "close" ]);
    (* pthread *)
    ("pthread_create", [ "clone"; "mmap"; "mprotect"; "sched_setscheduler";
                         "sched_setparam"; "sched_getscheduler" ]);
    ("pthread_join", [ "futex" ]);
    ("pthread_exit", [ "exit"; "futex"; "munmap" ]);
    ("pthread_detach", [ "futex" ]);
    ("pthread_cancel", [ "tgkill" ]);
    ("pthread_kill", [ "tgkill" ]);
    ("pthread_sigmask", [ "rt_sigprocmask" ]);
    ("pthread_mutex_lock", [ "futex" ]);
    ("pthread_mutex_trylock", []);
    ("pthread_mutex_timedlock", [ "futex" ]);
    ("pthread_mutex_unlock", [ "futex" ]);
    ("pthread_cond_wait", [ "futex" ]);
    ("pthread_cond_timedwait", [ "futex" ]);
    ("pthread_cond_signal", [ "futex" ]);
    ("pthread_cond_broadcast", [ "futex" ]);
    ("pthread_rwlock_rdlock", [ "futex" ]);
    ("pthread_rwlock_wrlock", [ "futex" ]);
    ("pthread_rwlock_unlock", [ "futex" ]);
    ("pthread_barrier_wait", [ "futex" ]);
    ("pthread_spin_lock", [ "sched_yield" ]);
    ("pthread_setschedparam", [ "sched_setscheduler"; "sched_setparam" ]);
    ("pthread_getschedparam", [ "sched_getscheduler"; "sched_getparam" ]);
    ("pthread_setname_np", [ "prctl" ]);
    ("pthread_getname_np", [ "prctl" ]);
    ("pthread_setaffinity_np", [ "sched_setaffinity" ]);
    ("pthread_getaffinity_np", [ "sched_getaffinity" ]);
    ("pthread_getattr_np", [ "sched_getaffinity"; "getrlimit" ]);
    ("pthread_yield", [ "sched_yield" ]);
    ("pthread_getcpuclockid", []);
    ("sem_wait", [ "futex" ]);
    ("sem_trywait", []);
    ("sem_timedwait", [ "futex" ]);
    ("sem_post", [ "futex" ]);
    ("sem_open", [ "open"; "mmap" ]);
    ("sem_unlink", [ "unlink" ]);
    (* sched wrappers in libc *)
    ("sched_setscheduler", [ "sched_setscheduler" ]);
    ("sched_getscheduler", [ "sched_getscheduler" ]);
    ("sched_setparam", [ "sched_setparam" ]);
    ("sched_getparam", [ "sched_getparam" ]);
    ("sched_get_priority_max", [ "sched_get_priority_max" ]);
    ("sched_get_priority_min", [ "sched_get_priority_min" ]);
    ("sched_rr_get_interval", [ "sched_rr_get_interval" ]);
    ("sched_setaffinity", [ "sched_setaffinity" ]);
    ("sched_getaffinity", [ "sched_getaffinity" ]);
    (* sockets *)
    ("socket", [ "socket" ]);
    ("socketpair", [ "socketpair" ]);
    ("bind", [ "bind" ]);
    ("listen", [ "listen" ]);
    ("accept", [ "accept" ]);
    ("accept4", [ "accept4" ]);
    ("connect", [ "connect" ]);
    ("shutdown", [ "shutdown" ]);
    ("send", [ "sendto" ]);
    ("recv", [ "recvfrom" ]);
    ("sendto", [ "sendto" ]);
    ("recvfrom", [ "recvfrom" ]);
    ("sendmsg", [ "sendmsg" ]);
    ("recvmsg", [ "recvmsg" ]);
    ("sendmmsg", [ "sendmmsg" ]);
    ("recvmmsg", [ "recvmmsg" ]);
    ("getsockname", [ "getsockname" ]);
    ("getpeername", [ "getpeername" ]);
    ("getsockopt", [ "getsockopt" ]);
    ("setsockopt", [ "setsockopt" ]);
    ("getaddrinfo", [ "socket"; "connect"; "sendto"; "recvfrom"; "close";
                      "open"; "read"; "fstat" ]);
    ("getnameinfo", [ "socket"; "connect"; "sendto"; "recvfrom"; "close" ]);
    ("gethostbyname", [ "socket"; "connect"; "sendto"; "recvfrom"; "close";
                        "open"; "read" ]);
    ("gethostbyaddr", [ "socket"; "connect"; "sendto"; "recvfrom"; "close" ]);
    ("res_init", [ "open"; "read"; "close" ]);
    ("res_query", [ "socket"; "sendto"; "recvfrom"; "close" ]);
    ("getifaddrs", [ "socket"; "sendto"; "recvmsg"; "close" ]);
    ("rcmd", [ "socket"; "connect"; "bind" ]);
    ("bindresvport", [ "bind" ]);
    (* mmap & SysV IPC *)
    ("mmap", [ "mmap" ]);
    ("mmap64", [ "mmap" ]);
    ("munmap", [ "munmap" ]);
    ("mremap", [ "mremap" ]);
    ("mprotect", [ "mprotect" ]);
    ("msync", [ "msync" ]);
    ("madvise", [ "madvise" ]);
    ("posix_madvise", [ "madvise" ]);
    ("mincore", [ "mincore" ]);
    ("mlock", [ "mlock" ]);
    ("munlock", [ "munlock" ]);
    ("mlockall", [ "mlockall" ]);
    ("munlockall", [ "munlockall" ]);
    ("remap_file_pages", [ "remap_file_pages" ]);
    ("shmat", [ "shmat" ]);
    ("shmdt", [ "shmdt" ]);
    ("shmget", [ "shmget" ]);
    ("shmctl", [ "shmctl" ]);
    ("semget", [ "semget" ]);
    ("semop", [ "semop" ]);
    ("semctl", [ "semctl" ]);
    ("semtimedop", [ "semtimedop" ]);
    ("msgget", [ "msgget" ]);
    ("msgsnd", [ "msgsnd" ]);
    ("msgrcv", [ "msgrcv" ]);
    ("msgctl", [ "msgctl" ]);
    ("ftok", [ "stat" ]);
    (* xattr / event fds / misc modern *)
    ("setxattr", [ "setxattr" ]);
    ("lsetxattr", [ "lsetxattr" ]);
    ("fsetxattr", [ "fsetxattr" ]);
    ("getxattr", [ "getxattr" ]);
    ("lgetxattr", [ "lgetxattr" ]);
    ("fgetxattr", [ "fgetxattr" ]);
    ("listxattr", [ "listxattr" ]);
    ("llistxattr", [ "llistxattr" ]);
    ("flistxattr", [ "flistxattr" ]);
    ("removexattr", [ "removexattr" ]);
    ("lremovexattr", [ "lremovexattr" ]);
    ("fremovexattr", [ "fremovexattr" ]);
    ("epoll_create", [ "epoll_create" ]);
    ("epoll_create1", [ "epoll_create1" ]);
    ("epoll_ctl", [ "epoll_ctl" ]);
    ("epoll_wait", [ "epoll_wait" ]);
    ("epoll_pwait", [ "epoll_pwait" ]);
    ("eventfd", [ "eventfd2" ]);
    ("eventfd_read", [ "read" ]);
    ("eventfd_write", [ "write" ]);
    ("signalfd", [ "signalfd4" ]);
    ("timerfd_create", [ "timerfd_create" ]);
    ("timerfd_settime", [ "timerfd_settime" ]);
    ("timerfd_gettime", [ "timerfd_gettime" ]);
    ("inotify_init", [ "inotify_init" ]);
    ("inotify_init1", [ "inotify_init1" ]);
    ("inotify_add_watch", [ "inotify_add_watch" ]);
    ("inotify_rm_watch", [ "inotify_rm_watch" ]);
    ("fanotify_init", [ "fanotify_init" ]);
    ("fanotify_mark", [ "fanotify_mark" ]);
    ("unshare", [ "unshare" ]);
    ("setns", [ "setns" ]);
    ("name_to_handle_at", [ "name_to_handle_at" ]);
    ("open_by_handle_at", [ "open_by_handle_at" ]);
    ("process_vm_readv", [ "process_vm_readv" ]);
    ("process_vm_writev", [ "process_vm_writev" ]);
    ("getcpu", [ "getcpu" ]);
    ("mbind", [ "mbind" ]);
    ("set_mempolicy", [ "set_mempolicy" ]);
    ("get_mempolicy", [ "get_mempolicy" ]);
    ("migrate_pages", [ "migrate_pages" ]);
    ("move_pages", [ "move_pages" ]);
    (* posix_spawn *)
    ("posix_spawn", [ "clone"; "execve"; "dup2"; "close"; "rt_sigprocmask" ]);
    ("posix_spawnp", [ "clone"; "execve"; "dup2"; "close"; "rt_sigprocmask" ]);
    (* librt *)
    ("aio_read", [ "pread64"; "rt_sigprocmask" ]);
    ("aio_write", [ "pwrite64"; "rt_sigprocmask" ]);
    ("aio_fsync", [ "fsync" ]);
    ("aio_suspend", [ "futex" ]);
    ("lio_listio", [ "pread64"; "pwrite64" ]);
    ("mq_open", [ "mq_open" ]);
    ("mq_close", [ "close" ]);
    ("mq_unlink", [ "mq_unlink" ]);
    ("mq_send", [ "mq_timedsend" ]);
    ("mq_receive", [ "mq_timedreceive" ]);
    ("mq_timedsend", [ "mq_timedsend" ]);
    ("mq_timedreceive", [ "mq_timedreceive" ]);
    ("mq_notify", [ "mq_notify" ]);
    ("mq_getattr", [ "mq_getsetattr" ]);
    ("mq_setattr", [ "mq_getsetattr" ]);
    ("shm_open", [ "open" ]);
    ("shm_unlink", [ "unlink" ]);
    ("timer_create", [ "timer_create" ]);
    ("timer_delete", [ "timer_delete" ]);
    ("timer_settime", [ "timer_settime" ]);
    ("timer_gettime", [ "timer_gettime" ]);
    ("timer_getoverrun", [ "timer_getoverrun" ]);
    (* users / accounting *)
    ("getpwnam", [ "open"; "read"; "fstat"; "close"; "socket"; "connect" ]);
    ("getpwuid", [ "open"; "read"; "fstat"; "close"; "socket"; "connect" ]);
    ("getpwent", [ "open"; "read"; "close" ]);
    ("getgrnam", [ "open"; "read"; "fstat"; "close"; "socket"; "connect" ]);
    ("getgrgid", [ "open"; "read"; "fstat"; "close"; "socket"; "connect" ]);
    ("getspnam", [ "open"; "read"; "fstat"; "close" ]);
    ("getlogin", [ "open"; "read"; "close"; "getuid" ]);
    ("getgrouplist", [ "open"; "read"; "close" ]);
    ("crypt", []);
    ("getutent", [ "open"; "read"; "close" ]);
    ("pututline", [ "open"; "lseek"; "write"; "close" ]);
    ("updwtmp", [ "open"; "write"; "close" ]);
    ("login_tty", [ "setsid"; "dup2"; "close" ]);
    ("getpass", [ "open"; "read"; "write"; "close" ]);
    (* syslog & admin *)
    ("syslog", [ "socket"; "connect"; "sendto"; "close" ]);
    ("vsyslog", [ "socket"; "connect"; "sendto"; "close" ]);
    ("openlog", [ "socket"; "connect" ]);
    ("closelog", [ "close" ]);
    ("mount", [ "mount" ]);
    ("umount", [ "umount2" ]);
    ("umount2", [ "umount2" ]);
    ("swapon", [ "swapon" ]);
    ("swapoff", [ "swapoff" ]);
    ("reboot", [ "reboot" ]);
    ("sethostname", [ "sethostname" ]);
    ("setdomainname", [ "setdomainname" ]);
    ("vhangup", [ "vhangup" ]);
    ("klogctl", [ "syslog" ]);
    ("quotactl", [ "quotactl" ]);
    ("sysinfo", [ "sysinfo" ]);
    ("get_nprocs", [ "open"; "read"; "close" ]);
    ("getloadavg", [ "open"; "read"; "close" ]);
    ("gethostid", [ "open"; "read"; "close"; "uname" ]);
    ("getmntent", [ "open"; "read"; "close" ]);
    ("setmntent", [ "open" ]);
    ("endmntent", [ "close" ]);
    ("setfsuid", [ "setfsuid" ]);
    ("setfsgid", [ "setfsgid" ]);
    ("capget", [ "capget" ]);
    ("capset", [ "capset" ]);
    ("iopl", [ "iopl" ]);
    ("ioperm", [ "ioperm" ]);
    ("sysctl", [ "_sysctl" ]);
    ("ustat", [ "ustat" ]);
    ("nfsservctl", [ "nfsservctl" ]);
    (* termios: ioctl-based, see vop_map *)
    ("tcgetattr", [ "ioctl" ]);
    ("tcsetattr", [ "ioctl" ]);
    ("tcsendbreak", [ "ioctl" ]);
    ("tcdrain", [ "ioctl" ]);
    ("tcflush", [ "ioctl" ]);
    ("tcflow", [ "ioctl" ]);
    ("tcgetpgrp", [ "ioctl" ]);
    ("tcsetpgrp", [ "ioctl" ]);
    ("tcgetsid", [ "ioctl" ]);
    ("isatty", [ "ioctl" ]);
    ("ttyname", [ "ioctl"; "readlink"; "fstat" ]);
    ("ttyname_r", [ "ioctl"; "readlink"; "fstat" ]);
    ("openpty", [ "open"; "ioctl" ]);
    ("forkpty", [ "open"; "ioctl"; "clone"; "setsid"; "dup2" ]);
    ("posix_openpt", [ "open" ]);
    ("grantpt", [ "ioctl" ]);
    ("unlockpt", [ "ioctl" ]);
    ("ptsname", [ "ioctl" ]);
    ("ptsname_r", [ "ioctl" ]);
    ("getpt", [ "open" ]);
    (* dl *)
    ("dlopen", [ "open"; "read"; "fstat"; "mmap"; "mprotect"; "close" ]);
    ("dlclose", [ "munmap" ]);
    ("dlsym", []);
    ("dl_iterate_phdr", []);
    (* fortified wrappers inherit the base function's syscalls *)
    ("__printf_chk", [ "write" ]);
    ("__fprintf_chk", [ "write" ]);
    ("__vfprintf_chk", [ "write" ]);
    ("__dprintf_chk", [ "write" ]);
    ("__read_chk", [ "read" ]);
    ("__pread_chk", [ "pread64" ]);
    ("__pread64_chk", [ "pread64" ]);
    ("__recv_chk", [ "recvfrom" ]);
    ("__recvfrom_chk", [ "recvfrom" ]);
    ("__readlink_chk", [ "readlink" ]);
    ("__readlinkat_chk", [ "readlinkat" ]);
    ("__getcwd_chk", [ "getcwd" ]);
    ("__getlogin_r_chk", [ "open"; "read"; "close" ]);
    ("__ttyname_r_chk", [ "ioctl"; "readlink" ]);
    ("__syslog_chk", [ "socket"; "connect"; "sendto" ]);
    ("__vsyslog_chk", [ "socket"; "connect"; "sendto" ]);
    ("__poll_chk", [ "poll" ]);
    ("__ppoll_chk", [ "ppoll" ]);
    ("__gethostname_chk", [ "uname" ]) ]

(* Vectored opcodes requested by selected exports (Section 3.3: the
   47 TTY/generic ioctl codes ubiquitous through libc and friends). *)
let vop_map : (string * (Api.vector * int) list) list =
  let ioctl name = (Api.Ioctl, (List.assoc name Vectored.ioctl_ubiquitous : int)) in
  [ ("tcgetattr", [ ioctl "TCGETS" ]);
    ("tcsetattr", [ ioctl "TCSETS"; ioctl "TCSETSW"; ioctl "TCSETSF" ]);
    ("tcsendbreak", [ ioctl "TCSBRK" ]);
    ("tcdrain", [ ioctl "TCSBRK" ]);
    ("tcflush", [ ioctl "TCFLSH" ]);
    ("tcflow", [ ioctl "TCXONC" ]);
    ("tcgetpgrp", [ ioctl "TIOCGPGRP" ]);
    ("tcsetpgrp", [ ioctl "TIOCSPGRP" ]);
    ("tcgetsid", [ ioctl "TIOCGSID" ]);
    ("isatty", [ ioctl "TCGETS" ]);
    ("ttyname", [ ioctl "TCGETS" ]);
    ("ttyname_r", [ ioctl "TCGETS" ]);
    ("openpty", [ ioctl "TIOCGPTN"; ioctl "TIOCSPTLCK"; ioctl "TIOCSWINSZ" ]);
    ("forkpty", [ ioctl "TIOCSCTTY" ]);
    ("grantpt", [ ioctl "TIOCGPTN" ]);
    ("unlockpt", [ ioctl "TIOCSPTLCK" ]);
    ("ptsname", [ ioctl "TIOCGPTN" ]);
    ("ptsname_r", [ ioctl "TIOCGPTN" ]);
    ("login_tty", [ ioctl "TIOCSCTTY" ]);
    ("getifaddrs", [ ioctl "SIOCGIFCONF"; ioctl "SIOCGIFFLAGS" ]);
    ("if_nametoindex", [ (Api.Ioctl, 0x8933) ]);
    ("if_indextoname", [ (Api.Ioctl, 0x8910) ]);
    ("gethostid", [ ioctl "SIOCGIFADDR" ]);
    ("fcntl", [ (Api.Fcntl, 0) ]);
    ("lockf", [ (Api.Fcntl, 6); (Api.Fcntl, 5); (Api.Fcntl, 7) ]);
    ("lockf64", [ (Api.Fcntl, 6); (Api.Fcntl, 5) ]);
    ("fdopen", [ (Api.Fcntl, 3) ]);
    ("popen", [ (Api.Fcntl, 2) ]);
    ("dup", [ (Api.Fcntl, 0) ]);
    ("mkostemp", [ (Api.Fcntl, 2) ]);
    ("opendir", [ (Api.Fcntl, 2) ]);
    ("fdopendir", [ (Api.Fcntl, 3); (Api.Fcntl, 2) ]);
    ("daemon", [ (Api.Fcntl, 3); (Api.Fcntl, 4) ]);
    ("pthread_setname_np", [ (Api.Prctl, 15) ]);
    ("pthread_getname_np", [ (Api.Prctl, 16) ]) ]

(* Pseudo-files referenced by libc implementations themselves. *)
let pseudo_map : (string * string list) list =
  [ ("get_nprocs", [ "/proc/stat"; "/sys/devices/system/cpu/online" ]);
    ("get_nprocs_conf", [ "/sys/devices/system/cpu" ]);
    ("get_phys_pages", [ "/proc/meminfo" ]);
    ("get_avphys_pages", [ "/proc/meminfo" ]);
    ("getloadavg", [ "/proc/loadavg" ]);
    ("sysconf", [ "/proc/stat"; "/proc/meminfo" ]);
    ("ttyname", [ "/proc/self/fd" ]);
    ("ttyname_r", [ "/proc/self/fd" ]);
    ("getpt", [ "/dev/ptmx" ]);
    ("posix_openpt", [ "/dev/ptmx" ]);
    ("openpty", [ "/dev/ptmx" ]);
    ("ctermid", [ "/dev/tty" ]);
    ("getpass", [ "/dev/tty" ]);
    ("getlogin", [ "/proc/self/status" ]);
    ("syslog", [ "/dev/console" ]);
    ("gethostid", [ "/proc/sys/kernel/hostname" ]) ]

(* ------------------------------------------------------------------ *)
(* Startup footprints (Table 5): syscalls contributed to every
   dynamically-linked executable by the runtime itself.               *)
(* ------------------------------------------------------------------ *)

let startup_footprint = function
  | Ld_so ->
    [ "access"; "arch_prctl"; "mprotect"; "open"; "openat"; "read";
      "fstat"; "newfstatat"; "lstat"; "mmap"; "munmap"; "close";
      "lseek"; "getcwd"; "getdents"; "getpid"; "madvise"; "mremap";
      "futex"; "uname" ]
  | Libc ->
    [ "clone"; "execve"; "getuid"; "getgid"; "gettid"; "kill";
      "getrlimit"; "exit"; "exit_group"; "brk"; "mmap"; "munmap";
      "mprotect"; "read"; "write"; "close"; "fstat"; "lseek";
      "rt_sigaction"; "futex"; "writev"; "tgkill" ]
  | Libpthread ->
    [ "rt_sigreturn"; "set_robust_list"; "set_tid_address"; "futex";
      "clone"; "mmap"; "mprotect"; "madvise" ]
  | Librt -> [ "rt_sigprocmask"; "futex" ]
  | Libdl -> [ "open"; "read"; "mmap"; "close" ]

(* ------------------------------------------------------------------ *)
(* Catalogue assembly                                                  *)
(* ------------------------------------------------------------------ *)

let syscall_tbl : (string, string list) Hashtbl.t =
  let h = Hashtbl.create 1024 in
  List.iter (fun (name, scs) -> Hashtbl.replace h name scs) syscall_map;
  h

let vop_tbl : (string, (Api.vector * int) list) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun (name, vops) -> Hashtbl.replace h name vops) vop_map;
  h

let pseudo_tbl : (string, string list) Hashtbl.t =
  let h = Hashtbl.create 32 in
  List.iter (fun (name, fs) -> Hashtbl.replace h name fs) pseudo_map;
  h

(* Deterministic pseudo-random size jitter so that the Section 3.5
   size analysis has realistic variance without using Random. *)
let size_jitter name base =
  let h = Hashtbl.hash name in
  base + (h mod (base + 1))

let chk_base name =
  let n = String.length name in
  if n > 6 && String.sub name 0 2 = "__" && String.sub name (n - 4) 4 = "_chk"
  then Some (String.sub name 2 (n - 6))
  else None

(* Tier population fractions, calibrated against Figure 7:
   42.8% of exports at ~100% importance, about 7% more above 50%,
   50.6% below 50% of which 39.7% below 1%, with a fully unused tail
   (the paper counts 222 unused exports). *)
let tier_fractions =
  [ (Ubiquitous, 0.428); (High, 0.066); (Medium, 0.109); (Rare, 0.223) ]
(* remainder: Unused *)

let all : entry list =
  let flat =
    List.concat_map
      (fun (_, names, lib, base) -> List.map (fun n -> (n, lib, base)) names)
      groups
  in
  (* Deduplicate while keeping first (most popular) occurrence. *)
  let seen = Hashtbl.create 2048 in
  let flat =
    List.filter
      (fun (n, _, _) ->
        if Hashtbl.mem seen n then false else (Hashtbl.add seen n (); true))
      flat
  in
  let total = List.length flat in
  let boundaries =
    let cum = ref 0.0 in
    List.map
      (fun (tier, f) ->
        cum := !cum +. f;
        (tier, int_of_float (Float.round (!cum *. float_of_int total))))
      tier_fractions
  in
  let tier_of_rank rank =
    let rec go = function
      | [] -> Unused
      | (tier, bound) :: rest -> if rank < bound then tier else go rest
    in
    go boundaries
  in
  List.mapi
    (fun rank (name, lib, base) ->
      {
        name;
        lib;
        tier = tier_of_rank rank;
        syscalls = Option.value ~default:[] (Hashtbl.find_opt syscall_tbl name);
        vops = Option.value ~default:[] (Hashtbl.find_opt vop_tbl name);
        size = size_jitter name base;
        chk_of = chk_base name;
      })
    flat

let count = List.length all

let by_name : (string, entry) Hashtbl.t =
  let h = Hashtbl.create 2048 in
  List.iter (fun e -> Hashtbl.replace h e.name e) all;
  h

let find name = Hashtbl.find_opt by_name name
let mem name = Hashtbl.mem by_name name

let with_tier tier = List.filter (fun e -> e.tier = tier) all

let with_lib lib = List.filter (fun e -> e.lib = lib) all

let pseudo_files_of name =
  Option.value ~default:[] (Hashtbl.find_opt pseudo_tbl name)

let total_size = List.fold_left (fun acc e -> acc + e.size) 0 all

let api_of_entry e = Api.Libc_sym e.name

