(** Profiles of the libc variants evaluated in Section 4.2 (Table 7):
    eglibc, uClibc, musl and dietlibc, compared against the GNU libc
    export surface of {!Libc_catalog}.

    A variant is modelled as a predicate over GNU libc symbol names.
    The paper's key observation is reproduced structurally:
    - GNU libc headers replace many calls with fortified [__*_chk]
      variants at compile time, so binaries import the [_chk] symbols;
      uClibc and musl do not export those, which collapses their raw
      weighted completeness to ~1%. "Normalization" maps a [_chk]
      import back to its base symbol before matching.
    - dietlibc misses ubiquitously-imported symbols ([memalign],
      [__cxa_finalize]), so it stays at 0% even after normalization. *)

type profile = {
  name : string;
  exported_count_paper : int;  (** Table 7's "#" column *)
  paper_completeness : float;
  paper_completeness_normalized : float;
  exports : string -> bool;  (** does the variant export this symbol? *)
}

(* Symbols with GNU-specific implementation details that smaller libcs
   do not provide. *)
let gnu_only_prefixes =
  [ "__isoc99_"; "_IO_"; "argp_"; "argz_"; "envz_"; "_obstack";
    "obstack_"; "xdr"; "clnt"; "svc"; "pmap_"; "auth"; "xprt_";
    "inet6_opt"; "inet6_rth"; "inet6_option" ]

let has_prefix s p =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_gnu_only name =
  List.exists (has_prefix name) gnu_only_prefixes
  || List.mem name
       [ "strfry"; "memfrob"; "strverscmp"; "backtrace";
         "backtrace_symbols"; "backtrace_symbols_fd"; "mtrace";
         "muntrace"; "mcheck"; "mcheck_check_all"; "mprobe";
         "malloc_info"; "malloc_stats"; "mallinfo"; "fcloseall";
         "fopencookie"; "rpmatch"; "getauxval"; "secure_getenv";
         "canonicalize_file_name"; "get_current_dir_name"; "euidaccess";
         "eaccess"; "getrpcbyname"; "getrpcbynumber"; "getrpcent";
         "getrpcport"; "gnu_get_libc_version"; "gnu_get_libc_release" ]

let is_chk name = Option.is_some (Libc_catalog.chk_base name)

let is_legacy_stub name =
  List.mem name
    [ "gtty"; "stty"; "sstk"; "revoke"; "vlimit"; "vtimes"; "profil";
      "sprofil"; "fattach"; "fdetach"; "getmsg"; "putmsg"; "isastream";
      "uselib_wrapper"; "getpmsg_wrapper"; "putpmsg_wrapper";
      "nfsservctl"; "sysctl"; "ustat" ]

(* dietlibc exports only a small, embedded-oriented core. Crucially it
   lacks memalign and __cxa_finalize, which nearly every package
   imports (8,887 and 7,443 packages respectively in the paper). *)
let dietlibc_exports name =
  (not (is_chk name))
  && (not (is_gnu_only name))
  && (not (List.mem name [ "memalign"; "__cxa_finalize"; "stpcpy" ]))
  &&
  match Libc_catalog.find name with
  | None -> false
  | Some e ->
    (match e.Libc_catalog.tier with
     | Libc_catalog.Ubiquitous | Libc_catalog.High -> true
     | Libc_catalog.Medium ->
       (* roughly half of the mid-tier, deterministically *)
       Hashtbl.hash name mod 2 = 0
     | Libc_catalog.Rare | Libc_catalog.Unused -> false)

(* uClibc and musl cover the POSIX/C99 surface; what they lack is the
   GNU-specific layer: fortified _chk entry points, __isoc99_ wrappers
   and GNU extensions. *)
let uclibc_exports name =
  (not (is_chk name)) && (not (is_gnu_only name))
  && (not (is_legacy_stub name))
  && Libc_catalog.mem name

let musl_exports name =
  (not (is_chk name)) && (not (is_gnu_only name))
  && (not (is_legacy_stub name))
  && (not (List.mem name [ "secure_getenv"; "random_r"; "srandom_r";
                           "initstate_r"; "setstate_r"; "error";
                           "error_at_line" ]))
  && Libc_catalog.mem name

let profiles =
  [ { name = "eglibc 2.19";
      exported_count_paper = 2198;
      paper_completeness = 1.0;
      paper_completeness_normalized = 1.0;
      exports = (fun name -> Libc_catalog.mem name) };
    { name = "uClibc 0.9.33";
      exported_count_paper = 1867;
      paper_completeness = 0.011;
      paper_completeness_normalized = 0.419;
      exports = uclibc_exports };
    { name = "musl 1.1.14";
      exported_count_paper = 1890;
      paper_completeness = 0.011;
      paper_completeness_normalized = 0.432;
      exports = musl_exports };
    { name = "dietlibc 0.33";
      exported_count_paper = 962;
      paper_completeness = 0.0;
      paper_completeness_normalized = 0.0;
      exports = dietlibc_exports } ]

(* Normalize a symbol import for the "normalized" completeness column:
   a fortified __foo_chk import is satisfied by a variant exporting
   foo. *)
let normalize name =
  match Libc_catalog.chk_base name with
  | Some base when Libc_catalog.mem base -> base
  | Some _ | None -> name
