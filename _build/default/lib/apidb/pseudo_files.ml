(** Catalogue of pseudo-files and pseudo-devices studied in Section
    3.4: paths under /proc, /dev and /sys that applications hard-code.
    Paths containing ["%d"] or ["%s"] model the sprintf patterns the
    paper's string analysis recognizes (e.g. "/proc/%d/cmdline").

    Tiers calibrate the synthetic distribution: [Essential] paths are
    referenced by ubiquitous binaries (importance ~100%), [Popular]
    paths by many packages, [Niche] by a specific application or two
    (the /dev/kvm and /proc/kallsyms cases the paper discusses), and
    [Admin] paths are primarily used from the command line, so almost
    no binary embeds them. *)

type tier = Essential | Popular | Niche | Admin

type entry = { path : string; tier : tier }

let e tier path = { path; tier }

let all =
  [ (* The head of Figure 6. *)
    e Essential "/dev/null";
    e Essential "/dev/tty";
    e Essential "/dev/urandom";
    e Essential "/proc/cpuinfo";
    e Essential "/proc/self/exe";
    e Essential "/proc/meminfo";
    e Essential "/proc/stat";
    e Essential "/dev/zero";
    e Essential "/proc/self/maps";
    e Essential "/proc/filesystems";
    e Essential "/dev/console";
    e Essential "/proc/mounts";
    e Essential "/proc/self/fd";
    e Essential "/dev/ptmx";
    e Essential "/proc/%d/cmdline";
    e Popular "/dev/random";
    e Popular "/dev/full";
    e Popular "/dev/pts";
    e Popular "/proc/self/status";
    e Popular "/proc/%d/stat";
    e Popular "/proc/%d/status";
    e Popular "/proc/%d/fd";
    e Popular "/proc/%d/exe";
    e Popular "/proc/%d/maps";
    e Popular "/proc/uptime";
    e Popular "/proc/loadavg";
    e Popular "/proc/version";
    e Popular "/proc/sys/kernel/osrelease";
    e Popular "/proc/sys/kernel/hostname";
    e Popular "/proc/sys/kernel/pid_max";
    e Popular "/proc/sys/fs/file-max";
    e Popular "/proc/net/dev";
    e Popular "/proc/net/route";
    e Popular "/proc/net/tcp";
    e Popular "/proc/net/udp";
    e Popular "/proc/net/unix";
    e Popular "/proc/partitions";
    e Popular "/proc/diskstats";
    e Popular "/proc/swaps";
    e Popular "/sys/devices/system/cpu";
    e Popular "/sys/devices/system/cpu/online";
    e Popular "/sys/class/net";
    e Popular "/dev/stdin";
    e Popular "/dev/stdout";
    e Popular "/dev/stderr";
    e Popular "/dev/shm";
    e Popular "/dev/fd";
    e Popular "/proc/self/mountinfo";
    e Popular "/proc/self/cgroup";
    e Popular "/proc/sys/vm/overcommit_memory";
    e Niche "/dev/kvm";
    e Niche "/proc/kallsyms";
    e Niche "/proc/modules";
    e Niche "/proc/kcore";
    e Niche "/proc/kmsg";
    e Niche "/proc/sysrq-trigger";
    e Niche "/dev/mem";
    e Niche "/dev/kmsg";
    e Niche "/dev/fuse";
    e Niche "/dev/net/tun";
    e Niche "/dev/loop-control";
    e Niche "/dev/mapper/control";
    e Niche "/dev/rtc";
    e Niche "/dev/watchdog";
    e Niche "/dev/input/mice";
    e Niche "/dev/input/event%d";
    e Niche "/dev/fb0";
    e Niche "/dev/dri/card%d";
    e Niche "/dev/snd/controlC%d";
    e Niche "/dev/video%d";
    e Niche "/dev/sr0";
    e Niche "/dev/cdrom";
    e Niche "/dev/hda";
    e Niche "/dev/sda";
    e Niche "/dev/sg%d";
    e Niche "/dev/ppp";
    e Niche "/dev/vhost-net";
    e Niche "/dev/uinput";
    e Niche "/sys/class/block";
    e Niche "/sys/class/power_supply";
    e Niche "/sys/bus/usb/devices";
    e Niche "/sys/kernel/debug";
    e Niche "/sys/module/%s/parameters";
    e Niche "/proc/sys/net/ipv4/ip_forward";
    e Niche "/proc/mdstat";
    e Niche "/proc/mtrr";
    e Niche "/proc/bus/input/devices";
    e Niche "/proc/bus/pci/devices";
    e Niche "/proc/acpi/battery";
    e Niche "/proc/scsi/scsi";
    e Admin "/proc/sys/kernel/core_pattern";
    e Admin "/proc/sys/kernel/panic";
    e Admin "/proc/sys/vm/drop_caches";
    e Admin "/proc/sys/vm/swappiness";
    e Admin "/proc/sys/net/core/somaxconn";
    e Admin "/sys/power/state";
    e Admin "/sys/class/leds";
    e Admin "/dev/port";
    e Admin "/dev/hpet";
    e Admin "/dev/mcelog" ]

let count = List.length all

let by_path : (string, entry) Hashtbl.t =
  let h = Hashtbl.create 256 in
  List.iter (fun entry -> Hashtbl.replace h entry.path entry) all;
  h

let find path = Hashtbl.find_opt by_path path

let with_tier tier = List.filter (fun entry -> entry.tier = tier) all

let api_of_entry entry = Api.Pseudo_file entry.path

(* Recognize a hard-coded string as a pseudo-file reference, applying
   the same normalization as the paper's analysis: printf-style
   integer/string holes are kept as pattern markers. *)
let is_pseudo_path s =
  let prefixes = [ "/proc/"; "/dev/"; "/sys/" ] in
  List.exists (fun p -> String.length s >= String.length p
                        && String.sub s 0 (String.length p) = p)
    prefixes
  || List.mem s [ "/proc"; "/dev"; "/sys" ]
