(** Development-stage classification of the system call table.

    Table 4 of the paper partitions the 272 system calls with
    non-negligible usage into five implementation stages, ordered by
    API importance. We reproduce that structure: stages I-IV follow the
    paper's sample listings and sizes (40 / +41 / +64 / +57), and stage
    V (+70) is split into three importance bands so that the measured
    importance distribution matches Figure 2 (224 calls at 100%
    importance, roughly 33 between 10% and 100%, and a long tail).

    Everything not staged is either [Tail] (used by rare special-purpose
    packages only), [Retired] (the five retired-but-still-attempted
    calls of Section 3.1), or [Unused] (Table 3: eight calls with no
    observed use plus the ten numbers with no kernel entry point). *)

type stage =
  | S1  (** the 40 calls without which "hello world" cannot run *)
  | S2  (** +41: basic I/O multiplexing, sockets, process control *)
  | S3  (** +64: half of a typical installation works *)
  | S4  (** +57: 90% weighted completeness *)
  | S5_essential
      (** stage-V calls that are nevertheless indispensable (importance
          ~100% because an essential package uses them) *)
  | S5_medium  (** stage-V calls with importance between 10% and 100% *)
  | S5_low  (** stage-V calls with importance below 10% *)
  | Tail  (** used only by rare special-purpose packages *)
  | Retired  (** retired but still attempted (uselib, nfsservctl, ...) *)
  | Unused  (** no observed use in the repository (Table 3) *)
  | No_entry  (** defined number with no kernel entry point *)

let stage1 =
  [ "read"; "write"; "open"; "close"; "stat"; "fstat"; "lstat"; "mmap";
    "mprotect"; "munmap"; "madvise"; "rt_sigaction"; "rt_sigprocmask";
    "rt_sigreturn"; "getpid"; "gettid"; "exit"; "exit_group"; "kill";
    "tgkill"; "fcntl"; "getcwd"; "sched_yield"; "dup2"; "vfork";
    "execve"; "getuid"; "getgid"; "getrlimit"; "arch_prctl"; "futex";
    "clone"; "set_tid_address"; "set_robust_list"; "getdents"; "lseek";
    "newfstatat"; "openat"; "writev"; "uname" ]

let stage2 =
  [ "mremap"; "ioctl"; "access"; "socket"; "poll"; "recvmsg"; "dup";
    "unlink"; "wait4"; "select"; "chdir"; "pipe"; "connect"; "sendto";
    "recvfrom"; "sendmsg"; "bind"; "getsockname"; "getpeername";
    "setsockopt"; "getsockopt"; "fork"; "mkdir"; "rename"; "readlink";
    "nanosleep"; "gettimeofday"; "umask"; "fsync"; "fdatasync"; "fchmod";
    "fchown"; "getppid"; "getpgrp"; "setsid"; "geteuid"; "getegid";
    "readv"; "times"; "socketpair"; "sysinfo" ]

let stage3 =
  [ "sigaltstack"; "shutdown"; "symlink"; "alarm"; "listen"; "pread64";
    "getxattr"; "shmget"; "epoll_wait"; "chroot"; "sync"; "getrusage";
    "accept"; "chown"; "chmod"; "truncate"; "ftruncate"; "fchdir";
    "rmdir"; "creat"; "link"; "lchown"; "setuid"; "setgid"; "setpgid";
    "setreuid"; "setregid"; "getgroups"; "setgroups"; "setresuid";
    "getresuid"; "setresgid"; "getresgid"; "getsid"; "setpriority";
    "getpriority"; "sched_getaffinity"; "sched_setaffinity";
    "setitimer"; "getitimer"; "personality"; "statfs"; "fstatfs";
    "setrlimit"; "epoll_create"; "epoll_ctl"; "epoll_create1";
    "getdents64"; "utimes"; "pwrite64"; "sendfile"; "dup3"; "eventfd2";
    "inotify_init"; "inotify_add_watch"; "inotify_rm_watch";
    "timerfd_create"; "timerfd_settime"; "prctl"; "mknod"; "msync";
    "mincore"; "mlock"; "munlock" ]

let stage4 =
  [ "flock"; "semget"; "ppoll"; "mount"; "brk"; "pause";
    "clock_gettime"; "getpgid"; "settimeofday"; "capset"; "reboot";
    "unshare"; "tkill"; "semop"; "semctl"; "semtimedop"; "shmat";
    "shmctl"; "shmdt"; "msgget"; "msgsnd"; "msgrcv"; "msgctl";
    "clock_getres"; "clock_nanosleep"; "clock_settime"; "iopl";
    "ioperm"; "signalfd4"; "umount2"; "swapon"; "swapoff";
    "sethostname"; "setdomainname"; "init_module"; "delete_module";
    "finit_module"; "pivot_root"; "acct"; "adjtimex"; "syslog";
    "ptrace"; "vhangup"; "modify_ldt"; "setfsuid"; "setfsgid";
    "capget"; "rt_sigpending"; "rt_sigtimedwait"; "rt_sigsuspend";
    "rt_sigqueueinfo"; "mlockall"; "munlockall"; "readahead";
    "setxattr"; "lsetxattr"; "fsetxattr" ]

let stage5_essential =
  [ "timer_create"; "timer_settime"; "timer_gettime"; "timer_delete";
    "timer_getoverrun"; "splice"; "utimensat"; "fallocate";
    "prlimit64"; "sched_setscheduler"; "sched_setparam";
    "sched_getscheduler"; "sched_getparam"; "sched_get_priority_max";
    "sched_get_priority_min"; "sched_rr_get_interval";
    "inotify_init1"; "timerfd_gettime"; "waitid"; "accept4"; "pipe2";
    "fadvise64" ]

let stage5_medium =
  [ "mbind"; "add_key"; "keyctl"; "request_key"; "preadv"; "pwritev";
    "utime"; "name_to_handle_at"; "perf_event_open"; "sendmmsg";
    "ioprio_set"; "ioprio_get"; "mknodat"; "unlinkat"; "linkat";
    "symlinkat"; "renameat"; "readlinkat"; "fchownat"; "fchmodat";
    "futimesat"; "faccessat"; "mkdirat"; "io_setup"; "io_submit";
    "io_destroy"; "io_cancel"; "signalfd"; "eventfd"; "vmsplice";
    "tee"; "sync_file_range"; "lgetxattr" ]

let stage5_low =
  [ "epoll_pwait"; "pselect6"; "getcpu"; "clock_adjtime"; "renameat2";
    "getrandom"; "memfd_create"; "setns"; "process_vm_readv";
    "process_vm_writev"; "kcmp"; "recvmmsg"; "io_getevents";
    "fanotify_init"; "fanotify_mark" ]

let tail =
  [ "_sysctl"; "ustat"; "time"; "quotactl"; "migrate_pages";
    "kexec_load"; "kexec_file_load"; "seccomp"; "sched_setattr";
    "sched_getattr"; "bpf"; "execveat"; "open_by_handle_at"; "mq_open";
    "mq_unlink"; "mq_timedsend"; "mq_timedreceive"; "mq_getsetattr";
    "fgetxattr"; "listxattr"; "llistxattr"; "flistxattr";
    "removexattr"; "lremovexattr"; "fremovexattr"; "syncfs";
    "set_mempolicy"; "get_mempolicy" ]

(* The eight calls with defined entry points but no observed use
   (Table 3), in addition to the ten no-entry numbers. *)
let unused =
  [ "sysfs"; "rt_tgsigqueueinfo"; "get_robust_list";
    "remap_file_pages"; "mq_notify"; "lookup_dcookie";
    "restart_syscall"; "move_pages" ]

let stage5 = stage5_essential @ stage5_medium @ stage5_low

(* Cumulative stage sets, matching Table 4's "# supported" column. *)
let cumulative = function
  | 1 -> stage1
  | 2 -> stage1 @ stage2
  | 3 -> stage1 @ stage2 @ stage3
  | 4 -> stage1 @ stage2 @ stage3 @ stage4
  | 5 -> stage1 @ stage2 @ stage3 @ stage4 @ stage5
  | n -> invalid_arg (Printf.sprintf "Stages.cumulative: %d" n)

let by_name : (string, stage) Hashtbl.t =
  let h = Hashtbl.create 512 in
  let put stage names = List.iter (fun n -> Hashtbl.replace h n stage) names in
  put S1 stage1;
  put S2 stage2;
  put S3 stage3;
  put S4 stage4;
  put S5_essential stage5_essential;
  put S5_medium stage5_medium;
  put S5_low stage5_low;
  put Tail tail;
  put Unused unused;
  put Retired Syscall_table.retired_tried_names;
  put No_entry Syscall_table.no_entry_names;
  h

let stage_of_name name =
  match Hashtbl.find_opt by_name name with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Stages.stage_of_name: unclassified %s" name)

let stage_of_nr nr = stage_of_name (Syscall_table.name_of_nr nr)

let stage_name = function
  | S1 -> "I"
  | S2 -> "II"
  | S3 -> "III"
  | S4 -> "IV"
  | S5_essential -> "V/essential"
  | S5_medium -> "V/medium"
  | S5_low -> "V/low"
  | Tail -> "tail"
  | Retired -> "retired"
  | Unused -> "unused"
  | No_entry -> "no-entry"

(* Target importance band for calibration of the synthetic
   distribution, expressed as (low, high) probabilities that a random
   installation needs the call. *)
let importance_band = function
  | S1 | S2 | S3 | S4 | S5_essential -> (0.999, 1.0)
  | S5_medium -> (0.10, 0.95)
  | S5_low -> (0.01, 0.10)
  | Tail | Retired -> (0.001, 0.08)
  | Unused | No_entry -> (0.0, 0.0)

let all_staged = cumulative 5

(* Sanity: sizes follow Table 4. Checked again by the test suite. *)
let () =
  assert (List.length stage1 = 40);
  assert (List.length stage2 = 41);
  assert (List.length stage3 = 64);
  assert (List.length stage4 = 57);
  assert (List.length stage5 = 70)
