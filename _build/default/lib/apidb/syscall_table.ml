(** The x86-64 Linux 3.19 system call table (numbers 0-322), as defined
    in arch/x86/syscalls/syscall_64.tbl. Retirement status follows the
    paper's Section 3.1 and Table 3 classification:
    - [Active]: implemented and callable.
    - [Retired_tried]: officially retired but still attempted by legacy
      software for backward compatibility (Section 3.1 lists five).
    - [No_entry]: number reserved in the headers but wired to
      sys_ni_syscall, so it always fails with -ENOSYS. *)

type status = Active | Retired_tried | No_entry

type entry = { nr : int; name : string; status : status }

(* The five retired-but-still-attempted calls of Section 3.1. *)
let retired_tried_names =
  [ "uselib"; "nfsservctl"; "afs_syscall"; "vserver"; "security" ]

(* Numbers present in the table but answered by sys_ni_syscall on
   x86-64 (ten of the eighteen unused calls of Table 3). *)
let no_entry_names =
  [ "create_module"; "get_kernel_syms"; "query_module"; "getpmsg";
    "putpmsg"; "tuxcall"; "set_thread_area"; "get_thread_area";
    "epoll_ctl_old"; "epoll_wait_old" ]

let raw_names =
  [| "read"; "write"; "open"; "close"; "stat"; "fstat"; "lstat"; "poll";
     "lseek"; "mmap"; "mprotect"; "munmap"; "brk"; "rt_sigaction";
     "rt_sigprocmask"; "rt_sigreturn"; "ioctl"; "pread64"; "pwrite64";
     "readv"; "writev"; "access"; "pipe"; "select"; "sched_yield";
     "mremap"; "msync"; "mincore"; "madvise"; "shmget"; "shmat";
     "shmctl"; "dup"; "dup2"; "pause"; "nanosleep"; "getitimer";
     "alarm"; "setitimer"; "getpid"; "sendfile"; "socket"; "connect";
     "accept"; "sendto"; "recvfrom"; "sendmsg"; "recvmsg"; "shutdown";
     "bind"; "listen"; "getsockname"; "getpeername"; "socketpair";
     "setsockopt"; "getsockopt"; "clone"; "fork"; "vfork"; "execve";
     "exit"; "wait4"; "kill"; "uname"; "semget"; "semop"; "semctl";
     "shmdt"; "msgget"; "msgsnd"; "msgrcv"; "msgctl"; "fcntl"; "flock";
     "fsync"; "fdatasync"; "truncate"; "ftruncate"; "getdents";
     "getcwd"; "chdir"; "fchdir"; "rename"; "mkdir"; "rmdir"; "creat";
     "link"; "unlink"; "symlink"; "readlink"; "chmod"; "fchmod";
     "chown"; "fchown"; "lchown"; "umask"; "gettimeofday"; "getrlimit";
     "getrusage"; "sysinfo"; "times"; "ptrace"; "getuid"; "syslog";
     "getgid"; "setuid"; "setgid"; "geteuid"; "getegid"; "setpgid";
     "getppid"; "getpgrp"; "setsid"; "setreuid"; "setregid";
     "getgroups"; "setgroups"; "setresuid"; "getresuid"; "setresgid";
     "getresgid"; "getpgid"; "setfsuid"; "setfsgid"; "getsid";
     "capget"; "capset"; "rt_sigpending"; "rt_sigtimedwait";
     "rt_sigqueueinfo"; "rt_sigsuspend"; "sigaltstack"; "utime";
     "mknod"; "uselib"; "personality"; "ustat"; "statfs"; "fstatfs";
     "sysfs"; "getpriority"; "setpriority"; "sched_setparam";
     "sched_getparam"; "sched_setscheduler"; "sched_getscheduler";
     "sched_get_priority_max"; "sched_get_priority_min";
     "sched_rr_get_interval"; "mlock"; "munlock"; "mlockall";
     "munlockall"; "vhangup"; "modify_ldt"; "pivot_root"; "_sysctl";
     "prctl"; "arch_prctl"; "adjtimex"; "setrlimit"; "chroot"; "sync";
     "acct"; "settimeofday"; "mount"; "umount2"; "swapon"; "swapoff";
     "reboot"; "sethostname"; "setdomainname"; "iopl"; "ioperm";
     "create_module"; "init_module"; "delete_module";
     "get_kernel_syms"; "query_module"; "quotactl"; "nfsservctl";
     "getpmsg"; "putpmsg"; "afs_syscall"; "tuxcall"; "security";
     "gettid"; "readahead"; "setxattr"; "lsetxattr"; "fsetxattr";
     "getxattr"; "lgetxattr"; "fgetxattr"; "listxattr"; "llistxattr";
     "flistxattr"; "removexattr"; "lremovexattr"; "fremovexattr";
     "tkill"; "time"; "futex"; "sched_setaffinity";
     "sched_getaffinity"; "set_thread_area"; "io_setup"; "io_destroy";
     "io_getevents"; "io_submit"; "io_cancel"; "get_thread_area";
     "lookup_dcookie"; "epoll_create"; "epoll_ctl_old";
     "epoll_wait_old"; "remap_file_pages"; "getdents64";
     "set_tid_address"; "restart_syscall"; "semtimedop"; "fadvise64";
     "timer_create"; "timer_settime"; "timer_gettime";
     "timer_getoverrun"; "timer_delete"; "clock_settime";
     "clock_gettime"; "clock_getres"; "clock_nanosleep"; "exit_group";
     "epoll_wait"; "epoll_ctl"; "tgkill"; "utimes"; "vserver";
     "mbind"; "set_mempolicy"; "get_mempolicy"; "mq_open"; "mq_unlink";
     "mq_timedsend"; "mq_timedreceive"; "mq_notify"; "mq_getsetattr";
     "kexec_load"; "waitid"; "add_key"; "request_key"; "keyctl";
     "ioprio_set"; "ioprio_get"; "inotify_init"; "inotify_add_watch";
     "inotify_rm_watch"; "migrate_pages"; "openat"; "mkdirat";
     "mknodat"; "fchownat"; "futimesat"; "newfstatat"; "unlinkat";
     "renameat"; "linkat"; "symlinkat"; "readlinkat"; "fchmodat";
     "faccessat"; "pselect6"; "ppoll"; "unshare"; "set_robust_list";
     "get_robust_list"; "splice"; "tee"; "sync_file_range";
     "vmsplice"; "move_pages"; "utimensat"; "epoll_pwait"; "signalfd";
     "timerfd_create"; "eventfd"; "fallocate"; "timerfd_settime";
     "timerfd_gettime"; "accept4"; "signalfd4"; "eventfd2";
     "epoll_create1"; "dup3"; "pipe2"; "inotify_init1"; "preadv";
     "pwritev"; "rt_tgsigqueueinfo"; "perf_event_open"; "recvmmsg";
     "fanotify_init"; "fanotify_mark"; "prlimit64";
     "name_to_handle_at"; "open_by_handle_at"; "clock_adjtime";
     "syncfs"; "sendmmsg"; "setns"; "getcpu"; "process_vm_readv";
     "process_vm_writev"; "kcmp"; "finit_module"; "sched_setattr";
     "sched_getattr"; "renameat2"; "seccomp"; "getrandom";
     "memfd_create"; "kexec_file_load"; "bpf"; "execveat" |]

let status_of_name name =
  if List.mem name retired_tried_names then Retired_tried
  else if List.mem name no_entry_names then No_entry
  else Active

let all : entry array =
  Array.mapi (fun nr name -> { nr; name; status = status_of_name name }) raw_names

let count = Array.length all

let by_nr nr = if nr >= 0 && nr < count then Some all.(nr) else None

let name_index : (string, int) Hashtbl.t =
  let h = Hashtbl.create 512 in
  Array.iter (fun e -> Hashtbl.replace h e.name e.nr) all;
  h

let nr_of_name name = Hashtbl.find_opt name_index name

let nr_of_name_exn name =
  match nr_of_name name with
  | Some nr -> nr
  | None -> invalid_arg (Printf.sprintf "Syscall_table.nr_of_name_exn: %s" name)

let name_of_nr nr =
  match by_nr nr with Some e -> e.name | None -> Printf.sprintf "syscall_%d" nr

let api_of_name name = Api.Syscall (nr_of_name_exn name)

let active = Array.to_list all |> List.filter (fun e -> e.status = Active)
let retired_tried = Array.to_list all |> List.filter (fun e -> e.status = Retired_tried)
let no_entry = Array.to_list all |> List.filter (fun e -> e.status = No_entry)

let is_valid_nr nr = nr >= 0 && nr < count
