(** Profiles of the Linux-compatible systems and emulation layers
    evaluated in Section 4.1 (Table 6).

    The paper identifies each system's supported system call list by
    inspecting its sources. We model a system as: the size of its
    supported set, plus the calls the paper explicitly reports as
    missing (its "suggested APIs to add"). The concrete supported set
    is constructed against an importance ranking: take calls in rank
    order, skipping the known-missing ones, until the reported count is
    reached. This mirrors how mature layers cover the important calls
    first while still lacking the specific ones the paper names. *)

type profile = {
  name : string;
  supported_count : int;
  missing : string list;  (** paper's "suggested APIs to add" *)
  paper_completeness : float;  (** Table 6's W.Comp. column *)
}

let profiles =
  [ { name = "User-Mode-Linux 3.19";
      supported_count = 284;
      missing = [ "name_to_handle_at"; "iopl"; "ioperm"; "perf_event_open" ];
      paper_completeness = 0.931 };
    { name = "L4Linux 4.3";
      supported_count = 286;
      missing = [ "quotactl"; "migrate_pages"; "kexec_load" ];
      paper_completeness = 0.993 };
    { name = "FreeBSD-emu 10.2";
      supported_count = 225;
      missing =
        [ "inotify_init"; "inotify_init1"; "inotify_add_watch";
          "inotify_rm_watch"; "splice"; "umount2"; "timerfd_create";
          "timerfd_settime"; "timerfd_gettime" ];
      paper_completeness = 0.623 };
    { name = "Graphene";
      supported_count = 143;
      missing =
        [ "sched_setscheduler"; "sched_setparam"; "statfs"; "utimes";
          "getxattr"; "fallocate"; "eventfd2" ];
      paper_completeness = 0.0042 };
    { name = "Graphene+sched";
      supported_count = 145;
      missing = [ "statfs"; "utimes"; "getxattr"; "fallocate"; "eventfd2" ];
      paper_completeness = 0.211 } ]

let find name = List.find_opt (fun p -> p.name = name) profiles

(* Construct the concrete supported set of a profile given a ranking of
   syscall numbers from most to least important. *)
let supported_set ~ranking profile =
  let missing_nrs =
    List.filter_map Syscall_table.nr_of_name profile.missing
  in
  let rec take acc n = function
    | [] -> acc
    | nr :: rest ->
      if n = 0 then acc
      else if List.mem nr missing_nrs then take acc n rest
      else take (nr :: acc) (n - 1) rest
  in
  take [] profile.supported_count ranking |> List.rev
