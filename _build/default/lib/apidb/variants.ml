(** API variant families studied in Section 5 (Tables 8-11): pairs or
    groups of system calls providing similar functionality, where the
    paper contrasts adoption of the secure vs. insecure, new vs. old,
    Linux-specific vs. portable, and powerful vs. simple variants.

    Each member carries the paper's measured unweighted API importance
    (the fraction of packages using the call). These values calibrate
    the synthetic distribution generator's per-package adoption rates
    and serve as the reference column in the experiment reports. *)

type category =
  | Id_management  (** Table 8: unclear vs well-defined set*id semantics *)
  | Directory_races  (** Table 8: non-atomic vs atomic *at operations *)
  | Old_vs_new  (** Table 9 *)
  | Linux_vs_portable  (** Table 10 *)
  | Powerful_vs_simple  (** Table 11 *)

type role = Insecure | Secure | Old | New | Linux_specific | Portable
          | Powerful | Simple

type member = {
  syscall : string;
  role : role;
  paper_unweighted : float;  (** fraction of packages, from the paper *)
}

type family = { category : category; title : string; members : member list }

let m syscall role paper_unweighted = { syscall; role; paper_unweighted }

let families =
  [ { category = Id_management;
      title = "setuid family";
      members =
        [ m "setuid" Insecure 0.1567; m "setreuid" Insecure 0.0188;
          m "setresuid" Secure 0.9968 ] };
    { category = Id_management;
      title = "setgid family";
      members =
        [ m "setgid" Insecure 0.1207; m "setregid" Insecure 0.0124;
          m "setresgid" Secure 0.9968 ] };
    { category = Id_management;
      title = "getuid family";
      members =
        [ m "getuid" Insecure 0.9981; m "geteuid" Insecure 0.5515;
          m "getresuid" Secure 0.3619 ] };
    { category = Id_management;
      title = "getgid family";
      members =
        [ m "getgid" Insecure 0.9981; m "getegid" Insecure 0.4887;
          m "getresgid" Secure 0.3614 ] };
    { category = Directory_races;
      title = "access vs faccessat";
      members = [ m "access" Insecure 0.7424; m "faccessat" Secure 0.0063 ] };
    { category = Directory_races;
      title = "mkdir vs mkdirat";
      members = [ m "mkdir" Insecure 0.5207; m "mkdirat" Secure 0.0034 ] };
    { category = Directory_races;
      title = "rename vs renameat";
      members = [ m "rename" Insecure 0.4318; m "renameat" Secure 0.0030 ] };
    { category = Directory_races;
      title = "readlink vs readlinkat";
      members = [ m "readlink" Insecure 0.4638; m "readlinkat" Secure 0.0050 ] };
    { category = Directory_races;
      title = "chown vs fchownat";
      members = [ m "chown" Insecure 0.2459; m "fchownat" Secure 0.0023 ] };
    { category = Directory_races;
      title = "chmod vs fchmodat";
      members = [ m "chmod" Insecure 0.3980; m "fchmodat" Secure 0.0013 ] };
    { category = Old_vs_new;
      title = "getdents vs getdents64";
      members = [ m "getdents" Old 0.9980; m "getdents64" New 0.0008 ] };
    { category = Old_vs_new;
      title = "utime vs utimes";
      members = [ m "utime" Old 0.0857; m "utimes" New 0.1790 ] };
    { category = Old_vs_new;
      title = "fork family vs clone";
      members =
        [ m "fork" Old 0.0007; m "vfork" Old 0.9968; m "clone" New 0.9986 ] };
    { category = Old_vs_new;
      title = "tkill vs tgkill";
      members = [ m "tkill" Old 0.0051; m "tgkill" New 0.9980 ] };
    { category = Old_vs_new;
      title = "wait4 vs waitid";
      members = [ m "wait4" Old 0.6056; m "waitid" New 0.0024 ] };
    { category = Linux_vs_portable;
      title = "preadv vs readv";
      members = [ m "preadv" Linux_specific 0.0015; m "readv" Portable 0.6223 ] };
    { category = Linux_vs_portable;
      title = "pwritev vs writev";
      members =
        [ m "pwritev" Linux_specific 0.0016; m "writev" Portable 0.9980 ] };
    { category = Linux_vs_portable;
      title = "accept4 vs accept";
      members =
        [ m "accept4" Linux_specific 0.0093; m "accept" Portable 0.2935 ] };
    { category = Linux_vs_portable;
      title = "ppoll vs poll";
      members = [ m "ppoll" Linux_specific 0.0390; m "poll" Portable 0.7107 ] };
    { category = Linux_vs_portable;
      title = "recvmmsg vs recvmsg";
      members =
        [ m "recvmmsg" Linux_specific 0.0011; m "recvmsg" Portable 0.6882 ] };
    { category = Linux_vs_portable;
      title = "sendmmsg vs sendmsg";
      members =
        [ m "sendmmsg" Linux_specific 0.0517; m "sendmsg" Portable 0.4249 ] };
    { category = Linux_vs_portable;
      title = "pipe2 vs pipe";
      members = [ m "pipe2" Linux_specific 0.4033; m "pipe" Portable 0.5033 ] };
    { category = Powerful_vs_simple;
      title = "pread64 vs read";
      members = [ m "read" Simple 0.9988; m "pread64" Powerful 0.2723 ] };
    { category = Powerful_vs_simple;
      title = "dup family";
      members =
        [ m "dup3" Powerful 0.0872; m "dup2" Simple 0.9975;
          m "dup" Simple 0.6664 ] };
    { category = Powerful_vs_simple;
      title = "recvmsg vs recvfrom";
      members = [ m "recvmsg" Powerful 0.6882; m "recvfrom" Simple 0.5380 ] };
    { category = Powerful_vs_simple;
      title = "sendmsg vs sendto";
      members = [ m "sendmsg" Powerful 0.4249; m "sendto" Simple 0.7171 ] };
    { category = Powerful_vs_simple;
      title = "pselect6 vs select";
      members = [ m "select" Simple 0.6153; m "pselect6" Powerful 0.0413 ] };
    { category = Powerful_vs_simple;
      title = "fchdir vs chdir";
      members = [ m "chdir" Simple 0.4461; m "fchdir" Powerful 0.0220 ] } ]

let with_category c = List.filter (fun f -> f.category = c) families

(* Every syscall mentioned in a family, with its target adoption rate.
   Later entries do not override earlier ones: the first (table-order)
   figure wins, which keeps duplicated members (recvmsg, sendmsg)
   consistent. *)
let adoption_targets : (string * float) list =
  let seen = Hashtbl.create 64 in
  List.concat_map (fun f -> f.members) families
  |> List.filter_map (fun mem ->
         if Hashtbl.mem seen mem.syscall then None
         else begin
           Hashtbl.add seen mem.syscall ();
           Some (mem.syscall, mem.paper_unweighted)
         end)

let adoption_target syscall = List.assoc_opt syscall adoption_targets
