(** Operation-code tables for the vectored system calls studied in
    Section 3.3: ioctl (635 codes defined in Linux 3.19 plus drivers),
    fcntl (18 codes) and prctl (44 codes).

    The head of each table lists real kernel opcode names and values.
    For ioctl, the long driver-defined tail is modelled with synthetic
    per-driver families: the study treats opcodes as opaque scalars, so
    only their count and usage tier matter. Tiers drive calibration:
    [Ubiquitous] codes are requested by essential packages (importance
    ~100%), [Common] by enough packages to exceed 1% importance,
    [Rare] by at least one package, and [Unused] by none. *)

type tier = Ubiquitous | Common | Rare | Unused

type op = { vector : Api.vector; name : string; code : int; tier : tier }

let op vector tier (name, code) = { vector; name; code; tier }

(* 47 TTY-console and generic I/O-device codes with ~100% importance
   plus five more (Figure 4 highlights 52 codes at 100%). *)
let ioctl_ubiquitous =
  [ ("TCGETS", 0x5401); ("TCSETS", 0x5402); ("TCSETSW", 0x5403);
    ("TCSETSF", 0x5404); ("TCGETA", 0x5405); ("TCSETA", 0x5406);
    ("TCSETAW", 0x5407); ("TCSETAF", 0x5408); ("TCSBRK", 0x5409);
    ("TCXONC", 0x540A); ("TCFLSH", 0x540B); ("TIOCEXCL", 0x540C);
    ("TIOCSCTTY", 0x540E); ("TIOCGPGRP", 0x540F); ("TIOCSPGRP", 0x5410);
    ("TIOCOUTQ", 0x5411); ("TIOCSTI", 0x5412); ("TIOCGWINSZ", 0x5413);
    ("TIOCSWINSZ", 0x5414); ("TIOCMGET", 0x5415); ("TIOCMBIS", 0x5416);
    ("TIOCMBIC", 0x5417); ("TIOCMSET", 0x5418); ("TIOCGSOFTCAR", 0x5419);
    ("TIOCSSOFTCAR", 0x541A); ("FIONREAD", 0x541B); ("TIOCPKT", 0x5420);
    ("FIONBIO", 0x5421); ("TIOCNOTTY", 0x5422); ("TIOCSETD", 0x5423);
    ("TIOCGETD", 0x5424); ("TCSBRKP", 0x5425); ("TIOCSBRK", 0x5427);
    ("TIOCCBRK", 0x5428); ("TIOCGSID", 0x5429);
    ("TIOCGLCKTRMIOS", 0x5456); ("TIOCSLCKTRMIOS", 0x5457);
    ("TIOCGICOUNT", 0x545D); ("TIOCMIWAIT", 0x545C);
    ("FIONCLEX", 0x5450); ("FIOCLEX", 0x5451); ("FIOASYNC", 0x5452);
    ("FIOQSIZE", 0x5460); ("TIOCGPTN", 0x80045430);
    ("TIOCSPTLCK", 0x40045431); ("FIOGETOWN", 0x8903);
    ("FIOSETOWN", 0x8901);
    (* generic, non-TTY *)
    ("FIGETBSZ", 0x2); ("SIOCGIFCONF", 0x8912); ("SIOCGIFFLAGS", 0x8913);
    ("SIOCGIFADDR", 0x8915); ("SIOCGIFHWADDR", 0x8927) ]

(* Codes used widely enough to exceed 1% importance (Figure 4 counts
   188 such codes including the ubiquitous head). *)
let ioctl_common_named =
  [ ("SIOCSIFFLAGS", 0x8914); ("SIOCSIFADDR", 0x8916);
    ("SIOCGIFNETMASK", 0x891B); ("SIOCSIFNETMASK", 0x891C);
    ("SIOCGIFMTU", 0x8921); ("SIOCSIFMTU", 0x8922);
    ("SIOCGIFINDEX", 0x8933); ("SIOCETHTOOL", 0x8946);
    ("SIOCGIFNAME", 0x8910); ("SIOCADDRT", 0x890B);
    ("SIOCDELRT", 0x890C); ("SIOCGIFBRDADDR", 0x8919);
    ("SIOCGIFCOUNT", 0x8938); ("SIOCGARP", 0x8954);
    ("BLKGETSIZE", 0x1260); ("BLKSSZGET", 0x1268);
    ("BLKGETSIZE64", 0x80081272); ("BLKFLSBUF", 0x1261);
    ("BLKROGET", 0x125E); ("BLKRRPART", 0x125F);
    ("BLKDISCARD", 0x1277); ("FITRIM", 0xC0185879);
    ("HDIO_GETGEO", 0x0301); ("HDIO_GET_IDENTITY", 0x030D);
    ("CDROMEJECT", 0x5309); ("CDROMCLOSETRAY", 0x5319);
    ("CDROM_GET_CAPABILITY", 0x5331); ("CDROM_DRIVE_STATUS", 0x5326);
    ("SG_IO", 0x2285); ("SG_GET_VERSION_NUM", 0x2282);
    ("LOOP_SET_FD", 0x4C00); ("LOOP_CLR_FD", 0x4C01);
    ("LOOP_GET_STATUS64", 0x4C05); ("LOOP_SET_STATUS64", 0x4C04);
    ("LOOP_CTL_GET_FREE", 0x4C82);
    ("VT_GETSTATE", 0x5603); ("VT_ACTIVATE", 0x5606);
    ("VT_WAITACTIVE", 0x5607); ("VT_OPENQRY", 0x5600);
    ("KDGETLED", 0x4B31); ("KDGKBTYPE", 0x4B33); ("KDGKBMODE", 0x4B44);
    ("KDSKBMODE", 0x4B45); ("KDGETMODE", 0x4B3B); ("KDSETMODE", 0x4B3A);
    ("RTC_RD_TIME", 0x80247009); ("RTC_SET_TIME", 0x4024700A);
    ("RTC_UIE_ON", 0x7003); ("RTC_UIE_OFF", 0x7004);
    ("TUNSETIFF", 0x400454CA); ("TUNSETPERSIST", 0x400454CB);
    ("TUNGETFEATURES", 0x800454CF);
    ("FS_IOC_GETFLAGS", 0x80086601); ("FS_IOC_SETFLAGS", 0x40086602);
    ("FS_IOC_FIEMAP", 0xC020660B); ("FIBMAP", 0x1);
    ("EVIOCGVERSION", 0x80044501); ("EVIOCGID", 0x80084502);
    ("EVIOCGNAME", 0x80FF4506); ("EVIOCGBIT", 0x80FF4520);
    ("EVIOCGRAB", 0x40044590);
    ("SNDCTL_DSP_SPEED", 0xC0045002); ("SNDCTL_DSP_SETFMT", 0xC0045005);
    ("SNDCTL_DSP_CHANNELS", 0xC0045006); ("SNDCTL_DSP_GETBLKSIZE", 0xC0045004);
    ("SIOCINQ", 0x541B0001); ("SIOCOUTQ", 0x54110001);
    ("PERF_EVENT_IOC_ENABLE", 0x2400); ("PERF_EVENT_IOC_DISABLE", 0x2401);
    ("PPPIOCGUNIT", 0x80047456); ("PPPIOCNEWUNIT", 0xC004743E) ]

(* Synthetic driver families filling the long tail out to the 635
   codes of Linux 3.19. (family, ioctl type byte, count). *)
let ioctl_families =
  [ ("DRM_IOCTL", 0x64, 64); ("KVM", 0xAE, 48); ("VIDIOC", 0x56, 56);
    ("SNDRV_PCM_IOCTL", 0x41, 40); ("SNDRV_CTL_IOCTL", 0x55, 28);
    ("USBDEVFS", 0x75, 30); ("HIDIOC", 0x48, 16); ("BTRFS_IOC", 0x94, 44);
    ("XFS_IOC", 0x58, 24); ("EXT4_IOC", 0x66, 12); ("NBD", 0xAB, 10);
    ("MEMIOC", 0x4D, 12); ("WDIOC", 0x57, 10); ("I2C", 0x07, 10);
    ("SPI_IOC", 0x6B, 8); ("FDIOC", 0x02, 12); ("MTIOC", 0x6D, 8);
    ("RNDIOC", 0x52, 6); ("VHOST", 0xAF, 14); ("FUSE_DEV_IOC", 0xE5, 4);
    ("AUTOFS_IOC", 0x93, 10); ("DM_IOC", 0xFD, 16); ("SCSI_IOCTL", 0x53, 12);
    ("ATMIOC", 0x61, 10); ("GPIOIOC", 0xB4, 6) ]

let ioctl_family_ops =
  let make (family, ty, count) =
    List.init count (fun i ->
        let name = Printf.sprintf "%s_%02d" family i in
        (* Encode _IO(type, nr) style: type byte shifted into bits 8-15. *)
        let code = (ty lsl 8) lor i lor 0x100000 in
        (name, code))
  in
  List.concat_map make ioctl_families

let ioctl_target_total = 635

let ioctl_ops =
  let named_ubiq = List.map (op Api.Ioctl Ubiquitous) ioctl_ubiquitous in
  let named_common = List.map (op Api.Ioctl Common) ioctl_common_named in
  (* Figure 4: 188 codes above 1% importance, 280 with any use at all,
     the rest unused. Distribute the synthetic tail accordingly. *)
  let n_named = List.length named_ubiq + List.length named_common in
  let n_common_extra = max 0 (188 - n_named) in
  let n_rare = max 0 (280 - 188) in
  let tail_tiers =
    List.mapi
      (fun i entry ->
        let tier =
          if i < n_common_extra then Common
          else if i < n_common_extra + n_rare then Rare
          else Unused
        in
        op Api.Ioctl tier entry)
      ioctl_family_ops
  in
  let all = named_ubiq @ named_common @ tail_tiers in
  (* Top up with anonymous driver codes if families fall short. *)
  let missing = max 0 (ioctl_target_total - List.length all) in
  let extra =
    List.init missing (fun i ->
        op Api.Ioctl Unused (Printf.sprintf "DRIVER_PRIV_%03d" i, 0x200000 lor i))
  in
  all @ extra

let fcntl_ops =
  let u = op Api.Fcntl Ubiquitous and c = op Api.Fcntl Common in
  let r = op Api.Fcntl Rare in
  [ u ("F_DUPFD", 0); u ("F_GETFD", 1); u ("F_SETFD", 2); u ("F_GETFL", 3);
    u ("F_SETFL", 4); u ("F_GETLK", 5); u ("F_SETLK", 6); u ("F_SETLKW", 7);
    u ("F_SETOWN", 8); u ("F_GETOWN", 9); u ("F_DUPFD_CLOEXEC", 1030);
    c ("F_SETSIG", 10); c ("F_GETSIG", 11); c ("F_SETLEASE", 1024);
    c ("F_GETLEASE", 1025); c ("F_NOTIFY", 1026);
    r ("F_SETOWN_EX", 15); r ("F_GETOWN_EX", 16) ]

let prctl_ops =
  let u = op Api.Prctl Ubiquitous and c = op Api.Prctl Common in
  let r = op Api.Prctl Rare and x = op Api.Prctl Unused in
  [ (* Nine codes at ~100% importance (Figure 5). *)
    u ("PR_SET_NAME", 15); u ("PR_GET_NAME", 16);
    u ("PR_SET_PDEATHSIG", 1); u ("PR_GET_DUMPABLE", 3);
    u ("PR_SET_DUMPABLE", 4); u ("PR_SET_SECCOMP", 22);
    u ("PR_GET_SECCOMP", 21); u ("PR_SET_NO_NEW_PRIVS", 38);
    u ("PR_SET_KEEPCAPS", 8);
    (* Nine more above 20% importance (eighteen total). *)
    c ("PR_GET_PDEATHSIG", 2); c ("PR_GET_KEEPCAPS", 7);
    c ("PR_CAPBSET_READ", 23); c ("PR_CAPBSET_DROP", 24);
    c ("PR_SET_SECUREBITS", 28); c ("PR_GET_SECUREBITS", 27);
    c ("PR_SET_TIMERSLACK", 29); c ("PR_GET_TIMERSLACK", 30);
    c ("PR_SET_CHILD_SUBREAPER", 36);
    (* The rarely-used remainder of the 44 codes in Linux 3.19. *)
    r ("PR_GET_CHILD_SUBREAPER", 37); r ("PR_GET_NO_NEW_PRIVS", 39);
    r ("PR_SET_PTRACER", 0x59616d61); r ("PR_GET_TID_ADDRESS", 40);
    r ("PR_MCE_KILL", 33); r ("PR_MCE_KILL_GET", 34);
    r ("PR_SET_MM", 35); r ("PR_GET_TSC", 25); r ("PR_SET_TSC", 26);
    r ("PR_GET_TIMING", 13); r ("PR_SET_TIMING", 14);
    x ("PR_GET_UNALIGN", 5); x ("PR_SET_UNALIGN", 6);
    x ("PR_GET_FPEMU", 9); x ("PR_SET_FPEMU", 10);
    x ("PR_GET_FPEXC", 11); x ("PR_SET_FPEXC", 12);
    x ("PR_GET_ENDIAN", 19); x ("PR_SET_ENDIAN", 20);
    x ("PR_TASK_PERF_EVENTS_DISABLE", 31);
    x ("PR_TASK_PERF_EVENTS_ENABLE", 32);
    x ("PR_SET_THP_DISABLE", 41); x ("PR_GET_THP_DISABLE", 42);
    x ("PR_MPX_ENABLE_MANAGEMENT", 43); x ("PR_MPX_DISABLE_MANAGEMENT", 44) ]

let all_ops = ioctl_ops @ fcntl_ops @ prctl_ops

let ops_of_vector = function
  | Api.Ioctl -> ioctl_ops
  | Api.Fcntl -> fcntl_ops
  | Api.Prctl -> prctl_ops

let by_api : (Api.t, op) Hashtbl.t =
  let h = Hashtbl.create 1024 in
  List.iter (fun o -> Hashtbl.replace h (Api.Vop (o.vector, o.code)) o) all_ops;
  h

let find vector code = Hashtbl.find_opt by_api (Api.Vop (vector, code))

let name vector code =
  match find vector code with
  | Some o -> o.name
  | None -> Printf.sprintf "%s:0x%x" (Api.vector_name vector) code

let api_of_op o = Api.Vop (o.vector, o.code)

let with_tier vector tier =
  List.filter (fun o -> o.tier = tier) (ops_of_vector vector)
