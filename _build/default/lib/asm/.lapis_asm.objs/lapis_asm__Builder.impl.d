lib/asm/builder.ml: Buffer Encode Hashtbl Insn Int32 Int64 Lapis_apidb Lapis_elf Lapis_x86 List Program String
