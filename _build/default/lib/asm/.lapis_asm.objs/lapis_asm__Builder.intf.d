lib/asm/builder.mli: Lapis_elf Program
