lib/asm/program.ml: Lapis_apidb Lapis_elf
