(** Two-pass assembler: expands {!Program.op} lists into machine code,
    lays out functions, PLT stubs, strings and the GOT, and emits a
    linked {!Lapis_elf.Image.t}. *)

exception Unknown_symbol of string
(** Raised when a program references a local function that is not
    defined. *)

val assemble : Program.t -> Lapis_elf.Image.t

val assemble_elf : Program.t -> string
(** [Lapis_elf.Writer.write (assemble prog)]. *)
