(** High-level description of a synthetic binary: functions made of
    operations that exercise exactly the code patterns the paper's
    static analysis recognizes — direct syscall instructions with
    immediate numbers, vectored syscalls with immediate opcodes, calls
    through the PLT (including the libc [syscall] helper), hard-coded
    pseudo-file strings, and lea-materialized function pointers. *)

type op =
  | Direct_syscall of int
      (** mov eax, nr; syscall — inline system call *)
  | Direct_syscall_unknown
      (** syscall with the number computed at run time: the ~4% of
          call sites the paper could not resolve (Section 2.4) *)
  | Int80_syscall of int  (** legacy int $0x80 gate *)
  | Vectored_syscall of Lapis_apidb.Api.vector * int
      (** inline ioctl/fcntl/prctl with an immediate operation code *)
  | Call_local of string  (** direct call to a function in this binary *)
  | Call_import of string  (** call through the PLT *)
  | Call_import_vop of string * Lapis_apidb.Api.vector * int
      (** call ioctl/fcntl/prctl through libc with an immediate code *)
  | Call_syscall_import of int
      (** call libc's syscall() wrapper with an immediate number *)
  | Use_string of string
      (** materialize a .rodata string address (hard-coded path) *)
  | Take_fnptr of string
      (** lea of a local function then an indirect call — the
          over-approximated function-pointer pattern of Section 7 *)
  | Padding of int  (** filler nops, for realistic function sizes *)

type func = {
  fname : string;
  global : bool;
  ops : op list;
}

type t = {
  kind : Lapis_elf.Image.kind;
  entry_fn : string option;  (** e_entry function, executables only *)
  funcs : func list;
  needed : string list;
  soname : string option;
  interp : string option;
}

let func ?(global = true) fname ops = { fname; global; ops }

let executable ?(interp = Some "/lib64/ld-linux-x86-64.so.2") ~entry_fn
    ~needed funcs =
  {
    kind =
      (if needed = [] && interp = None then Lapis_elf.Image.Exec_static
       else Lapis_elf.Image.Exec_dynamic);
    entry_fn = Some entry_fn;
    funcs;
    needed;
    soname = None;
    interp = (if needed = [] then None else interp);
  }

let shared_lib ~soname ~needed funcs =
  {
    kind = Lapis_elf.Image.Shared_lib;
    entry_fn = None;
    funcs;
    needed;
    soname = Some soname;
    interp = None;
  }
