lib/distro/libc_gen.ml: Api Builder Lapis_apidb Lapis_asm Libc_catalog List Program Stages Syscall_table
