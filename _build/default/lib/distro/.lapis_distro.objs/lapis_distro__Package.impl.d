lib/distro/package.ml: Hashtbl Lapis_apidb List
