lib/distro/rng.ml: Array Hashtbl Int64 List
