lib/distro/rng.mli:
