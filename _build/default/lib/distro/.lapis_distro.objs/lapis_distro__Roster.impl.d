lib/distro/roster.ml: Api Lapis_apidb
