(** Deterministic pseudo-random number generator (splitmix64-based)
    used by the distribution generator and the Monte-Carlo installation
    sampler. A dedicated generator keeps every synthetic distribution
    reproducible from its seed, independent of global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  (* splitmix64 *)
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0  (* 2^53 *)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)

let bool t p = float t < p

(* Uniform choice from a non-empty list. *)
let choose t lst =
  match lst with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth lst (int t (List.length lst))

(* Sample [k] distinct elements from [lst] (all of them if k exceeds
   the length), via partial Fisher-Yates on an array copy. *)
let sample t k lst =
  let arr = Array.of_list lst in
  let n = Array.length arr in
  let k = min k n in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)

(* Split off an independent generator (for per-package determinism). *)
let split t = create (Int64.to_int (next t))

(* Deterministic per-key float in [0,1): stable across runs and
   independent of draw order. *)
let keyed_float seed key =
  let g = create (seed lxor Hashtbl.hash key) in
  float g
