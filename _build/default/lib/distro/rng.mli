(** Deterministic pseudo-random number generator (splitmix64). Every
    synthetic distribution is reproducible from its seed, independent
    of global [Random] state. *)

type t

val create : int -> t

val next : t -> int64
(** The next raw 64-bit state output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument]
    when [bound <= 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k lst] draws [k] distinct elements (all of them if [k]
    exceeds the length). *)

val split : t -> t
(** An independent generator derived from this one's stream. *)

val keyed_float : int -> string -> float
(** [keyed_float seed key] is a stable per-key uniform float in
    [0, 1), independent of draw order — used for per-API calibration
    constants. *)
