(** Package roster seeds: the named packages the paper's tables
    attribute specific API usage to, the essential base system, the
    interpreter packages, and the shared-library packages whose
    exports wrap particular system calls (Table 1/2 attribution). *)

open Lapis_apidb

(* Essential base-system packages with near-universal installation.
   Their collective footprints pin the ~224 indispensable system calls
   at 100% API importance. *)
let essentials : (string * float) list =
  [ ("coreutils", 0.999); ("dash", 0.999); ("bash", 0.998);
    ("grep", 0.998); ("sed", 0.998); ("tar", 0.997); ("gzip", 0.997);
    ("findutils", 0.997); ("util-linux", 0.996); ("procps", 0.995);
    ("mount", 0.995); ("login", 0.994); ("passwd", 0.994);
    ("hostname", 0.993); ("debianutils", 0.993); ("diffutils", 0.992);
    ("dpkg", 0.999); ("apt", 0.998); ("base-files", 0.999);
    ("base-passwd", 0.999); ("bsdutils", 0.996); ("e2fsprogs", 0.99);
    ("init-system", 0.99); ("sysvinit-utils", 0.99); ("cpio", 0.93);
    ("cron", 0.96); ("rsyslog", 0.90); ("udev", 0.97); ("dbus", 0.94);
    ("ncurses-bin", 0.98); ("less", 0.95); ("nano", 0.90);
    ("net-tools", 0.92); ("iproute2", 0.93); ("iputils-ping", 0.95);
    ("ifupdown", 0.91); ("isc-dhcp-client", 0.90); ("openssh-client", 0.93);
    ("wget", 0.92); ("curl", 0.85); ("gnupg", 0.94); ("bzip2", 0.95);
    ("xz-utils", 0.96); ("file", 0.90); ("man-db", 0.92);
    ("adduser", 0.98); ("lsb-base", 0.98); ("netbase", 0.97);
    ("kmod", 0.95); ("initramfs-tools", 0.93); ("console-setup", 0.89);
    ("keyboard-configuration", 0.90); ("ucf", 0.93); ("insserv", 0.90);
    ("libpam-modules", 0.97); ("network-manager", 0.72) ]

(* Interpreter packages (Figure 1): scripts inherit the interpreter's
   footprint. dash and bash are already essential. *)
let interpreters : (string * float) list =
  [ ("python2.7", 0.92); ("perl", 0.95); ("ruby1.9", 0.25) ]

(* Shared-library packages: (package, soname, install prob,
   exports as (symbol, syscall names, vops, pseudo-files)). The first
   export listed is the "pure" one consumers link against without
   inheriting syscalls. *)
type lib_export = {
  le_sym : string;
  le_syscalls : string list;
  le_vops : (Api.vector * int) list;
  le_pseudo : string list;
}

type lib_pkg = {
  lp_name : string;
  lp_soname : string;
  lp_prob : float;
  lp_exports : lib_export list;
}

let e ?(vops = []) ?(pseudo = []) le_sym le_syscalls =
  { le_sym; le_syscalls; le_vops = vops; le_pseudo = pseudo }

let lib_packages : lib_pkg list =
  [ { lp_name = "libnuma"; lp_soname = "libnuma.so.1"; lp_prob = 0.20;
      lp_exports =
        [ e "numa_available" [];
          e "numa_alloc_onnode" [ "mbind"; "mmap" ];
          e "numa_set_membind" [ "set_mempolicy"; "mbind" ];
          e "numa_run_on_node" [ "sched_setaffinity" ];
          e "numa_migrate_pages" [ "migrate_pages" ] ] };
    { lp_name = "libopenblas"; lp_soname = "libopenblas.so.0";
      lp_prob = 0.20;
      lp_exports =
        [ e "openblas_get_config" [];
          e "openblas_set_num_threads" [ "sched_setaffinity"; "mbind" ] ] };
    { lp_name = "libkeyutils"; lp_soname = "libkeyutils.so.1";
      lp_prob = 0.272;
      lp_exports =
        [ e "keyutils_version" [];
          e "add_key" [ "add_key" ];
          e "keyctl" [ "keyctl" ];
          e "request_key" [ "request_key" ] ] };
    { lp_name = "libaio"; lp_soname = "libaio.so.1"; lp_prob = 0.15;
      lp_exports =
        [ e "io_queue_run" [];
          e "io_queue_init" [ "io_setup" ];
          e "io_queue_release" [ "io_destroy" ];
          e "io_submit_wrapper" [ "io_submit" ];
          e "io_cancel_wrapper" [ "io_cancel" ] ] };
    { lp_name = "libselinux"; lp_soname = "libselinux.so.1";
      lp_prob = 0.55;
      lp_exports =
        [ e "is_selinux_enabled" ~pseudo:[ "/proc/filesystems" ] [];
          e "getfilecon" [ "getxattr"; "lgetxattr" ];
          e "setfilecon" [ "setxattr" ] ] };
    { lp_name = "libcap2"; lp_soname = "libcap.so.2"; lp_prob = 0.60;
      lp_exports =
        [ e "cap_free" [];
          e "cap_get_proc" [ "capget" ];
          e "cap_set_proc" [ "capset" ] ] };
    { lp_name = "libncurses"; lp_soname = "libncurses.so.5";
      lp_prob = 0.93;
      lp_exports =
        [ e "curs_set" [];
          e "initscr"
            ~vops:
              [ (Api.Ioctl, 0x5413) (* TIOCGWINSZ *);
                (Api.Ioctl, 0x5401) (* TCGETS *);
                (Api.Ioctl, 0x5402) (* TCSETS *) ]
            ~pseudo:[ "/dev/tty" ]
            [ "ioctl" ] ] };
    { lp_name = "libglib2.0"; lp_soname = "libglib-2.0.so.0";
      lp_prob = 0.82;
      lp_exports =
        [ e "g_free" [];
          e "g_spawn_async" [ "clone"; "execve"; "pipe2"; "dup2" ];
          e "g_file_monitor" [ "inotify_init1"; "inotify_add_watch" ];
          e "g_random_int" ~pseudo:[ "/dev/urandom" ] [ "open"; "read" ] ] };
    { lp_name = "libssl"; lp_soname = "libssl.so.1.0.0"; lp_prob = 0.85;
      lp_exports =
        [ e "SSL_library_init" [];
          e "RAND_poll" ~pseudo:[ "/dev/urandom"; "/dev/random" ]
            [ "open"; "read"; "close"; "gettimeofday" ];
          e "BIO_new_socket" [ "socket"; "setsockopt" ] ] } ]

(* Special-purpose packages the paper names (Tables 2 and Section 3.1),
   with the APIs they are responsible for. *)
type special = {
  sp_name : string;
  sp_prob : float;
  sp_syscalls : string list;
  sp_vops : (Api.vector * int) list;
  sp_pseudo : string list;
  sp_deps : string list;
  sp_level : int;
}

let sp ?(vops = []) ?(pseudo = []) ?(deps = []) ?(level = 5) sp_name sp_prob
    sp_syscalls =
  { sp_name; sp_prob; sp_syscalls; sp_vops = vops; sp_pseudo = pseudo;
    sp_deps = deps; sp_level = level }

let specials : special list =
  [ sp "kexec-tools" 0.010 [ "kexec_load"; "kexec_file_load"; "reboot" ]
      ~pseudo:[ "/proc/kcore" ];
    sp "coop-computing-tools" 0.010
      [ "seccomp"; "sched_setattr"; "sched_getattr"; "renameat2" ];
    sp "systemd" 0.040
      [ "clock_adjtime"; "renameat2"; "timerfd_create";
        "epoll_create1"; "epoll_ctl"; "accept4"; "name_to_handle_at" ]
      ~pseudo:[ "/proc/self/cgroup"; "/dev/kmsg"; "/proc/self/mountinfo" ];
    sp "qemu-user" 0.010
      [ "mq_timedsend"; "mq_getsetattr"; "mq_open"; "mq_timedreceive" ];
    sp "ioping" 0.005 [ "io_getevents"; "io_submit"; "io_setup" ];
    sp "zfs-fuse" 0.005 [ "io_getevents" ] ~pseudo:[ "/dev/fuse" ];
    sp "valgrind" 0.030 [ "getcpu"; "ptrace"; "process_vm_readv" ];
    sp "rt-tests" 0.010 [ "getcpu"; "sched_setattr" ];
    sp "nfs-common" 0.070 [ "nfsservctl" ];
    sp "perf-tools" 0.030 [ "perf_event_open" ]
      ~pseudo:[ "/proc/kallsyms"; "/sys/kernel/debug" ];
    sp "numactl" 0.050 [ "migrate_pages" ] ~deps:[ "libnuma" ];
    sp "quota-tools" 0.020 [ "quotactl" ];
    sp "criu" 0.004 [ "kcmp"; "setns"; "process_vm_writev"; "memfd_create" ];
    sp "lxc-utils" 0.015 [ "setns"; "pivot_root" ];
    sp "open-iscsi" 0.010 [ "open_by_handle_at"; "name_to_handle_at" ];
    sp "libc5-compat" 0.008 [ "uselib"; "_sysctl"; "ustat"; "time" ];
    sp "openafs-client" 0.008 [ "afs_syscall" ];
    sp "util-vserver" 0.004 [ "vserver" ];
    sp "selinux-legacy" 0.004 [ "security" ];
    sp "attr-tools" 0.060
      [ "fgetxattr"; "listxattr"; "llistxattr"; "flistxattr";
        "removexattr"; "lremovexattr"; "fremovexattr" ];
    sp "mqueue-utils" 0.006 [ "mq_open"; "mq_unlink" ];
    sp "bpf-tools" 0.003 [ "bpf"; "execveat" ];
    sp "sync-tools" 0.015 [ "syncfs" ];
    sp "numa-tuning" 0.012 [ "set_mempolicy"; "get_mempolicy" ] ]

(* qemu: the most demanding application — its MIPS emulator needs 270
   system calls (Section 3.2). *)
let qemu_name = "qemu"
let qemu_prob = 0.020

(* Packages using the legacy int $0x80 gate. *)
let legacy_int80 = [ ("ia32-compat", 0.004) ]

(* Sections for filler packages. *)
let sections =
  [ "admin"; "devel"; "doc"; "editors"; "games"; "graphics"; "mail";
    "math"; "net"; "perl"; "python"; "science"; "sound"; "text";
    "utils"; "video"; "web"; "x11" ]
