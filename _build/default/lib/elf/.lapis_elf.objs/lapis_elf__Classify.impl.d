lib/elf/classify.ml: Filename Image List Reader String
