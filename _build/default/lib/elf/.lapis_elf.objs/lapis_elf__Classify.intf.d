lib/elf/classify.mli:
