lib/elf/image.ml: List Option String
