lib/elf/layout.ml: Image Option String
