lib/elf/reader.ml: Array Char Fmt Image List String
