lib/elf/reader.mli: Format Image
