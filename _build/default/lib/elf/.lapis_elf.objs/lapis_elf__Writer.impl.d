lib/elf/writer.ml: Buffer Char Hashtbl Image Layout List String
