lib/elf/writer.mli: Image
