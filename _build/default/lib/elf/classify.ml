(** File classification for Figure 1: ELF binaries (static executables,
    dynamically-linked executables, shared libraries) vs. applications
    written in interpreted languages, detected by shebang, as in the
    paper's repository scan. *)

type interpreter = Dash | Bash | Python | Perl | Ruby | Other_interp of string

type t =
  | Elf_static
  | Elf_dynamic
  | Elf_shared_lib
  | Script of interpreter
  | Data  (** neither ELF nor an executable script *)

let interpreter_name = function
  | Dash -> "Shell (dash)"
  | Bash -> "Shell (bash)"
  | Python -> "Python"
  | Perl -> "Perl"
  | Ruby -> "Ruby"
  | Other_interp name -> name

let name = function
  | Elf_static -> "ELF static executable"
  | Elf_dynamic -> "ELF dynamic executable"
  | Elf_shared_lib -> "ELF shared library"
  | Script i -> interpreter_name i
  | Data -> "data"

let interpreter_of_path path =
  let base =
    match String.rindex_opt path '/' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  (* strip version suffixes: python3.4 -> python *)
  let stem =
    let n = String.length base in
    let rec strip i =
      if i > 0 && (match base.[i - 1] with '0' .. '9' | '.' -> true | _ -> false)
      then strip (i - 1)
      else i
    in
    String.sub base 0 (strip n)
  in
  match stem with
  | "sh" | "dash" -> Dash
  | "bash" -> Bash
  | "python" -> Python
  | "perl" -> Perl
  | "ruby" -> Ruby
  | other -> Other_interp other

let classify bytes : t =
  let n = String.length bytes in
  if n >= 4 && String.sub bytes 0 4 = "\x7fELF" then
    match Reader.parse bytes with
    | Ok img ->
      (match img.Image.kind with
       | Image.Exec_static -> Elf_static
       | Image.Exec_dynamic -> Elf_dynamic
       | Image.Shared_lib -> Elf_shared_lib)
    | Error _ -> Data
  else if n >= 2 && bytes.[0] = '#' && bytes.[1] = '!' then begin
    let line =
      match String.index_opt bytes '\n' with
      | Some i -> String.sub bytes 2 (i - 2)
      | None -> String.sub bytes 2 (n - 2)
    in
    let line = String.trim line in
    (* "#!/usr/bin/env python" names the interpreter in argv[1] *)
    let words =
      String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> Data
    | prog :: args ->
      let target =
        if Filename.basename prog = "env" then
          match args with a :: _ -> a | [] -> prog
        else prog
      in
      Script (interpreter_of_path target)
  end
  else Data
