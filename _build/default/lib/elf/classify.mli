(** File classification for Figure 1: ELF binaries vs. interpreted
    scripts, detected by shebang. *)

type interpreter = Dash | Bash | Python | Perl | Ruby | Other_interp of string

type t =
  | Elf_static
  | Elf_dynamic
  | Elf_shared_lib
  | Script of interpreter
  | Data  (** neither ELF nor an executable script *)

val interpreter_name : interpreter -> string

val name : t -> string
(** Human-readable label, matching Figure 1's legend. *)

val interpreter_of_path : string -> interpreter
(** Interpreter identity from a shebang program path; version suffixes
    are stripped ([python2.7] -> Python) and [env] indirection is
    handled by {!classify}. *)

val classify : string -> t
(** Classify file contents: ELF magic + header kind, [#!] shebang, or
    plain data. *)
