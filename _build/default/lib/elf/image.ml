(** In-memory model of an ELF64 binary: the information the study's
    pipeline needs, independent of on-disk encoding. {!Writer}
    serializes an image to ELF bytes and {!Reader} parses ELF bytes
    back into an image; the round trip is identity on the fields
    below (checked by the test suite). *)

type kind = Exec_static | Exec_dynamic | Shared_lib

type symbol = {
  sym_name : string;
  sym_addr : int;  (** virtual address *)
  sym_size : int;
  sym_global : bool;
}

type t = {
  kind : kind;
  entry : int;  (** entry point virtual address; 0 for libraries *)
  text : string;  (** .text contents *)
  text_addr : int;
  rodata : string;  (** .rodata contents *)
  rodata_addr : int;
  symbols : symbol list;  (** defined function symbols *)
  imports : string list;  (** undefined dynamic symbols *)
  plt_got : (string * int) list;
      (** import name -> GOT slot address; PLT stubs in .text jump
          through these slots, and the reader recovers the mapping from
          .rela.plt (R_X86_64_JUMP_SLOT relocations) *)
  needed : string list;  (** DT_NEEDED sonames *)
  soname : string option;
  interp : string option;  (** PT_INTERP path for dynamic executables *)
}

let load_base = function
  | Exec_static | Exec_dynamic -> 0x400000
  | Shared_lib -> 0x10000

let find_symbol t name =
  List.find_opt (fun s -> s.sym_name = name) t.symbols

(* Map a virtual address to an offset inside .text, if it lands there. *)
let text_offset t addr =
  if addr >= t.text_addr && addr < t.text_addr + String.length t.text then
    Some (addr - t.text_addr)
  else None

let rodata_offset t addr =
  if addr >= t.rodata_addr && addr < t.rodata_addr + String.length t.rodata
  then Some (addr - t.rodata_addr)
  else None

(* The function symbol covering [addr], if any. *)
let symbol_at t addr =
  List.find_opt
    (fun s -> addr >= s.sym_addr && addr < s.sym_addr + s.sym_size)
    t.symbols

(* The import reached through the GOT slot at [addr], if any. *)
let import_via_got t addr =
  List.find_opt (fun (_, got) -> got = addr) t.plt_got
  |> Option.map fst
