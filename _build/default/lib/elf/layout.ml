(** Address layout shared by the assembler and the ELF writer.

    The assembler must know the final virtual addresses of .text,
    .rodata and the GOT before it can emit rip-relative displacements,
    and the writer must place the sections at exactly those addresses.
    Both therefore derive the layout from this single computation.
    Allocated sections satisfy [file_offset = vaddr - load_base]
    (single PT_LOAD mapping). *)

type t = {
  base : int;
  interp_off : int;
  interp_size : int;  (** including NUL *)
  text_off : int;
  text_addr : int;
  rodata_off : int;
  rodata_addr : int;
  got_off : int;
  got_addr : int;
  got_size : int;
}

let header_size = 64
let phentsize = 56

let align n a = (n + a - 1) / a * a

let phnum ~interp = if Option.is_some interp then 2 else 1

let compute ~kind ~interp ~text_size ~rodata_size ~n_imports =
  let base = Image.load_base kind in
  let interp_size =
    match interp with None -> 0 | Some s -> String.length s + 1
  in
  let interp_off = header_size + (phnum ~interp * phentsize) in
  let text_off = align (interp_off + interp_size) 16 in
  let rodata_off = align (text_off + text_size) 16 in
  let got_off = align (rodata_off + rodata_size) 8 in
  {
    base;
    interp_off;
    interp_size;
    text_off;
    text_addr = base + text_off;
    rodata_off;
    rodata_addr = base + rodata_off;
    got_off;
    got_addr = base + got_off;
    got_size = 8 * n_imports;
  }

let got_slot t i = t.got_addr + (8 * i)
