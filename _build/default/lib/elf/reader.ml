(** Parser from ELF64 bytes back to {!Image.t}. This is the entry
    point of the study pipeline: the analyzer never sees generator
    state, only the bytes of each binary, exactly like the paper's
    objdump-based tool. *)

type error =
  | Not_elf
  | Unsupported of string
  | Malformed of string

let pp_error ppf = function
  | Not_elf -> Fmt.pf ppf "not an ELF file"
  | Unsupported what -> Fmt.pf ppf "unsupported ELF: %s" what
  | Malformed what -> Fmt.pf ppf "malformed ELF: %s" what

exception Fail of error

let u8 s pos = Char.code s.[pos]
let u16 s pos = u8 s pos lor (u8 s (pos + 1) lsl 8)
let u32 s pos = u16 s pos lor (u16 s (pos + 2) lsl 16)

let u64 s pos =
  (* The study's addresses fit in OCaml's 63-bit int. *)
  let lo = u32 s pos and hi = u32 s (pos + 4) in
  if hi land 0x80000000 <> 0 then raise (Fail (Malformed "64-bit overflow"));
  lo lor (hi lsl 32)

type raw_section = {
  name : string;
  stype : int;
  addr : int;
  off : int;
  size : int;
  link : int;
  entsize : int;
}

let cstring data pos =
  match String.index_from_opt data pos '\x00' with
  | Some stop -> String.sub data pos (stop - pos)
  | None -> String.sub data pos (String.length data - pos)

let section_data bytes s = String.sub bytes s.off s.size

let parse_sections bytes =
  let shoff = u64 bytes 0x28 in
  let shentsize = u16 bytes 0x3A in
  let shnum = u16 bytes 0x3C in
  let shstrndx = u16 bytes 0x3E in
  if shentsize <> 64 then raise (Fail (Malformed "shentsize"));
  let raw i =
    let p = shoff + (i * 64) in
    ( u32 bytes p,
      {
        name = "";
        stype = u32 bytes (p + 4);
        addr = u64 bytes (p + 16);
        off = u64 bytes (p + 24);
        size = u64 bytes (p + 32);
        link = u32 bytes (p + 40);
        entsize = u64 bytes (p + 56);
      } )
  in
  let raws = List.init shnum raw in
  let _, shstr =
    try List.nth raws shstrndx with _ -> raise (Fail (Malformed "shstrndx"))
  in
  let shstrtab = section_data bytes shstr in
  List.map (fun (nameoff, s) -> { s with name = cstring shstrtab nameoff }) raws

let parse_symbols bytes sections symsec =
  let strsec =
    try List.nth sections symsec.link
    with _ -> raise (Fail (Malformed "symtab link"))
  in
  let strtab = section_data bytes strsec in
  let data = section_data bytes symsec in
  let n = String.length data / 24 in
  List.init n (fun i ->
      let p = i * 24 in
      let nameoff = u32 data p in
      let info = u8 data (p + 4) in
      let shndx = u16 data (p + 6) in
      let value = u64 data (p + 8) in
      let size = u64 data (p + 16) in
      (cstring strtab nameoff, info, shndx, value, size))

let find sections name = List.find_opt (fun s -> s.name = name) sections

let parse bytes : (Image.t, error) result =
  try
    if String.length bytes < 64 then raise (Fail Not_elf);
    if String.sub bytes 0 4 <> "\x7fELF" then raise (Fail Not_elf);
    if u8 bytes 4 <> 2 then raise (Fail (Unsupported "not ELF64"));
    if u8 bytes 5 <> 1 then raise (Fail (Unsupported "not little-endian"));
    let e_type = u16 bytes 0x10 in
    if u16 bytes 0x12 <> 0x3E then raise (Fail (Unsupported "not x86-64"));
    let entry = u64 bytes 0x18 in
    let sections = parse_sections bytes in
    let text =
      match find sections ".text" with
      | Some s -> s
      | None -> raise (Fail (Malformed "no .text"))
    in
    let rodata = find sections ".rodata" in
    let interp =
      match find sections ".interp" with
      | Some s ->
        let d = section_data bytes s in
        Some (cstring d 0)
      | None -> None
    in
    let dynsyms =
      match find sections ".dynsym" with
      | Some s -> parse_symbols bytes sections s
      | None -> []
    in
    let imports =
      List.filter_map
        (fun (name, _, shndx, _, _) ->
          if shndx = 0 && name <> "" then Some name else None)
        dynsyms
    in
    let symbols =
      match find sections ".symtab" with
      | Some s ->
        parse_symbols bytes sections s
        |> List.filter_map (fun (name, info, shndx, value, size) ->
               if shndx <> 0 && name <> "" then
                 Some
                   {
                     Image.sym_name = name;
                     sym_addr = value;
                     sym_size = size;
                     sym_global = info lsr 4 = 1;
                   }
               else None)
      | None -> []
    in
    let plt_got =
      match find sections ".rela.plt" with
      | Some s ->
        let data = section_data bytes s in
        let dynsym_arr = Array.of_list dynsyms in
        List.init (String.length data / 24) (fun i ->
            let p = i * 24 in
            let got = u64 data p in
            let info = u64 data (p + 8) in
            let symidx = info lsr 32 in
            if symidx >= Array.length dynsym_arr then
              raise (Fail (Malformed "rela.plt symbol index"));
            let name, _, _, _, _ = dynsym_arr.(symidx) in
            (name, got))
      | None -> []
    in
    let needed, soname =
      match find sections ".dynamic" with
      | Some s ->
        let strsec =
          try List.nth sections s.link
          with _ -> raise (Fail (Malformed "dynamic link"))
        in
        let strtab = section_data bytes strsec in
        let data = section_data bytes s in
        let n = String.length data / 16 in
        let needed = ref [] and soname = ref None in
        for i = 0 to n - 1 do
          let tag = u64 data (i * 16) in
          let v = u64 data ((i * 16) + 8) in
          if tag = 1 then needed := cstring strtab v :: !needed
          else if tag = 14 then soname := Some (cstring strtab v)
        done;
        (List.rev !needed, !soname)
      | None -> ([], None)
    in
    let kind =
      if e_type = 3 then Image.Shared_lib
      else if imports = [] && needed = [] then Image.Exec_static
      else Image.Exec_dynamic
    in
    Ok
      {
        Image.kind;
        entry;
        text = section_data bytes text;
        text_addr = text.addr;
        rodata =
          (match rodata with Some s -> section_data bytes s | None -> "");
        rodata_addr = (match rodata with Some s -> s.addr | None -> 0);
        symbols;
        imports;
        plt_got;
        needed;
        soname;
        interp;
      }
  with
  | Fail e -> Error e
  | Invalid_argument _ -> Error (Malformed "out-of-bounds section data")
