(** Parser from ELF64 bytes to {!Image.t} — the entry point of the
    study pipeline. The analyzer never sees generator state, only the
    bytes of each binary, exactly like the paper's objdump-based
    tool. *)

type error =
  | Not_elf
  | Unsupported of string  (** valid ELF, but not ELF64/x86-64/LE *)
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Image.t, error) result
(** Parse the bytes of an ELF file. Never raises: malformed input
    yields [Error]. *)
