(** Serializer from {!Image.t} to ELF64 bytes. Emits a single-PT_LOAD
    object with the sections the study's analysis consumes: .interp,
    .text, .rodata, .got, .dynsym, .dynstr, .rela.plt, .dynamic,
    .symtab, .strtab, .shstrtab. The image's section addresses must
    come from {!Layout.compute}; {!Reader.parse} inverts this function
    on every field the pipeline uses. *)

val write : Image.t -> string
