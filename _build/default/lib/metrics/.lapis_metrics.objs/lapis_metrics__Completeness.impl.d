lib/metrics/completeness.ml: Api Array Hashtbl Lapis_apidb Lapis_store List Option
