lib/metrics/completeness.mli: Api Lapis_apidb Lapis_store
