lib/metrics/importance.ml: Api Array Lapis_apidb Lapis_store List Syscall_table
