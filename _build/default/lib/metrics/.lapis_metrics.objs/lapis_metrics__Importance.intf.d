lib/metrics/importance.mli: Api Lapis_apidb Lapis_store Syscall_table
