lib/metrics/montecarlo.ml: Api Array Completeness Hashtbl Lapis_apidb Lapis_distro Lapis_store List
