lib/metrics/montecarlo.mli: Api Lapis_apidb Lapis_distro Lapis_store
