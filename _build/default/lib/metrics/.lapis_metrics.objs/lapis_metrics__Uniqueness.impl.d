lib/metrics/uniqueness.ml: Api Hashtbl Lapis_analysis Lapis_apidb Lapis_elf Lapis_store List Option Printf String Syscall_table
