lib/metrics/uniqueness.mli: Api Lapis_apidb Lapis_store
