(** Monte-Carlo validation of the closed-form metrics: sample concrete
    installations (each package installed independently with its
    popcon probability, dependencies pulled in APT-style) and measure
    importance and completeness empirically. The test suite checks the
    closed forms against these samples, validating the independence
    assumption the paper makes explicit in Section 2.2. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Rng = Lapis_distro.Rng

type installation = bool array  (** indexed like [store.packages] *)

let sample_installation rng (store : Store.t) : installation =
  let n = store.Store.n_packages in
  let inst = Array.make n false in
  Array.iteri
    (fun i (p : Store.pkg_row) ->
      if Rng.bool rng p.Store.pr_prob then inst.(i) <- true)
    store.Store.packages;
  (* APT pulls dependencies in *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i (p : Store.pkg_row) ->
        if inst.(i) then
          List.iter
            (fun d ->
              match Hashtbl.find_opt store.Store.pkg_index d with
              | Some j when not inst.(j) ->
                inst.(j) <- true;
                changed := true
              | _ -> ())
            p.Store.pr_deps)
      store.Store.packages
  done;
  inst

(* Empirical API importance: fraction of sampled installations that
   contain at least one dependent of [api]. *)
let empirical_importance ?(samples = 400) ~seed store api =
  let rng = Rng.create seed in
  let deps = Store.dependents store api in
  let hits = ref 0 in
  for _ = 1 to samples do
    let inst = sample_installation rng store in
    if List.exists (fun i -> inst.(i)) deps then incr hits
  done;
  float_of_int !hits /. float_of_int samples

(* Empirical weighted completeness of a syscall set: mean fraction of
   installed packages whose footprints the set covers. *)
let empirical_completeness ?(samples = 200) ~seed store nrs =
  let set =
    List.fold_left (fun s nr -> Api.Set.add (Api.Syscall nr) s) Api.Set.empty nrs
  in
  let supported api =
    match api with Api.Syscall _ -> Api.Set.mem api set | _ -> true
  in
  let ok =
    Completeness.supported_packages ~scope:Completeness.Syscalls_only store
      ~supported
  in
  let rng = Rng.create seed in
  let total = ref 0.0 and rounds = ref 0 in
  for _ = 1 to samples do
    let inst = sample_installation rng store in
    let installed = ref 0 and good = ref 0 in
    Array.iteri
      (fun i flag ->
        if flag then begin
          incr installed;
          if ok.(i) then incr good
        end)
      inst;
    if !installed > 0 then begin
      total := !total +. (float_of_int !good /. float_of_int !installed);
      incr rounds
    end
  done;
  if !rounds = 0 then 0.0 else !total /. float_of_int !rounds
