(** Monte-Carlo validation of the closed-form metrics: sample concrete
    installations and measure importance and completeness empirically,
    checking the package-independence assumption of Section 2.2. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Rng = Lapis_distro.Rng

type installation = bool array
(** One sampled installation, indexed like [store.packages]. *)

val sample_installation : Rng.t -> Store.t -> installation
(** Draw an installation: each package independently with its popcon
    probability, then the APT dependency closure pulls dependencies
    in. *)

val empirical_importance :
  ?samples:int -> seed:int -> Store.t -> Api.t -> float
(** Fraction of sampled installations containing at least one
    dependent of the API — converges to
    {!Lapis_metrics.Importance.importance}. *)

val empirical_completeness :
  ?samples:int -> seed:int -> Store.t -> int list -> float
(** Mean fraction of installed packages whose footprints a syscall set
    covers — converges to
    {!Lapis_metrics.Completeness.of_syscall_set}. *)
