(** Section 6 footprint statistics: how many applications share a
    system call footprint, and how many footprints are unique — the
    basis for the paper's seccomp-policy observation (one third of
    applications have a unique footprint). *)

open Lapis_apidb
module Store = Lapis_store.Store

type stats = {
  applications : int;  (** executables considered *)
  distinct_footprints : int;
  unique_footprints : int;  (** footprints used by exactly one app *)
}

let syscall_key fp =
  Api.Set.fold
    (fun api acc ->
      match api with
      | Api.Syscall nr -> (nr :: acc)
      | Api.Vop _ | Api.Pseudo_file _ | Api.Libc_sym _ -> acc)
    fp []
  |> List.sort compare

let of_store (store : Store.t) : stats =
  let counts = Hashtbl.create 1024 in
  let apps = ref 0 in
  List.iter
    (fun (b : Store.bin_row) ->
      match b.Store.br_class with
      | Lapis_elf.Classify.Elf_dynamic | Lapis_elf.Classify.Elf_static ->
        incr apps;
        let key =
          syscall_key b.Store.br_resolved.Lapis_analysis.Footprint.apis
        in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      | _ -> ())
    store.Store.bins;
  let distinct = Hashtbl.length counts in
  let unique = Hashtbl.fold (fun _ c acc -> if c = 1 then acc + 1 else acc) counts 0 in
  { applications = !apps; distinct_footprints = distinct;
    unique_footprints = unique }

(* A seccomp allow-list policy for one application footprint
   (Section 6: policy generation can be automated from the data). *)
let seccomp_policy fp =
  let nrs = syscall_key fp in
  let lines =
    List.map
      (fun nr ->
        Printf.sprintf "  allow %s (%d)" (Syscall_table.name_of_nr nr) nr)
      nrs
  in
  String.concat "\n"
    (("# seccomp-bpf allow-list generated from static footprint"
      :: lines)
     @ [ "  default kill" ])
