(** Section 6 footprint statistics and seccomp policy generation. *)

open Lapis_apidb
module Store = Lapis_store.Store

type stats = {
  applications : int;  (** executables considered *)
  distinct_footprints : int;
      (** number of distinct system-call footprints among them *)
  unique_footprints : int;
      (** footprints belonging to exactly one application — the paper
          measures roughly a third of all applications *)
}

val syscall_key : Api.Set.t -> int list
(** The sorted system call numbers of a footprint — the identity under
    which footprints are compared. *)

val of_store : Store.t -> stats
(** Footprint statistics over every ELF executable in the store. *)

val seccomp_policy : Api.Set.t -> string
(** Render a seccomp-bpf-style allow-list for a footprint: one allow
    line per system call, [default kill] at the end (the Section 6
    application of the data set). *)
