lib/report/report.ml: Array Buffer List Printf String
