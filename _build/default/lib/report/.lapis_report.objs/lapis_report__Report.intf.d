lib/report/report.mli:
