(** Plain-text rendering for the experiment harness: aligned tables,
    ASCII curves for the inverted-CDF figures, and paper-vs-measured
    comparison rows. *)

let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let pct2 v = Printf.sprintf "%.2f%%" (100.0 *. v)

(* Render an aligned table with a header row. *)
let table ~header rows =
  let all = header :: rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row r =
    let cells =
      List.mapi (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ') r
    in
    "  " ^ String.concat "  " cells
  in
  let sep =
    "  "
    ^ String.concat "  "
        (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

(* ASCII plot of a descending series in [0,1] (inverted CDF), with a
   fixed-height grid; the x axis is compressed to [width] columns. *)
let curve ?(width = 72) ?(height = 12) (values : float list) =
  match values with
  | [] -> "(empty series)"
  | _ ->
    let arr = Array.of_list values in
    let n = Array.length arr in
    let sample c =
      let idx = min (n - 1) (c * n / width) in
      arr.(idx)
    in
    let rows = ref [] in
    for level = height downto 1 do
      let y = float_of_int level /. float_of_int height in
      let prev_y = float_of_int (level - 1) /. float_of_int height in
      let buf = Buffer.create (width + 8) in
      Buffer.add_string buf
        (if level = height then "100% |"
         else if level = (height + 1) / 2 then " 50% |"
         else "     |");
      for c = 0 to width - 1 do
        let v = sample c in
        Buffer.add_char buf (if v > prev_y && v <= y +. 1e-9 then '*'
                             else if v > y then '|'
                             else ' ')
      done;
      rows := Buffer.contents buf :: !rows
    done;
    let axis = "   0 +" ^ String.make width '-' ^ Printf.sprintf " %d" n in
    String.concat "\n" (List.rev (axis :: !rows))

(* A paper-vs-measured comparison line. *)
let compare_line ~label ~paper ~measured =
  Printf.sprintf "  %-44s paper: %-10s measured: %s" label paper measured

let section ~title body =
  let bar = String.make (String.length title + 4) '=' in
  Printf.sprintf "\n%s\n| %s |\n%s\n%s\n" bar title bar body
