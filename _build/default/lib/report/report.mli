(** Plain-text rendering for the experiment harness. *)

val pct : float -> string
(** A fraction as a percentage with one decimal: [0.428 -> "42.8%"]. *)

val pct2 : float -> string
(** Two decimals: [0.0042 -> "0.42%"]. *)

val table : header:string list -> string list list -> string
(** An aligned table with a header row and a separator line. Rows may
    have fewer cells than the widest row. *)

val curve : ?width:int -> ?height:int -> float list -> string
(** An ASCII plot of a series of values in [0, 1], compressed to
    [width] columns — the rendering used for the inverted-CDF
    figures. *)

val compare_line : label:string -> paper:string -> measured:string -> string
(** One "paper vs. measured" comparison line. *)

val section : title:string -> string -> string
(** A titled section box around a body. *)
