lib/store/pipeline.ml: Api Array Hashtbl Lapis_analysis Lapis_apidb Lapis_distro Lapis_elf List Logs Option Store
