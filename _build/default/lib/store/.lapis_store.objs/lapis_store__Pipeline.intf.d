lib/store/pipeline.mli: Lapis_analysis Lapis_apidb Lapis_distro Lapis_elf Store
