lib/store/store.ml: Api Array Hashtbl Lapis_analysis Lapis_apidb Lapis_elf List Option
