lib/study/ablations.ml: Api Array Env Lapis_analysis Lapis_apidb Lapis_distro Lapis_elf Lapis_metrics Lapis_report Lapis_store List Printf Syscall_table
