lib/study/env.ml: Lapis_distro Lapis_metrics Lapis_store
