lib/study/env.mli: Lapis_distro Lapis_store
