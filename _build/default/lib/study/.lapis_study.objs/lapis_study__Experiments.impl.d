lib/study/experiments.ml: Ablations Env Fig1 Fig2 Fig3 Fig4 Fig5 Fig6 Fig7 Fig8 Full_path Lapis_apidb List Section6 Table1 Table2 Table3 Table4 Table5 Table6 Table7 Tracer Variant_tables
