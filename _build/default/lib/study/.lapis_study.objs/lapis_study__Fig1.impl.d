lib/study/fig1.ml: Env Lapis_distro Lapis_elf Lapis_report List
