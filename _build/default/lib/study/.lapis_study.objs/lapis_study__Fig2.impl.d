lib/study/fig2.ml: Env Lapis_metrics Lapis_report List
