lib/study/fig3.ml: Env Hashtbl Lapis_apidb Lapis_distro Lapis_metrics Lapis_report Lapis_store List
