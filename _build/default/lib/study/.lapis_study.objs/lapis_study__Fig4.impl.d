lib/study/fig4.ml: Env Lapis_apidb Lapis_metrics Lapis_report List Vectored
