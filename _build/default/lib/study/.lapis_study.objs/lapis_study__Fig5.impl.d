lib/study/fig5.ml: Api Env Lapis_apidb Lapis_metrics Lapis_report List Printf Vectored
