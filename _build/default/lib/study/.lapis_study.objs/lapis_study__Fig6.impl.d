lib/study/fig6.ml: Api Env Lapis_analysis Lapis_apidb Lapis_metrics Lapis_report Lapis_store List Pseudo_files
