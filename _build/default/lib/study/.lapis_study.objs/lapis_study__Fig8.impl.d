lib/study/fig8.ml: Api Array Env Lapis_apidb Lapis_metrics Lapis_report List Syscall_table
