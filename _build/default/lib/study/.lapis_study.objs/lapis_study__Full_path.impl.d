lib/study/full_path.ml: Api Env Lapis_apidb Lapis_metrics Lapis_report Lapis_store List Printf Syscall_table Vectored
