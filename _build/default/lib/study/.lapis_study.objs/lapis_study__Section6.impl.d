lib/study/section6.ml: Env Lapis_analysis Lapis_elf Lapis_metrics Lapis_report Lapis_store List Printf String
