lib/study/table1.ml: Api Array Env Hashtbl Lapis_analysis Lapis_apidb Lapis_elf Lapis_metrics Lapis_report Lapis_store List Option Printf String Syscall_table
