lib/study/table2.ml: Api Array Env Lapis_apidb Lapis_metrics Lapis_report Lapis_store List Printf String Syscall_table
