lib/study/table3.ml: Api Array Env Lapis_apidb Lapis_report Lapis_store List Stages Syscall_table
