lib/study/table4.ml: Array Env Lapis_apidb Lapis_metrics Lapis_report List String
