lib/study/table5.ml: Api Env Hashtbl Lapis_analysis Lapis_apidb Lapis_elf Lapis_metrics Lapis_report Lapis_store List Printf Stages String Syscall_table
