lib/study/table6.ml: Env Lapis_apidb Lapis_metrics Lapis_report List String
