lib/study/table7.ml: Api Env Lapis_apidb Lapis_metrics Lapis_report Libc_catalog List
