lib/study/tracer.ml: Api Env Lapis_analysis Lapis_apidb Lapis_distro Lapis_elf Lapis_report Lapis_store List Printf
