lib/study/variant_tables.ml: Env Hashtbl Lapis_apidb Lapis_metrics Lapis_report List Option Syscall_table Variants
