(** Shared experiment environment: one synthetic distribution run
    through the full measurement pipeline, with the syscall ranking
    and completeness curve precomputed. Every Section 3-6 experiment
    consumes this. *)

module Pipeline = Lapis_store.Pipeline
module Store = Lapis_store.Store

type t = {
  analyzed : Pipeline.analyzed;
  store : Store.t;
  ranking : int list;  (** syscall numbers, most important first *)
  curve : (int * float) list;  (** the Figure 3 series over [ranking] *)
}

val create : ?config:Lapis_distro.Generator.config -> unit -> t
(** Generate, analyze and index a distribution (deterministic per
    config). The default config builds 1,400 packages. *)

val create_small : unit -> t
(** A 300-package environment for fast tests. *)

val dist : t -> Lapis_distro.Package.distribution
