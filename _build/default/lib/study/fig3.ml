(** Figure 3: accumulated weighted completeness as the N top-ranked
    system calls are implemented — the optimal path from "hello world"
    to qemu (Section 3.2). *)

type result = {
  curve : (int * float) list;
  at_1pct : int option;  (** paper: 40 *)
  at_10pct : int option;  (** paper: ~81 *)
  at_50pct : int option;  (** paper: 145 *)
  at_90pct : int option;  (** paper: 202 *)
  at_99pct : int option;  (** paper: ~272 *)
  qemu_needs : int;  (** paper: 270 *)
}

let paper = [ (0.01, 40); (0.10, 81); (0.50, 145); (0.90, 202); (0.99, 272) ]

let run (env : Env.t) : result =
  let curve = env.Env.curve in
  let cross t = Lapis_metrics.Completeness.crossing curve t in
  (* qemu's requirement: the highest rank among its footprint *)
  let qemu_needs =
    match Lapis_store.Store.find env.Env.store Lapis_distro.Roster.qemu_name with
    | None -> 0
    | Some p ->
      let pos = Hashtbl.create 512 in
      List.iteri (fun i nr -> Hashtbl.replace pos nr (i + 1)) env.Env.ranking;
      Lapis_apidb.Api.Set.fold
        (fun api acc ->
          match api with
          | Lapis_apidb.Api.Syscall nr ->
            (match Hashtbl.find_opt pos nr with
             | Some k -> max acc k
             | None -> acc)
          | _ -> acc)
        p.Lapis_store.Store.pr_apis 0
  in
  {
    curve;
    at_1pct = cross 0.01;
    at_10pct = cross 0.10;
    at_50pct = cross 0.50;
    at_90pct = cross 0.90;
    at_99pct = cross 0.99;
    qemu_needs;
  }

let render (r : result) =
  let module R = Lapis_report.Report in
  let series = List.map snd r.curve in
  (* completeness is ascending; plot it directly *)
  let curve_txt =
    R.curve (List.rev (Lapis_metrics.Importance.inverted_cdf series))
  in
  let line label paper v =
    R.compare_line ~label ~paper:(string_of_int paper)
      ~measured:(match v with Some n -> string_of_int n | None -> "-")
  in
  let body =
    curve_txt ^ "\n"
    ^ line "syscalls for 1% weighted completeness" 40 r.at_1pct
    ^ "\n"
    ^ line "syscalls for 10% weighted completeness" 81 r.at_10pct
    ^ "\n"
    ^ line "syscalls for 50% weighted completeness" 145 r.at_50pct
    ^ "\n"
    ^ line "syscalls for 90% weighted completeness" 202 r.at_90pct
    ^ "\n"
    ^ line "syscalls for ~100% weighted completeness" 272 r.at_99pct
    ^ "\n"
    ^ R.compare_line ~label:"system calls required by qemu" ~paper:"270"
        ~measured:(string_of_int r.qemu_needs)
  in
  R.section ~title:"Figure 3: weighted completeness vs. N top syscalls" body
