(** Figure 4: API importance of ioctl operation codes — 52 codes at
    100% importance, 188 above 1%, 280 with any use, out of 635
    defined in Linux 3.19. *)

open Lapis_apidb
module Importance = Lapis_metrics.Importance

type result = {
  series : float list;
  at_100 : int;
  above_1pct : int;
  used : int;
  defined : int;
}

let run (env : Env.t) : result =
  let store = env.Env.store in
  let values =
    List.map
      (fun (op : Vectored.op) ->
        Importance.importance store (Vectored.api_of_op op))
      Vectored.ioctl_ops
  in
  let series = Importance.inverted_cdf values in
  {
    series;
    at_100 = Importance.count_at_least 0.995 series;
    above_1pct = Importance.count_at_least 0.01 series;
    used = List.length (List.filter (fun v -> v > 0.0) series);
    defined = List.length series;
  }

let render r =
  let module R = Lapis_report.Report in
  let body =
    R.curve (List.filteri (fun i _ -> i < 220) r.series)
    ^ "\n"
    ^ R.compare_line ~label:"ioctl codes defined" ~paper:"635"
        ~measured:(string_of_int r.defined)
    ^ "\n"
    ^ R.compare_line ~label:"ioctl codes at 100% importance" ~paper:"52"
        ~measured:(string_of_int r.at_100)
    ^ "\n"
    ^ R.compare_line ~label:"ioctl codes above 1% importance" ~paper:"188"
        ~measured:(string_of_int r.above_1pct)
    ^ "\n"
    ^ R.compare_line ~label:"ioctl codes with any observed use" ~paper:"280"
        ~measured:(string_of_int r.used)
  in
  R.section ~title:"Figure 4: importance of ioctl operations" body
