(** Figure 5: API importance of fcntl and prctl operation codes.
    Paper: 11 of 18 fcntl codes at ~100%; 9 of 44 prctl codes at
    ~100% and 18 above 20%. *)

open Lapis_apidb
module Importance = Lapis_metrics.Importance

type vec_result = {
  vector : Api.vector;
  series : float list;
  at_100 : int;
  above_20pct : int;
  defined : int;
}

type result = { fcntl : vec_result; prctl : vec_result }

let run_vector env vector =
  let store = env.Env.store in
  let ops = Vectored.ops_of_vector vector in
  let values =
    List.map
      (fun (op : Vectored.op) ->
        Importance.importance store (Vectored.api_of_op op))
      ops
  in
  let series = Importance.inverted_cdf values in
  {
    vector;
    series;
    at_100 = Importance.count_at_least 0.995 series;
    above_20pct = Importance.count_at_least 0.20 series;
    defined = List.length ops;
  }

let run (env : Env.t) : result =
  { fcntl = run_vector env Api.Fcntl; prctl = run_vector env Api.Prctl }

let render r =
  let module R = Lapis_report.Report in
  let one (v : vec_result) ~paper_100 ~paper_20 =
    let name = Api.vector_name v.vector in
    R.curve ~width:44 ~height:8 v.series
    ^ "\n"
    ^ R.compare_line
        ~label:(Printf.sprintf "%s codes at ~100%% (of %d)" name v.defined)
        ~paper:paper_100 ~measured:(string_of_int v.at_100)
    ^ "\n"
    ^ R.compare_line
        ~label:(Printf.sprintf "%s codes above 20%%" name)
        ~paper:paper_20 ~measured:(string_of_int v.above_20pct)
  in
  R.section ~title:"Figure 5: importance of fcntl and prctl operations"
    (one r.fcntl ~paper_100:"11" ~paper_20:"12"
     ^ "\n\n"
     ^ one r.prctl ~paper_100:"9" ~paper_20:"18")
