(** Figure 6: API importance of hard-coded pseudo-files under /dev and
    /proc. The head of the distribution (e.g. /dev/null,
    /proc/cpuinfo) is essential to any Linux emulator; the long tail
    serves single applications or administrators. *)

open Lapis_apidb
module Importance = Lapis_metrics.Importance

type row = { path : string; importance : float }

type result = {
  rows : row list;  (** descending importance *)
  essential_count : int;  (** importance >= 90% *)
  dev_null_users : int;  (** binaries hard-coding /dev/null *)
  cpuinfo_users : int;
}

let run (env : Env.t) : result =
  let store = env.Env.store in
  let rows =
    List.map
      (fun (e : Pseudo_files.entry) ->
        let path = e.Pseudo_files.path in
        { path; importance = Importance.importance store (Api.Pseudo_file path) })
      Pseudo_files.all
    |> List.sort (fun a b -> compare b.importance a.importance)
  in
  let count_binaries path =
    List.length
      (List.filter
         (fun (b : Lapis_store.Store.bin_row) ->
           Api.Set.mem (Api.Pseudo_file path)
             b.Lapis_store.Store.br_direct.Lapis_analysis.Footprint.apis)
         store.Lapis_store.Store.bins)
  in
  {
    rows;
    essential_count =
      List.length (List.filter (fun r -> r.importance >= 0.90) rows);
    dev_null_users = count_binaries "/dev/null";
    cpuinfo_users = count_binaries "/proc/cpuinfo";
  }

let render r =
  let module R = Lapis_report.Report in
  let top = List.filteri (fun i _ -> i < 20) r.rows in
  let body =
    R.curve ~width:60 (List.map (fun x -> x.importance) r.rows)
    ^ "\n"
    ^ R.table ~header:[ "pseudo-file"; "importance" ]
        (List.map (fun x -> [ x.path; R.pct x.importance ]) top)
    ^ "\n"
    ^ R.compare_line ~label:"binaries hard-coding /dev/null" ~paper:"3324"
        ~measured:(string_of_int r.dev_null_users)
    ^ "\n"
    ^ R.compare_line ~label:"binaries hard-coding /proc/cpuinfo" ~paper:"439"
        ~measured:(string_of_int r.cpuinfo_users)
  in
  R.section ~title:"Figure 6: importance of pseudo-files (/proc, /dev, /sys)"
    body
