(** Figure 7 and the Section 3.5 restructuring analysis: API
    importance over the libc export surface, plus the stripped-libc
    experiment — drop every export below 90% importance and measure
    the size saved and the weighted completeness retained. *)

open Lapis_apidb
module Importance = Lapis_metrics.Importance
module Completeness = Lapis_metrics.Completeness

type result = {
  series : float list;
  total : int;
  at_100_frac : float;  (** paper: 42.8% *)
  below_50_frac : float;  (** paper: 50.6% *)
  below_1_frac : float;  (** paper: 39.7% *)
  unused_count : int;  (** paper: 222 *)
  stripped_retained : int;  (** paper: 889 *)
  stripped_size_frac : float;  (** paper: 63% *)
  stripped_completeness : float;  (** paper: 90.7% *)
}

let run (env : Env.t) : result =
  let store = env.Env.store in
  let entries = Libc_catalog.all in
  let with_imp =
    List.map
      (fun (e : Libc_catalog.entry) ->
        (e, Importance.importance store (Api.Libc_sym e.Libc_catalog.name)))
      entries
  in
  let values = List.map snd with_imp in
  let series = Importance.inverted_cdf values in
  let total = List.length series in
  let frac k = float_of_int k /. float_of_int total in
  let at_100 = Importance.count_at_least 0.995 series in
  let below_50 = total - Importance.count_at_least 0.50 series in
  let below_1 = total - Importance.count_at_least 0.01 series in
  let unused = List.length (List.filter (fun v -> v <= 0.0) series) in
  (* stripped libc: keep exports with importance >= 90% *)
  let kept =
    List.filter (fun (_, imp) -> imp >= 0.90) with_imp |> List.map fst
  in
  let module SS = Set.Make (String) in
  let kept_names =
    List.fold_left
      (fun acc (e : Libc_catalog.entry) -> SS.add e.Libc_catalog.name acc)
      SS.empty kept
  in
  let size lst =
    List.fold_left (fun a (e : Libc_catalog.entry) -> a + e.Libc_catalog.size) 0 lst
  in
  let stripped_completeness =
    Completeness.weighted_completeness store ~supported:(fun api ->
        match api with
        | Api.Libc_sym name -> SS.mem name kept_names
        | Api.Syscall _ | Api.Vop _ | Api.Pseudo_file _ -> true)
  in
  {
    series;
    total;
    at_100_frac = frac at_100;
    below_50_frac = frac below_50;
    below_1_frac = frac below_1;
    unused_count = unused;
    stripped_retained = List.length kept;
    stripped_size_frac = float_of_int (size kept) /. float_of_int (size entries);
    stripped_completeness;
  }

let render r =
  let module R = Lapis_report.Report in
  let body =
    R.curve r.series
    ^ "\n"
    ^ R.compare_line ~label:"libc exports modelled" ~paper:"1274"
        ~measured:(string_of_int r.total)
    ^ "\n"
    ^ R.compare_line ~label:"exports at 100% importance" ~paper:"42.8%"
        ~measured:(R.pct r.at_100_frac)
    ^ "\n"
    ^ R.compare_line ~label:"exports below 50% importance" ~paper:"50.6%"
        ~measured:(R.pct r.below_50_frac)
    ^ "\n"
    ^ R.compare_line ~label:"exports below 1% importance" ~paper:"39.7%"
        ~measured:(R.pct r.below_1_frac)
    ^ "\n"
    ^ R.compare_line ~label:"exports never referenced" ~paper:"222"
        ~measured:(string_of_int r.unused_count)
    ^ "\n"
    ^ R.compare_line ~label:"stripped libc (>=90%): exports retained"
        ~paper:"889" ~measured:(string_of_int r.stripped_retained)
    ^ "\n"
    ^ R.compare_line ~label:"stripped libc: size vs original" ~paper:"63%"
        ~measured:(R.pct r.stripped_size_frac)
    ^ "\n"
    ^ R.compare_line ~label:"stripped libc: weighted completeness"
        ~paper:"90.7%" ~measured:(R.pct r.stripped_completeness)
  in
  R.section ~title:"Figure 7: importance of GNU libc exports" body
