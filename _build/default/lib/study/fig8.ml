(** Figure 8: unweighted API importance of system calls — the fraction
    of packages using each call, irrespective of installation counts.
    Paper anchors: ~40 calls used by essentially all packages, 130 by
    at least 10%, over half below 10%. *)

open Lapis_apidb
module Importance = Lapis_metrics.Importance

type result = {
  series : float list;
  near_universal : int;  (** >= 95% of packages *)
  above_10pct : int;
  below_10pct : int;
}

let run (env : Env.t) : result =
  let store = env.Env.store in
  let values =
    List.map
      (fun (e : Syscall_table.entry) ->
        Importance.unweighted store (Api.Syscall e.Syscall_table.nr))
      (Array.to_list Syscall_table.all)
  in
  let series = Importance.inverted_cdf values in
  let near_universal = Importance.count_at_least 0.95 series in
  let above_10pct = Importance.count_at_least 0.10 series in
  {
    series;
    near_universal;
    above_10pct;
    below_10pct = List.length series - above_10pct;
  }

let render r =
  let module R = Lapis_report.Report in
  let body =
    R.curve r.series
    ^ "\n"
    ^ R.compare_line ~label:"syscalls used by ~all packages" ~paper:"40"
        ~measured:(string_of_int r.near_universal)
    ^ "\n"
    ^ R.compare_line ~label:"syscalls used by >= 10% of packages"
        ~paper:"130" ~measured:(string_of_int r.above_10pct)
    ^ "\n"
    ^ R.compare_line ~label:"syscalls used by < 10% of packages"
        ~paper:"190" ~measured:(string_of_int r.below_10pct)
  in
  R.section ~title:"Figure 8: unweighted API importance of system calls" body
