(** The full-API development path — Section 3.2's suggested extension
    of Figure 3: "one can construct a similar path including other
    APIs, such as vectored system calls, pseudo-files and library
    APIs."

    Ranks every kernel-facing API with non-zero importance — system
    calls, ioctl/fcntl/prctl operation codes and pseudo-files — by
    importance and plots cumulative weighted completeness along that
    path. Libc symbols are treated as the C library's concern (a
    compatibility layer reimplements the kernel interface, not libc),
    mirroring the paper's observation that developers need not
    implement every ioctl operation during the early stages. *)

open Lapis_apidb
module Importance = Lapis_metrics.Importance
module Completeness = Lapis_metrics.Completeness

type result = {
  universe : int;  (** kernel APIs with any observed use *)
  curve : (int * float) list;
  at_50pct : int option;
  at_90pct : int option;
  syscall_only_at_90 : int option;  (** Figure 3's 90% point, for contrast *)
  head : (Api.t * float) list;  (** the 15 most important APIs overall *)
}

let kernel_api = function
  | Api.Syscall _ | Api.Vop _ | Api.Pseudo_file _ -> true
  | Api.Libc_sym _ -> false

let run (env : Env.t) : result =
  let store = env.Env.store in
  let ranked =
    Lapis_store.Store.used_apis store
    |> List.filter kernel_api
    |> List.map (fun api -> (api, Importance.importance store api))
    |> List.sort (fun (a, ia) (b, ib) ->
           match compare ib ia with 0 -> Api.compare a b | c -> c)
  in
  let ranking = List.map fst ranked in
  let curve =
    Completeness.curve_apis store ~ranking ~assumed:(fun api ->
        not (kernel_api api))
  in
  {
    universe = List.length ranking;
    curve;
    at_50pct = Completeness.crossing curve 0.50;
    at_90pct = Completeness.crossing curve 0.90;
    syscall_only_at_90 = Completeness.crossing env.Env.curve 0.90;
    head = List.filteri (fun i _ -> i < 15) ranked;
  }

let render (r : result) =
  let module R = Lapis_report.Report in
  let show_n = function Some n -> string_of_int n | None -> "-" in
  let body =
    R.curve (List.map snd r.curve |> List.rev
             |> Lapis_metrics.Importance.inverted_cdf |> List.rev)
    ^ Printf.sprintf
        "\n  kernel APIs in use (syscalls + vectored ops + pseudo-files): %d\n"
        r.universe
    ^ Printf.sprintf "  APIs for 50%% weighted completeness: %s\n"
        (show_n r.at_50pct)
    ^ Printf.sprintf
        "  APIs for 90%% weighted completeness: %s (vs %s system calls \
         alone in Figure 3)\n"
        (show_n r.at_90pct)
        (show_n r.syscall_only_at_90)
    ^ "\n  most important kernel APIs of any kind:\n"
    ^ R.table ~header:[ "API"; "importance" ]
        (List.map
           (fun (api, imp) ->
             let name =
               match api with
               | Api.Syscall nr -> Syscall_table.name_of_nr nr
               | Api.Vop (v, code) ->
                 Printf.sprintf "%s(%s)" (Api.vector_name v)
                   (Vectored.name v code)
               | Api.Pseudo_file path -> path
               | Api.Libc_sym sym -> sym
             in
             [ name; R.pct imp ])
           r.head)
  in
  R.section
    ~title:"Full-API development path (Section 3.2, extended)" body
