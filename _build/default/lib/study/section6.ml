(** Section 6 implications: footprint uniqueness statistics (one third
    of applications have a unique system call footprint) and automated
    seccomp policy generation for a given application. *)

module Store = Lapis_store.Store
module Uniqueness = Lapis_metrics.Uniqueness

type result = {
  stats : Uniqueness.stats;
  sample_policy : string;  (** seccomp allow-list for one application *)
  sample_app : string;
}

let run (env : Env.t) : result =
  let store = env.Env.store in
  let stats = Uniqueness.of_store store in
  let sample =
    List.find_opt
      (fun (b : Store.bin_row) ->
        b.Store.br_class = Lapis_elf.Classify.Elf_dynamic)
      store.Store.bins
  in
  match sample with
  | Some b ->
    {
      stats;
      sample_app = b.Store.br_path;
      sample_policy =
        Uniqueness.seccomp_policy
          b.Store.br_resolved.Lapis_analysis.Footprint.apis;
    }
  | None -> { stats; sample_app = "-"; sample_policy = "" }

let render r =
  let module R = Lapis_report.Report in
  let s = r.stats in
  let frac a b = float_of_int a /. float_of_int (max 1 b) in
  let policy_head =
    String.concat "\n"
      (List.filteri (fun i _ -> i < 6)
         (String.split_on_char '\n' r.sample_policy))
  in
  let body =
    R.compare_line ~label:"applications analyzed" ~paper:"31433"
      ~measured:(string_of_int s.Uniqueness.applications)
    ^ "\n"
    ^ R.compare_line ~label:"distinct syscall footprints"
        ~paper:"11680 (37%)"
        ~measured:
          (Printf.sprintf "%d (%s)" s.Uniqueness.distinct_footprints
             (R.pct (frac s.Uniqueness.distinct_footprints s.Uniqueness.applications)))
    ^ "\n"
    ^ R.compare_line ~label:"applications with a unique footprint"
        ~paper:"9133 (29%)"
        ~measured:
          (Printf.sprintf "%d (%s)" s.Uniqueness.unique_footprints
             (R.pct (frac s.Uniqueness.unique_footprints s.Uniqueness.applications)))
    ^ Printf.sprintf "\n\n  sample seccomp policy for %s:\n%s\n  ..."
        r.sample_app policy_head
  in
  R.section ~title:"Section 6: footprint uniqueness and seccomp policies" body
