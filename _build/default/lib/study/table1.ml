(** Table 1: system calls whose only direct users are particular
    shared libraries — applications depend on them solely because the
    libraries do, so deprecation would only require changing the
    library wrappers. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Importance = Lapis_metrics.Importance
module Footprint = Lapis_analysis.Footprint

type row = {
  syscall : string;
  importance : float;
  libraries : string list;  (** packages owning the direct-user libs *)
}

(* The paper's examples, for the comparison column. *)
let paper =
  [ ("clock_settime", 1.0, "libc"); ("iopl", 1.0, "libc");
    ("ioperm", 1.0, "libc"); ("signalfd4", 1.0, "libc");
    ("mbind", 0.36, "libnuma, libopenblas"); ("add_key", 0.272, "libkeyutils");
    ("keyctl", 0.272, "libkeyutils"); ("request_key", 0.144, "libkeyutils");
    ("preadv", 0.117, "libc"); ("pwritev", 0.117, "libc") ]

let run (env : Env.t) : row list =
  let store = env.Env.store in
  (* direct users of each syscall: binaries whose own instructions
     issue it *)
  let direct_users = Hashtbl.create 512 in
  List.iter
    (fun (b : Store.bin_row) ->
      Api.Set.iter
        (fun api ->
          match api with
          | Api.Syscall nr ->
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt direct_users nr)
            in
            Hashtbl.replace direct_users nr (b :: cur)
          | _ -> ())
        b.Store.br_direct.Footprint.apis)
    store.Store.bins;
  List.filter_map
    (fun (e : Syscall_table.entry) ->
      let nr = e.Syscall_table.nr in
      match Hashtbl.find_opt direct_users nr with
      | None | Some [] -> None
      | Some users ->
        let all_libs =
          List.for_all
            (fun (b : Store.bin_row) ->
              b.Store.br_class = Lapis_elf.Classify.Elf_shared_lib)
            users
        in
        let pkgs =
          List.sort_uniq compare
            (List.map (fun (b : Store.bin_row) -> b.Store.br_package) users)
        in
        let imp = Importance.importance store (Api.Syscall nr) in
        if all_libs && List.length pkgs <= 2 && imp >= 0.10 then
          Some { syscall = e.Syscall_table.name; importance = imp;
                 libraries = pkgs }
        else None)
    (Array.to_list Syscall_table.all)
  |> List.sort (fun a b -> compare b.importance a.importance)

let render rows =
  let module R = Lapis_report.Report in
  let body =
    R.table
      ~header:[ "system call"; "importance"; "direct users (libraries)" ]
      (List.map
         (fun r -> [ r.syscall; R.pct r.importance; String.concat ", " r.libraries ])
         rows)
    ^ "\n\n  paper highlights: "
    ^ String.concat "; "
        (List.map (fun (s, i, l) -> Printf.sprintf "%s %.1f%% (%s)" s (100. *. i) l)
           paper)
  in
  R.section ~title:"Table 1: system calls used only via libraries" body
