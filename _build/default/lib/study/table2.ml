(** Table 2: system calls whose usage is dominated by one or two
    special-purpose packages (kexec_load by kexec-tools, and so on),
    excluding officially retired calls. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Importance = Lapis_metrics.Importance

type row = {
  syscall : string;
  importance : float;
  packages : string list;
}

let paper =
  [ ("seccomp", 0.01, "coop-computing-tools");
    ("sched_setattr", 0.01, "coop-computing-tools");
    ("sched_getattr", 0.01, "coop-computing-tools");
    ("kexec_load", 0.01, "kexec-tools");
    ("clock_adjtime", 0.04, "systemd");
    ("renameat2", 0.04, "systemd, coop-computing-tools");
    ("mq_timedsend", 0.01, "qemu-user");
    ("mq_getsetattr", 0.01, "qemu-user");
    ("io_getevents", 0.01, "ioping, zfs-fuse");
    ("getcpu", 0.04, "valgrind, rt-tests") ]

let run (env : Env.t) : row list =
  let store = env.Env.store in
  List.filter_map
    (fun (e : Syscall_table.entry) ->
      if e.Syscall_table.status <> Syscall_table.Active then None
      else begin
        let api = Api.Syscall e.Syscall_table.nr in
        let deps = Store.dependent_rows store api in
        let n = List.length deps in
        if n >= 1 && n <= 2 then
          Some
            {
              syscall = e.Syscall_table.name;
              importance = Importance.importance store api;
              packages = List.map (fun p -> p.Store.pr_name) deps;
            }
        else None
      end)
    (Array.to_list Syscall_table.all)
  |> List.sort (fun a b -> compare b.importance a.importance)

let render rows =
  let module R = Lapis_report.Report in
  let body =
    R.table
      ~header:[ "system call"; "importance"; "packages" ]
      (List.map
         (fun r -> [ r.syscall; R.pct2 r.importance; String.concat ", " r.packages ])
         rows)
    ^ "\n\n  paper highlights: "
    ^ String.concat "; "
        (List.map (fun (s, i, p) -> Printf.sprintf "%s %.0f%% (%s)" s (100. *. i) p)
           paper)
  in
  R.section ~title:"Table 2: system calls dominated by specific packages" body
