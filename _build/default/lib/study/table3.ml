(** Table 3: system calls with no observed use in the repository, with
    the reason for disuse. The analyzer must keep these at zero even
    though the generator plants them in unreachable decoy functions —
    a sloppy reachability analysis would corrupt this table. *)

open Lapis_apidb
module Store = Lapis_store.Store

type row = { syscall : string; reason : string }

let reason_of name =
  match Stages.stage_of_name name with
  | Stages.No_entry -> "officially retired (no kernel entry point)"
  | Stages.Unused ->
    (match name with
     | "sysfs" -> "replaced by /proc/filesystems"
     | "remap_file_pages" -> "repeated mmap calls preferred"
     | "mq_notify" -> "asynchronous message delivery unused"
     | "lookup_dcookie" -> "profiling interface unused"
     | "restart_syscall" -> "kernel-internal, transparent to applications"
     | "move_pages" -> "NUMA page migration unused"
     | _ -> "unused by applications")
  | _ -> "unexpectedly unused"

let run (env : Env.t) : row list =
  let store = env.Env.store in
  List.filter_map
    (fun (e : Syscall_table.entry) ->
      let api = Api.Syscall e.Syscall_table.nr in
      if Store.dependents store api = [] then
        Some { syscall = e.Syscall_table.name;
               reason = reason_of e.Syscall_table.name }
      else None)
    (Array.to_list Syscall_table.all)

(* The paper's count: 18 unused calls in Linux 3.19. *)
let paper_count = 18

let render rows =
  let module R = Lapis_report.Report in
  let body =
    R.table ~header:[ "system call"; "reason for disuse" ]
      (List.map (fun r -> [ r.syscall; r.reason ]) rows)
    ^ "\n"
    ^ R.compare_line ~label:"unused system calls"
        ~paper:(string_of_int paper_count)
        ~measured:(string_of_int (List.length rows))
  in
  R.section ~title:"Table 3: unused system calls" body
