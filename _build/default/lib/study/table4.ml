(** Table 4: the five implementation stages — cut the Figure 3 ranking
    at the paper's stage sizes (40 / 81 / 145 / 202 / all) and report
    the weighted completeness reached at each cut, with sample calls. *)

module Completeness = Lapis_metrics.Completeness

type stage_row = {
  stage : string;
  upto : int;  (** N top-ranked syscalls *)
  completeness : float;
  paper_completeness : float;
  samples : string list;
}

let cuts =
  [ ("I", 40, 0.0112); ("II", 81, 0.1068); ("III", 145, 0.5009);
    ("IV", 202, 0.9061); ("V", 272, 1.0) ]

let run (env : Env.t) : stage_row list =
  let curve = Array.of_list env.Env.curve in
  let ranking = Array.of_list env.Env.ranking in
  let completeness_at n =
    if n - 1 < Array.length curve then snd curve.(n - 1) else 1.0
  in
  let rec go lo = function
    | [] -> []
    | (stage, upto, paper) :: rest ->
      let upto = min upto (Array.length ranking) in
      let sample_range =
        List.init (min 8 (upto - lo)) (fun i ->
            Lapis_apidb.Syscall_table.name_of_nr ranking.(lo + i))
      in
      {
        stage;
        upto;
        completeness = completeness_at upto;
        paper_completeness = paper;
        samples = sample_range;
      }
      :: go upto rest
  in
  go 0 cuts

let render rows =
  let module R = Lapis_report.Report in
  let body =
    R.table
      ~header:[ "stage"; "# syscalls"; "measured"; "paper"; "highest-ranked members" ]
      (List.map
         (fun r ->
           [ r.stage; string_of_int r.upto; R.pct2 r.completeness;
             R.pct2 r.paper_completeness; String.concat " " r.samples ])
         rows)
  in
  R.section ~title:"Table 4: five stages of implementing system calls" body
