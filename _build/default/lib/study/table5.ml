(** Table 5: ubiquitous system call usage caused by the C runtime's
    startup and finalization — calls whose only direct issuers are the
    libc-family binaries, yet which appear in the footprint of every
    dynamically-linked executable. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Footprint = Lapis_analysis.Footprint

type row = {
  syscall : string;
  runtime_only : bool;  (** directly issued only by the runtime *)
  importance : float;
}

let paper_examples =
  [ ("access", "ld.so"); ("arch_prctl", "ld.so");
    ("clone", "libc"); ("execve", "libc"); ("getuid", "libc");
    ("gettid", "libc"); ("kill", "libc"); ("getrlimit", "libc");
    ("set_robust_list", "libpthread"); ("set_tid_address", "libpthread");
    ("rt_sigreturn", "libpthread"); ("rt_sigprocmask", "librt");
    ("futex", "libc, ld.so, libpthread") ]

let run (env : Env.t) : row list =
  let store = env.Env.store in
  (* syscalls issued directly by non-runtime binaries *)
  let app_direct = Hashtbl.create 512 in
  List.iter
    (fun (b : Store.bin_row) ->
      (* static executables inline their syscalls by construction and
         bypass the runtime entirely; Table 5 is about the footprint
         the runtime injects into dynamically-linked programs *)
      if b.Store.br_package <> "libc6"
         && b.Store.br_class <> Lapis_elf.Classify.Elf_static
      then
        Api.Set.iter
          (fun api ->
            match api with
            | Api.Syscall nr -> Hashtbl.replace app_direct nr ()
            | _ -> ())
          b.Store.br_direct.Footprint.apis)
    store.Store.bins;
  List.filter_map
    (fun name ->
      match Syscall_table.nr_of_name name with
      | None -> None
      | Some nr ->
        let api = Api.Syscall nr in
        let imp = Lapis_metrics.Importance.importance store api in
        if imp >= 0.995 then
          Some
            {
              syscall = name;
              runtime_only = not (Hashtbl.mem app_direct nr);
              importance = imp;
            }
        else None)
    Stages.stage1

let render rows =
  let module R = Lapis_report.Report in
  let body =
    R.table
      ~header:[ "system call"; "direct users"; "importance" ]
      (List.map
         (fun r ->
           [ r.syscall;
             (if r.runtime_only then "runtime only (libc/ld.so family)"
              else "runtime + applications");
             R.pct r.importance ])
         rows)
    ^ "\n\n  paper attribution: "
    ^ String.concat "; "
        (List.map (fun (s, l) -> Printf.sprintf "%s <- %s" s l) paper_examples)
  in
  R.section ~title:"Table 5: base footprint injected by the C runtime" body
