(** Table 7: weighted completeness of libc variants against the GNU
    libc export surface, raw and after normalizing compile-time symbol
    replacement (__foo_chk -> foo). *)

open Lapis_apidb
module Libc_variants = Lapis_apidb.Libc_variants
module Completeness = Lapis_metrics.Completeness

type row = {
  variant : string;
  exported : int;
  completeness : float;
  normalized : float;
  paper : float;
  paper_normalized : float;
}

let run (env : Env.t) : row list =
  let store = env.Env.store in
  List.map
    (fun (p : Libc_variants.profile) ->
      let supported normalize api =
        match api with
        | Api.Libc_sym name ->
          let name = if normalize then Libc_variants.normalize name else name in
          p.Libc_variants.exports name
        | Api.Syscall _ | Api.Vop _ | Api.Pseudo_file _ -> true
      in
      let exported =
        List.length
          (List.filter
             (fun (e : Libc_catalog.entry) ->
               p.Libc_variants.exports e.Libc_catalog.name)
             Libc_catalog.all)
      in
      {
        variant = p.Libc_variants.name;
        exported;
        completeness =
          Completeness.weighted_completeness store ~supported:(supported false);
        normalized =
          Completeness.weighted_completeness store ~supported:(supported true);
        paper = p.Libc_variants.paper_completeness;
        paper_normalized = p.Libc_variants.paper_completeness_normalized;
      })
    Libc_variants.profiles

let render rows =
  let module R = Lapis_report.Report in
  let body =
    R.table
      ~header:
        [ "variant"; "#exports"; "measured"; "paper"; "normalized";
          "paper(norm)" ]
      (List.map
         (fun r ->
           [ r.variant; string_of_int r.exported; R.pct2 r.completeness;
             R.pct2 r.paper; R.pct2 r.normalized; R.pct2 r.paper_normalized ])
         rows)
  in
  R.section ~title:"Table 7: weighted completeness of libc variants" body
