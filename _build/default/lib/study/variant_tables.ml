(** Tables 8-11: unweighted API importance of variant families —
    secure vs. insecure (Table 8), old vs. new (Table 9),
    Linux-specific vs. portable (Table 10), powerful vs. simple
    (Table 11). One runner parameterized by category. *)

open Lapis_apidb
module Importance = Lapis_metrics.Importance

type row = {
  family : string;
  syscall : string;
  role : Variants.role;
  measured : float;
  paper : float;
}

let role_name = function
  | Variants.Insecure -> "insecure"
  | Variants.Secure -> "secure"
  | Variants.Old -> "old"
  | Variants.New -> "new"
  | Variants.Linux_specific -> "linux-specific"
  | Variants.Portable -> "portable"
  | Variants.Powerful -> "powerful"
  | Variants.Simple -> "simple"

let run (env : Env.t) category : row list =
  let store = env.Env.store in
  List.concat_map
    (fun (f : Variants.family) ->
      List.map
        (fun (m : Variants.member) ->
          let api = Syscall_table.api_of_name m.Variants.syscall in
          {
            family = f.Variants.title;
            syscall = m.Variants.syscall;
            role = m.Variants.role;
            measured = Importance.unweighted store api;
            paper = m.Variants.paper_unweighted;
          })
        f.Variants.members)
    (Variants.with_category category)

let title_of = function
  | Variants.Id_management ->
    "Table 8a: unclear vs well-defined ID management"
  | Variants.Directory_races ->
    "Table 8b: non-atomic vs atomic directory operations"
  | Variants.Old_vs_new -> "Table 9: old vs new API variants"
  | Variants.Linux_vs_portable ->
    "Table 10: Linux-specific vs portable variants"
  | Variants.Powerful_vs_simple ->
    "Table 11: powerful vs simple variants"

let render category rows =
  let module R = Lapis_report.Report in
  let body =
    R.table
      ~header:[ "family"; "system call"; "role"; "measured"; "paper" ]
      (List.map
         (fun r ->
           [ r.family; r.syscall; role_name r.role; R.pct2 r.measured;
             R.pct2 r.paper ])
         rows)
  in
  R.section ~title:(title_of category) body

(* The qualitative claim each table makes: within each family, do the
   roles the paper found dominant still dominate? *)
let dominant_role_holds rows =
  (* group rows by family and compare the measured ordering of the
     paper's top member against the rest *)
  let by_family = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_family r.family) in
      Hashtbl.replace by_family r.family (r :: cur))
    rows;
  Hashtbl.fold
    (fun family members acc ->
      let paper_top =
        List.fold_left
          (fun best r -> if r.paper > best.paper then r else best)
          (List.hd members) members
      in
      let measured_top =
        List.fold_left
          (fun best r -> if r.measured > best.measured then r else best)
          (List.hd members) members
      in
      (family, paper_top.syscall = measured_top.syscall) :: acc)
    by_family []
