lib/x86/encode.mli: Buffer Insn
