lib/x86/insn.ml: Fmt Printf
