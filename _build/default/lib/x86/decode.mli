(** Linear decoder for the {!Insn} subset. Bytes outside the subset
    decode as {!Insn.Unknown} one at a time — the standard
    disassembler-resynchronization behaviour the analysis relies on
    when sweeping data islands inside .text. Never raises. *)

val decode_at : string -> int -> Insn.t * int
(** [decode_at buf pos] decodes one instruction, returning it and its
    byte length (at least 1, so decoding always progresses). *)

val decode_all : string -> (int * Insn.t * int) list
(** Decode a whole region into [(offset, instruction, length)]
    triples covering every byte. *)
