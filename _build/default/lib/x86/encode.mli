(** Binary encoder for the {!Insn} subset, following the Intel SDM
    encodings. {!Decode} is its exact inverse (property-tested). *)

val encode_into : Buffer.t -> Insn.t -> unit

val encode : Insn.t -> string
(** The instruction's machine-code bytes. *)

val encode_all : Insn.t list -> string

val length : Insn.t -> int
(** Encoded size in bytes. Sizes depend only on the operand classes
    (registers, immediate magnitude), never on layout, which is what
    lets the assembler size code in a single pass. *)
