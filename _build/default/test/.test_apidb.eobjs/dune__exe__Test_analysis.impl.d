test/test_analysis.ml: Alcotest Core Hashtbl List
