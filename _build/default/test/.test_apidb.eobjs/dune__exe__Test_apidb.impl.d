test/test_apidb.ml: Alcotest Array Core Hashtbl Lapis_apidb Libc_catalog Libc_variants List Option Printf Pseudo_files Stages Syscall_table Systems Variants Vectored
