test/test_apidb.mli:
