test/test_asm.ml: Alcotest Core Int32 List Option String
