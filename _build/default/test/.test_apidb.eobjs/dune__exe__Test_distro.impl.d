test/test_distro.ml: Alcotest Core Hashtbl Lazy List Option Printf String
