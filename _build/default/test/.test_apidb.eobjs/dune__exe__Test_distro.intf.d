test/test_distro.mli:
