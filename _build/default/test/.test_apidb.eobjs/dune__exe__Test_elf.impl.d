test/test_elf.ml: Alcotest Bytes Core List Option Printf QCheck2 QCheck_alcotest String
