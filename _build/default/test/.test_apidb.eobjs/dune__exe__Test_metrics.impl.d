test/test_metrics.ml: Alcotest Core Lazy List Printf QCheck2 QCheck_alcotest String
