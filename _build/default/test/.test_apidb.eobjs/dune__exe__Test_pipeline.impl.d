test/test_pipeline.ml: Alcotest Array Core Lazy List Option Printf
