test/test_report.ml: Alcotest Core List QCheck2 QCheck_alcotest String
