test/test_study.ml: Alcotest Core Lazy List Option String
