test/test_x86.ml: Alcotest Core Decode Encode Fmt Insn Int32 Int64 List QCheck2 QCheck_alcotest String
