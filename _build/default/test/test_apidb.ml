(* Tests for the embedded API databases: table integrity, the stage
   partition, vectored opcodes, pseudo-files, the libc catalogue and
   the system/libc-variant profiles. *)

open Core.Apidb

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- syscall table --------------------------------------------------- *)

let test_table_size () =
  check "x86-64 Linux 3.19 defines numbers 0..322" 323 Syscall_table.count

let test_table_roundtrip () =
  Array.iter
    (fun (e : Syscall_table.entry) ->
      check ("nr_of_name " ^ e.Syscall_table.name) e.Syscall_table.nr
        (Syscall_table.nr_of_name_exn e.Syscall_table.name);
      Alcotest.(check string)
        "name_of_nr" e.Syscall_table.name
        (Syscall_table.name_of_nr e.Syscall_table.nr))
    Syscall_table.all

let test_known_numbers () =
  List.iter
    (fun (name, nr) -> check name nr (Syscall_table.nr_of_name_exn name))
    [ ("read", 0); ("write", 1); ("open", 2); ("close", 3); ("ioctl", 16);
      ("fcntl", 72); ("prctl", 157); ("clone", 56); ("execve", 59);
      ("exit_group", 231); ("openat", 257); ("faccessat", 269);
      ("pipe2", 293); ("seccomp", 317); ("execveat", 322) ]

let test_statuses () =
  check "five retired-but-tried calls" 5
    (List.length Syscall_table.retired_tried);
  check "ten numbers without entry points" 10
    (List.length Syscall_table.no_entry);
  check_bool "nfsservctl is retired-but-tried" true
    (List.mem "nfsservctl" Syscall_table.retired_tried_names);
  check_bool "tuxcall has no entry point" true
    (List.mem "tuxcall" Syscall_table.no_entry_names)

let test_unknown_name () =
  Alcotest.check_raises "unknown name raises"
    (Invalid_argument "Syscall_table.nr_of_name_exn: not_a_syscall")
    (fun () -> ignore (Syscall_table.nr_of_name_exn "not_a_syscall"))

(* --- stages ----------------------------------------------------------- *)

let test_stage_sizes () =
  check "stage I" 40 (List.length Stages.stage1);
  check "stage II" 41 (List.length Stages.stage2);
  check "stage III" 64 (List.length Stages.stage3);
  check "stage IV" 57 (List.length Stages.stage4);
  check "stage V" 70 (List.length Stages.stage5);
  check "staged total (Table 4)" 272 (List.length (Stages.cumulative 5))

let test_stage_partition () =
  (* every syscall is classified exactly once *)
  let seen = Hashtbl.create 512 in
  let add names =
    List.iter
      (fun n ->
        check_bool ("no duplicate classification: " ^ n) false
          (Hashtbl.mem seen n);
        Hashtbl.replace seen n ())
      names
  in
  add Stages.stage1;
  add Stages.stage2;
  add Stages.stage3;
  add Stages.stage4;
  add Stages.stage5;
  add Stages.tail;
  add Stages.unused;
  add Syscall_table.retired_tried_names;
  add Syscall_table.no_entry_names;
  Array.iter
    (fun (e : Syscall_table.entry) ->
      check_bool ("classified: " ^ e.Syscall_table.name) true
        (Hashtbl.mem seen e.Syscall_table.name))
    Syscall_table.all;
  check "classification covers exactly the table" Syscall_table.count
    (Hashtbl.length seen)

let test_stage_samples () =
  (* the sample calls Table 4 lists must be in the right stage *)
  let expect stage names =
    List.iter
      (fun n ->
        Alcotest.(check string)
          ("Table 4 sample " ^ n)
          (Stages.stage_name stage)
          (Stages.stage_name (Stages.stage_of_name n)))
      names
  in
  expect Stages.S1 [ "mmap"; "vfork"; "read"; "gettid"; "fcntl"; "getcwd" ];
  expect Stages.S2 [ "mremap"; "ioctl"; "access"; "socket"; "poll"; "pipe" ];
  expect Stages.S3 [ "sigaltstack"; "shutdown"; "listen"; "getxattr"; "sync" ];
  expect Stages.S4 [ "flock"; "semget"; "ppoll"; "mount"; "brk"; "reboot" ]

let test_stage_bands () =
  let lo, hi = Stages.importance_band Stages.S1 in
  check_bool "stage I band is ~100%" true (lo > 0.99 && hi = 1.0);
  let lo, hi = Stages.importance_band Stages.Unused in
  check_bool "unused band is zero" true (lo = 0.0 && hi = 0.0)

(* --- vectored opcodes -------------------------------------------------- *)

let test_vectored_counts () =
  check "ioctl codes in Linux 3.19" 635 (List.length Vectored.ioctl_ops);
  check "fcntl codes" 18 (List.length Vectored.fcntl_ops);
  check_bool "prctl codes (43 values defined)" true
    (List.length Vectored.prctl_ops >= 42)

let test_vectored_tiers () =
  let ubiq v = List.length (Vectored.with_tier v Vectored.Ubiquitous) in
  check "52 ubiquitous ioctl codes (Figure 4)" 52 (ubiq Lapis_apidb.Api.Ioctl);
  check "11 ubiquitous fcntl codes (Figure 5)" 11 (ubiq Lapis_apidb.Api.Fcntl);
  check "9 ubiquitous prctl codes (Figure 5)" 9 (ubiq Lapis_apidb.Api.Prctl)

let test_vectored_unique_codes () =
  List.iter
    (fun vector ->
      let codes =
        List.map (fun (o : Vectored.op) -> o.Vectored.code)
          (Vectored.ops_of_vector vector)
      in
      check
        (Lapis_apidb.Api.vector_name vector ^ " codes are unique")
        (List.length codes)
        (List.length (List.sort_uniq compare codes)))
    [ Lapis_apidb.Api.Ioctl; Lapis_apidb.Api.Fcntl; Lapis_apidb.Api.Prctl ]

let test_vectored_lookup () =
  Alcotest.(check string)
    "TCGETS found" "TCGETS"
    (Vectored.name Lapis_apidb.Api.Ioctl 0x5401);
  Alcotest.(check string)
    "unknown code formatted" "ioctl:0xdeadbeef"
    (Vectored.name Lapis_apidb.Api.Ioctl 0xDEADBEEF)

(* --- pseudo files ------------------------------------------------------ *)

let test_pseudo_paths () =
  check_bool "at least 90 catalogued paths" true (Pseudo_files.count >= 90);
  List.iter
    (fun p ->
      check_bool ("catalogued path is pseudo: " ^ p) true
        (Pseudo_files.is_pseudo_path p))
    (List.map (fun e -> e.Pseudo_files.path) Pseudo_files.all);
  check_bool "/etc/passwd is not a pseudo path" false
    (Pseudo_files.is_pseudo_path "/etc/passwd");
  check_bool "/dev/null is essential" true
    (match Pseudo_files.find "/dev/null" with
     | Some e -> e.Pseudo_files.tier = Pseudo_files.Essential
     | None -> false)

let test_pseudo_unique () =
  let paths = List.map (fun e -> e.Pseudo_files.path) Pseudo_files.all in
  check "no duplicate paths" (List.length paths)
    (List.length (List.sort_uniq compare paths))

(* --- libc catalogue ---------------------------------------------------- *)

let test_libc_size () =
  check_bool "catalogue models the glibc surface (>= 1274 exports)" true
    (Libc_catalog.count >= 1274)

let test_libc_unique () =
  let names = List.map (fun e -> e.Libc_catalog.name) Libc_catalog.all in
  check "no duplicate exports" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_libc_syscalls_valid () =
  (* every syscall a libc function claims to issue must exist *)
  List.iter
    (fun (e : Libc_catalog.entry) ->
      List.iter
        (fun s ->
          check_bool
            (Printf.sprintf "%s issues a real syscall %s" e.Libc_catalog.name s)
            true
            (Option.is_some (Syscall_table.nr_of_name s)))
        e.Libc_catalog.syscalls)
    Libc_catalog.all

let test_libc_chk_bases () =
  (* every fortified __foo_chk has its base foo in the catalogue *)
  List.iter
    (fun (e : Libc_catalog.entry) ->
      match e.Libc_catalog.chk_of with
      | Some base ->
        check_bool ("base of " ^ e.Libc_catalog.name ^ " exists") true
          (Libc_catalog.mem base)
      | None -> ())
    Libc_catalog.all

let test_libc_tier_fractions () =
  let frac t =
    float_of_int (List.length (Libc_catalog.with_tier t))
    /. float_of_int Libc_catalog.count
  in
  (* Figure 7 calibration: 42.8% ubiquitous, long unused tail *)
  check_bool "ubiquitous fraction near 42.8%" true
    (abs_float (frac Libc_catalog.Ubiquitous -. 0.428) < 0.02);
  check_bool "unused tail exists" true (frac Libc_catalog.Unused > 0.10)

let test_libc_startup () =
  (* startup footprints name real syscalls and cover Table 5's samples *)
  List.iter
    (fun lib ->
      List.iter
        (fun s ->
          check_bool ("startup syscall exists: " ^ s) true
            (Option.is_some (Syscall_table.nr_of_name s)))
        (Libc_catalog.startup_footprint lib))
    [ Libc_catalog.Libc; Libc_catalog.Libpthread; Libc_catalog.Librt;
      Libc_catalog.Libdl; Libc_catalog.Ld_so ];
  check_bool "ld.so startup includes access (Table 5)" true
    (List.mem "access" (Libc_catalog.startup_footprint Libc_catalog.Ld_so));
  check_bool "libpthread startup includes set_robust_list (Table 5)" true
    (List.mem "set_robust_list"
       (Libc_catalog.startup_footprint Libc_catalog.Libpthread))

let test_libc_wrappers () =
  List.iter
    (fun (name, syscall) ->
      match Libc_catalog.find name with
      | None -> Alcotest.failf "missing catalogue entry %s" name
      | Some e ->
        check_bool
          (Printf.sprintf "%s wraps %s" name syscall)
          true
          (List.mem syscall e.Libc_catalog.syscalls))
    [ ("fork", "clone"); ("signal", "rt_sigaction"); ("sleep", "nanosleep");
      ("getrlimit", "prlimit64"); ("readdir", "getdents");
      ("pthread_create", "sched_setscheduler"); ("eventfd", "eventfd2") ]

(* --- variants ----------------------------------------------------------- *)

let test_variants_valid () =
  List.iter
    (fun (f : Variants.family) ->
      List.iter
        (fun (m : Variants.member) ->
          check_bool ("variant member exists: " ^ m.Variants.syscall) true
            (Option.is_some (Syscall_table.nr_of_name m.Variants.syscall));
          check_bool "paper value is a probability" true
            (m.Variants.paper_unweighted >= 0.0
             && m.Variants.paper_unweighted <= 1.0))
        f.Variants.members)
    Variants.families

let test_variants_table8 () =
  (* access (74.24%) vs faccessat (0.63%) is the headline row *)
  Alcotest.(check (option (float 1e-9)))
    "access target" (Some 0.7424)
    (Variants.adoption_target "access");
  Alcotest.(check (option (float 1e-9)))
    "faccessat target" (Some 0.0063)
    (Variants.adoption_target "faccessat")

(* --- systems & libc variants -------------------------------------------- *)

let test_systems () =
  check "five evaluated systems (Table 6)" 5 (List.length Systems.profiles);
  List.iter
    (fun (p : Systems.profile) ->
      List.iter
        (fun m ->
          check_bool (p.Systems.name ^ " missing call exists: " ^ m) true
            (Option.is_some (Syscall_table.nr_of_name m)))
        p.Systems.missing)
    Systems.profiles

let test_supported_set () =
  let ranking =
    List.init Syscall_table.count (fun i -> i)
  in
  let graphene = Option.get (Systems.find "Graphene") in
  let set = Systems.supported_set ~ranking graphene in
  check "set has the declared size" graphene.Systems.supported_count
    (List.length set);
  let sched = Syscall_table.nr_of_name_exn "sched_setscheduler" in
  check_bool "explicitly-missing calls are excluded" false
    (List.mem sched set)

let test_libc_variant_profiles () =
  let find name =
    List.find (fun p -> p.Libc_variants.name = name) Libc_variants.profiles
  in
  let eglibc = find "eglibc 2.19" and diet = find "dietlibc 0.33" in
  (* eglibc exports everything; dietlibc strictly less *)
  let count p =
    List.length
      (List.filter
         (fun (e : Libc_catalog.entry) ->
           p.Libc_variants.exports e.Libc_catalog.name)
         Libc_catalog.all)
  in
  check "eglibc covers the whole surface" Libc_catalog.count (count eglibc);
  check_bool "dietlibc is much smaller" true
    (count diet < Libc_catalog.count / 2);
  check_bool "dietlibc lacks memalign" false (diet.Libc_variants.exports "memalign");
  check_bool "dietlibc lacks __cxa_finalize" false
    (diet.Libc_variants.exports "__cxa_finalize")

let test_normalize () =
  Alcotest.(check string) "chk normalization" "printf"
    (Libc_variants.normalize "__printf_chk");
  Alcotest.(check string) "plain symbols unchanged" "printf"
    (Libc_variants.normalize "printf")

let () =
  Alcotest.run "apidb"
    [ ( "syscall-table",
        [ Alcotest.test_case "size" `Quick test_table_size;
          Alcotest.test_case "roundtrip" `Quick test_table_roundtrip;
          Alcotest.test_case "known numbers" `Quick test_known_numbers;
          Alcotest.test_case "statuses" `Quick test_statuses;
          Alcotest.test_case "unknown name" `Quick test_unknown_name ] );
      ( "stages",
        [ Alcotest.test_case "sizes" `Quick test_stage_sizes;
          Alcotest.test_case "partition" `Quick test_stage_partition;
          Alcotest.test_case "table4 samples" `Quick test_stage_samples;
          Alcotest.test_case "bands" `Quick test_stage_bands ] );
      ( "vectored",
        [ Alcotest.test_case "counts" `Quick test_vectored_counts;
          Alcotest.test_case "tiers" `Quick test_vectored_tiers;
          Alcotest.test_case "unique codes" `Quick test_vectored_unique_codes;
          Alcotest.test_case "lookup" `Quick test_vectored_lookup ] );
      ( "pseudo-files",
        [ Alcotest.test_case "paths" `Quick test_pseudo_paths;
          Alcotest.test_case "unique" `Quick test_pseudo_unique ] );
      ( "libc-catalogue",
        [ Alcotest.test_case "size" `Quick test_libc_size;
          Alcotest.test_case "unique" `Quick test_libc_unique;
          Alcotest.test_case "syscalls valid" `Quick test_libc_syscalls_valid;
          Alcotest.test_case "chk bases" `Quick test_libc_chk_bases;
          Alcotest.test_case "tier fractions" `Quick test_libc_tier_fractions;
          Alcotest.test_case "startup footprints" `Quick test_libc_startup;
          Alcotest.test_case "wrappers" `Quick test_libc_wrappers ] );
      ( "variants",
        [ Alcotest.test_case "valid" `Quick test_variants_valid;
          Alcotest.test_case "table 8 targets" `Quick test_variants_table8 ] );
      ( "systems",
        [ Alcotest.test_case "profiles" `Quick test_systems;
          Alcotest.test_case "supported set" `Quick test_supported_set;
          Alcotest.test_case "libc variants" `Quick test_libc_variant_profiles;
          Alcotest.test_case "normalize" `Quick test_normalize ] ) ]
