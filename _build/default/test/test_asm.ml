(* Tests for the assembler: layout, displacement resolution, PLT stub
   generation, string deduplication and error handling. *)

module Elf = Core.Elf
module X86 = Core.X86
module Asm = Core.Asm
module P = Asm.Program

let disasm img =
  List.map (fun (_, i, _) -> i) (X86.Decode.decode_all img.Elf.Image.text)

let test_call_local_resolution () =
  let img =
    Asm.Builder.assemble
      (P.executable ~entry_fn:"a" ~needed:[]
         ~interp:None
         [ P.func "a" [ P.Call_local "b" ]; P.func "b" [ P.Direct_syscall 0 ] ])
  in
  let a = Option.get (Elf.Image.find_symbol img "a") in
  let b = Option.get (Elf.Image.find_symbol img "b") in
  (* find the call instruction inside a and check its target *)
  let found = ref false in
  List.iter
    (fun (off, insn, len) ->
      match insn with
      | X86.Insn.Call_rel disp ->
        let site = img.Elf.Image.text_addr + off in
        if site >= a.Elf.Image.sym_addr
           && site < a.Elf.Image.sym_addr + a.Elf.Image.sym_size
        then begin
          Alcotest.(check int) "call resolves to b"
            b.Elf.Image.sym_addr
            (site + len + Int32.to_int disp);
          found := true
        end
      | _ -> ())
    (X86.Decode.decode_all img.Elf.Image.text);
  Alcotest.(check bool) "call site found" true !found

let test_plt_stub () =
  let img =
    Asm.Builder.assemble
      (P.executable ~entry_fn:"a" ~needed:[ "libc.so.6" ]
         [ P.func "a" [ P.Call_import "printf" ] ])
  in
  let got = List.assoc "printf" img.Elf.Image.plt_got in
  (* the text must contain a jmp [rip+disp] landing on that GOT slot *)
  let stub_targets =
    List.filter_map
      (fun (off, insn, len) ->
        match insn with
        | X86.Insn.Jmp_mem_rip disp ->
          Some (img.Elf.Image.text_addr + off + len + Int32.to_int disp)
        | _ -> None)
      (X86.Decode.decode_all img.Elf.Image.text)
  in
  Alcotest.(check bool) "stub jumps through printf's GOT slot" true
    (List.mem got stub_targets)

let test_string_dedup () =
  let img =
    Asm.Builder.assemble
      (P.executable ~entry_fn:"a" ~needed:[]
         ~interp:None
         [ P.func "a"
             [ P.Use_string "/dev/null"; P.Use_string "/dev/null";
               P.Use_string "/proc/stat" ] ])
  in
  Alcotest.(check string) "rodata holds each string once"
    "/dev/null\x00/proc/stat\x00" img.Elf.Image.rodata

let test_entry_point () =
  let img =
    Asm.Builder.assemble
      (P.executable ~entry_fn:"second" ~needed:[]
         ~interp:None
         [ P.func "first" [ P.Padding 3 ]; P.func "second" [ P.Direct_syscall 60 ] ])
  in
  let second = Option.get (Elf.Image.find_symbol img "second") in
  Alcotest.(check int) "entry is the named function"
    second.Elf.Image.sym_addr img.Elf.Image.entry

let test_unknown_symbol () =
  Alcotest.check_raises "calling an undefined local fails"
    (Asm.Builder.Unknown_symbol "nowhere") (fun () ->
      ignore
        (Asm.Builder.assemble
           (P.executable ~entry_fn:"a" ~needed:[] ~interp:None
              [ P.func "a" [ P.Call_local "nowhere" ] ])))

let test_vectored_encoding () =
  (* a vectored op must load the opcode into rsi and the vector's
     number into rax before the syscall instruction *)
  let img =
    Asm.Builder.assemble
      (P.executable ~entry_fn:"a" ~needed:[] ~interp:None
         [ P.func "a" [ P.Vectored_syscall (Core.Apidb.Api.Ioctl, 0x5413) ] ])
  in
  let insns = disasm img in
  Alcotest.(check bool) "loads TIOCGWINSZ into rsi" true
    (List.mem (X86.Insn.Mov_ri (X86.Insn.RSI, 0x5413L)) insns);
  Alcotest.(check bool) "loads 16 (ioctl) into rax" true
    (List.mem (X86.Insn.Mov_ri (X86.Insn.RAX, 16L)) insns);
  Alcotest.(check bool) "issues the syscall" true
    (List.mem X86.Insn.Syscall insns)

let test_fnptr_pattern () =
  let img =
    Asm.Builder.assemble
      (P.executable ~entry_fn:"a" ~needed:[] ~interp:None
         [ P.func "a" [ P.Take_fnptr "cb" ];
           P.func ~global:false "cb" [ P.Direct_syscall 39 ] ])
  in
  let cb = Option.get (Elf.Image.find_symbol img "cb") in
  let lea_targets =
    List.filter_map
      (fun (off, insn, len) ->
        match insn with
        | X86.Insn.Lea_rip (_, disp) ->
          Some (img.Elf.Image.text_addr + off + len + Int32.to_int disp)
        | _ -> None)
      (X86.Decode.decode_all img.Elf.Image.text)
  in
  Alcotest.(check bool) "lea materializes cb's address" true
    (List.mem cb.Elf.Image.sym_addr lea_targets);
  Alcotest.(check bool) "indirect call present" true
    (List.mem (X86.Insn.Call_reg X86.Insn.RAX) (disasm img))

let test_symbol_sizes_cover_text () =
  let prog =
    P.executable ~entry_fn:"a" ~needed:[ "libc.so.6" ]
      [ P.func "a" [ P.Call_import "read"; P.Padding 5 ];
        P.func "b" [ P.Direct_syscall 2 ] ]
  in
  let img = Asm.Builder.assemble prog in
  let covered =
    List.fold_left (fun a s -> a + s.Elf.Image.sym_size) 0 img.Elf.Image.symbols
  in
  (* text = functions + one 6-byte PLT stub per import *)
  Alcotest.(check int) "functions + stubs fill .text"
    (String.length img.Elf.Image.text)
    (covered + (6 * List.length img.Elf.Image.imports))

let () =
  Alcotest.run "asm"
    [ ( "builder",
        [ Alcotest.test_case "local call resolution" `Quick
            test_call_local_resolution;
          Alcotest.test_case "plt stubs" `Quick test_plt_stub;
          Alcotest.test_case "string dedup" `Quick test_string_dedup;
          Alcotest.test_case "entry point" `Quick test_entry_point;
          Alcotest.test_case "unknown symbol" `Quick test_unknown_symbol;
          Alcotest.test_case "vectored encoding" `Quick test_vectored_encoding;
          Alcotest.test_case "fnptr pattern" `Quick test_fnptr_pattern;
          Alcotest.test_case "symbol sizes" `Quick
            test_symbol_sizes_cover_text ] ) ]
