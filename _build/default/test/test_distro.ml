(* Tests for the distribution substrate: the deterministic RNG, the
   roster, and the calibrated generator's structural invariants. *)

module Distro = Core.Distro
module P = Distro.Package
module Api = Core.Apidb.Api

let small_config =
  { Distro.Generator.default_config with n_packages = 200; seed = 7 }

let dist = lazy (Distro.Generator.generate ~config:small_config ())

(* --- rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Distro.Rng.create 1 and b = Distro.Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Distro.Rng.float a)
      (Distro.Rng.float b)
  done

let test_rng_bounds () =
  let g = Distro.Rng.create 99 in
  for _ = 1 to 1000 do
    let f = Distro.Rng.float g in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Distro.Rng.int g 17 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 17)
  done

let test_rng_sample () =
  let g = Distro.Rng.create 3 in
  let s = Distro.Rng.sample g 5 [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  Alcotest.(check int) "sample size" 5 (List.length s);
  Alcotest.(check int) "sample distinct" 5
    (List.length (List.sort_uniq compare s));
  Alcotest.(check int) "sample capped at population" 3
    (List.length (Distro.Rng.sample g 10 [ 1; 2; 3 ]))

let test_keyed_float_stable () =
  Alcotest.(check (float 0.0)) "keyed floats are draw-order independent"
    (Distro.Rng.keyed_float 42 "some-key")
    (Distro.Rng.keyed_float 42 "some-key")

(* --- generator ---------------------------------------------------------- *)

let test_determinism () =
  let d1 = Distro.Generator.generate ~config:small_config () in
  let d2 = Distro.Generator.generate ~config:small_config () in
  let files d =
    List.map (fun f -> (f.P.path, f.P.bytes)) (P.all_files d)
  in
  Alcotest.(check bool) "same seed, identical bytes" true
    (files d1 = files d2)

let test_package_count () =
  let d = Lazy.force dist in
  Alcotest.(check int) "requested package count" small_config.n_packages
    (P.n_packages d)

let test_total_installs () =
  let d = Lazy.force dist in
  Alcotest.(check int) "popcon total preserved" 2_935_744 d.P.total_installs;
  List.iter
    (fun (p : P.t) ->
      Alcotest.(check bool) ("plausible installs: " ^ p.P.name) true
        (p.P.installs >= 1 && p.P.installs <= d.P.total_installs))
    d.P.packages

let test_runtime_family () =
  let d = Lazy.force dist in
  let sonames = List.map fst d.P.runtime in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("runtime ships " ^ s) true (List.mem s sonames))
    [ "libc.so.6"; "libpthread.so.0"; "librt.so.1"; "libdl.so.2";
      "ld-linux-x86-64.so.2" ];
  (* all runtime binaries parse as shared libraries *)
  List.iter
    (fun (soname, bytes) ->
      match Core.Elf.Reader.parse bytes with
      | Ok img ->
        Alcotest.(check bool) (soname ^ " is a shared object") true
          (img.Core.Elf.Image.kind = Core.Elf.Image.Shared_lib)
      | Error e ->
        Alcotest.failf "%s unparseable: %a" soname Core.Elf.Reader.pp_error e)
    d.P.runtime

let test_all_elves_parse () =
  let d = Lazy.force dist in
  List.iter
    (fun (f : P.file) ->
      match f.P.kind with
      | P.Executable | P.Library ->
        (match Core.Elf.Reader.parse f.P.bytes with
         | Ok _ -> ()
         | Error e ->
           Alcotest.failf "%s unparseable: %a" f.P.path
             Core.Elf.Reader.pp_error e)
      | P.Script ->
        Alcotest.(check bool) (f.P.path ^ " has a shebang") true
          (String.length f.P.bytes > 2 && String.sub f.P.bytes 0 2 = "#!"))
    (P.all_files d)

let test_ground_truth_recorded () =
  let d = Lazy.force dist in
  List.iter
    (fun (p : P.t) ->
      Alcotest.(check bool) ("truth recorded for " ^ p.P.name) true
        (Hashtbl.mem d.P.truth p.P.name))
    d.P.packages

let test_qemu_monster () =
  (* Section 3.2: qemu is the most demanding application *)
  let d = Lazy.force dist in
  let truth = Hashtbl.find d.P.truth "qemu" in
  let n_syscalls =
    Api.Set.fold
      (fun api acc -> match api with Api.Syscall _ -> acc + 1 | _ -> acc)
      truth 0
  in
  Alcotest.(check bool) "qemu needs at least 260 syscalls" true
    (n_syscalls >= 260)

let test_unused_never_generated () =
  (* Table 3: no package may request an officially-unused call *)
  let d = Lazy.force dist in
  let unused_nrs =
    List.map Core.Apidb.Syscall_table.nr_of_name_exn
      (Core.Apidb.Stages.unused @ Core.Apidb.Syscall_table.no_entry_names)
  in
  Hashtbl.iter
    (fun pkg truth ->
      List.iter
        (fun nr ->
          Alcotest.(check bool)
            (Printf.sprintf "%s does not use %s" pkg
               (Core.Apidb.Syscall_table.name_of_nr nr))
            false
            (Api.Set.mem (Api.Syscall nr) truth))
        unused_nrs)
    d.P.truth

let test_retired_still_tried () =
  (* Section 3.1: the five retired calls keep a small non-zero usage *)
  let d = Lazy.force dist in
  let used name =
    let nr = Core.Apidb.Syscall_table.nr_of_name_exn name in
    Hashtbl.fold
      (fun _ truth acc -> acc || Api.Set.mem (Api.Syscall nr) truth)
      d.P.truth false
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " still attempted") true (used n))
    Core.Apidb.Syscall_table.retired_tried_names

let test_deps_exist () =
  let d = Lazy.force dist in
  List.iter
    (fun (p : P.t) ->
      List.iter
        (fun dep ->
          Alcotest.(check bool)
            (Printf.sprintf "%s dependency %s exists" p.P.name dep)
            true
            (Option.is_some (P.find d dep)))
        p.P.deps)
    d.P.packages

let test_libc_gen_base () =
  (* the runtime-injected base is exactly stage I plus the startup
     symbol *)
  let base = Distro.Libc_gen.base_truth in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("base includes " ^ s) true
        (Api.Set.mem
           (Api.Syscall (Core.Apidb.Syscall_table.nr_of_name_exn s))
           base))
    Core.Apidb.Stages.stage1;
  Alcotest.(check int) "base = stage I + __libc_start_main"
    (List.length Core.Apidb.Stages.stage1 + 1)
    (Api.Set.cardinal base)

let test_import_truth () =
  let t = Distro.Libc_gen.import_truth "fopen" in
  Alcotest.(check bool) "fopen marks the symbol" true
    (Api.Set.mem (Api.Libc_sym "fopen") t);
  Alcotest.(check bool) "fopen brings open" true
    (Api.Set.mem
       (Api.Syscall (Core.Apidb.Syscall_table.nr_of_name_exn "open"))
       t);
  let t = Distro.Libc_gen.import_truth "isatty" in
  Alcotest.(check bool) "isatty implies the ioctl syscall" true
    (Api.Set.mem (Api.Syscall 16) t);
  Alcotest.(check bool) "isatty implies TCGETS" true
    (Api.Set.mem (Api.Vop (Api.Ioctl, 0x5401)) t)

let () =
  Alcotest.run "distro"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "keyed floats" `Quick test_keyed_float_stable ] );
      ( "generator",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "package count" `Quick test_package_count;
          Alcotest.test_case "popcon totals" `Quick test_total_installs;
          Alcotest.test_case "runtime family" `Quick test_runtime_family;
          Alcotest.test_case "all ELFs parse" `Quick test_all_elves_parse;
          Alcotest.test_case "ground truth" `Quick test_ground_truth_recorded;
          Alcotest.test_case "qemu monster" `Quick test_qemu_monster;
          Alcotest.test_case "unused stay unused" `Quick
            test_unused_never_generated;
          Alcotest.test_case "retired still tried" `Quick
            test_retired_still_tried;
          Alcotest.test_case "dependencies exist" `Quick test_deps_exist ] );
      ( "libc-gen",
        [ Alcotest.test_case "base footprint" `Quick test_libc_gen_base;
          Alcotest.test_case "import truth" `Quick test_import_truth ] ) ]
