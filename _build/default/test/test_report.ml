(* Tests for the plain-text rendering layer. *)

module R = Core.Report.Render

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_pct () =
  Alcotest.(check string) "one decimal" "42.8%" (R.pct 0.428);
  Alcotest.(check string) "two decimals" "0.42%" (R.pct2 0.0042);
  Alcotest.(check string) "hundred" "100.0%" (R.pct 1.0)

let test_table_alignment () =
  let out =
    R.table ~header:[ "a"; "long-header" ]
      [ [ "x"; "1" ]; [ "longer-cell"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (* header + separator + 2 rows, all the same width *)
  Alcotest.(check int) "four lines" 4 (List.length lines);
  (match lines with
   | a :: b :: rest ->
     List.iter
       (fun l ->
         Alcotest.(check bool) "no line wider than the header block" true
           (String.length l <= max (String.length a) (String.length b) + 2))
       rest
   | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "cells present" true (contains out "longer-cell")

let test_table_ragged_rows () =
  (* rows shorter than the header must not raise *)
  let out = R.table ~header:[ "a"; "b"; "c" ] [ [ "1" ]; [ "2"; "3" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_curve_shape () =
  let series = List.init 100 (fun i -> 1.0 -. (float_of_int i /. 100.)) in
  let out = R.curve ~width:40 ~height:8 series in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "height rows + axis" 9 (List.length lines);
  Alcotest.(check bool) "has 100% label" true (contains out "100% |");
  Alcotest.(check bool) "has sample count" true (contains out "100")

let test_curve_empty () =
  Alcotest.(check string) "empty series" "(empty series)" (R.curve [])

let test_curve_flat () =
  (* an all-ones series paints the top row only *)
  let out = R.curve ~width:10 ~height:4 [ 1.0; 1.0; 1.0 ] in
  Alcotest.(check bool) "stars on top row" true (contains out "*");
  Alcotest.(check bool) "renders axis" true (contains out "+")

let test_compare_line () =
  let out = R.compare_line ~label:"anchor" ~paper:"224" ~measured:"217" in
  Alcotest.(check bool) "label" true (contains out "anchor");
  Alcotest.(check bool) "paper value" true (contains out "paper: 224");
  Alcotest.(check bool) "measured value" true (contains out "measured: 217")

let test_section () =
  let out = R.section ~title:"T" "body" in
  Alcotest.(check bool) "boxed title" true (contains out "| T |");
  Alcotest.(check bool) "body" true (contains out "body")

let prop_table_total =
  QCheck2.Test.make ~name:"tables render for arbitrary cell contents"
    ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (list_size (int_range 1 4) (string_size ~gen:printable (int_range 0 12))))
    (fun rows ->
      let out = R.table ~header:[ "h1"; "h2"; "h3"; "h4" ] rows in
      String.length out > 0)

let prop_curve_total =
  QCheck2.Test.make ~name:"curves render for arbitrary probability series"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 300) (float_bound_inclusive 1.0))
    (fun series ->
      let out = R.curve series in
      List.length (String.split_on_char '\n' out) = 13)

let () =
  Alcotest.run "report"
    [ ( "render",
        [ Alcotest.test_case "percentages" `Quick test_pct;
          Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "curve shape" `Quick test_curve_shape;
          Alcotest.test_case "curve empty" `Quick test_curve_empty;
          Alcotest.test_case "curve flat" `Quick test_curve_flat;
          Alcotest.test_case "compare line" `Quick test_compare_line;
          Alcotest.test_case "section" `Quick test_section ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_table_total;
          QCheck_alcotest.to_alcotest prop_curve_total ] ) ]
