(* End-to-end tests of the experiment modules against a shared small
   environment: every figure/table must run, and the qualitative
   claims of the paper must hold on the synthetic distribution. *)

module Study = Core.Study
module Variants = Core.Apidb.Variants

let env =
  lazy
    (Study.Env.create
       ~config:
         { Core.Distro.Generator.default_config with
           n_packages = 400; seed = 42 }
       ())

let e () = Lazy.force env

let test_registry () =
  let ids = Study.Experiments.ids in
  Alcotest.(check int) "unique experiment ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      Alcotest.(check bool) ("find " ^ id) true
        (Option.is_some (Study.Experiments.find id)))
    [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
      "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "table7";
      "table8"; "table9"; "table10"; "table11"; "section6"; "ablations" ]

let test_all_render () =
  let env = e () in
  List.iter
    (fun (x : Study.Experiments.t) ->
      let out = x.Study.Experiments.render env in
      Alcotest.(check bool) (x.Study.Experiments.id ^ " renders") true
        (String.length out > 40))
    Study.Experiments.all

let test_fig1_mix () =
  let r = Study.Fig1.run (e ()) in
  let frac label =
    (List.find (fun (x : Study.Fig1.row) -> x.Study.Fig1.label = label)
       r.Study.Fig1.by_type)
      .Study.Fig1.fraction
  in
  Alcotest.(check bool) "ELF binaries dominate (~60%)" true
    (frac "ELF binary" > 0.45 && frac "ELF binary" < 0.75);
  Alcotest.(check bool) "dash is the leading interpreter" true
    (frac "Shell (dash)" > frac "Python");
  Alcotest.(check bool) "ruby is marginal" true (frac "Ruby" < 0.05)

let test_fig2_anchors () =
  let r = Study.Fig2.run (e ()) in
  Alcotest.(check bool) "roughly 224 indispensable calls" true
    (abs (r.Study.Fig2.indispensable - 224) <= 20);
  Alcotest.(check int) "exactly 18 unused calls" 18 r.Study.Fig2.unused;
  Alcotest.(check bool) "importance series is sorted" true
    (let rec sorted = function
       | a :: b :: rest -> a >= b && sorted (b :: rest)
       | _ -> true
     in
     sorted r.Study.Fig2.series)

let test_fig3_anchors () =
  let r = Study.Fig3.run (e ()) in
  let near target tol = function
    | Some n -> abs (n - target) <= tol
    | None -> false
  in
  Alcotest.(check bool) "1% completeness near 40 syscalls" true
    (near 40 10 r.Study.Fig3.at_1pct);
  Alcotest.(check bool) "10% completeness near 81 syscalls" true
    (near 81 20 r.Study.Fig3.at_10pct);
  Alcotest.(check bool) "50% completeness by stage III-IV" true
    (near 160 35 r.Study.Fig3.at_50pct);
  Alcotest.(check bool) "90% completeness near 202 syscalls" true
    (near 208 25 r.Study.Fig3.at_90pct);
  Alcotest.(check bool) "qemu needs ~270 syscalls" true
    (abs (r.Study.Fig3.qemu_needs - 270) <= 25)

let test_table1_examples () =
  let rows = Study.Table1.run (e ()) in
  let find n =
    List.find_opt (fun (r : Study.Table1.row) -> r.Study.Table1.syscall = n) rows
  in
  (* libc-wrapped calls appear with libc6 as the only direct user *)
  List.iter
    (fun n ->
      match find n with
      | Some r ->
        Alcotest.(check (list string))
          (n ^ " attributed to the runtime") [ "libc6" ]
          r.Study.Table1.libraries
      | None -> Alcotest.failf "expected %s in Table 1" n)
    [ "clock_settime"; "signalfd4" ]

let test_table2_examples () =
  let rows = Study.Table2.run (e ()) in
  let pkgs n =
    match
      List.find_opt (fun (r : Study.Table2.row) -> r.Study.Table2.syscall = n) rows
    with
    | Some r -> r.Study.Table2.packages
    | None -> []
  in
  Alcotest.(check (list string)) "kexec_load owned by kexec-tools"
    [ "kexec-tools" ] (pkgs "kexec_load");
  Alcotest.(check bool) "seccomp owned by coop-computing-tools" true
    (List.mem "coop-computing-tools" (pkgs "seccomp"))

let test_table3_exact () =
  let rows = Study.Table3.run (e ()) in
  let names = List.map (fun r -> r.Study.Table3.syscall) rows in
  Alcotest.(check int) "exactly the 18 unused calls" 18 (List.length names);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " reported unused") true (List.mem n names))
    [ "sysfs"; "remap_file_pages"; "mq_notify"; "lookup_dcookie";
      "restart_syscall"; "move_pages"; "tuxcall"; "create_module" ]

let test_fig4_shape () =
  let r = Study.Fig4.run (e ()) in
  Alcotest.(check int) "635 ioctl codes" 635 r.Study.Fig4.defined;
  Alcotest.(check bool) "~52 ubiquitous codes" true
    (abs (r.Study.Fig4.at_100 - 52) <= 8);
  Alcotest.(check bool) "long unused tail" true (r.Study.Fig4.used < 400)

let test_fig5_shape () =
  let r = Study.Fig5.run (e ()) in
  Alcotest.(check bool) "~11 of 18 fcntl codes ubiquitous" true
    (abs (r.Study.Fig5.fcntl.Study.Fig5.at_100 - 11) <= 2);
  Alcotest.(check bool) "~9 prctl codes ubiquitous" true
    (abs (r.Study.Fig5.prctl.Study.Fig5.at_100 - 9) <= 3)

let test_fig6_head () =
  let r = Study.Fig6.run (e ()) in
  match r.Study.Fig6.rows with
  | [] -> Alcotest.fail "no pseudo-file rows"
  | top :: _ ->
    Alcotest.(check bool) "the head of the distribution is essential" true
      (top.Study.Fig6.importance > 0.95);
    Alcotest.(check bool) "/dev/null is widely hard-coded" true
      (r.Study.Fig6.dev_null_users > 10)

let test_fig7_shape () =
  let r = Study.Fig7.run (e ()) in
  Alcotest.(check bool) "~40% of exports at 100% importance" true
    (abs_float (r.Study.Fig7.at_100_frac -. 0.43) < 0.10);
  Alcotest.(check bool) "stripped libc keeps most completeness" true
    (r.Study.Fig7.stripped_completeness > 0.7);
  Alcotest.(check bool) "stripped libc is much smaller" true
    (r.Study.Fig7.stripped_size_frac < 0.75)

let test_table5_runtime_only () =
  let rows = Study.Table5.run (e ()) in
  (* set_tid_address and set_robust_list are runtime-only calls *)
  List.iter
    (fun n ->
      match
        List.find_opt
          (fun (r : Study.Table5.row) -> r.Study.Table5.syscall = n)
          rows
      with
      | Some r ->
        Alcotest.(check bool) (n ^ " issued only by the runtime") true
          r.Study.Table5.runtime_only
      | None -> Alcotest.failf "missing %s in Table 5" n)
    [ "set_tid_address"; "set_robust_list"; "arch_prctl" ]

let test_table6_ordering () =
  let rows = Study.Table6.run (e ()) in
  let get n =
    (List.find (fun (r : Study.Table6.row) -> r.Study.Table6.system = n) rows)
      .Study.Table6.completeness
  in
  (* the paper's qualitative result: who wins and where the cliffs are *)
  Alcotest.(check bool) "L4Linux ~complete" true (get "L4Linux 4.3" > 0.95);
  Alcotest.(check bool) "UML close behind" true
    (get "User-Mode-Linux 3.19" > 0.80);
  Alcotest.(check bool) "FreeBSD-emu mid-range" true
    (let v = get "FreeBSD-emu 10.2" in
     v > 0.4 && v < 0.9);
  Alcotest.(check bool) "Graphene collapses without sched calls" true
    (get "Graphene" < 0.1);
  Alcotest.(check bool) "two sched calls recover ~20%" true
    (get "Graphene+sched" -. get "Graphene" > 0.08)

let test_table7_ordering () =
  let rows = Study.Table7.run (e ()) in
  let get n =
    List.find (fun (r : Study.Table7.row) -> r.Study.Table7.variant = n) rows
  in
  let eglibc = get "eglibc 2.19" and uclibc = get "uClibc 0.9.33" in
  let diet = get "dietlibc 0.33" in
  Alcotest.(check (float 1e-6)) "eglibc fully compatible" 1.0
    eglibc.Study.Table7.completeness;
  Alcotest.(check bool) "uClibc raw completeness collapses (chk symbols)"
    true
    (uclibc.Study.Table7.completeness < 0.15);
  Alcotest.(check bool) "normalization recovers uClibc substantially" true
    (uclibc.Study.Table7.normalized -. uclibc.Study.Table7.completeness > 0.2);
  Alcotest.(check bool) "dietlibc stays near zero even normalized" true
    (diet.Study.Table7.normalized < 0.1)

let test_fig8_anchors () =
  let r = Study.Fig8.run (e ()) in
  Alcotest.(check bool) "~40 calls used by all packages" true
    (abs (r.Study.Fig8.near_universal - 41) <= 8);
  Alcotest.(check bool) "over half below 10%" true
    (r.Study.Fig8.below_10pct > 140)

let test_variant_tables () =
  let env = e () in
  (* the dominant member of each family must match the paper's *)
  List.iter
    (fun category ->
      let rows = Study.Variant_tables.run env category in
      let verdicts = Study.Variant_tables.dominant_role_holds rows in
      let holds = List.filter snd verdicts in
      Alcotest.(check bool)
        "dominant variant matches the paper in >= 75% of families" true
        (List.length holds * 4 >= List.length verdicts * 3))
    [ Variants.Id_management; Variants.Directory_races; Variants.Old_vs_new;
      Variants.Linux_vs_portable; Variants.Powerful_vs_simple ]

let test_variant_access_gap () =
  (* Table 8's headline: access dwarfs faccessat *)
  let rows = Study.Variant_tables.run (e ()) Variants.Directory_races in
  let m n =
    (List.find (fun (r : Study.Variant_tables.row) -> r.Study.Variant_tables.syscall = n) rows)
      .Study.Variant_tables.measured
  in
  Alcotest.(check bool) "access >> faccessat" true
    (m "access" > 10.0 *. m "faccessat")

let test_section6 () =
  let r = Study.Section6.run (e ()) in
  let s = r.Study.Section6.stats in
  Alcotest.(check bool) "a substantial share of footprints is unique" true
    (s.Core.Metrics.Uniqueness.unique_footprints * 5
     >= s.Core.Metrics.Uniqueness.applications);
  Alcotest.(check bool) "policy generated" true
    (String.length r.Study.Section6.sample_policy > 50)

let test_tracer () =
  let r = Study.Tracer.run ~sample:25 (e ()) in
  Alcotest.(check bool) "a sample of executables was traced" true
    (r.Study.Tracer.traced > 5);
  Alcotest.(check int) "every traced program completed"
    r.Study.Tracer.traced r.Study.Tracer.finished;
  Alcotest.(check int)
    "static analysis over-approximates the dynamic trace" 0
    r.Study.Tracer.static_misses;
  Alcotest.(check bool) "dynamic <= static per executable" true
    (r.Study.Tracer.mean_dynamic_syscalls
     <= r.Study.Tracer.mean_static_syscalls +. 1e-9)

let test_full_path () =
  let r = Study.Full_path.run (e ()) in
  Alcotest.(check bool)
    "the kernel API universe is much larger than the syscall table"
    true
    (r.Study.Full_path.universe > 450);
  (* Section 3: supporting the full interface takes more APIs than
     syscalls alone *)
  match (r.Study.Full_path.at_90pct, r.Study.Full_path.syscall_only_at_90) with
  | Some full, Some syscalls_only ->
    Alcotest.(check bool) "full-API path is longer" true (full > syscalls_only)
  | _ -> Alcotest.fail "90% crossing missing"

let test_ablations () =
  let env = e () in
  let cg = Study.Ablations.run_callgraph env in
  Alcotest.(check bool)
    "cross-library resolution multiplies visible syscalls" true
    (cg.Study.Ablations.mean_resolved
     > 2.0 *. cg.Study.Ablations.mean_direct);
  let d = Study.Ablations.run_deps env in
  Alcotest.(check bool) "dependency closure can only reduce completeness"
    true
    (d.Study.Ablations.with_deps <= d.Study.Ablations.without_deps +. 1e-9)

let () =
  Alcotest.run "study"
    [ ( "registry",
        [ Alcotest.test_case "ids" `Quick test_registry;
          Alcotest.test_case "all render" `Slow test_all_render ] );
      ( "experiments",
        [ Alcotest.test_case "fig1 mix" `Slow test_fig1_mix;
          Alcotest.test_case "fig2 anchors" `Slow test_fig2_anchors;
          Alcotest.test_case "fig3 anchors" `Slow test_fig3_anchors;
          Alcotest.test_case "table1" `Slow test_table1_examples;
          Alcotest.test_case "table2" `Slow test_table2_examples;
          Alcotest.test_case "table3" `Slow test_table3_exact;
          Alcotest.test_case "fig4" `Slow test_fig4_shape;
          Alcotest.test_case "fig5" `Slow test_fig5_shape;
          Alcotest.test_case "fig6" `Slow test_fig6_head;
          Alcotest.test_case "fig7" `Slow test_fig7_shape;
          Alcotest.test_case "table5" `Slow test_table5_runtime_only;
          Alcotest.test_case "table6" `Slow test_table6_ordering;
          Alcotest.test_case "table7" `Slow test_table7_ordering;
          Alcotest.test_case "fig8" `Slow test_fig8_anchors;
          Alcotest.test_case "variant tables" `Slow test_variant_tables;
          Alcotest.test_case "access vs faccessat" `Slow
            test_variant_access_gap;
          Alcotest.test_case "section6" `Slow test_section6;
          Alcotest.test_case "tracer" `Slow test_tracer;
          Alcotest.test_case "full-API path" `Slow test_full_path;
          Alcotest.test_case "ablations" `Slow test_ablations ] ) ]
