(* Fuzz campaign runner for the CI fuzz-smoke job.

   Drives the mutational harness over seeded corruptions of
   writer-produced ELFs and enforces the robustness contract: every
   case terminates with Ok or a structured error. Exits nonzero on
   any contained crash, and on blowing the wall-clock budget (the
   hang proxy — a pathological input that stalls the analyzer shows
   up here even though each case "terminates").

   A second campaign drives seeded mutations of a format-4 index
   image through Query.of_image with the same contract: structured
   errors or a working index, never a crash. [--image-cases 0]
   skips it.

   Usage:
     dune exec bench/fuzz.exe -- [--seed N] [--cases N] [--packages N]
                                 [--image-cases N] [--no-trace]
                                 [--max-seconds S] *)

module H = Core.Fuzz.Harness

let usage () =
  prerr_endline
    "usage: bench/fuzz.exe [--seed N] [--cases N] [--packages N] \
     [--image-cases N] [--no-trace] [--max-seconds S]";
  exit 2

let parse_args () =
  let cfg = ref H.default_config
  and image_cases = ref 1_000
  and max_seconds = ref None in
  let pos_int name n k =
    match int_of_string_opt n with
    | Some v when v > 0 -> k v
    | Some _ | None ->
      Printf.eprintf "fuzz: %s expects a positive integer, got %S\n" name n;
      usage ()
  in
  let rec go = function
    | [] -> ()
    | "--seed" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v -> cfg := { !cfg with H.seed = v }
       | None ->
         Printf.eprintf "fuzz: --seed expects an integer, got %S\n" n;
         usage ());
      go rest
    | "--cases" :: n :: rest ->
      pos_int "--cases" n (fun v -> cfg := { !cfg with H.cases = v });
      go rest
    | "--packages" :: n :: rest ->
      pos_int "--packages" n (fun v ->
          cfg := { !cfg with H.base_packages = v });
      go rest
    | "--image-cases" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v when v >= 0 -> image_cases := v
       | Some _ | None ->
         Printf.eprintf
           "fuzz: --image-cases expects a non-negative integer, got %S\n" n;
         usage ());
      go rest
    | "--no-trace" :: rest ->
      cfg := { !cfg with H.trace = false };
      go rest
    | "--max-seconds" :: n :: rest ->
      pos_int "--max-seconds" n (fun v -> max_seconds := Some v);
      go rest
    | [ ("--seed" | "--cases" | "--packages" | "--image-cases"
        | "--max-seconds") ] ->
      prerr_endline "fuzz: missing argument";
      usage ()
    | arg :: _ ->
      Printf.eprintf "fuzz: unknown argument %s\n" arg;
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!cfg, !image_cases, !max_seconds)

let () =
  Printexc.record_backtrace true;
  let cfg, image_cases, max_seconds = parse_args () in
  Printf.printf
    "Fuzzing the ingestion path: %d cases over a %d-package corpus \
     (seed %d, replay with --seed %d).\n%!"
    cfg.H.cases cfg.H.base_packages cfg.H.seed cfg.H.seed;
  let t0 = Unix.gettimeofday () in
  let report = H.run ~config:cfg () in
  let wall = Unix.gettimeofday () -. t0 in
  Fmt.pr "%a" H.pp_report report;
  Printf.printf "Campaign wall time: %.1fs\n%!" wall;
  let failed = ref false in
  if report.H.r_crashes <> [] then begin
    Printf.eprintf "fuzz: FAIL: %d uncaught crash(es); replay with seed %d\n"
      (List.length report.H.r_crashes)
      report.H.r_seed;
    failed := true
  end;
  if image_cases > 0 then begin
    Printf.printf
      "Fuzzing the index-image loader: %d cases (seed %d).\n%!" image_cases
      cfg.H.seed;
    let ireport = H.run_images ~config:{ cfg with H.cases = image_cases } () in
    Fmt.pr "%a" H.pp_image_report ireport;
    if ireport.H.ii_crashes <> [] then begin
      Printf.eprintf
        "fuzz: FAIL: %d uncaught image-loader crash(es); replay with seed \
         %d\n"
        (List.length ireport.H.ii_crashes)
        ireport.H.ii_seed;
      failed := true
    end
  end;
  (match max_seconds with
   | Some budget when wall > float_of_int budget ->
     Printf.eprintf
       "fuzz: FAIL: campaign exceeded its %ds wall-clock budget (%.1fs) — \
        some input stalls the analyzer\n"
       budget wall;
     failed := true
   | _ -> ());
  if !failed then exit 1;
  print_endline "Fuzz campaign: OK"
