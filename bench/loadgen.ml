(* Concurrent load generator for the TCP serve protocol — the client
   side of the CI serve-load-smoke and fleet-load-smoke jobs.

     loadgen.exe --port P [--clients N] [--requests M] [--host H]
                 [--open-loop RATE] [--allow-degraded] [--expect-degraded]
                 [--min-rps R] [--max-p99-ms MS]

   Spawns N client threads, each driving M requests through one
   connection (a mix of ping / completeness / top, with every fourth
   line deliberately malformed), checking that every response
   arrives, in order, with the right id and the right ok/error
   status. Two arrival disciplines:

   - closed loop (default): each client keeps a fixed window of
     requests outstanding — maximal queue pressure, throughput-bound;
     latency is measured from each request's actual send.
   - open loop (--open-loop RATE): requests are scheduled at fixed
     aggregate RATE arrivals/sec, interleaved across clients, and
     latency is measured from the *scheduled* send time — so a server
     that stalls the senders still gets charged for the queueing delay
     it caused (no coordinated omission). Sender lateness is reported
     so an overdriven generator is visible rather than silently
     shifting the schedule.

   Latencies aggregate into an HDR-style histogram; the one-line JSON
   summary reports p50/p95/p99/max plus throughput. --max-p99-ms and
   --min-rps turn it into a CI gate. Against a fleet under failure,
   --allow-degraded accepts structured degraded/overloaded errors
   (counted separately, never as protocol errors) and
   --expect-degraded requires at least one — the shard-kill smoke
   proves degradation stayed structured. *)

let host = ref "127.0.0.1"
let port = ref 0
let clients = ref 8
let requests = ref 500
let min_rps = ref 0.0
let open_rate = ref 0.0
let max_p99_ms = ref 0.0
let allow_degraded = ref false
let expect_degraded = ref false

let speclist =
  [ ("--host", Arg.Set_string host, "HOST server address (127.0.0.1)");
    ("--port", Arg.Set_int port, "PORT server port (required)");
    ("--clients", Arg.Set_int clients, "N concurrent connections (8)");
    ("--requests", Arg.Set_int requests, "M requests per connection (500)");
    ( "--open-loop",
      Arg.Set_float open_rate,
      "RATE fixed-rate arrivals/sec aggregate (0 = closed loop)" );
    ( "--min-rps",
      Arg.Set_float min_rps,
      "RPS fail below this aggregate throughput (0 = no floor)" );
    ( "--max-p99-ms",
      Arg.Set_float max_p99_ms,
      "MS fail if p99 latency exceeds this (0 = no gate)" );
    ( "--allow-degraded",
      Arg.Set allow_degraded,
      " accept degraded/overloaded errors (counted separately)" );
    ( "--expect-degraded",
      Arg.Set expect_degraded,
      " fail unless at least one degraded/overloaded response arrived" )
  ]

module Json = Core.Query.Json
module Histogram = Core.Perf.Histogram

let request ~client ~i =
  let id = (client * 1_000_000) + i in
  match i mod 4 with
  | 0 -> Printf.sprintf {|{"op":"ping","id":%d}|} id
  | 1 ->
    Printf.sprintf {|{"op":"completeness","syscalls":[%d,%d,%d],"id":%d}|}
      (i mod 64) ((i * 3) mod 64) ((i * 11) mod 64) id
  | 2 -> Printf.sprintf {|{"op":"top","n":5,"id":%d}|} id
  | _ -> Printf.sprintf {|{"op":"bogus-%d","id":%d}|} i id

(* every fourth request is an unknown op: the server must answer it
   with a structured error, never drop the line or the connection *)
let expect_ok i = i mod 4 <> 3

let error_kind v =
  match Json.member "error" v with
  | Some e -> (
    match Json.member "kind" e with Some (Json.Str k) -> Some k | _ -> None)
  | None -> None

let is_shed = function Some ("degraded" | "overloaded") -> true | _ -> false

(* Validate one response line. Returns [true] on a protocol
   violation; structured shedding under --allow-degraded bumps
   [degraded] instead. *)
let check ~client ~i ~degraded line =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "client %d response %d: %s\n%!" client i msg;
        true)
      fmt
  in
  match Json.parse line with
  | Error msg -> fail "unparseable response: %s" msg
  | Ok v -> (
    let id_bad =
      match Json.member "id" v with
      | Some (Json.Num f) ->
        let want = (client * 1_000_000) + i in
        if int_of_float f <> want then
          fail "out of order: id %d, wanted %d" (int_of_float f) want
        else false
      | _ -> fail "missing id"
    in
    if id_bad then true
    else
      match Json.member "ok" v with
      | Some (Json.Bool true) ->
        if expect_ok i then false else fail "ok but expected an error"
      | Some (Json.Bool false) ->
        let kind = error_kind v in
        if is_shed kind then begin
          (* structured shedding: acceptable under --allow-degraded
             whatever the request was (even the bogus op can be shed
             before it is looked at) *)
          if !allow_degraded then begin
            incr degraded;
            false
          end
          else fail "unexpected %s error" (Option.get kind)
        end
        else if expect_ok i then
          fail "error response (kind %s), expected ok"
            (Option.value ~default:"?" kind)
        else false
      | _ -> fail "missing ok field")

type client_result = {
  errors : int ref;
  degraded : int ref;
  hist : Histogram.t;
  mutable max_late_s : float;  (* open loop: worst send lateness *)
}

let new_result () =
  {
    errors = ref 0;
    degraded = ref 0;
    hist = Histogram.create ();
    max_late_s = 0.0;
  }

let connect () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string !host, !port));
  (* one small frame per exchange: Nagle would serialize the whole
     run on delayed ACKs *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let observe_s r dt = Histogram.observe r.hist (int_of_float (dt *. 1e9))

(* Closed loop: keep [window] requests outstanding, measure from the
   actual send. *)
let run_client_closed ~client ~n r =
  let ic, oc = connect () in
  let window = 64 in
  let send_t = Array.make (max n 1) 0.0 in
  let sent = ref 0 and rcvd = ref 0 in
  while !rcvd < n do
    while !sent < n && !sent - !rcvd < window do
      send_t.(!sent) <- Unix.gettimeofday ();
      output_string oc (request ~client ~i:!sent);
      output_char oc '\n';
      incr sent
    done;
    flush oc;
    let line = input_line ic in
    let t = Unix.gettimeofday () in
    if check ~client ~i:!rcvd ~degraded:r.degraded line then incr r.errors;
    observe_s r (t -. send_t.(!rcvd));
    incr rcvd
  done;
  close_out_noerr oc;
  close_in_noerr ic

(* Open loop: slot [k] of the aggregate schedule fires [k * period]
   after [t0]; client [c] owns every [clients]-th slot. The period is
   held in integer nanoseconds and slot offsets are exact integer
   multiples of it, computed relative to [t0] — the old
   [t0 +. k /. rate] float schedule anchored sub-millisecond slot
   times to an epoch-sized base, where a double keeps only ~0.5 us,
   and re-accumulated the rounding into every slot. Latency is
   charged from the scheduled time, so server-induced sender stalls
   count. *)
let run_client_open ~client ~n ~rate ~t0 r =
  let ic, oc = connect () in
  let period_ns = Int64.of_float (1e9 /. rate) in
  let sched_ns j =
    Int64.mul (Int64.of_int (client + (j * !clients))) period_ns
  in
  let since_t0_ns () =
    Int64.of_float ((Unix.gettimeofday () -. t0) *. 1e9)
  in
  let reader =
    Thread.create
      (fun () ->
        try
          for j = 0 to n - 1 do
            let line = input_line ic in
            let lat_ns = Int64.sub (since_t0_ns ()) (sched_ns j) in
            if check ~client ~i:j ~degraded:r.degraded line then
              incr r.errors;
            Histogram.observe r.hist (Int64.to_int (Int64.max 0L lat_ns))
          done
        with End_of_file | Sys_error _ ->
          incr r.errors;
          Printf.eprintf "client %d: connection closed early\n%!" client)
      ()
  in
  for j = 0 to n - 1 do
    let target = sched_ns j in
    let now = since_t0_ns () in
    if Int64.compare target now > 0 then
      Thread.delay (Int64.to_float (Int64.sub target now) /. 1e9);
    let late =
      Int64.to_float (Int64.sub (since_t0_ns ()) target) /. 1e9
    in
    if late > r.max_late_s then r.max_late_s <- late;
    output_string oc (request ~client ~i:j);
    output_char oc '\n';
    flush oc
  done;
  Thread.join reader;
  close_out_noerr oc;
  close_in_noerr ic

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen --port P [--clients N] [--requests M] [--open-loop RATE]";
  if !port = 0 then (
    prerr_endline "loadgen: --port is required";
    exit 2);
  let results = Array.init !clients (fun _ -> new_result ()) in
  let t0 = Unix.gettimeofday () +. 0.05 (* let every sender reach the line *) in
  let threads =
    List.init !clients (fun client ->
        Thread.create
          (fun () ->
            let r = results.(client) in
            try
              if !open_rate > 0.0 then
                run_client_open ~client ~n:!requests ~rate:!open_rate ~t0 r
              else run_client_closed ~client ~n:!requests r
            with e ->
              incr r.errors;
              Printf.eprintf "client %d died: %s\n%!" client
                (Printexc.to_string e))
          ())
  in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  let total = !clients * !requests in
  let bad = Array.fold_left (fun acc r -> acc + !(r.errors)) 0 results in
  let shed = Array.fold_left (fun acc r -> acc + !(r.degraded)) 0 results in
  let max_late =
    Array.fold_left (fun acc r -> Float.max acc r.max_late_s) 0.0 results
  in
  let hist = Histogram.create () in
  Array.iter (fun r -> Histogram.merge_into ~into:hist r.hist) results;
  let s = Histogram.summary hist in
  let ms ns = ns /. 1e6 in
  let rps = float_of_int total /. dt in
  Printf.printf
    "{\"mode\": \"%s\", \"clients\": %d, \"requests\": %d, \"errors\": %d, \
     \"degraded\": %d, \"seconds\": %.3f, \"throughput_rps\": %.1f, \
     \"offered_rps\": %.1f, \"max_send_late_ms\": %.1f, \
     \"lat_p50_ms\": %.3f, \"lat_p95_ms\": %.3f, \"lat_p99_ms\": %.3f, \
     \"lat_max_ms\": %.3f}\n"
    (if !open_rate > 0.0 then "open" else "closed")
    !clients total bad shed dt rps
    (if !open_rate > 0.0 then !open_rate else rps)
    (max_late *. 1e3)
    (ms s.Histogram.h_p50) (ms s.Histogram.h_p95) (ms s.Histogram.h_p99)
    (ms s.Histogram.h_max);
  if bad > 0 then exit 1;
  if !expect_degraded && shed = 0 then (
    prerr_endline
      "loadgen: expected at least one degraded/overloaded response, saw none";
    exit 1);
  if !min_rps > 0.0 && rps < !min_rps then (
    Printf.eprintf "loadgen: throughput %.1f rps below floor %.1f\n" rps
      !min_rps;
    exit 1);
  if !max_p99_ms > 0.0 && ms s.Histogram.h_p99 > !max_p99_ms then (
    Printf.eprintf "loadgen: p99 latency %.1f ms above gate %.1f ms\n"
      (ms s.Histogram.h_p99) !max_p99_ms;
    exit 1)
