(* Concurrent load generator for the TCP serve protocol — the client
   side of the CI serve-load-smoke job.

     loadgen.exe --port P [--clients N] [--requests M] [--host H]

   Spawns N client threads, each opening one connection and driving M
   requests through it (a mix of ping / completeness / importance /
   top, with every fourth line deliberately malformed), checking that
   every response arrives, in order, with the right id and the right
   ok/error status. Prints a one-line JSON summary with aggregate
   throughput and exits non-zero on any protocol violation. *)

let host = ref "127.0.0.1"
let port = ref 0
let clients = ref 8
let requests = ref 500
let min_rps = ref 0.0

let speclist =
  [ ("--host", Arg.Set_string host, "HOST server address (127.0.0.1)");
    ("--port", Arg.Set_int port, "PORT server port (required)");
    ("--clients", Arg.Set_int clients, "N concurrent connections (8)");
    ("--requests", Arg.Set_int requests, "M requests per connection (500)");
    ( "--min-rps",
      Arg.Set_float min_rps,
      "RPS fail below this aggregate throughput (0 = no floor)" )
  ]

module Json = Core.Query.Json

let request ~client ~i =
  let id = (client * 1_000_000) + i in
  match i mod 4 with
  | 0 -> Printf.sprintf {|{"op":"ping","id":%d}|} id
  | 1 ->
    Printf.sprintf {|{"op":"completeness","syscalls":[%d,%d,%d],"id":%d}|}
      (i mod 64) ((i * 3) mod 64) ((i * 11) mod 64) id
  | 2 -> Printf.sprintf {|{"op":"top","n":5,"id":%d}|} id
  | _ -> Printf.sprintf {|{"op":"bogus-%d","id":%d}|} i id

(* every fourth request is an unknown op: the server must answer it
   with a structured error, never drop the line or the connection *)
let expect_ok i = i mod 4 <> 3

let run_client ~client ~n errors =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string !host, !port));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* pipeline everything, then read everything: maximal queue pressure *)
  for i = 0 to n - 1 do
    output_string oc (request ~client ~i);
    output_char oc '\n'
  done;
  flush oc;
  for i = 0 to n - 1 do
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          incr errors;
          Printf.eprintf "client %d response %d: %s\n%!" client i msg)
        fmt
    in
    match Json.parse (input_line ic) with
    | Error msg -> fail "unparseable response: %s" msg
    | Ok v -> (
      (match Json.member "id" v with
       | Some (Json.Num f) ->
         let want = (client * 1_000_000) + i in
         if int_of_float f <> want then
           fail "out of order: id %d, wanted %d" (int_of_float f) want
       | _ -> fail "missing id");
      match Json.member "ok" v with
      | Some (Json.Bool b) ->
        if b <> expect_ok i then
          fail "status %b, expected %b" b (expect_ok i)
      | _ -> fail "missing ok field")
  done;
  close_out_noerr oc;
  close_in_noerr ic

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen --port P [--clients N] [--requests M]";
  if !port = 0 then (
    prerr_endline "loadgen: --port is required";
    exit 2);
  let errors = Array.init !clients (fun _ -> ref 0) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init !clients (fun client ->
        Thread.create
          (fun () ->
            try run_client ~client ~n:!requests errors.(client)
            with e ->
              incr errors.(client);
              Printf.eprintf "client %d died: %s\n%!" client
                (Printexc.to_string e))
          ())
  in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  let total = !clients * !requests in
  let bad = Array.fold_left (fun acc r -> acc + !r) 0 errors in
  let rps = float_of_int total /. dt in
  Printf.printf
    "{\"clients\": %d, \"requests\": %d, \"errors\": %d, \"seconds\": %.3f, \
     \"throughput_rps\": %.1f}\n"
    !clients total bad dt rps;
  if bad > 0 then exit 1;
  if !min_rps > 0.0 && rps < !min_rps then (
    Printf.eprintf "loadgen: throughput %.1f rps below floor %.1f\n" rps
      !min_rps;
    exit 1)
