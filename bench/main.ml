(* Benchmark and reproduction harness.

   Running this executable regenerates every figure and table of the
   paper's evaluation (paper-vs-measured, Sections 3-6), reports the
   Table 12 implementation-size comparison, and finally runs Bechamel
   micro-benchmarks of the pipeline stages (ELF parsing, disassembly
   and scanning, metric computation, query layer).

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- fig3 table6   # selected experiments
     dune exec bench/main.exe -- --no-micro    # skip Bechamel runs
     dune exec bench/main.exe -- --packages 2000
     dune exec bench/main.exe -- --json        # write BENCH_<n>.json
     dune exec bench/main.exe -- --check-against bench/baseline_200.json
     dune exec bench/main.exe -- --query-bench --queries 1000
     dune exec bench/main.exe -- --query-bench --snapshot snap.lapis \
                                  --min-speedup 50 *)

module Study = Core.Study
module P = Core.Distro.Package

let default_packages = 1400

type args = {
  ids : string list;
  micro : bool;
  packages : int;
  json : bool;
  check_against : string option;
  query_bench : bool;
  queries : int;
  snapshot : string option;
  min_speedup : float option;
  cold_start : bool;
  image : string option;
  replicas : int;
  min_cold_speedup : float option;
  max_cold_seconds : float option;
  evolve_bench : bool;
  releases : int;
  fleet_bench : bool;
  fleet_shards : int;
  fleet_clients : int;
  min_batch_speedup : float option;
}

let usage () =
  prerr_endline
    "usage: bench/main.exe [EXPERIMENT...] [--no-micro] [--packages N] \
     [--json] [--check-against FILE]\n\
    \       bench/main.exe --query-bench [--queries N] [--snapshot FILE] \
     [--min-speedup X] [--packages N]\n\
    \       bench/main.exe --query-bench --cold-start-bench [--image FILE] \
     [--replicas N] [--min-cold-speedup X] [--max-cold-seconds S]\n\
    \       bench/main.exe --evolve-bench [--releases R] [--packages N]\n\
    \       bench/main.exe --query-bench --fleet-bench [--fleet-shards N] \
     [--fleet-clients C] [--min-batch-speedup X]";
  exit 2

let parse_args () =
  let ids = ref []
  and micro = ref true
  and packages = ref default_packages
  and json = ref false
  and check_against = ref None
  and query_bench = ref false
  and queries = ref 1000
  and snapshot = ref None
  and min_speedup = ref None
  and cold_start = ref false
  and image = ref None
  and replicas = ref 4
  and min_cold_speedup = ref None
  and max_cold_seconds = ref None
  and evolve_bench = ref false
  and releases = ref 20
  and fleet_bench = ref false
  and fleet_shards = ref 3
  and fleet_clients = ref 16
  and min_batch_speedup = ref None in
  let rec go = function
    | [] -> ()
    | "--no-micro" :: rest ->
      micro := false;
      go rest
    | "--packages" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v when v > 0 -> packages := v
       | Some _ | None ->
         Printf.eprintf
           "bench: --packages expects a positive integer, got %S\n" n;
         usage ());
      go rest
    | [ "--packages" ] ->
      prerr_endline "bench: --packages expects an argument";
      usage ()
    | "--json" :: rest ->
      json := true;
      go rest
    | "--check-against" :: file :: rest ->
      check_against := Some file;
      go rest
    | [ "--check-against" ] ->
      prerr_endline "bench: --check-against expects a file argument";
      usage ()
    | "--query-bench" :: rest ->
      query_bench := true;
      go rest
    | "--queries" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v when v > 0 -> queries := v
       | Some _ | None ->
         Printf.eprintf
           "bench: --queries expects a positive integer, got %S\n" n;
         usage ());
      go rest
    | [ "--queries" ] ->
      prerr_endline "bench: --queries expects an argument";
      usage ()
    | "--snapshot" :: file :: rest ->
      snapshot := Some file;
      go rest
    | [ "--snapshot" ] ->
      prerr_endline "bench: --snapshot expects a file argument";
      usage ()
    | "--min-speedup" :: x :: rest ->
      (match float_of_string_opt x with
       | Some v when v > 0.0 -> min_speedup := Some v
       | Some _ | None ->
         Printf.eprintf
           "bench: --min-speedup expects a positive number, got %S\n" x;
         usage ());
      go rest
    | [ "--min-speedup" ] ->
      prerr_endline "bench: --min-speedup expects an argument";
      usage ()
    | "--cold-start-bench" :: rest ->
      cold_start := true;
      go rest
    | "--image" :: file :: rest ->
      image := Some file;
      go rest
    | [ "--image" ] ->
      prerr_endline "bench: --image expects a file argument";
      usage ()
    | "--replicas" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v when v > 0 -> replicas := v
       | Some _ | None ->
         Printf.eprintf
           "bench: --replicas expects a positive integer, got %S\n" n;
         usage ());
      go rest
    | [ "--replicas" ] ->
      prerr_endline "bench: --replicas expects an argument";
      usage ()
    | "--min-cold-speedup" :: x :: rest ->
      (match float_of_string_opt x with
       | Some v when v > 0.0 -> min_cold_speedup := Some v
       | Some _ | None ->
         Printf.eprintf
           "bench: --min-cold-speedup expects a positive number, got %S\n" x;
         usage ());
      go rest
    | [ "--min-cold-speedup" ] ->
      prerr_endline "bench: --min-cold-speedup expects an argument";
      usage ()
    | "--max-cold-seconds" :: x :: rest ->
      (match float_of_string_opt x with
       | Some v when v > 0.0 -> max_cold_seconds := Some v
       | Some _ | None ->
         Printf.eprintf
           "bench: --max-cold-seconds expects a positive number, got %S\n" x;
         usage ());
      go rest
    | [ "--max-cold-seconds" ] ->
      prerr_endline "bench: --max-cold-seconds expects an argument";
      usage ()
    | "--evolve-bench" :: rest ->
      evolve_bench := true;
      go rest
    | "--fleet-bench" :: rest ->
      fleet_bench := true;
      go rest
    | "--fleet-shards" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v when v > 0 -> fleet_shards := v
       | Some _ | None ->
         Printf.eprintf
           "bench: --fleet-shards expects a positive integer, got %S\n" n;
         usage ());
      go rest
    | [ "--fleet-shards" ] ->
      prerr_endline "bench: --fleet-shards expects an argument";
      usage ()
    | "--fleet-clients" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v when v > 0 -> fleet_clients := v
       | Some _ | None ->
         Printf.eprintf
           "bench: --fleet-clients expects a positive integer, got %S\n" n;
         usage ());
      go rest
    | [ "--fleet-clients" ] ->
      prerr_endline "bench: --fleet-clients expects an argument";
      usage ()
    | "--min-batch-speedup" :: x :: rest ->
      (match float_of_string_opt x with
       | Some v when v > 0.0 -> min_batch_speedup := Some v
       | Some _ | None ->
         Printf.eprintf
           "bench: --min-batch-speedup expects a positive number, got %S\n" x;
         usage ());
      go rest
    | [ "--min-batch-speedup" ] ->
      prerr_endline "bench: --min-batch-speedup expects an argument";
      usage ()
    | "--releases" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v when v >= 0 -> releases := v
       | Some _ | None ->
         Printf.eprintf
           "bench: --releases expects a non-negative integer, got %S\n" n;
         usage ());
      go rest
    | [ "--releases" ] ->
      prerr_endline "bench: --releases expects an argument";
      usage ()
    | id :: rest ->
      if String.length id > 1 && id.[0] = '-' then begin
        Printf.eprintf "bench: unknown option %s\n" id;
        usage ()
      end;
      ids := id :: !ids;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    ids = List.rev !ids;
    micro = !micro;
    packages = !packages;
    json = !json;
    check_against = !check_against;
    query_bench = !query_bench;
    queries = !queries;
    snapshot = !snapshot;
    min_speedup = !min_speedup;
    cold_start = !cold_start;
    image = !image;
    replicas = !replicas;
    min_cold_speedup = !min_cold_speedup;
    max_cold_seconds = !max_cold_seconds;
    evolve_bench = !evolve_bench;
    releases = !releases;
    fleet_bench = !fleet_bench;
    fleet_shards = !fleet_shards;
    fleet_clients = !fleet_clients;
    min_batch_speedup = !min_batch_speedup;
  }

let count_loc () =
  (* Table 12 analogue: measure our own implementation size *)
  let rec walk dir acc =
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if entry = "_build" || entry = ".git" then acc else walk path acc
        else if Filename.check_suffix entry ".ml" then (
          let ic = open_in path in
          let lines = ref 0 in
          (try
             while true do
               ignore (input_line ic);
               incr lines
             done
           with End_of_file -> ());
          close_in ic;
          acc + !lines)
        else acc)
      acc (Sys.readdir dir)
  in
  try walk "." 0 with Sys_error _ -> 0

let print_table12 env =
  let dist = Study.Env.dist_exn env in
  let store = env.Study.Env.store in
  let module R = Core.Report.Render in
  let rows =
    [ [ "source lines (paper: Python)"; "3105";
        string_of_int (count_loc ()) ^ " (OCaml, this repo)" ];
      [ "source lines (paper: SQL)"; "2423"; "0 (in-memory store)" ];
      [ "packages scanned"; "30976"; string_of_int (P.n_packages dist) ];
      [ "binaries analyzed"; "66275";
        string_of_int (List.length store.Core.Db.Store.bins) ];
      [ "installations (popcon)"; "2935744";
        string_of_int dist.P.total_installs ] ]
  in
  print_string
    (R.section ~title:"Table 12: implementation and corpus size"
       (R.table ~header:[ "metric"; "paper"; "this reproduction" ] rows))

(* Runs the Bechamel micro-benchmarks, printing as it goes, and
   returns [(name, ns_per_run)] estimates for the BENCH JSON. *)
let run_micro env =
  let open Bechamel in
  let dist = Study.Env.dist_exn env in
  let store = env.Study.Env.store in
  let some_exe =
    List.find
      (fun (f : P.file) -> f.P.kind = P.Executable)
      (P.all_files dist)
  in
  let ranking = env.Study.Env.ranking in
  let libc_tests =
    match List.assoc_opt "libc.so.6" dist.P.runtime with
    | Some libc_bytes ->
      [ Test.make ~name:"elf-parse-libc" (Staged.stage (fun () ->
            Core.Elf.Reader.parse libc_bytes)) ]
    | None ->
      prerr_endline
        "bench: warning: generated runtime has no libc.so.6; skipping the \
         elf-parse-libc micro-benchmark";
      []
  in
  let tests =
    [ Test.make ~name:"elf-parse-exe" (Staged.stage (fun () ->
          Core.Elf.Reader.parse some_exe.P.bytes)) ]
    @ libc_tests
    @ [ Test.make ~name:"disasm+scan-exe" (Staged.stage (fun () ->
            match Core.Elf.Reader.parse some_exe.P.bytes with
            | Ok img -> ignore (Core.Analysis.Binary.analyze img)
            | Error _ -> ()));
        Test.make ~name:"importance-all-syscalls" (Staged.stage (fun () ->
            ignore (Core.Metrics.Importance.syscall_importances store)));
        Test.make ~name:"rank-syscalls" (Staged.stage (fun () ->
            ignore (Core.Metrics.Importance.rank_syscalls store)));
        Test.make ~name:"completeness-curve" (Staged.stage (fun () ->
            ignore (Core.Metrics.Completeness.curve store ~ranking)));
        Test.make ~name:"weighted-completeness-top145" (Staged.stage (fun () ->
            let top = List.filteri (fun i _ -> i < 145) ranking in
            ignore (Core.Metrics.Completeness.of_syscall_set store top)));
        Test.make ~name:"uniqueness-stats" (Staged.stage (fun () ->
            ignore (Core.Metrics.Uniqueness.of_store store))) ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~quota ~kde:(Some 100) ())
      [ Toolkit.Instance.monotonic_clock ]
      test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  print_string "\n=============================\n";
  print_string "| Bechamel micro-benchmarks |\n";
  print_string "=============================\n";
  List.concat_map
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
            Printf.printf "  %-32s %12.0f ns/run\n" name est;
            (name, est) :: acc
          | _ ->
            Printf.printf "  %-32s (no estimate)\n" name;
            acc)
        results [])
    tests

(* --- BENCH JSON ---------------------------------------------------

   Emitted with plain printf (no JSON library in the tree) in a fixed,
   line-oriented shape that [read_baseline] below can scan back:

     {
       "packages": 200,
       "binaries": 512,
       "wall_s": 1.234,
       "stage_total_s": 2.345,
       "stages": [ { "name": "...", "seconds": ..., "entries": ... } ],
       "counters": [ { "name": "...", "value": ... } ],
       "micro_ns": [ { "name": "...", "ns_per_run": ... } ]
     } *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let stage_total lines =
  List.fold_left
    (fun a (l : Core.Perf.Stage.line) -> a +. l.Core.Perf.Stage.l_seconds)
    0.0 lines

let write_json ~packages ~binaries ~wall ~micro_results ~git ~source_key path =
  let module S = Core.Perf.Stage in
  let lines = S.report () in
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  let pp_items pp = function
    | [] -> pf " ]"
    | items ->
      List.iteri
        (fun i x -> pf "%s\n    %t" (if i = 0 then "" else ",") (pp x))
        items;
      pf "\n  ]"
  in
  pf "{\n";
  pf "  \"git\": \"%s\",\n" (json_escape git);
  pf "  \"source_key\": \"%s\",\n" (json_escape source_key);
  pf "  \"packages\": %d,\n" packages;
  pf "  \"binaries\": %d,\n" binaries;
  pf "  \"wall_s\": %.6f,\n" wall;
  pf "  \"stage_total_s\": %.6f,\n" (stage_total lines);
  pf "  \"stages\": [";
  pp_items
    (fun (l : S.line) oc ->
      Printf.fprintf oc
        "{ \"name\": \"%s\", \"seconds\": %.6f, \"entries\": %d }"
        (json_escape l.S.l_name) l.S.l_seconds l.S.l_entries)
    lines;
  pf ",\n  \"counters\": [";
  pp_items
    (fun (name, v) oc ->
      Printf.fprintf oc "{ \"name\": \"%s\", \"value\": %d }"
        (json_escape name) v)
    (S.report_counters ());
  pf ",\n  \"micro_ns\": [";
  pp_items
    (fun (name, ns) oc ->
      Printf.fprintf oc "{ \"name\": \"%s\", \"ns_per_run\": %.1f }"
        (json_escape name) ns)
    micro_results;
  pf "\n}\n";
  close_out oc;
  Printf.printf "Wrote %s\n%!" path

(* CI regression gate: fail when the pipeline regresses more than 50%
   against the checked-in baseline, or when the run quarantined any
   binary — the generated corpus is clean, so a nonzero reject counter
   means an ingestion regression (a well-formed binary suddenly
   failing to parse or analyze), not noise. The wide timing margin
   absorbs machine-to-machine and run-to-run variance; a real
   complexity regression (the kind this gate exists for) blows well
   past it.

   Baselines drift: a file committed five PRs ago knows nothing about
   stages added since (and may list stages since removed), so the
   timing gate runs over the intersection of stage names — comparing
   totals across different stage sets would either fail every build
   that grows the pipeline or let a regression hide behind a shrunken
   set. One-sided stages are reported, never silently dropped.
   Baselines from before the per-stage rows existed gate on
   stage_total_s as before. *)
let check_against ~stage_total_now ~quarantined path =
  let module B = Core.Perf.Baseline in
  (match B.load path with
   | Error msg ->
     Printf.eprintf "bench: cannot read baseline %s: %s\n" path msg;
     exit 1
   | Ok baseline ->
     let gate ~what ~now ~base =
       let limit = base *. 1.5 in
       Printf.printf "Regression check: %s %.3fs vs baseline %.3fs \
                      (limit %.3fs)\n"
         what now base limit;
       if now > limit then begin
         Printf.eprintf
           "bench: FAIL: %s regressed more than 50%% (%.3fs > %.3fs)\n"
           what now limit;
         exit 1
       end
     in
     (match baseline.B.stages with
      | [] ->
        (match baseline.B.stage_total_s with
         | None ->
           Printf.eprintf
             "bench: baseline %s has neither per-stage rows nor \
              \"stage_total_s\"\n"
             path;
           exit 1
         | Some base ->
           gate ~what:"pipeline stage total" ~now:stage_total_now ~base)
      | _ :: _ ->
        let now =
          List.map
            (fun (l : Core.Perf.Stage.line) ->
              (l.Core.Perf.Stage.l_name, l.Core.Perf.Stage.l_seconds))
            (Core.Perf.Stage.report ())
        in
        let v = B.compare_stages baseline now in
        if v.B.only_now <> [] then
          Printf.printf
            "Regression check: %d stage(s) newer than the baseline \
             (reported, not gated): %s\n"
            (List.length v.B.only_now)
            (String.concat " " v.B.only_now);
        if v.B.only_baseline <> [] then
          Printf.printf
            "Regression check: %d baseline stage(s) absent from this \
             run: %s\n"
            (List.length v.B.only_baseline)
            (String.concat " " v.B.only_baseline);
        if v.B.shared = [] then begin
          Printf.eprintf
            "bench: FAIL: no stage names shared with baseline %s — \
             nothing to gate on\n"
            path;
          exit 1
        end;
        gate
          ~what:
            (Printf.sprintf "total over %d shared stages"
               (List.length v.B.shared))
          ~now:v.B.shared_now_s ~base:v.B.shared_baseline_s));
  if quarantined > 0 then begin
    Printf.eprintf
      "bench: FAIL: %d binaries quarantined on a clean corpus (see the \
       \"reject:*\" counters in the BENCH JSON)\n"
      quarantined;
    exit 1
  end;
  print_endline "Regression check: OK"

(* --- query throughput bench ---------------------------------------

   Measures the indexed query engine against the closed-form oracle on
   random syscall subsets: both answer the same [--queries] weighted
   completeness questions, results are compared bit-for-bit (the index
   is built to replicate the oracle's fold orders, so the tolerance is
   1e-12, not "a few ulp per package"), and throughput plus speedup go
   into BENCH_QUERY.json. *)

(* Identity stamps: the git commit of the working tree (so the
   BENCH_* trajectory is comparable across PRs) and the snapshot
   source_key of the corpus the numbers were measured on.

   Re-stamped BENCH artifacts themselves (BENCH_*.json in the repo
   root) do not count as dirt — the whole point of a bench run is to
   rewrite them — but any other modification taints the stamp with
   "-dirty" and a loud warning, because a "-dirty" hash is
   unreproducible: nobody can check out the code the numbers came
   from. *)
let run_git argv =
  let out, inp = Unix.pipe ~cloexec:false () in
  match
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process "git" (Array.of_list ("git" :: argv)) Unix.stdin inp
        null
    in
    Unix.close null;
    Unix.close inp;
    let ic = Unix.in_channel_of_descr out in
    let b = Buffer.create 256 in
    (try
       while true do
         Buffer.add_channel b ic 1
       done
     with End_of_file -> ());
    close_in ic;
    (snd (Unix.waitpid [] pid), Buffer.contents b)
  with
  | Unix.WEXITED 0, s -> Some s
  | _ -> None
  | exception _ ->
    (try Unix.close inp with Unix.Unix_error _ -> ());
    (try Unix.close out with Unix.Unix_error _ -> ());
    None

let is_bench_artifact path =
  let base = Filename.basename path in
  String.length base > 6
  && String.sub base 0 6 = "BENCH_"
  && Filename.check_suffix base ".json"

let git_stamp () =
  match run_git [ "rev-parse"; "--short"; "HEAD" ] with
  | None -> "unknown"
  | Some head ->
    let head = String.trim head in
    let dirt =
      match run_git [ "status"; "--porcelain" ] with
      | None -> [ "(git status failed)" ]
      | Some status ->
        String.split_on_char '\n' status
        |> List.filter_map (fun line ->
               if String.length line < 4 then None
               else
                 let path = String.sub line 3 (String.length line - 3) in
                 (* "R old -> new" lines: judge the destination. *)
                 let path =
                   match String.index_opt path '>' with
                   | Some i when i > 0 && path.[i - 1] = '-' ->
                     String.trim
                       (String.sub path (i + 1) (String.length path - i - 1))
                   | _ -> path
                 in
                 if is_bench_artifact path then None else Some path)
    in
    (match dirt with
     | [] -> head
     | paths ->
       Printf.eprintf
         "bench: WARNING: stamping a dirty tree (%s-dirty): %d modified \
          path(s) beyond BENCH_*.json (e.g. %s); the recorded numbers \
          cannot be attributed to a commit\n%!"
         head (List.length paths) (List.hd paths);
       head ^ "-dirty")

(* Nearest-rank percentile over an ascending array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

(* Results of the cold-start comparison: open()-to-first-answer for
   the decode-and-rebuild path vs the mmap-the-image path, plus how
   much resident memory each extra replica of a mapped image costs. *)
type cold_results = {
  cr_image_bytes : int;
  cr_decode_s : float;
  cr_map_s : float;
  cr_speedup : float;
  cr_max_abs_diff : float;
  cr_replicas : int;
  cr_replica_rss_kb : float;
}

(* Results of the fleet comparison (see the fleet-bench section
   below): per-shard resident memory with full vs range-sliced
   images, and scatter throughput/p99 with micro-batching on vs
   off. *)
type fleet_results = {
  fl_shards : int;
  fl_image_bytes : int;
  fl_sliced_bytes_total : int;
  fl_rss_full_kb : float;
  fl_rss_sliced_kb : float;
  fl_batched_qps : float;
  fl_unbatched_qps : float;
  fl_batch_speedup : float;
  fl_open_rate_qps : float;
  fl_batched_p99_ms : float;  (* open loop at [fl_open_rate_qps] *)
  fl_unbatched_p99_ms : float;  (* same rate, coalescing off *)
}

let stage_seconds names =
  let module S = Core.Perf.Stage in
  List.fold_left
    (fun acc (l : S.line) ->
      if List.mem l.S.l_name names then acc +. l.S.l_seconds else acc)
    0.0 (S.report ())

(* --- wire-codec micro-bench ---------------------------------------

   What the binary codec buys on router↔shard traffic: one
   representative scattered-completeness exchange (a 32-syscall
   partial-completeness request + its partial response) encoded and
   decoded through both codecs. Round-trips are verified before
   timing — this is a correctness check that happens to be timed. *)

type codec_result = {
  cb_json_ns : float;  (* one request+response round-trip, JSON lines *)
  cb_bin_ns : float;  (* same exchange, length-prefixed binary *)
  cb_speedup : float;
  cb_json_bytes : int;
  cb_bin_bytes : int;
}

let run_codec_bench () =
  let module Pr = Core.Query.Protocol in
  let module J = Core.Query.Json in
  let rng = Core.Distro.Rng.create 0x0c0dec in
  let syscalls = List.init 32 (fun _ -> Core.Distro.Rng.int rng 448) in
  let req =
    {
      Pr.rq_id = Some (J.Num 123456.0);
      rq_op =
        Pr.Partial_completeness
          { syscalls; phase = Core.Query.Engine.All; lo = 0; hi = 5000 };
    }
  in
  let resp =
    {
      Pr.rs_id = Some (J.Num 123456.0);
      rs_result =
        Ok (Pr.Partial_r { lo = 0; hi = 5000; num = 123.456789; den = 98765.5 });
    }
  in
  let json_req = J.to_string (Pr.json_of_request req) in
  let json_resp = J.to_string (Pr.json_of_response resp) in
  let bin_req = Pr.Bin.encode_request req in
  let bin_resp = Pr.Bin.encode_response resp in
  let payload s = String.sub s 5 (String.length s - 5) in
  let fail msg =
    Printf.eprintf "bench: FAIL: codec round-trip: %s\n" msg;
    exit 1
  in
  (match J.parse json_req with
   | Ok j ->
     (match Pr.request_of_json j with
      | Ok r when r = req -> ()
      | _ -> fail "JSON request changed in flight")
   | Error e -> fail e);
  (match Pr.Bin.decode_request (payload bin_req) with
   | Ok r when r = req -> ()
   | _ -> fail "binary request changed in flight");
  (match Pr.Bin.decode_response (payload bin_resp) with
   | Ok r when r = resp -> ()
   | _ -> fail "binary response changed in flight");
  let iters = 20_000 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let json_ns =
    time (fun () ->
        let rq = J.to_string (Pr.json_of_request req) in
        (match J.parse rq with
         | Ok j -> ignore (Pr.request_of_json j)
         | Error _ -> assert false);
        let rs = J.to_string (Pr.json_of_response resp) in
        match J.parse rs with
        | Ok j -> ignore (Pr.response_of_json j)
        | Error _ -> assert false)
  in
  let bin_ns =
    time (fun () ->
        ignore (Pr.Bin.decode_request (payload (Pr.Bin.encode_request req)));
        ignore
          (Pr.Bin.decode_response (payload (Pr.Bin.encode_response resp))))
  in
  let r =
    {
      cb_json_ns = json_ns;
      cb_bin_ns = bin_ns;
      cb_speedup = json_ns /. Float.max bin_ns 1e-9;
      cb_json_bytes = String.length json_req + String.length json_resp + 2;
      cb_bin_bytes = String.length bin_req + String.length bin_resp;
    }
  in
  Printf.printf
    "Wire codecs: scatter exchange %d B json / %d B binary\n\
    \  json round-trip:   %.0f ns\n\
    \  binary round-trip: %.0f ns (%.1fx cheaper)\n%!"
    r.cb_json_bytes r.cb_bin_bytes r.cb_json_ns r.cb_bin_ns r.cb_speedup;
  r

let write_query_json ~packages ~queries ~indexed_s ~oracle_s ~speedup
    ~max_abs_diff ~latencies_us ~batch_s ~cold ~fleet ~codec ~source_key path =
  let module S = Core.Perf.Stage in
  (* Temporal-attribution cost next to the numbers it buys: the
     "phase:attribute" stage (per-binary split into init/serving) and
     the widening counters. Zero/empty on snapshot-backed runs — the
     attribution happened when the snapshot was built, not here. *)
  let phase_attribute_s =
    List.fold_left
      (fun acc (l : S.line) ->
        if l.S.l_name = "phase:attribute" then acc +. l.S.l_seconds else acc)
      0.0 (S.report ())
  in
  let phase_counters =
    List.filter
      (fun (name, _) ->
        String.length name >= 6 && String.sub name 0 6 = "phase:")
      (S.report_counters ())
  in
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  let indexed_qps = float_of_int queries /. indexed_s in
  let batch_qps = float_of_int queries /. Float.max batch_s 1e-9 in
  pf "{\n";
  pf "  \"git\": \"%s\",\n" (json_escape (git_stamp ()));
  pf "  \"source_key\": \"%s\",\n" (json_escape source_key);
  pf "  \"packages\": %d,\n" packages;
  pf "  \"queries\": %d,\n" queries;
  pf "  \"load_s\": %.6f,\n" (stage_seconds [ "snapshot-load"; "image-load" ]);
  pf "  \"index_build_s\": %.6f,\n" (stage_seconds [ "query:index-build" ]);
  pf "  \"indexed_s\": %.6f,\n" indexed_s;
  pf "  \"oracle_s\": %.6f,\n" oracle_s;
  pf "  \"indexed_qps\": %.1f,\n" indexed_qps;
  pf "  \"oracle_qps\": %.1f,\n" (float_of_int queries /. oracle_s);
  pf "  \"speedup\": %.1f,\n" speedup;
  pf "  \"latency_p50_us\": %.3f,\n" (percentile latencies_us 50.0);
  pf "  \"latency_p95_us\": %.3f,\n" (percentile latencies_us 95.0);
  pf "  \"latency_p99_us\": %.3f,\n" (percentile latencies_us 99.0);
  pf "  \"batch_s\": %.6f,\n" batch_s;
  pf "  \"batch_qps\": %.1f,\n" batch_qps;
  pf "  \"batch_vs_single\": %.2f,\n" (batch_qps /. indexed_qps);
  pf "  \"phase_attribute_s\": %.6f,\n" phase_attribute_s;
  pf "  \"phase_counters\": [";
  (match phase_counters with
   | [] -> pf " ],\n"
   | items ->
     List.iteri
       (fun i (name, v) ->
         pf "%s\n    { \"name\": \"%s\", \"value\": %d }"
           (if i = 0 then "" else ",")
           (json_escape name) v)
       items;
     pf "\n  ],\n");
  (match cold with
   | None -> ()
   | Some c ->
     pf "  \"image_bytes\": %d,\n" c.cr_image_bytes;
     pf "  \"cold_decode_s\": %.6f,\n" c.cr_decode_s;
     pf "  \"cold_map_s\": %.6f,\n" c.cr_map_s;
     pf "  \"cold_speedup\": %.1f,\n" c.cr_speedup;
     pf "  \"cold_max_abs_diff\": %.3e,\n" c.cr_max_abs_diff;
     pf "  \"replicas\": %d,\n" c.cr_replicas;
     pf "  \"replica_rss_kb\": %.1f,\n" c.cr_replica_rss_kb);
  (match fleet with
   | None -> ()
   | Some f ->
     pf "  \"fleet_shards\": %d,\n" f.fl_shards;
     pf "  \"fleet_image_bytes\": %d,\n" f.fl_image_bytes;
     pf "  \"fleet_sliced_bytes_total\": %d,\n" f.fl_sliced_bytes_total;
     pf "  \"fleet_rss_full_kb\": %.1f,\n" f.fl_rss_full_kb;
     pf "  \"fleet_rss_sliced_kb\": %.1f,\n" f.fl_rss_sliced_kb;
     pf "  \"fleet_batched_qps\": %.1f,\n" f.fl_batched_qps;
     pf "  \"fleet_unbatched_qps\": %.1f,\n" f.fl_unbatched_qps;
     pf "  \"fleet_batch_speedup\": %.2f,\n" f.fl_batch_speedup;
     pf "  \"fleet_open_rate_qps\": %.1f,\n" f.fl_open_rate_qps;
     pf "  \"fleet_batched_p99_ms\": %.3f,\n" f.fl_batched_p99_ms;
     pf "  \"fleet_unbatched_p99_ms\": %.3f,\n" f.fl_unbatched_p99_ms);
  pf "  \"codec_json_ns\": %.1f,\n" codec.cb_json_ns;
  pf "  \"codec_bin_ns\": %.1f,\n" codec.cb_bin_ns;
  pf "  \"codec_speedup\": %.2f,\n" codec.cb_speedup;
  pf "  \"codec_json_bytes\": %d,\n" codec.cb_json_bytes;
  pf "  \"codec_bin_bytes\": %d,\n" codec.cb_bin_bytes;
  pf "  \"max_abs_diff\": %.3e\n" max_abs_diff;
  pf "}\n";
  close_out oc;
  Printf.printf "Wrote %s\n%!" path

(* --- cold-start bench ---------------------------------------------

   What the format-4 image buys: time from open(2) to the first
   answered query. The decode path loads the row snapshot, rebuilds
   the index in memory and answers once; the map path mmaps the image
   and answers once. Each path runs three times and the best run
   counts, so page-cache warmup noise hits both sides equally.
   Afterwards the mapped index re-answers every benched subset in all
   three phases and must agree with the heap index bit-for-bit
   (gate: cold max_abs_diff == 0, not 1e-12).

   Per-replica memory: N child processes each map the same image,
   answer one probe query, and report their own VmRSS. The mapping is
   file-backed and read-only, so extra replicas should cost little
   beyond the runtime itself. Children are re-exec'd via the hidden
   [--replica-rss IMG] mode rather than forked: the parent has run
   multi-domain Parmap phases by this point, and fork in a
   multi-domain OCaml program is not an option. *)

let probe_nrs = [ 0; 1; 2; 3; 9; 60; 231 ]

let read_vm_rss_kb () =
  let ic = open_in "/proc/self/status" in
  let rss = ref None in
  (try
     while !rss = None do
       let line = input_line ic in
       if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
         rss :=
           String.sub line 6 (String.length line - 6)
           |> String.trim
           |> String.split_on_char ' '
           |> (function kb :: _ -> int_of_string_opt kb | [] -> None)
     done
   with End_of_file -> ());
  close_in ic;
  !rss

let replica_rss_main image =
  match Core.Query.Engine.load_image ~verify:false image with
  | Error e ->
    Printf.eprintf "replica: cannot map %s: %s\n" image
      (Fmt.str "%a" Core.Db.Snapshot.pp_error e);
    exit 1
  | Ok idx ->
    ignore (Core.Query.Engine.eval_syscalls idx probe_nrs);
    (match read_vm_rss_kb () with
     | Some kb ->
       Printf.printf "%d\n" kb;
       exit 0
     | None ->
       prerr_endline "replica: no VmRSS line in /proc/self/status";
       exit 1)

(* Hidden child mode for the fleet bench: serve one mapped image as a
   real shard process — a single-worker TCP server with the response
   cache off — printing the bound port, until the parent kills us.
   Separate processes matter: systhreads in one process share their
   domain's scheduler, so an in-process "fleet" measures lock handoffs
   between the router, the shards and the load clients instead of the
   wire path the real [lapis fleet] runs. *)
let fleet_shard_main image =
  let module Server = Core.Query.Server in
  match Core.Query.Engine.load_image ~verify:false image with
  | Error e ->
    Printf.eprintf "fleet-shard: cannot map %s: %s\n" image
      (Fmt.str "%a" Core.Db.Snapshot.pp_error e);
    exit 1
  | Ok idx ->
    (match
       Server.start
         ~config:{ Server.default with workers = Some 1; cache_capacity = 0 }
         idx
     with
     | Error msg ->
       Printf.eprintf "fleet-shard: %s\n" msg;
       exit 1
     | Ok s ->
       Printf.printf "%d\n%!" (Server.port s);
       Server.wait s)

let measure_replica_rss ~image ~replicas =
  let one i =
    let out, inp = Unix.pipe ~cloexec:false () in
    match
      let pid =
        Unix.create_process Sys.executable_name
          [| Sys.executable_name; "--replica-rss"; image |]
          Unix.stdin inp Unix.stderr
      in
      Unix.close inp;
      let ic = Unix.in_channel_of_descr out in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      (snd (Unix.waitpid [] pid), int_of_string_opt (String.trim line))
    with
    | Unix.WEXITED 0, Some kb -> Some kb
    | status, _ ->
      Printf.eprintf "bench: replica %d failed (%s)\n" i
        (match status with
         | Unix.WEXITED n -> Printf.sprintf "exit %d" n
         | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
         | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n);
      None
    | exception e ->
      (try Unix.close inp with Unix.Unix_error _ -> ());
      (try Unix.close out with Unix.Unix_error _ -> ());
      Printf.eprintf "bench: replica %d failed (%s)\n" i
        (Printexc.to_string e);
      None
  in
  match List.init replicas one |> List.filter_map Fun.id with
  | [] -> None
  | kbs ->
    Some
      (float_of_int (List.fold_left ( + ) 0 kbs)
      /. float_of_int (List.length kbs))

let run_cold_start (args : args) ~env ~source_key ~subsets =
  let module Engine = Core.Query.Engine in
  let idx = env.Study.Env.index in
  let cleanup = ref [] in
  let temp suffix =
    let path = Filename.temp_file "lapis-cold" suffix in
    cleanup := path :: !cleanup;
    path
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        !cleanup)
  @@ fun () ->
  let snapshot_path =
    match args.snapshot with
    | Some path -> path
    | None ->
      let path = temp ".lapis" in
      let snap = Core.Db.Snapshot.of_analyzed (Study.Env.analyzed_exn env) in
      (match Core.Db.Snapshot.save path snap with
       | Ok () -> path
       | Error e ->
         Printf.eprintf "bench: cannot save cold-start snapshot: %s\n"
           (Fmt.str "%a" Core.Db.Snapshot.pp_error e);
         exit 1)
  in
  let image_path =
    match args.image with Some path -> path | None -> temp ".idx"
  in
  (match Engine.save_image ~source_key image_path idx with
   | Ok () -> ()
   | Error e ->
     Printf.eprintf "bench: cannot save index image: %s\n"
       (Fmt.str "%a" Core.Db.Snapshot.pp_error e);
     exit 1);
  let image_bytes = (Unix.stat image_path).Unix.st_size in
  let best f =
    let run _ =
      let t0 = Unix.gettimeofday () in
      let answer = f () in
      (Unix.gettimeofday () -. t0, answer)
    in
    match List.init 3 run with
    | first :: rest ->
      List.fold_left
        (fun (bt, ba) (t, a) -> if t < bt then (t, a) else (bt, ba))
        first rest
    | [] -> assert false
  in
  let decode_s, decode_answer =
    best (fun () ->
        match Core.Db.Snapshot.load snapshot_path with
        | Error e ->
          Printf.eprintf "bench: cold decode failed: %s\n"
            (Fmt.str "%a" Core.Db.Snapshot.pp_error e);
          exit 1
        | Ok snap ->
          let idx = Engine.index snap.Core.Db.Snapshot.store in
          Engine.eval_syscalls idx probe_nrs)
  in
  let map_s, (map_answer, mapped) =
    best (fun () ->
        match Engine.load_image image_path with
        | Error e ->
          Printf.eprintf "bench: cold map failed: %s\n"
            (Fmt.str "%a" Core.Db.Snapshot.pp_error e);
          exit 1
        | Ok midx -> (Engine.eval_syscalls midx probe_nrs, midx))
  in
  if not (Float.equal decode_answer map_answer) then begin
    Printf.eprintf
      "bench: FAIL: cold-start probe answers diverge (%.17g vs %.17g)\n"
      decode_answer map_answer;
    exit 1
  end;
  (* Full agreement sweep: the mapped index must reproduce the heap
     index exactly on every benched subset in every phase. *)
  let cold_diff =
    List.fold_left
      (fun acc nrs ->
        List.fold_left
          (fun acc phase ->
            Float.max acc
              (Float.abs
                 (Engine.eval_syscalls ~phase idx nrs
                 -. Engine.eval_syscalls ~phase mapped nrs)))
          acc
          [ Engine.All; Engine.Init; Engine.Serving ])
      0.0 subsets
  in
  let replica_rss_kb =
    match measure_replica_rss ~image:image_path ~replicas:args.replicas with
    | Some kb -> kb
    | None ->
      Printf.eprintf "bench: FAIL: no replica produced an RSS sample\n";
      exit 1
  in
  let map_s = Float.max map_s 1e-9 in
  let speedup = decode_s /. map_s in
  Printf.printf
    "Cold start: image %d bytes\n\
    \  decode+rebuild: %.4fs to first answer\n\
    \  mmap image:     %.4fs to first answer (%.1fx)\n\
    \  map-vs-heap max |diff| = %.3e over %d subsets x 3 phases\n\
    \  replica RSS: %.0f kB mean over %d re-exec'd processes\n%!"
    image_bytes decode_s map_s speedup cold_diff (List.length subsets)
    replica_rss_kb args.replicas;
  {
    cr_image_bytes = image_bytes;
    cr_decode_s = decode_s;
    cr_map_s = map_s;
    cr_speedup = speedup;
    cr_max_abs_diff = cold_diff;
    cr_replicas = args.replicas;
    cr_replica_rss_kb = replica_rss_kb;
  }

(* --- fleet bench ---------------------------------------------------

   What the sliced fleet buys, measured end to end in one process
   tree. Two questions, two numbers each:

   - memory: per-shard VmRSS when every shard maps the full image vs
     when each maps only its range slice (the slices are cut with
     [save_image ~range] over the exact [shard_ranges] partition the
     router scatters over, same as [lapis fleet --slice]);
   - throughput: scatter qps and p99 with the router's micro-batching
     on vs off, at saturation — [fleet_clients] closed-loop clients
     over an in-process fleet of [fleet_shards] single-worker servers
     each serving a loaded slice. Single-worker shards are the point:
     batching's win is evaluating the whole coalesced window in one
     worker slot (the serve batch arm fans it out over domains)
     instead of queueing N sequential jobs behind one worker.

   Shard and router response caches are disabled so the second
   (unbatched) pass cannot answer from entries the batched pass
   warmed. Every routed answer is checked against the single-process
   index within 1e-12 before it counts — a wrong fast fleet fails the
   bench, it does not win it. *)

(* Drive [clients] binary-codec connections against the router on
   [port], each sending [per_client] completeness requests drawn
   round-robin from [reqs]/[expected]. Two disciplines:

   - closed loop (rate = None): a fixed window outstanding per client
     — the saturation the batching throughput comparison wants;
     latency from the actual send.
   - open loop (rate = Some r): requests are scheduled at the fixed
     aggregate rate [r] on an integer-nanosecond grid interleaved
     across clients, and latency is charged from the *scheduled* send
     — so queueing the router causes is billed to it, not hidden
     (no coordinated omission). This is the regime where coalescing
     earns its keep: an arrival burst leaves for each shard as one
     frame instead of a convoy of singles.

   The binary codec is the deliberate choice: the JSON client codec
   costs an order of magnitude more CPU per exchange (see the codec
   bench), and on a saturated machine that parse time would drown the
   router↔shard path this bench exists to compare. Returns
   (qps, p99_ms); exits on any wrong, undecodable or out-of-tolerance
   answer. *)
let drive_fleet ~clients ~per_client ~reqs ~expected ?rate ~port () =
  let module Pr = Core.Query.Protocol in
  let module J = Core.Query.Json in
  let n_sub = Array.length reqs in
  let lats = Array.make (clients * per_client) 0.0 in
  let errors = ref 0 in
  let err_mutex = Mutex.create () in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Mutex.lock err_mutex;
        incr errors;
        Printf.eprintf "bench: fleet client: %s\n%!" msg;
        Mutex.unlock err_mutex)
      fmt
  in
  let read_frame ic =
    let magic = input_char ic in
    if magic <> Pr.Bin.magic then failwith "bad frame magic from router";
    let b0 = input_byte ic in
    let b1 = input_byte ic in
    let b2 = input_byte ic in
    let b3 = input_byte ic in
    let len = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
    really_input_string ic len
  in
  let sub_of client j = (client + (j * clients)) mod n_sub in
  let encode client j =
    Pr.Bin.encode_request
      {
        Pr.rq_id = Some (J.Num (float_of_int ((client * 1_000_000) + j)));
        rq_op = reqs.(sub_of client j);
      }
  in
  let check client j frame =
    let id = (client * 1_000_000) + j in
    match Pr.Bin.decode_response frame with
    | Error msg -> fail "undecodable response: %s" msg
    | Ok resp ->
      (match resp.Pr.rs_id with
       | Some (J.Num f) when int_of_float f = id -> ()
       | _ -> fail "request %d: missing or out-of-order id" id);
      (match resp.Pr.rs_result with
       | Ok (Pr.Completeness_r { completeness = c; _ }) ->
         if Float.abs (c -. expected.(sub_of client j)) > 1e-12 then
           fail
             "request %d: answer %.17g diverges from the single-process \
              index %.17g"
             id c expected.(sub_of client j)
       | Ok _ -> fail "request %d: wrong reply op" id
       | Error e -> fail "request %d: %s: %s" id e.Pr.e_kind e.Pr.e_msg)
  in
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let run_closed client =
    let ic, oc = connect () in
    let window = 8 in
    let send_t = Array.make (max per_client 1) 0.0 in
    let sent = ref 0 and rcvd = ref 0 in
    while !rcvd < per_client do
      while !sent < per_client && !sent - !rcvd < window do
        send_t.(!sent) <- Unix.gettimeofday ();
        output_string oc (encode client !sent);
        incr sent
      done;
      flush oc;
      let frame = read_frame ic in
      let j = !rcvd in
      lats.((client * per_client) + j) <-
        Unix.gettimeofday () -. send_t.(j);
      incr rcvd;
      check client j frame
    done;
    close_out_noerr oc;
    close_in_noerr ic
  in
  (* Open loop: slot [client + j*clients] of the aggregate schedule
     fires that many periods after [t0]; integer-nanosecond slot
     arithmetic, same reasoning as loadgen's schedule. *)
  let run_open client ~r ~t0 =
    let ic, oc = connect () in
    let period_ns = Int64.of_float (1e9 /. r) in
    let sched_ns j =
      Int64.mul (Int64.of_int (client + (j * clients))) period_ns
    in
    let since_t0_ns () =
      Int64.of_float ((Unix.gettimeofday () -. t0) *. 1e9)
    in
    let reader =
      Thread.create
        (fun () ->
          try
            for j = 0 to per_client - 1 do
              let frame = read_frame ic in
              let lat_ns = Int64.sub (since_t0_ns ()) (sched_ns j) in
              lats.((client * per_client) + j) <-
                Int64.to_float (Int64.max 0L lat_ns) /. 1e9;
              check client j frame
            done
          with e ->
            fail "client %d reader died: %s" client (Printexc.to_string e))
        ()
    in
    for j = 0 to per_client - 1 do
      let target = sched_ns j in
      let now = since_t0_ns () in
      if Int64.compare target now > 0 then
        Thread.delay (Int64.to_float (Int64.sub target now) /. 1e9);
      output_string oc (encode client j);
      flush oc
    done;
    Thread.join reader;
    close_out_noerr oc;
    close_in_noerr ic
  in
  let t0 =
    (* open loop: anchor the schedule slightly ahead so every sender
       reaches the line before slot 0 fires *)
    Unix.gettimeofday () +. (match rate with Some _ -> 0.05 | None -> 0.0)
  in
  let threads =
    List.init clients (fun client ->
        Thread.create
          (fun () ->
            try
              match rate with
              | Some r -> run_open client ~r ~t0
              | None -> run_closed client
            with e -> fail "client %d died: %s" client (Printexc.to_string e))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  if !errors > 0 then begin
    Printf.eprintf "bench: FAIL: %d fleet response error(s)\n" !errors;
    exit 1
  end;
  Array.sort compare lats;
  let total = clients * per_client in
  (float_of_int total /. Float.max wall 1e-9, percentile lats 99.0 *. 1e3)

let run_fleet_bench (args : args) ~env ~source_key ~subsets =
  let module Engine = Core.Query.Engine in
  let module Server = Core.Query.Server in
  let module Router = Core.Query.Router in
  let idx = env.Study.Env.index in
  let n = Engine.n_packages idx in
  let cleanup = ref [] in
  let temp suffix =
    let path = Filename.temp_file "lapis-fleet" suffix in
    cleanup := path :: !cleanup;
    path
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) !cleanup)
  @@ fun () ->
  let save ?range path =
    match Engine.save_image ~source_key ?range path idx with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "bench: cannot save fleet image: %s\n"
        (Fmt.str "%a" Core.Db.Snapshot.pp_error e);
      exit 1
  in
  let full_path = temp ".idx" in
  save full_path;
  let ranges = Engine.shard_ranges n args.fleet_shards in
  let shards = List.length ranges in
  let slice_paths =
    List.map
      (fun (lo, hi) ->
        let path = temp (Printf.sprintf ".slice-%d-%d" lo hi) in
        save ~range:(lo, hi) path;
        path)
      ranges
  in
  let image_bytes = (Unix.stat full_path).Unix.st_size in
  let sliced_bytes_total =
    List.fold_left
      (fun acc p -> acc + (Unix.stat p).Unix.st_size)
      0 slice_paths
  in
  (* Per-shard memory: a fleet of N full-image replicas vs one replica
     per slice, each probed once through the same re-exec'd child. *)
  let rss_of what = function
    | Some kb -> kb
    | None ->
      Printf.eprintf "bench: FAIL: no %s replica produced an RSS sample\n"
        what;
      exit 1
  in
  let rss_full_kb =
    rss_of "full-image"
      (measure_replica_rss ~image:full_path ~replicas:shards)
  in
  let rss_sliced_kb =
    let kbs =
      List.map
        (fun p ->
          rss_of "sliced" (measure_replica_rss ~image:p ~replicas:1))
        slice_paths
    in
    List.fold_left ( +. ) 0.0 kbs /. float_of_int (List.length kbs)
  in
  (* The fleet proper: one re-exec'd single-worker shard process per
     slice (see [fleet_shard_main] for why processes, not threads), a
     router in front, response caches off on both layers. *)
  let spawn_shard path =
    let out, inp = Unix.pipe ~cloexec:false () in
    let pid =
      Unix.create_process Sys.executable_name
        [| Sys.executable_name; "--fleet-shard"; path |]
        Unix.stdin inp Unix.stderr
    in
    Unix.close inp;
    let ic = Unix.in_channel_of_descr out in
    let port =
      match int_of_string_opt (String.trim (input_line ic)) with
      | Some p -> p
      | None | (exception End_of_file) ->
        Printf.eprintf "bench: shard for %s died before binding\n" path;
        exit 1
    in
    close_in ic;
    (pid, port)
  in
  let shard_procs = List.map spawn_shard slice_paths in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (pid, _) ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        shard_procs)
  @@ fun () ->
  let specs =
    List.map
      (fun (_, port) -> { Router.sh_host = "127.0.0.1"; sh_port = port })
      shard_procs
  in
  let subsets_a = Array.of_list subsets in
  let reqs =
    Array.map
      (fun nrs ->
        Core.Query.Protocol.Completeness
          { syscalls = nrs; phase = Engine.All })
      subsets_a
  in
  let expected = Array.map (Engine.eval_syscalls idx) subsets_a in
  let clients = args.fleet_clients in
  let per_client = max 1 (args.queries / clients) in
  let with_router ~batching f =
    match
      Router.start
        ~config:
          { Router.default with
            batching;
            cache_capacity = 0;
            workers = clients;
          }
        specs
    with
    | Error msg ->
      Printf.eprintf "bench: cannot start router: %s\n" msg;
      exit 1
    | Ok router ->
      Fun.protect ~finally:(fun () -> Router.stop router) @@ fun () ->
      f (Router.port router)
  in
  let batches0 = Core.Perf.Stage.counter "router:batches" in
  let bmsgs0 = Core.Perf.Stage.counter "router:batched-msgs" in
  let batched_qps, batched_sat_p99_ms =
    with_router ~batching:true (fun port ->
        drive_fleet ~clients ~per_client ~reqs ~expected ~port ())
  in
  let batches = Core.Perf.Stage.counter "router:batches" - batches0 in
  let bmsgs = Core.Perf.Stage.counter "router:batched-msgs" - bmsgs0 in
  let unbatched_qps, unbatched_sat_p99_ms =
    with_router ~batching:false (fun port ->
        drive_fleet ~clients ~per_client ~reqs ~expected ~port ())
  in
  let speedup = batched_qps /. Float.max unbatched_qps 1e-9 in
  (* The tentpole's latency gate: scatter p99 at one fixed open-loop
     rate, batching on vs off. The rate sits below both modes'
     saturation so the schedule is sustainable and the comparison
     isolates how each mode absorbs arrival bursts rather than who
     saturates first. *)
  let open_rate =
    Float.max 1.0 (0.7 *. Float.min batched_qps unbatched_qps)
  in
  let rate = Some open_rate in
  (* A sub-second open-loop run puts ~20 samples above p99, so one
     scheduler hiccup owns the tail; the median of three trials is the
     stable estimate. *)
  let open_p99 ~batching =
    let trials =
      List.init 3 (fun _ ->
          with_router ~batching (fun port ->
              snd
                (drive_fleet ~clients ~per_client ~reqs ~expected ?rate ~port
                   ())))
    in
    match List.sort compare trials with
    | [ _; med; _ ] -> med
    | _ -> assert false
  in
  let batched_p99_ms = open_p99 ~batching:true in
  let unbatched_p99_ms = open_p99 ~batching:false in
  Printf.printf
    "Fleet bench: %d shards over %d packages, %d clients x %d requests\n\
    \  image: full %d B, slices %d B total (%.2fx)\n\
    \  replica RSS: full %.0f kB, sliced %.0f kB per shard\n\
    \  saturation, batched:   %.0f q/s, p99 %.2f ms (%d batch frames, \
     %.1f msgs/batch)\n\
    \  saturation, unbatched: %.0f q/s, p99 %.2f ms\n\
    \  batching speedup: %.2fx\n\
    \  open loop at %.0f q/s: p99 batched %.2f ms, unbatched %.2f ms\n%!"
    shards n clients per_client image_bytes sliced_bytes_total
    (float_of_int sliced_bytes_total /. float_of_int (max 1 image_bytes))
    rss_full_kb rss_sliced_kb batched_qps batched_sat_p99_ms batches
    (float_of_int bmsgs /. float_of_int (max 1 batches))
    unbatched_qps unbatched_sat_p99_ms speedup open_rate batched_p99_ms
    unbatched_p99_ms;
  {
    fl_shards = shards;
    fl_image_bytes = image_bytes;
    fl_sliced_bytes_total = sliced_bytes_total;
    fl_rss_full_kb = rss_full_kb;
    fl_rss_sliced_kb = rss_sliced_kb;
    fl_batched_qps = batched_qps;
    fl_unbatched_qps = unbatched_qps;
    fl_batch_speedup = speedup;
    fl_open_rate_qps = open_rate;
    fl_batched_p99_ms = batched_p99_ms;
    fl_unbatched_p99_ms = unbatched_p99_ms;
  }

let run_query_bench (args : args) =
  let env, source_key =
    match args.snapshot with
    | Some path ->
      (match Core.Db.Snapshot.load path with
       | Ok snap ->
         Printf.printf "Loaded snapshot %s (%d packages).\n%!" path
           snap.Core.Db.Snapshot.meta.Core.Db.Snapshot.n_packages;
         ( Study.Env.of_snapshot snap,
           snap.Core.Db.Snapshot.meta.Core.Db.Snapshot.source_key )
       | Error e ->
         Printf.eprintf "bench: cannot load snapshot %s: %s\n" path
           (Fmt.str "%a" Core.Db.Snapshot.pp_error e);
         exit 1)
    | None ->
      Printf.printf
        "Building the synthetic distribution (%d packages) for the query \
         bench...\n%!"
        args.packages;
      let config =
        { Core.Distro.Generator.default_config with
          n_packages = args.packages }
      in
      let env = Study.Env.create ~config () in
      ( env,
        Core.Db.Snapshot.source_key
          ~seed:config.Core.Distro.Generator.seed
          ~n_packages:config.Core.Distro.Generator.n_packages
          ~total_installs:config.Core.Distro.Generator.total_installs () )
  in
  let store = env.Study.Env.store in
  let idx = env.Study.Env.index in
  let packages = Array.length store.Core.Db.Store.packages in
  (* Fixed-seed random subsets: 1..200 distinct syscalls each, drawn
     from the full table so unknown-to-the-corpus numbers are
     exercised too. *)
  let rng = Core.Distro.Rng.create 0x51b3c842 in
  let all_nrs =
    Array.to_list Core.Apidb.Syscall_table.all
    |> List.map (fun (e : Core.Apidb.Syscall_table.entry) ->
           e.Core.Apidb.Syscall_table.nr)
  in
  let n_nrs = List.length all_nrs in
  let subsets =
    List.init args.queries (fun _ ->
        let k = 1 + Core.Distro.Rng.int rng (min 200 n_nrs) in
        Core.Distro.Rng.sample rng k all_nrs)
  in
  let time_all f =
    let t0 = Unix.gettimeofday () in
    let results = List.map f subsets in
    (Unix.gettimeofday () -. t0, results)
  in
  let indexed_s, indexed =
    time_all (fun nrs ->
        Core.Metrics.Completeness.of_syscall_set_index idx nrs)
  in
  let oracle_s, oracle =
    time_all (fun nrs -> Core.Metrics.Completeness.of_syscall_set store nrs)
  in
  let max_abs_diff =
    List.fold_left2
      (fun acc a b -> Float.max acc (Float.abs (a -. b)))
      0.0 indexed oracle
  in
  (* Per-op latency distribution (each query timed on its own) and the
     Parmap batch path. The batch evaluates every subset whole on one
     domain, so its results must be identical to the single-query loop
     — checked here, not assumed. *)
  let latencies_us =
    subsets
    |> List.map (fun nrs ->
           let t0 = Unix.gettimeofday () in
           ignore (Core.Metrics.Completeness.of_syscall_set_index idx nrs);
           (Unix.gettimeofday () -. t0) *. 1e6)
    |> Array.of_list
  in
  Array.sort compare latencies_us;
  let batch_t0 = Unix.gettimeofday () in
  let batch = Core.Query.Engine.eval_subsets idx subsets in
  let batch_s = Unix.gettimeofday () -. batch_t0 in
  List.iter2
    (fun a b ->
      if not (Float.equal a b) then begin
        Printf.eprintf
          "bench: FAIL: batch eval diverges from the single-query loop \
           (%.17g vs %.17g)\n"
          a b;
        exit 1
      end)
    batch indexed;
  let indexed_s = Float.max indexed_s 1e-9 in
  let speedup = oracle_s /. indexed_s in
  Printf.printf
    "Query bench: %d subset queries over %d packages\n\
    \  indexed: %.4fs (%.0f q/s)\n\
    \  oracle:  %.4fs (%.0f q/s)\n\
    \  batch:   %.4fs (%.0f q/s)\n\
    \  latency: p50 %.2fus, p95 %.2fus, p99 %.2fus\n\
    \  speedup: %.1fx, max |indexed - oracle| = %.3e\n%!"
    args.queries packages indexed_s
    (float_of_int args.queries /. indexed_s)
    oracle_s
    (float_of_int args.queries /. oracle_s)
    batch_s
    (float_of_int args.queries /. Float.max batch_s 1e-9)
    (percentile latencies_us 50.0) (percentile latencies_us 95.0)
    (percentile latencies_us 99.0) speedup max_abs_diff;
  let cold =
    if args.cold_start then
      Some (run_cold_start args ~env ~source_key ~subsets)
    else None
  in
  let fleet =
    if args.fleet_bench then
      Some (run_fleet_bench args ~env ~source_key ~subsets)
    else None
  in
  let codec = run_codec_bench () in
  write_query_json ~packages ~queries:args.queries ~indexed_s ~oracle_s
    ~speedup ~max_abs_diff ~latencies_us ~batch_s ~cold ~fleet ~codec
    ~source_key "BENCH_QUERY.json";
  if max_abs_diff > 1e-12 then begin
    Printf.eprintf
      "bench: FAIL: indexed completeness diverges from the oracle by \
       %.3e (> 1e-12)\n"
      max_abs_diff;
    exit 1
  end;
  (match args.min_speedup with
   | Some want when speedup < want ->
     Printf.eprintf
       "bench: FAIL: indexed speedup %.1fx below the required %.1fx\n"
       speedup want;
     exit 1
   | _ -> ());
  (match cold with
   | None -> ()
   | Some c ->
     if c.cr_max_abs_diff <> 0.0 then begin
       Printf.eprintf
         "bench: FAIL: mapped index diverges from the heap index by %.3e \
          (must be exactly 0)\n"
         c.cr_max_abs_diff;
       exit 1
     end;
     (match args.min_cold_speedup with
      | Some want when c.cr_speedup < want ->
        Printf.eprintf
          "bench: FAIL: cold-start speedup %.1fx below the required %.1fx\n"
          c.cr_speedup want;
        exit 1
      | _ -> ());
     (match args.max_cold_seconds with
      | Some limit when c.cr_map_s > limit ->
        Printf.eprintf
          "bench: FAIL: cold start over the image took %.4fs (> %.4fs)\n"
          c.cr_map_s limit;
        exit 1
      | _ -> ()));
  (match fleet, args.min_batch_speedup with
   | Some f, Some want when f.fl_batch_speedup < want ->
     Printf.eprintf
       "bench: FAIL: batched scatter speedup %.2fx below the required \
        %.2fx\n"
       f.fl_batch_speedup want;
     exit 1
   | _ -> ());
  print_endline "Query bench: OK"

(* --- evolve bench --------------------------------------------------

   The living-distribution gate: evolve the world release by release
   and analyze every release twice — from scratch (a fresh per-run
   cache) and incrementally (one content-hash cache carried across
   the whole sequence). The two snapshots must be byte-identical at
   EVERY release; BENCH_EVOLVE.json records the wall-time ratio, the
   cache-reuse counters and the delta-vs-full snapshot sizes. *)

type evolve_row = {
  er_release : int;
  er_scratch_s : float;
  er_inc_s : float;
  er_hits : int;
  er_misses : int;
  er_full_bytes : int;
  er_delta_bytes : int;  (* 0 for the base release *)
}

let write_evolve_json ~packages ~releases ~rows ~scratch_s ~inc_s ~hits
    ~misses ~git path =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"git\": \"%s\",\n" (json_escape git);
  pf "  \"packages\": %d,\n" packages;
  pf "  \"releases\": %d,\n" releases;
  pf "  \"identical\": true,\n";
  pf "  \"scratch_wall_s\": %.6f,\n" scratch_s;
  pf "  \"incremental_wall_s\": %.6f,\n" inc_s;
  pf "  \"wall_ratio\": %.4f,\n"
    (if scratch_s > 0.0 then inc_s /. scratch_s else 0.0);
  pf "  \"cache_hits\": %d,\n" hits;
  pf "  \"cache_misses\": %d,\n" misses;
  pf "  \"reuse\": %.4f,\n"
    (if hits + misses > 0 then
       float_of_int hits /. float_of_int (hits + misses)
     else 0.0);
  pf "  \"rows\": [";
  List.iteri
    (fun i r ->
      pf "%s\n    { \"release\": %d, \"scratch_s\": %.6f, \"inc_s\": %.6f, \
          \"hits\": %d, \"misses\": %d, \"full_bytes\": %d, \
          \"delta_bytes\": %d }"
        (if i = 0 then "" else ",")
        r.er_release r.er_scratch_s r.er_inc_s r.er_hits r.er_misses
        r.er_full_bytes r.er_delta_bytes)
    rows;
  pf "\n  ]\n}\n";
  close_out oc;
  Printf.printf "Wrote %s\n%!" path

let run_evolve_bench args =
  let module G = Core.Distro.Generator in
  let module Pl = Core.Db.Pipeline in
  let module Sn = Core.Db.Snapshot in
  let config = { G.default_config with n_packages = args.packages } in
  let cache = Pl.new_cache () in
  let inc_config = { Pl.default with shared_cache = Some cache } in
  Printf.printf
    "Evolve bench: %d releases over %d packages, incremental vs \
     from-scratch...\n%!"
    args.releases args.packages;
  let base = ref None in
  let rows = ref [] in
  let tot_scratch = ref 0.0 and tot_inc = ref 0.0 in
  let prev_hits = ref 0 and prev_misses = ref 0 in
  for r = 0 to args.releases do
    let dist = G.evolve ~config ~release:r () in
    let t0 = Unix.gettimeofday () in
    let scratch = Pl.run dist in
    let t1 = Unix.gettimeofday () in
    let incr = Pl.run ~config:inc_config dist in
    let t2 = Unix.gettimeofday () in
    let snap_inc = Sn.of_analyzed incr in
    let b_inc = Sn.to_string snap_inc in
    let b_scratch = Sn.to_string (Sn.of_analyzed scratch) in
    if b_scratch <> b_inc then begin
      Printf.eprintf
        "bench: FAIL: release %d: the incremental snapshot differs from \
         the from-scratch one (%d vs %d bytes) — the shared analysis \
         cache leaked state across releases\n"
        r (String.length b_inc) (String.length b_scratch);
      exit 1
    end;
    let hits = Core.Perf.Stage.counter "incremental:hits" in
    let misses = Core.Perf.Stage.counter "incremental:misses" in
    let dh = hits - !prev_hits and dm = misses - !prev_misses in
    prev_hits := hits;
    prev_misses := misses;
    let delta_bytes =
      match !base with
      | None ->
        base := Some snap_inc;
        0
      | Some b -> String.length (Sn.to_delta_string ~base:b snap_inc)
    in
    tot_scratch := !tot_scratch +. (t1 -. t0);
    tot_inc := !tot_inc +. (t2 -. t1);
    rows :=
      {
        er_release = r;
        er_scratch_s = t1 -. t0;
        er_inc_s = t2 -. t1;
        er_hits = dh;
        er_misses = dm;
        er_full_bytes = String.length b_inc;
        er_delta_bytes = delta_bytes;
      }
      :: !rows;
    Printf.printf
      "  release %2d: identical (%d bytes); scratch %.2fs, incremental \
       %.2fs, reuse %d/%d%s\n%!"
      r (String.length b_inc) (t1 -. t0) (t2 -. t1) dh (dh + dm)
      (if delta_bytes = 0 then ""
       else Printf.sprintf ", delta %d bytes" delta_bytes)
  done;
  let hits = Core.Perf.Stage.counter "incremental:hits" in
  let misses = Core.Perf.Stage.counter "incremental:misses" in
  Printf.printf
    "Evolve bench: all %d releases bit-identical; wall %.2fs scratch vs \
     %.2fs incremental (ratio %.2f), cache reuse %d/%d\n%!"
    (args.releases + 1) !tot_scratch !tot_inc
    (if !tot_scratch > 0.0 then !tot_inc /. !tot_scratch else 0.0)
    hits (hits + misses);
  if args.json then
    write_evolve_json ~packages:args.packages ~releases:args.releases
      ~rows:(List.rev !rows) ~scratch_s:!tot_scratch ~inc_s:!tot_inc ~hits
      ~misses ~git:(git_stamp ()) "BENCH_EVOLVE.json";
  print_endline "Evolve bench: OK"

let () =
  (* Hidden replica mode: exec'd by the cold-start bench, prints this
     process's VmRSS (kB) after mapping the image and answering once. *)
  (match Array.to_list Sys.argv with
   | [ _; "--replica-rss"; image ] -> replica_rss_main image
   | [ _; "--fleet-shard"; image ] ->
     fleet_shard_main image;
     exit 0
   | _ -> ());
  let args = parse_args () in
  if args.query_bench then begin
    run_query_bench args;
    exit 0
  end;
  if args.evolve_bench then begin
    run_evolve_bench args;
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "Building the synthetic distribution (%d packages) and running the \
     full analysis pipeline...\n%!"
    args.packages;
  let env =
    Study.Env.create
      ~config:
        { Core.Distro.Generator.default_config with
          n_packages = args.packages }
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "Pipeline complete in %.1fs.\n%!" wall;
  Fmt.pr "Per-stage breakdown:@\n%a%!" Core.Perf.Stage.pp_report ();
  let mismatches =
    Core.Db.Pipeline.spot_check (Study.Env.analyzed_exn env)
  in
  Printf.printf
    "Spot check (Section 2.3): %d package footprint mismatches between \
     static analysis and ground truth.\n"
    (List.length mismatches);
  let quarantined =
    Core.Db.Pipeline.quarantined (Study.Env.analyzed_exn env)
  in
  Printf.printf
    "Quarantined binaries: %d (expected 0 on the clean corpus).\n"
    quarantined;
  let selected =
    match args.ids with
    | [] -> Study.Experiments.all
    | ids -> List.filter_map Study.Experiments.find ids
  in
  List.iter
    (fun (x : Study.Experiments.t) ->
      print_string (x.Study.Experiments.render env);
      print_newline ())
    selected;
  if args.ids = [] then print_table12 env;
  let micro_results = if args.micro then run_micro env else [] in
  if args.json then begin
    let config =
      { Core.Distro.Generator.default_config with n_packages = args.packages }
    in
    write_json ~packages:args.packages
      ~binaries:(List.length env.Study.Env.store.Core.Db.Store.bins)
      ~wall ~micro_results ~git:(git_stamp ())
      ~source_key:
        (Core.Db.Snapshot.source_key
           ~seed:config.Core.Distro.Generator.seed
           ~n_packages:config.Core.Distro.Generator.n_packages
           ~total_installs:config.Core.Distro.Generator.total_installs ())
      (Printf.sprintf "BENCH_%d.json" args.packages)
  end;
  Option.iter
    (check_against
       ~stage_total_now:(stage_total (Core.Perf.Stage.report ()))
       ~quarantined)
    args.check_against
