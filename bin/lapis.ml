(* lapis — Linux API study CLI.

   Subcommands:
     generate   synthesize the distribution and write its binaries to disk
     evolve     evolve it release by release: one full snapshot + deltas,
                analyzed incrementally through a shared content-hash cache
     analyze    run the pipeline and dump importance rankings
                (--save-snapshot persists the analyzed world)
     report     regenerate a figure/table of the paper (or all of them)
     footprint  analyze a single ELF file and print its API footprint
     seccomp    emit a seccomp allow-list for an ELF file
     compat     weighted completeness of a user-provided syscall list
     query      one-shot indexed query against a saved snapshot
     slice      cut range-sliced index images from a full one
     serve      line-delimited JSON query loop over stdin/stdout
     fleet      sharded multi-process serving: N serve shards behind a
                scatter/gather router (--slice: one slice per shard)

   analyze/report/compat/seccomp accept --snapshot PATH to start from
   a saved world instead of re-running generation + analysis. *)

open Cmdliner
module Study = Core.Study
module P = Core.Distro.Package
module Snapshot = Core.Db.Snapshot
module Query = Core.Query.Engine
module Json = Core.Query.Json
module Protocol = Core.Query.Protocol
module Serve = Core.Query.Serve
module Server = Core.Query.Server
module Router = Core.Query.Router

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

(* -p/--seed are optional so a snapshot run can tell "defaulted" from
   "explicitly requested" when deciding whether to warn about a
   mismatch between the flags and the snapshot's generator identity. *)
let packages_arg =
  let doc = "Number of packages in the synthetic distribution." in
  Arg.(value & opt (some int) None & info [ "p"; "packages" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Generator seed (the distribution is deterministic per seed)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let snapshot_arg =
  let doc =
    "Start from a snapshot saved by $(b,lapis analyze --save-snapshot) \
     instead of generating and analyzing a corpus."
  in
  Arg.(value & opt (some file) None & info [ "snapshot" ] ~docv:"PATH" ~doc)

let base_arg =
  let doc =
    "Full row snapshot a format-5 delta snapshot (written by \
     $(b,lapis evolve)) applies to. Required when --snapshot names a \
     delta; ignored otherwise."
  in
  Arg.(value & opt (some file) None & info [ "base" ] ~docv:"PATH" ~doc)

let stats_arg =
  let doc =
    "Print the per-stage timing/counter report to stderr after answering \
     (shows that snapshot-backed queries spend no time in analysis)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let print_stage_stats () =
  Fmt.epr "# per-stage breakdown:@\n%a%!" Core.Perf.Stage.pp_report ()

let config packages seed =
  let d = Core.Distro.Generator.default_config in
  {
    d with
    n_packages = Option.value ~default:d.n_packages packages;
    seed = Option.value ~default:d.seed seed;
  }

let load_snapshot path =
  match Snapshot.load path with
  | Ok snap -> snap
  | Error (Snapshot.Unsupported_version v) when v = Query.image_version ->
    Printf.eprintf
      "lapis: %s is a format-4 index image: query/serve/seccomp consume it \
       directly, but this command needs the row snapshot it was built from \
       (lapis analyze --save-snapshot)\n"
      path;
    exit 1
  | Error e ->
    Printf.eprintf "lapis: cannot load snapshot %s: %s [kind: %s]\n" path
      (Fmt.str "%a" Snapshot.pp_error e)
      (Snapshot.kind_name e);
    exit 1

(* A format-5 delta is meaningless alone: route it through the full
   snapshot it was diffed against ([--base]). Anything else goes to
   the plain loader. *)
let load_any_snapshot ?base path =
  if Snapshot.file_version path = Ok Snapshot.delta_version then
    match base with
    | None ->
      Printf.eprintf
        "lapis: %s is a format-5 delta snapshot; pass --base PATH naming \
         the full snapshot it applies to (lapis evolve writes it as \
         base.snap)\n"
        path;
      exit 2
    | Some bpath ->
      let b = load_snapshot bpath in
      (match Snapshot.load_delta path ~base:b with
       | Ok snap -> snap
       | Error e ->
         Printf.eprintf "lapis: cannot apply delta %s to %s: %s [kind: %s]\n"
           path bpath
           (Fmt.str "%a" Snapshot.pp_error e)
           (Snapshot.kind_name e);
         exit 1)
  else load_snapshot path

(* Is [path] a format-4 index image (as opposed to a row snapshot)?
   Unreadable or unrecognizable files fall through to the row-snapshot
   loader, whose errors name the problem. *)
let is_index_image path = Snapshot.file_version path = Ok Query.image_version

let load_image path =
  match Query.load_image path with
  | Ok idx ->
    Printf.eprintf "# mapped index image %s (%d packages, %d apis)\n%!" path
      (Query.n_packages idx) (Query.n_apis idx);
    idx
  | Error e ->
    Printf.eprintf "lapis: cannot map index image %s: %s [kind: %s]\n" path
      (Fmt.str "%a" Snapshot.pp_error e)
      (Snapshot.kind_name e);
    exit 1

(* "LO:HI" — a global package range, validated against the source
   image by [Query.save_image ~range]. *)
let parse_slice_spec s =
  let fail () =
    Printf.eprintf
      "lapis: bad slice %S (expected LO:HI with 0 <= LO <= HI)\n" s;
    exit 2
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i ->
    (match
       ( int_of_string_opt (String.sub s 0 i),
         int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
     with
     | Some lo, Some hi when 0 <= lo && lo <= hi -> (lo, hi)
     | _ -> fail ())

let slice_out_path base (lo, hi) = Printf.sprintf "%s.slice-%d-%d" base lo hi

(* Cut a range-sliced image of [idx] at [out] via write-to-temp +
   rename: a concurrent reader sees the old file or the new one, never
   a partial write. The slice keeps the source image's identity. *)
let cut_slice idx ~range out =
  let tmp = out ^ ".tmp" in
  (match
     Query.save_image ~seed:(Query.image_seed idx)
       ~source_key:(Query.image_source_key idx) ~range tmp idx
   with
   | Ok () -> Sys.rename tmp out
   | Error e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     Printf.eprintf "lapis: cannot write slice %s: %s\n" out
       (Fmt.str "%a" Snapshot.pp_error e);
     exit 1
   | exception Invalid_argument msg ->
     (try Sys.remove tmp with Sys_error _ -> ());
     Printf.eprintf "lapis: %s\n" msg;
     exit 2);
  let lo, hi = range in
  Printf.eprintf "# wrote slice [%d,%d) to %s (%d bytes)\n%!" lo hi out
    (Unix.stat out).Unix.st_size

let make_env ?snapshot ?base packages seed =
  setup_logs ();
  match snapshot with
  | Some path ->
    let snap = load_any_snapshot ?base path in
    if (packages <> None || seed <> None)
       && not (Snapshot.matches snap (config packages seed))
    then
      Printf.eprintf
        "# warning: snapshot %s was generated with %d packages (seed %d); \
         ignoring -p/--seed\n%!"
        path snap.Snapshot.meta.Snapshot.n_packages
        snap.Snapshot.meta.Snapshot.seed;
    Printf.eprintf "# loaded snapshot %s (%d packages, seed %d)\n%!" path
      snap.Snapshot.meta.Snapshot.n_packages snap.Snapshot.meta.Snapshot.seed;
    Study.Env.of_snapshot snap
  | None ->
    let config = config packages seed in
    Printf.eprintf "# generating %d packages (seed %d) and analyzing...\n%!"
      config.Core.Distro.Generator.n_packages
      config.Core.Distro.Generator.seed;
    Study.Env.create ~config ()

(* --- generate ---------------------------------------------------------- *)

let generate_cmd =
  let out_arg =
    let doc = "Directory to write the distribution into." in
    Arg.(value & opt string "_distro" & info [ "o"; "output" ] ~docv:"DIR" ~doc)
  in
  let run packages seed out =
    setup_logs ();
    let dist = Core.Distro.Generator.generate ~config:(config packages seed) () in
    let write path bytes =
      let path = Filename.concat out path in
      let rec mkdirs d =
        if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
          mkdirs (Filename.dirname d);
          Sys.mkdir d 0o755
        end
      in
      mkdirs (Filename.dirname path);
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc
    in
    List.iter
      (fun (soname, bytes) -> write ("lib/" ^ soname) bytes)
      dist.P.runtime;
    List.iter
      (fun (pkg : P.t) ->
        List.iter
          (fun (f : P.file) ->
            write (Filename.concat pkg.P.name f.P.path) f.P.bytes)
          pkg.P.files)
      dist.P.packages;
    Printf.printf "wrote %d packages (%d files) under %s\n"
      (P.n_packages dist)
      (List.length (P.all_files dist))
      out
  in
  let doc = "Synthesize the calibrated distribution and write it to disk." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ out_arg)

(* --- evolve ------------------------------------------------------------ *)

let evolve_cmd =
  let releases_arg =
    let doc = "How many releases to evolve past the base (release 0)." in
    Arg.(value & opt int 5 & info [ "releases" ] ~docv:"R" ~doc)
  in
  let churn_arg =
    let doc =
      "Fraction of eligible packages whose behavior changes per release \
       (bumps; re-links, retirements and introductions are derived from \
       it)."
    in
    Arg.(value & opt float 0.05 & info [ "churn" ] ~docv:"FRAC" ~doc)
  in
  let out_arg =
    let doc =
      "Directory for the release stream: $(b,base.snap) (full snapshot of \
       release 0) plus one $(b,delta-rN.snap) (format-5, diffed against \
       the base) per later release."
    in
    Arg.(value & opt string "_releases" & info [ "o"; "output" ] ~docv:"DIR" ~doc)
  in
  let publish_arg =
    let doc =
      "After each release, publish its full snapshot at $(docv) via \
       write-to-temp + rename, so a watching $(b,lapis serve --watch) \
       always sees either the old or the new file, never a partial one."
    in
    Arg.(value & opt (some string) None & info [ "publish" ] ~docv:"PATH" ~doc)
  in
  let run packages seed releases churn out publish stats =
    setup_logs ();
    if releases < 0 then begin
      Printf.eprintf "lapis: --releases must be non-negative\n";
      exit 2
    end;
    let config = config packages seed in
    (* one analysis cache across the whole release sequence: only
       binaries whose bytes changed are re-analyzed, and the
       incremental:* counters below prove the reuse ratio *)
    let cache = Core.Db.Pipeline.new_cache () in
    let pconfig =
      { Core.Db.Pipeline.default with shared_cache = Some cache }
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let fail_snap what path e =
      Printf.eprintf "lapis: cannot %s %s: %s\n" what path
        (Fmt.str "%a" Snapshot.pp_error e);
      exit 1
    in
    let publish_snap snap =
      match publish with
      | None -> ()
      | Some path ->
        let tmp = path ^ ".tmp" in
        (match Snapshot.save tmp snap with
         | Error e -> fail_snap "publish" tmp e
         | Ok () ->
           Sys.rename tmp path;
           Printf.eprintf "# published %s\n%!" path)
    in
    let prev_hits = ref 0 and prev_misses = ref 0 in
    let reuse_since_last () =
      let h = Core.Perf.Stage.counter "incremental:hits" in
      let m = Core.Perf.Stage.counter "incremental:misses" in
      let dh = h - !prev_hits and dm = m - !prev_misses in
      prev_hits := h;
      prev_misses := m;
      (dh, dm)
    in
    let base = ref None in
    for r = 0 to releases do
      let dist =
        Core.Distro.Generator.evolve ~config ~churn ~release:r ()
      in
      let analyzed = Core.Db.Pipeline.run ~config:pconfig dist in
      let snap = Snapshot.of_analyzed analyzed in
      let n_pkgs =
        Array.length snap.Snapshot.store.Core.Db.Store.packages
      in
      let hits, misses = reuse_since_last () in
      (match !base with
       | None ->
         let path = Filename.concat out "base.snap" in
         (match Snapshot.save path snap with
          | Error e -> fail_snap "save" path e
          | Ok () -> ());
         base := Some snap;
         Printf.printf
           "release 0: %d packages, full snapshot %s (%d bytes; analyzed \
            %d payloads)\n%!"
           n_pkgs path
           (String.length (Snapshot.to_string snap))
           misses
       | Some b ->
         let path = Filename.concat out (Printf.sprintf "delta-r%d.snap" r) in
         (match Snapshot.save_delta path ~base:b snap with
          | Error e -> fail_snap "save delta" path e
          | Ok () -> ());
         let full = String.length (Snapshot.to_string snap) in
         let delta = (Unix.stat path).Unix.st_size in
         Printf.printf
           "release %d: %d packages, delta %s (%d bytes, %.1f%% of the \
            %d-byte full snapshot; analysis reuse %d/%d)\n%!"
           r n_pkgs path delta
           (100.0 *. float_of_int delta /. float_of_int full)
           full hits (hits + misses));
      publish_snap snap
    done;
    if stats then print_stage_stats ()
  in
  let doc =
    "Evolve the distribution release by release and write the stream as \
     one full snapshot plus small per-release deltas; analysis is \
     incremental (content-hash cache) yet bit-identical to re-analyzing \
     each release from scratch."
  in
  Cmd.v
    (Cmd.info "evolve" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ releases_arg $ churn_arg
          $ out_arg $ publish_arg $ stats_arg)

(* --- report ------------------------------------------------------------ *)

let report_cmd =
  let ids_arg =
    let doc =
      "Experiment identifiers (fig1..fig8, table1..table7, table8..table11, \
       section6, ablations). Defaults to all."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run packages seed snapshot base ids =
    let env = make_env ?snapshot ?base packages seed in
    let selected =
      match ids with
      | [] -> Study.Experiments.all
      | ids ->
        List.map
          (fun id ->
            match Study.Experiments.find id with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %s; known: %s\n" id
                (String.concat " " Study.Experiments.ids);
              exit 2)
          ids
    in
    List.iter
      (fun (e : Study.Experiments.t) ->
        print_string (e.Study.Experiments.render env))
      selected
  in
  let doc = "Regenerate figures and tables of the paper's evaluation." in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ base_arg
          $ ids_arg)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let top_arg =
    let doc = "How many ranking rows to print." in
    Arg.(value & opt int 50 & info [ "top" ] ~docv:"N" ~doc)
  in
  let save_arg =
    let doc =
      "Write the analyzed world to a snapshot file for later \
       $(b,lapis query) / $(b,lapis serve) runs."
    in
    Arg.(
      value & opt (some string) None & info [ "save-snapshot" ] ~docv:"PATH" ~doc)
  in
  let save_index_arg =
    let doc =
      "Write the built query index as a flat format-4 image: \
       $(b,lapis query) / $(b,lapis serve) / $(b,lapis seccomp) map it \
       read-only and answer with zero decode, bit-identically to a \
       rebuild from the row snapshot."
    in
    Arg.(
      value & opt (some string) None & info [ "save-index" ] ~docv:"PATH" ~doc)
  in
  let run packages seed snapshot base save save_index top =
    let env = make_env ?snapshot ?base packages seed in
    (match save with
     | None -> ()
     | Some path ->
       (match Study.Env.corpus env with
        | Error msg ->
          Printf.eprintf
            "lapis: --save-snapshot needs a freshly analyzed corpus: %s\n" msg;
          exit 2
        | Ok analyzed ->
          (match Snapshot.save path (Snapshot.of_analyzed analyzed) with
           | Ok () -> Printf.eprintf "# saved snapshot to %s\n%!" path
           | Error e ->
             Printf.eprintf "lapis: cannot save snapshot %s: %s\n" path
               (Fmt.str "%a" Snapshot.pp_error e);
             exit 1)))
    ;
    (match save_index with
     | None -> ()
     | Some path ->
       let cfg = config packages seed in
       let idx = env.Study.Env.index in
       let source_key =
         Snapshot.source_key ~seed:cfg.Core.Distro.Generator.seed
           ~n_packages:cfg.Core.Distro.Generator.n_packages
           ~total_installs:(Query.total_installs idx) ()
       in
       (match
          Query.save_image ~seed:cfg.Core.Distro.Generator.seed ~source_key
            path idx
        with
        | Ok () -> Printf.eprintf "# saved index image to %s\n%!" path
        | Error e ->
          Printf.eprintf "lapis: cannot save index image %s: %s\n" path
            (Fmt.str "%a" Snapshot.pp_error e);
          exit 1))
    ;
    let idx = env.Study.Env.index in
    Printf.printf "%-4s %-22s %-10s %-10s\n" "rank" "system call"
      "importance" "unweighted";
    List.iteri
      (fun i nr ->
        if i < top then
          Printf.printf "%-4d %-22s %-10.4f %-10.4f\n" (i + 1)
            (Core.Apidb.Syscall_table.name_of_nr nr)
            (Core.Metrics.Importance.of_index idx (Core.Apidb.Api.Syscall nr))
            (Core.Metrics.Importance.unweighted_of_index idx
               (Core.Apidb.Api.Syscall nr)))
      env.Study.Env.ranking
  in
  let doc = "Print the system call importance ranking." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ base_arg
          $ save_arg $ save_index_arg $ top_arg)

(* --- footprint / seccomp ------------------------------------------------ *)

let elf_arg =
  let doc = "An ELF file produced by $(b,lapis generate)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"ELF" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

let with_world packages seed f =
  setup_logs ();
  let dist = Core.Distro.Generator.generate ~config:(config packages seed) () in
  let analyze_elf bytes =
    match Core.Elf.Reader.parse bytes with
    | Ok img -> Some (Core.Analysis.Binary.analyze img)
    | Error _ -> None
  in
  let runtime_sonames = List.map fst dist.P.runtime in
  let libs =
    List.filter_map
      (fun (soname, bytes) ->
        Option.map (fun b -> (soname, b)) (analyze_elf bytes))
      dist.P.runtime
    @ List.filter_map
        (fun (soname, _, bytes) ->
          Option.map (fun b -> (soname, b)) (analyze_elf bytes))
        dist.P.shared_libs
  in
  let ld_so = List.assoc_opt "ld-linux-x86-64.so.2" libs in
  let world =
    Core.Analysis.Resolve.make_world ?ld_so
      ~libc_family:(fun s -> List.mem s runtime_sonames)
      libs
  in
  f world

let footprint_of_file world path =
  match Core.Elf.Reader.parse (read_file path) with
  | Error e ->
    Printf.eprintf "cannot parse %s: %s\n" path
      (Fmt.str "%a" Core.Elf.Reader.pp_error e);
    exit 1
  | Ok img ->
    let bin = Core.Analysis.Binary.analyze img in
    Core.Analysis.Resolve.binary_footprint world bin

(* A snapshot stores every analyzed binary keyed by content digest, so
   a user-supplied file is matched byte-for-byte without re-analysis. *)
let snapshot_bin_row snap path =
  let digest = Digest.string (read_file path) in
  let row =
    List.find_opt
      (fun (b : Core.Db.Store.bin_row) -> b.Core.Db.Store.br_digest = digest)
      snap.Snapshot.store.Core.Db.Store.bins
  in
  match row with
  | Some b -> b
  | None ->
    Printf.eprintf
      "lapis: %s is not in the snapshot (no binary with digest %s); \
       re-run lapis analyze --save-snapshot on the corpus that contains \
       it, or drop --snapshot to analyze it directly\n"
      path (Digest.to_hex digest);
    exit 1

let footprint_cmd =
  let run packages seed path =
    with_world packages seed (fun world ->
        let fp = footprint_of_file world path in
        Printf.printf "# footprint of %s\n" path;
        List.iter
          (fun nr ->
            Printf.printf "syscall %-22s (%d)\n"
              (Core.Apidb.Syscall_table.name_of_nr nr)
              nr)
          (Core.Analysis.Footprint.syscalls fp);
        List.iter
          (fun (v, code) ->
            Printf.printf "vop     %s\n" (Core.Apidb.Vectored.name v code))
          (Core.Analysis.Footprint.vops fp);
        List.iter
          (fun p -> Printf.printf "pseudo  %s\n" p)
          (Core.Analysis.Footprint.pseudo_files fp))
  in
  let doc = "Print the resolved API footprint of one ELF binary." in
  Cmd.v
    (Cmd.info "footprint" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ elf_arg)

let phase_arg =
  let doc =
    "Restrict to one temporal phase: $(b,init) (APIs requestable \
     during initialization, up to the serving-loop transition), \
     $(b,serving) (steady state), or $(b,all) (the whole footprint; \
     default). An init-only policy can be tightened to the serving \
     set once a server finishes starting up."
  in
  let phase_conv =
    Arg.enum
      [ ("init", Query.Init); ("serving", Query.Serving); ("all", Query.All) ]
  in
  Arg.(value & opt phase_conv Query.All & info [ "phase" ] ~docv:"PHASE" ~doc)

let seccomp_cmd =
  let run packages seed snapshot base phase path =
    setup_logs ();
    let pick ~init ~serving ~all =
      match phase with
      | Query.Init -> init
      | Query.Serving -> serving
      | Query.All -> all
    in
    let apis =
      match snapshot with
      | Some snap_path when is_index_image snap_path ->
        let idx = load_image snap_path in
        let digest = Digest.string (read_file path) in
        (match Query.find_bin idx digest with
         | Ok (Some row) ->
           pick ~init:row.Query.bs_init ~serving:row.Query.bs_serving
             ~all:row.Query.bs_all
         | Ok None ->
           Printf.eprintf
             "lapis: %s is not in the index image (no binary with digest \
              %s); regenerate the image from the corpus that contains it, \
              or drop --snapshot to analyze it directly\n"
             path (Digest.to_hex digest);
           exit 1
         | Error e ->
           Printf.eprintf "lapis: index image bins section: %s [kind: %s]\n"
             (Fmt.str "%a" Snapshot.pp_error e)
             (Snapshot.kind_name e);
           exit 1)
      | Some snap_path ->
        let snap = load_any_snapshot ?base snap_path in
        let row = snapshot_bin_row snap path in
        pick ~init:row.Core.Db.Store.br_init
          ~serving:row.Core.Db.Store.br_serving
          ~all:row.Core.Db.Store.br_resolved.Core.Analysis.Footprint.apis
      | None ->
        with_world packages seed (fun world ->
            match Core.Elf.Reader.parse (read_file path) with
            | Error e ->
              Printf.eprintf "cannot parse %s: %s\n" path
                (Fmt.str "%a" Core.Elf.Reader.pp_error e);
              exit 1
            | Ok img ->
              let bin = Core.Analysis.Binary.analyze img in
              let total = Core.Analysis.Resolve.binary_footprint world bin in
              (match phase with
               | Query.All -> total.Core.Analysis.Footprint.apis
               | _ ->
                 let init, serving =
                   Core.Analysis.Resolve.phased_footprint world bin ~total
                 in
                 pick ~init ~serving
                   ~all:total.Core.Analysis.Footprint.apis))
    in
    print_endline (Core.Metrics.Uniqueness.seccomp_policy apis)
  in
  let doc =
    "Emit a seccomp-bpf allow-list for one ELF binary (Section 6), \
     optionally restricted to one temporal phase with $(b,--phase)."
  in
  Cmd.v
    (Cmd.info "seccomp" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ base_arg
          $ phase_arg $ elf_arg)

(* --- compat ------------------------------------------------------------- *)

(* [ranking] is the most-important-first syscall order top:N draws
   from — [Study.Env.ranking] or [Query.ranking] of a mapped image. *)
let parse_syscall_specs ranking names =
  List.concat_map
    (fun s ->
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "top" ->
        let n =
          int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        in
        List.filteri (fun j _ -> j < n) ranking
      | _ ->
        (match int_of_string_opt s with
         | Some nr -> [ nr ]
         | None ->
           (match Core.Apidb.Syscall_table.nr_of_name s with
            | Some nr -> [ nr ]
            | None ->
              Printf.eprintf "unknown system call %s\n" s;
              exit 2)))
    names

let compat_cmd =
  let syscalls_arg =
    let doc =
      "System call names (or numbers) the prototype supports; pass \
       $(b,top:N) for the N most important."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"SYSCALL" ~doc)
  in
  let run packages seed snapshot base names =
    let env = make_env ?snapshot ?base packages seed in
    let nrs = parse_syscall_specs env.Study.Env.ranking names in
    let c =
      Core.Metrics.Completeness.of_syscall_set_index env.Study.Env.index nrs
    in
    Printf.printf
      "supporting %d system calls -> weighted completeness %.2f%%\n"
      (List.length (List.sort_uniq compare nrs))
      (100.0 *. c)
  in
  let doc =
    "Weighted completeness of a prototype supporting the given syscalls."
  in
  Cmd.v
    (Cmd.info "compat" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ base_arg
          $ syscalls_arg)

(* --- query -------------------------------------------------------------- *)

let query_cmd =
  let op_arg =
    let doc =
      "Query: $(b,stats) | $(b,top) [N] | $(b,importance) API | \
       $(b,dependents) API [LIMIT] | $(b,completeness) SYSCALL[,...] \
       (names, numbers or top:N)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let operands_arg =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ARG")
  in
  let run snapshot base stats phase op operands =
    setup_logs ();
    let path =
      match snapshot with
      | Some p -> p
      | None ->
        Printf.eprintf
          "lapis: query needs --snapshot PATH (save one with lapis analyze \
           --save-snapshot)\n";
        exit 2
    in
    let idx =
      if is_index_image path then load_image path
      else begin
        let env = make_env ~snapshot:path ?base None None in
        env.Study.Env.index
      end
    in
    let request =
      match (op, operands) with
      | "stats", [] -> Json.Obj [ ("op", Json.Str "stats") ]
      | "top", rest ->
        let n =
          match rest with
          | [] -> 10
          | [ n ] ->
            (match int_of_string_opt n with
             | Some n -> n
             | None ->
               Printf.eprintf "lapis: top expects a count, got %S\n" n;
               exit 2)
          | _ ->
            Printf.eprintf "lapis: top takes at most one argument\n";
            exit 2
        in
        Json.Obj [ ("op", Json.Str "top"); ("n", Json.Num (float_of_int n)) ]
      | "importance", [ api ] ->
        Json.Obj
          [
            ("op", Json.Str "importance");
            ("api", Json.Str api);
            ("phase", Json.Str (Query.phase_to_string phase));
          ]
      | "dependents", (api :: rest) ->
        let base =
          [ ("op", Json.Str "dependents"); ("api", Json.Str api) ]
        in
        (match rest with
         | [] -> Json.Obj base
         | [ limit ] ->
           (match int_of_string_opt limit with
            | Some l ->
              Json.Obj (base @ [ ("limit", Json.Num (float_of_int l)) ])
            | None ->
              Printf.eprintf "lapis: dependents limit must be an integer\n";
              exit 2)
         | _ ->
           Printf.eprintf "lapis: dependents takes API [LIMIT]\n";
           exit 2)
      | "completeness", [ spec ] ->
        let nrs =
          parse_syscall_specs (Query.ranking idx) (String.split_on_char ',' spec)
        in
        Json.Obj
          [
            ("op", Json.Str "completeness");
            ("phase", Json.Str (Query.phase_to_string phase));
            ( "syscalls",
              Json.Arr (List.map (fun nr -> Json.Num (float_of_int nr)) nrs) );
          ]
      | _ ->
        Printf.eprintf
          "lapis: bad query; see lapis query --help for the operations\n";
        exit 2
    in
    let response =
      match Protocol.request_of_json request with
      | Error e -> e
      | Ok r -> Serve.handle_request idx r
    in
    let response = Protocol.json_of_response response in
    print_endline (Json.to_string response);
    if stats then print_stage_stats ();
    (match Json.member "ok" response with
     | Some (Json.Bool true) -> ()
     | _ -> exit 1)
  in
  let doc =
    "Answer one indexed query from a snapshot — no generation, no analysis."
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(const run $ snapshot_arg $ base_arg $ stats_arg $ phase_arg
          $ op_arg $ operands_arg)

(* --- slice -------------------------------------------------------------- *)

let slice_cmd =
  let range_arg =
    let doc =
      "Cut the single package range [LO, HI) (half-open, global \
       package ids)."
    in
    Arg.(value & opt (some string) None & info [ "range" ] ~docv:"LO:HI" ~doc)
  in
  let shards_arg =
    let doc =
      "Cut the N-way contiguous partition a fleet of N shards scatters \
       over (the $(b,lapis fleet --slice) layout), one image per range."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc =
      "Output path for $(b,--range) (default: \
       $(i,IMAGE).slice-$(i,LO)-$(i,HI))."
    in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH" ~doc)
  in
  let run snapshot range shards out =
    setup_logs ();
    let path =
      match snapshot with
      | Some p -> p
      | None ->
        Printf.eprintf
          "lapis: slice needs --snapshot PATH naming a format-4 index \
           image (lapis analyze --save-index)\n";
        exit 2
    in
    if not (is_index_image path) then begin
      Printf.eprintf
        "lapis: %s is not a format-4 index image; slices are cut from \
         images (lapis analyze --save-index)\n"
        path;
      exit 2
    end;
    let idx = load_image path in
    match (range, shards) with
    | Some spec, None ->
      let range = parse_slice_spec spec in
      let out = Option.value out ~default:(slice_out_path path range) in
      cut_slice idx ~range out;
      print_endline out
    | None, Some n ->
      if n < 1 then begin
        Printf.eprintf "lapis: --shards must be positive\n";
        exit 2
      end;
      List.iter
        (fun range ->
          let out = slice_out_path path range in
          cut_slice idx ~range out;
          print_endline out)
        (Query.shard_ranges (Query.n_packages idx) n)
    | Some _, Some _ | None, None ->
      Printf.eprintf "lapis: slice takes exactly one of --range, --shards\n";
      exit 2
  in
  let doc =
    "Cut a range-sliced index image from a full one: per-package \
     planes cover only the requested range, shared per-API planes ride \
     along whole, so each slice maps a ~N-fold smaller file while \
     in-range partial-completeness answers stay bit-identical to the \
     full image. Slice paths are printed one per line on stdout."
  in
  Cmd.v
    (Cmd.info "slice" ~doc)
    Term.(const run $ snapshot_arg $ range_arg $ shards_arg $ out_arg)

(* --- serve -------------------------------------------------------------- *)

let serve_cmd =
  let tcp_arg =
    let doc =
      "Serve over TCP on 127.0.0.1:$(docv) instead of stdin/stdout: an \
       accept loop plus a pool of worker domains answers any number of \
       concurrent clients (same line-delimited JSON protocol). SIGINT \
       shuts down gracefully — queued requests are answered first."
    in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let workers_arg =
    let doc =
      "Worker domains for --tcp (default: the machine's recommended \
       domain count minus one, at least 1)."
    in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc =
      "Response cache capacity for --tcp (canonicalized-request LRU; 0 \
       disables caching)."
    in
    Arg.(value & opt int 1024 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let slice_arg =
    let doc =
      "With $(b,--snapshot) naming a format-4 index image: cut the \
       package range [LO, HI) to $(i,IMAGE).slice-$(i,LO)-$(i,HI) \
       (write-to-temp + rename) and serve that slice instead — the \
       shard maps a ~N-fold smaller file. This is how $(b,lapis fleet \
       --slice) spawns its shards. Partial-completeness answers over \
       in-range packages are bit-identical to the full image; the \
       router scatters dependents and partial-completeness to the \
       shard owning each range."
    in
    Arg.(value & opt (some string) None & info [ "slice" ] ~docv:"LO:HI" ~doc)
  in
  let watch_arg =
    let doc =
      "With $(b,--tcp) and $(b,--snapshot): watch the snapshot file and \
       hot-reload when it changes on disk (or on SIGHUP). The new index \
       is built off the serving path and swapped in atomically — \
       in-flight queries finish against the index they started with, no \
       connection is dropped, and the response cache is replaced so it \
       never answers from a stale index. A failed reload is logged and \
       the old index keeps serving."
    in
    Arg.(value & flag & info [ "watch" ] ~doc)
  in
  (* Reload loader for --watch: same routing as the startup path
     (image / delta + base / full rows), but every failure is a value,
     never an exit — the server must keep serving the old epoch. *)
  let soft_load_index ?base path : (Query.t, string) result =
    let snap_err e = Error (Fmt.str "%a" Snapshot.pp_error e) in
    try
      if is_index_image path then
        match Query.load_image path with
        | Ok idx -> Ok idx
        | Error e -> snap_err e
      else
        let snap =
          if Snapshot.file_version path = Ok Snapshot.delta_version then
            match base with
            | None ->
              Error
                (Printf.sprintf
                   "%s is a format-5 delta; restart with --base PATH" path)
            | Some bpath ->
              (match Snapshot.load bpath with
               | Error e ->
                 Error (Fmt.str "base %s: %a" bpath Snapshot.pp_error e)
               | Ok b ->
                 (match Snapshot.load_delta path ~base:b with
                  | Ok s -> Ok s
                  | Error e -> snap_err e))
          else
            match Snapshot.load path with
            | Ok s -> Ok s
            | Error e -> snap_err e
        in
        Result.map
          (fun s -> (Study.Env.of_snapshot s).Study.Env.index)
          snap
    with e -> Error (Printexc.to_string e)
  in
  let run packages seed snapshot base stats tcp workers cache watch slice =
    (match slice with
     | None -> ()
     | Some _ ->
       (match snapshot with
        | Some p when is_index_image p -> ()
        | _ ->
          Printf.eprintf
            "lapis: --slice needs --snapshot PATH naming a format-4 index \
             image (lapis analyze --save-index)\n";
          exit 2);
       if watch then begin
         Printf.eprintf
           "lapis: --slice and --watch are exclusive (a reload would \
            re-serve the full image)\n";
         exit 2
       end);
    let idx =
      match snapshot with
      | Some path when is_index_image path ->
        setup_logs ();
        (match slice with
         | None -> load_image path
         | Some spec ->
           let range = parse_slice_spec spec in
           let out = slice_out_path path range in
           let full = load_image path in
           cut_slice full ~range out;
           let idx = load_image out in
           (* drop the full mapping before serving: the slice is the
              whole point of the shard's small footprint *)
           Gc.compact ();
           idx)
      | _ -> (make_env ?snapshot ?base packages seed).Study.Env.index
    in
    (match tcp with
     | None ->
       Printf.eprintf
         "# serving line-delimited JSON on stdin/stdout (ops: ping stats \
          importance completeness top dependents); EOF to stop\n%!";
       Serve.loop idx stdin stdout
     | Some port ->
       (match
          Server.start
            ~config:{ Server.default with port; workers; cache_capacity = cache }
            idx
        with
        | Error msg ->
          Printf.eprintf "lapis: %s\n" msg;
          exit 1
        | Ok srv ->
          Printf.eprintf
            "# serving line-delimited JSON on 127.0.0.1:%d (ops: ping stats \
             importance completeness top dependents); Ctrl-C to stop\n%!"
            (Server.port srv);
          Sys.set_signal Sys.sigint
            (Sys.Signal_handle
               (fun _ -> Server.signal_stop srv));
          let stop_watch = Atomic.make false in
          let watcher =
            match (watch, snapshot) with
            | false, _ -> None
            | true, None ->
              Printf.eprintf
                "lapis: --watch needs --snapshot PATH; not watching\n%!";
              None
            | true, Some path ->
              let hup = Atomic.make false in
              (try
                 Sys.set_signal Sys.sighup
                   (Sys.Signal_handle (fun _ -> Atomic.set hup true))
               with Invalid_argument _ -> ());
              (* cheap change signal: inode (rename-publish), size,
                 mtime; SIGHUP forces a reload regardless *)
              let file_sig () =
                match Unix.stat path with
                | st -> Some (st.Unix.st_ino, st.Unix.st_size, st.Unix.st_mtime)
                | exception Unix.Unix_error _ -> None
              in
              let reload () =
                match soft_load_index ?base path with
                | Ok idx ->
                  Server.reload srv idx;
                  Printf.eprintf "# reloaded %s (epoch %d)\n%!" path
                    (Server.epoch_id srv)
                | Error msg ->
                  Printf.eprintf
                    "# reload of %s failed (old index keeps serving): %s\n%!"
                    path msg
              in
              Some
                (Thread.create
                   (fun () ->
                     let last = ref (file_sig ()) in
                     while not (Atomic.get stop_watch) do
                       Thread.delay 0.25;
                       if not (Atomic.get stop_watch) then begin
                         let forced = Atomic.exchange hup false in
                         let now = file_sig () in
                         let changed = now <> None && now <> !last in
                         if changed then last := now;
                         if forced || changed then reload ()
                       end
                     done)
                   ())
          in
          Server.wait srv;
          Atomic.set stop_watch true;
          Option.iter Thread.join watcher;
          Printf.eprintf "# served %d connections\n%!"
            (Server.connections_served srv)));
    if stats then print_stage_stats ()
  in
  let doc =
    "Serve indexed queries as line-delimited JSON — over stdin/stdout, or \
     concurrently over TCP with $(b,--tcp) PORT (hot-reloadable with \
     $(b,--watch))."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ base_arg
          $ stats_arg $ tcp_arg $ workers_arg $ cache_arg $ watch_arg
          $ slice_arg)

(* --- fleet -------------------------------------------------------------- *)

let fleet_cmd =
  let tcp_arg =
    let doc =
      "Router port. Spawned shards take the $(docv)+1 .. $(docv)+N ports."
    in
    Arg.(value & opt int 7070 & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let shards_arg =
    let doc = "How many shard processes to spawn." in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let connect_arg =
    let doc =
      "Comma-separated $(i,HOST:PORT) list of already-running \
       $(b,lapis serve --tcp) shards to route over, instead of spawning \
       any. All shards must serve the same snapshot."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"SPECS" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains per spawned shard (default: the shard's own)." in
    Arg.(value & opt (some int) None & info [ "shard-workers" ] ~docv:"N" ~doc)
  in
  let slice_flag =
    let doc =
      "Spawn each shard on its own range-sliced image ($(b,lapis serve \
       --slice LO:HI) over the fleet's scatter partition) instead of \
       the full snapshot, so per-shard mapped bytes and resident set \
       drop ~N-fold. Needs $(b,--snapshot) naming a format-4 index \
       image. The router learns the slices from the shards' stats \
       gauges and scatters dependents and partial-completeness \
       accordingly; answers stay within 1e-12 of a single process."
    in
    Arg.(value & flag & info [ "slice" ] ~doc)
  in
  let no_batch_flag =
    let doc =
      "Disable scatter-path micro-batching: same-shard messages queued \
       during an in-flight write leave as individual frames instead of \
       coalescing into one $(i,batch) frame. For A/B measurement; \
       batching is on by default."
    in
    Arg.(value & flag & info [ "no-batch" ] ~doc)
  in
  (* Poll until the shard accepts TCP connections (it binds only once
     its index is loaded, so accept implies ready). *)
  let wait_ready ~port ~deadline =
    let rec go () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
      | () ->
        Unix.close fd;
        true
      | exception _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then false
        else begin
          Thread.delay 0.1;
          go ()
        end
    in
    go ()
  in
  let run snapshot base tcp shards connect workers slice no_batch stats =
    setup_logs ();
    if slice && connect <> None then begin
      Printf.eprintf
        "lapis: --slice applies to spawned shards; with --connect the \
         already-running shards choose their own slices\n";
      exit 2
    end;
    let spawned = ref [] in
    let kill_spawned () =
      List.iter
        (fun (pid, _port) ->
          (try Unix.kill pid Sys.sigint with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !spawned
    in
    let specs =
      match connect with
      | Some specs ->
        List.map
          (fun s ->
            match Router.shard_spec_of_string (String.trim s) with
            | Ok spec -> spec
            | Error msg ->
              Printf.eprintf "lapis: %s\n" msg;
              exit 2)
          (String.split_on_char ',' specs)
      | None ->
        let path =
          match snapshot with
          | Some p -> p
          | None ->
            Printf.eprintf
              "lapis: fleet needs --snapshot PATH (to spawn shards) or \
               --connect HOST:PORT,... (to join running ones)\n";
            exit 2
        in
        let shards = max 1 shards in
        (* with --slice each shard serves one range of the fleet's
           scatter partition (at most n non-empty ranges, so tiny
           worlds spawn fewer shards than asked) *)
        let plans =
          if not slice then List.init shards (fun i -> (tcp + 1 + i, []))
          else begin
            if not (is_index_image path) then begin
              Printf.eprintf
                "lapis: --slice needs --snapshot PATH naming a format-4 \
                 index image (lapis analyze --save-index)\n";
              exit 2
            end;
            let n = Query.n_packages (load_image path) in
            Gc.compact ();
            List.mapi
              (fun i (lo, hi) ->
                (tcp + 1 + i, [ "--slice"; Printf.sprintf "%d:%d" lo hi ]))
              (Query.shard_ranges n shards)
          end
        in
        let ports = List.map fst plans in
        List.iter
          (fun (port, extra) ->
            let args =
              [ Sys.executable_name; "serve"; "--snapshot"; path;
                "--tcp"; string_of_int port ]
              @ extra
              @ (match base with Some b -> [ "--base"; b ] | None -> [])
              @ (match workers with
                 | Some w -> [ "--workers"; string_of_int w ]
                 | None -> [])
            in
            let pid =
              Unix.create_process Sys.executable_name (Array.of_list args)
                Unix.stdin Unix.stderr Unix.stderr
            in
            spawned := !spawned @ [ (pid, port) ];
            Printf.eprintf "# shard pid %d on 127.0.0.1:%d\n%!" pid port)
          plans;
        let deadline = Unix.gettimeofday () +. 60.0 in
        List.iter
          (fun port ->
            if not (wait_ready ~port ~deadline) then begin
              Printf.eprintf
                "lapis: shard on port %d did not come up within 60s\n" port;
              kill_spawned ();
              exit 1
            end)
          ports;
        List.map (fun p -> { Router.sh_host = "127.0.0.1"; sh_port = p }) ports
    in
    match
      Router.start
        ~config:
          { Router.default with port = tcp; batching = not no_batch }
        specs
    with
    | Error msg ->
      Printf.eprintf "lapis: %s\n" msg;
      kill_spawned ();
      exit 1
    | Ok router ->
      Printf.eprintf
        "# fleet serving on 127.0.0.1:%d (%d shards; scatter/gather \
         completeness, JSON or binary protocol); Ctrl-C to stop\n%!"
        (Router.port router) (Router.n_shards router);
      Sys.set_signal Sys.sigint
        (Sys.Signal_handle (fun _ -> Router.signal_stop router));
      Router.wait router;
      (* sampled during [wait]'s return, before shard connections are
         torn down, the healthy count would always read 0 here — so
         the summary reports only what is still meaningful *)
      Printf.eprintf "# fleet served %d connections (%d shards)\n%!"
        (Router.connections_served router)
        (Router.n_shards router);
      kill_spawned ();
      if stats then print_stage_stats ()
  in
  let doc =
    "Serve one snapshot from a fleet: N $(b,lapis serve --tcp) shard \
     processes behind a scatter/gather router. Completeness queries fan \
     out as per-shard package-range partials and merge (within 1e-12 of a \
     single process); point queries round-robin. With $(b,--slice) each \
     shard maps only its own range-sliced image (~N-fold smaller \
     footprint); same-shard traffic micro-batches into single $(i,batch) \
     frames under load (see $(b,--no-batch)). The router sheds with \
     structured $(i,overloaded) errors under saturation and answers \
     $(i,degraded) errors while a shard is down."
  in
  Cmd.v
    (Cmd.info "fleet" ~doc)
    Term.(const run $ snapshot_arg $ base_arg $ tcp_arg $ shards_arg
          $ connect_arg $ workers_arg $ slice_flag $ no_batch_flag
          $ stats_arg)

let () =
  let doc =
    "reproduction of the EuroSys'16 study of Linux API usage and \
     compatibility"
  in
  let info = Cmd.info "lapis" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; evolve_cmd; report_cmd; analyze_cmd; footprint_cmd;
            seccomp_cmd; compat_cmd; query_cmd; slice_cmd; serve_cmd;
            fleet_cmd ]))
