(* lapis — Linux API study CLI.

   Subcommands:
     generate   synthesize the distribution and write its binaries to disk
     analyze    run the pipeline and dump importance rankings
                (--save-snapshot persists the analyzed world)
     report     regenerate a figure/table of the paper (or all of them)
     footprint  analyze a single ELF file and print its API footprint
     seccomp    emit a seccomp allow-list for an ELF file
     compat     weighted completeness of a user-provided syscall list
     query      one-shot indexed query against a saved snapshot
     serve      line-delimited JSON query loop over stdin/stdout

   analyze/report/compat/seccomp accept --snapshot PATH to start from
   a saved world instead of re-running generation + analysis. *)

open Cmdliner
module Study = Core.Study
module P = Core.Distro.Package
module Snapshot = Core.Db.Snapshot
module Query = Core.Query.Engine
module Json = Core.Query.Json
module Serve = Core.Query.Serve

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

(* -p/--seed are optional so a snapshot run can tell "defaulted" from
   "explicitly requested" when deciding whether to warn about a
   mismatch between the flags and the snapshot's generator identity. *)
let packages_arg =
  let doc = "Number of packages in the synthetic distribution." in
  Arg.(value & opt (some int) None & info [ "p"; "packages" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Generator seed (the distribution is deterministic per seed)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let snapshot_arg =
  let doc =
    "Start from a snapshot saved by $(b,lapis analyze --save-snapshot) \
     instead of generating and analyzing a corpus."
  in
  Arg.(value & opt (some file) None & info [ "snapshot" ] ~docv:"PATH" ~doc)

let config packages seed =
  let d = Core.Distro.Generator.default_config in
  {
    d with
    n_packages = Option.value ~default:d.n_packages packages;
    seed = Option.value ~default:d.seed seed;
  }

let load_snapshot path =
  match Snapshot.load path with
  | Ok snap -> snap
  | Error (Snapshot.Unsupported_version v) when v = Query.image_version ->
    Printf.eprintf
      "lapis: %s is a format-4 index image: query/serve/seccomp consume it \
       directly, but this command needs the row snapshot it was built from \
       (lapis analyze --save-snapshot)\n"
      path;
    exit 1
  | Error e ->
    Printf.eprintf "lapis: cannot load snapshot %s: %s [kind: %s]\n" path
      (Fmt.str "%a" Snapshot.pp_error e)
      (Snapshot.kind_name e);
    exit 1

(* Is [path] a format-4 index image (as opposed to a row snapshot)?
   Unreadable or unrecognizable files fall through to the row-snapshot
   loader, whose errors name the problem. *)
let is_index_image path = Snapshot.file_version path = Ok Query.image_version

let load_image path =
  match Query.load_image path with
  | Ok idx ->
    Printf.eprintf "# mapped index image %s (%d packages, %d apis)\n%!" path
      (Query.n_packages idx) (Query.n_apis idx);
    idx
  | Error e ->
    Printf.eprintf "lapis: cannot map index image %s: %s [kind: %s]\n" path
      (Fmt.str "%a" Snapshot.pp_error e)
      (Snapshot.kind_name e);
    exit 1

let make_env ?snapshot packages seed =
  setup_logs ();
  match snapshot with
  | Some path ->
    let snap = load_snapshot path in
    if (packages <> None || seed <> None)
       && not (Snapshot.matches snap (config packages seed))
    then
      Printf.eprintf
        "# warning: snapshot %s was generated with %d packages (seed %d); \
         ignoring -p/--seed\n%!"
        path snap.Snapshot.meta.Snapshot.n_packages
        snap.Snapshot.meta.Snapshot.seed;
    Printf.eprintf "# loaded snapshot %s (%d packages, seed %d)\n%!" path
      snap.Snapshot.meta.Snapshot.n_packages snap.Snapshot.meta.Snapshot.seed;
    Study.Env.of_snapshot snap
  | None ->
    let config = config packages seed in
    Printf.eprintf "# generating %d packages (seed %d) and analyzing...\n%!"
      config.Core.Distro.Generator.n_packages
      config.Core.Distro.Generator.seed;
    Study.Env.create ~config ()

(* --- generate ---------------------------------------------------------- *)

let generate_cmd =
  let out_arg =
    let doc = "Directory to write the distribution into." in
    Arg.(value & opt string "_distro" & info [ "o"; "output" ] ~docv:"DIR" ~doc)
  in
  let run packages seed out =
    setup_logs ();
    let dist = Core.Distro.Generator.generate ~config:(config packages seed) () in
    let write path bytes =
      let path = Filename.concat out path in
      let rec mkdirs d =
        if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
          mkdirs (Filename.dirname d);
          Sys.mkdir d 0o755
        end
      in
      mkdirs (Filename.dirname path);
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc
    in
    List.iter
      (fun (soname, bytes) -> write ("lib/" ^ soname) bytes)
      dist.P.runtime;
    List.iter
      (fun (pkg : P.t) ->
        List.iter
          (fun (f : P.file) ->
            write (Filename.concat pkg.P.name f.P.path) f.P.bytes)
          pkg.P.files)
      dist.P.packages;
    Printf.printf "wrote %d packages (%d files) under %s\n"
      (P.n_packages dist)
      (List.length (P.all_files dist))
      out
  in
  let doc = "Synthesize the calibrated distribution and write it to disk." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ out_arg)

(* --- report ------------------------------------------------------------ *)

let report_cmd =
  let ids_arg =
    let doc =
      "Experiment identifiers (fig1..fig8, table1..table7, table8..table11, \
       section6, ablations). Defaults to all."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run packages seed snapshot ids =
    let env = make_env ?snapshot packages seed in
    let selected =
      match ids with
      | [] -> Study.Experiments.all
      | ids ->
        List.map
          (fun id ->
            match Study.Experiments.find id with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %s; known: %s\n" id
                (String.concat " " Study.Experiments.ids);
              exit 2)
          ids
    in
    List.iter
      (fun (e : Study.Experiments.t) ->
        print_string (e.Study.Experiments.render env))
      selected
  in
  let doc = "Regenerate figures and tables of the paper's evaluation." in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ ids_arg)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let top_arg =
    let doc = "How many ranking rows to print." in
    Arg.(value & opt int 50 & info [ "top" ] ~docv:"N" ~doc)
  in
  let save_arg =
    let doc =
      "Write the analyzed world to a snapshot file for later \
       $(b,lapis query) / $(b,lapis serve) runs."
    in
    Arg.(
      value & opt (some string) None & info [ "save-snapshot" ] ~docv:"PATH" ~doc)
  in
  let save_index_arg =
    let doc =
      "Write the built query index as a flat format-4 image: \
       $(b,lapis query) / $(b,lapis serve) / $(b,lapis seccomp) map it \
       read-only and answer with zero decode, bit-identically to a \
       rebuild from the row snapshot."
    in
    Arg.(
      value & opt (some string) None & info [ "save-index" ] ~docv:"PATH" ~doc)
  in
  let run packages seed snapshot save save_index top =
    let env = make_env ?snapshot packages seed in
    (match save with
     | None -> ()
     | Some path ->
       (match Study.Env.corpus env with
        | Error msg ->
          Printf.eprintf
            "lapis: --save-snapshot needs a freshly analyzed corpus: %s\n" msg;
          exit 2
        | Ok analyzed ->
          (match Snapshot.save path (Snapshot.of_analyzed analyzed) with
           | Ok () -> Printf.eprintf "# saved snapshot to %s\n%!" path
           | Error e ->
             Printf.eprintf "lapis: cannot save snapshot %s: %s\n" path
               (Fmt.str "%a" Snapshot.pp_error e);
             exit 1)))
    ;
    (match save_index with
     | None -> ()
     | Some path ->
       let cfg = config packages seed in
       let idx = env.Study.Env.index in
       let source_key =
         Snapshot.source_key ~seed:cfg.Core.Distro.Generator.seed
           ~n_packages:cfg.Core.Distro.Generator.n_packages
           ~total_installs:(Query.total_installs idx)
       in
       (match
          Query.save_image ~seed:cfg.Core.Distro.Generator.seed ~source_key
            path idx
        with
        | Ok () -> Printf.eprintf "# saved index image to %s\n%!" path
        | Error e ->
          Printf.eprintf "lapis: cannot save index image %s: %s\n" path
            (Fmt.str "%a" Snapshot.pp_error e);
          exit 1))
    ;
    let idx = env.Study.Env.index in
    Printf.printf "%-4s %-22s %-10s %-10s\n" "rank" "system call"
      "importance" "unweighted";
    List.iteri
      (fun i nr ->
        if i < top then
          Printf.printf "%-4d %-22s %-10.4f %-10.4f\n" (i + 1)
            (Core.Apidb.Syscall_table.name_of_nr nr)
            (Core.Metrics.Importance.of_index idx (Core.Apidb.Api.Syscall nr))
            (Core.Metrics.Importance.unweighted_of_index idx
               (Core.Apidb.Api.Syscall nr)))
      env.Study.Env.ranking
  in
  let doc = "Print the system call importance ranking." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ save_arg
          $ save_index_arg $ top_arg)

(* --- footprint / seccomp ------------------------------------------------ *)

let elf_arg =
  let doc = "An ELF file produced by $(b,lapis generate)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"ELF" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

let with_world packages seed f =
  setup_logs ();
  let dist = Core.Distro.Generator.generate ~config:(config packages seed) () in
  let analyze_elf bytes =
    match Core.Elf.Reader.parse bytes with
    | Ok img -> Some (Core.Analysis.Binary.analyze img)
    | Error _ -> None
  in
  let runtime_sonames = List.map fst dist.P.runtime in
  let libs =
    List.filter_map
      (fun (soname, bytes) ->
        Option.map (fun b -> (soname, b)) (analyze_elf bytes))
      dist.P.runtime
    @ List.filter_map
        (fun (soname, _, bytes) ->
          Option.map (fun b -> (soname, b)) (analyze_elf bytes))
        dist.P.shared_libs
  in
  let ld_so = List.assoc_opt "ld-linux-x86-64.so.2" libs in
  let world =
    Core.Analysis.Resolve.make_world ?ld_so
      ~libc_family:(fun s -> List.mem s runtime_sonames)
      libs
  in
  f world

let footprint_of_file world path =
  match Core.Elf.Reader.parse (read_file path) with
  | Error e ->
    Printf.eprintf "cannot parse %s: %s\n" path
      (Fmt.str "%a" Core.Elf.Reader.pp_error e);
    exit 1
  | Ok img ->
    let bin = Core.Analysis.Binary.analyze img in
    Core.Analysis.Resolve.binary_footprint world bin

(* A snapshot stores every analyzed binary keyed by content digest, so
   a user-supplied file is matched byte-for-byte without re-analysis. *)
let snapshot_bin_row snap path =
  let digest = Digest.string (read_file path) in
  let row =
    List.find_opt
      (fun (b : Core.Db.Store.bin_row) -> b.Core.Db.Store.br_digest = digest)
      snap.Snapshot.store.Core.Db.Store.bins
  in
  match row with
  | Some b -> b
  | None ->
    Printf.eprintf
      "lapis: %s is not in the snapshot (no binary with digest %s); \
       re-run lapis analyze --save-snapshot on the corpus that contains \
       it, or drop --snapshot to analyze it directly\n"
      path (Digest.to_hex digest);
    exit 1

let footprint_cmd =
  let run packages seed path =
    with_world packages seed (fun world ->
        let fp = footprint_of_file world path in
        Printf.printf "# footprint of %s\n" path;
        List.iter
          (fun nr ->
            Printf.printf "syscall %-22s (%d)\n"
              (Core.Apidb.Syscall_table.name_of_nr nr)
              nr)
          (Core.Analysis.Footprint.syscalls fp);
        List.iter
          (fun (v, code) ->
            Printf.printf "vop     %s\n" (Core.Apidb.Vectored.name v code))
          (Core.Analysis.Footprint.vops fp);
        List.iter
          (fun p -> Printf.printf "pseudo  %s\n" p)
          (Core.Analysis.Footprint.pseudo_files fp))
  in
  let doc = "Print the resolved API footprint of one ELF binary." in
  Cmd.v
    (Cmd.info "footprint" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ elf_arg)

let phase_arg =
  let doc =
    "Restrict to one temporal phase: $(b,init) (APIs requestable \
     during initialization, up to the serving-loop transition), \
     $(b,serving) (steady state), or $(b,all) (the whole footprint; \
     default). An init-only policy can be tightened to the serving \
     set once a server finishes starting up."
  in
  let phase_conv =
    Arg.enum
      [ ("init", Query.Init); ("serving", Query.Serving); ("all", Query.All) ]
  in
  Arg.(value & opt phase_conv Query.All & info [ "phase" ] ~docv:"PHASE" ~doc)

let seccomp_cmd =
  let run packages seed snapshot phase path =
    setup_logs ();
    let pick ~init ~serving ~all =
      match phase with
      | Query.Init -> init
      | Query.Serving -> serving
      | Query.All -> all
    in
    let apis =
      match snapshot with
      | Some snap_path when is_index_image snap_path ->
        let idx = load_image snap_path in
        let digest = Digest.string (read_file path) in
        (match Query.find_bin idx digest with
         | Ok (Some row) ->
           pick ~init:row.Query.bs_init ~serving:row.Query.bs_serving
             ~all:row.Query.bs_all
         | Ok None ->
           Printf.eprintf
             "lapis: %s is not in the index image (no binary with digest \
              %s); regenerate the image from the corpus that contains it, \
              or drop --snapshot to analyze it directly\n"
             path (Digest.to_hex digest);
           exit 1
         | Error e ->
           Printf.eprintf "lapis: index image bins section: %s [kind: %s]\n"
             (Fmt.str "%a" Snapshot.pp_error e)
             (Snapshot.kind_name e);
           exit 1)
      | Some snap_path ->
        let snap = load_snapshot snap_path in
        let row = snapshot_bin_row snap path in
        pick ~init:row.Core.Db.Store.br_init
          ~serving:row.Core.Db.Store.br_serving
          ~all:row.Core.Db.Store.br_resolved.Core.Analysis.Footprint.apis
      | None ->
        with_world packages seed (fun world ->
            match Core.Elf.Reader.parse (read_file path) with
            | Error e ->
              Printf.eprintf "cannot parse %s: %s\n" path
                (Fmt.str "%a" Core.Elf.Reader.pp_error e);
              exit 1
            | Ok img ->
              let bin = Core.Analysis.Binary.analyze img in
              let total = Core.Analysis.Resolve.binary_footprint world bin in
              (match phase with
               | Query.All -> total.Core.Analysis.Footprint.apis
               | _ ->
                 let init, serving =
                   Core.Analysis.Resolve.phased_footprint world bin ~total
                 in
                 pick ~init ~serving
                   ~all:total.Core.Analysis.Footprint.apis))
    in
    print_endline (Core.Metrics.Uniqueness.seccomp_policy apis)
  in
  let doc =
    "Emit a seccomp-bpf allow-list for one ELF binary (Section 6), \
     optionally restricted to one temporal phase with $(b,--phase)."
  in
  Cmd.v
    (Cmd.info "seccomp" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ phase_arg
          $ elf_arg)

(* --- compat ------------------------------------------------------------- *)

(* [ranking] is the most-important-first syscall order top:N draws
   from — [Study.Env.ranking] or [Query.ranking] of a mapped image. *)
let parse_syscall_specs ranking names =
  List.concat_map
    (fun s ->
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "top" ->
        let n =
          int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        in
        List.filteri (fun j _ -> j < n) ranking
      | _ ->
        (match int_of_string_opt s with
         | Some nr -> [ nr ]
         | None ->
           (match Core.Apidb.Syscall_table.nr_of_name s with
            | Some nr -> [ nr ]
            | None ->
              Printf.eprintf "unknown system call %s\n" s;
              exit 2)))
    names

let compat_cmd =
  let syscalls_arg =
    let doc =
      "System call names (or numbers) the prototype supports; pass \
       $(b,top:N) for the N most important."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"SYSCALL" ~doc)
  in
  let run packages seed snapshot names =
    let env = make_env ?snapshot packages seed in
    let nrs = parse_syscall_specs env.Study.Env.ranking names in
    let c =
      Core.Metrics.Completeness.of_syscall_set_index env.Study.Env.index nrs
    in
    Printf.printf
      "supporting %d system calls -> weighted completeness %.2f%%\n"
      (List.length (List.sort_uniq compare nrs))
      (100.0 *. c)
  in
  let doc =
    "Weighted completeness of a prototype supporting the given syscalls."
  in
  Cmd.v
    (Cmd.info "compat" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ syscalls_arg)

(* --- query -------------------------------------------------------------- *)

let stats_arg =
  let doc =
    "Print the per-stage timing/counter report to stderr after answering \
     (shows that snapshot-backed queries spend no time in analysis)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let print_stage_stats () =
  Fmt.epr "# per-stage breakdown:@\n%a%!" Core.Perf.Stage.pp_report ()

let query_cmd =
  let op_arg =
    let doc =
      "Query: $(b,stats) | $(b,top) [N] | $(b,importance) API | \
       $(b,dependents) API [LIMIT] | $(b,completeness) SYSCALL[,...] \
       (names, numbers or top:N)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let operands_arg =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ARG")
  in
  let run snapshot stats phase op operands =
    setup_logs ();
    let path =
      match snapshot with
      | Some p -> p
      | None ->
        Printf.eprintf
          "lapis: query needs --snapshot PATH (save one with lapis analyze \
           --save-snapshot)\n";
        exit 2
    in
    let idx =
      if is_index_image path then load_image path
      else begin
        let env = make_env ~snapshot:path None None in
        env.Study.Env.index
      end
    in
    let request =
      match (op, operands) with
      | "stats", [] -> Json.Obj [ ("op", Json.Str "stats") ]
      | "top", rest ->
        let n =
          match rest with
          | [] -> 10
          | [ n ] ->
            (match int_of_string_opt n with
             | Some n -> n
             | None ->
               Printf.eprintf "lapis: top expects a count, got %S\n" n;
               exit 2)
          | _ ->
            Printf.eprintf "lapis: top takes at most one argument\n";
            exit 2
        in
        Json.Obj [ ("op", Json.Str "top"); ("n", Json.Num (float_of_int n)) ]
      | "importance", [ api ] ->
        Json.Obj
          [
            ("op", Json.Str "importance");
            ("api", Json.Str api);
            ("phase", Json.Str (Query.phase_to_string phase));
          ]
      | "dependents", (api :: rest) ->
        let base =
          [ ("op", Json.Str "dependents"); ("api", Json.Str api) ]
        in
        (match rest with
         | [] -> Json.Obj base
         | [ limit ] ->
           (match int_of_string_opt limit with
            | Some l ->
              Json.Obj (base @ [ ("limit", Json.Num (float_of_int l)) ])
            | None ->
              Printf.eprintf "lapis: dependents limit must be an integer\n";
              exit 2)
         | _ ->
           Printf.eprintf "lapis: dependents takes API [LIMIT]\n";
           exit 2)
      | "completeness", [ spec ] ->
        let nrs =
          parse_syscall_specs (Query.ranking idx) (String.split_on_char ',' spec)
        in
        Json.Obj
          [
            ("op", Json.Str "completeness");
            ("phase", Json.Str (Query.phase_to_string phase));
            ( "syscalls",
              Json.Arr (List.map (fun nr -> Json.Num (float_of_int nr)) nrs) );
          ]
      | _ ->
        Printf.eprintf
          "lapis: bad query; see lapis query --help for the operations\n";
        exit 2
    in
    let response = Serve.handle_request idx request in
    print_endline (Json.to_string response);
    if stats then print_stage_stats ();
    (match Json.member "ok" response with
     | Some (Json.Bool true) -> ()
     | _ -> exit 1)
  in
  let doc =
    "Answer one indexed query from a snapshot — no generation, no analysis."
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(const run $ snapshot_arg $ stats_arg $ phase_arg $ op_arg
          $ operands_arg)

(* --- serve -------------------------------------------------------------- *)

let serve_cmd =
  let tcp_arg =
    let doc =
      "Serve over TCP on 127.0.0.1:$(docv) instead of stdin/stdout: an \
       accept loop plus a pool of worker domains answers any number of \
       concurrent clients (same line-delimited JSON protocol). SIGINT \
       shuts down gracefully — queued requests are answered first."
    in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let workers_arg =
    let doc =
      "Worker domains for --tcp (default: the machine's recommended \
       domain count minus one, at least 1)."
    in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc =
      "Response cache capacity for --tcp (canonicalized-request LRU; 0 \
       disables caching)."
    in
    Arg.(value & opt int 1024 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let run packages seed snapshot stats tcp workers cache =
    let idx =
      match snapshot with
      | Some path when is_index_image path ->
        setup_logs ();
        load_image path
      | _ -> (make_env ?snapshot packages seed).Study.Env.index
    in
    (match tcp with
     | None ->
       Printf.eprintf
         "# serving line-delimited JSON on stdin/stdout (ops: ping stats \
          importance completeness top dependents); EOF to stop\n%!";
       Serve.loop idx stdin stdout
     | Some port ->
       (match
          Core.Query.Server.start ?workers ~cache_capacity:cache ~port idx
        with
        | Error msg ->
          Printf.eprintf "lapis: %s\n" msg;
          exit 1
        | Ok srv ->
          Printf.eprintf
            "# serving line-delimited JSON on 127.0.0.1:%d (ops: ping stats \
             importance completeness top dependents); Ctrl-C to stop\n%!"
            (Core.Query.Server.port srv);
          Sys.set_signal Sys.sigint
            (Sys.Signal_handle
               (fun _ -> Core.Query.Server.signal_stop srv));
          Core.Query.Server.wait srv;
          Printf.eprintf "# served %d connections\n%!"
            (Core.Query.Server.connections_served srv)));
    if stats then print_stage_stats ()
  in
  let doc =
    "Serve indexed queries as line-delimited JSON — over stdin/stdout, or \
     concurrently over TCP with $(b,--tcp) PORT."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(const run $ packages_arg $ seed_arg $ snapshot_arg $ stats_arg
          $ tcp_arg $ workers_arg $ cache_arg)

let () =
  let doc =
    "reproduction of the EuroSys'16 study of Linux API usage and \
     compatibility"
  in
  let info = Cmd.info "lapis" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; report_cmd; analyze_cmd; footprint_cmd;
            seccomp_cmd; compat_cmd; query_cmd; serve_cmd ]))
