(** Precision audit of the static analysis phases.

    The synthetic corpus comes with generator ground truth, which
    turns the paper's manual spot check (Section 2.3) into a
    measurable experiment: for each analysis phase — the linear scan
    baseline and the CFG dataflow engine — count false negatives
    (planted APIs the phase missed), false positives (APIs reported
    but never planted), and the unresolved-site rate of Section 2.4.
    {!Lapis_study} renders these as the precision report. *)

open Lapis_apidb

type stats = {
  false_negatives : int;  (** ground-truth APIs the phase missed *)
  false_positives : int;  (** reported APIs not in the ground truth *)
  unresolved : int;  (** syscall sites left unresolved *)
  sites : int;  (** total syscall sites seen *)
}

let zero = { false_negatives = 0; false_positives = 0; unresolved = 0; sites = 0 }

let add a b =
  {
    false_negatives = a.false_negatives + b.false_negatives;
    false_positives = a.false_positives + b.false_positives;
    unresolved = a.unresolved + b.unresolved;
    sites = a.sites + b.sites;
  }

(* Compare one recovered API set against its ground truth. *)
let compare_sets ~truth ~got =
  let missing = Api.Set.diff truth got in
  let extra = Api.Set.diff got truth in
  (Api.Set.cardinal missing, Api.Set.cardinal extra)

let of_comparison ~truth ~got (fp : Footprint.t) =
  let false_negatives, false_positives = compare_sets ~truth ~got in
  {
    false_negatives;
    false_positives;
    unresolved = fp.Footprint.unresolved_sites;
    sites = fp.Footprint.syscall_sites;
  }

let unresolved_rate s =
  if s.sites = 0 then 0.0
  else float_of_int s.unresolved /. float_of_int s.sites

(* Run both engines over one parsed image and return the per-mode
   direct footprints — the unit used by the engine-difference tests
   and the per-binary drill-down of the precision report. *)
let both_modes img =
  let direct mode =
    let bin = Binary.analyze ~mode img in
    Hashtbl.fold
      (fun _ fi acc -> Footprint.union acc fi.Binary.fi_scan.Scan.direct)
      bin.Binary.fns Footprint.empty
  in
  (direct Binary.Linear, direct Binary.Dataflow)

let pp ppf s =
  Fmt.pf ppf "FN=%d FP=%d unresolved=%d/%d (%.1f%%)" s.false_negatives
    s.false_positives s.unresolved s.sites (100. *. unresolved_rate s)
