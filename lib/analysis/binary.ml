(** Whole-binary analysis: disassembles every function of an ELF
    image, analyzes each, and exposes reachability queries used by the
    cross-library resolver. Also performs the binary-wide string sweep
    for hard-coded pseudo-file paths (Section 3.4).

    Two per-function engines are available: the control-flow-blind
    {!Scan} baseline ([Linear]) and the CFG fixpoint of {!Dataflow}
    ([Dataflow], the default). In dataflow mode a second, binary-wide
    round resolves the parameterized {!Summary} sites of local wrapper
    functions from the constant arguments found at their call sites,
    attributing the recovered APIs to the callers. A summary site that
    no call site resolves counts as one unresolved syscall of the
    wrapper itself — the same accounting the linear scan applies to an
    unknown number register, so the two modes' unresolved rates are
    directly comparable. *)

open Lapis_elf

module String_set = Footprint.String_set
module Int_map = Map.Make (Int)

type mode = Linear | Dataflow

type fn_info = {
  fi_name : string;
  fi_scan : Scan.result;
  fi_phase : Dataflow.phase_result;
      (** temporal split of [fi_scan.direct], with summary-resolved
          extras folded into the region of the call site that resolved
          them; {!Dataflow.empty_phase} in [Linear] mode *)
}

type t = {
  image : Image.t;
  fns : (string, fn_info) Hashtbl.t;
  fn_by_addr : string Int_map.t;  (** function start address -> name *)
  rodata_strings : Footprint.t;  (** binary-wide pseudo-file sweep *)
}

(* Extract printable NUL-terminated strings from .rodata. *)
let rodata_sweep (img : Image.t) =
  let data = img.rodata in
  let n = String.length data in
  let fp = ref Footprint.empty in
  let i = ref 0 in
  while !i < n do
    (match String.index_from_opt data !i '\x00' with
     | Some stop ->
       let s = String.sub data !i (stop - !i) in
       if String.length s >= 4 && Lapis_apidb.Pseudo_files.is_pseudo_path s
       then fp := Footprint.add_pseudo s !fp;
       i := stop + 1
     | None -> i := n)
  done;
  !fp

let string_at (img : Image.t) addr =
  match Image.rodata_offset img addr with
  | None -> None
  | Some off ->
    (match String.index_from_opt img.rodata off '\x00' with
     | Some stop -> Some (String.sub img.rodata off (stop - off))
     | None -> None)

(* Decoder budget: total instructions decoded per binary, across all
   function listings. Valid binaries decode each .text byte at most
   once per covering symbol; a fuzzed symbol table can claim thousands
   of overlapping max-size functions, turning disassembly quadratic.
   The budget caps that promptly — exhaustion truncates the remaining
   listings and is counted, never silent. *)
let default_decode_fuel = 2_000_000

let analyze ?(mode = Dataflow) ?dataflow_fuel
    ?(decode_fuel = default_decode_fuel) (img : Image.t) : t =
  let fn_by_addr =
    List.fold_left
      (fun m s -> Int_map.add s.Image.sym_addr s.Image.sym_name m)
      Int_map.empty img.symbols
  in
  let resolve_code addr =
    match Int_map.find_opt addr fn_by_addr with
    | Some _ -> Some (Scan.Local_addr addr)
    | None ->
      (* A PLT stub is a jmp through a GOT slot: decode it. *)
      (match Image.text_offset img addr with
       | None -> None
       | Some off ->
         if off + 6 <= String.length img.text then
           match Lapis_x86.Decode.decode_at img.text off with
           | Lapis_x86.Insn.Jmp_mem_rip disp, 6 ->
             let got = addr + 6 + Int32.to_int disp in
             (match Image.import_via_got img got with
              | Some name -> Some (Scan.Import name)
              | None -> None)
           | _ -> None
         else None)
  in
  let ctx = { Scan.resolve_code; string_at = string_at img } in
  (* Disassemble every function into an (address, insn, length)
     listing; the decoder's lengths are what make rip-relative
     displacements exact. *)
  let listings =
    Lapis_perf.Stage.time "disassemble" (fun () ->
        let budget = ref decode_fuel in
        let exhausted = ref false in
        let out =
          List.filter_map
            (fun s ->
              match Image.text_offset img s.Image.sym_addr with
              | None -> None
              | Some off ->
                let stop =
                  min (off + s.Image.sym_size) (String.length img.text)
                in
                let insns = ref [] in
                let pos = ref off in
                while !pos < stop && !budget > 0 do
                  decr budget;
                  let insn, len = Lapis_x86.Decode.decode_at img.text !pos in
                  insns := (img.text_addr + !pos, insn, len) :: !insns;
                  pos := !pos + len
                done;
                if !pos < stop then exhausted := true;
                Some (s.Image.sym_name, List.rev !insns))
            img.symbols
        in
        if !exhausted then
          Lapis_perf.Stage.incr "fuel:decode-exhausted";
        out)
  in
  let fns = Hashtbl.create 64 in
  (match mode with
   | Linear ->
     Lapis_perf.Stage.time "linear-scan" (fun () ->
         List.iter
           (fun (name, insns) ->
             Hashtbl.replace fns name
               { fi_name = name; fi_scan = Scan.scan ctx insns;
                 fi_phase = Dataflow.empty_phase })
           listings)
   | Dataflow ->
     Lapis_perf.Stage.time "dataflow" @@ fun () ->
     let df = Hashtbl.create 64 in
     List.iter
       (fun (name, insns) ->
         Hashtbl.replace df name
           (Dataflow.analyze ?fuel:dataflow_fuel ctx insns))
       listings;
     (* Interprocedural round: resolve callee summary sites from the
        constant arguments at each local call site. APIs land in the
        caller; a site resolved anywhere is settled for good. *)
     let resolved = Hashtbl.create 16 in
     let extra = Hashtbl.create 16 in
     let add_extra name fp =
       let cur =
         Option.value ~default:Footprint.empty (Hashtbl.find_opt extra name)
       in
       Hashtbl.replace extra name (Footprint.union cur fp)
     in
     (* Phased extras: the same footprints, keyed additionally by the
        region of the call site that resolved them, so the phase pass
        can attribute a wrapper's syscalls to the caller's phase. *)
     let extra_ph = Hashtbl.create 16 in
     let add_extra_ph name region fp =
       let pre, post, mixed =
         Option.value
           ~default:(Footprint.empty, Footprint.empty, Footprint.empty)
           (Hashtbl.find_opt extra_ph name)
       in
       Hashtbl.replace extra_ph name
         (match (region : Cfg.region) with
          | Cfg.Pre -> (Footprint.union pre fp, post, mixed)
          | Cfg.Post -> (pre, Footprint.union post fp, mixed)
          | Cfg.Mixed -> (pre, post, Footprint.union mixed fp))
     in
     Hashtbl.iter
       (fun caller (r : Dataflow.result) ->
         List.iter
           (fun (callee_addr, region, args) ->
             match Int_map.find_opt callee_addr fn_by_addr with
             | None -> ()
             | Some callee ->
               (match Hashtbl.find_opt df callee with
                | None -> ()
                | Some (cr : Dataflow.result) ->
                  List.iter
                    (fun site ->
                      match List.assoc_opt (Summary.param_of site) args with
                      | None -> ()
                      | Some values ->
                        (match Summary.resolve_site site values with
                         | None -> ()
                         | Some fp ->
                           add_extra caller fp;
                           add_extra_ph caller region fp;
                           Hashtbl.replace resolved (callee, site) ()))
                    cr.Dataflow.summary))
           r.Dataflow.phase.Dataflow.ph_call_args)
       df;
     Hashtbl.iter
       (fun name (r : Dataflow.result) ->
         let direct =
           match Hashtbl.find_opt extra name with
           | Some fp -> Footprint.union r.Dataflow.direct fp
           | None -> r.Dataflow.direct
         in
         (* Summary sites nobody resolved stay unknown, charged to the
            wrapper once — mirroring the linear scan's accounting. *)
         let direct =
           List.fold_left
             (fun acc site ->
               if Hashtbl.mem resolved (name, site) then acc
               else Footprint.add_unresolved acc)
             direct r.Dataflow.summary
         in
         let phase =
           match Hashtbl.find_opt extra_ph name with
           | None -> r.Dataflow.phase
           | Some (pre, post, mixed) ->
             let ph = r.Dataflow.phase in
             { ph with
               Dataflow.ph_pre = Footprint.union ph.Dataflow.ph_pre pre;
               ph_post = Footprint.union ph.Dataflow.ph_post post;
               ph_mixed = Footprint.union ph.Dataflow.ph_mixed mixed }
         in
         Hashtbl.replace fns name
           {
             fi_name = name;
             fi_scan =
               { (Dataflow.to_scan_result r) with Scan.direct };
             fi_phase = phase;
           })
       df);
  { image = img; fns; fn_by_addr; rodata_strings = rodata_sweep img }

let fn_name_at t addr = Int_map.find_opt addr t.fn_by_addr

(* Local reachability: the set of functions reachable from [start]
   through direct calls and taken function pointers, with the union of
   their direct footprints and outgoing imports. *)
type closure = {
  cl_footprint : Footprint.t;  (** direct APIs of reachable functions *)
  cl_imports : String_set.t;  (** imports called by reachable functions *)
}

let local_closure ?(follow_fnptrs = true) t ~start : closure =
  let visited = Hashtbl.create 16 in
  let fp = ref Footprint.empty in
  let imports = ref String_set.empty in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      match Hashtbl.find_opt t.fns name with
      | None -> ()
      | Some fi ->
        fp := Footprint.union !fp fi.fi_scan.Scan.direct;
        List.iter
          (fun target ->
            match target with
            | Scan.Import imp -> imports := String_set.add imp !imports
            | Scan.Local_addr a ->
              (match fn_name_at t a with Some n -> visit n | None -> ()))
          fi.fi_scan.Scan.calls;
        if follow_fnptrs then
          List.iter
            (fun a ->
              match fn_name_at t a with Some n -> visit n | None -> ())
            fi.fi_scan.Scan.lea_code_targets
    end
  in
  visit start;
  { cl_footprint = !fp; cl_imports = !imports }

(* Entry-point function names of the binary: the e_entry function for
   executables, every exported global for shared libraries. *)
let entry_points t =
  match t.image.Image.kind with
  | Image.Exec_static | Image.Exec_dynamic ->
    (match fn_name_at t t.image.Image.entry with
     | Some n -> [ n ]
     | None -> [])
  | Image.Shared_lib ->
    List.filter_map
      (fun s -> if s.Image.sym_global then Some s.Image.sym_name else None)
      t.image.Image.symbols

let exports t =
  List.filter_map
    (fun s -> if s.Image.sym_global then Some s.Image.sym_name else None)
    t.image.Image.symbols
