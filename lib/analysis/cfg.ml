(** Basic-block control-flow graph of one function.

    Blocks split at jump targets and after every control transfer
    ([Jmp_rel], [Jcc_rel], [Ret]); calls do not end a block (they
    return). Jump targets outside the function's own instruction range
    are treated as function exits, the standard conservative choice
    for tail transfers into stubs. The {!Dataflow} engine runs its
    worklist fixpoint over this graph. *)

open Lapis_x86

type block = {
  b_index : int;
  b_addr : int;  (** address of the block's first instruction *)
  b_insns : (int * Insn.t * int) list;  (** (address, insn, length) *)
}

type t = {
  blocks : block array;
  succs : int list array;  (** successor block indexes *)
  preds : int list array;  (** predecessor block indexes *)
  entry : int;  (** index of the entry block; -1 for an empty function *)
}

(* The target of a control transfer ending at [addr + len]. *)
let jump_target addr len disp = addr + len + Int32.to_int disp

let build (insns : (int * Insn.t * int) list) : t =
  match insns with
  | [] -> { blocks = [||]; succs = [||]; preds = [||]; entry = -1 }
  | (first_addr, _, _) :: _ ->
    let addrs = Hashtbl.create 256 in
    List.iter (fun (a, _, _) -> Hashtbl.replace addrs a ()) insns;
    let in_function a = Hashtbl.mem addrs a in
    (* Leaders: the entry, every in-function jump target, and every
       instruction following a control transfer. *)
    let leaders = Hashtbl.create 64 in
    Hashtbl.replace leaders first_addr ();
    let add_leader a = if in_function a then Hashtbl.replace leaders a () in
    List.iter
      (fun (addr, insn, len) ->
        match insn with
        | Insn.Jmp_rel d ->
          add_leader (jump_target addr len d);
          add_leader (addr + len)
        | Insn.Jcc_rel (_, d) ->
          add_leader (jump_target addr len d);
          add_leader (addr + len)
        | Insn.Ret | Insn.Jmp_mem_rip _ -> add_leader (addr + len)
        | _ -> ())
      insns;
    (* Partition the listing into blocks at the leaders. *)
    let blocks = ref [] and cur = ref [] in
    let flush () =
      match !cur with
      | [] -> ()
      | l ->
        let l = List.rev l in
        let a, _, _ = List.hd l in
        blocks := { b_index = 0; b_addr = a; b_insns = l } :: !blocks;
        cur := []
    in
    List.iter
      (fun ((addr, _, _) as triple) ->
        if Hashtbl.mem leaders addr && !cur <> [] then flush ();
        cur := triple :: !cur)
      insns;
    flush ();
    let blocks =
      List.rev !blocks
      |> List.mapi (fun i b -> { b with b_index = i })
      |> Array.of_list
    in
    let n = Array.length blocks in
    let index_of_addr = Hashtbl.create n in
    Array.iter (fun b -> Hashtbl.replace index_of_addr b.b_addr b.b_index) blocks;
    let succs = Array.make n [] and preds = Array.make n [] in
    let edge src dst_addr =
      match Hashtbl.find_opt index_of_addr dst_addr with
      | Some dst ->
        if not (List.mem dst succs.(src)) then begin
          succs.(src) <- dst :: succs.(src);
          preds.(dst) <- src :: preds.(dst)
        end
      | None -> ()  (* transfer out of the function: exit edge *)
    in
    Array.iter
      (fun b ->
        match List.rev b.b_insns with
        | [] -> ()
        | (addr, last, len) :: _ ->
          (match last with
           | Insn.Jmp_rel d -> edge b.b_index (jump_target addr len d)
           | Insn.Jcc_rel (_, d) ->
             edge b.b_index (jump_target addr len d);
             edge b.b_index (addr + len)
           | Insn.Ret | Insn.Jmp_mem_rip _ -> ()
           | _ -> edge b.b_index (addr + len)))
      blocks;
    { blocks; succs; preds; entry = (if n = 0 then -1 else 0) }

(* Blocks reachable from the entry, in discovery order. Dead blocks
   (jump-over islands, alignment padding) are excluded from the
   dataflow analysis so their stale register values cannot leak. *)
let reachable t =
  if t.entry < 0 then []
  else begin
    let seen = Array.make (Array.length t.blocks) false in
    let order = ref [] in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        order := i :: !order;
        List.iter visit t.succs.(i)
      end
    in
    visit t.entry;
    List.rev !order
  end

(* Reachable blocks in reverse postorder: every block before its
   successors except across back edges. A fixpoint that sweeps in this
   order sees each block's predecessors first, so acyclic regions
   converge in one pass and loops in one pass per nesting depth. *)
let rpo t =
  if t.entry < 0 then []
  else begin
    let seen = Array.make (Array.length t.blocks) false in
    let order = ref [] in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter visit t.succs.(i);
        order := i :: !order
      end
    in
    visit t.entry;
    !order
  end

let n_blocks t = Array.length t.blocks

(* --- temporal regions --------------------------------------------------

   Loop heads are the targets of retreating edges in the RPO ordering
   (for reducible graphs these are exactly the natural-loop headers).
   The phase analysis treats the first loop reached from the function
   entry as the init/serving transition point: blocks reachable from
   the entry without entering a loop head form the [Pre] region, blocks
   reachable from a loop head (the loop itself and everything after it)
   form the [Post] region, and blocks reachable both ways are [Mixed]. *)

type region = Pre | Post | Mixed

let loop_heads t =
  let n = Array.length t.blocks in
  if n = 0 then []
  else begin
    let pos = Array.make n max_int in
    let order = rpo t in
    List.iteri (fun p b -> pos.(b) <- p) order;
    let is_head = Array.make n false in
    List.iter
      (fun b ->
        List.iter
          (fun s -> if pos.(s) <= pos.(b) then is_head.(s) <- true)
          t.succs.(b))
      order;
    List.filter (fun b -> is_head.(b)) order |> List.sort compare
  end

let regions t =
  let n = Array.length t.blocks in
  let heads = loop_heads t in
  let is_head = Array.make n false in
  List.iter (fun h -> is_head.(h) <- true) heads;
  let pre = Array.make n false and post = Array.make n false in
  (if t.entry >= 0 && not is_head.(t.entry) then begin
     let rec visit i =
       if not pre.(i) then begin
         pre.(i) <- true;
         List.iter (fun s -> if not is_head.(s) then visit s) t.succs.(i)
       end
     in
     visit t.entry
   end);
  let rec visit_post i =
    if not post.(i) then begin
      post.(i) <- true;
      List.iter visit_post t.succs.(i)
    end
  in
  List.iter visit_post heads;
  Array.init n (fun i ->
      match (pre.(i), post.(i)) with
      | true, false -> Pre
      | false, true -> Post
      (* both ways, or a block the reachability walks never saw
         (dead code): widen, never sharpen *)
      | true, true | false, false -> Mixed)
