(** Basic-block control-flow graph of one function.

    Blocks split at jump targets and after every control transfer
    ([Jmp_rel], [Jcc_rel], [Ret]); calls do not end a block (they
    return). Jump targets outside the function's own instruction range
    are treated as function exits, the standard conservative choice
    for tail transfers into stubs. The {!Dataflow} engine runs its
    worklist fixpoint over this graph. *)

open Lapis_x86

type block = {
  b_index : int;
  b_addr : int;  (** address of the block's first instruction *)
  b_insns : (int * Insn.t * int) list;  (** (address, insn, length) *)
}

type t = {
  blocks : block array;
  succs : int list array;  (** successor block indexes *)
  preds : int list array;  (** predecessor block indexes *)
  entry : int;  (** index of the entry block; -1 for an empty function *)
}

val build : (int * Insn.t * int) list -> t
(** Build the graph from a function's decoded instruction list
    ((address, instruction, length) triples in address order). *)

val reachable : t -> int list
(** Block indexes reachable from the entry, in DFS preorder; empty for
    an empty function. *)

val rpo : t -> int list
(** Reachable blocks in reverse postorder: every block before its
    successors except across back edges, the sweep order under which
    the fixpoint converges in one pass per loop-nesting depth. *)

val n_blocks : t -> int

type region = Pre | Post | Mixed
(** Temporal region of a block relative to the function's first loop:
    [Pre] blocks run only before any loop head is entered (the
    initialization prologue), [Post] blocks only from a loop head
    onwards (the loop bodies and everything after them), [Mixed]
    blocks both ways — or could not be classified, the conservative
    default. *)

val loop_heads : t -> int list
(** Targets of retreating edges in the RPO ordering, ascending — the
    natural-loop headers of a reducible graph. The phase analysis
    treats the first loop reached from the entry as the init/serving
    transition point. *)

val regions : t -> region array
(** Per-block temporal region, indexed by [b_index]. *)
