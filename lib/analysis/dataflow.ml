(** CFG-based abstract interpretation of one function.

    This replaces the linear {!Scan} pass for footprint extraction: a
    worklist fixpoint over the basic-block graph of {!Cfg}, with a
    flat constant lattice lifted to bounded constant *sets* (the
    k-limited disjunctive completion), so a register set to different
    immediates on the two arms of a branch still resolves to both
    values at the merged system call site instead of collapsing to
    unknown. Two further refinements over the linear scan:

    - register-to-register moves propagate values (the linear scan
      drops them), which is what lets a wrapper body like
      [mov rax, rdi; syscall] stay symbolic instead of unknown;
    - values of SysV argument registers at function entry are tracked
      symbolically ({!value.Param}); a system call dispatched on such
      a value becomes a {!Summary.site} resolved at each call site by
      {!Binary} — one round of interprocedural analysis.

    Everything the analysis records (pseudo-file strings, call edges,
    lea-taken code addresses) is collected from *reachable* blocks
    only, so jump-over code islands neither pollute register state
    nor leak phantom APIs. *)

open Lapis_x86
open Lapis_apidb

module Regs = Map.Make (struct
  type t = Insn.reg
  let compare = compare
end)

(* The widening bound of the constant-set domain: enough for the
   branchy immediates real code dispatches on, small enough that the
   fixpoint stays linear in practice. *)
let max_consts = 8

type value =
  | Consts of int64 list  (** sorted, distinct, at most [max_consts] *)
  | Addr of int  (** rip-relative materialized address *)
  | Param of Insn.reg  (** the value this register held at entry *)
  | Top

let const v = Consts [ v ]

let join_value a b =
  if a == b then a
  else
    match (a, b) with
    | Consts xs, Consts ys ->
      let merged = List.sort_uniq Int64.compare (xs @ ys) in
      if List.length merged > max_consts then Top else Consts merged
    | Addr x, Addr y when x = y -> Addr x
    | Param x, Param y when x = y -> Param x
    | _ -> Top

(* Register states map to non-Top values only; an absent register is
   Top. The join is therefore an intersection with per-key joins. *)
type state = value Regs.t

let value_of st r = Option.value ~default:Top (Regs.find_opt r st)

let set st r v = match v with Top -> Regs.remove r st | _ -> Regs.add r v st

let join_state a b =
  Regs.merge
    (fun _ va vb ->
      match (va, vb) with
      | Some x, Some y ->
        (match join_value x y with Top -> None | v -> Some v)
      | _ -> None)
    a b

(* Structural equality on values, cheaper than polymorphic compare
   over the whole map: the common cases are single-constant sets and
   identical shared subtrees. *)
let equal_value a b =
  a == b
  ||
  match (a, b) with
  | Consts xs, Consts ys -> (
    try List.for_all2 Int64.equal xs ys with Invalid_argument _ -> false)
  | Addr x, Addr y -> x = y
  | Param x, Param y -> x = y
  | Top, Top -> true
  | (Consts _ | Addr _ | Param _ | Top), _ -> false

let equal_state a b = Regs.equal equal_value a b

(* SysV integer argument registers, tracked symbolically at entry. *)
let arg_regs =
  [ Insn.RDI; Insn.RSI; Insn.RDX; Insn.RCX; Insn.R8; Insn.R9 ]

let entry_state =
  List.fold_left (fun st r -> Regs.add r (Param r) st) Regs.empty arg_regs

let caller_saved =
  [ Insn.RAX; Insn.RCX; Insn.RDX; Insn.RSI; Insn.RDI; Insn.R8; Insn.R9;
    Insn.R10; Insn.R11 ]

let clobber st = List.fold_left (fun m r -> Regs.remove r m) st caller_saved

(* Pure register transfer of one instruction — shared by the fixpoint
   and the recording pass. *)
let transfer st (addr, insn, len) =
  match insn with
  | Insn.Mov_ri (r, v) -> set st r (const v)
  | Insn.Xor_rr (d, s) when d = s -> set st d (const 0L)
  | Insn.Mov_rr (d, s) -> set st d (value_of st s)
  | Insn.Xor_rr (d, _) -> set st d Top
  | Insn.Lea_rip (r, disp) -> set st r (Addr (addr + len + Int32.to_int disp))
  | Insn.Add_ri (r, imm) ->
    (match value_of st r with
     | Consts vs ->
       set st r (Consts (List.map (fun v -> Int64.add v (Int64.of_int32 imm)) vs))
     | _ -> set st r Top)
  | Insn.Sub_ri (r, imm) ->
    (match value_of st r with
     | Consts vs ->
       set st r (Consts (List.map (fun v -> Int64.sub v (Int64.of_int32 imm)) vs))
     | _ -> set st r Top)
  | Insn.Cmp_ri _ -> st
  | Insn.Call_rel _ | Insn.Call_reg _ | Insn.Call_mem_rip _ -> clobber st
  | Insn.Syscall | Insn.Int80 | Insn.Sysenter -> set st Insn.RAX Top
  | Insn.Push_r _ -> st
  | Insn.Pop_r r -> set st r Top
  | Insn.Jmp_rel _ | Insn.Jcc_rel _ | Insn.Jmp_mem_rip _ | Insn.Ret
  | Insn.Nop | Insn.Unknown _ -> st

(* Temporal attribution of one function's recordings, keyed by the
   {!Cfg.region} of the block each item was found in. The totals in
   [result.direct]/[result.calls] are untouched: the phase split is a
   refinement carried alongside, never a replacement. *)
type phase_result = {
  ph_has_loop : bool;
      (** the function contains a loop head — a candidate phase
          transition point *)
  ph_pre : Footprint.t;  (** items recorded in [Cfg.Pre] blocks *)
  ph_post : Footprint.t;  (** items recorded in [Cfg.Post] blocks *)
  ph_mixed : Footprint.t;  (** items recorded in [Cfg.Mixed] blocks *)
  ph_calls : (Scan.call_target * Cfg.region) list;
      (** direct call edges tagged with their block's region *)
  ph_call_args :
    (int * Cfg.region * (Insn.reg * int64 list) list) list;
      (** [local_call_args] with each site's region — same sites, same
          order *)
}

let empty_phase =
  {
    ph_has_loop = false;
    ph_pre = Footprint.empty;
    ph_post = Footprint.empty;
    ph_mixed = Footprint.empty;
    ph_calls = [];
    ph_call_args = [];
  }

type result = {
  direct : Footprint.t;
      (** APIs resolved from this function's own instructions *)
  calls : Scan.call_target list;  (** direct call edges *)
  lea_code_targets : int list;
      (** lea-taken code addresses (reachable blocks only) *)
  summary : Summary.t;
      (** syscall/vectored sites dispatched on an entry argument *)
  local_call_args : (int * (Insn.reg * int64 list) list) list;
      (** per local call site: callee address and the constant values
          of the argument registers at the call — the inputs the
          binary-level pass feeds into callee summaries *)
  phase : phase_result;
      (** temporal split of the recordings above (see {!Phase}) *)
  fuel_exhausted : bool;
      (** the fixpoint stopped at its transfer budget: the recorded
          states are a sound snapshot of an unfinished iteration, so
          the footprint may under-approximate (counted, never silent) *)
}

(* Fixpoint transfer budget. Real functions converge within a few
   sweeps of their block count; the budget only fires on adversarial
   CFGs (thousands of single-instruction blocks cross-jumping each
   other), turning a multi-second fixpoint into a prompt partial
   result. *)
let default_fuel = 100_000

module Site_set = Set.Make (struct
  type t = Summary.site
  let compare = compare
end)

let analyze ?(fuel = default_fuel) (ctx : Scan.context)
    (insns : (int * Insn.t * int) list) : result =
  let cfg = Cfg.build insns in
  let n = Cfg.n_blocks cfg in
  let direct = ref Footprint.empty in
  let calls = ref [] in
  let leas = ref [] in
  let summary = ref Site_set.empty in
  let call_args = ref [] in
  (* phase accumulators: every recording lands in [direct] AND in the
     accumulator of the region of the block being recorded *)
  let pre_fp = ref Footprint.empty in
  let post_fp = ref Footprint.empty in
  let mixed_fp = ref Footprint.empty in
  let cur_fp = ref mixed_fp in
  let cur_region = ref Cfg.Mixed in
  let ph_calls = ref [] in
  let ph_call_args = ref [] in
  let fuel_left = ref fuel in
  if n = 0 then
    { direct = !direct; calls = []; lea_code_targets = []; summary = [];
      local_call_args = []; phase = empty_phase; fuel_exhausted = false }
  else begin
    (* --- worklist fixpoint ------------------------------------------
       Pending blocks are swept in reverse postorder: a cursor walks
       the RPO sequence, and only an update to a block behind the
       cursor (a back edge) rewinds it. Acyclic regions therefore
       converge in a single sweep, and a block is re-transferred only
       when its joined in-state actually changed. The in/out arrays
       are allocated once and reused across sweeps. *)
    let order = Array.of_list (Cfg.rpo cfg) in
    let m = Array.length order in
    let pos_of = Array.make n max_int in
    Array.iteri (fun p i -> pos_of.(i) <- p) order;
    let in_states : state option array = Array.make n None in
    let out_states : state option array = Array.make n None in
    in_states.(cfg.Cfg.entry) <- Some entry_state;
    let pending = Array.make n false in
    pending.(cfg.Cfg.entry) <- true;
    let cursor = ref 0 in
    while !cursor < m && !fuel_left > 0 do
      let i = order.(!cursor) in
      incr cursor;
      if pending.(i) then begin
        decr fuel_left;
        pending.(i) <- false;
        match in_states.(i) with
        | None -> ()
        | Some st_in ->
          let st_out =
            List.fold_left transfer st_in cfg.Cfg.blocks.(i).Cfg.b_insns
          in
          let out_changed =
            match out_states.(i) with
            | Some prev when equal_state prev st_out -> false
            | Some _ | None ->
              out_states.(i) <- Some st_out;
              true
          in
          (* an unchanged out-state cannot move any successor's join *)
          if out_changed then
            List.iter
              (fun s ->
                let changed =
                  match in_states.(s) with
                  | None ->
                    in_states.(s) <- Some st_out;
                    true
                  | Some cur ->
                    let merged = join_state cur st_out in
                    if equal_state cur merged then false
                    else begin
                      in_states.(s) <- Some merged;
                      true
                    end
                in
                if changed && not pending.(s) then begin
                  pending.(s) <- true;
                  if pos_of.(s) < !cursor then cursor := pos_of.(s)
                end)
              cfg.Cfg.succs.(i)
      end
    done;
    (* ran dry with sweeps still pending: an unfinished iteration *)
    let exhausted = !fuel_left <= 0 && !cursor < m in
    if exhausted then Lapis_perf.Stage.incr "fuel:dataflow-exhausted";
    (* --- recording pass over reachable blocks ----------------------- *)
    let addf f =
      direct := f !direct;
      let c = !cur_fp in
      c := f !c
    in
    let add_summary site =
      if not (Site_set.mem site !summary) then
        summary := Site_set.add site !summary
    in
    let record_vop_reg st v reg =
      match value_of st reg with
      | Consts codes ->
        List.iter
          (fun code -> addf (Footprint.add_vop v (Int64.to_int code)))
          codes
      | Param p -> add_summary (Summary.Vop_code_of (v, p))
      | Addr _ | Top -> ()
    in
    let record_syscall st =
      addf Footprint.add_site;
      match value_of st Insn.RAX with
      | Consts nrs ->
        List.iter
          (fun nr64 ->
            let nr = Int64.to_int nr64 in
            addf (Footprint.add_syscall nr);
            match Api.vector_of_syscall_nr nr with
            | Some v -> record_vop_reg st v Insn.RSI
            | None -> ())
          nrs
      | Param p -> add_summary (Summary.Syscall_nr_of p)
      | Addr _ | Top -> addf Footprint.add_unresolved
    in
    let const_args st =
      List.filter_map
        (fun r ->
          match value_of st r with
          | Consts vs -> Some (r, vs)
          | _ -> None)
        arg_regs
    in
    let add_call target =
      calls := target :: !calls;
      ph_calls := (target, !cur_region) :: !ph_calls
    in
    let add_call_args a args =
      call_args := (a, args) :: !call_args;
      ph_call_args := (a, !cur_region, args) :: !ph_call_args
    in
    let record st (addr, insn, len) =
      (match insn with
       | Insn.Lea_rip (_, disp) ->
         let target = addr + len + Int32.to_int disp in
         (match ctx.Scan.string_at target with
          | Some s ->
            if Pseudo_files.is_pseudo_path s then
              addf (Footprint.add_pseudo s)
          | None ->
            (match ctx.Scan.resolve_code target with
             | Some (Scan.Local_addr a) -> leas := a :: !leas
             | Some (Scan.Import _) | None -> ()))
       | Insn.Call_rel disp ->
         let target = addr + len + Int32.to_int disp in
         (match ctx.Scan.resolve_code target with
          | Some (Scan.Import name) ->
            add_call (Scan.Import name);
            (match name with
             | "ioctl" | "fcntl" | "prctl" ->
               let v =
                 match name with
                 | "ioctl" -> Api.Ioctl
                 | "fcntl" -> Api.Fcntl
                 | _ -> Api.Prctl
               in
               record_vop_reg st v Insn.RSI
             | "syscall" ->
               addf Footprint.add_site;
               (match value_of st Insn.RDI with
                | Consts nrs ->
                  List.iter
                    (fun nr64 ->
                      let nr = Int64.to_int nr64 in
                      addf (Footprint.add_syscall nr);
                      match Api.vector_of_syscall_nr nr with
                      | Some v -> record_vop_reg st v Insn.RDX
                      | None -> ())
                    nrs
                | Param p -> add_summary (Summary.Syscall_nr_of p)
                | Addr _ | Top -> addf Footprint.add_unresolved)
             | _ -> ())
          | Some (Scan.Local_addr a) ->
            add_call (Scan.Local_addr a);
            add_call_args a (const_args st)
          | None -> ())
       | Insn.Call_reg r ->
         (match value_of st r with
          | Addr a ->
            (match ctx.Scan.resolve_code a with
             | Some (Scan.Local_addr la as t) ->
               add_call t;
               add_call_args la (const_args st)
             | Some t -> add_call t
             | None -> ())
          | _ -> ())
       | Insn.Syscall | Insn.Int80 | Insn.Sysenter -> record_syscall st
       | _ -> ());
      transfer st (addr, insn, len)
    in
    let regions = Cfg.regions cfg in
    let has_loop = Cfg.loop_heads cfg <> [] in
    List.iter
      (fun i ->
        match in_states.(i) with
        | None -> ()
        | Some st_in ->
          cur_region := regions.(i);
          (cur_fp :=
             match regions.(i) with
             | Cfg.Pre -> pre_fp
             | Cfg.Post -> post_fp
             | Cfg.Mixed -> mixed_fp);
          ignore
            (List.fold_left record st_in cfg.Cfg.blocks.(i).Cfg.b_insns))
      (Cfg.reachable cfg);
    {
      direct = !direct;
      calls = List.rev !calls;
      lea_code_targets = !leas;
      summary = Site_set.elements !summary;
      local_call_args = List.rev !call_args;
      phase =
        {
          ph_has_loop = has_loop;
          ph_pre = !pre_fp;
          ph_post = !post_fp;
          ph_mixed = !mixed_fp;
          ph_calls = List.rev !ph_calls;
          ph_call_args = List.rev !ph_call_args;
        };
      fuel_exhausted = exhausted;
    }
  end

(* Convert into the shape the rest of the pipeline consumes. *)
let to_scan_result (r : result) : Scan.result =
  { Scan.direct = r.direct; calls = r.calls;
    lea_code_targets = r.lea_code_targets }
