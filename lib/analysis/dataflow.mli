(** CFG-based abstract interpretation of one function.

    This replaces the linear {!Scan} pass for footprint extraction: a
    worklist fixpoint over the basic-block graph of {!Cfg}, with a
    flat constant lattice lifted to bounded constant {e sets} (the
    k-limited disjunctive completion), so a register set to different
    immediates on the two arms of a branch still resolves to both
    values at the merged system call site instead of collapsing to
    unknown. Register-to-register moves propagate values, and SysV
    argument registers at function entry are tracked symbolically: a
    system call dispatched on such a value becomes a {!Summary.site}
    resolved at each call site by {!Binary}. Everything is collected
    from reachable blocks only, so jump-over code islands neither
    pollute register state nor leak phantom APIs. *)

val max_consts : int
(** Widening bound of the constant-set domain: joins whose merged set
    would exceed it collapse to {!Top}. *)

type value =
  | Consts of int64 list  (** sorted, distinct, at most {!max_consts} *)
  | Addr of int  (** rip-relative materialized address *)
  | Param of Lapis_x86.Insn.reg
      (** the value this register held at function entry *)
  | Top

val const : int64 -> value
val join_value : value -> value -> value

type phase_result = {
  ph_has_loop : bool;
      (** the function contains a loop head — a candidate phase
          transition point *)
  ph_pre : Footprint.t;  (** items recorded in [Cfg.Pre] blocks *)
  ph_post : Footprint.t;  (** items recorded in [Cfg.Post] blocks *)
  ph_mixed : Footprint.t;  (** items recorded in [Cfg.Mixed] blocks *)
  ph_calls : (Scan.call_target * Cfg.region) list;
      (** direct call edges tagged with their block's region *)
  ph_call_args :
    (int * Cfg.region * (Lapis_x86.Insn.reg * int64 list) list) list;
      (** [local_call_args] with each site's region — same sites, same
          order *)
}
(** Temporal attribution of one function's recordings, keyed by the
    {!Cfg.region} of the block each item was found in. The totals in
    [result.direct]/[result.calls] are untouched: the phase split is a
    refinement carried alongside, never a replacement. *)

val empty_phase : phase_result

type result = {
  direct : Footprint.t;
      (** APIs resolved from this function's own instructions *)
  calls : Scan.call_target list;  (** direct call edges *)
  lea_code_targets : int list;
      (** lea-taken code addresses (reachable blocks only) *)
  summary : Summary.t;
      (** syscall/vectored sites dispatched on an entry argument *)
  local_call_args : (int * (Lapis_x86.Insn.reg * int64 list) list) list;
      (** per local call site: callee address and the constant values
          of the argument registers at the call — the inputs the
          binary-level pass feeds into callee summaries *)
  phase : phase_result;
      (** temporal split of the recordings above (see {!Phase}) *)
  fuel_exhausted : bool;
      (** the fixpoint stopped at its transfer budget: the recorded
          states are a sound snapshot of an unfinished iteration, so
          the footprint may under-approximate (counted, never silent) *)
}

val default_fuel : int
(** Fixpoint transfer budget: real functions converge well within it;
    only adversarial CFGs (thousands of single-instruction blocks
    cross-jumping each other) hit it. *)

val analyze :
  ?fuel:int -> Scan.context -> (int * Lapis_x86.Insn.t * int) list -> result
(** Run the fixpoint over one function's decoded instructions
    ((address, instruction, length) triples in address order). *)

val to_scan_result : result -> Scan.result
(** Project onto the linear scanner's result type, for call sites that
    are agnostic to which engine produced the footprint. *)
