(** The API footprint of a binary or package (Section 2): every system
    API the code could request, plus the raw dynamic-symbol imports
    (which become libc-API usage once resolved against the libraries
    that define them), and the count of system call sites whose number
    could not be resolved statically (Section 2.4 reports 4%). *)

module String_set = Set.Make (String)

open Lapis_apidb

type t = {
  apis : Api.Set.t;
      (** syscalls, vectored opcodes and pseudo-files requested *)
  imports : String_set.t;  (** undefined dynamic symbols used *)
  unresolved_sites : int;
  syscall_sites : int;
      (** total system call sites scanned (resolved or not): the
          denominator of the Section 2.4 unresolved rate *)
}

let empty = { apis = Api.Set.empty; imports = String_set.empty;
              unresolved_sites = 0; syscall_sites = 0 }

let union a b =
  {
    apis = Api.Set.union a.apis b.apis;
    imports = String_set.union a.imports b.imports;
    unresolved_sites = a.unresolved_sites + b.unresolved_sites;
    syscall_sites = a.syscall_sites + b.syscall_sites;
  }

let add_api api t = { t with apis = Api.Set.add api t.apis }
let add_syscall nr t = add_api (Api.Syscall nr) t
let add_vop v code t = add_api (Api.Vop (v, code)) t
let add_pseudo path t = add_api (Api.Pseudo_file path) t
let add_import name t = { t with imports = String_set.add name t.imports }
let add_unresolved t = { t with unresolved_sites = t.unresolved_sites + 1 }
let add_site t = { t with syscall_sites = t.syscall_sites + 1 }

let syscalls t =
  Api.Set.fold
    (fun api acc -> match api with Api.Syscall nr -> nr :: acc | _ -> acc)
    t.apis []
  |> List.sort compare

let vops t =
  Api.Set.fold
    (fun api acc -> match api with Api.Vop (v, c) -> (v, c) :: acc | _ -> acc)
    t.apis []

let pseudo_files t =
  Api.Set.fold
    (fun api acc ->
      match api with Api.Pseudo_file p -> p :: acc | _ -> acc)
    t.apis []
  |> List.sort compare

let subset a b = Api.Set.subset a.apis b.apis

let cardinal t = Api.Set.cardinal t.apis

let pp ppf t =
  Fmt.pf ppf "@[<v>syscalls: %a@ vops: %d@ pseudo: %a@ imports: %d@]"
    Fmt.(list ~sep:comma int)
    (syscalls t) (List.length (vops t))
    Fmt.(list ~sep:comma string)
    (pseudo_files t)
    (String_set.cardinal t.imports)
