(** The API footprint of a binary or package (Section 2): every system
    API the code could request. *)

module String_set : Set.S with type elt = string

open Lapis_apidb

type t = {
  apis : Api.Set.t;
      (** system calls, vectored opcodes, pseudo-files and (after
          resolution) libc symbols requested *)
  imports : String_set.t;
      (** raw undefined dynamic symbols referenced by the code *)
  unresolved_sites : int;
      (** system call sites whose number could not be recovered
          statically — the paper reports 4% of sites (Section 2.4) *)
  syscall_sites : int;
      (** total system call sites scanned, the denominator of the
          unresolved rate reported by the precision audit *)
}

val empty : t
val union : t -> t -> t

val add_api : Api.t -> t -> t
val add_syscall : int -> t -> t
val add_vop : Api.vector -> int -> t -> t
val add_pseudo : string -> t -> t
val add_import : string -> t -> t
val add_unresolved : t -> t

val add_site : t -> t
(** Count one more system call site (resolved or not). *)

val syscalls : t -> int list
(** The footprint's system call numbers, sorted. *)

val vops : t -> (Api.vector * int) list
(** The vectored operation codes requested. *)

val pseudo_files : t -> string list
(** The hard-coded pseudo-file paths, sorted. *)

val subset : t -> t -> bool
(** [subset a b] — does [a]'s API set fit within [b]'s? *)

val cardinal : t -> int

val pp : Format.formatter -> t -> unit
