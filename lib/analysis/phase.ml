(** Interprocedural phase attribution (temporal analysis).

    Modern consumers of the paper's measurement — temporal seccomp
    filtering in particular — need to know not only {e which} APIs a
    binary can request but {e when}: filters can be tightened
    dramatically once initialization is over. This pass partitions a
    binary's footprint into the initialization phase and the
    steady-state (serving) phase by interprocedural reachability over
    the {!Dataflow} results:

    - the first loop reached along any path from the program entry
      marks the init/serving transition point ({!Cfg.regions});
    - code reachable only before it is [Init], code reachable only
      from the loop onwards is [Serving], code reachable both ways —
      or whose attribution cannot be resolved (address-taken
      functions, unresolved dispatch) — widens to both phases, never
      drops an item;
    - library code has no phase of its own: an import is attributed
      wholly by the phase of its call sites, and {!Resolve} expands
      the corresponding library footprints per phase.

    When no loop is ever reached from the entry the program has no
    transition point and the attribution is vacuous: every item
    belongs to both phases. The walk itself never sharpens the total
    footprint — {!Resolve.phased_footprint} re-widens any residue so
    that [init ∪ serving == total] holds bit-for-bit. *)

open Lapis_apidb
module String_set = Footprint.String_set

(* The propagation context a function is visited under. [Pre] means
   the function runs on the entry path before any transition has been
   entered (its own regions refine the split further); [Serving] and
   [Both] attribute everything below wholesale. *)
type ctx = Pre | Serving | Both

type attribution = {
  a_transitioned : bool;
      (** a loop was reached on the entry path: the program has a
          marked transition point and the split below is meaningful *)
  a_init : Api.Set.t;  (** own-code APIs reachable during init *)
  a_serving : Api.Set.t;  (** own-code APIs reachable while serving *)
  a_init_imports : String_set.t;  (** imports called during init *)
  a_serving_imports : String_set.t;  (** imports called while serving *)
}

let fp_apis (fp : Footprint.t) = fp.Footprint.apis

(* Attribute the footprint of [bin] starting from its entry points.
   For executables this is the e_entry chain — the only place a
   transition can be observed; shared libraries are attributed by
   their callers, so their own walk starts every export in [Both]. *)
let attribute (bin : Binary.t) : attribution =
  let init = ref Api.Set.empty in
  let serving = ref Api.Set.empty in
  let init_imports = ref String_set.empty in
  let serving_imports = ref String_set.empty in
  let transitioned = ref false in
  let add_apis ctx apis =
    match ctx with
    | Pre -> init := Api.Set.union !init apis
    | Serving -> serving := Api.Set.union !serving apis
    | Both ->
      init := Api.Set.union !init apis;
      serving := Api.Set.union !serving apis
  in
  let add_import ctx name =
    match ctx with
    | Pre -> init_imports := String_set.add name !init_imports
    | Serving -> serving_imports := String_set.add name !serving_imports
    | Both ->
      init_imports := String_set.add name !init_imports;
      serving_imports := String_set.add name !serving_imports
  in
  let visited = Hashtbl.create 64 in
  let rec visit ctx name =
    if not (Hashtbl.mem visited (name, ctx)) then begin
      Hashtbl.replace visited (name, ctx) ();
      match Hashtbl.find_opt bin.Binary.fns name with
      | None -> ()
      | Some fi ->
        let ph = fi.Binary.fi_phase in
        (* address-taken functions can be called from either phase:
           widen, in every context *)
        List.iter
          (fun a ->
            match Binary.fn_name_at bin a with
            | Some n -> visit Both n
            | None -> ())
          fi.Binary.fi_scan.Scan.lea_code_targets;
        match ctx with
        | Serving | Both ->
          add_apis ctx (fp_apis fi.Binary.fi_scan.Scan.direct);
          List.iter
            (fun target ->
              match target with
              | Scan.Import imp -> add_import ctx imp
              | Scan.Local_addr a ->
                (match Binary.fn_name_at bin a with
                 | Some n -> visit ctx n
                 | None -> ()))
            fi.Binary.fi_scan.Scan.calls
        | Pre ->
          (* the function's own regions refine the split: with no loop
             every block is [Cfg.Pre] and the walk stays in init *)
          if ph.Dataflow.ph_has_loop then transitioned := true;
          add_apis Pre (fp_apis ph.Dataflow.ph_pre);
          add_apis Serving (fp_apis ph.Dataflow.ph_post);
          add_apis Both (fp_apis ph.Dataflow.ph_mixed);
          List.iter
            (fun (target, region) ->
              let ctx' =
                match (region : Cfg.region) with
                | Cfg.Pre -> Pre
                | Cfg.Post -> Serving
                | Cfg.Mixed -> Both
              in
              match target with
              | Scan.Import imp -> add_import ctx' imp
              | Scan.Local_addr a ->
                (match Binary.fn_name_at bin a with
                 | Some n -> visit ctx' n
                 | None -> ()))
            ph.Dataflow.ph_calls
    end
  in
  let start_ctx =
    match bin.Binary.image.Lapis_elf.Image.kind with
    | Lapis_elf.Image.Exec_static | Lapis_elf.Image.Exec_dynamic -> Pre
    | Lapis_elf.Image.Shared_lib -> Both
  in
  List.iter (visit start_ctx) (Binary.entry_points bin);
  {
    a_transitioned = !transitioned;
    a_init = !init;
    a_serving = !serving;
    a_init_imports = !init_imports;
    a_serving_imports = !serving_imports;
  }
