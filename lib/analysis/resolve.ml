(** Cross-library footprint resolution (Section 7): for each library
    function that an executable relies on, identify the code reachable
    from that entry point in the defining library, recursively through
    further library calls, and aggregate the results.

    Imports that resolve into the C runtime family additionally count
    as libc-API usage ({!Lapis_apidb.Api.Libc_sym}) of the importing
    binary, which feeds the Section 3.5 and 4.2 analyses. *)

open Lapis_apidb
module String_set = Footprint.String_set

type stats = {
  mutable ld_computations : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable rejects : (string * int) list;
      (** quarantined binaries per {!Lapis_elf.Reader.kind_name} (plus
          "analysis-crash"), filled in by {!Lapis_store.Pipeline.run} *)
}

type world = {
  libs : (string, Binary.t) Hashtbl.t;  (** soname -> analyzed library *)
  ld_so : Binary.t option;  (** the dynamic linker, if modelled *)
  libc_family : string -> bool;  (** is this soname part of the C runtime? *)
  def_lib : string -> string option;  (** symbol -> defining soname *)
  memo : (string, Footprint.t) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;
  union_cache : (string, Footprint.t) Hashtbl.t;
      (** pre-unioned import-set footprints, keyed by canonical set *)
  mutable ld_so_fp : Footprint.t option;  (** once-per-world ld.so cache *)
  stats : stats;
}

let make_world ?ld_so ~libc_family (libs : (string * Binary.t) list) =
  let tbl = Hashtbl.create 64 in
  let defs = Hashtbl.create 4096 in
  List.iter
    (fun (soname, bin) ->
      Hashtbl.replace tbl soname bin;
      List.iter
        (fun export ->
          if not (Hashtbl.mem defs export) then
            Hashtbl.replace defs export soname)
        (Binary.exports bin))
    libs;
  {
    libs = tbl;
    ld_so;
    libc_family;
    def_lib = Hashtbl.find_opt defs;
    memo = Hashtbl.create 4096;
    in_progress = Hashtbl.create 64;
    union_cache = Hashtbl.create 256;
    ld_so_fp = None;
    stats =
      { ld_computations = 0; memo_hits = 0; memo_misses = 0; rejects = [] };
  }

(* Resolve the imports of a local closure computed in [soname]'s
   context, producing the transitive footprint. *)
let rec resolve_closure world ~importer_is_libc (cl : Binary.closure) =
  Footprint.union cl.Binary.cl_footprint
    (imports_footprint world ~importer_is_libc cl.Binary.cl_imports)

(* The unioned footprint of a whole import set. Footprint union is
   associative and commutative and the site counters are sums, so the
   result only depends on the set (and the importer's libc-ness) — and
   executables of a package share import sets, so the union is cached
   by its canonical key. The cache is bypassed while any export
   resolution is in flight: a footprint computed under a cycle cut is
   correct for the memo entry being built, but must not be shared. *)
and imports_footprint world ~importer_is_libc imports =
  let compute () =
    String_set.fold
      (fun imp fp ->
        match world.def_lib imp with
        | None -> fp  (* unresolvable import: no defining library known *)
        | Some soname ->
          let fp = Footprint.union fp (export_footprint world soname imp) in
          if world.libc_family soname && not importer_is_libc then
            Footprint.add_api (Api.Libc_sym imp) fp
          else fp)
      imports Footprint.empty
  in
  if Hashtbl.length world.in_progress > 0 then compute ()
  else begin
    let key =
      Digest.string
        ((if importer_is_libc then "L" else "x")
        ^ String.concat "\x00" (String_set.elements imports))
    in
    match Hashtbl.find_opt world.union_cache key with
    | Some fp -> fp
    | None ->
      let fp = compute () in
      Hashtbl.replace world.union_cache key fp;
      fp
  end

and export_footprint world soname export : Footprint.t =
  let key = soname ^ ":" ^ export in
  match Hashtbl.find_opt world.memo key with
  | Some fp ->
    world.stats.memo_hits <- world.stats.memo_hits + 1;
    fp
  | None ->
    if Hashtbl.mem world.in_progress key then Footprint.empty
    else begin
      Hashtbl.replace world.in_progress key ();
      let fp =
        match Hashtbl.find_opt world.libs soname with
        | None -> Footprint.empty
        | Some bin ->
          let cl = Binary.local_closure bin ~start:export in
          resolve_closure world
            ~importer_is_libc:(world.libc_family soname)
            cl
      in
      Hashtbl.remove world.in_progress key;
      Hashtbl.replace world.memo key fp;
      world.stats.memo_misses <- world.stats.memo_misses + 1;
      fp
    end

(* The footprint the dynamic linker contributes to every
   dynamically-linked program (Table 5). It is the same for every
   executable, so it is resolved once per world and cached: without
   the cache the closure walk reruns for each of the thousands of
   dynamically-linked executables in a distribution. *)
let ld_so_footprint world =
  match world.ld_so_fp with
  | Some fp -> fp
  | None ->
    let fp =
      match world.ld_so with
      | None -> Footprint.empty
      | Some bin ->
        List.fold_left
          (fun acc entry ->
            Footprint.union acc
              (resolve_closure world ~importer_is_libc:true
                 (Binary.local_closure bin ~start:entry)))
          Footprint.empty (Binary.entry_points bin)
    in
    world.stats.ld_computations <- world.stats.ld_computations + 1;
    world.ld_so_fp <- Some fp;
    fp

(* Full resolved footprint of one analyzed binary. For executables the
   analysis starts at e_entry; for shared libraries at every export.
   The binary-wide pseudo-file sweep is included, and dynamically
   linked executables inherit the dynamic linker's startup work. *)
let binary_footprint world (bin : Binary.t) : Footprint.t =
  let soname = bin.Binary.image.Lapis_elf.Image.soname in
  let libcish =
    match soname with
    | Some soname -> world.libc_family soname
    | None -> false
  in
  let in_world =
    match soname with
    | Some s ->
      (match Hashtbl.find_opt world.libs s with
       | Some b when b == bin -> Some s
       | _ -> None)
    | None -> None
  in
  let from_entries =
    match in_world with
    | Some s ->
      (* A shared library registered in the world: each entry point is
         an export, and its closure is exactly the memoized
         [export_footprint], so libraries consumed by many importers
         are resolved once instead of once more here. *)
      List.fold_left
        (fun acc entry ->
          Footprint.union acc (export_footprint world s entry))
        Footprint.empty (Binary.entry_points bin)
    | None ->
      List.fold_left
        (fun acc entry ->
          Footprint.union acc
            (resolve_closure world ~importer_is_libc:libcish
               (Binary.local_closure bin ~start:entry)))
        Footprint.empty (Binary.entry_points bin)
  in
  let fp = Footprint.union from_entries bin.Binary.rodata_strings in
  match bin.Binary.image.Lapis_elf.Image.interp with
  | Some _ -> Footprint.union fp (ld_so_footprint world)
  | None -> fp

(* Temporal split of a resolved footprint (see {!Phase}): the API sets
   a binary can request during initialization and while serving. The
   split never sharpens the total — any item the attribution walk
   could not place (rodata sweep strings, unresolved dispatch) is
   re-widened into both phases, so [init ∪ serving == total] holds
   bit-for-bit and unphased consumers are unaffected. *)
let phased_footprint world (bin : Binary.t) ~(total : Footprint.t) :
    Api.Set.t * Api.Set.t =
  let total_apis = total.Footprint.apis in
  let a = Phase.attribute bin in
  if not a.Phase.a_transitioned then begin
    (* No loop reached from the entry: no transition point, the whole
       footprint belongs to both phases. *)
    Lapis_perf.Stage.incr "phase:no-transition";
    (total_apis, total_apis)
  end
  else begin
    let soname = bin.Binary.image.Lapis_elf.Image.soname in
    let libcish =
      match soname with
      | Some soname -> world.libc_family soname
      | None -> false
    in
    let expand imports =
      (imports_footprint world ~importer_is_libc:libcish imports)
        .Footprint.apis
    in
    let init =
      Api.Set.union a.Phase.a_init (expand a.Phase.a_init_imports)
    in
    let serving =
      Api.Set.union a.Phase.a_serving (expand a.Phase.a_serving_imports)
    in
    (* The dynamic linker runs before main: its startup work is init. *)
    let init =
      match bin.Binary.image.Lapis_elf.Image.interp with
      | Some _ -> Api.Set.union init (ld_so_footprint world).Footprint.apis
      | None -> init
    in
    (* Clamp to the total (phased expansion can only see a subset of
       the resolution paths the total took), then re-widen whatever
       neither phase claimed. *)
    let init = Api.Set.inter init total_apis in
    let serving = Api.Set.inter serving total_apis in
    let residue = Api.Set.diff total_apis (Api.Set.union init serving) in
    let n = Api.Set.cardinal residue in
    if n > 0 then Lapis_perf.Stage.incr ~by:n "phase:widened";
    (Api.Set.union init residue, Api.Set.union serving residue)
  end

(* Direct (intra-binary) footprint: what this binary's own
   instructions request, before any library resolution. Used for the
   Table 1/2 attribution of "who issues this call directly". *)
let direct_footprint (bin : Binary.t) : Footprint.t =
  let fp =
    Hashtbl.fold
      (fun _ fi acc -> Footprint.union acc fi.Binary.fi_scan.Scan.direct)
      bin.Binary.fns Footprint.empty
  in
  Footprint.union fp bin.Binary.rodata_strings
