(** Cross-library footprint resolution (Section 7): for each library
    function an executable relies on, identify the code reachable from
    that entry point in the defining library, recursively through
    further library calls, and aggregate the results. *)


type stats = {
  mutable ld_computations : int;
      (** times the dynamic linker's closure was actually resolved
          (expected: at most 1 per world) *)
  mutable memo_hits : int;
      (** {!export_footprint} calls served from the memo table *)
  mutable memo_misses : int;
      (** {!export_footprint} calls that resolved a closure *)
  mutable rejects : (string * int) list;
      (** quarantined binaries per error kind
          ({!Lapis_elf.Reader.kind_name}, plus "analysis-crash" for
          contained analyzer exceptions), filled in by
          {!Lapis_store.Pipeline.run}; empty on a clean corpus *)
}

type world = {
  libs : (string, Binary.t) Hashtbl.t;  (** soname -> analyzed library *)
  ld_so : Binary.t option;  (** the dynamic linker, if modelled *)
  libc_family : string -> bool;
      (** is this soname part of the C runtime? imports resolving into
          it count as libc-API usage of the importer *)
  def_lib : string -> string option;  (** symbol -> defining soname *)
  memo : (string, Footprint.t) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;  (** cycle guard *)
  union_cache : (string, Footprint.t) Hashtbl.t;
      (** pre-unioned import-set footprints keyed by canonical set:
          executables of a package share import sets, so the expensive
          per-import union runs once per distinct set *)
  mutable ld_so_fp : Footprint.t option;
      (** once-per-world cache of {!ld_so_footprint} *)
  stats : stats;  (** resolution-effort counters, for tests and tuning *)
}

val make_world :
  ?ld_so:Binary.t ->
  libc_family:(string -> bool) ->
  (string * Binary.t) list ->
  world

val export_footprint : world -> string -> string -> Footprint.t
(** [export_footprint world soname name] is the transitive footprint
    of calling [name] in [soname]: the direct APIs of every reachable
    local function, unioned with the resolved footprints of every
    import those functions make. Memoized; cycles yield the empty
    footprint at the back-edge. *)

val ld_so_footprint : world -> Footprint.t
(** The footprint the dynamic linker contributes to every
    dynamically-linked program (Table 5). *)

val binary_footprint : world -> Binary.t -> Footprint.t
(** The full resolved footprint of one binary: entry-point closure
    (e_entry for executables, every export for libraries), the
    binary-wide pseudo-file sweep, and — for dynamically-linked
    executables — the dynamic linker's startup work. Imports that
    resolve into the C runtime are additionally recorded as
    {!Lapis_apidb.Api.Libc_sym} usage. *)

val phased_footprint :
  world ->
  Binary.t ->
  total:Footprint.t ->
  Lapis_apidb.Api.Set.t * Lapis_apidb.Api.Set.t
(** [(init, serving)] — the temporal split of [total] (which must be
    the binary's {!binary_footprint}) per the {!Phase} attribution:
    APIs requestable during initialization versus while serving. The
    invariant [init ∪ serving == total.apis] holds bit-for-bit: items
    the walk cannot place (rodata sweep strings, unresolved dispatch)
    are re-widened into both phases and counted under the
    ["phase:widened"] stage counter; binaries with no transition point
    return [(total, total)] and count under ["phase:no-transition"]. *)

val direct_footprint : Binary.t -> Footprint.t
(** What the binary's own instructions request, before any library
    resolution — the "who issues this call directly" attribution
    behind Tables 1 and 5. *)
