(** Intra-procedural scan of a single function (Section 7): tracks
    constant register values along a linear pass, resolves system call
    numbers at syscall instructions, operation codes at vectored call
    sites, calls into the PLT, and lea-materialized function pointers
    (the paper's over-approximation: a function whose address is taken
    is assumed callable from the taking function).

    The linear pass ignores control flow entirely: values set on one
    arm of a branch, or reached through a jump, are handled only by
    the {!Dataflow} engine. This module is kept as the baseline the
    precision audit ({!Audit}) measures the CFG engine against. *)

open Lapis_x86
open Lapis_apidb

(* What a register is known to hold at a program point. *)
type value =
  | Const of int64
  | Addr of int  (** rip-relative materialized address *)
  | Top  (** statically unknown *)

type call_target =
  | Local_addr of int  (** direct call to a code address *)
  | Import of string  (** call through a PLT stub *)

(* Result of scanning one function. *)
type result = {
  direct : Footprint.t;
      (** APIs requested by this function's own instructions *)
  calls : call_target list;  (** direct call edges *)
  lea_code_targets : int list;
      (** code addresses materialized with lea: potential indirect
          call targets (over-approximated) *)
}

module Regs = Map.Make (struct
  type t = Insn.reg
  let compare = compare
end)

let value_of regs r = Option.value ~default:Top (Regs.find_opt r regs)

(* Registers clobbered by a call under the SysV ABI. *)
let caller_saved =
  [ Insn.RAX; Insn.RCX; Insn.RDX; Insn.RSI; Insn.RDI; Insn.R8; Insn.R9;
    Insn.R10; Insn.R11 ]

let clobber regs =
  List.fold_left (fun m r -> Regs.remove r m) regs caller_saved

(* [resolve_code addr] classifies a call destination (local function
   start or PLT stub -> import); [string_at addr] fetches a
   NUL-terminated string if [addr] falls into .rodata. *)
type context = {
  resolve_code : int -> call_target option;
  string_at : int -> string option;
}

let scan ctx (insns : (int * Insn.t * int) list) : result =
  let direct = ref Footprint.empty in
  let calls = ref [] in
  let leas = ref [] in
  let record_syscall regs =
    direct := Footprint.add_site !direct;
    match value_of regs Insn.RAX with
    | Const nr ->
      let nr = Int64.to_int nr in
      direct := Footprint.add_syscall nr !direct;
      (match Api.vector_of_syscall_nr nr with
       | Some v ->
         (match value_of regs Insn.RSI with
          | Const code -> direct := Footprint.add_vop v (Int64.to_int code) !direct
          | Addr _ | Top -> ())
       | None -> ())
    | Addr _ | Top -> direct := Footprint.add_unresolved !direct
  in
  let step regs (addr, insn, len) =
    match insn with
    | Insn.Mov_ri (r, v) -> Regs.add r (Const v) regs
    | Insn.Xor_rr (d, s) when d = s -> Regs.add d (Const 0L) regs
    | Insn.Xor_rr (d, _) | Insn.Mov_rr (d, _) -> Regs.add d Top regs
    | Insn.Lea_rip (r, disp) ->
      (* rip-relative: next-instruction address + displacement *)
      let target = addr + len + Int32.to_int disp in
      (match ctx.string_at target with
       | Some s ->
         if Pseudo_files.is_pseudo_path s then
           direct := Footprint.add_pseudo s !direct
       | None ->
         (match ctx.resolve_code target with
          | Some (Local_addr a) -> leas := a :: !leas
          | Some (Import _) | None -> ()));
      Regs.add r (Addr target) regs
    | Insn.Add_ri (r, _) | Insn.Sub_ri (r, _) -> Regs.add r Top regs
    | Insn.Cmp_ri _ -> regs
    | Insn.Call_rel disp ->
      let target = addr + len + Int32.to_int disp in
      (match ctx.resolve_code target with
       | Some (Import name) ->
         calls := Import name :: !calls;
         (* vectored syscalls and the syscall() helper called through
            libc: the operation code / number is a call-site scalar *)
         (match name with
          | "ioctl" | "fcntl" | "prctl" ->
            let v =
              match name with
              | "ioctl" -> Api.Ioctl
              | "fcntl" -> Api.Fcntl
              | _ -> Api.Prctl
            in
            (match value_of regs Insn.RSI with
             | Const code ->
               direct := Footprint.add_vop v (Int64.to_int code) !direct
             | Addr _ | Top -> ())
          | "syscall" ->
            direct := Footprint.add_site !direct;
            (match value_of regs Insn.RDI with
             | Const nr ->
               let nr = Int64.to_int nr in
               direct := Footprint.add_syscall nr !direct;
               (* syscall(__NR_ioctl, fd, op, ...): the vectored
                  opcode is the helper's third argument, in RDX *)
               (match Api.vector_of_syscall_nr nr with
                | Some v ->
                  (match value_of regs Insn.RDX with
                   | Const code ->
                     direct := Footprint.add_vop v (Int64.to_int code) !direct
                   | Addr _ | Top -> ())
                | None -> ())
             | Addr _ | Top -> direct := Footprint.add_unresolved !direct)
          | _ -> ())
       | Some (Local_addr a) -> calls := Local_addr a :: !calls
       | None -> ());
      clobber regs
    | Insn.Call_reg r ->
      (match value_of regs r with
       | Addr a ->
         (match ctx.resolve_code a with
          | Some t -> calls := t :: !calls
          | None -> ())
       | Const _ | Top -> ());
      clobber regs
    | Insn.Call_mem_rip _ -> clobber regs
    | Insn.Syscall | Insn.Int80 | Insn.Sysenter ->
      record_syscall regs;
      Regs.add Insn.RAX Top regs
    | Insn.Jmp_rel _ | Insn.Jcc_rel _ | Insn.Jmp_mem_rip _ | Insn.Ret -> regs
    | Insn.Push_r _ -> regs
    | Insn.Pop_r r -> Regs.add r Top regs
    | Insn.Nop | Insn.Unknown _ -> regs
  in
  let _ = List.fold_left step Regs.empty insns in
  { direct = !direct; calls = List.rev !calls; lea_code_targets = !leas }
