(** Intra-procedural scan of a single function (Section 7): constant
    tracking of the registers that carry system call numbers and
    vectored opcodes along a linear pass, call-edge collection, and
    the lea-based function-pointer over-approximation.

    This is the control-flow-blind baseline; {!Dataflow} runs the same
    recovery over a basic-block CFG and is what the pipeline uses by
    default. The precision audit compares the two. *)

type value =
  | Const of int64  (** register holds a known immediate *)
  | Addr of int  (** register holds a rip-relative materialized address *)
  | Top  (** statically unknown *)

type call_target =
  | Local_addr of int  (** direct call to a code address in this binary *)
  | Import of string  (** call through a PLT stub *)

type result = {
  direct : Footprint.t;
      (** APIs requested by this function's own instructions: resolved
          syscall numbers, opcodes found in the opcode register at
          vectored call sites (inline or through libc's
          ioctl/fcntl/prctl/syscall entry points), and pseudo-file
          strings materialized with lea *)
  calls : call_target list;  (** outgoing direct call edges *)
  lea_code_targets : int list;
      (** function addresses taken with lea: potential indirect call
          targets, over-approximated as callable from this function *)
}

type context = {
  resolve_code : int -> call_target option;
      (** classify a code address: local function start, PLT stub
          (yielding the import name), or neither *)
  string_at : int -> string option;
      (** the NUL-terminated string at a .rodata address, if any *)
}

val scan : context -> (int * Lapis_x86.Insn.t * int) list -> result
(** Scan one function given its [(address, instruction, length)]
    listing; lengths come from the decoder, so rip-relative targets
    use the true encoded size. Calls clobber the SysV caller-saved
    registers; a syscall whose number register is unknown increments
    [direct.unresolved_sites], and every site increments
    [direct.syscall_sites]. *)
