(** Parameterized function summaries — one round of interprocedural
    dataflow. When a local function performs syscall-style dispatch on
    a value that is an *argument register at function entry* (the libc
    [syscall()] idiom, or an ioctl wrapper taking the opcode as a
    parameter), the intra-procedural result cannot name the API. The
    {!Dataflow} engine records such sites as a summary; the
    binary-level pass ({!Binary}) then resolves each summary site from
    the constant arguments found at every local call site, attributing
    the recovered APIs to the caller — exactly how the paper's tool
    treats the libc [syscall(3)] helper, generalized to wrappers
    defined inside the binary itself. *)

open Lapis_apidb

type site =
  | Syscall_nr_of of Lapis_x86.Insn.reg
      (** a syscall instruction whose number register holds the
          entry value of this argument register *)
  | Vop_code_of of Api.vector * Lapis_x86.Insn.reg
      (** a vectored call site with a known vector whose opcode
          register holds the entry value of this argument register *)

type t = site list

let empty : t = []
let is_empty (t : t) = t = []

let param_of = function Syscall_nr_of r -> r | Vop_code_of (_, r) -> r

(* Resolve one summary site against the concrete argument values a
   call site provides. Returns the footprint contribution for the
   caller, or [None] when the argument is not constant there. *)
let resolve_site site (values : int64 list) : Footprint.t option =
  match values with
  | [] -> None
  | _ ->
    let fp =
      match site with
      | Syscall_nr_of _ ->
        List.fold_left
          (fun acc v ->
            let nr = Int64.to_int v in
            let acc = Footprint.add_syscall nr acc in
            (* syscall(__NR_ioctl, ...) through a wrapper still counts
               as a vectored site, but the opcode is a second-order
               parameter we do not chase across two frames *)
            acc)
          Footprint.empty values
      | Vop_code_of (v, _) ->
        List.fold_left
          (fun acc code -> Footprint.add_vop v (Int64.to_int code) acc)
          Footprint.empty values
    in
    Some fp

let pp_site ppf = function
  | Syscall_nr_of r ->
    Fmt.pf ppf "syscall(nr=%s@entry)" (Lapis_x86.Insn.reg_name r)
  | Vop_code_of (v, r) ->
    Fmt.pf ppf "%s(op=%s@entry)" (Api.vector_name v)
      (Lapis_x86.Insn.reg_name r)

let pp ppf (t : t) = Fmt.(list ~sep:comma pp_site) ppf t
