(** Parameterized function summaries — one round of interprocedural
    dataflow. When a local function performs syscall-style dispatch on
    a value that is an {e argument register at function entry} (the
    libc [syscall()] idiom, or an ioctl wrapper taking the opcode as a
    parameter), the intra-procedural result cannot name the API. The
    {!Dataflow} engine records such sites as a summary; the
    binary-level pass ({!Binary}) then resolves each summary site from
    the constant arguments found at every local call site, attributing
    the recovered APIs to the caller. *)

open Lapis_apidb

type site =
  | Syscall_nr_of of Lapis_x86.Insn.reg
      (** a syscall instruction whose number register holds the entry
          value of this argument register *)
  | Vop_code_of of Api.vector * Lapis_x86.Insn.reg
      (** a vectored call site with a known vector whose opcode
          register holds the entry value of this argument register *)

type t = site list

val empty : t
val is_empty : t -> bool

val param_of : site -> Lapis_x86.Insn.reg
(** The entry argument register a site dispatches on. *)

val resolve_site : site -> int64 list -> Footprint.t option
(** Resolve one summary site against the concrete values an argument
    register holds at a particular call site; [None] when the argument
    is not constant there (the site stays unresolved for that
    caller). *)

val pp_site : Format.formatter -> site -> unit
val pp : Format.formatter -> t -> unit
