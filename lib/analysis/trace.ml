(** Dynamic system call tracing — the strace analogue.

    The paper validates its static analysis by spot-checking that it
    returns a superset of strace results (Section 2.3). This module
    plays strace's role for the synthetic corpus: it *executes* a
    binary by interpreting the decoded instruction stream — concrete
    register file, call stack, cross-library control transfers through
    the PLT — and records every system call, vectored opcode and
    pseudo-file reference the program actually performs.

    Because execution follows one concrete path, the dynamic footprint
    is a subset of the static one; the test suite asserts exactly
    that containment, automating the paper's spot check in the other
    direction. *)

open Lapis_x86
open Lapis_apidb

type limits = { max_steps : int; max_depth : int }

let default_limits = { max_steps = 200_000; max_depth = 256 }

type outcome =
  | Finished  (** the program returned from its entry point *)
  | Step_limit
  | Depth_limit
  | Wild_jump of int  (** control left every known binary *)

type result = {
  footprint : Footprint.t;
  steps : int;
  outcome : outcome;
}

module Regs = Map.Make (struct
  type t = Insn.reg
  let compare = compare
end)

(* Where an address lives: (binary, text offset). Direct transfers
   (call rel32, jmp rel32, materialized function pointers) are always
   intra-binary — cross-binary control flow goes through the PLT — so
   a target is resolved against the current binary only. Binaries of
   the same kind share load addresses, which makes any other rule
   ambiguous. *)
type location = { bin : Binary.t; addr : int }

let run ?(limits = default_limits) (world : Resolve.world) (bin : Binary.t) :
    result =
  let fp = ref Footprint.empty in
  let steps = ref 0 in
  let regs = ref Regs.empty in
  (* Zero flag after the last cmp: [Some b] when both operands were
     concrete, [None] when the comparison involved an unknown value
     (then conditional jumps deterministically fall through). *)
  let zf = ref None in
  let value r = Option.value ~default:Scan.Top (Regs.find_opt r !regs) in
  let set r v = regs := Regs.add r v !regs in
  let record_syscall () =
    match value Insn.RAX with
    | Scan.Const nr ->
      let nr = Int64.to_int nr in
      fp := Footprint.add_syscall nr !fp;
      (match Api.vector_of_syscall_nr nr with
       | Some v ->
         (match value Insn.RSI with
          | Scan.Const code ->
            fp := Footprint.add_vop v (Int64.to_int code) !fp
          | Scan.Addr _ | Scan.Top -> ())
       | None -> ())
    | Scan.Addr _ | Scan.Top -> fp := Footprint.add_unresolved !fp
  in
  (* resolve a code address: an import's GOT target becomes the
     defining library's export address *)
  let resolve_import loc target =
    (* is [target] a PLT stub? decode it *)
    let img = loc.bin.Binary.image in
    match Lapis_elf.Image.text_offset img target with
    | None -> None
    | Some off ->
      (match Decode.decode_at img.Lapis_elf.Image.text off with
       | Insn.Jmp_mem_rip disp, 6 ->
         let got = target + 6 + Int32.to_int disp in
         (match Lapis_elf.Image.import_via_got img got with
          | Some name ->
            fp := Footprint.add_import name !fp;
            (match world.Resolve.def_lib name with
             | Some soname ->
               (match Hashtbl.find_opt world.Resolve.libs soname with
                | Some lib ->
                  (match Lapis_elf.Image.find_symbol lib.Binary.image name with
                   | Some sym ->
                     Some { bin = lib; addr = sym.Lapis_elf.Image.sym_addr }
                   | None -> None)
                | None -> None)
             | None -> None)
          | None -> None)
       | _ -> None)
  in
  let rec exec loc depth : outcome =
    if depth > limits.max_depth then Depth_limit
    else begin
      let img = loc.bin.Binary.image in
      match Lapis_elf.Image.text_offset img loc.addr with
      | None -> Wild_jump loc.addr
      | Some off ->
        if !steps >= limits.max_steps then Step_limit
        else begin
          incr steps;
          let insn, len = Decode.decode_at img.Lapis_elf.Image.text off in
          let next = { loc with addr = loc.addr + len } in
          match insn with
          | Insn.Ret -> Finished
          | Insn.Mov_ri (r, v) ->
            set r (Scan.Const v);
            exec next depth
          | Insn.Xor_rr (d, s) when d = s ->
            set d (Scan.Const 0L);
            exec next depth
          | Insn.Mov_rr (d, s) ->
            (* concrete interpretation: copy the source value *)
            set d (value s);
            exec next depth
          | Insn.Xor_rr (d, _) ->
            set d Scan.Top;
            zf := None;
            exec next depth
          | Insn.Cmp_ri (r, imm) ->
            (zf :=
               match value r with
               | Scan.Const v -> Some (Int64.equal v (Int64.of_int32 imm))
               | Scan.Addr _ | Scan.Top -> None);
            exec next depth
          | Insn.Jcc_rel (cc, disp) ->
            let taken =
              if cc = Insn.cc_e then !zf = Some true
              else if cc = Insn.cc_ne then !zf = Some false
              else false
            in
            if taken then
              exec { loc with addr = loc.addr + len + Int32.to_int disp } depth
            else exec next depth
          | Insn.Lea_rip (r, disp) ->
            let target = loc.addr + len + Int32.to_int disp in
            (match Binary.string_at img target with
             | Some s ->
               if Pseudo_files.is_pseudo_path s then
                 fp := Footprint.add_pseudo s !fp
             | None -> ());
            set r (Scan.Addr target);
            exec next depth
          | Insn.Add_ri (r, imm) ->
            (match value r with
             | Scan.Const v -> set r (Scan.Const (Int64.add v (Int64.of_int32 imm)))
             | Scan.Addr _ | Scan.Top -> set r Scan.Top);
            zf := None;
            exec next depth
          | Insn.Sub_ri (r, imm) ->
            (match value r with
             | Scan.Const v -> set r (Scan.Const (Int64.sub v (Int64.of_int32 imm)))
             | Scan.Addr _ | Scan.Top -> set r Scan.Top);
            zf := None;
            exec next depth
          | Insn.Pop_r r ->
            set r Scan.Top;
            exec next depth
          | Insn.Push_r _ | Insn.Nop | Insn.Unknown _ -> exec next depth
          | Insn.Syscall | Insn.Int80 | Insn.Sysenter ->
            record_syscall ();
            set Insn.RAX Scan.Top;
            exec next depth
          | Insn.Call_rel disp ->
            let target = loc.addr + len + Int32.to_int disp in
            let callee =
              match resolve_import loc target with
              | Some callee -> Some callee
              | None ->
                if Option.is_some (Lapis_elf.Image.text_offset img target)
                then Some { loc with addr = target }
                else None
            in
            (match callee with
             | None -> Wild_jump target
             | Some callee ->
               (match exec callee (depth + 1) with
                | Finished -> exec next depth
                | stop -> stop))
          | Insn.Call_reg r ->
            (match value r with
             | Scan.Addr target
               when Option.is_some (Lapis_elf.Image.text_offset img target) ->
               (match exec { loc with addr = target } (depth + 1) with
                | Finished -> exec next depth
                | stop -> stop)
             | Scan.Addr _ | Scan.Const _ | Scan.Top ->
               (* indirect call through an unknown pointer: skip, as a
                  debugger single-stepping over a bad call would *)
               exec next depth)
          | Insn.Call_mem_rip _ ->
            (* not emitted by the generator; treat as a no-op call *)
            exec next depth
          | Insn.Jmp_rel disp ->
            exec { loc with addr = loc.addr + len + Int32.to_int disp } depth
          | Insn.Jmp_mem_rip disp ->
            (* a PLT stub entered directly: tail-transfer *)
            let got = loc.addr + len + Int32.to_int disp in
            (match Lapis_elf.Image.import_via_got img got with
             | Some name ->
               fp := Footprint.add_import name !fp;
               (match world.Resolve.def_lib name with
                | Some soname ->
                  (match Hashtbl.find_opt world.Resolve.libs soname with
                   | Some lib ->
                     (match
                        Lapis_elf.Image.find_symbol lib.Binary.image name
                      with
                      | Some sym ->
                        exec
                          { bin = lib; addr = sym.Lapis_elf.Image.sym_addr }
                          depth
                      | None -> Finished)
                   | None -> Finished)
                | None -> Finished)
             | None -> Wild_jump got)
        end
    end
  in
  let outcome =
    match Binary.entry_points bin with
    | [] -> Finished
    | entry :: _ ->
      (match Lapis_elf.Image.find_symbol bin.Binary.image entry with
       | Some sym ->
         exec { bin; addr = sym.Lapis_elf.Image.sym_addr } 0
       | None -> Finished)
  in
  (* fuel accounting: a pathological program (e.g. a fuzzed self-jump
     loop) burns its step or depth budget and stops here, counted —
     the interpreter's partial footprint is still returned *)
  (match outcome with
   | Step_limit | Depth_limit ->
     Lapis_perf.Stage.incr "fuel:trace-exhausted"
   | Finished | Wild_jump _ -> ());
  { footprint = !fp; steps = !steps; outcome }

(* The containment the paper spot-checks: every system call and
   hard-coded path observed dynamically must have been predicted
   statically. Vectored opcodes are excluded from the comparison: a
   concrete execution can issue e.g. fcntl with whatever value the
   opcode register happens to hold at that point (strace would report
   it), which no static analysis can know — the register's content is
   input- and schedule-dependent. Returns the APIs the static
   analysis missed (expected: none). *)
let static_misses world bin =
  let dynamic = (run world bin).footprint in
  let static = Resolve.binary_footprint world bin in
  Api.Set.diff dynamic.Footprint.apis static.Footprint.apis
  |> Api.Set.filter (fun api ->
         match api with
         | Api.Syscall _ | Api.Pseudo_file _ | Api.Libc_sym _ -> true
         | Api.Vop _ -> false)
