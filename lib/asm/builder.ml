(** Two-pass assembler: expands {!Program.op} lists into the
    {!Lapis_x86.Insn} subset, lays out functions, PLT stubs, strings
    and the GOT, then emits an {!Lapis_elf.Image.t} ready for
    {!Lapis_elf.Writer}. All emitted relative displacements are imm32,
    so instruction sizes are layout-independent and one sizing pass
    suffices. *)

open Lapis_x86

(* Pre-instructions: concrete instructions plus symbolic references
   that are resolved once addresses are known. *)
type pre =
  | I of Insn.t
  | Call_fn of string  (** call rel32 to a local function *)
  | Call_stub of string  (** call rel32 to an import's PLT stub *)
  | Lea_str of Insn.reg * string  (** lea reg, [rip + &string] *)
  | Lea_fn of Insn.reg * string  (** lea reg, [rip + &function] *)
  | Stub_jmp of string  (** PLT stub body: jmp [rip + &got_slot] *)

let pre_size = function
  | I insn -> Encode.length insn
  | Call_fn _ | Call_stub _ -> 5
  | Lea_str _ | Lea_fn _ -> 7
  | Stub_jmp _ -> 6

exception Unknown_symbol of string

let expand_op (op : Program.op) : pre list =
  match op with
  | Program.Direct_syscall nr ->
    [ I (Insn.Mov_ri (Insn.RAX, Int64.of_int nr)); I Insn.Syscall ]
  | Program.Direct_syscall_unknown ->
    [ I (Insn.Mov_rr (Insn.RAX, Insn.R12)); I Insn.Syscall ]
  | Program.Int80_syscall nr ->
    [ I (Insn.Mov_ri (Insn.RAX, Int64.of_int nr)); I Insn.Int80 ]
  | Program.Vectored_syscall (v, code) ->
    [ I (Insn.Mov_ri (Insn.RDI, 3L));
      I (Insn.Mov_ri (Insn.RSI, Int64.of_int code));
      I (Insn.Mov_ri (Insn.RAX,
                      Int64.of_int (Lapis_apidb.Api.vector_syscall_nr v)));
      I Insn.Syscall ]
  | Program.Call_local f -> [ Call_fn f ]
  | Program.Call_import f -> [ Call_stub f ]
  | Program.Call_import_vop (f, _, code) ->
    [ I (Insn.Mov_ri (Insn.RSI, Int64.of_int code)); Call_stub f ]
  | Program.Call_syscall_import nr ->
    [ I (Insn.Mov_ri (Insn.RDI, Int64.of_int nr)); Call_stub "syscall" ]
  | Program.Call_syscall_import_vop (v, code) ->
    [ I (Insn.Mov_ri (Insn.RDI,
                      Int64.of_int (Lapis_apidb.Api.vector_syscall_nr v)));
      I (Insn.Mov_ri (Insn.RDX, Int64.of_int code));
      Call_stub "syscall" ]
  | Program.Cond_branch_syscall (a, b) ->
    (* both arms set rax then merge into the one syscall below *)
    let mov_a = I (Insn.Mov_ri (Insn.RAX, Int64.of_int a)) in
    let mov_b = I (Insn.Mov_ri (Insn.RAX, Int64.of_int b)) in
    let skip_a = pre_size mov_a + 5 (* jmp *) in
    [ I (Insn.Cmp_ri (Insn.RDI, 0l));
      I (Insn.Jcc_rel (Insn.cc_e, Int32.of_int skip_a));
      mov_a;
      I (Insn.Jmp_rel (Int32.of_int (pre_size mov_b)));
      mov_b;
      I Insn.Syscall ]
  | Program.Skip_clobber_syscall (nr, helper) ->
    (* je jumps straight to the syscall; the fallthrough path calls a
       helper (clobbering rax in a linear reading) and jumps past the
       syscall — so on every path that executes it, rax holds [nr] *)
    [ I (Insn.Mov_ri (Insn.RAX, Int64.of_int nr));
      I (Insn.Cmp_ri (Insn.RDI, 0l));
      I (Insn.Jcc_rel (Insn.cc_e, Int32.of_int (5 (* call *) + 5 (* jmp *))));
      Call_fn helper;
      I (Insn.Jmp_rel 2l (* over the syscall *));
      I Insn.Syscall ]
  | Program.Jump_over_decoy_syscall (real, decoy) ->
    let mov_decoy = I (Insn.Mov_ri (Insn.RAX, Int64.of_int decoy)) in
    [ I (Insn.Mov_ri (Insn.RAX, Int64.of_int real));
      I (Insn.Jmp_rel (Int32.of_int (pre_size mov_decoy)));
      mov_decoy (* dead code: never executed, linear scans still read it *);
      I Insn.Syscall ]
  | Program.Call_wrapper (f, nr) ->
    [ I (Insn.Mov_ri (Insn.RDI, Int64.of_int nr)); Call_fn f ]
  | Program.Arg_syscall ->
    [ I (Insn.Mov_rr (Insn.RAX, Insn.RDI)); I Insn.Syscall ]
  | Program.Use_string s -> [ Lea_str (Insn.RDI, s) ]
  | Program.Take_fnptr f -> [ Lea_fn (Insn.RAX, f); I (Insn.Call_reg Insn.RAX) ]
  | Program.Serving_loop f ->
    (* call f; mov rbx, 0; cmp rbx, 1; je back-to-the-call — a backward
       conditional branch around the serving call.  The CFG engine sees
       the retreating edge and marks the call block as the loop head
       (the phase transition); the zeroed rbx never equals 1, so the
       dynamic tracer runs the body exactly once and falls through.
       rbx is written only after the call, leaving the call-site
       argument registers untouched. *)
    let call = Call_fn f in
    let mov = I (Insn.Mov_ri (Insn.RBX, 0L)) in
    let cmp = I (Insn.Cmp_ri (Insn.RBX, 1l)) in
    let jcc_size = pre_size (I (Insn.Jcc_rel (Insn.cc_e, 0l))) in
    let back =
      -(pre_size call + pre_size mov + pre_size cmp + jcc_size)
    in
    [ call; mov; cmp; I (Insn.Jcc_rel (Insn.cc_e, Int32.of_int back)) ]
  | Program.Padding n -> List.init n (fun _ -> I Insn.Nop)

let prologue = [ I (Insn.Push_r Insn.RBP); I (Insn.Mov_rr (Insn.RBP, Insn.RSP)) ]
let epilogue = [ I (Insn.Pop_r Insn.RBP); I Insn.Ret ]

let func_pres (f : Program.func) =
  prologue @ List.concat_map expand_op f.Program.ops @ epilogue

(* Collect, in deterministic order, the import names and strings a
   program references. *)
let collect_refs (prog : Program.t) =
  let imports = ref [] and strings = ref [] in
  let seen_imports = Hashtbl.create 64 and seen_strings = Hashtbl.create 64 in
  let add_to seen lst x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.replace seen x ();
      lst := x :: !lst
    end
  in
  let add lst x =
    add_to (if lst == imports then seen_imports else seen_strings) lst x
  in
  List.iter
    (fun (f : Program.func) ->
      List.iter
        (fun (op : Program.op) ->
          match op with
          | Program.Call_import name | Program.Call_import_vop (name, _, _) ->
            add imports name
          | Program.Call_syscall_import _ | Program.Call_syscall_import_vop _
            ->
            add imports "syscall"
          | Program.Use_string s -> add strings s
          | Program.Direct_syscall _ | Program.Direct_syscall_unknown
          | Program.Int80_syscall _ | Program.Vectored_syscall _
          | Program.Call_local _ | Program.Take_fnptr _ | Program.Padding _
          | Program.Cond_branch_syscall _ | Program.Skip_clobber_syscall _
          | Program.Jump_over_decoy_syscall _ | Program.Call_wrapper _
          | Program.Arg_syscall | Program.Serving_loop _ ->
            ())
        f.Program.ops)
    prog.Program.funcs;
  (List.rev !imports, List.rev !strings)

let assemble (prog : Program.t) : Lapis_elf.Image.t =
  let imports, strings = collect_refs prog in
  (* --- sizing pass --- *)
  let bodies =
    List.map (fun f -> (f, func_pres f)) prog.Program.funcs
  in
  let fn_offsets = Hashtbl.create 64 in
  let cursor = ref 0 in
  let fn_sizes =
    List.map
      (fun ((f : Program.func), pres) ->
        let size = List.fold_left (fun a p -> a + pre_size p) 0 pres in
        Hashtbl.replace fn_offsets f.Program.fname !cursor;
        cursor := !cursor + size;
        (f, pres, size))
      bodies
  in
  let stub_offsets = Hashtbl.create 16 in
  List.iter
    (fun name ->
      Hashtbl.replace stub_offsets name !cursor;
      cursor := !cursor + 6)
    imports;
  let text_size = !cursor in
  (* --- string table layout --- *)
  let str_offsets = Hashtbl.create 64 in
  let rodata_buf = Buffer.create 256 in
  List.iter
    (fun s ->
      Hashtbl.replace str_offsets s (Buffer.length rodata_buf);
      Buffer.add_string rodata_buf s;
      Buffer.add_char rodata_buf '\x00')
    strings;
  let rodata = Buffer.contents rodata_buf in
  (* --- address layout --- *)
  let layout =
    Lapis_elf.Layout.compute ~kind:prog.Program.kind
      ~interp:prog.Program.interp ~text_size
      ~rodata_size:(String.length rodata)
      ~n_imports:(List.length imports)
  in
  let text_addr = layout.Lapis_elf.Layout.text_addr in
  let fn_addr name =
    match Hashtbl.find_opt fn_offsets name with
    | Some off -> text_addr + off
    | None -> raise (Unknown_symbol name)
  in
  let stub_addr name =
    match Hashtbl.find_opt stub_offsets name with
    | Some off -> text_addr + off
    | None -> raise (Unknown_symbol name)
  in
  let str_addr s =
    layout.Lapis_elf.Layout.rodata_addr + Hashtbl.find str_offsets s
  in
  let got_index = Hashtbl.create 16 in
  List.iteri (fun i name -> Hashtbl.replace got_index name i) imports;
  let got_slot name =
    match Hashtbl.find_opt got_index name with
    | Some i -> Lapis_elf.Layout.got_slot layout i
    | None -> raise (Unknown_symbol name)
  in
  (* --- emission pass --- *)
  let text = Buffer.create text_size in
  let emit_pre addr pre =
    let insn =
      match pre with
      | I insn -> insn
      | Call_fn f -> Insn.Call_rel (Int32.of_int (fn_addr f - (addr + 5)))
      | Call_stub f -> Insn.Call_rel (Int32.of_int (stub_addr f - (addr + 5)))
      | Lea_str (r, s) -> Insn.Lea_rip (r, Int32.of_int (str_addr s - (addr + 7)))
      | Lea_fn (r, f) -> Insn.Lea_rip (r, Int32.of_int (fn_addr f - (addr + 7)))
      | Stub_jmp name ->
        Insn.Jmp_mem_rip (Int32.of_int (got_slot name - (addr + 6)))
    in
    Encode.encode_into text insn
  in
  List.iter
    (fun ((_ : Program.func), pres, _) ->
      List.iter
        (fun pre ->
          let addr = text_addr + Buffer.length text in
          emit_pre addr pre)
        pres)
    fn_sizes;
  List.iter
    (fun name ->
      let addr = text_addr + Buffer.length text in
      emit_pre addr (Stub_jmp name))
    imports;
  assert (Buffer.length text = text_size);
  (* --- symbols --- *)
  let symbols =
    List.map
      (fun ((f : Program.func), _, size) ->
        {
          Lapis_elf.Image.sym_name = f.Program.fname;
          sym_addr = fn_addr f.Program.fname;
          sym_size = size;
          sym_global = f.Program.global;
        })
      fn_sizes
  in
  let entry =
    match prog.Program.entry_fn with Some f -> fn_addr f | None -> 0
  in
  {
    Lapis_elf.Image.kind = prog.Program.kind;
    entry;
    text = Buffer.contents text;
    text_addr;
    rodata;
    rodata_addr = layout.Lapis_elf.Layout.rodata_addr;
    symbols;
    imports;
    plt_got = List.map (fun n -> (n, got_slot n)) imports;
    needed = prog.Program.needed;
    soname = prog.Program.soname;
    interp = prog.Program.interp;
  }

(* Convenience: assemble straight to ELF bytes. *)
let assemble_elf prog =
  let img = Lapis_perf.Stage.time "asm:assemble" (fun () -> assemble prog) in
  Lapis_perf.Stage.time "asm:write" (fun () -> Lapis_elf.Writer.write img)
