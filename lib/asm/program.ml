(** High-level description of a synthetic binary: functions made of
    operations that exercise exactly the code patterns the paper's
    static analysis recognizes — direct syscall instructions with
    immediate numbers, vectored syscalls with immediate opcodes, calls
    through the PLT (including the libc [syscall] helper), hard-coded
    pseudo-file strings, and lea-materialized function pointers. *)

type op =
  | Direct_syscall of int
      (** mov eax, nr; syscall — inline system call *)
  | Direct_syscall_unknown
      (** syscall with the number computed at run time: the ~4% of
          call sites the paper could not resolve (Section 2.4) *)
  | Int80_syscall of int  (** legacy int $0x80 gate *)
  | Vectored_syscall of Lapis_apidb.Api.vector * int
      (** inline ioctl/fcntl/prctl with an immediate operation code *)
  | Call_local of string  (** direct call to a function in this binary *)
  | Call_import of string  (** call through the PLT *)
  | Call_import_vop of string * Lapis_apidb.Api.vector * int
      (** call ioctl/fcntl/prctl through libc with an immediate code *)
  | Call_syscall_import of int
      (** call libc's syscall() wrapper with an immediate number *)
  | Call_syscall_import_vop of Lapis_apidb.Api.vector * int
      (** call libc's syscall() wrapper with the number of a vectored
          syscall in rdi and the operation code in rdx — e.g.
          [syscall(__NR_ioctl, fd, TCGETS)] *)
  | Cond_branch_syscall of int * int
      (** a compare-and-branch choosing between two syscall numbers,
          both arms merging into one syscall instruction: only a
          join-aware analysis sees both *)
  | Skip_clobber_syscall of int * string
      (** set the number, then branch either directly to the syscall
          or into a helper call (which clobbers rax) that jumps past
          it: on every executable path the number is known, but a
          control-flow-blind scan walks through the clobbering call *)
  | Jump_over_decoy_syscall of int * int
      (** set the real number, jump over a dead [mov] of a decoy
          number into the syscall: a linear scan reports the decoy *)
  | Call_wrapper of string * int
      (** pass a syscall number in rdi to a local wrapper function
          that performs the syscall on its argument (see
          {!Arg_syscall}) — resolved only by function summaries *)
  | Arg_syscall
      (** wrapper body: mov rax, rdi; syscall — the in-binary analogue
          of libc's [syscall()] helper *)
  | Use_string of string
      (** materialize a .rodata string address (hard-coded path) *)
  | Take_fnptr of string
      (** lea of a local function then an indirect call — the
          over-approximated function-pointer pattern of Section 7 *)
  | Serving_loop of string
      (** the marked phase-transition point of a two-phase program: a
          backward conditional branch around a call to the named local
          function — the serving loop.  Everything emitted before this
          op belongs to the initialization phase, the loop body to the
          steady state.  The loop condition compares a
          freshly-zeroed register against a nonzero immediate, so the
          dynamic tracer executes the body exactly once and falls
          through *)
  | Padding of int  (** filler nops, for realistic function sizes *)

type func = {
  fname : string;
  global : bool;
  ops : op list;
}

type t = {
  kind : Lapis_elf.Image.kind;
  entry_fn : string option;  (** e_entry function, executables only *)
  funcs : func list;
  needed : string list;
  soname : string option;
  interp : string option;
}

let func ?(global = true) fname ops = { fname; global; ops }

let executable ?(interp = Some "/lib64/ld-linux-x86-64.so.2") ~entry_fn
    ~needed funcs =
  {
    kind =
      (if needed = [] && interp = None then Lapis_elf.Image.Exec_static
       else Lapis_elf.Image.Exec_dynamic);
    entry_fn = Some entry_fn;
    funcs;
    needed;
    soname = None;
    interp = (if needed = [] then None else interp);
  }

let shared_lib ~soname ~needed funcs =
  {
    kind = Lapis_elf.Image.Shared_lib;
    entry_fn = None;
    funcs;
    needed;
    soname = Some soname;
    interp = None;
  }
