(** Public umbrella API for the Linux API usage study (lapis).

    This library re-exports every component of the reproduction of
    "A Study of Modern Linux API Usage and Compatibility: What to
    Support When You're Supporting" (EuroSys 2016):

    - {!Apidb}: embedded databases — the x86-64 syscall table,
      vectored opcodes, pseudo-files, the glibc export catalogue,
      variant families, and system/libc-variant profiles.
    - {!Elf}, {!X86}, {!Asm}: the binary substrate — ELF64
      reader/writer, the x86-64 instruction subset, and the assembler
      used to synthesize a distribution of real binaries.
    - {!Analysis}: the paper's measurement tool — disassembly,
      call-graph construction, syscall/opcode/pseudo-file extraction,
      and cross-library footprint resolution.
    - {!Distro}: the calibrated synthetic Ubuntu-like distribution and
      popularity-contest model.
    - {!Db}: the in-memory relational store, the end-to-end pipeline
      and versioned world snapshots (analyze once, query many).
    - {!Query}: the indexed compatibility query engine and the
      line-delimited JSON serving loop behind [lapis query]/[serve].
    - {!Fuzz}: the mutational fuzz harness that hardens the ingestion
      path — seeded ELF mutations driven through parse/analyze/resolve
      with structured-error and crash-containment assertions.
    - {!Metrics}: API importance, weighted completeness, unweighted
      importance, footprint uniqueness, and the Monte-Carlo validator.
    - {!Study}: one module per figure/table of the paper's evaluation.
    - {!Report}: plain-text rendering for the experiment harness.

    Quickstart:
    {[
      let env = Core.Study.Env.create () in
      print_string Core.Study.(Fig3.render (Fig3.run env))
    ]} *)

module Apidb = struct
  module Api = Lapis_apidb.Api
  module Syscall_table = Lapis_apidb.Syscall_table
  module Stages = Lapis_apidb.Stages
  module Vectored = Lapis_apidb.Vectored
  module Pseudo_files = Lapis_apidb.Pseudo_files
  module Libc_catalog = Lapis_apidb.Libc_catalog
  module Variants = Lapis_apidb.Variants
  module Systems = Lapis_apidb.Systems
  module Libc_variants = Lapis_apidb.Libc_variants
end

module X86 = struct
  module Insn = Lapis_x86.Insn
  module Encode = Lapis_x86.Encode
  module Decode = Lapis_x86.Decode
end

module Elf = struct
  module Image = Lapis_elf.Image
  module Layout = Lapis_elf.Layout
  module Writer = Lapis_elf.Writer
  module Reader = Lapis_elf.Reader
  module Classify = Lapis_elf.Classify
end

module Asm = struct
  module Program = Lapis_asm.Program
  module Builder = Lapis_asm.Builder
end

module Analysis = struct
  module Footprint = Lapis_analysis.Footprint
  module Scan = Lapis_analysis.Scan
  module Cfg = Lapis_analysis.Cfg
  module Dataflow = Lapis_analysis.Dataflow
  module Summary = Lapis_analysis.Summary
  module Binary = Lapis_analysis.Binary
  module Phase = Lapis_analysis.Phase
  module Resolve = Lapis_analysis.Resolve
  module Trace = Lapis_analysis.Trace
  module Audit = Lapis_analysis.Audit
end

module Distro = struct
  module Rng = Lapis_distro.Rng
  module Package = Lapis_distro.Package
  module Roster = Lapis_distro.Roster
  module Libc_gen = Lapis_distro.Libc_gen
  module Generator = Lapis_distro.Generator
end

module Db = struct
  module Store = Lapis_store.Store
  module Pipeline = Lapis_store.Pipeline
  module Snapshot = Lapis_store.Snapshot
end

module Query = struct
  module Engine = Lapis_query.Query
  module Json = Lapis_query.Json
  module Protocol = Lapis_query.Protocol
  module Serve = Lapis_query.Serve
  module Lru = Lapis_query.Lru
  module Server = Lapis_query.Server
  module Router = Lapis_query.Router
end

module Fuzz = struct
  module Mutate = Lapis_fuzz.Mutate
  module Harness = Lapis_fuzz.Harness
end

module Metrics = struct
  module Importance = Lapis_metrics.Importance
  module Completeness = Lapis_metrics.Completeness
  module Uniqueness = Lapis_metrics.Uniqueness
  module Montecarlo = Lapis_metrics.Montecarlo
end

module Study = struct
  module Env = Lapis_study.Env
  module Experiments = Lapis_study.Experiments
  module Fig1 = Lapis_study.Fig1
  module Fig2 = Lapis_study.Fig2
  module Fig3 = Lapis_study.Fig3
  module Fig4 = Lapis_study.Fig4
  module Fig5 = Lapis_study.Fig5
  module Fig6 = Lapis_study.Fig6
  module Fig7 = Lapis_study.Fig7
  module Fig8 = Lapis_study.Fig8
  module Table1 = Lapis_study.Table1
  module Table2 = Lapis_study.Table2
  module Table3 = Lapis_study.Table3
  module Table4 = Lapis_study.Table4
  module Table5 = Lapis_study.Table5
  module Table6 = Lapis_study.Table6
  module Table7 = Lapis_study.Table7
  module Variant_tables = Lapis_study.Variant_tables
  module Section6 = Lapis_study.Section6
  module Tracer = Lapis_study.Tracer
  module Precision = Lapis_study.Precision
  module Phases = Lapis_study.Phases
  module Full_path = Lapis_study.Full_path
  module Ablations = Lapis_study.Ablations
end

module Report = struct
  module Render = Lapis_report.Report
end

module Perf = struct
  module Stage = Lapis_perf.Stage
  module Histogram = Lapis_perf.Histogram
  module Parmap = Lapis_perf.Parmap
  module Bitset = Lapis_perf.Bitset
  module Baseline = Lapis_perf.Baseline
end
