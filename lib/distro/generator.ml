(** Calibrated synthetic-distribution generator.

    Builds a Ubuntu-like repository of packages whose binaries are real
    ELF64 files containing real machine code. Calibration targets are
    the paper's published anchors: the Table 4 stage structure drives
    weighted completeness (Figure 3), per-stage importance bands drive
    Figure 2, Tables 8-11 unweighted adoption rates are honored
    per-syscall, Tables 1-2 attributions are seeded through
    {!Roster}, and the libc-export tiers of {!Lapis_apidb.Libc_catalog}
    drive Figure 7.

    The generator also records, per package, the exact API set its
    binaries request (ground truth); the analyzer must recover it from
    the bytes alone, which automates the paper's strace spot check. *)

open Lapis_apidb
module P = Package

type config = {
  n_packages : int;
  seed : int;
  total_installs : int;
}

let default_config =
  { n_packages = 1400; seed = 42; total_installs = 2_935_744 }

(* ------------------------------------------------------------------ *)
(* Package specs under construction                                    *)
(* ------------------------------------------------------------------ *)

type emit_mode = Via_wrapper | Direct | Via_syscall_fn

type spec = {
  g_name : string;
  g_section : string;
  mutable g_prob : float;
  mutable g_level : int;
  g_essential : bool;
  mutable g_syscalls : string list;
  mutable g_vops : (Api.vector * int) list;
  mutable g_pseudo : string list;
  mutable g_imports : string list;
  mutable g_lib_imports : (string * Roster.lib_export) list;
      (** (soname, export) of non-runtime libraries *)
  mutable g_deps : string list;
  mutable g_scripts : string list;  (** interpreter program paths *)
  g_static : bool;
  g_int80 : bool;
  g_is_lib_pkg : Roster.lib_pkg option;
  g_util_of : Roster.lib_pkg option;
      (** numactl-style utility package exercising a library *)
}

let add_unique lst x = if List.mem x !lst then () else lst := x :: !lst

let add_syscall spec s =
  if not (List.mem s spec.g_syscalls) then
    spec.g_syscalls <- s :: spec.g_syscalls

let add_vop spec v = if not (List.mem v spec.g_vops) then spec.g_vops <- v :: spec.g_vops
let add_pseudo spec p =
  if not (List.mem p spec.g_pseudo) then spec.g_pseudo <- p :: spec.g_pseudo
let add_import spec i =
  if not (List.mem i spec.g_imports) then spec.g_imports <- i :: spec.g_imports
let add_dep spec d =
  if not (List.mem d spec.g_deps) then spec.g_deps <- d :: spec.g_deps

(* ------------------------------------------------------------------ *)
(* Stage machinery                                                     *)
(* ------------------------------------------------------------------ *)

(* System calls that behave like base calls for level-nesting purposes
   even though Table 4 stages them late: glibc's pthread_create touches
   the scheduling controls, which is what sinks Graphene in Table 6. *)
let nesting_exempt =
  [ "sched_setscheduler"; "sched_setparam"; "sched_getscheduler" ]

let stage_rank name =
  if List.mem name nesting_exempt then 1
  else
    match Stages.stage_of_name name with
    | Stages.S1 -> 1
    | Stages.S2 -> 2
    | Stages.S3 -> 3
    | Stages.S4 -> 4
    | Stages.S5_essential | Stages.S5_medium | Stages.S5_low -> 5
    | Stages.Tail | Stages.Retired -> 6
    | Stages.Unused | Stages.No_entry -> 7

let vector_stage = function
  | Api.Ioctl -> 2
  | Api.Fcntl -> 1
  | Api.Prctl -> 3

(* Highest stage a libc export's syscalls (including those implied by
   its vectored opcodes) reach: packages may only import symbols
   compatible with their level. *)
let symbol_stage (e : Libc_catalog.entry) =
  let from_syscalls =
    List.fold_left
      (fun acc s -> max acc (stage_rank s))
      1
      (if e.Libc_catalog.name = "syscall" then [] else e.Libc_catalog.syscalls)
  in
  List.fold_left
    (fun acc (v, _) -> max acc (vector_stage v))
    from_syscalls e.Libc_catalog.vops

(* ------------------------------------------------------------------ *)
(* Adoption targets                                                    *)
(* ------------------------------------------------------------------ *)

(* Libc-export adoption overrides (fraction of packages importing the
   symbol); everything else follows its catalogue tier. Zeroed symbols
   are either emitted through dedicated mechanisms (the vectored
   wrappers, whose call sites must set the opcode register) or wrap
   system calls the study requires to stay unused (Table 3). *)
let import_overrides =
  [ ("ioctl", 0.0); ("fcntl", 0.0); ("prctl", 0.0); ("syscall", 0.0);
    ("mq_notify", 0.0); ("remap_file_pages", 0.0); ("move_pages", 0.0);
    ("nfsservctl", 0.0); ("sysctl", 0.0); ("ustat", 0.0);
    ("uselib_wrapper", 0.0); ("getpmsg_wrapper", 0.0);
    ("putpmsg_wrapper", 0.0); ("quotactl", 0.0); ("migrate_pages", 0.0);
    ("mbind", 0.0); ("set_mempolicy", 0.0); ("get_mempolicy", 0.0);
    ("pthread_create", 0.90); ("pthread_join", 0.60);
    ("pthread_mutex_lock", 0.65); ("pthread_mutex_unlock", 0.65);
    ("__isoc99_scanf", 0.06); ("__isoc99_fscanf", 0.10);
    ("__isoc99_sscanf", 0.30); ("__isoc99_vscanf", 0.005);
    ("__isoc99_vfscanf", 0.01); ("__isoc99_vsscanf", 0.04);
    ("__isoc99_wscanf", 0.005); ("__isoc99_fwscanf", 0.005);
    ("__isoc99_swscanf", 0.01);
    ("strverscmp", 0.008); ("strfry", 0.003); ("memfrob", 0.004);
    ("gnu_get_libc_version", 0.04); ("gnu_get_libc_release", 0.015);
    ("canonicalize_file_name", 0.03);
    ("get_current_dir_name", 0.05); ("secure_getenv", 0.04);
    ("getauxval", 0.04); ("euidaccess", 0.01); ("eaccess", 0.005);
    ("backtrace", 0.03); ("backtrace_symbols", 0.02);
    ("backtrace_symbols_fd", 0.01); ("mtrace", 0.004);
    ("muntrace", 0.004); ("mcheck", 0.003); ("malloc_info", 0.005);
    ("malloc_stats", 0.005); ("mallinfo", 0.02); ("fcloseall", 0.005);
    ("fopencookie", 0.008); ("rpmatch", 0.01); ("error", 0.03);
    ("error_at_line", 0.01); ("random_r", 0.01); ("srandom_r", 0.005);
    ("initstate_r", 0.004); ("setstate_r", 0.004);
    ("memalign", 0.30); ("__cxa_finalize", 0.25); ("stpcpy", 0.45);
    ("timer_create", 0.04); ("timer_settime", 0.04);
    ("splice", 0.03); ("fallocate", 0.05); ("utimensat", 0.08) ]

let tier_adoption seed (e : Libc_catalog.entry) =
  match List.assoc_opt e.Libc_catalog.name import_overrides with
  | Some a -> a
  | None ->
    let h = Rng.keyed_float seed ("imp:" ^ e.Libc_catalog.name) in
    (match e.Libc_catalog.tier with
     | Libc_catalog.Ubiquitous -> 0.25 +. (0.60 *. h)
     | Libc_catalog.High -> 0.04 +. (0.20 *. h)
     | Libc_catalog.Medium -> 0.005 +. (0.035 *. h)
     | Libc_catalog.Rare -> 0.0  (* seeded to 1-2 packages directly *)
     | Libc_catalog.Unused -> 0.0)

(* Adoption targets for system calls the Table 6 evaluation hinges
   on: the blockers of FreeBSD-emu and Graphene must sit at realistic
   rates for the completeness numbers to land near the paper's. *)
let syscall_overrides =
  [ ("iopl", 0.02); ("ioperm", 0.02);
    ("inotify_init", 0.10); ("inotify_add_watch", 0.10);
    ("inotify_rm_watch", 0.05); ("timerfd_create", 0.08);
    ("timerfd_settime", 0.08); ("timerfd_gettime", 0.03);
    ("umount2", 0.04); ("splice", 0.03); ("statfs", 0.22);
    ("getxattr", 0.18); ("fallocate", 0.05); ("eventfd2", 0.10);
    ("epoll_wait", 0.22); ("epoll_ctl", 0.22); ("epoll_create", 0.12);
    ("epoll_create1", 0.12) ]

let syscall_adoption seed name =
  match List.assoc_opt name syscall_overrides with
  | Some a -> a
  | None ->
  match Variants.adoption_target name with
  | Some a -> a
  | None ->
    if List.mem name nesting_exempt then 0.90
    else
      let h = Rng.keyed_float seed ("sys:" ^ name) in
      (match Stages.stage_of_name name with
       | Stages.S2 -> 0.30 +. (0.45 *. h)
       | Stages.S3 -> 0.06 +. (0.22 *. h)
       | Stages.S4 -> 0.02 +. (0.08 *. h)
       | Stages.S5_essential -> 0.01 +. (0.05 *. h)
       | Stages.S5_medium -> 0.01 +. (0.08 *. h)
       | Stages.S5_low -> 0.002 +. (0.012 *. h)
       | Stages.S1 | Stages.Tail | Stages.Retired | Stages.Unused
       | Stages.No_entry -> 0.0)

(* ------------------------------------------------------------------ *)
(* Roster construction and level assignment                            *)
(* ------------------------------------------------------------------ *)

(* Weighted completeness reached after each stage (Table 4). *)
let stage_shares = [| 0.0112; 0.0956; 0.3941; 0.4052; 0.0939 |]

(* Essential packages whose footprints extend into stage V, pinning
   the stage-V-essential calls at 100% importance. *)
let level5_essentials =
  [ "init-system"; "udev"; "dbus"; "rsyslog"; "cron"; "network-manager" ]

let zipf_prob rank = min 0.6 (1.4 /. (float_of_int (rank + 4) ** 0.9))

let build_roster config rng =
  let mk ?(essential = false) ?(static = false) ?(int80 = false)
      ?(lib_pkg = None) ?(util_of = None) ?(level = 0) ~section name prob =
    {
      g_name = name;
      g_section = section;
      g_prob = prob;
      g_level = level;
      g_essential = essential;
      g_syscalls = [];
      g_vops = [];
      g_pseudo = [];
      g_imports = [];
      g_lib_imports = [];
      g_deps = [];
      g_scripts = [];
      g_static = static;
      g_int80 = int80;
      g_is_lib_pkg = lib_pkg;
      g_util_of = util_of;
    }
  in
  let essentials =
    List.map
      (fun (name, prob) ->
        let level =
          if List.mem name level5_essentials then 5
          else if List.mem name [ "dash"; "bash" ] then 3
            (* shells stay at stage III so script-shipping packages do
               not inherit a stage-IV threshold (Figure 3) *)
          else 0
        in
        mk ~essential:true ~section:"admin" ~level name prob)
      Roster.essentials
  in
  (* libc6 ships the runtime; its only executable is ldconfig-like,
     so its own footprint stays at the base (level 1) and it is kept
     out of the essential-owner pools *)
  let libc6 = mk ~section:"libs" ~level:1 "libc6" 0.9995 in
  let interpreters =
    List.map
      (fun (name, prob) -> mk ~section:"interpreters" ~level:3 name prob)
      Roster.interpreters
  in
  let libs =
    List.concat_map
      (fun (lp : Roster.lib_pkg) ->
        (* the library package itself, plus a numactl-style utility
           package that exercises the library's syscall exports *)
        let lib =
          mk ~section:"libs" ~level:5 ~lib_pkg:(Some lp) lp.Roster.lp_name
            lp.Roster.lp_prob
        in
        let util =
          mk ~section:"libutils" ~level:5 ~util_of:(Some lp)
            (lp.Roster.lp_name ^ "-utils")
            (lp.Roster.lp_prob *. 0.9)
        in
        util.g_deps <- [ lp.Roster.lp_name ];
        [ lib; util ])
      Roster.lib_packages
  in
  let specials =
    List.map
      (fun (s : Roster.special) ->
        let spec =
          mk ~section:"otherosfs" ~level:s.Roster.sp_level s.Roster.sp_name
            s.Roster.sp_prob
        in
        spec.g_syscalls <- s.Roster.sp_syscalls;
        spec.g_vops <- s.Roster.sp_vops;
        spec.g_pseudo <- s.Roster.sp_pseudo;
        spec.g_deps <- s.Roster.sp_deps;
        spec)
      Roster.specials
  in
  let qemu =
    let spec = mk ~section:"otherosfs" ~level:5 Roster.qemu_name Roster.qemu_prob in
    (* qemu's MIPS emulator needs 270 system calls (Section 3.2): all
       staged calls except a couple of stage-V stragglers. The stage-I
       base arrives through the runtime, like any dynamic binary. *)
    let all = Stages.cumulative 5 in
    let dropped = "fanotify_init" :: "fanotify_mark" :: Stages.stage1 in
    spec.g_syscalls <- List.filter (fun s -> not (List.mem s dropped)) all;
    spec.g_pseudo <- [ "/dev/kvm"; "/proc/cpuinfo"; "/proc/self/maps" ];
    let kvm_ops =
      Vectored.ioctl_ops
      |> List.filter (fun (o : Vectored.op) ->
             String.length o.Vectored.name >= 3
             && String.sub o.Vectored.name 0 3 = "KVM")
      |> List.map (fun (o : Vectored.op) -> (Api.Ioctl, o.Vectored.code))
    in
    spec.g_vops <- kvm_ops;
    spec
  in
  let int80s =
    List.map
      (fun (name, prob) -> mk ~section:"oldlibs" ~level:3 ~int80:true name prob)
      Roster.legacy_int80
  in
  let fixed =
    essentials @ [ libc6 ] @ interpreters @ libs @ specials @ [ qemu ]
    @ int80s
  in
  let n_filler = max 0 (config.n_packages - List.length fixed) in
  let n_static = max 2 (n_filler / 220) in
  let fillers =
    List.init n_filler (fun i ->
        let section = Rng.choose rng Roster.sections in
        let static = i < n_static in
        mk ~section ~static
          (Printf.sprintf "%s-%s-%d" section
             (Rng.choose rng [ "tool"; "lib"; "app"; "daemon"; "gui"; "cli" ])
             i)
          (zipf_prob i))
  in
  fixed @ fillers

(* Assign stage levels so that the install-weighted share of packages
   at each level matches Table 4. Fixed-level specs keep theirs. *)
let assign_levels rng specs =
  let total_weight = List.fold_left (fun a s -> a +. s.g_prob) 0.0 specs in
  let remaining = Array.map (fun share -> share *. total_weight) stage_shares in
  (* pre-assigned specs consume their quota first *)
  List.iter
    (fun s ->
      if s.g_level > 0 then
        remaining.(s.g_level - 1) <- remaining.(s.g_level - 1) -. s.g_prob)
    specs;
  let pick_level candidates =
    let best = ref (List.hd candidates) and best_score = ref neg_infinity in
    List.iter
      (fun k ->
        let score = remaining.(k - 1) /. max 1e-9 stage_shares.(k - 1) in
        if score > !best_score then begin
          best := k;
          best_score := score
        end)
      candidates;
    !best
  in
  let unassigned = List.filter (fun s -> s.g_level = 0) specs in
  (* shuffle deterministically so weight classes interleave *)
  let shuffled = Rng.sample rng (List.length unassigned) unassigned in
  List.iter
    (fun s ->
      let candidates = if s.g_essential then [ 2; 3; 4 ] else [ 1; 2; 3; 4; 5 ] in
      let level = pick_level candidates in
      s.g_level <- level;
      remaining.(level - 1) <- remaining.(level - 1) -. s.g_prob)
    shuffled

(* ------------------------------------------------------------------ *)
(* Assignment passes                                                   *)
(* ------------------------------------------------------------------ *)

(* System calls whose owners the roster seeds explicitly (Tables 1-2):
   generic adoption must not dilute their attribution. *)
let reserved_syscalls =
  List.concat_map (fun (sp : Roster.special) -> sp.Roster.sp_syscalls)
    Roster.specials

(* Table 1 syscalls that must reach applications only through their
   libc wrappers (their weighted importance comes from one mid-sized
   owner package plus the wrapper). *)
let wrapper_forced =
  [ "clock_settime"; "iopl"; "ioperm"; "signalfd4"; "preadv"; "pwritev" ]

let eligible_frac specs pred =
  let n = List.length specs in
  let k = List.length (List.filter pred specs) in
  if n = 0 then 0.0 else float_of_int k /. float_of_int n

(* Specs that participate in the general assignment passes. libc6 is
   excluded: it ships the runtime and a bare ldconfig-style executable,
   and every package depends on it, so any stray API there would
   propagate to the whole distribution through the dependency rule. *)
let assignable s =
  s.g_is_lib_pkg = None && s.g_util_of = None && s.g_name <> "libc6"

let assign_syscalls config rng specs =
  let app_specs = List.filter assignable specs in
  let essentials = List.filter (fun s -> s.g_essential) app_specs in
  List.iter
    (fun (entry : Syscall_table.entry) ->
      let name = entry.Syscall_table.name in
      let rank = stage_rank name in
      if rank >= 2 && rank <= 5 && not (List.mem name reserved_syscalls)
      then begin
        let adoption = syscall_adoption config.seed name in
        if adoption > 0.0 then begin
          let exempt = List.mem name nesting_exempt in
          let ok s = exempt || s.g_level >= rank in
          let stage = Stages.stage_of_name name in
          let bounded_owners =
            (* weighted importance of the stage-V tails must stay in
               band: a bounded owner set instead of broad adoption *)
            match stage with
            | Stages.S5_medium | Stages.S5_low -> true
            | _ -> false
          in
          if bounded_owners then begin
            let target_band =
              match stage with
              | Stages.S5_low -> (0.005, 0.08)
              | _ -> (0.10, 0.90)
            in
            let lo, hi = target_band in
            let target = lo +. ((hi -. lo) *. Rng.keyed_float config.seed ("t:" ^ name)) in
            let owners =
              List.filter (fun s -> ok s && not s.g_essential) app_specs
            in
            let owners = Rng.sample rng (List.length owners) owners in
            let covered = ref 0.0 in
            List.iter
              (fun s ->
                if 1.0 -. exp !covered < target then begin
                  covered := !covered +. log (max 1e-9 (1.0 -. s.g_prob));
                  add_syscall s name
                end)
              owners
          end
          else begin
            let frac = eligible_frac app_specs ok in
            let p = min 0.97 (adoption /. max 0.01 frac) in
            List.iter
              (fun s -> if ok s && Rng.bool rng p then add_syscall s name)
              app_specs
          end;
          (* guarantee an essential owner for the indispensable calls *)
          let needs_essential_owner =
            (not exempt)
            && (match stage with
                | Stages.S2 | Stages.S3 | Stages.S4 | Stages.S5_essential ->
                  true
                | _ -> false)
          in
          if needs_essential_owner then begin
            (* widely-adopted calls are pinned by ordinary essentials;
               rarely-adopted ones go to the designated stage-V
               essentials, so ordinary essentials complete by the end
               of stage IV (Figure 3's 90% anchor) *)
            let owners =
              if stage = Stages.S5_essential || adoption < 0.10 then
                List.filter (fun s -> s.g_level >= 5) essentials
              else List.filter ok essentials
            in
            match owners with
            | [] -> ()
            | _ ->
              List.iter
                (fun s -> add_syscall s name)
                (Rng.sample rng 3 owners)
          end;
          (* the wrapper-forced Table 1 syscalls get one mid-sized
             weighted owner in addition to any adopters *)
          if List.mem name wrapper_forced then begin
            let mids =
              List.filter
                (fun s -> ok s && s.g_prob >= 0.08 && s.g_prob <= 0.25)
                app_specs
            in
            match mids with
            | [] -> ()
            | _ -> add_syscall (Rng.choose rng mids) name
          end
        end
      end)
    (Array.to_list Syscall_table.all)

let assign_vops config rng specs =
  let app_specs = List.filter assignable specs in
  let essentials = List.filter (fun s -> s.g_essential) app_specs in
  List.iter
    (fun (op : Vectored.op) ->
      let v = op.Vectored.vector and code = op.Vectored.code in
      let rank = vector_stage v in
      let ok s = s.g_level >= rank in
      let h = Rng.keyed_float config.seed ("vop:" ^ op.Vectored.name) in
      match op.Vectored.tier with
      | Vectored.Ubiquitous ->
        List.iter
          (fun s -> add_vop s (v, code))
          (Rng.sample rng 2 (List.filter ok essentials));
        let adoption = 0.10 +. (0.40 *. h) in
        let frac = eligible_frac app_specs ok in
        let p = min 0.9 (adoption /. max 0.01 frac) in
        List.iter
          (fun s -> if ok s && Rng.bool rng p then add_vop s (v, code))
          app_specs
      | Vectored.Common ->
        (* importance between ~1% and ~60% *)
        let owners =
          List.filter (fun s -> ok s && s.g_prob >= 0.008 && s.g_prob <= 0.6)
            app_specs
        in
        let k = 1 + Rng.int rng 3 in
        List.iter (fun s -> add_vop s (v, code)) (Rng.sample rng k owners)
      | Vectored.Rare ->
        let owners =
          List.filter (fun s -> ok s && s.g_prob < 0.05) app_specs
        in
        (match owners with
         | [] -> ()
         | _ -> add_vop (Rng.choose rng owners) (v, code))
      | Vectored.Unused -> ())
    Vectored.all_ops

let assign_pseudo config rng specs =
  let app_specs = List.filter assignable specs in
  let essentials = List.filter (fun s -> s.g_essential) app_specs in
  List.iter
    (fun (entry : Pseudo_files.entry) ->
      let path = entry.Pseudo_files.path in
      (* specials already own their niche paths *)
      let already = List.exists (fun s -> List.mem path s.g_pseudo) specs in
      let h = Rng.keyed_float config.seed ("pf:" ^ path) in
      match entry.Pseudo_files.tier with
      | Pseudo_files.Essential ->
        List.iter (fun s -> add_pseudo s path) (Rng.sample rng 2 essentials);
        let p = 0.08 +. (0.25 *. h) in
        List.iter
          (fun s -> if Rng.bool rng p then add_pseudo s path)
          app_specs
      | Pseudo_files.Popular ->
        List.iter (fun s -> add_pseudo s path) (Rng.sample rng 1 essentials);
        let p = 0.01 +. (0.08 *. h) in
        List.iter
          (fun s -> if Rng.bool rng p then add_pseudo s path)
          app_specs
      | Pseudo_files.Niche ->
        if not already then begin
          let owners = List.filter (fun s -> s.g_prob < 0.4) app_specs in
          List.iter
            (fun s -> add_pseudo s path)
            (Rng.sample rng (1 + Rng.int rng 2) owners)
        end
      | Pseudo_files.Admin ->
        if not already then begin
          let owners = List.filter (fun s -> s.g_prob < 0.05) app_specs in
          match owners with
          | [] -> ()
          | _ -> add_pseudo (Rng.choose rng owners) path
        end)
    Pseudo_files.all

let assign_imports config rng specs =
  let app_specs = List.filter assignable specs in
  let n_app = List.length app_specs in
  (* a package may import a symbol only if the symbol's system calls
     are already part of the package's assigned footprint (or are
     base/exempt calls): imports deliver syscalls, they do not widen
     the per-syscall adoption the targets calibrate.

     This pass runs over |catalog| x |specs| pairs, so the eligibility
     test must be cheap: each spec's syscall footprint becomes a hash
     set once (this pass only mutates g_imports, so the sets stay
     valid), each entry's implied syscalls are computed once and
     pre-filtered to the non-base stages, and both predicates are
     evaluated in a single pass per entry instead of once per use
     site. The predicate values — and therefore the Rng stream and
     the generated distribution — are identical to the direct
     per-pair evaluation. *)
  let tagged =
    List.map
      (fun s ->
        let have = Hashtbl.create (2 * List.length s.g_syscalls) in
        List.iter (fun sc -> Hashtbl.replace have sc ()) s.g_syscalls;
        (s, have))
      app_specs
  in
  (* add_import dedups by scanning g_imports; with hundreds of imports
     per package that scan dominates, so this pass shadows it with a
     per-spec hash set seeded from any pre-owned imports. *)
  let imports_of = Hashtbl.create (2 * n_app) in
  List.iter
    (fun s ->
      let seen = Hashtbl.create 64 in
      List.iter (fun i -> Hashtbl.replace seen i ()) s.g_imports;
      Hashtbl.replace imports_of s.g_name seen)
    app_specs;
  let add_import s i =
    let seen = Hashtbl.find imports_of s.g_name in
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.replace seen i ();
      s.g_imports <- i :: s.g_imports
    end
  in
  List.iter
    (fun (e : Libc_catalog.entry) ->
      let name = e.Libc_catalog.name in
      let rank = symbol_stage e in
      if rank <= 5 then begin
        let needed =
          List.filter
            (fun sc -> stage_rank sc <> 1)
            ((if name = "syscall" then [] else e.Libc_catalog.syscalls)
             @ List.map (fun (v, _) -> Api.vector_name v) e.Libc_catalog.vops)
        in
        (* mid-tier symbols stay out of near-universal packages, or a
           single popular adopter would push them to 100% importance;
           symbols with explicit adoption overrides are calibrated
           directly and bypass the tier gate *)
        let overridden = List.mem_assoc name import_overrides in
        let tier_gate s =
          overridden
          ||
          match e.Libc_catalog.tier with
          | Libc_catalog.High | Libc_catalog.Medium ->
            (not s.g_essential) && s.g_prob < 0.45
          | Libc_catalog.Ubiquitous | Libc_catalog.Rare
          | Libc_catalog.Unused -> true
        in
        let flags =
          List.map
            (fun (s, have) ->
              let ok =
                s.g_level >= rank
                && List.for_all (fun sc -> Hashtbl.mem have sc) needed
              in
              (s, ok, ok && tier_gate s))
            tagged
        in
        let sel_ok pred =
          List.filter_map
            (fun (s, ok, _) -> if ok && pred s then Some s else None)
            flags
        in
        let adoption = tier_adoption config.seed e in
        if adoption > 0.0 then begin
          let k =
            List.fold_left
              (fun a (_, _, okt) -> if okt then a + 1 else a)
              0 flags
          in
          let frac =
            if n_app = 0 then 0.0 else float_of_int k /. float_of_int n_app
          in
          let p = min 0.97 (adoption /. max 0.01 frac) in
          List.iter
            (fun (s, _, okt) ->
              if okt && Rng.bool rng p then add_import s name)
            flags
        end;
        match e.Libc_catalog.tier with
        | Libc_catalog.Ubiquitous ->
          (* symbols overridden down to niche adoption (GNU-only
             extensions) must not be pinned by essential owners *)
          if adoption >= 0.10 then begin
            let owners = sel_ok (fun s -> s.g_essential) in
            let owners =
              if owners = [] then sel_ok (fun s -> s.g_prob > 0.5)
              else owners
            in
            List.iter (fun s -> add_import s name) (Rng.sample rng 2 owners)
          end
        | Libc_catalog.High ->
          let owners =
            sel_ok (fun s -> s.g_prob >= 0.45 && s.g_prob <= 0.96)
          in
          (match owners with
           | [] -> ()
           | _ -> add_import (Rng.choose rng owners) name)
        | Libc_catalog.Medium ->
          let owners =
            sel_ok (fun s -> s.g_prob >= 0.005 && s.g_prob <= 0.45)
          in
          (match owners with
           | [] -> ()
           | _ -> add_import (Rng.choose rng owners) name)
        | Libc_catalog.Rare ->
          if List.assoc_opt name import_overrides = None then begin
            let owners = sel_ok (fun s -> s.g_prob < 0.01) in
            match owners with
            | [] -> ()
            | _ ->
              List.iter
                (fun s -> add_import s name)
                (Rng.sample rng (1 + Rng.int rng 2) owners)
          end
        | Libc_catalog.Unused -> ()
      end)
    Libc_catalog.all

(* Consumers of the non-runtime shared libraries. The "tail" libraries
   (libnuma etc.) expose their syscalls only through their own package
   attribution (Table 1), so general consumers link their pure export;
   the common desktop libraries spread their real exports. *)
let assign_lib_consumers config rng specs =
  let app_specs = List.filter assignable specs in
  let tail_libs = [ "libnuma"; "libopenblas"; "libkeyutils"; "libaio" ] in
  List.iter
    (fun (lp : Roster.lib_pkg) ->
      let is_tail = List.mem lp.Roster.lp_name tail_libs in
      let h = Rng.keyed_float config.seed ("lib:" ^ lp.Roster.lp_name) in
      let adoption = if is_tail then 0.01 +. (0.02 *. h) else 0.08 +. (0.3 *. h) in
      let export_stage (le : Roster.lib_export) =
        List.fold_left (fun a s -> max a (stage_rank s)) 1 le.Roster.le_syscalls
      in
      let pure = List.hd lp.Roster.lp_exports in
      List.iter
        (fun s ->
          if Rng.bool rng adoption then begin
            add_dep s lp.Roster.lp_name;
            s.g_lib_imports <- (lp.Roster.lp_soname, pure) :: s.g_lib_imports;
            if not is_tail then
              List.iter
                (fun le ->
                  if export_stage le <= s.g_level && Rng.bool rng 0.5 then
                    s.g_lib_imports <-
                      (lp.Roster.lp_soname, le) :: s.g_lib_imports)
                (List.tl lp.Roster.lp_exports)
          end)
        app_specs;
      (* importance targets for the tail libraries come from dedicated
         consumer sets (Table 1: mbind at 36%, key syscalls at 27%) *)
      if is_tail then begin
        let target =
          (* the library package itself already contributes its own
             installation probability through its utility executable *)
          match lp.Roster.lp_name with
          | "libnuma" -> 0.05
          | "libopenblas" -> 0.03
          | "libkeyutils" -> 0.02
          | _ -> 0.05
        in
        let syscall_exports = List.tl lp.Roster.lp_exports in
        let covered = ref 0.0 in
        let candidates =
          List.filter (fun s -> s.g_prob <= 0.25 && s.g_level >= 4) app_specs
        in
        let candidates = Rng.sample rng (List.length candidates) candidates in
        List.iter
          (fun s ->
            if 1.0 -. exp !covered < target then begin
              covered := !covered +. log (1.0 -. s.g_prob);
              add_dep s lp.Roster.lp_name;
              List.iter
                (fun le ->
                  s.g_lib_imports <- (lp.Roster.lp_soname, le) :: s.g_lib_imports)
                syscall_exports
            end)
          candidates
      end)
    Roster.lib_packages

(* Scripts per package, following the Figure 1 language mix. *)
(* Many applications share footprints in practice (Section 6: only a
   third are unique); filler packages therefore adopt footprint
   templates with some probability instead of fully individual draws. *)
let assign_templates rng specs =
  let is_filler s =
    assignable s && (not s.g_essential)
    && List.mem s.g_section Roster.sections
  in
  let by_level = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if is_filler s then
        Hashtbl.replace by_level s.g_level
          (s :: Option.value ~default:[] (Hashtbl.find_opt by_level s.g_level)))
    specs;
  Hashtbl.iter
    (fun _ bucket ->
      match bucket with
      | [] | [ _ ] -> ()
      | templates_src ->
        let templates =
          List.filteri (fun i _ -> i < 8) templates_src
        in
        List.iteri
          (fun i s ->
            if i >= 8 && Rng.bool rng 0.55 then begin
              let t = Rng.choose rng templates in
              s.g_syscalls <- t.g_syscalls;
              s.g_vops <- t.g_vops;
              s.g_pseudo <- t.g_pseudo;
              s.g_imports <- t.g_imports;
              s.g_lib_imports <- t.g_lib_imports;
              s.g_deps <- t.g_deps
            end)
          templates_src)
    by_level

let assign_scripts rng specs =
  let interp_choice rng =
    let r = Rng.float rng in
    if r < 0.375 then ("/bin/sh", "dash")
    else if r < 0.60 then ("/usr/bin/python", "python2.7")
    else if r < 0.80 then ("/usr/bin/perl", "perl")
    else if r < 0.95 then ("/bin/bash", "bash")
    else if r < 0.975 then ("/usr/bin/ruby", "ruby1.9")
    else ("/usr/bin/awk", "")
  in
  List.iter
    (fun s ->
      if assignable s && (not s.g_static) && s.g_level >= 3
         && Rng.bool rng 0.62
      then begin
        let n = 1 + Rng.int rng 3 in
        for _ = 1 to n do
          let path, dep = interp_choice rng in
          s.g_scripts <- path :: s.g_scripts;
          if dep <> "" && dep <> s.g_name then add_dep s dep
        done
      end)
    specs

(* Random extra dependency edges, biased toward popular packages. *)
let assign_deps rng specs =
  let arr = Array.of_list specs in
  let n = Array.length arr in
  List.iter
    (fun s ->
      if s.g_is_lib_pkg = None && s.g_util_of = None then begin
        add_dep s "libc6";
        let extra = Rng.int rng 3 in
        for _ = 1 to extra do
          let candidate = arr.(Rng.int rng n) in
          (* dependencies point at more popular packages of the same
             or an earlier stage, so the dependency rule (Section 2.2
             step 3) does not flatten the Figure 3 curve *)
          if candidate.g_name <> s.g_name
             && candidate.g_prob >= s.g_prob
             && candidate.g_level <= s.g_level
          then add_dep s candidate.g_name
        done
      end)
    specs

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let nr = Syscall_table.nr_of_name_exn

(* libc exports that wrap exactly one system call, preferred over
   inline syscall instructions (most binaries go through libc). The
   vectored calls are excluded: their wrappers need call-site opcodes. *)
let wrapper_map : (string, string) Hashtbl.t =
  let h = Hashtbl.create 256 in
  List.iter
    (fun (e : Libc_catalog.entry) ->
      match e.Libc_catalog.syscalls, e.Libc_catalog.vops with
      | [ s ], []
        when (not (Hashtbl.mem h s))
             && (not (List.mem s [ "ioctl"; "fcntl"; "prctl" ]))
             && List.assoc_opt e.Libc_catalog.name import_overrides = None ->
        Hashtbl.replace h s e.Libc_catalog.name
      | _ -> ())
    Libc_catalog.all;
  h

type emitted = {
  em_package : P.t;
  em_truth : Api.Set.t;
  em_init : Api.Set.t;  (** APIs requestable during initialization *)
  em_serving : Api.Set.t;  (** APIs requestable while serving *)
}

(* Decoy system calls placed in dead code (unreachable functions, or
   movs jumped over inside a live one): all from the officially-unused
   set, so a sloppy analyzer would corrupt Table 3. *)
let decoys = [ "lookup_dcookie"; "remap_file_pages"; "mq_notify"; "sysfs" ]

(* Build the operation list and ground truth for one executable.
   Operation classes are kept in a fixed order (direct syscalls,
   vectored ops, pseudo-files, library imports, libc imports) so that
   stale opcode registers never precede a vectored call site. *)
let build_exe_ops rng spec ~syscalls ~vops ~pseudo ~lib_imports ~imports
    ~truth =
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let add_truth api = truth := Api.Set.add api !truth in
  (* Inline syscalls take one of several real code shapes. Beyond the
     straight-line mov/syscall, compilers produce branchy dispatch
     (both arms of a conditional setting the number before one syscall
     instruction), skip-over paths around clobbering calls, dead
     fall-through code, and in-binary wrapper functions — the shapes
     the CFG dataflow engine exists to resolve. A branch pattern pairs
     the call with the *next* assigned syscall so ground truth stays
     exactly the assigned set. *)
  let emit_direct n partner =
    if spec.g_int80 && Rng.bool rng 0.5 then begin
      emit (Lapis_asm.Program.Int80_syscall n);
      add_truth (Api.Syscall n);
      false
    end
    else begin
      let r = Rng.float rng in
      if r < 0.15 && partner <> None then begin
        let n2 = Option.get partner in
        emit (Lapis_asm.Program.Cond_branch_syscall (n, n2));
        add_truth (Api.Syscall n);
        add_truth (Api.Syscall n2);
        true
      end
      else begin
        (if r < 0.25 then
           emit (Lapis_asm.Program.Skip_clobber_syscall (n, "cold_path"))
         else if r < 0.32 then
           emit
             (Lapis_asm.Program.Jump_over_decoy_syscall
                (n, nr (Rng.choose rng decoys)))
         else if r < 0.44 then
           emit (Lapis_asm.Program.Call_wrapper ("sc_dispatch", n))
         else emit (Lapis_asm.Program.Direct_syscall n));
        add_truth (Api.Syscall n);
        false
      end
    end
  in
  let rec emit_syscalls = function
    | [] -> ()
    | s :: rest ->
      let n = nr s in
      let mode =
        match Hashtbl.find_opt wrapper_map s with
        | Some _ when List.mem s wrapper_forced -> Via_wrapper
        | Some _ when Rng.bool rng 0.75 -> Via_wrapper
        | _ -> if Rng.bool rng 0.1 then Via_syscall_fn else Direct
      in
      (match mode with
       | Via_wrapper ->
         let w = Hashtbl.find wrapper_map s in
         emit (Lapis_asm.Program.Call_import w);
         Api.Set.iter add_truth (Libc_gen.import_truth w);
         emit_syscalls rest
       | Via_syscall_fn ->
         emit (Lapis_asm.Program.Call_syscall_import n);
         add_truth (Api.Syscall n);
         add_truth (Api.Libc_sym "syscall");
         emit_syscalls rest
       | Direct ->
         let partner =
           match rest with
           | s2 :: _
             when (not (List.mem s2 wrapper_forced)) && not spec.g_int80 ->
             Some (nr s2)
           | _ -> None
         in
         if emit_direct n partner then emit_syscalls (List.tl rest)
         else emit_syscalls rest)
  in
  emit_syscalls syscalls;
  List.iter
    (fun (v, code) ->
      let vec_nr = Api.vector_syscall_nr v in
      let r = Rng.float rng in
      if r < 0.4 then begin
        emit (Lapis_asm.Program.Vectored_syscall (v, code));
        add_truth (Api.Vop (v, code));
        add_truth (Api.Syscall vec_nr)
      end
      else if r < 0.8 then begin
        let wname = Api.vector_name v in
        emit (Lapis_asm.Program.Call_import_vop (wname, v, code));
        add_truth (Api.Vop (v, code));
        add_truth (Api.Syscall vec_nr);
        Api.Set.iter add_truth (Libc_gen.import_truth wname)
      end
      else begin
        (* syscall(__NR_ioctl, fd, op): the vectored opcode rides in
           the generic helper's third argument *)
        emit (Lapis_asm.Program.Call_syscall_import_vop (v, code));
        add_truth (Api.Vop (v, code));
        add_truth (Api.Syscall vec_nr);
        add_truth (Api.Libc_sym "syscall")
      end)
    vops;
  List.iter
    (fun p ->
      emit (Lapis_asm.Program.Use_string p);
      add_truth (Api.Pseudo_file p))
    pseudo;
  List.iter
    (fun (_, (le : Roster.lib_export)) ->
      emit (Lapis_asm.Program.Call_import le.Roster.le_sym);
      List.iter (fun s -> add_truth (Api.Syscall (nr s))) le.Roster.le_syscalls;
      List.iter (fun (v, c) -> add_truth (Api.Vop (v, c))) le.Roster.le_vops;
      List.iter (fun p -> add_truth (Api.Pseudo_file p)) le.Roster.le_pseudo)
    lib_imports;
  List.iter
    (fun i ->
      emit (Lapis_asm.Program.Call_import i);
      Api.Set.iter add_truth (Libc_gen.import_truth i))
    imports;
  if Rng.bool rng 0.04 then emit Lapis_asm.Program.Direct_syscall_unknown;
  emit (Lapis_asm.Program.Padding (4 + Rng.int rng 24));
  List.rev !ops

let emit_spec rng spec : emitted =
  (* [truth] holds phase-agnostic APIs (both phases); the two-phase
     server executables below record their halves into [ph_init] and
     [ph_serving] instead. Totals are the union of all three. *)
  let truth = ref Api.Set.empty in
  let ph_init = ref Api.Set.empty in
  let ph_serving = ref Api.Set.empty in
  let files = ref [] in
  (match spec.g_util_of, spec.g_is_lib_pkg with
   | Some lp, _ ->
     (* utility package: one executable exercising every export of the
        companion library (numactl-style) *)
     let util_ops =
       List.map
         (fun (le : Roster.lib_export) ->
           List.iter
             (fun sc -> truth := Api.Set.add (Api.Syscall (nr sc)) !truth)
             le.Roster.le_syscalls;
           List.iter
             (fun (v, c) -> truth := Api.Set.add (Api.Vop (v, c)) !truth)
             le.Roster.le_vops;
           List.iter
             (fun pf -> truth := Api.Set.add (Api.Pseudo_file pf) !truth)
             le.Roster.le_pseudo;
           Lapis_asm.Program.Call_import le.Roster.le_sym)
         lp.Roster.lp_exports
     in
     truth := Api.Set.union !truth Libc_gen.base_truth;
     let util =
       Lapis_asm.Program.executable ~entry_fn:"_start"
         ~needed:[ "libc.so.6"; lp.Roster.lp_soname ]
         [ Lapis_asm.Program.func "_start"
             [ Lapis_asm.Program.Call_import "__libc_start_main";
               Lapis_asm.Program.Call_local "main" ];
           Lapis_asm.Program.func "main"
             (util_ops @ [ Lapis_asm.Program.Padding 8 ]) ]
     in
     files :=
       [ { P.path = Printf.sprintf "/usr/bin/%s" spec.g_name;
           kind = P.Executable;
           bytes = Lapis_asm.Builder.assemble_elf util } ]
   | None, Some lp ->
     (* library package: ships only the shared object; per the paper,
        the package footprint counts standalone executables only *)
     let funcs =
       List.map
         (fun (le : Roster.lib_export) ->
           let ops =
             List.map
               (fun s -> Lapis_asm.Program.Direct_syscall (nr s))
               le.Roster.le_syscalls
             @ List.map
                 (fun (v, c) -> Lapis_asm.Program.Vectored_syscall (v, c))
                 le.Roster.le_vops
             @ List.map
                 (fun p -> Lapis_asm.Program.Use_string p)
                 le.Roster.le_pseudo
             @ [ Lapis_asm.Program.Padding (4 + Rng.int rng 16) ]
           in
           Lapis_asm.Program.func le.Roster.le_sym ops)
         lp.Roster.lp_exports
     in
     let prog =
       Lapis_asm.Program.shared_lib ~soname:lp.Roster.lp_soname ~needed:[]
         funcs
     in
     (* plus a trivial maintenance executable so the package carries
        the base footprint rather than an empty one; like most modern
        binaries it is fortified, threaded and runs destructors *)
     truth := Api.Set.union !truth Libc_gen.base_truth;
     let trigger_imports =
       [ ("__cxa_finalize", 1.0); ("pthread_create", 0.9);
         ("__printf_chk", 0.85); ("stpcpy", 0.5) ]
       |> List.filter_map (fun (i, pr) ->
              if Rng.bool rng pr then begin
                truth := Api.Set.union !truth (Libc_gen.import_truth i);
                Some (Lapis_asm.Program.Call_import i)
              end
              else None)
     in
     let trigger =
       Lapis_asm.Program.executable ~entry_fn:"_start"
         ~needed:[ "libc.so.6" ]
         [ Lapis_asm.Program.func "_start"
             [ Lapis_asm.Program.Call_import "__libc_start_main";
               Lapis_asm.Program.Call_local "main" ];
           Lapis_asm.Program.func "main"
             (trigger_imports @ [ Lapis_asm.Program.Padding 12 ]) ]
     in
     files :=
       [ { P.path = Printf.sprintf "/usr/lib/%s" lp.Roster.lp_soname;
           kind = P.Library;
           bytes = Lapis_asm.Builder.assemble_elf prog };
         { P.path = Printf.sprintf "/usr/sbin/%s-trigger" lp.Roster.lp_name;
           kind = P.Executable;
           bytes = Lapis_asm.Builder.assemble_elf trigger } ]
   | None, None ->
     let n_exes = if spec.g_essential then 1 + Rng.int rng 2 else 1 in
     (* Most packages also ship private shared libraries (Figure 1:
        52% of ELF binaries are shared libraries); part of the
        package's libc usage moves into them, exercising cross-binary
        resolution on application code too. *)
     let sanitized =
       String.map
         (fun c -> match c with 'a' .. 'z' | '0' .. '9' -> c | _ -> '_')
         spec.g_name
     in
     let n_priv_libs =
       if spec.g_static then 0
       else if Rng.bool rng 0.62 then (if Rng.bool rng 0.25 then 2 else 1)
       else 0
     in
     let priv_imports, kept_imports =
       if n_priv_libs = 0 || List.length spec.g_imports < 6 then
         ([], spec.g_imports)
       else begin
         let k = List.length spec.g_imports * 2 / 5 in
         let rec split i acc = function
           | rest when i = 0 -> (List.rev acc, rest)
           | [] -> (List.rev acc, [])
           | x :: rest -> split (i - 1) (x :: acc) rest
         in
         split k [] spec.g_imports
       end
     in
     let priv_libs =
       List.init n_priv_libs (fun li ->
           let soname = Printf.sprintf "lib%s%d.so.0" sanitized li in
           let mine =
             List.filteri
               (fun i _ -> i mod n_priv_libs = li)
               priv_imports
           in
           let n_exports = 1 + Rng.int rng 2 in
           let exports =
             List.init n_exports (fun ei ->
                 let body =
                   List.filteri (fun i _ -> i mod n_exports = ei) mine
                 in
                 (Printf.sprintf "%s_fn_%d_%d" sanitized li ei, body))
           in
           (soname, exports))
     in
     List.iter
       (fun (soname, exports) ->
         let funcs =
           List.map
             (fun (name, imports) ->
               Lapis_asm.Program.func name
                 (List.map (fun i -> Lapis_asm.Program.Call_import i) imports
                  @ [ Lapis_asm.Program.Padding (4 + Rng.int rng 20) ]))
             exports
         in
         let prog =
           Lapis_asm.Program.shared_lib ~soname ~needed:[ "libc.so.6" ] funcs
         in
         files :=
           { P.path = Printf.sprintf "/usr/lib/%s" soname;
             kind = P.Library;
             bytes = Lapis_asm.Builder.assemble_elf prog }
           :: !files)
       priv_libs;
     (* partition the assigned APIs across the executables *)
     let parts lst =
       if n_exes = 1 then [ lst ]
       else begin
         let buckets = Array.make n_exes [] in
         List.iteri
           (fun i x ->
             let b = if i < n_exes then i else Rng.int rng n_exes in
             buckets.(b) <- x :: buckets.(b))
           lst;
         Array.to_list buckets
       end
     in
     let sys_parts = parts spec.g_syscalls in
     let vop_parts = parts spec.g_vops in
     let pseudo_parts = parts spec.g_pseudo in
     let lib_parts = parts spec.g_lib_imports in
     let import_parts = parts kept_imports in
     let nth lst i = try List.nth lst i with _ -> [] in
     for i = 0 to n_exes - 1 do
       if spec.g_static then begin
         (* static executable: no libc, a base subset inlined; the
            wrapper-only calls of Table 1 never appear here, their
            sole direct users must stay the runtime libraries *)
         let base =
           Rng.sample rng (14 + Rng.int rng 10) Stages.stage1
         in
         let own =
           List.filter
             (fun s -> not (List.mem s wrapper_forced))
             (nth sys_parts i)
         in
         let ops =
           List.map
             (fun s ->
               truth := Api.Set.add (Api.Syscall (nr s)) !truth;
               Lapis_asm.Program.Direct_syscall (nr s))
             (base @ own)
           @ [ Lapis_asm.Program.Padding 16 ]
         in
         let prog =
           Lapis_asm.Program.executable ~interp:None ~entry_fn:"_start"
             ~needed:[]
             [ Lapis_asm.Program.func "_start" ops ]
         in
         files :=
           { P.path = Printf.sprintf "/usr/bin/%s" spec.g_name;
             kind = P.Executable;
             bytes = Lapis_asm.Builder.assemble_elf prog }
           :: !files
       end
       else begin
         (* Roughly a third of the dynamic executables are two-phase
            servers: an init prologue, then a serving loop entered
            through the marked transition point
            ({!Lapis_asm.Program.Serving_loop}). The prologue's APIs
            are init-phase ground truth, the loop body's serving-phase
            — what the temporal analysis is audited against. *)
         let two_phase = Rng.bool rng 0.3 in
         let ops, serve_ops =
           if two_phase then begin
             let part2 lst =
               List.partition (fun _ -> Rng.bool rng 0.5) lst
             in
             let sys_i, sys_s = part2 (nth sys_parts i) in
             let vop_i, vop_s = part2 (nth vop_parts i) in
             let ps_i, ps_s = part2 (nth pseudo_parts i) in
             let li_i, li_s = part2 (nth lib_parts i) in
             let im_i, im_s = part2 (nth import_parts i) in
             (* __libc_start_main runs exactly once, before main: its
                ground truth covers the whole runtime startup
                (including the dynamic linker's share), so a serving
                placement would demand startup work in the steady
                state — keep it in the init prologue *)
             let startup, im_s =
               List.partition (fun i -> i = "__libc_start_main") im_s
             in
             let im_i = im_i @ startup in
             ( build_exe_ops rng spec ~syscalls:sys_i ~vops:vop_i
                 ~pseudo:ps_i ~lib_imports:li_i ~imports:im_i
                 ~truth:ph_init,
               build_exe_ops rng spec ~syscalls:sys_s ~vops:vop_s
                 ~pseudo:ps_s ~lib_imports:li_s ~imports:im_s
                 ~truth:ph_serving )
           end
           else
             ( build_exe_ops rng spec ~syscalls:(nth sys_parts i)
                 ~vops:(nth vop_parts i) ~pseudo:(nth pseudo_parts i)
                 ~lib_imports:(nth lib_parts i)
                 ~imports:(nth import_parts i) ~truth,
               [] )
         in
         (* the runtime's startup work precedes main: init-phase truth
            in a two-phase server, phase-agnostic otherwise *)
         let exe_truth = if two_phase then ph_init else truth in
         exe_truth := Api.Set.union !exe_truth Libc_gen.base_truth;
         (* optionally route trailing operations through a function
            pointer (tests the lea over-approximation); two-phase
            mains keep their prologue intact *)
         let main_ops, cb_ops =
           if (not two_phase) && List.length ops > 6 && Rng.bool rng 0.25
           then begin
             let k = List.length ops - 2 in
             let rec split j acc = function
               | rest when j = 0 -> (List.rev acc, rest)
               | [] -> (List.rev acc, [])
               | x :: rest -> split (j - 1) (x :: acc) rest
             in
             let head, tail = split k [] ops in
             (head @ [ Lapis_asm.Program.Take_fnptr "callback" ], tail)
           end
           else (ops, [])
         in
         (* the first executable links the package's private
            libraries and reaches all their exports; a two-phase main
            calls them from its prologue, so their truth is init *)
         let priv_calls, priv_sonames =
           if i = 0 then
             ( List.concat_map
                 (fun (_, exports) ->
                   List.map
                     (fun (name, imports) ->
                       List.iter
                         (fun imp ->
                           exe_truth :=
                             Api.Set.union !exe_truth
                               (Libc_gen.import_truth imp))
                         imports;
                       Lapis_asm.Program.Call_import name)
                     exports)
                 priv_libs,
               List.map fst priv_libs )
           else ([], [])
         in
         let main_ops =
           main_ops @ priv_calls
           @
           if serve_ops = [] then []
           else [ Lapis_asm.Program.Serving_loop "serve_loop" ]
         in
         (* local helpers referenced by the branchy syscall shapes *)
         let all_ops = ops @ serve_ops in
         let needs_cold =
           List.exists
             (function
               | Lapis_asm.Program.Skip_clobber_syscall _ -> true
               | _ -> false)
             all_ops
         and needs_dispatch =
           List.exists
             (function
               | Lapis_asm.Program.Call_wrapper _ -> true | _ -> false)
             all_ops
         in
         let funcs =
           [ Lapis_asm.Program.func "_start"
               [ Lapis_asm.Program.Call_import "__libc_start_main";
                 Lapis_asm.Program.Call_local "main" ];
             Lapis_asm.Program.func "main" main_ops ]
           @ (if serve_ops = [] then []
              else
                [ Lapis_asm.Program.func ~global:false "serve_loop"
                    serve_ops ])
           @ (if cb_ops = [] then []
              else [ Lapis_asm.Program.func ~global:false "callback" cb_ops ])
           @ (if needs_cold then
                [ Lapis_asm.Program.func ~global:false "cold_path"
                    [ Lapis_asm.Program.Padding 6 ] ]
              else [])
           @ (if needs_dispatch then
                [ Lapis_asm.Program.func ~global:false "sc_dispatch"
                    [ Lapis_asm.Program.Arg_syscall ] ]
              else [])
           @
           if Rng.bool rng 0.18 then
             [ Lapis_asm.Program.func ~global:false "unused_code"
                 [ Lapis_asm.Program.Direct_syscall (nr (Rng.choose rng decoys));
                   Lapis_asm.Program.Padding 6 ] ]
           else []
         in
         let lib_sonames =
           List.sort_uniq compare
             (List.map fst (nth lib_parts i) @ priv_sonames)
         in
         let prog =
           Lapis_asm.Program.executable ~entry_fn:"_start"
             ~needed:(("libc.so.6" :: lib_sonames))
             funcs
         in
         let name =
           if i = 0 then spec.g_name else Printf.sprintf "%s-tool%d" spec.g_name i
         in
         files :=
           { P.path = Printf.sprintf "/usr/bin/%s" name;
             kind = P.Executable;
             bytes = Lapis_asm.Builder.assemble_elf prog }
           :: !files
       end
     done;
     (* scripts *)
     List.iteri
       (fun i interp ->
         let body =
           Printf.sprintf "#!%s\n# synthetic maintenance script %d\nexit 0\n"
             interp i
         in
         files :=
           { P.path = Printf.sprintf "/usr/share/%s/script%d" spec.g_name i;
             kind = P.Script;
             bytes = body }
           :: !files)
       spec.g_scripts);
  let pkg =
    {
      P.name = spec.g_name;
      section = spec.g_section;
      installs = 0;  (* filled by caller *)
      deps = spec.g_deps;
      files = List.rev !files;
      essential = spec.g_essential;
    }
  in
  let init = Api.Set.union !truth !ph_init in
  let serving = Api.Set.union !truth !ph_serving in
  {
    em_package = pkg;
    em_truth = Api.Set.union init serving;
    em_init = init;
    em_serving = serving;
  }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(* All assignment passes up to (but not including) emission: the spec
   list this returns, together with the master RNG's state, fully
   determines the emitted bytes. [generate] and [evolve] share it so an
   evolved world starts from the exact release-0 plan. *)
let plan config rng : spec list =
  let stage name f = Lapis_perf.Stage.time ("gen:" ^ name) f in
  let specs = stage "roster" (fun () -> build_roster config rng) in
  stage "levels" (fun () -> assign_levels rng specs);
  stage "syscalls" (fun () -> assign_syscalls config rng specs);
  stage "vops" (fun () -> assign_vops config rng specs);
  stage "pseudo" (fun () -> assign_pseudo config rng specs);
  stage "imports" (fun () -> assign_imports config rng specs);
  stage "libs" (fun () -> assign_lib_consumers config rng specs);
  stage "templates" (fun () -> assign_templates rng specs);
  stage "scripts" (fun () -> assign_scripts rng specs);
  stage "deps" (fun () -> assign_deps rng specs);
  (* interpreters over-approximate every script's behaviour
     (Section 2.3), so their footprints cover stages I-III entirely;
     script inheritance then inflates per-syscall adoption uniformly,
     preserving the stage ordering of the ranking *)
  let interpreter_names =
    "dash" :: "bash" :: List.map fst Roster.interpreters
  in
  (* syscalls whose adoption is calibrated individually (the Table 6
     blockers and the Table 8-11 variant members) must not ride along
     in the interpreters' blanket stage-III footprint, or script
     inheritance would swamp their targets *)
  let calibrated_syscalls =
    List.map fst syscall_overrides
    @ List.filter_map
        (fun (sc, _) -> if stage_rank sc >= 2 then Some sc else None)
        Variants.adoption_targets
  in
  List.iter
    (fun spec ->
      if List.mem spec.g_name interpreter_names then begin
        List.iter
          (fun sc ->
            if stage_rank sc >= 2 && not (List.mem sc calibrated_syscalls)
            then add_syscall spec sc)
          (Stages.cumulative 3);
        spec.g_syscalls <-
          List.filter
            (fun sc -> not (List.mem sc calibrated_syscalls))
            spec.g_syscalls;
        (* interpreters stick to the ubiquitous, portable libc surface
           so script inheritance does not inflate tail-symbol
           importance *)
        spec.g_imports <-
          List.filter
            (fun i ->
              (not (Libc_variants.is_gnu_only i))
              && (match Libc_catalog.find i with
                  | Some e -> e.Libc_catalog.tier = Libc_catalog.Ubiquitous
                  | None -> false))
            spec.g_imports
      end)
    specs;
  specs

(* Emit a prepared job list — (per-spec RNG, spec) pairs — into a full
   distribution. The largest generation stage, fanned out over
   domains: [emit_spec] only reads its spec, its own RNG and
   eagerly-built read-only tables, so the emitted bytes are
   bit-identical to a sequential run. The truth table and install
   counts are filled in afterwards, in job order. *)
let emit_jobs config ~release (jobs : (Rng.t * spec) list) : P.distribution =
  let stage name f = Lapis_perf.Stage.time ("gen:" ^ name) f in
  let truth : P.ground_truth = Hashtbl.create 1024 in
  let phase_truth : P.phased_truth = Hashtbl.create 1024 in
  let packages =
    stage "emit" (fun () ->
        let emitted =
          Lapis_perf.Parmap.map
            (fun (rng, spec) -> (spec, emit_spec rng spec))
            jobs
        in
        List.map
          (fun (spec, emitted) ->
            Hashtbl.replace truth spec.g_name emitted.em_truth;
            Hashtbl.replace phase_truth spec.g_name
              (emitted.em_init, emitted.em_serving);
            let installs =
              max 1
                (int_of_float
                   (spec.g_prob *. float_of_int config.total_installs))
            in
            { emitted.em_package with P.installs })
          emitted)
  in
  let runtime = stage "runtime" (fun () -> Libc_gen.build_all ()) in
  let shared_libs =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun f ->
            if f.P.kind = P.Library then
              Some (Filename.basename f.P.path, p.P.name, f.P.bytes)
            else None)
          p.P.files)
      packages
  in
  {
    P.packages;
    runtime;
    shared_libs;
    total_installs = config.total_installs;
    truth;
    phase_truth;
    seed = config.seed;
    n_requested = config.n_packages;
    release;
  }

let generate ?(config = default_config) () : P.distribution =
  Lapis_perf.Stage.time "generate" @@ fun () ->
  let rng = Rng.create config.seed in
  let specs = plan config rng in
  (* Splitting the parent RNG sequentially hands every spec the exact
     stream a sequential [List.map] would have (List.map evaluates
     left to right). *)
  let jobs = List.map (fun spec -> (Rng.split rng, spec)) specs in
  emit_jobs config ~release:0 jobs

(* ------------------------------------------------------------------ *)
(* Evolution                                                           *)
(* ------------------------------------------------------------------ *)

(* A live distribution churns: point releases bump package versions
   (same name, rebuilt bytes), retire fillers, introduce new ones and
   occasionally re-link a package against a different shared library.
   [evolve] replays the release-0 plan and then applies [release]
   rounds of deterministic churn on top of it. Every decision is drawn
   either from the release-0 streams (so a package no round touches
   keeps the exact per-spec RNG [generate] would have given it and its
   bytes stay byte-identical) or from a per-release RNG keyed by
   (seed, release) — mirroring the [Rng.keyed_float] idiom — so the
   same seed and release number always produce the same world. *)

(* How one package's emission is seeded: untouched packages inherit
   their release-0 split; touched ones are re-keyed by the release
   that last touched them, which is what makes their bytes change. *)
type emit_src = Inherited of Rng.t | Rekeyed of int

type evo_job = { ej_spec : spec; mutable ej_src : emit_src }

let evolve_key seed release name =
  seed lxor Hashtbl.hash ("evolve", release, name)

(* Packages churn may touch: ordinary applications only. The fixed
   calibration anchors — essentials, interpreters, the specials and
   qemu (section otherosfs), library packages, their utilities and
   libc6 — hold the paper's published numbers in place and never
   change across releases. *)
let churnable s =
  assignable s && (not s.g_essential)
  && s.g_section <> "otherosfs"
  && s.g_section <> "interpreters"

(* Only roster fillers (and packages a previous release added) may be
   retired: they are the long tail, and nothing in the fixed roster
   points at them except dependency edges, which removal strips. *)
let removable s = churnable s && List.mem s.g_section Roster.sections

let count_evo what n =
  Lapis_perf.Stage.incr ("evolve:" ^ what) ~by:n

(* Rebuild one package at a new version: nudge its popularity and,
   half the time, grow or shrink its direct-syscall footprint within
   its stage level. Reserved (specials-owned) and decoy syscalls stay
   out, exactly as in the release-0 assignment passes. *)
let bump_spec erng s =
  let factor = 0.85 +. (0.30 *. Rng.float erng) in
  s.g_prob <- min 0.97 (max 0.0005 (s.g_prob *. factor));
  if Rng.bool erng 0.5 then begin
    if Rng.bool erng 0.6 then begin
      let candidates =
        Array.to_list Syscall_table.all
        |> List.filter_map (fun (e : Syscall_table.entry) ->
               let name = e.Syscall_table.name in
               let rank = stage_rank name in
               if rank >= 2 && rank <= s.g_level
                  && (not (List.mem name reserved_syscalls))
                  && (not (List.mem name decoys))
                  && not (List.mem name s.g_syscalls)
               then Some name
               else None)
      in
      match candidates with
      | [] -> ()
      | _ -> add_syscall s (Rng.choose erng candidates)
    end
    else
      match s.g_syscalls with
      | [] -> ()
      | l ->
        let victim = Rng.choose erng l in
        s.g_syscalls <- List.filter (fun x -> x <> victim) l
  end

(* Swap one package's shared-library linkage: drop one linked library
   entirely, or link the pure export of one it does not use yet. *)
let relink_spec erng s =
  let linked = List.sort_uniq compare (List.map fst s.g_lib_imports) in
  let unlinked =
    List.filter
      (fun (lp : Roster.lib_pkg) ->
        not (List.mem lp.Roster.lp_soname linked))
      Roster.lib_packages
  in
  let drop () =
    let soname = Rng.choose erng linked in
    let lp =
      List.find
        (fun (lp : Roster.lib_pkg) -> lp.Roster.lp_soname = soname)
        Roster.lib_packages
    in
    s.g_lib_imports <-
      List.filter (fun (so, _) -> so <> soname) s.g_lib_imports;
    s.g_deps <- List.filter (fun d -> d <> lp.Roster.lp_name) s.g_deps
  in
  let link () =
    let lp = Rng.choose erng unlinked in
    s.g_lib_imports <-
      (lp.Roster.lp_soname, List.hd lp.Roster.lp_exports)
      :: s.g_lib_imports;
    add_dep s lp.Roster.lp_name
  in
  match linked, unlinked with
  | [], [] -> ()
  | [], _ -> link ()
  | _, [] -> drop ()
  | _ -> if Rng.bool erng 0.5 then drop () else link ()

(* A brand-new filler package introduced at [release]: a fresh name
   (release-tagged, so it can never collide with a release-0 filler),
   a small popularity, and a modest level-compatible footprint. *)
let fresh_spec erng release i =
  let section = Rng.choose erng Roster.sections in
  let kind =
    Rng.choose erng [ "tool"; "lib"; "app"; "daemon"; "gui"; "cli" ]
  in
  let level = 1 + Rng.int erng 5 in
  let syscalls =
    if level < 2 then []
    else begin
      let candidates =
        Array.to_list Syscall_table.all
        |> List.filter_map (fun (e : Syscall_table.entry) ->
               let name = e.Syscall_table.name in
               let rank = stage_rank name in
               if rank >= 2 && rank <= level
                  && (not (List.mem name reserved_syscalls))
                  && not (List.mem name decoys)
               then Some name
               else None)
      in
      Rng.sample erng (min (2 + Rng.int erng 6) (List.length candidates))
        candidates
    end
  in
  let imports =
    Libc_catalog.all
    |> List.filter (fun (e : Libc_catalog.entry) ->
           e.Libc_catalog.tier = Libc_catalog.Ubiquitous
           && e.Libc_catalog.syscalls = [] && e.Libc_catalog.vops = [])
    |> fun pool ->
    Rng.sample erng (min (3 + Rng.int erng 5) (List.length pool)) pool
    |> List.map (fun (e : Libc_catalog.entry) -> e.Libc_catalog.name)
  in
  {
    g_name = Printf.sprintf "%s-%s-r%d-%d" section kind release i;
    g_section = section;
    g_prob = 0.0005 +. (0.02 *. Rng.float erng);
    g_level = level;
    g_essential = false;
    g_syscalls = syscalls;
    g_vops = [];
    g_pseudo = [];
    g_imports = imports;
    g_lib_imports = [];
    g_deps = [ "libc6" ];
    g_scripts = [];
    g_static = false;
    g_int80 = false;
    g_is_lib_pkg = None;
    g_util_of = None;
  }

let evolve ?(config = default_config) ?(churn = 0.05) ~release () :
    P.distribution =
  if release = 0 then generate ~config ()
  else
    Lapis_perf.Stage.time "evolve" @@ fun () ->
    let rng = Rng.create config.seed in
    let specs = plan config rng in
    let roster =
      ref
        (List.map
           (fun spec -> { ej_spec = spec; ej_src = Inherited (Rng.split rng) })
           specs)
    in
    for rel = 1 to release do
      let erng = Rng.create (evolve_key config.seed rel "") in
      let eligible = List.filter (fun j -> churnable j.ej_spec) !roster in
      let n_eligible = List.length eligible in
      let n_bump =
        max 1 (int_of_float (churn *. float_of_int n_eligible))
      in
      let n_side = max 1 (n_bump / 4) in
      (* version bumps *)
      let bumped = Rng.sample erng (min n_bump n_eligible) eligible in
      List.iter
        (fun j ->
          bump_spec erng j.ej_spec;
          j.ej_src <- Rekeyed (evolve_key config.seed rel j.ej_spec.g_name))
        bumped;
      count_evo "bump" (List.length bumped);
      (* re-links *)
      let relinkable =
        List.filter
          (fun j -> churnable j.ej_spec && not (List.memq j bumped))
          !roster
      in
      let relinked =
        Rng.sample erng (min n_side (List.length relinkable)) relinkable
      in
      List.iter
        (fun j ->
          relink_spec erng j.ej_spec;
          j.ej_src <- Rekeyed (evolve_key config.seed rel j.ej_spec.g_name))
        relinked;
      count_evo "relink" (List.length relinked);
      (* retirements: strip the retired names out of every remaining
         dependency list so no edge dangles *)
      let retirable = List.filter (fun j -> removable j.ej_spec) !roster in
      let retired =
        Rng.sample erng (min n_side (List.length retirable)) retirable
      in
      let retired_names = List.map (fun j -> j.ej_spec.g_name) retired in
      roster :=
        List.filter
          (fun j -> not (List.mem j.ej_spec.g_name retired_names))
          !roster;
      List.iter
        (fun j ->
          let s = j.ej_spec in
          if List.exists (fun d -> List.mem d retired_names) s.g_deps then
            s.g_deps <-
              List.filter (fun d -> not (List.mem d retired_names)) s.g_deps)
        !roster;
      count_evo "remove" (List.length retired);
      (* introductions *)
      let added =
        List.init n_side (fun i ->
            let s = fresh_spec erng rel i in
            { ej_spec = s;
              ej_src = Rekeyed (evolve_key config.seed rel s.g_name) })
      in
      roster := !roster @ added;
      count_evo "add" (List.length added)
    done;
    let jobs =
      List.map
        (fun j ->
          match j.ej_src with
          | Inherited rng -> (rng, j.ej_spec)
          | Rekeyed key -> (Rng.create key, j.ej_spec))
        !roster
    in
    emit_jobs config ~release jobs

let _ = add_unique
