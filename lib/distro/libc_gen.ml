(** Generator for the C runtime family binaries: libc.so.6,
    libpthread.so.0, librt.so.1, libdl.so.2 and the dynamic linker.

    Every export of {!Lapis_apidb.Libc_catalog} becomes a real function
    in the corresponding shared library, whose body issues exactly the
    system calls, vectored opcodes and pseudo-file references the
    catalogue records — so the analyzer discovers libc's contribution
    to application footprints from machine code, never from the
    catalogue. Exports with several syscalls route part of their work
    through internal (local) helper functions to give the call graph
    realistic depth. *)

open Lapis_apidb
open Lapis_asm

let lib_of_entry (e : Libc_catalog.entry) = e.Libc_catalog.lib

(* The base footprint every dynamically-linked program inherits:
   stage-I system calls, split between the dynamic linker's startup
   work and __libc_start_main (Table 5). *)
let ld_startup =
  Libc_catalog.startup_footprint Libc_catalog.Ld_so
  |> List.filter (fun n -> List.mem n Stages.stage1)

let libc_startup =
  List.filter (fun n -> not (List.mem n ld_startup)) Stages.stage1

let nr name = Syscall_table.nr_of_name_exn name

(* Body of one catalogue export. *)
let export_ops (e : Libc_catalog.entry) : Program.op list =
  if e.Libc_catalog.name = "syscall" then
    (* the generic syscall(2) wrapper: the number is its first
       argument, exactly the mov rax, rdi; syscall shape glibc uses —
       statically a parameterized summary site, resolved per caller *)
    [ Program.Arg_syscall ]
  else begin
    let vector_names = [ "ioctl"; "fcntl"; "prctl" ] in
    let has_vops = e.Libc_catalog.vops <> [] in
    let syscalls =
      (* when the export requests concrete opcodes, the bare vectored
         syscall is implied by the opcode instruction sequence *)
      if has_vops then
        List.filter (fun s -> not (List.mem s vector_names)) e.Libc_catalog.syscalls
      else e.Libc_catalog.syscalls
    in
    let syscall_ops = List.map (fun s -> Program.Direct_syscall (nr s)) syscalls in
    let vop_ops =
      List.map (fun (v, code) -> Program.Vectored_syscall (v, code)) e.Libc_catalog.vops
    in
    let pseudo_ops =
      List.map
        (fun p -> Program.Use_string p)
        (Libc_catalog.pseudo_files_of e.Libc_catalog.name)
    in
    let padding = [ Program.Padding (min 48 (e.Libc_catalog.size / 64)) ] in
    syscall_ops @ vop_ops @ pseudo_ops @ padding
  end

(* Special body for __libc_start_main: program startup issues the
   stage-I base syscalls not already covered by the dynamic linker. *)
let libc_start_main_ops =
  List.map (fun s -> Program.Direct_syscall (nr s)) libc_startup
  @ [ Program.Padding 32 ]

(* Split an export into a public function and an internal helper when
   the body is large: public = first half + call to __i_<name>. *)
let funcs_of_entry (e : Libc_catalog.entry) : Program.func list =
  let name = e.Libc_catalog.name in
  let ops =
    if name = "__libc_start_main" then libc_start_main_ops else export_ops e
  in
  if List.length ops > 6 then begin
    let rec split i acc = function
      | rest when i = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (i - 1) (x :: acc) rest
    in
    let head, tail = split (List.length ops / 2) [] ops in
    let helper = "__i_" ^ name in
    [ Program.func name (head @ [ Program.Call_local helper ]);
      Program.func ~global:false helper tail ]
  end
  else [ Program.func name ops ]

let soname = Libc_catalog.lib_soname

(* Imports from libc that the satellite runtime libraries use, for
   call-graph realism across the family. *)
let satellite_imports = function
  | Libc_catalog.Libpthread -> [ "memcpy"; "mmap"; "munmap" ]
  | Libc_catalog.Librt -> [ "memcpy" ]
  | Libc_catalog.Libdl -> [ "memcpy"; "mmap"; "munmap" ]
  | Libc_catalog.Libc | Libc_catalog.Ld_so -> []

let build_runtime_lib lib : Program.t =
  let entries = Libc_catalog.with_lib lib in
  let funcs = List.concat_map funcs_of_entry entries in
  let funcs =
    match funcs with
    | (first : Program.func) :: rest ->
      (* attach the cross-library imports to the first export *)
      let imports =
        List.map (fun i -> Program.Call_import i) (satellite_imports lib)
      in
      { first with Program.ops = first.Program.ops @ imports } :: rest
    | [] -> []
  in
  let needed = if lib = Libc_catalog.Libc then [] else [ soname Libc_catalog.Libc ] in
  Program.shared_lib ~soname:(soname lib) ~needed funcs

(* The dynamic linker: its startup work is charged to every
   dynamically-linked executable (Table 5). *)
let build_ld_so () : Program.t =
  let startup =
    List.map (fun s -> Program.Direct_syscall (nr s)) ld_startup
  in
  Program.shared_lib ~soname:(soname Libc_catalog.Ld_so) ~needed:[]
    [ Program.func "_dl_start" (startup @ [ Program.Padding 24 ]);
      Program.func "_dl_runtime_resolve"
        [ Program.Direct_syscall (nr "mprotect"); Program.Padding 8 ] ]

(* All runtime binaries as (soname, ELF bytes). *)
let build_all () : (string * string) list =
  let libs =
    [ Libc_catalog.Libc; Libc_catalog.Libpthread; Libc_catalog.Librt;
      Libc_catalog.Libdl ]
  in
  List.map
    (fun lib -> (soname lib, Builder.assemble_elf (build_runtime_lib lib)))
    libs
  @ [ (soname Libc_catalog.Ld_so, Builder.assemble_elf (build_ld_so ())) ]

(* Ground-truth helper: the API set an import of [sym] is expected to
   contribute to an application's resolved footprint (the symbol
   itself plus its transitive syscalls/vops/pseudo-files, which for
   the generated runtime equals the catalogue data). *)
let import_truth sym : Api.Set.t =
  match Libc_catalog.find sym with
  | None -> Api.Set.empty
  | Some e ->
    let s = Api.Set.singleton (Api.Libc_sym sym) in
    let s =
      List.fold_left
        (fun acc sc -> Api.Set.add (Api.Syscall (nr sc)) acc)
        s
        (if sym = "syscall" then [] else e.Libc_catalog.syscalls)
    in
    let s =
      List.fold_left
        (fun acc (v, code) ->
          (* a concrete opcode implies the vectored syscall itself *)
          Api.Set.add (Api.Vop (v, code))
            (Api.Set.add (Api.Syscall (Api.vector_syscall_nr v)) acc))
        s e.Libc_catalog.vops
    in
    List.fold_left
      (fun acc p -> Api.Set.add (Api.Pseudo_file p) acc)
      s
      (Libc_catalog.pseudo_files_of sym)

(* Ground truth for the runtime-provided base footprint of every
   dynamically-linked executable: stage-I syscalls plus the
   __libc_start_main symbol itself. *)
let base_truth : Api.Set.t =
  List.fold_left
    (fun acc s -> Api.Set.add (Api.Syscall (nr s)) acc)
    (Api.Set.singleton (Api.Libc_sym "__libc_start_main"))
    Stages.stage1
