(** Package and distribution model, mirroring the structure the paper
    measures: APT packages containing ELF executables, shared
    libraries and interpreted scripts, with dependency edges and
    popularity-contest installation counts. *)

type file_kind = Executable | Library | Script

type file = {
  path : string;
  kind : file_kind;
  bytes : string;  (** on-disk contents: ELF bytes or script text *)
}

type t = {
  name : string;
  section : string;  (** archive section, e.g. admin, devel, games *)
  installs : int;  (** popularity-contest installation count *)
  deps : string list;  (** package names this package depends on *)
  files : file list;
  essential : bool;
}

(* The generator records, for every package, the exact API set its
   binaries were built to request. The analyzer must recover a
   superset (in practice: exactly this set) from the bytes alone; the
   spot check of Section 2.3 is automated on this. *)
type ground_truth = (string, Lapis_apidb.Api.Set.t) Hashtbl.t

(* Temporal ground truth: per package, the API sets its binaries
   request during initialization and while serving. Two-phase server
   executables split their assigned APIs across the marked transition
   point; every other binary is phase-agnostic and contributes its
   whole footprint to both sets. The phase audit checks the analyzer's
   temporal attribution against this, per phase. *)
type phased_truth =
  (string, Lapis_apidb.Api.Set.t * Lapis_apidb.Api.Set.t) Hashtbl.t

type distribution = {
  packages : t list;
  runtime : (string * string) list;
      (** C runtime family: soname -> ELF bytes (libc, libpthread,
          librt, libdl and the dynamic linker) *)
  shared_libs : (string * string * string) list;
      (** non-runtime shared libraries: (soname, owning package, bytes) *)
  total_installs : int;
  truth : ground_truth;
  phase_truth : phased_truth;  (** (init, serving) per package *)
  seed : int;
  n_requested : int;
      (** the [n_packages] the generator was asked for — the actual
          package count is [max n_requested (length of the fixed
          roster)], so this is the value that names the corpus (it
          feeds the snapshot's generator identity key) *)
  release : int;
      (** evolution epoch: 0 for a freshly generated world, [r] after
          [Generator.evolve ~release:r]. Part of the corpus identity
          alongside [seed] and [n_requested]. *)
}

let install_prob dist pkg =
  float_of_int pkg.installs /. float_of_int dist.total_installs

let find dist name = List.find_opt (fun p -> p.name = name) dist.packages

let n_packages dist = List.length dist.packages

let all_files dist = List.concat_map (fun p -> p.files) dist.packages
