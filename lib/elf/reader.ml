(** Parser from ELF64 bytes back to {!Image.t}. This is the entry
    point of the study pipeline: the analyzer never sees generator
    state, only the bytes of each binary, exactly like the paper's
    objdump-based tool.

    The parser is the trust boundary of the whole tool: [lapis
    footprint]/[lapis seccomp] hand it arbitrary user files, and the
    fuzz harness ({!Lapis_fuzz.Harness}) hands it adversarial
    mutations of valid binaries. Every read therefore goes through the
    bounds-checked accessors below, and every failure is a structured
    {!error} whose {!kind} the pipeline's quarantine counters
    aggregate — never an exception. *)

type kind =
  | K_not_elf
  | K_unsupported
  | K_truncated
  | K_bad_header
  | K_bad_strtab
  | K_bad_reloc
  | K_malformed

type error =
  | Not_elf
  | Unsupported of string
  | Truncated of string
  | Bad_header of string
  | Bad_strtab of string
  | Bad_reloc of string
  | Malformed of string

let kind = function
  | Not_elf -> K_not_elf
  | Unsupported _ -> K_unsupported
  | Truncated _ -> K_truncated
  | Bad_header _ -> K_bad_header
  | Bad_strtab _ -> K_bad_strtab
  | Bad_reloc _ -> K_bad_reloc
  | Malformed _ -> K_malformed

let kind_name = function
  | K_not_elf -> "not-elf"
  | K_unsupported -> "unsupported"
  | K_truncated -> "truncated"
  | K_bad_header -> "bad-header"
  | K_bad_strtab -> "bad-strtab"
  | K_bad_reloc -> "bad-reloc"
  | K_malformed -> "malformed"

let all_kinds =
  [ K_not_elf; K_unsupported; K_truncated; K_bad_header; K_bad_strtab;
    K_bad_reloc; K_malformed ]

let pp_error ppf = function
  | Not_elf -> Fmt.pf ppf "not an ELF file"
  | Unsupported what -> Fmt.pf ppf "unsupported ELF: %s" what
  | Truncated what -> Fmt.pf ppf "truncated ELF: %s" what
  | Bad_header what -> Fmt.pf ppf "bad ELF header: %s" what
  | Bad_strtab what -> Fmt.pf ppf "bad string table: %s" what
  | Bad_reloc what -> Fmt.pf ppf "bad relocation: %s" what
  | Malformed what -> Fmt.pf ppf "malformed ELF: %s" what

exception Fail of error

let fail e = raise (Fail e)

(* --- bounds-checked accessor layer ---------------------------------
   Every multi-byte read states what it was reading; a read past the
   end of the buffer becomes [Truncated what] instead of an
   [Invalid_argument] escaping from [String.get]. [pos] values come
   from attacker-controlled fields, so they are validated as offsets
   (non-negative, in range) before any arithmetic that could wrap. *)

let need what s pos n =
  if pos < 0 || n < 0 || pos > String.length s - n then
    fail (Truncated what)

let u8 what s pos =
  need what s pos 1;
  Char.code s.[pos]

let u16 what s pos =
  need what s pos 2;
  Char.code s.[pos] lor (Char.code s.[pos + 1] lsl 8)

let u32 what s pos =
  need what s pos 4;
  u16 what s pos lor (u16 what s (pos + 2) lsl 16)

let u64 what s pos =
  (* The study's addresses fit in OCaml's 63-bit int. *)
  need what s pos 8;
  let lo = u32 what s pos and hi = u32 what s (pos + 4) in
  if hi land 0x80000000 <> 0 then fail (Malformed (what ^ ": 64-bit overflow"));
  lo lor (hi lsl 32)

type raw_section = {
  name : string;
  stype : int;
  addr : int;
  off : int;
  size : int;
  link : int;
  entsize : int;
}

(* NUL-terminated string at [pos] in a string table. A table with no
   terminator once silently yielded the un-terminated buffer tail,
   fabricating symbol and soname names out of whatever garbage
   followed — both the missing NUL and an out-of-range offset are
   [Bad_strtab] now. *)
let cstring what data pos =
  if pos < 0 || pos > String.length data then
    fail (Bad_strtab (what ^ ": offset outside string table"));
  match String.index_from_opt data pos '\x00' with
  | Some stop -> String.sub data pos (stop - pos)
  | None -> fail (Bad_strtab (what ^ ": missing NUL terminator"))

let section_data bytes s =
  (* [off]/[size] are file-controlled: check them as a range over the
     file instead of letting [String.sub] raise. *)
  if s.off < 0 || s.size < 0 || s.off > String.length bytes - s.size then
    fail (Truncated (Printf.sprintf "section %S data" s.name));
  String.sub bytes s.off s.size

let parse_sections bytes =
  let shoff = u64 "e_shoff" bytes 0x28 in
  let shentsize = u16 "e_shentsize" bytes 0x3A in
  let shnum = u16 "e_shnum" bytes 0x3C in
  let shstrndx = u16 "e_shstrndx" bytes 0x3E in
  if shentsize <> 64 then fail (Bad_header "e_shentsize is not 64");
  if shnum = 0 then fail (Bad_header "empty section table");
  (* the whole table must lie inside the file before per-entry reads *)
  if shoff < 0 || shoff > String.length bytes - (shnum * 64) then
    fail (Truncated "section header table");
  let raw i =
    let p = shoff + (i * 64) in
    ( u32 "sh_name" bytes p,
      {
        name = "";
        stype = u32 "sh_type" bytes (p + 4);
        addr = u64 "sh_addr" bytes (p + 16);
        off = u64 "sh_offset" bytes (p + 24);
        size = u64 "sh_size" bytes (p + 32);
        link = u32 "sh_link" bytes (p + 40);
        entsize = u64 "sh_entsize" bytes (p + 56);
      } )
  in
  let raws = List.init shnum raw in
  if shstrndx >= shnum then fail (Bad_header "e_shstrndx out of range");
  let _, shstr = List.nth raws shstrndx in
  let shstrtab = section_data bytes shstr in
  List.map
    (fun (nameoff, s) ->
      { s with name = cstring "section name" shstrtab nameoff })
    raws

let nth_section what sections i =
  match List.nth_opt sections i with
  | Some s -> s
  | None -> fail (Bad_header (what ^ " out of range"))

let parse_symbols bytes sections symsec =
  let strsec = nth_section "symtab link" sections symsec.link in
  let strtab = section_data bytes strsec in
  let data = section_data bytes symsec in
  let n = String.length data / 24 in
  List.init n (fun i ->
      let p = i * 24 in
      let nameoff = u32 "st_name" data p in
      let info = u8 "st_info" data (p + 4) in
      let shndx = u16 "st_shndx" data (p + 6) in
      let value = u64 "st_value" data (p + 8) in
      let size = u64 "st_size" data (p + 16) in
      (cstring "symbol name" strtab nameoff, info, shndx, value, size))

let find sections name = List.find_opt (fun s -> s.name = name) sections

let parse bytes : (Image.t, error) result =
  try
    if String.length bytes < 64 then fail Not_elf;
    if String.sub bytes 0 4 <> "\x7fELF" then fail Not_elf;
    if u8 "ei_class" bytes 4 <> 2 then fail (Unsupported "not ELF64");
    if u8 "ei_data" bytes 5 <> 1 then fail (Unsupported "not little-endian");
    let e_type = u16 "e_type" bytes 0x10 in
    if u16 "e_machine" bytes 0x12 <> 0x3E then
      fail (Unsupported "not x86-64");
    let entry = u64 "e_entry" bytes 0x18 in
    let sections = parse_sections bytes in
    let text =
      match find sections ".text" with
      | Some s -> s
      | None -> fail (Malformed "no .text")
    in
    let rodata = find sections ".rodata" in
    let interp =
      match find sections ".interp" with
      | Some s ->
        let d = section_data bytes s in
        Some (cstring "PT_INTERP path" d 0)
      | None -> None
    in
    let dynsyms =
      match find sections ".dynsym" with
      | Some s -> parse_symbols bytes sections s
      | None -> []
    in
    let imports =
      List.filter_map
        (fun (name, _, shndx, _, _) ->
          if shndx = 0 && name <> "" then Some name else None)
        dynsyms
    in
    let symbols =
      match find sections ".symtab" with
      | Some s ->
        parse_symbols bytes sections s
        |> List.filter_map (fun (name, info, shndx, value, size) ->
               if shndx <> 0 && name <> "" then
                 Some
                   {
                     Image.sym_name = name;
                     sym_addr = value;
                     sym_size = size;
                     sym_global = info lsr 4 = 1;
                   }
               else None)
      | None -> []
    in
    let plt_got =
      match find sections ".rela.plt" with
      | Some s ->
        let data = section_data bytes s in
        let dynsym_arr = Array.of_list dynsyms in
        List.init (String.length data / 24) (fun i ->
            let p = i * 24 in
            let got = u64 "r_offset" data p in
            let info = u64 "r_info" data (p + 8) in
            let symidx = info lsr 32 in
            if symidx >= Array.length dynsym_arr then
              fail (Bad_reloc "symbol index past .dynsym");
            let name, _, _, _, _ = dynsym_arr.(symidx) in
            (name, got))
      | None -> []
    in
    let needed, soname =
      match find sections ".dynamic" with
      | Some s ->
        let strsec = nth_section "dynamic link" sections s.link in
        let strtab = section_data bytes strsec in
        let data = section_data bytes s in
        let n = String.length data / 16 in
        let needed = ref [] and soname = ref None in
        for i = 0 to n - 1 do
          let tag = u64 "d_tag" data (i * 16) in
          let v = u64 "d_val" data ((i * 16) + 8) in
          (* [v] indexes the linked strtab; validate it here so a
             bogus dynamic entry cannot push [cstring] out of range *)
          if tag = 1 || tag = 14 then begin
            if v >= String.length strtab then
              fail (Bad_strtab "dynamic entry offset outside .dynstr");
            if tag = 1 then needed := cstring "DT_NEEDED" strtab v :: !needed
            else soname := Some (cstring "DT_SONAME" strtab v)
          end
        done;
        (List.rev !needed, !soname)
      | None -> ([], None)
    in
    let kind =
      if e_type = 3 then Image.Shared_lib
      else if imports = [] && needed = [] then Image.Exec_static
      else Image.Exec_dynamic
    in
    Ok
      {
        Image.kind;
        entry;
        text = section_data bytes text;
        text_addr = text.addr;
        rodata =
          (match rodata with Some s -> section_data bytes s | None -> "");
        rodata_addr = (match rodata with Some s -> s.addr | None -> 0);
        symbols;
        imports;
        plt_got;
        needed;
        soname;
        interp;
      }
  with
  | Fail e -> Error e
  | Invalid_argument what -> Error (Malformed ("out-of-bounds read: " ^ what))
