(** Parser from ELF64 bytes to {!Image.t} — the entry point of the
    study pipeline. The analyzer never sees generator state, only the
    bytes of each binary, exactly like the paper's objdump-based
    tool.

    This is the tool's trust boundary: [lapis footprint] and [lapis
    seccomp] hand it arbitrary user files, and the fuzz harness hands
    it adversarial mutations of valid binaries. Parsing therefore goes
    through a bounds-checked accessor layer and classifies every
    failure into the structured taxonomy below, which the pipeline's
    per-kind quarantine counters aggregate. *)

type kind =
  | K_not_elf
  | K_unsupported
  | K_truncated  (** a header or section claims bytes past end of file *)
  | K_bad_header  (** inconsistent e_sh* fields or section indexes *)
  | K_bad_strtab  (** string offset out of range, or no NUL terminator *)
  | K_bad_reloc  (** relocation symbol index past .dynsym *)
  | K_malformed  (** everything else *)

type error =
  | Not_elf
  | Unsupported of string  (** valid ELF, but not ELF64/x86-64/LE *)
  | Truncated of string
  | Bad_header of string
  | Bad_strtab of string
  | Bad_reloc of string
  | Malformed of string

val kind : error -> kind

val kind_name : kind -> string
(** Stable short name ("truncated", "bad-strtab", ...) used as the
    quarantine counter key in [world.stats] and the bench JSON. *)

val all_kinds : kind list

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Image.t, error) result
(** Parse the bytes of an ELF file. Never raises: malformed input
    yields [Error]. *)
