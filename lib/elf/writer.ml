(** Serializer from {!Image.t} to ELF64 bytes.

    Emits a single-PT_LOAD object with the sections the study's
    analysis consumes: .interp, .text, .rodata, .got, .dynsym,
    .dynstr, .rela.plt, .dynamic, .symtab, .strtab, .shstrtab. The
    image's section addresses must come from {!Layout.compute} (the
    assembler guarantees this); the writer asserts it. *)

let u16 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

let u32 b v =
  u16 b (v land 0xFFFF);
  u16 b ((v lsr 16) land 0xFFFF)

let u64 b v =
  u32 b (v land 0xFFFFFFFF);
  u32 b ((v asr 32) land 0xFFFFFFFF)

(* String table builder: returns (bytes, offset-of function). *)
let make_strtab strings =
  let b = Buffer.create 256 in
  Buffer.add_char b '\x00';
  let offsets = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem offsets s) then begin
        Hashtbl.add offsets s (Buffer.length b);
        Buffer.add_string b s;
        Buffer.add_char b '\x00'
      end)
    strings;
  (Buffer.contents b, fun s -> if s = "" then 0 else Hashtbl.find offsets s)

type section = {
  s_name : string;
  s_type : int;
  s_flags : int;
  s_addr : int;
  s_data : string;
  s_link : int;
  s_info : int;
  s_align : int;
  s_entsize : int;
  s_fixed_off : int option;  (** allocated sections have fixed offsets *)
}

let sht_progbits = 1
let sht_symtab = 2
let sht_strtab = 3
let sht_rela = 4
let sht_dynamic = 6
let sht_dynsym = 11

let shf_write = 1
let shf_alloc = 2
let shf_execinstr = 4

let r_x86_64_jump_slot = 7

let dt_needed = 1
let dt_soname = 14

let sym_entry buf strtab_off ~name ~info ~shndx ~value ~size =
  u32 buf (strtab_off name);
  Buffer.add_char buf (Char.chr info);
  Buffer.add_char buf '\x00';
  u16 buf shndx;
  u64 buf value;
  u64 buf size

let write (img : Image.t) : string =
  let layout =
    Layout.compute ~kind:img.kind ~interp:img.interp
      ~text_size:(String.length img.text)
      ~rodata_size:(String.length img.rodata)
      ~n_imports:(List.length img.imports)
  in
  assert (layout.Layout.text_addr = img.text_addr);
  assert (layout.Layout.rodata_addr = img.rodata_addr);
  let is_dynamic = img.kind <> Image.Exec_static in
  (* --- dynstr / dynsym --- *)
  let dyn_names =
    img.imports @ List.map (fun s -> s.Image.sym_name) img.symbols
    @ img.needed
    @ (match img.soname with Some s -> [ s ] | None -> [])
  in
  let dynstr, dynstr_off = make_strtab dyn_names in
  let dynsym_buf = Buffer.create 256 in
  sym_entry dynsym_buf dynstr_off ~name:"" ~info:0 ~shndx:0 ~value:0 ~size:0;
  List.iter
    (fun name ->
      (* STB_GLOBAL=1, STT_FUNC=2 -> info 0x12; undefined: shndx 0 *)
      sym_entry dynsym_buf dynstr_off ~name ~info:0x12 ~shndx:0 ~value:0
        ~size:0)
    img.imports;
  List.iter
    (fun s ->
      if s.Image.sym_global then
        sym_entry dynsym_buf dynstr_off ~name:s.Image.sym_name ~info:0x12
          ~shndx:1 ~value:s.Image.sym_addr ~size:s.Image.sym_size)
    img.symbols;
  let dynsym = Buffer.contents dynsym_buf in
  (* --- rela.plt --- *)
  (* plt_got lookup by hash: an assoc scan here is quadratic in the
     import count, which dominates the writer on import-heavy apps *)
  let got_of = Hashtbl.create (2 * List.length img.plt_got) in
  List.iter (fun (n, g) -> Hashtbl.replace got_of n g) img.plt_got;
  let rela_buf = Buffer.create 128 in
  List.iteri
    (fun i name ->
      let got = Hashtbl.find got_of name in
      u64 rela_buf got;
      u64 rela_buf (((i + 1) lsl 32) lor r_x86_64_jump_slot);
      u64 rela_buf 0)
    img.imports;
  let rela_plt = Buffer.contents rela_buf in
  (* --- dynamic --- *)
  let dyn_buf = Buffer.create 64 in
  List.iter
    (fun n ->
      u64 dyn_buf dt_needed;
      u64 dyn_buf (dynstr_off n))
    img.needed;
  (match img.soname with
   | Some s ->
     u64 dyn_buf dt_soname;
     u64 dyn_buf (dynstr_off s)
   | None -> ());
  u64 dyn_buf 0;
  u64 dyn_buf 0;
  let dynamic = Buffer.contents dyn_buf in
  (* --- symtab / strtab (all defined symbols, incl. local) --- *)
  let strtab, strtab_off =
    make_strtab (List.map (fun s -> s.Image.sym_name) img.symbols)
  in
  let symtab_buf = Buffer.create 256 in
  sym_entry symtab_buf strtab_off ~name:"" ~info:0 ~shndx:0 ~value:0 ~size:0;
  List.iter
    (fun s ->
      let info = if s.Image.sym_global then 0x12 else 0x02 in
      sym_entry symtab_buf strtab_off ~name:s.Image.sym_name ~info ~shndx:1
        ~value:s.Image.sym_addr ~size:s.Image.sym_size)
    img.symbols;
  let symtab = Buffer.contents symtab_buf in
  let got = String.make layout.Layout.got_size '\x00' in
  (* --- section list --- *)
  let sections =
    [ { s_name = ".text"; s_type = sht_progbits;
        s_flags = shf_alloc lor shf_execinstr; s_addr = img.text_addr;
        s_data = img.text; s_link = 0; s_info = 0; s_align = 16;
        s_entsize = 0; s_fixed_off = Some layout.Layout.text_off } ]
    @ [ { s_name = ".rodata"; s_type = sht_progbits; s_flags = shf_alloc;
          s_addr = img.rodata_addr; s_data = img.rodata; s_link = 0;
          s_info = 0; s_align = 16; s_entsize = 0;
          s_fixed_off = Some layout.Layout.rodata_off } ]
    @ (match img.interp with
       | Some p ->
         [ { s_name = ".interp"; s_type = sht_progbits; s_flags = shf_alloc;
             s_addr = layout.Layout.base + layout.Layout.interp_off;
             s_data = p ^ "\x00"; s_link = 0; s_info = 0; s_align = 1;
             s_entsize = 0; s_fixed_off = Some layout.Layout.interp_off } ]
       | None -> [])
    @ (if is_dynamic then
         [ { s_name = ".got"; s_type = sht_progbits;
             s_flags = shf_alloc lor shf_write; s_addr = layout.Layout.got_addr;
             s_data = got; s_link = 0; s_info = 0; s_align = 8; s_entsize = 8;
             s_fixed_off = Some layout.Layout.got_off } ]
       else [])
    @ []
  in
  (* Indices: we place non-alloc sections after; compute name table last. *)
  let nonalloc =
    if is_dynamic then
      [ { s_name = ".dynsym"; s_type = sht_dynsym; s_flags = 0; s_addr = 0;
          s_data = dynsym; s_link = 0 (* patched: dynstr index *);
          s_info = 1; s_align = 8; s_entsize = 24; s_fixed_off = None };
        { s_name = ".dynstr"; s_type = sht_strtab; s_flags = 0; s_addr = 0;
          s_data = dynstr; s_link = 0; s_info = 0; s_align = 1; s_entsize = 0;
          s_fixed_off = None };
        { s_name = ".rela.plt"; s_type = sht_rela; s_flags = 0; s_addr = 0;
          s_data = rela_plt; s_link = 0 (* patched *); s_info = 0;
          s_align = 8; s_entsize = 24; s_fixed_off = None };
        { s_name = ".dynamic"; s_type = sht_dynamic; s_flags = 0; s_addr = 0;
          s_data = dynamic; s_link = 0 (* patched *); s_info = 0; s_align = 8;
          s_entsize = 16; s_fixed_off = None } ]
    else []
  in
  let tables =
    [ { s_name = ".symtab"; s_type = sht_symtab; s_flags = 0; s_addr = 0;
        s_data = symtab; s_link = 0 (* patched: strtab *); s_info = 1;
        s_align = 8; s_entsize = 24; s_fixed_off = None };
      { s_name = ".strtab"; s_type = sht_strtab; s_flags = 0; s_addr = 0;
        s_data = strtab; s_link = 0; s_info = 0; s_align = 1; s_entsize = 0;
        s_fixed_off = None } ]
  in
  let all_sections = sections @ nonalloc @ tables in
  let shstrtab_data, shstr_off =
    make_strtab (".shstrtab" :: List.map (fun s -> s.s_name) all_sections)
  in
  let all_sections =
    all_sections
    @ [ { s_name = ".shstrtab"; s_type = sht_strtab; s_flags = 0; s_addr = 0;
          s_data = shstrtab_data; s_link = 0; s_info = 0; s_align = 1;
          s_entsize = 0; s_fixed_off = None } ]
  in
  let index_of name =
    let rec go i = function
      | [] -> 0
      | s :: rest -> if s.s_name = name then i else go (i + 1) rest
    in
    go 1 all_sections
  in
  let patch_link s =
    match s.s_name with
    | ".dynsym" -> { s with s_link = index_of ".dynstr" }
    | ".rela.plt" -> { s with s_link = index_of ".dynsym" }
    | ".dynamic" -> { s with s_link = index_of ".dynstr" }
    | ".symtab" -> { s with s_link = index_of ".strtab" }
    | _ -> s
  in
  let all_sections = List.map patch_link all_sections in
  (* --- assign file offsets --- *)
  let fixed_end =
    List.fold_left
      (fun acc s ->
        match s.s_fixed_off with
        | Some off -> max acc (off + String.length s.s_data)
        | None -> acc)
      (layout.Layout.interp_off + layout.Layout.interp_size)
      all_sections
  in
  let next = ref (Layout.align fixed_end 8) in
  let offsets =
    List.map
      (fun s ->
        match s.s_fixed_off with
        | Some off -> (s, off)
        | None ->
          let off = Layout.align !next s.s_align in
          next := off + String.length s.s_data;
          (s, off))
      all_sections
  in
  let shoff = Layout.align !next 8 in
  let shnum = List.length all_sections + 1 in
  let total = shoff + (shnum * 64) in
  (* --- emit --- *)
  let out = Buffer.create total in
  (* ELF header *)
  Buffer.add_string out "\x7fELF\x02\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00";
  let e_type = match img.kind with
    | Image.Exec_static | Image.Exec_dynamic -> 2  (* ET_EXEC *)
    | Image.Shared_lib -> 3  (* ET_DYN *)
  in
  u16 out e_type;
  u16 out 0x3E;  (* EM_X86_64 *)
  u32 out 1;
  u64 out img.entry;
  u64 out Layout.header_size;  (* phoff *)
  u64 out shoff;
  u32 out 0;  (* flags *)
  u16 out 64;  (* ehsize *)
  u16 out Layout.phentsize;
  u16 out (Layout.phnum ~interp:img.interp);
  u16 out 64;  (* shentsize *)
  u16 out shnum;
  u16 out (index_of ".shstrtab");
  (* Program headers *)
  let pt_load = 1 and pt_interp = 3 in
  let emit_phdr ~ptype ~flags ~off ~vaddr ~filesz ~memsz ~palign =
    u32 out ptype; u32 out flags; u64 out off; u64 out vaddr; u64 out vaddr;
    u64 out filesz; u64 out memsz; u64 out palign
  in
  emit_phdr ~ptype:pt_load ~flags:7 ~off:0 ~vaddr:layout.Layout.base
    ~filesz:total ~memsz:total ~palign:0x1000;
  (match img.interp with
   | Some p ->
     emit_phdr ~ptype:pt_interp ~flags:4
       ~off:layout.Layout.interp_off
       ~vaddr:(layout.Layout.base + layout.Layout.interp_off)
       ~filesz:(String.length p + 1) ~memsz:(String.length p + 1) ~palign:1
   | None -> ());
  (* Section data *)
  let pad_to off =
    let gap = off - Buffer.length out in
    if gap > 0 then Buffer.add_string out (String.make gap '\x00')
  in
  List.iter
    (fun (s, off) ->
      pad_to off;
      (* fixed-offset sections may overlap padding only, never data *)
      assert (Buffer.length out <= off);
      Buffer.add_string out s.s_data)
    (List.sort (fun (_, a) (_, b) -> compare a b) offsets);
  pad_to shoff;
  (* Section header table: entry 0 is the null section *)
  for _ = 1 to 64 do Buffer.add_char out '\x00' done;
  List.iter
    (fun s ->
      let off = List.assq s offsets in
      u32 out (shstr_off s.s_name);
      u32 out s.s_type;
      u64 out s.s_flags;
      u64 out s.s_addr;
      u64 out off;
      u64 out (String.length s.s_data);
      u32 out s.s_link;
      u32 out s.s_info;
      u64 out s.s_align;
      u64 out s.s_entsize)
    all_sections;
  Buffer.contents out
