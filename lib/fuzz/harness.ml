(** Mutational fuzz harness for the binary-ingestion path.

    Drives [Reader.parse -> Binary.analyze -> Resolve -> Trace] over
    seeded mutations of writer-produced ELFs, asserting the robustness
    contract the paper's tool needed across 66,275 real binaries:
    every input terminates promptly with [Ok] or a structured
    [Error] — never an uncaught exception, out-of-bounds read, or
    hang. A campaign is a pure function of its configuration, so any
    crash replays from the printed seed. *)

module Rng = Lapis_distro.Rng
module Reader = Lapis_elf.Reader
module Binary = Lapis_analysis.Binary
module Resolve = Lapis_analysis.Resolve
module Trace = Lapis_analysis.Trace
module Stage = Lapis_perf.Stage
module P = Lapis_distro.Package

type config = {
  seed : int;  (** campaign seed; printed so failures replay *)
  cases : int;  (** mutated inputs to run *)
  base_packages : int;  (** size of the generated seed corpus *)
  trace : bool;  (** also run the bounded tracer on survivors *)
}

let default_config =
  { seed = 0xF00D; cases = 1_000; base_packages = 25; trace = true }

type crash = {
  c_case : int;  (** case index, for replay *)
  c_kinds : string list;  (** mutation stack that produced the input *)
  c_exn : string;
  c_backtrace : string;
}

type report = {
  r_seed : int;
  r_cases : int;
  r_ok : int;  (** parsed and analyzed to completion *)
  r_rejected : (string * int) list;  (** per {!Reader.kind_name} *)
  r_mutations : (string * int) list;  (** times each mutation applied *)
  r_crashes : crash list;  (** must be empty *)
  r_fuel : (string * int) list;  (** fuel-counter deltas this campaign *)
  r_slowest_case : int;
  r_slowest_ms : float;
}

let fuel_counters =
  [ "fuel:dataflow-exhausted"; "fuel:decode-exhausted";
    "fuel:trace-exhausted" ]

(* Tight tracer limits: the harness cares about termination, not
   coverage, and a 10k-case campaign cannot afford 200k steps each. *)
let trace_limits = { Trace.max_steps = 20_000; Trace.max_depth = 64 }

(* --- seed corpus ---------------------------------------------------- *)

(* Every ELF payload of a small generated distribution: the runtime
   family, the application shared libraries, and each package's
   binaries. These are exactly the writer-produced bytes the clean
   pipeline sees, so mutations explore the neighborhood of real
   inputs instead of random noise. *)
let corpus ~base_packages ~seed : string array =
  let dist =
    Lapis_distro.Generator.generate
      ~config:
        { Lapis_distro.Generator.default_config with
          n_packages = base_packages;
          seed }
      ()
  in
  let elves = ref [] in
  List.iter (fun (_, bytes) -> elves := bytes :: !elves) dist.P.runtime;
  List.iter (fun (_, _, bytes) -> elves := bytes :: !elves) dist.P.shared_libs;
  List.iter
    (fun (pkg : P.t) ->
      List.iter
        (fun (f : P.file) ->
          if String.length f.P.bytes >= 4 && String.sub f.P.bytes 0 4 = "\x7fELF"
          then elves := f.P.bytes :: !elves)
        pkg.P.files)
    dist.P.packages;
  Array.of_list (List.rev !elves)

(* A minimal resolution world so survivors exercise the cross-library
   and tracing paths. Built from pristine runtime bytes: a parse
   failure here would be a bug in the writer, not the fuzz target. *)
let clean_world ~base_packages ~seed : Resolve.world =
  let dist =
    Lapis_distro.Generator.generate
      ~config:
        { Lapis_distro.Generator.default_config with
          n_packages = base_packages;
          seed }
      ()
  in
  let runtime_sonames = List.map fst dist.P.runtime in
  let libs =
    List.filter_map
      (fun (soname, bytes) ->
        match Reader.parse bytes with
        | Ok img -> Some (soname, Binary.analyze img)
        | Error _ -> None)
      dist.P.runtime
  in
  let ld_so = List.assoc_opt "ld-linux-x86-64.so.2" libs in
  Resolve.make_world ?ld_so
    ~libc_family:(fun soname -> List.mem soname runtime_sonames)
    libs

(* --- one case ------------------------------------------------------- *)

type outcome =
  | Survived  (** parsed and analyzed cleanly *)
  | Rejected of string  (** structured error, by kind name *)
  | Crashed of string * string  (** exn, backtrace: the failure mode *)

(* Run the whole ingestion path over one mutated input. The only
   acceptable outcomes are [Survived] and [Rejected]: any exception
   escaping is the bug class this harness exists to find. *)
let run_case ~trace world (bytes : string) : outcome =
  match Reader.parse bytes with
  | Error e -> Rejected Reader.(kind_name (kind e))
  | Ok img ->
    (try
       let bin = Binary.analyze ~mode:Binary.Dataflow img in
       ignore (Binary.analyze ~mode:Binary.Linear img : Binary.t);
       ignore (Resolve.binary_footprint world bin : _);
       if trace then
         ignore (Trace.run ~limits:trace_limits world bin : Trace.result);
       Survived
     with e ->
       let bt = Printexc.get_backtrace () in
       Crashed (Printexc.to_string e, bt))
  | exception e ->
    (* Reader.parse returning [result] is itself part of the contract *)
    let bt = Printexc.get_backtrace () in
    Crashed ("Reader.parse raised: " ^ Printexc.to_string e, bt)

(* Deterministic per-case stream: depends only on (seed, case index),
   so one failing case replays without rerunning its predecessors. *)
let case_rng ~seed i = Rng.create ((seed * 1_000_003) + i)

(* The exact input case [i] of a campaign runs, for replay/debugging. *)
let case_input cfg ~corpus:(c : string array) i : string * Mutate.kind list =
  let rng = case_rng ~seed:cfg.seed i in
  let base = c.(Rng.int rng (Array.length c)) in
  Mutate.random rng base

(* --- campaign ------------------------------------------------------- *)

let run ?(config = default_config) () : report =
  let c = corpus ~base_packages:config.base_packages ~seed:config.seed in
  if Array.length c = 0 then invalid_arg "Harness.run: empty seed corpus";
  let world = clean_world ~base_packages:config.base_packages ~seed:config.seed in
  let fuel0 = List.map (fun n -> (n, Stage.counter n)) fuel_counters in
  let rejected : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let mutations : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let ok = ref 0 in
  let crashes = ref [] in
  let slowest_case = ref 0 in
  let slowest_ns = ref 0L in
  for i = 0 to config.cases - 1 do
    let bytes, kinds = case_input config ~corpus:c i in
    List.iter (fun k -> bump mutations (Mutate.name k)) kinds;
    let t0 = Monotonic_clock.now () in
    (match run_case ~trace:config.trace world bytes with
     | Survived -> incr ok
     | Rejected kind -> bump rejected kind
     | Crashed (exn, bt) ->
       crashes :=
         { c_case = i;
           c_kinds = List.map Mutate.name kinds;
           c_exn = exn;
           c_backtrace = bt }
         :: !crashes);
    let dt = Int64.sub (Monotonic_clock.now ()) t0 in
    if Int64.compare dt !slowest_ns > 0 then begin
      slowest_ns := dt;
      slowest_case := i
    end
  done;
  let table tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    r_seed = config.seed;
    r_cases = config.cases;
    r_ok = !ok;
    r_rejected = table rejected;
    r_mutations = table mutations;
    r_crashes = List.rev !crashes;
    r_fuel =
      List.map
        (fun (n, before) -> (n, Stage.counter n - before))
        fuel0;
    r_slowest_case = !slowest_case;
    r_slowest_ms = Int64.to_float !slowest_ns /. 1e6;
  }

let pp_report ppf (r : report) =
  let total_rejected = List.fold_left (fun n (_, v) -> n + v) 0 r.r_rejected in
  Format.fprintf ppf
    "fuzz campaign: seed=%d cases=%d ok=%d rejected=%d crashes=%d@\n"
    r.r_seed r.r_cases r.r_ok total_rejected (List.length r.r_crashes);
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  reject %-12s %6d@\n" k n)
    r.r_rejected;
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  mutate %-15s %6d@\n" k n)
    r.r_mutations;
  List.iter
    (fun (k, n) -> if n > 0 then Format.fprintf ppf "  %-26s %6d@\n" k n)
    r.r_fuel;
  Format.fprintf ppf "  slowest case %d: %.1f ms@\n" r.r_slowest_case
    r.r_slowest_ms;
  List.iter
    (fun cr ->
      Format.fprintf ppf "  CRASH case=%d kinds=[%s]: %s@\n%s@\n" cr.c_case
        (String.concat "," cr.c_kinds) cr.c_exn cr.c_backtrace)
    r.r_crashes

(* --- pipeline quarantine fuzz --------------------------------------- *)

type smoke = {
  s_analyzed : Lapis_store.Pipeline.analyzed;
  s_mutated : int;  (** package files whose bytes were mutated *)
  s_forced : int;  (** of those, truncated hard enough to always reject *)
}

(* End-to-end containment check: corrupt a slice of a distribution's
   package files, run the full pipeline, and let the caller assert the
   run completes with the damage counted in [world.stats.rejects]
   rather than dying. Half the victims get a header truncation that
   can never parse (a lower bound on the expected quarantine count);
   the rest get the full mutation stack, which may or may not still
   parse. *)
let pipeline_smoke ?(seed = 7) ?(packages = 20) ?(victims = 12) () : smoke =
  let dist =
    Lapis_distro.Generator.generate
      ~config:
        { Lapis_distro.Generator.default_config with
          n_packages = packages;
          seed }
      ()
  in
  let rng = Rng.create ((seed * 7_368_787) + 1) in
  let mutated = ref 0 and forced = ref 0 in
  let mutate_file (f : P.file) =
    if
      !mutated < victims
      && String.length f.P.bytes >= 64
      && String.sub f.P.bytes 0 4 = "\x7fELF"
      && Rng.bool rng 0.5
    then begin
      incr mutated;
      let bytes =
        if !mutated mod 2 = 0 then begin
          (* keep the magic, lose the header: unconditionally rejected *)
          incr forced;
          String.sub f.P.bytes 0 (16 + Rng.int rng 40)
        end
        else fst (Mutate.random rng f.P.bytes)
      in
      { f with P.bytes }
    end
    else f
  in
  let dist =
    { dist with
      P.packages =
        List.map
          (fun (pkg : P.t) ->
            { pkg with P.files = List.map mutate_file pkg.P.files })
          dist.P.packages
    }
  in
  {
    (* caching is keyed by content digest, which a fuzz run mutates on
       purpose — run cold so every mutant is analyzed for real *)
    s_analyzed =
      Lapis_store.Pipeline.run
        ~config:{ Lapis_store.Pipeline.default with cache = false }
        dist;
    s_mutated = !mutated;
    s_forced = !forced;
  }

(* --- format-4 index image fuzz -------------------------------------- *)

(* Same contract, different attack surface: seeded mutations of a
   pristine format-4 index image driven through [Query.of_image].
   The loader promises total validation — truncations, bit flips,
   unaligned or oversized section offsets, and corrupt counts must
   all come back as structured [Snapshot.error]s, and any image that
   does load must answer queries without an uncaught exception. Half
   the cases load with digest verification off, because the digest
   would otherwise mask every structural check behind
   [Digest_mismatch]. *)

module Query = Lapis_query.Query
module Snapshot = Lapis_store.Snapshot

type image_report = {
  ii_seed : int;
  ii_cases : int;
  ii_ok : int;  (** mutants that still loaded and answered queries *)
  ii_rejected : (string * int) list;  (** per error constructor *)
  ii_verify_off : int;  (** cases run with digest verification off *)
  ii_crashes : crash list;  (** must be empty *)
}

let snapshot_error_name : Snapshot.error -> string = function
  | Snapshot.Not_snapshot -> "not-snapshot"
  | Snapshot.Unsupported_version _ -> "unsupported-version"
  | Snapshot.Truncated _ -> "truncated"
  | Snapshot.Digest_mismatch -> "digest-mismatch"
  | Snapshot.Corrupt _ -> "corrupt"
  | Snapshot.Io _ -> "io"
  | Snapshot.Needs_base _ -> "needs-base"
  | Snapshot.Base_mismatch _ -> "base-mismatch"

(* Pristine image of a small analyzed world. A failure here is a bug
   in the image writer, not a fuzz finding. *)
let image_bytes ~base_packages ~seed : string =
  let dist =
    Lapis_distro.Generator.generate
      ~config:
        { Lapis_distro.Generator.default_config with
          n_packages = base_packages;
          seed }
      ()
  in
  let analyzed = Lapis_store.Pipeline.run dist in
  let idx = Query.index analyzed.Lapis_store.Pipeline.store in
  match Query.to_image_string ~seed ~source_key:"fuzz" idx with
  | Ok s -> s
  | Error _ ->
    invalid_arg "Harness.image_bytes: pristine image failed to encode"

(* Load one mutated image and, when it loads, answer a few queries —
   including forcing the lazily-decoded per-binary sets, the only
   part of the image [of_image] does not validate up front. *)
let run_image_case ~verify (bytes : string) : outcome =
  match Query.of_image ~verify bytes with
  | Error e -> Rejected (snapshot_error_name e)
  | Ok idx ->
    (try
       ignore (Query.eval_syscalls idx [ 0; 1; 2; 3 ] : float);
       ignore (Query.eval_syscalls ~phase:Query.Init idx [ 0; 1 ] : float);
       ignore (Query.top_n idx 5 : Query.ranked list);
       ignore (Query.bins idx : (Query.bin_sets array, Snapshot.error) result);
       Survived
     with e ->
       let bt = Printexc.get_backtrace () in
       Crashed (Printexc.to_string e, bt))
  | exception e ->
    (* of_image returning [result] is itself part of the contract *)
    let bt = Printexc.get_backtrace () in
    Crashed ("Query.of_image raised: " ^ Printexc.to_string e, bt)

let run_images ?(config = default_config) () : image_report =
  let base =
    image_bytes ~base_packages:config.base_packages ~seed:config.seed
  in
  let rejected : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace rejected k
      (1 + Option.value ~default:0 (Hashtbl.find_opt rejected k))
  in
  let ok = ref 0 and verify_off = ref 0 and crashes = ref [] in
  for i = 0 to config.cases - 1 do
    (* Distinct salt from the ELF campaign so the two case streams
       decorrelate even under the same seed. *)
    let rng = case_rng ~seed:(config.seed lxor 0x1A9E55) i in
    let bytes, kinds = Mutate.random rng base in
    let verify = Rng.bool rng 0.5 in
    if not verify then incr verify_off;
    match run_image_case ~verify bytes with
    | Survived -> incr ok
    | Rejected kind -> bump kind
    | Crashed (exn, bt) ->
      crashes :=
        { c_case = i;
          c_kinds = List.map Mutate.name kinds;
          c_exn = exn;
          c_backtrace = bt }
        :: !crashes
  done;
  {
    ii_seed = config.seed;
    ii_cases = config.cases;
    ii_ok = !ok;
    ii_rejected =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) rejected []);
    ii_verify_off = !verify_off;
    ii_crashes = List.rev !crashes;
  }

let pp_image_report ppf (r : image_report) =
  let total_rejected =
    List.fold_left (fun n (_, v) -> n + v) 0 r.ii_rejected
  in
  Format.fprintf ppf
    "image fuzz campaign: seed=%d cases=%d ok=%d rejected=%d \
     (verify off on %d) crashes=%d@\n"
    r.ii_seed r.ii_cases r.ii_ok total_rejected r.ii_verify_off
    (List.length r.ii_crashes);
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  reject %-20s %6d@\n" k n)
    r.ii_rejected;
  List.iter
    (fun cr ->
      Format.fprintf ppf "  CRASH case=%d kinds=[%s]: %s@\n%s@\n" cr.c_case
        (String.concat "," cr.c_kinds) cr.c_exn cr.c_backtrace)
    r.ii_crashes
