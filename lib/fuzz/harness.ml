(** Mutational fuzz harness for the binary-ingestion path.

    Drives [Reader.parse -> Binary.analyze -> Resolve -> Trace] over
    seeded mutations of writer-produced ELFs, asserting the robustness
    contract the paper's tool needed across 66,275 real binaries:
    every input terminates promptly with [Ok] or a structured
    [Error] — never an uncaught exception, out-of-bounds read, or
    hang. A campaign is a pure function of its configuration, so any
    crash replays from the printed seed. *)

module Rng = Lapis_distro.Rng
module Reader = Lapis_elf.Reader
module Binary = Lapis_analysis.Binary
module Resolve = Lapis_analysis.Resolve
module Trace = Lapis_analysis.Trace
module Stage = Lapis_perf.Stage
module P = Lapis_distro.Package

type config = {
  seed : int;  (** campaign seed; printed so failures replay *)
  cases : int;  (** mutated inputs to run *)
  base_packages : int;  (** size of the generated seed corpus *)
  trace : bool;  (** also run the bounded tracer on survivors *)
}

let default_config =
  { seed = 0xF00D; cases = 1_000; base_packages = 25; trace = true }

type crash = {
  c_case : int;  (** case index, for replay *)
  c_kinds : string list;  (** mutation stack that produced the input *)
  c_exn : string;
  c_backtrace : string;
}

type report = {
  r_seed : int;
  r_cases : int;
  r_ok : int;  (** parsed and analyzed to completion *)
  r_rejected : (string * int) list;  (** per {!Reader.kind_name} *)
  r_mutations : (string * int) list;  (** times each mutation applied *)
  r_crashes : crash list;  (** must be empty *)
  r_fuel : (string * int) list;  (** fuel-counter deltas this campaign *)
  r_slowest_case : int;
  r_slowest_ms : float;
}

let fuel_counters =
  [ "fuel:dataflow-exhausted"; "fuel:decode-exhausted";
    "fuel:trace-exhausted" ]

(* Tight tracer limits: the harness cares about termination, not
   coverage, and a 10k-case campaign cannot afford 200k steps each. *)
let trace_limits = { Trace.max_steps = 20_000; Trace.max_depth = 64 }

(* --- seed corpus ---------------------------------------------------- *)

(* Every ELF payload of a small generated distribution: the runtime
   family, the application shared libraries, and each package's
   binaries. These are exactly the writer-produced bytes the clean
   pipeline sees, so mutations explore the neighborhood of real
   inputs instead of random noise. *)
let corpus ~base_packages ~seed : string array =
  let dist =
    Lapis_distro.Generator.generate
      ~config:
        { Lapis_distro.Generator.default_config with
          n_packages = base_packages;
          seed }
      ()
  in
  let elves = ref [] in
  List.iter (fun (_, bytes) -> elves := bytes :: !elves) dist.P.runtime;
  List.iter (fun (_, _, bytes) -> elves := bytes :: !elves) dist.P.shared_libs;
  List.iter
    (fun (pkg : P.t) ->
      List.iter
        (fun (f : P.file) ->
          if String.length f.P.bytes >= 4 && String.sub f.P.bytes 0 4 = "\x7fELF"
          then elves := f.P.bytes :: !elves)
        pkg.P.files)
    dist.P.packages;
  Array.of_list (List.rev !elves)

(* A minimal resolution world so survivors exercise the cross-library
   and tracing paths. Built from pristine runtime bytes: a parse
   failure here would be a bug in the writer, not the fuzz target. *)
let clean_world ~base_packages ~seed : Resolve.world =
  let dist =
    Lapis_distro.Generator.generate
      ~config:
        { Lapis_distro.Generator.default_config with
          n_packages = base_packages;
          seed }
      ()
  in
  let runtime_sonames = List.map fst dist.P.runtime in
  let libs =
    List.filter_map
      (fun (soname, bytes) ->
        match Reader.parse bytes with
        | Ok img -> Some (soname, Binary.analyze img)
        | Error _ -> None)
      dist.P.runtime
  in
  let ld_so = List.assoc_opt "ld-linux-x86-64.so.2" libs in
  Resolve.make_world ?ld_so
    ~libc_family:(fun soname -> List.mem soname runtime_sonames)
    libs

(* --- one case ------------------------------------------------------- *)

type outcome =
  | Survived  (** parsed and analyzed cleanly *)
  | Rejected of string  (** structured error, by kind name *)
  | Crashed of string * string  (** exn, backtrace: the failure mode *)

(* Run the whole ingestion path over one mutated input. The only
   acceptable outcomes are [Survived] and [Rejected]: any exception
   escaping is the bug class this harness exists to find. *)
let run_case ~trace world (bytes : string) : outcome =
  match Reader.parse bytes with
  | Error e -> Rejected Reader.(kind_name (kind e))
  | Ok img ->
    (try
       let bin = Binary.analyze ~mode:Binary.Dataflow img in
       ignore (Binary.analyze ~mode:Binary.Linear img : Binary.t);
       ignore (Resolve.binary_footprint world bin : _);
       if trace then
         ignore (Trace.run ~limits:trace_limits world bin : Trace.result);
       Survived
     with e ->
       let bt = Printexc.get_backtrace () in
       Crashed (Printexc.to_string e, bt))
  | exception e ->
    (* Reader.parse returning [result] is itself part of the contract *)
    let bt = Printexc.get_backtrace () in
    Crashed ("Reader.parse raised: " ^ Printexc.to_string e, bt)

(* Deterministic per-case stream: depends only on (seed, case index),
   so one failing case replays without rerunning its predecessors. *)
let case_rng ~seed i = Rng.create ((seed * 1_000_003) + i)

(* The exact input case [i] of a campaign runs, for replay/debugging. *)
let case_input cfg ~corpus:(c : string array) i : string * Mutate.kind list =
  let rng = case_rng ~seed:cfg.seed i in
  let base = c.(Rng.int rng (Array.length c)) in
  Mutate.random rng base

(* --- campaign ------------------------------------------------------- *)

let run ?(config = default_config) () : report =
  let c = corpus ~base_packages:config.base_packages ~seed:config.seed in
  if Array.length c = 0 then invalid_arg "Harness.run: empty seed corpus";
  let world = clean_world ~base_packages:config.base_packages ~seed:config.seed in
  let fuel0 = List.map (fun n -> (n, Stage.counter n)) fuel_counters in
  let rejected : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let mutations : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let ok = ref 0 in
  let crashes = ref [] in
  let slowest_case = ref 0 in
  let slowest_ns = ref 0L in
  for i = 0 to config.cases - 1 do
    let bytes, kinds = case_input config ~corpus:c i in
    List.iter (fun k -> bump mutations (Mutate.name k)) kinds;
    let t0 = Monotonic_clock.now () in
    (match run_case ~trace:config.trace world bytes with
     | Survived -> incr ok
     | Rejected kind -> bump rejected kind
     | Crashed (exn, bt) ->
       crashes :=
         { c_case = i;
           c_kinds = List.map Mutate.name kinds;
           c_exn = exn;
           c_backtrace = bt }
         :: !crashes);
    let dt = Int64.sub (Monotonic_clock.now ()) t0 in
    if Int64.compare dt !slowest_ns > 0 then begin
      slowest_ns := dt;
      slowest_case := i
    end
  done;
  let table tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    r_seed = config.seed;
    r_cases = config.cases;
    r_ok = !ok;
    r_rejected = table rejected;
    r_mutations = table mutations;
    r_crashes = List.rev !crashes;
    r_fuel =
      List.map
        (fun (n, before) -> (n, Stage.counter n - before))
        fuel0;
    r_slowest_case = !slowest_case;
    r_slowest_ms = Int64.to_float !slowest_ns /. 1e6;
  }

let pp_report ppf (r : report) =
  let total_rejected = List.fold_left (fun n (_, v) -> n + v) 0 r.r_rejected in
  Format.fprintf ppf
    "fuzz campaign: seed=%d cases=%d ok=%d rejected=%d crashes=%d@\n"
    r.r_seed r.r_cases r.r_ok total_rejected (List.length r.r_crashes);
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  reject %-12s %6d@\n" k n)
    r.r_rejected;
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  mutate %-15s %6d@\n" k n)
    r.r_mutations;
  List.iter
    (fun (k, n) -> if n > 0 then Format.fprintf ppf "  %-26s %6d@\n" k n)
    r.r_fuel;
  Format.fprintf ppf "  slowest case %d: %.1f ms@\n" r.r_slowest_case
    r.r_slowest_ms;
  List.iter
    (fun cr ->
      Format.fprintf ppf "  CRASH case=%d kinds=[%s]: %s@\n%s@\n" cr.c_case
        (String.concat "," cr.c_kinds) cr.c_exn cr.c_backtrace)
    r.r_crashes

(* --- pipeline quarantine fuzz --------------------------------------- *)

type smoke = {
  s_analyzed : Lapis_store.Pipeline.analyzed;
  s_mutated : int;  (** package files whose bytes were mutated *)
  s_forced : int;  (** of those, truncated hard enough to always reject *)
}

(* End-to-end containment check: corrupt a slice of a distribution's
   package files, run the full pipeline, and let the caller assert the
   run completes with the damage counted in [world.stats.rejects]
   rather than dying. Half the victims get a header truncation that
   can never parse (a lower bound on the expected quarantine count);
   the rest get the full mutation stack, which may or may not still
   parse. *)
let pipeline_smoke ?(seed = 7) ?(packages = 20) ?(victims = 12) () : smoke =
  let dist =
    Lapis_distro.Generator.generate
      ~config:
        { Lapis_distro.Generator.default_config with
          n_packages = packages;
          seed }
      ()
  in
  let rng = Rng.create ((seed * 7_368_787) + 1) in
  let mutated = ref 0 and forced = ref 0 in
  let mutate_file (f : P.file) =
    if
      !mutated < victims
      && String.length f.P.bytes >= 64
      && String.sub f.P.bytes 0 4 = "\x7fELF"
      && Rng.bool rng 0.5
    then begin
      incr mutated;
      let bytes =
        if !mutated mod 2 = 0 then begin
          (* keep the magic, lose the header: unconditionally rejected *)
          incr forced;
          String.sub f.P.bytes 0 (16 + Rng.int rng 40)
        end
        else fst (Mutate.random rng f.P.bytes)
      in
      { f with P.bytes }
    end
    else f
  in
  let dist =
    { dist with
      P.packages =
        List.map
          (fun (pkg : P.t) ->
            { pkg with P.files = List.map mutate_file pkg.P.files })
          dist.P.packages
    }
  in
  {
    (* caching is keyed by content digest, which a fuzz run mutates on
       purpose — run cold so every mutant is analyzed for real *)
    s_analyzed =
      Lapis_store.Pipeline.run
        ~config:{ Lapis_store.Pipeline.default with cache = false }
        dist;
    s_mutated = !mutated;
    s_forced = !forced;
  }
