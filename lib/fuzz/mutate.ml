(** Deterministic mutational corpus generator for the fault-injection
    harness. Every mutation is a pure function of a {!Lapis_distro.Rng}
    stream, so a whole fuzz campaign replays bit-identically from its
    printed seed.

    The mutation kinds target the paths the paper's tool had to
    survive across all 66,275 Ubuntu binaries: blind corruption (bit
    flips, truncation), section-table attacks (bogus [e_shoff] /
    [e_shnum] / [e_shstrndx], section offsets and sizes pointing past
    end of file, wild [sh_link] and [sh_entsize]), string tables with
    the NUL terminators stripped, and pathological [.text] — torn
    instruction bytes and self-jumping control flow that would spin a
    fixpoint or an interpreter without fuel budgets. *)

module Rng = Lapis_distro.Rng

type kind =
  | Bit_flip  (** flip 1-16 random bits anywhere *)
  | Truncate  (** cut the file at a random point *)
  | Header_corrupt  (** overwrite an ELF identification/header field *)
  | Section_corrupt  (** overwrite a field of a random section header *)
  | Strtab_denul  (** strip the NUL terminators out of a string table *)
  | Text_chaos  (** splat random bytes into the middle of the file *)
  | Text_self_jump  (** plant self/backward jump instructions *)

let all =
  [ Bit_flip; Truncate; Header_corrupt; Section_corrupt; Strtab_denul;
    Text_chaos; Text_self_jump ]

let name = function
  | Bit_flip -> "bit-flip"
  | Truncate -> "truncate"
  | Header_corrupt -> "header-corrupt"
  | Section_corrupt -> "section-corrupt"
  | Strtab_denul -> "strtab-denul"
  | Text_chaos -> "text-chaos"
  | Text_self_jump -> "text-self-jump"

(* --- tolerant little-endian peek/poke ------------------------------
   Mutations parse just enough of the (possibly already-mutated)
   header to aim at section structures; every read degrades to None
   instead of trusting the bytes. *)

let peek_u16 s p =
  if p >= 0 && p + 2 <= String.length s then
    Some (Char.code s.[p] lor (Char.code s.[p + 1] lsl 8))
  else None

let peek_u64 s p =
  if p >= 0 && p + 8 <= String.length s then begin
    let v = ref 0L in
    for k = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code s.[p + k]))
    done;
    Some !v
  end
  else None

let poke b p v n =
  (* little-endian write of the low [n] bytes of [v], clipped *)
  for k = 0 to n - 1 do
    if p + k >= 0 && p + k < Bytes.length b then
      Bytes.set b (p + k)
        (Char.chr
           (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k))
                            0xFFL)))
  done

(* Field values likely to break naive arithmetic: zeros, all-ones,
   sign boundaries, and offsets just beyond the file. *)
let interesting len =
  [ 0L; 1L; 63L; 64L; 0xFFL; 0xFFFFL; 0xFFFFFFFFL;
    0x7FFFFFFFFFFFFFFFL; 0x8000000000000000L; Int64.minus_one;
    Int64.of_int len; Int64.of_int (len + 1); Int64.of_int (len * 2);
    Int64.of_int (max 0 (len - 7)) ]

let pick_value rng len =
  let pool = interesting len in
  if Rng.bool rng 0.7 then Rng.choose rng pool
  else Rng.next rng

(* Locate the section header table, if the header still points at a
   plausible one. Returns (shoff, shnum). *)
let section_table s =
  match (peek_u64 s 0x28, peek_u16 s 0x3C) with
  | Some shoff, Some shnum
    when shnum > 0 && Int64.compare shoff 0L >= 0
         && Int64.compare shoff (Int64.of_int (String.length s)) < 0 ->
    Some (Int64.to_int shoff, shnum)
  | _ -> None

(* --- mutation kinds ------------------------------------------------ *)

let bit_flip rng s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  if n = 0 then s
  else begin
    let flips = 1 + Rng.int rng 16 in
    for _ = 1 to flips do
      let p = Rng.int rng n in
      let bit = Rng.int rng 8 in
      Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor (1 lsl bit)))
    done;
    Bytes.to_string b
  end

let truncate rng s =
  let n = String.length s in
  if n <= 1 then s
  else
    (* biased toward structurally interesting cuts: inside the ELF
       header, at the section table boundary, or anywhere *)
    let cut =
      match Rng.int rng 3 with
      | 0 -> Rng.int rng (min n 65)
      | 1 ->
        (match section_table s with
         | Some (shoff, _) when shoff > 0 -> min (n - 1) (shoff + Rng.int rng 128)
         | _ -> Rng.int rng n)
      | _ -> Rng.int rng n
    in
    String.sub s 0 (min cut (n - 1))

let header_fields =
  (* (offset, width): ei_class, ei_data, e_type, e_machine, e_entry,
     e_shoff, e_shentsize, e_shnum, e_shstrndx *)
  [ (4, 1); (5, 1); (0x10, 2); (0x12, 2); (0x18, 8); (0x28, 8); (0x3A, 2);
    (0x3C, 2); (0x3E, 2) ]

let header_corrupt rng s =
  let b = Bytes.of_string s in
  let off, width = Rng.choose rng header_fields in
  poke b off (pick_value rng (String.length s)) width;
  Bytes.to_string b

let section_fields =
  (* (field offset inside a 64-byte Shdr, width): sh_name, sh_type,
     sh_offset, sh_size, sh_link, sh_entsize *)
  [ (0, 4); (4, 4); (24, 8); (32, 8); (40, 4); (56, 8) ]

let section_corrupt rng s =
  match section_table s with
  | None -> header_corrupt rng s  (* no table to aim at: hit the header *)
  | Some (shoff, shnum) ->
    let b = Bytes.of_string s in
    let i = Rng.int rng shnum in
    let foff, width = Rng.choose rng section_fields in
    poke b (shoff + (i * 64) + foff) (pick_value rng (String.length s)) width;
    Bytes.to_string b

(* Strip the NUL terminators out of one SHT_STRTAB section (type 3),
   so any name lookup walks to the end of the table. Falls back to
   de-NUL-ing a random window when no section table survives. *)
let strtab_denul rng s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let denul_range off size =
    for p = off to min (off + size) n - 1 do
      if Bytes.get b p = '\x00' then Bytes.set b p 'A'
    done
  in
  (match section_table s with
   | Some (shoff, shnum) ->
     let strtabs = ref [] in
     for i = 0 to shnum - 1 do
       let p = shoff + (i * 64) in
       match (peek_u64 s (p + 4), peek_u64 s (p + 24), peek_u64 s (p + 32))
       with
       | Some stype, Some off, Some size
         when Int64.logand stype 0xFFFFFFFFL = 3L
              && Int64.compare off (Int64.of_int n) < 0
              && Int64.compare off 0L >= 0
              && Int64.compare size (Int64.of_int n) <= 0
              && Int64.compare size 0L > 0 ->
         strtabs := (Int64.to_int off, Int64.to_int size) :: !strtabs
       | _ -> ()
     done;
     (match !strtabs with
      | [] -> if n > 1 then denul_range (Rng.int rng n) (1 + Rng.int rng 256)
      | tabs ->
        let off, size = Rng.choose rng tabs in
        denul_range off size)
   | None -> if n > 1 then denul_range (Rng.int rng n) (1 + Rng.int rng 256));
  Bytes.to_string b

let text_chaos rng s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  if n = 0 then s
  else begin
    let splats = 1 + Rng.int rng 32 in
    for _ = 1 to splats do
      let p = Rng.int rng n in
      Bytes.set b p (Char.chr (Int64.to_int (Int64.logand (Rng.next rng) 0xFFL)))
    done;
    Bytes.to_string b
  end

(* Jump patterns over the decoder's subset: a rel32 jump back onto
   itself (a one-instruction infinite loop), a conditional jump back
   into its own bytes (a torn-instruction loop once re-decoded), and a
   call-to-self (unbounded recursion without a fuel budget). *)
let jump_patterns =
  [ "\xE9\xFB\xFF\xFF\xFF";  (* jmp  -5: self *)
    "\x0F\x84\xFA\xFF\xFF\xFF";  (* je  -6: self *)
    "\x0F\x85\xF0\xFF\xFF\xFF";  (* jne -16: backward, torn *)
    "\xE8\xFB\xFF\xFF\xFF";  (* call -5: self-recursion *)
    "\xE9\x00\x00\x00\x00" ]  (* jmp +0: fall-through chain *)

let text_self_jump rng s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  if n < 8 then s
  else begin
    let plants = 1 + Rng.int rng 4 in
    for _ = 1 to plants do
      let pat = Rng.choose rng jump_patterns in
      let p = Rng.int rng (n - String.length pat) in
      Bytes.blit_string pat 0 b p (String.length pat)
    done;
    Bytes.to_string b
  end

let apply rng kind s =
  match kind with
  | Bit_flip -> bit_flip rng s
  | Truncate -> truncate rng s
  | Header_corrupt -> header_corrupt rng s
  | Section_corrupt -> section_corrupt rng s
  | Strtab_denul -> strtab_denul rng s
  | Text_chaos -> text_chaos rng s
  | Text_self_jump -> text_self_jump rng s

(* Stack 1-3 mutations drawn from the full kind set. Returns the
   mutated bytes and the kinds applied, outermost first. *)
let random rng s =
  let n = 1 + Rng.int rng 3 in
  let rec go s kinds = function
    | 0 -> (s, List.rev kinds)
    | k ->
      let kind = Rng.choose rng all in
      go (apply rng kind s) (kind :: kinds) (k - 1)
  in
  go s [] n
