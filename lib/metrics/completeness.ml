(** Weighted completeness (Appendix A.2): the expected fraction of an
    installation's packages that work on a system supporting a given
    API subset, following the paper's four-step methodology including
    the dependency rule (a supported package depending on an
    unsupported one counts as unsupported). *)

open Lapis_apidb
module Store = Lapis_store.Store

(* Which APIs a support predicate is judged over. [Syscalls_only]
   matches the Section 4.1 evaluation (Table 6); [All_apis] also
   requires vectored opcodes, pseudo-files and libc symbols. *)
type scope = Syscalls_only | All_apis

let scoped scope supported api =
  match scope with
  | All_apis -> supported api
  | Syscalls_only ->
    (match api with Api.Syscall _ -> supported api | _ -> true)

(* Per-package support flags under a predicate, with dependency
   propagation to a fixed point. *)
let supported_packages ?(scope = All_apis) (store : Store.t) ~supported =
  let n = store.Store.n_packages in
  let ok = Array.make n true in
  Array.iteri
    (fun i (p : Store.pkg_row) ->
      ok.(i) <- Api.Set.for_all (scoped scope supported) p.Store.pr_apis)
    store.Store.packages;
  (* dependency closure: iterate until stable (the graph is small) *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i (p : Store.pkg_row) ->
        if ok.(i) then
          let dep_broken =
            List.exists
              (fun d ->
                match Hashtbl.find_opt store.Store.pkg_index d with
                | Some j -> not ok.(j)
                | None -> false)
              p.Store.pr_deps
          in
          if dep_broken then begin
            ok.(i) <- false;
            changed := true
          end)
      store.Store.packages
  done;
  ok

let weighted_completeness ?(scope = All_apis) (store : Store.t) ~supported =
  let ok = supported_packages ~scope store ~supported in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i (p : Store.pkg_row) ->
      den := !den +. p.Store.pr_prob;
      if ok.(i) then num := !num +. p.Store.pr_prob)
    store.Store.packages;
  if !den = 0.0 then 0.0 else !num /. !den

(* Completeness when supporting a set of system call numbers. *)
let of_syscall_set store nrs =
  let set = List.fold_left (fun s nr -> Api.Set.add (Api.Syscall nr) s)
      Api.Set.empty nrs in
  weighted_completeness ~scope:Syscalls_only store
    ~supported:(fun api -> Api.Set.mem api set)

(* The Figure 3 curve: cumulative weighted completeness as the N
   most-important system calls are implemented, computed efficiently
   via each package's highest-ranked required call. *)
let curve (store : Store.t) ~(ranking : int list) : (int * float) list =
  let pos = Hashtbl.create 512 in
  List.iteri (fun i nr -> Hashtbl.replace pos nr (i + 1)) ranking;
  let n = store.Store.n_packages in
  (* threshold.(i): the N at which package i's own syscalls are all
     supported; max_int if it uses an unranked call *)
  let threshold = Array.make n 0 in
  Array.iteri
    (fun i (p : Store.pkg_row) ->
      let t =
        Api.Set.fold
          (fun api acc ->
            match api with
            | Api.Syscall nr ->
              (match Hashtbl.find_opt pos nr with
               | Some k -> max acc k
               | None -> max_int)
            | _ -> acc)
          p.Store.pr_apis 0
      in
      threshold.(i) <- t)
    store.Store.packages;
  (* dependency propagation: a package needs its deps' thresholds *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i (p : Store.pkg_row) ->
        List.iter
          (fun d ->
            match Hashtbl.find_opt store.Store.pkg_index d with
            | Some j when threshold.(j) > threshold.(i) ->
              threshold.(i) <- threshold.(j);
              changed := true
            | _ -> ())
          p.Store.pr_deps)
      store.Store.packages
  done;
  let total_weight =
    Array.fold_left (fun a (p : Store.pkg_row) -> a +. p.Store.pr_prob) 0.0
      store.Store.packages
  in
  let len = List.length ranking in
  let gain = Array.make (len + 1) 0.0 in
  Array.iteri
    (fun i (p : Store.pkg_row) ->
      if threshold.(i) <= len then begin
        (* packages needing no ranked call are supported from N=1 *)
        let t = max 1 threshold.(i) in
        gain.(t) <- gain.(t) +. p.Store.pr_prob
      end)
    store.Store.packages;
  let acc = ref 0.0 in
  List.mapi
    (fun i _ ->
      acc := !acc +. gain.(i + 1);
      (i + 1, !acc /. total_weight))
    ranking

(* First N on a curve reaching at least [target] completeness. *)
let crossing curve target =
  List.find_opt (fun (_, c) -> c >= target) curve |> Option.map fst

(* Generalized Figure 3: the incremental path over an arbitrary API
   ranking (Section 3.2 notes the same construction applies to
   vectored operations, pseudo-files and library APIs). APIs outside
   the ranking that satisfy [assumed] are treated as supported. *)
let curve_apis (store : Store.t) ~(ranking : Api.t list)
    ~(assumed : Api.t -> bool) : (int * float) list =
  let pos = Api.Tbl.create 1024 in
  List.iteri (fun i api -> Api.Tbl.replace pos api (i + 1)) ranking;
  let len = List.length ranking in
  let n = store.Store.n_packages in
  let threshold = Array.make n 0 in
  Array.iteri
    (fun i (p : Store.pkg_row) ->
      let t =
        Api.Set.fold
          (fun api acc ->
            match Api.Tbl.find_opt pos api with
            | Some k -> max acc k
            | None -> if assumed api then acc else max_int)
          p.Store.pr_apis 0
      in
      threshold.(i) <- t)
    store.Store.packages;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i (p : Store.pkg_row) ->
        List.iter
          (fun d ->
            match Hashtbl.find_opt store.Store.pkg_index d with
            | Some j when threshold.(j) > threshold.(i) ->
              threshold.(i) <- threshold.(j);
              changed := true
            | _ -> ())
          p.Store.pr_deps)
      store.Store.packages
  done;
  let total_weight =
    Array.fold_left (fun a (p : Store.pkg_row) -> a +. p.Store.pr_prob) 0.0
      store.Store.packages
  in
  let gain = Array.make (len + 1) 0.0 in
  Array.iteri
    (fun i (p : Store.pkg_row) ->
      if threshold.(i) <= len then begin
        let t = max 1 threshold.(i) in
        gain.(t) <- gain.(t) +. p.Store.pr_prob
      end)
    store.Store.packages;
  let acc = ref 0.0 in
  List.mapi
    (fun i _ ->
      acc := !acc +. gain.(i + 1);
      (i + 1, !acc /. total_weight))
    ranking

(* ------------------------------------------------------------------ *)
(* Index-backed variants: one linear pass over Lapis_query's closure
   requirement arrays instead of the per-query dependency fixpoint.
   Bit-identical to the definitions above. *)

let query_scope = function
  | Syscalls_only -> Lapis_query.Query.Syscalls_only
  | All_apis -> Lapis_query.Query.All_apis

let of_index ?(scope = All_apis) idx ~supported =
  Lapis_query.Query.eval_pred ~scope:(query_scope scope) idx ~supported

let of_syscall_set_index idx nrs = Lapis_query.Query.eval_syscalls idx nrs
