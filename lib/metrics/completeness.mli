(** Weighted completeness (Appendix A.2): the expected fraction of an
    installation's packages that work on a system supporting a given
    API subset, including the Section 2.2 dependency rule. *)

open Lapis_apidb
module Store = Lapis_store.Store

type scope =
  | Syscalls_only
      (** judge support over system calls only — vectored opcodes,
          pseudo-files and libc symbols are assumed available
          (Section 4.1 / Table 6) *)
  | All_apis  (** every API kind must be supported *)

val supported_packages :
  ?scope:scope -> Store.t -> supported:(Api.t -> bool) -> bool array
(** Per-package support flags (indexed like [store.packages]) under a
    support predicate: a package is supported when every API in its
    footprint passes the predicate, and dependency failures propagate
    to a fixed point (methodology step 3). *)

val weighted_completeness :
  ?scope:scope -> Store.t -> supported:(Api.t -> bool) -> float
(** The expected fraction of a typical installation's packages that
    are supported: [sum p over supported / sum p over all]
    (Appendix A.2's approximation under package independence). *)

val of_syscall_set : Store.t -> int list -> float
(** Weighted completeness of a system implementing exactly the given
    system call numbers (scope {!Syscalls_only}). *)

val curve : Store.t -> ranking:int list -> (int * float) list
(** The Figure 3 series: for each prefix length [N] of [ranking], the
    weighted completeness of supporting the [N] top-ranked calls.
    Computed via each package's highest-ranked requirement, with
    dependency propagation; packages needing no ranked call count from
    [N = 1]. *)

val crossing : (int * float) list -> float -> int option
(** [crossing curve t] is the first [N] at which the curve reaches
    completeness [t], if any. *)

val curve_apis :
  Store.t -> ranking:Api.t list -> assumed:(Api.t -> bool) -> (int * float) list
(** Generalization of {!curve} to an arbitrary API ranking — the
    Section 3.2 construction extended beyond system calls. APIs not in
    the ranking are supported iff they satisfy [assumed] (e.g. treat
    libc symbols as the C library's problem while ranking kernel
    interfaces). *)

val of_index :
  ?scope:scope -> Lapis_query.Query.t -> supported:(Api.t -> bool) -> float
(** {!weighted_completeness} answered from a precomputed index in one
    linear pass; bit-identical to the fixpoint walk. *)

val of_syscall_set_index : Lapis_query.Query.t -> int list -> float
(** {!of_syscall_set} on the index's syscall-specialized hot path. *)
