(** API importance (Appendix A.1): the probability that a random
    installation includes at least one package requiring the API,
    under the paper's package-independence assumption; and unweighted
    API importance (Section 5): the fraction of packages using it. *)

open Lapis_apidb
module Store = Lapis_store.Store

let importance (store : Store.t) api =
  let deps = Store.dependent_rows store api in
  let none_installed =
    List.fold_left (fun acc p -> acc *. (1.0 -. p.Store.pr_prob)) 1.0 deps
  in
  1.0 -. none_installed

let unweighted (store : Store.t) api =
  let k = List.length (Store.dependents store api) in
  float_of_int k /. float_of_int store.Store.n_packages

(* All system calls with their importance, one entry per table slot. *)
let syscall_importances store =
  List.map
    (fun (e : Syscall_table.entry) ->
      (e, importance store (Api.Syscall e.Syscall_table.nr)))
    (Array.to_list Syscall_table.all)

(* Unweighted importance over the packages' own executables, before
   script-to-interpreter inheritance: how many packages' compiled code
   uses the API. *)
let unweighted_elf (store : Store.t) api =
  let k = ref 0 in
  Store.iter_packages store (fun p ->
      if Lapis_apidb.Api.Set.mem api p.Store.pr_apis_elf then incr k);
  float_of_int !k /. float_of_int store.Store.n_packages

(* Ranking used throughout Section 3: importance first; among the
   large plateau of indispensable calls, ties break on how many
   packages' own binaries use the call (script inheritance excluded,
   so the interpreters' blanket footprints do not reshuffle the
   plateau); table number last for determinism. *)
let rank_syscalls store : int list =
  syscall_importances store
  |> List.map (fun (e, imp) ->
         (e.Syscall_table.nr, imp,
          unweighted_elf store (Api.Syscall e.Syscall_table.nr)))
  |> List.sort (fun (na, ia, ua) (nb, ib, ub) ->
         match compare ib ia with
         | 0 -> (match compare ub ua with 0 -> compare na nb | c -> c)
         | c -> c)
  |> List.map (fun (nr, _, _) -> nr)

(* Inverted-CDF series for Figures 2/4/5/6/7/8: importance values
   sorted descending. *)
let inverted_cdf values = List.sort (fun a b -> compare b a) values

let count_at_least threshold values =
  List.length (List.filter (fun v -> v >= threshold) values)

(* ------------------------------------------------------------------ *)
(* Index-backed variants: same metrics, answered by Lapis_query's
   precomputed survival products instead of walking the store. Kept
   bit-identical to the closed-form definitions above (the oracle);
   the test suite compares the two paths. *)

let of_index idx api = Lapis_query.Query.importance idx api
let unweighted_of_index = Lapis_query.Query.unweighted
let unweighted_elf_of_index = Lapis_query.Query.unweighted_elf

let syscall_importances_of_index idx =
  List.map
    (fun (e : Syscall_table.entry) ->
      (e, Lapis_query.Query.importance idx (Api.Syscall e.Syscall_table.nr)))
    (Array.to_list Syscall_table.all)

let rank_syscalls_of_index = Lapis_query.Query.ranking
