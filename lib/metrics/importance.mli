(** API importance (Appendix A.1) and unweighted API importance
    (Section 5). *)

open Lapis_apidb
module Store = Lapis_store.Store

val importance : Store.t -> Api.t -> float
(** [importance store api] is the probability that a random
    installation includes at least one package requiring [api]:
    [1 - prod over dependents (1 - p_pkg)] under the paper's
    package-independence assumption. Ranges over [0, 1]; [0] for an
    API no package uses. *)

val unweighted : Store.t -> Api.t -> float
(** [unweighted store api] is the fraction of packages whose footprint
    contains [api], irrespective of installation counts (the Section 5
    metric behind Tables 8-11 and Figure 8). *)

val unweighted_elf : Store.t -> Api.t -> float
(** Like {!unweighted}, but counted over the packages' own compiled
    executables, before script-to-interpreter footprint inheritance.
    Used as the tie-breaker inside {!rank_syscalls} so the blanket
    interpreter footprints do not reshuffle the indispensable
    plateau. *)

val syscall_importances : Store.t -> (Syscall_table.entry * float) list
(** Importance of every entry in the system call table, in table
    order. *)

val rank_syscalls : Store.t -> int list
(** System call numbers ordered from most to least important:
    importance first, {!unweighted_elf} as the tie-breaker, table
    number last for determinism. This is the ranking behind Figure 3,
    Table 4 and the Table 6 system profiles. *)

val inverted_cdf : float list -> float list
(** Sort a list of importance values descending — the series plotted
    in Figures 2, 4, 5, 6, 7 and 8. *)

val count_at_least : float -> float list -> int
(** [count_at_least t vs] counts the values at or above threshold
    [t]. *)

val of_index : Lapis_query.Query.t -> Api.t -> float
(** {!importance} answered from a precomputed index in O(1);
    bit-identical to the store walk. *)

val unweighted_of_index : Lapis_query.Query.t -> Api.t -> float
val unweighted_elf_of_index : Lapis_query.Query.t -> Api.t -> float

val syscall_importances_of_index :
  Lapis_query.Query.t -> (Syscall_table.entry * float) list
(** {!syscall_importances} from the index, table order preserved. *)

val rank_syscalls_of_index : Lapis_query.Query.t -> int list
(** {!rank_syscalls} from the index's precomputed ranking. *)
