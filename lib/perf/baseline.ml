(* Reader for the BENCH_*.json files the bench harness writes, plus
   the stage-set comparison the --check-against regression gate runs
   on. The bench JSON is a fixed, line-oriented shape (one stage row
   per line), so a small scanner suffices — this is not a general
   JSON parser, and it must stay bidirectionally tolerant: baselines
   committed before a stage existed (or after one was removed) still
   gate the stages both sides share instead of crashing or silently
   passing. *)

type stage = {
  bs_name : string;
  bs_seconds : float;
}

type t = {
  stage_total_s : float option;
  stages : stage list;
}

(* "key": value scanning helpers over one line of text. *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let string_field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let rest = String.sub line i (String.length line - i) in
    (match String.index_opt rest '"' with
     | None -> None
     | Some _ ->
       (* the value's opening quote is the first one after the colon *)
       let after_colon =
         let c = String.index rest ':' in
         String.sub rest (c + 1) (String.length rest - c - 1)
       in
       (match String.index_opt after_colon '"' with
        | None -> None
        | Some q ->
          let tail =
            String.sub after_colon (q + 1)
              (String.length after_colon - q - 1)
          in
          (match String.index_opt tail '"' with
           | None -> None
           | Some e -> Some (String.sub tail 0 e))))

let number_field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let rest = String.sub line i (String.length line - i) in
    let c = String.index rest ':' in
    let v = String.sub rest (c + 1) (String.length rest - c - 1) in
    let v = String.trim v in
    let stop =
      let n = String.length v in
      let rec go j =
        if j >= n then n
        else
          match v.[j] with
          | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> go (j + 1)
          | _ -> j
      in
      go 0
    in
    float_of_string_opt (String.sub v 0 stop)

let load path : (t, string) result =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let total = ref None in
    let stages = ref [] in
    let in_stages = ref false in
    (try
       while true do
         let line = input_line ic in
         let trimmed = String.trim line in
         if !in_stages then begin
           if String.length trimmed > 0 && trimmed.[0] = ']' then
             in_stages := false
           else
             match (string_field line "name", number_field line "seconds")
             with
             | Some name, Some seconds ->
               stages := { bs_name = name; bs_seconds = seconds } :: !stages
             | _ -> ()
         end
         else begin
           (match number_field trimmed "stage_total_s" with
            | Some v when find_sub trimmed "\"stage_total_s\":" = Some 0 ->
              total := Some v
            | _ -> ());
           (* the opening line is exactly ["stages": [] — rows follow,
              one per line, until the closing bracket; an empty list
              closes on the same line and never enters stage mode *)
           if find_sub trimmed "\"stages\": [" = Some 0
              && find_sub trimmed "]" = None
           then in_stages := true
         end
       done
     with End_of_file -> ());
    close_in ic;
    Ok { stage_total_s = !total; stages = List.rev !stages }

(* --- stage-set comparison ------------------------------------------ *)

type verdict = {
  shared_baseline_s : float;  (** baseline seconds over shared stages *)
  shared_now_s : float;  (** current seconds over the same stages *)
  shared : string list;  (** the stage names both sides have *)
  only_baseline : string list;  (** gone since the baseline was written *)
  only_now : string list;  (** added since the baseline was written *)
}

(* Compare over the intersection of stage names: stages only one side
   knows are reported, not gated — a baseline from before a stage
   existed must not fail the build for growing the pipeline, and a
   removed stage must not let a regression hide inside the smaller
   total. *)
let compare_stages (baseline : t) (now : (string * float) list) : verdict =
  let base_tbl = Hashtbl.create 32 in
  List.iter
    (fun s -> Hashtbl.replace base_tbl s.bs_name s.bs_seconds)
    baseline.stages;
  let now_tbl = Hashtbl.create 32 in
  List.iter (fun (name, s) -> Hashtbl.replace now_tbl name s) now;
  let shared, only_now =
    List.fold_left
      (fun (shared, only) (name, _) ->
        if Hashtbl.mem base_tbl name then (name :: shared, only)
        else (shared, name :: only))
      ([], []) now
  in
  let only_baseline =
    List.filter_map
      (fun s ->
        if Hashtbl.mem now_tbl s.bs_name then None else Some s.bs_name)
      baseline.stages
  in
  let sum tbl names =
    List.fold_left
      (fun a n -> a +. Option.value ~default:0.0 (Hashtbl.find_opt tbl n))
      0.0 names
  in
  let shared = List.rev shared in
  {
    shared_baseline_s = sum base_tbl shared;
    shared_now_s = sum now_tbl shared;
    shared;
    only_baseline;
    only_now = List.rev only_now;
  }
