(** Reader for the BENCH_*.json files the bench harness writes, and
    the stage-set comparison behind the [--check-against] regression
    gate.

    Baselines are committed once and outlive the pipeline's stage
    set: later PRs add stages (and occasionally remove them), so a
    gate naively comparing totals would either fail every build after
    a new stage appears or let a regression hide behind a shrunken
    stage set. {!compare_stages} therefore gates the {e intersection}
    of stage names and reports the one-sided rest. *)

type stage = {
  bs_name : string;
  bs_seconds : float;
}

type t = {
  stage_total_s : float option;
      (** the whole-pipeline total, when the file has one *)
  stages : stage list;
      (** per-stage rows in file order; empty for baselines written
          before the stages array existed (gate on
          [stage_total_s] instead) *)
}

val load : string -> (t, string) result
(** Scan a bench JSON. Tolerant of the fields this module does not
    know; [Error] only when the file cannot be read. *)

type verdict = {
  shared_baseline_s : float;  (** baseline seconds over shared stages *)
  shared_now_s : float;  (** current seconds over the same stages *)
  shared : string list;  (** the stage names both sides have *)
  only_baseline : string list;  (** gone since the baseline was written *)
  only_now : string list;  (** added since the baseline was written *)
}

val compare_stages : t -> (string * float) list -> verdict
(** [compare_stages baseline now] splits the two stage sets into
    shared / baseline-only / now-only and sums seconds over the
    shared names on both sides — the numbers a drift-tolerant gate
    thresholds on. *)
