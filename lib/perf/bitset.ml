(** Flat fixed-universe bitsets over [int array] words. See the
    interface for the design notes; the representation invariant
    maintained by every operation is that bits at positions
    [>= universe] are zero, which is what lets [equal]/[subset]/
    [cardinal] run word-wise without masking the tail word. *)

(* Bits per word: the native int's usable width (63 on 64-bit). *)
let bpw = Sys.int_size

type t = {
  u : int;  (* universe size *)
  w : int array;  (* ceil (u / bpw) words, tail bits always clear *)
}

let words_for u = (u + bpw - 1) / bpw

let create u =
  if u < 0 then invalid_arg "Bitset.create: negative universe";
  { u; w = Array.make (words_for u) 0 }

let universe t = t.u

let add t i =
  if i < 0 || i >= t.u then invalid_arg "Bitset.add: out of universe";
  t.w.(i / bpw) <- t.w.(i / bpw) lor (1 lsl (i mod bpw))

let remove t i =
  if i < 0 || i >= t.u then invalid_arg "Bitset.remove: out of universe";
  t.w.(i / bpw) <- t.w.(i / bpw) land lnot (1 lsl (i mod bpw))

let mem t i =
  i >= 0 && i < t.u && t.w.(i / bpw) land (1 lsl (i mod bpw)) <> 0

(* Byte-table population count: one lookup per occupied byte of the
   word. Builds once at module load; 256 bytes. *)
let byte_pop =
  let tbl = Bytes.create 256 in
  for b = 0 to 255 do
    let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
    Bytes.set tbl b (Char.chr (pop b))
  done;
  tbl

let pop_word w =
  let rec go w acc =
    if w = 0 then acc
    else go (w lsr 8) (acc + Char.code (Bytes.get byte_pop (w land 0xff)))
  in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + pop_word w) 0 t.w

let is_empty t = Array.for_all (fun w -> w = 0) t.w

let check_universe op a b =
  if a.u <> b.u then
    invalid_arg (Printf.sprintf "Bitset.%s: universes differ (%d vs %d)" op a.u b.u)

let subset a b =
  check_universe "subset" a b;
  let n = Array.length a.w in
  let i = ref 0 in
  while !i < n && a.w.(!i) land lnot b.w.(!i) = 0 do
    incr i
  done;
  !i = n

let inter a b =
  check_universe "inter" a b;
  { u = a.u; w = Array.init (Array.length a.w) (fun i -> a.w.(i) land b.w.(i)) }

let union a b =
  check_universe "union" a b;
  { u = a.u; w = Array.init (Array.length a.w) (fun i -> a.w.(i) lor b.w.(i)) }

let union_into ~into src =
  check_universe "union_into" into src;
  for i = 0 to Array.length into.w - 1 do
    into.w.(i) <- into.w.(i) lor src.w.(i)
  done

let equal a b = a.u = b.u && a.w = b.w

let copy t = { u = t.u; w = Array.copy t.w }

let words t = t.w

let key t =
  let b = Bytes.create (8 * Array.length t.w) in
  Array.iteri (fun i w -> Bytes.set_int64_le b (8 * i) (Int64.of_int w)) t.w;
  Bytes.unsafe_to_string b

let iter f t =
  for k = 0 to Array.length t.w - 1 do
    let w = ref t.w.(k) in
    let base = k * bpw in
    while !w <> 0 do
      (* lowest set bit: isolate, count shift by halving ranges *)
      let b = !w land - !w in
      let rec bit_index b acc = if b = 1 then acc else bit_index (b lsr 1) (acc + 1) in
      f (base + bit_index b 0);
      w := !w land (!w - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_sorted_array t =
  let out = Array.make (cardinal t) 0 in
  let k = ref 0 in
  iter
    (fun i ->
      out.(!k) <- i;
      incr k)
    t;
  out

let of_list u ids =
  let t = create u in
  List.iter (fun i -> if i >= 0 && i < u then add t i) ids;
  t

let of_sorted_array u arr =
  let t = create u in
  Array.iter (fun i -> if i >= 0 && i < u then add t i) arr;
  t

let to_bytes t =
  let len = (t.u + 7) / 8 in
  let b = Bytes.make len '\000' in
  iter
    (fun i ->
      let j = i / 8 in
      Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lor (1 lsl (i mod 8)))))
    t;
  Bytes.unsafe_to_string b

(* --- word stores ----------------------------------------------------

   The query index's numeric planes (class rows, package weights,
   survival products) live behind these two sums so the same hot loops
   can run over freshly built heap arrays or over a format-4 snapshot
   image mapped read-only with [Unix.map_file]. A [Bigarray] of kind
   [int] reads the low 63 bits of each little-endian word on disk —
   exactly the truncation [Int64.to_int] applies on the copying decode
   path, so both backends observe identical values bit for bit. *)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_ba =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type words =
  | Words_heap of int array
  | Words_map of { wba : int_ba; woff : int; wlen : int }

type floats =
  | Floats_heap of float array
  | Floats_map of { fba : float_ba; foff : int; flen : int }

let words_len = function
  | Words_heap a -> Array.length a
  | Words_map { wlen; _ } -> wlen

let words_get s i =
  match s with
  | Words_heap a -> a.(i)
  | Words_map { wba; woff; wlen } ->
    if i < 0 || i >= wlen then invalid_arg "Bitset.words_get: out of range";
    Bigarray.Array1.get wba (woff + i)

let words_to_array = function
  | Words_heap a -> Array.copy a
  | Words_map { wba; woff; wlen } ->
    Array.init wlen (fun i -> Bigarray.Array1.get wba (woff + i))

let floats_len = function
  | Floats_heap a -> Array.length a
  | Floats_map { flen; _ } -> flen

let floats_get s i =
  match s with
  | Floats_heap a -> a.(i)
  | Floats_map { fba; foff; flen } ->
    if i < 0 || i >= flen then invalid_arg "Bitset.floats_get: out of range";
    Bigarray.Array1.get fba (foff + i)

let floats_to_array = function
  | Floats_heap a -> Array.copy a
  | Floats_map { fba; foff; flen } ->
    Array.init flen (fun i -> Bigarray.Array1.get fba (foff + i))

(* Contiguous sub-range extraction, for the range-sliced image writer:
   a slice of a plane materializes only the [len] elements starting at
   [pos], never the whole plane. *)

let words_sub s pos len =
  if pos < 0 || len < 0 || pos > words_len s - len then
    invalid_arg "Bitset.words_sub: out of range";
  match s with
  | Words_heap a -> Array.sub a pos len
  | Words_map { wba; woff; _ } ->
    Array.init len (fun i -> Bigarray.Array1.get wba (woff + pos + i))

let floats_sub s pos len =
  if pos < 0 || len < 0 || pos > floats_len s - len then
    invalid_arg "Bitset.floats_sub: out of range";
  match s with
  | Floats_heap a -> Array.sub a pos len
  | Floats_map { fba; foff; _ } ->
    Array.init len (fun i -> Bigarray.Array1.get fba (foff + pos + i))

(* Wire layout for the numeric planes: one 8-byte little-endian word
   per element. Ints are sign-extended from their 63-bit pattern
   (matching what a mapped int-kind read truncates back to); floats
   are IEEE-754 bit patterns. *)

let words_to_le (a : int array) : string =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i w -> Bytes.set_int64_le b (8 * i) (Int64.of_int w)) a;
  Bytes.unsafe_to_string b

let floats_to_le (a : float array) : string =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri
    (fun i f -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float f))
    a;
  Bytes.unsafe_to_string b

let of_bytes u s =
  if u < 0 then Error "negative universe"
  else if String.length s <> (u + 7) / 8 then
    Error
      (Printf.sprintf "bitset payload is %d bytes, universe %d needs %d"
         (String.length s) u ((u + 7) / 8))
  else begin
    let t = create u in
    let bad = ref false in
    String.iteri
      (fun j c ->
        let c = Char.code c in
        for bit = 0 to 7 do
          if c land (1 lsl bit) <> 0 then begin
            let i = (j * 8) + bit in
            if i < u then add t i else bad := true
          end
        done)
      s;
    if !bad then Error "set bits beyond the universe" else Ok t
  end
