(** Flat fixed-universe bitsets: the packed data plane of the query
    engine. A bitset over universe size [u] is a [(u + 62) / 63]-word
    [int array]; membership is one shift and mask, and the set algebra
    the hot paths need — intersection, union, subset, population count
    — runs word-wise, so a subset test over a few hundred elements
    costs a handful of word compares instead of an element-wise scan.

    Bitsets are mutable but cheap to copy; the query index freezes
    them after construction and only ever reads them from worker
    domains, which is safe (plain [int array] reads, no resizing). *)

type t

val create : int -> t
(** [create u] is the empty set over universe [0 .. u-1]. *)

val universe : t -> int
(** The universe size the set was created with. *)

val add : t -> int -> unit
(** Set membership bit [i]. Raises [Invalid_argument] outside the
    universe. *)

val remove : t -> int -> unit

val mem : t -> int -> bool
(** Membership; total — ids outside the universe are simply absent. *)

val cardinal : t -> int
(** Population count (word-wise SWAR, no per-bit loop). *)

val is_empty : t -> bool

val subset : t -> t -> bool
(** [subset a b] is [a ⊆ b]. The universes must match. *)

val inter : t -> t -> t
(** Fresh intersection. The universes must match. *)

val union : t -> t -> t
(** Fresh union. The universes must match. *)

val union_into : into:t -> t -> unit
(** [union_into ~into src] is [into := into ∪ src] word-wise — the
    closure accumulation primitive. The universes must match. *)

val equal : t -> t -> bool
val copy : t -> t

val words : t -> int array
(** The backing word array ([universe / 63] rounded up, tail bits
    clear). Exposed so fused hot loops (the query engine's per-class
    subset tests) and wire encoders can run word-wise without a
    per-element function call; callers must treat it as read-only. *)

val key : t -> string
(** A string equal iff the sets are equal over equal universes — the
    hashtable key for deduplicating structurally shared bitsets. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order; skips empty words, then walks set bits only. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending fold over members. *)

val to_sorted_array : t -> int array

val of_list : int -> int list -> t
(** [of_list u ids] adds every id, ignoring ids outside the universe
    (callers filter semantically, not defensively). *)

val of_sorted_array : int -> int array -> t

val to_bytes : t -> string
(** Little-endian bit packing — bit [i] lives in byte [i / 8] at bit
    [i mod 8] — independent of the in-memory word size, for wire
    formats. Length is [(universe + 7) / 8]. *)

val of_bytes : int -> string -> (t, string) result
(** Inverse of {!to_bytes} for a universe size; rejects a byte string
    of the wrong length or with set bits beyond the universe. *)

val words_for : int -> int
(** Words backing a universe of the given size: [(u + 62) / 63]. *)

(** {2 Word stores}

    The numeric planes of the query index (class rows, package
    weights, survival products) are addressed through these two sums
    so the same hot loops run against freshly built heap arrays or a
    format-4 snapshot image mapped read-only via
    [Unix.map_file]/[Bigarray.Array1] — bit-identical in both modes.
    A mapped int-kind read keeps the low 63 bits of each on-disk
    little-endian word, the same truncation [Int64.to_int] applies on
    the copying decode path. The constructors are exposed so hot
    loops can dispatch once per call and then run monomorphically. *)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_ba =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type words =
  | Words_heap of int array
  | Words_map of { wba : int_ba; woff : int; wlen : int }
      (** [wlen] words starting at element [woff] of [wba] *)

type floats =
  | Floats_heap of float array
  | Floats_map of { fba : float_ba; foff : int; flen : int }

val words_len : words -> int

val words_get : words -> int -> int
(** Bounds-checked element read (both backends). *)

val words_to_array : words -> int array
(** Materialize to a fresh heap array (both backends). *)

val floats_len : floats -> int
val floats_get : floats -> int -> float
val floats_to_array : floats -> float array

val words_sub : words -> int -> int -> int array
(** [words_sub s pos len] materializes elements [pos .. pos+len-1] to
    a fresh heap array (both backends) — the range-sliced image
    writer's plane extractor. Raises [Invalid_argument] out of range. *)

val floats_sub : floats -> int -> int -> float array
(** Float-plane analogue of {!words_sub}. *)

val words_to_le : int array -> string
(** 8 bytes per word, little-endian, sign-extended to 64 bits — the
    format-4 on-disk encoding of an int plane. *)

val floats_to_le : float array -> string
(** 8 bytes per element, IEEE-754 bit pattern, little-endian. *)
