(** Flat fixed-universe bitsets: the packed data plane of the query
    engine. A bitset over universe size [u] is a [(u + 62) / 63]-word
    [int array]; membership is one shift and mask, and the set algebra
    the hot paths need — intersection, union, subset, population count
    — runs word-wise, so a subset test over a few hundred elements
    costs a handful of word compares instead of an element-wise scan.

    Bitsets are mutable but cheap to copy; the query index freezes
    them after construction and only ever reads them from worker
    domains, which is safe (plain [int array] reads, no resizing). *)

type t

val create : int -> t
(** [create u] is the empty set over universe [0 .. u-1]. *)

val universe : t -> int
(** The universe size the set was created with. *)

val add : t -> int -> unit
(** Set membership bit [i]. Raises [Invalid_argument] outside the
    universe. *)

val remove : t -> int -> unit

val mem : t -> int -> bool
(** Membership; total — ids outside the universe are simply absent. *)

val cardinal : t -> int
(** Population count (word-wise SWAR, no per-bit loop). *)

val is_empty : t -> bool

val subset : t -> t -> bool
(** [subset a b] is [a ⊆ b]. The universes must match. *)

val inter : t -> t -> t
(** Fresh intersection. The universes must match. *)

val union : t -> t -> t
(** Fresh union. The universes must match. *)

val union_into : into:t -> t -> unit
(** [union_into ~into src] is [into := into ∪ src] word-wise — the
    closure accumulation primitive. The universes must match. *)

val equal : t -> t -> bool
val copy : t -> t

val words : t -> int array
(** The backing word array ([universe / 63] rounded up, tail bits
    clear). Exposed so fused hot loops (the query engine's per-class
    subset tests) and wire encoders can run word-wise without a
    per-element function call; callers must treat it as read-only. *)

val key : t -> string
(** A string equal iff the sets are equal over equal universes — the
    hashtable key for deduplicating structurally shared bitsets. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order; skips empty words, then walks set bits only. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending fold over members. *)

val to_sorted_array : t -> int array

val of_list : int -> int list -> t
(** [of_list u ids] adds every id, ignoring ids outside the universe
    (callers filter semantically, not defensively). *)

val of_sorted_array : int -> int array -> t

val to_bytes : t -> string
(** Little-endian bit packing — bit [i] lives in byte [i / 8] at bit
    [i mod 8] — independent of the in-memory word size, for wire
    formats. Length is [(universe + 7) / 8]. *)

val of_bytes : int -> string -> (t, string) result
(** Inverse of {!to_bytes} for a universe size; rejects a byte string
    of the wrong length or with set bits beyond the universe. *)
