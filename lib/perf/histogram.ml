(** HDR-style bucketing: values 0..15 get exact buckets; above that,
    each power-of-two range [2^b, 2^(b+1)) splits into 16 linear
    sub-buckets of width 2^(b-4), so the representative value of any
    bucket is within 1/16 of every observation it holds. The bucket
    count is fixed (960 covers the whole 63-bit int range), which
    keeps [merge_into] a flat array walk and the footprint constant. *)

let n_buckets = 960

type t = {
  counts : int array;
  mutable n : int;
  mutable vmin : int;
  mutable vmax : int;
  mutex : Mutex.t;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    n = 0;
    vmin = max_int;
    vmax = 0;
    mutex = Mutex.create ();
  }

let msb v =
  let b = ref 0 and v = ref v in
  while !v > 1 do
    incr b;
    v := !v lsr 1
  done;
  !b

let bucket_of v =
  if v < 16 then v
  else
    let b = msb v in
    ((b - 3) lsl 4) lor ((v lsr (b - 4)) land 15)

(* Midpoint of the bucket's range — exact for the unit buckets. *)
let representative idx =
  if idx < 16 then idx
  else
    let b = (idx lsr 4) + 3 in
    let width = 1 lsl (b - 4) in
    (1 lsl b) + ((idx land 15) * width) + (width / 2)

let observe t v =
  let v = max 0 v in
  Mutex.protect t.mutex (fun () ->
      t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
      t.n <- t.n + 1;
      if v < t.vmin then t.vmin <- v;
      if v > t.vmax then t.vmax <- v)

let count t = Mutex.protect t.mutex (fun () -> t.n)

let quantile_locked t q =
  if t.n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
    let rank = min rank t.n in
    let seen = ref 0 and idx = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         seen := !seen + t.counts.(i);
         if !seen >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let v = representative !idx in
    float_of_int (min (max v t.vmin) t.vmax)
  end

let quantile t q = Mutex.protect t.mutex (fun () -> quantile_locked t q)

let merge_into ~into src =
  (* Lock ordering: the source is read under its own lock into a
     scratch copy, then the destination updates under its lock — no
     nested locking, so merging in any direction cannot deadlock. *)
  let counts, n, vmin, vmax =
    Mutex.protect src.mutex (fun () ->
        (Array.copy src.counts, src.n, src.vmin, src.vmax))
  in
  if n > 0 then
    Mutex.protect into.mutex (fun () ->
        Array.iteri
          (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
          counts;
        into.n <- into.n + n;
        if vmin < into.vmin then into.vmin <- vmin;
        if vmax > into.vmax then into.vmax <- vmax)

type summary = {
  h_count : int;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
}

let summary t =
  Mutex.protect t.mutex (fun () ->
      {
        h_count = t.n;
        h_p50 = quantile_locked t 0.50;
        h_p95 = quantile_locked t 0.95;
        h_p99 = quantile_locked t 0.99;
        h_max = (if t.n = 0 then 0.0 else float_of_int t.vmax);
      })

(* --- registry ------------------------------------------------------- *)

let reg_lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let reg_order : string list ref = ref []  (* first-seen, reversed *)

let registered name =
  Mutex.protect reg_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
        let h = create () in
        Hashtbl.replace registry name h;
        reg_order := name :: !reg_order;
        h)

let observe_ns name v = observe (registered name) v

let find name =
  Mutex.protect reg_lock (fun () -> Hashtbl.find_opt registry name)

let all () =
  let names = Mutex.protect reg_lock (fun () -> List.rev !reg_order) in
  List.map (fun name -> (name, summary (registered name))) names

let reset () =
  Mutex.protect reg_lock (fun () ->
      Hashtbl.reset registry;
      reg_order := [])

let pp_all ppf () =
  List.iter
    (fun (name, s) ->
      Fmt.pf ppf "  %-22s n=%-8d p50=%8.1fus p95=%8.1fus p99=%8.1fus max=%8.1fus@\n"
        name s.h_count (s.h_p50 /. 1e3) (s.h_p95 /. 1e3) (s.h_p99 /. 1e3)
        (s.h_max /. 1e3))
    (all ())
