(** Log-bucketed latency histograms for the serving layer, extending
    the {!Stage} timer/counter registry with distribution shape: a
    stage timer tells you the total and the mean, a histogram tells
    you p50/p95/p99 and the tail — which is what the fleet's SLO gate
    measures under load.

    Buckets are power-of-two ranges split into 16 linear sub-buckets
    (HDR-style), so any observation lands within 1/16 (~6.25%)
    relative error of its bucket's representative value, with a fixed
    1 KiB footprint per histogram regardless of range. Observations
    are non-negative integers — nanoseconds by convention everywhere
    in this codebase.

    Each histogram carries its own mutex, so worker domains and
    reader threads observe concurrently; {!merge_into} lets per-shard
    histograms aggregate at the router. A process-wide registry
    ({!observe}, {!all}) mirrors {!Stage}'s counters: the TCP server
    records queue-wait / eval / total latency under stable names and
    the [stats] protocol op reports every registered histogram. *)

type t

val create : unit -> t
(** An empty histogram (all counts zero). *)

val observe : t -> int -> unit
(** Record one observation ([v >= 0]; negatives clamp to 0). *)

val count : t -> int
(** Observations recorded so far. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0,1]]: the representative value of the
    bucket holding the [ceil (q * count)]-th smallest observation,
    clamped to the exact observed [[min, max]]. [0.0] when empty. *)

val merge_into : into:t -> t -> unit
(** Add every bucket of the source into [into] (source unchanged). *)

type summary = {
  h_count : int;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
}
(** The fixed percentile set the serve protocol's [stats] op reports
    (values in the unit observed — nanoseconds for the registry). *)

val summary : t -> summary

(** {2 Process-wide registry}

    Named histograms, created on first use, reported in first-seen
    order — the same discipline as {!Stage} counters. *)

val observe_ns : string -> int -> unit
(** Record into the registry histogram of that name. *)

val find : string -> t option
(** The registered histogram, if any observation named it yet. *)

val all : unit -> (string * summary) list
(** Every registered histogram's summary, first-seen order. *)

val reset : unit -> unit
(** Drop every registered histogram (tests and bench reruns). *)

val pp_all : Format.formatter -> unit -> unit
(** Human-readable registry dump (microsecond units), appended to the
    {!Stage} report by the CLI's [--stats]. *)
