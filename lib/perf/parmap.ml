(** Chunked parallel map over stdlib [Domain] — no external
    dependencies.

    [map f xs] evaluates [f] on every element of [xs] using
    [Domain.recommended_domain_count ()] domains (capped by the list
    length) and returns the results in input order, so callers observe
    exactly the output of [List.map f xs] regardless of how work was
    scheduled. Work is self-scheduled in chunks off a shared atomic
    cursor, which balances uneven per-item cost (large binaries next
    to tiny ones) without any ordering dependence.

    When only one domain is available — or requested via [~domains:1],
    or the input is a single element — the sequential [List.map] path
    runs instead, so single-core CI results are bit-identical to the
    parallel ones by construction.

    If [f] raises on any element, the first exception wins: a shared
    cancellation flag stops every worker at its next chunk boundary
    (instead of letting the survivors drain the whole cursor), and the
    exception is re-raised on the calling domain with the worker's
    original backtrace. *)

let sequential_threshold = 2

let map ?domains (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n_dom =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n_dom <= 1 || n < sequential_threshold then List.map f xs
  else begin
    let n_dom = min n_dom n in
    let results : 'b option array = Array.make n None in
    let next = Atomic.make 0 in
    (* small chunks keep the tail balanced; large enough that cursor
       contention stays negligible *)
    let chunk = max 1 (n / (n_dom * 8)) in
    let first_exn : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let cancelled = Atomic.make false in
    let worker () =
      try
        let continue = ref true in
        while !continue do
          (* checked once per chunk: after a sibling dies, at most one
             in-flight chunk per domain completes before everyone
             stops, rather than the survivors draining the cursor *)
          if Atomic.get cancelled then continue := false
          else begin
            let start = Atomic.fetch_and_add next chunk in
            if start >= n then continue := false
            else
              for i = start to min n (start + chunk) - 1 do
                results.(i) <- Some (f arr.(i))
              done
          end
        done
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set first_exn None (Some (e, bt)));
        Atomic.set cancelled true
    in
    let spawned = List.init (n_dom - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get first_exn with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false)
         results)
  end
