(** Monotonic stage timers and counters for the measurement pipeline.

    Every stage of a pipeline run ({!Lapis_distro.Generator.generate},
    ELF parsing, disassembly, the dataflow fixpoint, cross-library
    resolution, aggregation, metric computation) accumulates wall time
    here under a stable name; the bench harness prints the breakdown
    at the end of a run and emits it into the BENCH JSON the CI smoke
    job tracks across PRs.

    The registry is guarded by a mutex so stages running inside
    {!Parmap} worker domains accumulate safely; times recorded from
    parallel sections therefore sum *CPU-side* time across domains,
    which can exceed the wall clock of the enclosing stage. Timer
    reads come from [CLOCK_MONOTONIC] (via bechamel's clock stub), so
    NTP adjustments never skew a stage. *)

type cell = {
  mutable spent_ns : int64;
  mutable entries : int;
}

let lock = Mutex.create ()
let cells : (string, cell) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []  (* first-seen, reversed *)
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
let counter_order : string list ref = ref []

let now_ns () : int64 = Monotonic_clock.now ()

let cell_of name =
  match Hashtbl.find_opt cells name with
  | Some c -> c
  | None ->
    let c = { spent_ns = 0L; entries = 0 } in
    Hashtbl.replace cells name c;
    order := name :: !order;
    c

let add_ns name ns =
  Mutex.protect lock (fun () ->
      let c = cell_of name in
      c.spent_ns <- Int64.add c.spent_ns ns;
      c.entries <- c.entries + 1)

let time name f =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () -> add_ns name (Int64.sub (now_ns ()) t0))
    f

let spent_s name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt cells name with
      | Some c -> Int64.to_float c.spent_ns /. 1e9
      | None -> 0.0)

let entries name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt cells name with
      | Some c -> c.entries
      | None -> 0)

let incr ?(by = 1) name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some r -> r := !r + by
      | None ->
        Hashtbl.replace counters name (ref by);
        counter_order := name :: !counter_order)

let counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some r -> !r
      | None -> 0)

type line = {
  l_name : string;
  l_seconds : float;
  l_entries : int;
}

(* Stage lines in first-seen order: the natural pipeline order, since
   stages first fire in execution order. *)
let report () =
  Mutex.protect lock (fun () ->
      List.rev_map
        (fun name ->
          let c = Hashtbl.find cells name in
          {
            l_name = name;
            l_seconds = Int64.to_float c.spent_ns /. 1e9;
            l_entries = c.entries;
          })
        !order)

let report_counters () =
  Mutex.protect lock (fun () ->
      List.rev_map
        (fun name -> (name, !(Hashtbl.find counters name)))
        !counter_order)

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset cells;
      order := [];
      Hashtbl.reset counters;
      counter_order := [])

let pp_report ppf () =
  let lines = report () in
  let total = List.fold_left (fun a l -> a +. l.l_seconds) 0.0 lines in
  List.iter
    (fun l ->
      Fmt.pf ppf "  %-22s %8.3fs  (%6d entries)@\n" l.l_name l.l_seconds
        l.l_entries)
    lines;
  Fmt.pf ppf "  %-22s %8.3fs@\n" "stage total" total;
  match report_counters () with
  | [] -> ()
  | cs ->
    List.iter (fun (name, v) -> Fmt.pf ppf "  %-22s %8d@\n" name v) cs
