(** Minimal JSON reader/printer for the serve protocol. The project
    deliberately carries no JSON dependency (the serving surface is a
    line-delimited request/response loop, not a web stack), so this is
    a small total parser: any malformed input yields [Error], never an
    exception. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* NaN/infinity are mapped to null by the caller before we get here. *)
let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string buf "null"
    else add_num buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | Some got -> raise (Bad (Printf.sprintf "expected %c, got %c" ch got))
  | None -> raise (Bad (Printf.sprintf "expected %c, got end of input" ch))

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else raise (Bad ("invalid literal at offset " ^ string_of_int c.pos))

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let hex4 c =
  if c.pos + 4 > String.length c.s then raise (Bad "truncated \\u escape");
  let v =
    try int_of_string ("0x" ^ String.sub c.s c.pos 4)
    with _ -> raise (Bad "invalid \\u escape")
  in
  c.pos <- c.pos + 4;
  v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
       | None -> raise (Bad "unterminated escape")
       | Some e ->
         c.pos <- c.pos + 1;
         (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let hi = hex4 c in
            let code =
              if hi >= 0xd800 && hi <= 0xdbff then begin
                (* surrogate pair *)
                expect c '\\';
                expect c 'u';
                let lo = hex4 c in
                if lo < 0xdc00 || lo > 0xdfff then
                  raise (Bad "unpaired surrogate");
                0x10000 + ((hi - 0xd800) lsl 10) + (lo - 0xdc00)
              end
              else if hi >= 0xdc00 && hi <= 0xdfff then
                raise (Bad "unpaired surrogate")
              else hi
            in
            add_utf8 buf code
          | _ -> raise (Bad "unknown escape")));
      go ()
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let span = String.sub c.s start (c.pos - start) in
  match float_of_string_opt span with
  | Some f -> Num f
  | None -> raise (Bad ("invalid number: " ^ span))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> raise (Bad "empty input")
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> raise (Bad "expected , or } in object")
      in
      Obj (fields [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> raise (Bad "expected , or ] in array")
      in
      Arr (items [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> raise (Bad (Printf.sprintf "unexpected character %c" ch))

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage after value"
    else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f < 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
