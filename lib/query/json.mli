(** Minimal JSON for the serve protocol (the project carries no JSON
    dependency). Total: malformed input yields [Error], never an
    exception. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering; non-finite numbers print as [null]. *)

val parse : string -> (t, string) result
(** Parse one complete JSON value (rejects trailing garbage). *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects too. *)

val to_int : t -> int option
(** The number, when it is an exact integer. *)

val to_str : t -> string option
val to_list : t -> t list option
