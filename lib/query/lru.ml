(** Mutex-guarded LRU: a hashtable from key to a node of an intrusive
    doubly-linked list ordered most-recent-first. Hit, add and evict
    are all O(1). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* toward the head (more recent) *)
  mutable next : ('k, 'v) node option;  (* toward the tail (less recent) *)
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutex : Mutex.t;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    mutex = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* List surgery below assumes the lock is held. *)

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let find t k =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.tbl k with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

let add t k v =
  with_lock t @@ fun () ->
  (match Hashtbl.find_opt t.tbl k with
   | Some node ->
     node.value <- v;
     unlink t node;
     push_front t node
   | None ->
     let node = { key = k; value = v; prev = None; next = None } in
     Hashtbl.replace t.tbl k node;
     push_front t node;
     if Hashtbl.length t.tbl > t.capacity then
       match t.tail with
       | Some lru ->
         unlink t lru;
         Hashtbl.remove t.tbl lru.key
       | None -> ())

let length t = with_lock t @@ fun () -> Hashtbl.length t.tbl

let stats t = with_lock t @@ fun () -> (t.hits, t.misses)
