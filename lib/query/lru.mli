(** Thread-safe LRU cache for the serving layer. Every operation takes
    an internal mutex, so one cache may be shared by all worker domains
    of the TCP server; the critical sections are a hashtable probe and
    a couple of pointer swaps, far below the cost of the query either
    side of them.

    Keys are canonicalized request strings ({!Protocol.canonical_key}) and
    values are the id-free response objects, but the cache itself is
    generic. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** An empty cache holding at most [capacity] entries (at least 1);
    inserting past capacity evicts the least recently used entry. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry to most-recently-used. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, making the entry most-recently-used. *)

val length : ('k, 'v) t -> int

val stats : ('k, 'v) t -> int * int
(** [(hits, misses)] since creation — the serve [stats] op reports
    these. *)
