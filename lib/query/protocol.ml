(** See the interface for the protocol contract. Implementation notes:

    - the JSON request parser replicates the field-validation order
      (and the exact error kinds/messages) of the pre-protocol
      [Serve] code, so existing clients and goldens see identical
      error responses;
    - the binary codec builds on {!Lapis_store.Snapshot.Wire} — the
      same zigzag-LEB128 / length-prefixed-string / float-bits
      primitives as the snapshot formats — and converts every
      [Wire.Fail] into [Error], keeping decode total;
    - request ids are arbitrary JSON scalars on the JSON side; the
      binary codec carries them as their serialized JSON text, so any
      id round-trips through either codec. *)

module Stage = Lapis_perf.Stage
module Histogram = Lapis_perf.Histogram
module Snapshot = Lapis_store.Snapshot
module Wire = Lapis_store.Snapshot.Wire

let current_version = 1
let supported_versions = [ 1 ]

type codec = Json_lines | Binary

let codec_name = function Json_lines -> "json" | Binary -> "binary"
let codec_names = [ "json"; "binary" ]

let bad_request = "bad-request"
let bad_api = "bad-api"
let bad_phase = "bad-phase"
let unknown_op = "unknown-op"
let parse_error = "parse"
let internal_error = "internal"
let overloaded = "overloaded"
let degraded = "degraded"
let unsupported_version = "unsupported-version"

let negotiate proposed =
  let common =
    List.filter (fun v -> List.mem v supported_versions) proposed
  in
  match List.sort (fun a b -> compare b a) common with
  | v :: _ -> Ok v
  | [] ->
    Error
      ( unsupported_version,
        Printf.sprintf "no common protocol version; server supports [%s]"
          (String.concat "; " (List.map string_of_int supported_versions)) )

type req =
  | Hello of int list
  | Ping
  | Stats
  | Importance of { api : string; phase : Query.phase }
  | Completeness of { syscalls : int list; phase : Query.phase }
  | Partial_completeness of {
      syscalls : int list;
      phase : Query.phase;
      lo : int;
      hi : int;
    }
  | Top of int
  | Dependents of { api : string; limit : int option }
  | Batch of request list
  | Unknown of string

and request = { rq_id : Json.t option; rq_op : req }

let op_name = function
  | Hello _ -> "hello"
  | Ping -> "ping"
  | Stats -> "stats"
  | Importance _ -> "importance"
  | Completeness _ -> "completeness"
  | Partial_completeness _ -> "partial-completeness"
  | Top _ -> "top"
  | Dependents _ -> "dependents"
  | Batch _ -> "batch"
  | Unknown s -> s

type err = { e_kind : string; e_msg : string }

type stats_reply = {
  st_packages : int;
  st_apis : int;
  st_binaries : int;
  st_installs : int;
  st_gauges : (string * float) list;
  st_hists : (string * Histogram.summary) list;
}

type reply =
  | Hello_r of { version : int; codecs : string list }
  | Pong
  | Stats_r of stats_reply
  | Importance_r of {
      api : string;
      phase : Query.phase;
      importance : float;
      unweighted : float;
    }
  | Completeness_r of {
      n_syscalls : int;
      phase : Query.phase;
      completeness : float;
    }
  | Partial_r of { lo : int; hi : int; num : float; den : float }
  | Top_r of Query.ranked list
  | Dependents_r of { api : string; packages : (string * float) list }
  | Batch_r of response list
      (** one response per batched request, in request order *)

and response = { rs_id : Json.t option; rs_result : (reply, err) result }

let error_response ?id ~kind msg =
  { rs_id = id; rs_result = Error { e_kind = kind; e_msg = msg } }

(* ------------------------------------------------------------------ *)
(* JSON codec: requests                                                *)
(* ------------------------------------------------------------------ *)

(* The [Error] side of every field helper is a ready error response;
   the id is attached by [request_of_json]'s wrapper so helpers stay
   id-free. *)

let str_field j key =
  match Json.member key j with
  | None ->
    Error (bad_request, Printf.sprintf "missing %S field" key)
  | Some v ->
    (match Json.to_str v with
     | Some s -> Ok s
     | None ->
       Error (bad_request, Printf.sprintf "%S must be a string" key))

let phase_field j =
  match Json.member "phase" j with
  | None -> Ok Query.All
  | Some v ->
    (match Json.to_str v with
     | None -> Error (bad_request, "\"phase\" must be a string")
     | Some s ->
       (match Query.phase_of_string s with
        | Ok ph -> Ok ph
        | Error msg -> Error (bad_phase, msg)))

let int_list_field j key =
  match Json.member key j with
  | None -> Error (bad_request, Printf.sprintf "missing %S field" key)
  | Some v ->
    (match Json.to_list v with
     | None ->
       Error (bad_request, Printf.sprintf "%S must be an array" key)
     | Some items ->
       let rec go acc = function
         | [] -> Ok (List.rev acc)
         | x :: rest ->
           (match Json.to_int x with
            | Some n -> go (n :: acc) rest
            | None ->
              Error
                (bad_request,
                 Printf.sprintf "%S must contain integers" key))
       in
       go [] items)

let int_field j key =
  match Json.member key j with
  | None -> Error (bad_request, Printf.sprintf "missing %S field" key)
  | Some v ->
    (match Json.to_int v with
     | Some n -> Ok n
     | None ->
       Error (bad_request, Printf.sprintf "%S must be an integer" key))

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let rec req_of_json j : (req, string * string) result =
  match Json.member "op" j with
  | None -> Error (bad_request, "missing \"op\" field")
  | Some op_j ->
    (match Json.to_str op_j with
     | None -> Error (bad_request, "\"op\" must be a string")
     | Some op ->
       (match op with
        | "hello" ->
          (match Json.member "versions" j with
           | None -> Ok (Hello supported_versions)
           | Some _ ->
             let* versions = int_list_field j "versions" in
             Ok (Hello versions))
        | "ping" -> Ok Ping
        | "stats" -> Ok Stats
        | "importance" ->
          let* api = str_field j "api" in
          let* phase = phase_field j in
          Ok (Importance { api; phase })
        | "completeness" ->
          let* syscalls = int_list_field j "syscalls" in
          let* phase = phase_field j in
          Ok (Completeness { syscalls; phase })
        | "partial-completeness" ->
          let* syscalls = int_list_field j "syscalls" in
          let* phase = phase_field j in
          let* lo = int_field j "lo" in
          let* hi = int_field j "hi" in
          Ok (Partial_completeness { syscalls; phase; lo; hi })
        | "top" ->
          let n =
            match Json.member "n" j with
            | Some v -> Option.value ~default:10 (Json.to_int v)
            | None -> 10
          in
          Ok (Top n)
        | "dependents" ->
          let* api = str_field j "api" in
          let limit = Option.bind (Json.member "limit" j) Json.to_int in
          Ok (Dependents { api; limit })
        | "batch" ->
          (match Json.member "requests" j with
           | None -> Error (bad_request, "missing \"requests\" field")
           | Some v ->
             (match Json.to_list v with
              | None -> Error (bad_request, "\"requests\" must be an array")
              | Some items ->
                let rec go acc = function
                  | [] -> Ok (Batch (List.rev acc))
                  | x :: rest ->
                    (match request_of_json x with
                     | Ok { rq_op = Batch _; _ } ->
                       Error (bad_request, "batch requests may not nest")
                     | Ok r -> go (r :: acc) rest
                     | Error { rs_result = Error { e_kind; e_msg }; _ } ->
                       Error (e_kind, "in batch: " ^ e_msg)
                     | Error _ ->
                       Error (bad_request, "malformed request in \"requests\""))
                in
                go [] items))
        | other -> Ok (Unknown other)))

and request_of_json j : (request, response) result =
  let id = Json.member "id" j in
  match req_of_json j with
  | Ok op -> Ok { rq_id = id; rq_op = op }
  | Error (kind, msg) -> Error (error_response ?id ~kind msg)

let phase_fields phase =
  if phase = Query.All then []
  else [ ("phase", Json.Str (Query.phase_to_string phase)) ]

let num n = Json.Num (float_of_int n)

let rec json_of_req = function
  | Hello versions ->
    [ ("op", Json.Str "hello");
      ("versions", Json.Arr (List.map num versions)) ]
  | Ping -> [ ("op", Json.Str "ping") ]
  | Stats -> [ ("op", Json.Str "stats") ]
  | Importance { api; phase } ->
    (("op", Json.Str "importance") :: ("api", Json.Str api)
     :: phase_fields phase)
  | Completeness { syscalls; phase } ->
    (("op", Json.Str "completeness")
     :: ("syscalls", Json.Arr (List.map num syscalls))
     :: phase_fields phase)
  | Partial_completeness { syscalls; phase; lo; hi } ->
    (("op", Json.Str "partial-completeness")
     :: ("syscalls", Json.Arr (List.map num syscalls))
     :: phase_fields phase)
    @ [ ("lo", num lo); ("hi", num hi) ]
  | Top n -> [ ("op", Json.Str "top"); ("n", num n) ]
  | Dependents { api; limit } ->
    (("op", Json.Str "dependents") :: ("api", Json.Str api)
     ::
     (match limit with
      | None -> []
      | Some l -> [ ("limit", num l) ]))
  | Batch reqs ->
    [ ("op", Json.Str "batch");
      ("requests", Json.Arr (List.map json_of_request reqs)) ]
  | Unknown s -> [ ("op", Json.Str s) ]

and json_of_request { rq_id; rq_op } =
  let fields = json_of_req rq_op in
  match rq_id with
  | None -> Json.Obj fields
  | Some id -> Json.Obj (("id", id) :: fields)

(* The canonicalization point: the typed request already collapsed
   field order, unknown fields and default-phase spellings, so its
   deterministic id-less encoding is the key. *)
let canonical_key request =
  Json.to_string (json_of_request { request with rq_id = None })

(* ------------------------------------------------------------------ *)
(* JSON codec: responses                                               *)
(* ------------------------------------------------------------------ *)

let reply_op = function
  | Hello_r _ -> "hello"
  | Pong -> "ping"
  | Stats_r _ -> "stats"
  | Importance_r _ -> "importance"
  | Completeness_r _ -> "completeness"
  | Partial_r _ -> "partial-completeness"
  | Top_r _ -> "top"
  | Dependents_r _ -> "dependents"
  | Batch_r _ -> "batch"

let ranked_json (r : Query.ranked) =
  Json.Obj
    [
      ("nr", num r.Query.rk_nr);
      ("name", Json.Str r.Query.rk_name);
      ("importance", Json.Num r.Query.rk_importance);
      ("unweighted_elf", Json.Num r.Query.rk_unweighted_elf);
    ]

let hist_json (s : Histogram.summary) =
  Json.Obj
    [
      ("count", num s.Histogram.h_count);
      ("p50", Json.Num s.Histogram.h_p50);
      ("p95", Json.Num s.Histogram.h_p95);
      ("p99", Json.Num s.Histogram.h_p99);
      ("max", Json.Num s.Histogram.h_max);
    ]

let rec reply_fields = function
  | Hello_r { version; codecs } ->
    [ ("version", num version);
      ("codecs", Json.Arr (List.map (fun c -> Json.Str c) codecs)) ]
  | Pong -> [ ("pong", Json.Bool true) ]
  | Stats_r s ->
    [ ("n_packages", num s.st_packages);
      ("n_apis", num s.st_apis);
      ("n_binaries", num s.st_binaries);
      ("total_installs", num s.st_installs) ]
    @ List.map (fun (k, v) -> (k, Json.Num v)) s.st_gauges
    @ (match s.st_hists with
       | [] -> []
       | hs ->
         [ ("hists", Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) hs)) ])
  | Importance_r { api; phase; importance; unweighted } ->
    [ ("api", Json.Str api);
      ("phase", Json.Str (Query.phase_to_string phase));
      ("importance", Json.Num importance);
      ("unweighted", Json.Num unweighted) ]
  | Completeness_r { n_syscalls; phase; completeness } ->
    [ ("n_syscalls", num n_syscalls);
      ("phase", Json.Str (Query.phase_to_string phase));
      ("completeness", Json.Num completeness) ]
  | Partial_r { lo; hi; num = n; den } ->
    [ ("lo", Json.Num (float_of_int lo));
      ("hi", Json.Num (float_of_int hi));
      ("num", Json.Num n);
      ("den", Json.Num den) ]
  | Top_r ranked -> [ ("syscalls", Json.Arr (List.map ranked_json ranked)) ]
  | Dependents_r { api; packages } ->
    [ ("api", Json.Str api);
      ( "packages",
        Json.Arr
          (List.map
             (fun (name, prob) ->
               Json.Obj
                 [ ("package", Json.Str name); ("prob", Json.Num prob) ])
             packages) ) ]
  | Batch_r rs ->
    [ ("responses", Json.Arr (List.map json_of_response rs)) ]

and json_of_response { rs_id; rs_result } =
  let fields =
    match rs_result with
    | Ok reply ->
      ("ok", Json.Bool true)
      :: ("op", Json.Str (reply_op reply))
      :: reply_fields reply
    | Error { e_kind; e_msg } ->
      [ ("ok", Json.Bool false);
        ( "error",
          Json.Obj
            [ ("kind", Json.Str e_kind); ("msg", Json.Str e_msg) ] ) ]
  in
  match rs_id with
  | None -> Json.Obj fields
  | Some id -> Json.Obj (("id", id) :: fields)

(* --- response decoding (the router's JSON-codec shard path) -------- *)

let rint j key =
  match Option.bind (Json.member key j) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "response lacks integer %S" key)

let rfloat j key =
  match Json.member key j with
  | Some (Json.Num f) -> Ok f
  | _ -> Error (Printf.sprintf "response lacks number %S" key)

let rstr j key =
  match Option.bind (Json.member key j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "response lacks string %S" key)

let phase_of_response j =
  match Json.member "phase" j with
  | None -> Ok Query.All
  | Some v ->
    (match Option.bind (Some v) Json.to_str with
     | None -> Error "response \"phase\" not a string"
     | Some s ->
       (match Query.phase_of_string s with
        | Ok ph -> Ok ph
        | Error m -> Error m))

let rec decode_reply op j =
  match op with
  | "ping" -> Ok Pong
  | "hello" ->
    let* version = rint j "version" in
    (match Json.member "codecs" j with
     | Some (Json.Arr items) ->
       let codecs = List.filter_map Json.to_str items in
       Ok (Hello_r { version; codecs })
     | _ -> Error "response lacks \"codecs\"")
  | "stats" ->
    let* st_packages = rint j "n_packages" in
    let* st_apis = rint j "n_apis" in
    let* st_binaries = rint j "n_binaries" in
    let* st_installs = rint j "total_installs" in
    let core =
      [ "id"; "ok"; "op"; "n_packages"; "n_apis"; "n_binaries";
        "total_installs"; "hists" ]
    in
    let st_gauges =
      match j with
      | Json.Obj fields ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.Num f when not (List.mem k core) -> Some (k, f)
            | _ -> None)
          fields
      | _ -> []
    in
    let st_hists =
      match Json.member "hists" j with
      | Some (Json.Obj hs) ->
        List.filter_map
          (fun (k, h) ->
            match
              ( rint h "count", rfloat h "p50", rfloat h "p95",
                rfloat h "p99", rfloat h "max" )
            with
            | Ok h_count, Ok h_p50, Ok h_p95, Ok h_p99, Ok h_max ->
              Some
                ( k,
                  { Histogram.h_count; h_p50; h_p95; h_p99; h_max } )
            | _ -> None)
          hs
      | _ -> []
    in
    Ok (Stats_r { st_packages; st_apis; st_binaries; st_installs;
                  st_gauges; st_hists })
  | "importance" ->
    let* api = rstr j "api" in
    let* phase = phase_of_response j in
    let* importance = rfloat j "importance" in
    let* unweighted = rfloat j "unweighted" in
    Ok (Importance_r { api; phase; importance; unweighted })
  | "completeness" ->
    let* n_syscalls = rint j "n_syscalls" in
    let* phase = phase_of_response j in
    let* completeness = rfloat j "completeness" in
    Ok (Completeness_r { n_syscalls; phase; completeness })
  | "partial-completeness" ->
    let* lo = rint j "lo" in
    let* hi = rint j "hi" in
    let* n = rfloat j "num" in
    let* den = rfloat j "den" in
    Ok (Partial_r { lo; hi; num = n; den })
  | "top" ->
    (match Json.member "syscalls" j with
     | Some (Json.Arr items) ->
       let rec go acc = function
         | [] -> Ok (Top_r (List.rev acc))
         | r :: rest ->
           let* rk_nr = rint r "nr" in
           let* rk_name = rstr r "name" in
           let* rk_importance = rfloat r "importance" in
           let* rk_unweighted_elf = rfloat r "unweighted_elf" in
           go
             ({ Query.rk_nr; rk_name; rk_importance; rk_unweighted_elf }
              :: acc)
             rest
       in
       go [] items
     | _ -> Error "response lacks \"syscalls\"")
  | "dependents" ->
    let* api = rstr j "api" in
    (match Json.member "packages" j with
     | Some (Json.Arr items) ->
       let rec go acc = function
         | [] -> Ok (Dependents_r { api; packages = List.rev acc })
         | p :: rest ->
           let* name = rstr p "package" in
           let* prob = rfloat p "prob" in
           go ((name, prob) :: acc) rest
       in
       go [] items
     | _ -> Error "response lacks \"packages\"")
  | "batch" ->
    (match Json.member "responses" j with
     | Some (Json.Arr items) ->
       let rec go acc = function
         | [] -> Ok (Batch_r (List.rev acc))
         | r :: rest ->
           (match response_of_json r with
            | Ok { rs_result = Ok (Batch_r _); _ } ->
              Error "batch responses may not nest"
            | Ok resp -> go (resp :: acc) rest
            | Error msg -> Error msg)
       in
       go [] items
     | _ -> Error "response lacks \"responses\"")
  | other -> Error (Printf.sprintf "unknown response op %S" other)

and response_of_json j =
  let id = Json.member "id" j in
  match Json.member "ok" j with
  | Some (Json.Bool true) ->
    (match Option.bind (Json.member "op" j) Json.to_str with
     | None -> Error "ok response lacks \"op\""
     | Some op ->
       (match decode_reply op j with
        | Ok reply -> Ok { rs_id = id; rs_result = Ok reply }
        | Error msg -> Error msg))
  | Some (Json.Bool false) ->
    (match Json.member "error" j with
     | Some e ->
       let kind =
         Option.value ~default:"unknown"
           (Option.bind (Json.member "kind" e) Json.to_str)
       in
       let msg =
         Option.value ~default:""
           (Option.bind (Json.member "msg" e) Json.to_str)
       in
       Ok (error_response ?id ~kind msg)
     | None -> Error "error response lacks \"error\"")
  | _ -> Error "response lacks boolean \"ok\""

(* ------------------------------------------------------------------ *)
(* Binary codec                                                        *)
(* ------------------------------------------------------------------ *)

module Bin = struct
  let magic = '\xB1'
  let max_frame = 16 * 1024 * 1024

  exception Bad of string

  let frame payload =
    let b = Buffer.create (String.length payload + 5) in
    Buffer.add_char b magic;
    let n = String.length payload in
    Buffer.add_char b (Char.chr (n land 0xff));
    Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
    Buffer.add_string b payload;
    Buffer.contents b

  (* Request tags live in 0x01..0x1f, response tags in 0x41..0x5f,
     the error response at 0x7f — disjoint ranges, so a frame decoded
     in the wrong direction fails loudly instead of aliasing. *)
  let t_hello = 0x01
  and t_ping = 0x02
  and t_stats = 0x03
  and t_importance = 0x04
  and t_completeness = 0x05
  and t_partial = 0x06
  and t_top = 0x07
  and t_dependents = 0x08
  and t_unknown = 0x09
  and t_batch = 0x0a

  let r_hello = 0x41
  and r_pong = 0x42
  and r_stats = 0x43
  and r_importance = 0x44
  and r_completeness = 0x45
  and r_partial = 0x46
  and r_top = 0x47
  and r_dependents = 0x48
  and r_batch = 0x49
  and r_error = 0x7f

  let w_phase b = function
    | Query.All -> Buffer.add_char b '\000'
    | Query.Init -> Buffer.add_char b '\001'
    | Query.Serving -> Buffer.add_char b '\002'

  let r_phase c =
    match Wire.r_byte c "phase" with
    | 0 -> Query.All
    | 1 -> Query.Init
    | 2 -> Query.Serving
    | n -> raise (Bad (Printf.sprintf "bad phase byte %d" n))

  let w_id b = function
    | None -> Buffer.add_char b '\000'
    | Some id ->
      Buffer.add_char b '\001';
      Wire.w_str b (Json.to_string id)

  let r_id c =
    match Wire.r_byte c "id" with
    | 0 -> None
    | 1 ->
      let s = Wire.r_str c "id" in
      (match Json.parse s with
       | Ok v -> Some v
       | Error msg -> raise (Bad ("bad id payload: " ^ msg)))
    | n -> raise (Bad (Printf.sprintf "bad id tag %d" n))

  let w_int_list b l =
    Wire.w_varint b (List.length l);
    List.iter (Wire.w_int b) l

  let r_int_list c what =
    let n = Wire.r_varint c what in
    if n > max_frame then raise (Bad ("oversized list in " ^ what));
    List.init n (fun _ -> Wire.r_int c what)

  let rec write_request b { rq_id; rq_op } =
    (match rq_op with
     | Hello versions ->
       Buffer.add_char b (Char.chr t_hello);
       w_id b rq_id;
       w_int_list b versions
     | Ping ->
       Buffer.add_char b (Char.chr t_ping);
       w_id b rq_id
     | Stats ->
       Buffer.add_char b (Char.chr t_stats);
       w_id b rq_id
     | Importance { api; phase } ->
       Buffer.add_char b (Char.chr t_importance);
       w_id b rq_id;
       Wire.w_str b api;
       w_phase b phase
     | Completeness { syscalls; phase } ->
       Buffer.add_char b (Char.chr t_completeness);
       w_id b rq_id;
       w_int_list b syscalls;
       w_phase b phase
     | Partial_completeness { syscalls; phase; lo; hi } ->
       Buffer.add_char b (Char.chr t_partial);
       w_id b rq_id;
       w_int_list b syscalls;
       w_phase b phase;
       Wire.w_int b lo;
       Wire.w_int b hi
     | Top n ->
       Buffer.add_char b (Char.chr t_top);
       w_id b rq_id;
       Wire.w_int b n
     | Dependents { api; limit } ->
       Buffer.add_char b (Char.chr t_dependents);
       w_id b rq_id;
       Wire.w_str b api;
       (match limit with
        | None -> Buffer.add_char b '\000'
        | Some l ->
          Buffer.add_char b '\001';
          Wire.w_int b l)
     | Batch reqs ->
       Buffer.add_char b (Char.chr t_batch);
       w_id b rq_id;
       Wire.w_varint b (List.length reqs);
       List.iter (write_request b) reqs
     | Unknown s ->
       Buffer.add_char b (Char.chr t_unknown);
       w_id b rq_id;
       Wire.w_str b s)

  let encode_request r =
    let b = Buffer.create 64 in
    write_request b r;
    frame (Buffer.contents b)

  let rec write_response b { rs_id; rs_result } =
    (match rs_result with
     | Error { e_kind; e_msg } ->
       Buffer.add_char b (Char.chr r_error);
       w_id b rs_id;
       Wire.w_str b e_kind;
       Wire.w_str b e_msg
     | Ok reply ->
       (match reply with
        | Hello_r { version; codecs } ->
          Buffer.add_char b (Char.chr r_hello);
          w_id b rs_id;
          Wire.w_int b version;
          Wire.w_varint b (List.length codecs);
          List.iter (Wire.w_str b) codecs
        | Pong ->
          Buffer.add_char b (Char.chr r_pong);
          w_id b rs_id
        | Stats_r s ->
          Buffer.add_char b (Char.chr r_stats);
          w_id b rs_id;
          Wire.w_int b s.st_packages;
          Wire.w_int b s.st_apis;
          Wire.w_int b s.st_binaries;
          Wire.w_int b s.st_installs;
          Wire.w_varint b (List.length s.st_gauges);
          List.iter
            (fun (k, v) ->
              Wire.w_str b k;
              Wire.w_float b v)
            s.st_gauges;
          Wire.w_varint b (List.length s.st_hists);
          List.iter
            (fun (k, (h : Histogram.summary)) ->
              Wire.w_str b k;
              Wire.w_int b h.Histogram.h_count;
              Wire.w_float b h.Histogram.h_p50;
              Wire.w_float b h.Histogram.h_p95;
              Wire.w_float b h.Histogram.h_p99;
              Wire.w_float b h.Histogram.h_max)
            s.st_hists
        | Importance_r { api; phase; importance; unweighted } ->
          Buffer.add_char b (Char.chr r_importance);
          w_id b rs_id;
          Wire.w_str b api;
          w_phase b phase;
          Wire.w_float b importance;
          Wire.w_float b unweighted
        | Completeness_r { n_syscalls; phase; completeness } ->
          Buffer.add_char b (Char.chr r_completeness);
          w_id b rs_id;
          Wire.w_int b n_syscalls;
          w_phase b phase;
          Wire.w_float b completeness
        | Partial_r { lo; hi; num; den } ->
          Buffer.add_char b (Char.chr r_partial);
          w_id b rs_id;
          Wire.w_int b lo;
          Wire.w_int b hi;
          Wire.w_float b num;
          Wire.w_float b den
        | Top_r ranked ->
          Buffer.add_char b (Char.chr r_top);
          w_id b rs_id;
          Wire.w_varint b (List.length ranked);
          List.iter
            (fun (r : Query.ranked) ->
              Wire.w_int b r.Query.rk_nr;
              Wire.w_str b r.Query.rk_name;
              Wire.w_float b r.Query.rk_importance;
              Wire.w_float b r.Query.rk_unweighted_elf)
            ranked
        | Dependents_r { api; packages } ->
          Buffer.add_char b (Char.chr r_dependents);
          w_id b rs_id;
          Wire.w_str b api;
          Wire.w_varint b (List.length packages);
          List.iter
            (fun (name, prob) ->
              Wire.w_str b name;
              Wire.w_float b prob)
            packages
        | Batch_r rs ->
          Buffer.add_char b (Char.chr r_batch);
          w_id b rs_id;
          Wire.w_varint b (List.length rs);
          List.iter (write_response b) rs))

  let encode_response r =
    let b = Buffer.create 64 in
    write_response b r;
    frame (Buffer.contents b)

  (* Every decode path funnels through here: [Wire.Fail] (truncation,
     varint overflow) and [Bad] (tag/phase/id-shape violations) both
     become [Error], and trailing bytes are rejected so a frame is
     exactly one message. *)
  let decoding what f s =
    try
      let c = Wire.cursor s in
      let v = f c in
      if c.Wire.pos <> c.Wire.stop then
        Error (Printf.sprintf "trailing bytes in %s frame" what)
      else Ok v
    with
    | Wire.Fail e -> Error (Fmt.str "%a" Snapshot.pp_error e)
    | Bad msg -> Error msg

  (* [depth] guards batch nesting: a batch may carry any simple
     request, never another batch — decoded nesting would let one
     frame hide unbounded recursion. *)
  let rec read_request ~depth c =
    let tag = Wire.r_byte c "request tag" in
    let rq_id = r_id c in
    let rq_op =
          if tag = t_hello then Hello (r_int_list c "versions")
          else if tag = t_ping then Ping
          else if tag = t_stats then Stats
          else if tag = t_importance then
            let api = Wire.r_str c "api" in
            let phase = r_phase c in
            Importance { api; phase }
          else if tag = t_completeness then
            let syscalls = r_int_list c "syscalls" in
            let phase = r_phase c in
            Completeness { syscalls; phase }
          else if tag = t_partial then
            let syscalls = r_int_list c "syscalls" in
            let phase = r_phase c in
            let lo = Wire.r_int c "lo" in
            let hi = Wire.r_int c "hi" in
            Partial_completeness { syscalls; phase; lo; hi }
          else if tag = t_top then Top (Wire.r_int c "n")
          else if tag = t_dependents then
            let api = Wire.r_str c "api" in
            let limit =
              match Wire.r_byte c "limit tag" with
              | 0 -> None
              | 1 -> Some (Wire.r_int c "limit")
              | n -> raise (Bad (Printf.sprintf "bad limit tag %d" n))
            in
            Dependents { api; limit }
          else if tag = t_batch then begin
            if depth > 0 then raise (Bad "batch requests may not nest");
            let n = Wire.r_varint c "batch requests" in
            if n > max_frame then raise (Bad "oversized batch");
            Batch (List.init n (fun _ -> read_request ~depth:(depth + 1) c))
          end
          else if tag = t_unknown then Unknown (Wire.r_str c "op")
          else raise (Bad (Printf.sprintf "unknown request tag 0x%02x" tag))
    in
    { rq_id; rq_op }

  let decode_request s = decoding "request" (read_request ~depth:0) s

  let rec read_response ~depth c =
    let tag = Wire.r_byte c "response tag" in
    let rs_id = r_id c in
    let rs_result =
          if tag = r_error then
            let e_kind = Wire.r_str c "error kind" in
            let e_msg = Wire.r_str c "error msg" in
            Error { e_kind; e_msg }
          else if tag = r_hello then
            let version = Wire.r_int c "version" in
            let n = Wire.r_varint c "codecs" in
            if n > 1024 then raise (Bad "oversized codec list");
            let codecs = List.init n (fun _ -> Wire.r_str c "codec") in
            Ok (Hello_r { version; codecs })
          else if tag = r_pong then Ok Pong
          else if tag = r_stats then begin
            let st_packages = Wire.r_int c "n_packages" in
            let st_apis = Wire.r_int c "n_apis" in
            let st_binaries = Wire.r_int c "n_binaries" in
            let st_installs = Wire.r_int c "total_installs" in
            let ng = Wire.r_varint c "gauges" in
            if ng > max_frame then raise (Bad "oversized gauge list");
            let st_gauges =
              List.init ng (fun _ ->
                  let k = Wire.r_str c "gauge name" in
                  let v = Wire.r_float c "gauge value" in
                  (k, v))
            in
            let nh = Wire.r_varint c "hists" in
            if nh > max_frame then raise (Bad "oversized hist list");
            let st_hists =
              List.init nh (fun _ ->
                  let k = Wire.r_str c "hist name" in
                  let h_count = Wire.r_int c "hist count" in
                  let h_p50 = Wire.r_float c "hist p50" in
                  let h_p95 = Wire.r_float c "hist p95" in
                  let h_p99 = Wire.r_float c "hist p99" in
                  let h_max = Wire.r_float c "hist max" in
                  (k, { Histogram.h_count; h_p50; h_p95; h_p99; h_max }))
            in
            Ok (Stats_r { st_packages; st_apis; st_binaries; st_installs;
                          st_gauges; st_hists })
          end
          else if tag = r_importance then
            let api = Wire.r_str c "api" in
            let phase = r_phase c in
            let importance = Wire.r_float c "importance" in
            let unweighted = Wire.r_float c "unweighted" in
            Ok (Importance_r { api; phase; importance; unweighted })
          else if tag = r_completeness then
            let n_syscalls = Wire.r_int c "n_syscalls" in
            let phase = r_phase c in
            let completeness = Wire.r_float c "completeness" in
            Ok (Completeness_r { n_syscalls; phase; completeness })
          else if tag = r_partial then
            let lo = Wire.r_int c "lo" in
            let hi = Wire.r_int c "hi" in
            let num = Wire.r_float c "num" in
            let den = Wire.r_float c "den" in
            Ok (Partial_r { lo; hi; num; den })
          else if tag = r_top then begin
            let n = Wire.r_varint c "ranked" in
            if n > max_frame then raise (Bad "oversized ranking");
            let ranked =
              List.init n (fun _ ->
                  let rk_nr = Wire.r_int c "nr" in
                  let rk_name = Wire.r_str c "name" in
                  let rk_importance = Wire.r_float c "importance" in
                  let rk_unweighted_elf = Wire.r_float c "unweighted_elf" in
                  { Query.rk_nr; rk_name; rk_importance; rk_unweighted_elf })
            in
            Ok (Top_r ranked)
          end
          else if tag = r_dependents then begin
            let api = Wire.r_str c "api" in
            let n = Wire.r_varint c "packages" in
            if n > max_frame then raise (Bad "oversized package list");
            let packages =
              List.init n (fun _ ->
                  let name = Wire.r_str c "package" in
                  let prob = Wire.r_float c "prob" in
                  (name, prob))
            in
            Ok (Dependents_r { api; packages })
          end
          else if tag = r_batch then begin
            if depth > 0 then raise (Bad "batch responses may not nest");
            let n = Wire.r_varint c "batch responses" in
            if n > max_frame then raise (Bad "oversized batch");
            Ok
              (Batch_r
                 (List.init n (fun _ -> read_response ~depth:(depth + 1) c)))
          end
          else raise (Bad (Printf.sprintf "unknown response tag 0x%02x" tag))
    in
    { rs_id; rs_result }

  let decode_response s = decoding "response" (read_response ~depth:0) s

  let input_frame_body ic =
    match really_input_string ic 4 with
    | exception End_of_file -> Error (`Bad "EOF inside frame header")
    | hdr ->
      let len =
        Char.code hdr.[0]
        lor (Char.code hdr.[1] lsl 8)
        lor (Char.code hdr.[2] lsl 16)
        lor (Char.code hdr.[3] lsl 24)
      in
      if len > max_frame then
        Error (`Bad (Printf.sprintf "frame length %d exceeds limit" len))
      else (
        match really_input_string ic len with
        | exception End_of_file -> Error (`Bad "EOF inside frame payload")
        | payload -> Ok payload)

  let input_frame ic =
    match input_char ic with
    | exception End_of_file -> Error `Eof
    | c when c = magic -> input_frame_body ic
    | c ->
      Error (`Bad (Printf.sprintf "bad frame magic 0x%02x" (Char.code c)))
end
