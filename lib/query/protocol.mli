(** The versioned serve wire protocol: typed requests and responses,
    explicit version negotiation, and the single canonicalization
    point every entry point shares.

    Before this module existed the request/response surface lived as
    ad-hoc JSON plumbing inside {!Serve} and {!Server}; the fleet
    (router + shard processes) forced the redesign. The protocol now
    has one typed definition and {e two interchangeable codecs}:

    - {b JSON lines} — one request object per line, one response
      object per line; byte-compatible with the pre-fleet wire format
      (responses additionally carry an ["op"] field naming the reply
      shape). This is the human/client surface.
    - {b length-prefixed binary} ({!Bin}) — magic byte [0xB1], u32-LE
      payload length, tagged payload of varints / length-prefixed
      strings / IEEE-754 float bits (the {!Lapis_store.Snapshot.Wire}
      primitives). This is the router↔shard codec, where JSON
      encode/decode is measurable overhead at fleet throughput.

    A connection chooses its codec implicitly by its first byte
    ([0xB1] means binary, anything else means JSON lines) and its
    protocol version explicitly with a [hello] request; a server
    answers with the highest version both sides support. Version 1 is
    the only version to date and is assumed when a client skips
    [hello].

    Decoding is total in both codecs: malformed bytes produce
    [Error], never an exception — held to the same
    truncation/bit-flip fuzz discipline as the snapshot formats. *)

(** {2 Versions and codecs} *)

val current_version : int
(** 1 — the protocol described here. *)

val supported_versions : int list

type codec = Json_lines | Binary

val codec_name : codec -> string
(** ["json"] / ["binary"] — the names [hello] advertises. *)

val codec_names : string list

val negotiate : int list -> (int, string * string) result
(** Highest common version of the proposal and {!supported_versions};
    [Error (kind, msg)] with kind ["unsupported-version"] when the
    intersection is empty. *)

(** {2 Typed requests} *)

type req =
  | Hello of int list  (** protocol versions the client can speak *)
  | Ping
  | Stats
  | Importance of { api : string; phase : Query.phase }
  | Completeness of { syscalls : int list; phase : Query.phase }
  | Partial_completeness of {
      syscalls : int list;
      phase : Query.phase;
      lo : int;  (** package range, clamped by the evaluator *)
      hi : int;
    }  (** one shard's share of a scattered completeness query *)
  | Top of int
  | Dependents of { api : string; limit : int option }
  | Batch of request list
      (** several requests in one frame — the router's scatter-path
          coalescing op. Each element keeps its own id; the reply is a
          {!Batch_r} with one response per element {e in request
          order}. Batches may not nest: both codecs reject a [Batch]
          inside a [Batch] at decode time. *)
  | Unknown of string
      (** an op name this version does not know — kept so the error
          response (and its stage counter) can echo it *)

and request = { rq_id : Json.t option; rq_op : req }
(** [rq_id] is echoed verbatim into the response for correlation. *)

val op_name : req -> string
(** The wire spelling (["ping"], ["partial-completeness"], ...); for
    [Unknown s], [s] itself. *)

(** {2 Typed responses} *)

type err = { e_kind : string; e_msg : string }
(** Structured failure; [e_kind] is one of the stable kind names
    below. *)

val bad_request : string
val bad_api : string
val bad_phase : string
val unknown_op : string
val parse_error : string
val internal_error : string
val overloaded : string
(** Shed by the router's admission control instead of queueing
    unboundedly. *)

val degraded : string
(** The shard owning part of the answer is unavailable; the router
    refuses to return a silently partial sum. *)

val unsupported_version : string

type stats_reply = {
  st_packages : int;
  st_apis : int;
  st_binaries : int;
  st_installs : int;
  st_gauges : (string * float) list;
      (** host-injected point-in-time gauges: queue depth, cache
          hits/misses, shard health, ... *)
  st_hists : (string * Lapis_perf.Histogram.summary) list;
      (** per-stage latency histograms (nanoseconds) *)
}

type reply =
  | Hello_r of { version : int; codecs : string list }
  | Pong
  | Stats_r of stats_reply
  | Importance_r of {
      api : string;
      phase : Query.phase;
      importance : float;
      unweighted : float;
    }
  | Completeness_r of {
      n_syscalls : int;
      phase : Query.phase;
      completeness : float;
    }
  | Partial_r of { lo : int; hi : int; num : float; den : float }
  | Top_r of Query.ranked list
  | Dependents_r of { api : string; packages : (string * float) list }
  | Batch_r of response list
      (** one response per batched request, in request order, each
          echoing its sub-request's id *)

and response = { rs_id : Json.t option; rs_result : (reply, err) result }

val error_response : ?id:Json.t -> kind:string -> string -> response

(** {2 JSON codec} *)

val request_of_json : Json.t -> (request, response) result
(** Parse a typed request out of a decoded JSON value. The [Error]
    case is a ready-to-send error response (id echoed, stable kind
    and message) — field-presence and type errors are values, never
    exceptions. *)

val json_of_request : request -> Json.t
(** The canonical JSON spelling: fixed field order, the default
    phase omitted. [request_of_json (json_of_request r) = Ok r] for
    every representable request. *)

val json_of_response : response -> Json.t
(** Wire spelling: [{"id"?, "ok": true, "op": ..., fields...}] or
    [{"id"?, "ok": false, "error": {"kind", "msg"}}]. *)

val response_of_json : Json.t -> (response, string) result
(** Inverse of {!json_of_response} (dispatches on the ["op"] field). *)

val canonical_key : request -> string
(** The one canonicalization point for response caches: the id-less
    canonical JSON spelling, serialized. Two requests with equal keys
    get equal responses (every op is a pure function of the index),
    regardless of field order, unknown fields, or how the default
    phase was spelled — and the key is the same whether the request
    arrived as JSON or binary. *)

(** {2 Binary codec} *)

module Bin : sig
  val magic : char
  (** ['\xB1'] — the first byte of every frame, and what routes a
      fresh connection to the binary reader. *)

  val max_frame : int
  (** Frames longer than this decode as errors (corruption guard). *)

  val frame : string -> string
  (** [magic ++ u32-LE length ++ payload]. *)

  val encode_request : request -> string
  (** A complete framed request. *)

  val encode_response : response -> string
  (** A complete framed response. *)

  val decode_request : string -> (request, string) result
  (** Decode one frame {e payload} (no magic/length); total. *)

  val decode_response : string -> (response, string) result

  val input_frame :
    in_channel -> (string, [ `Eof | `Bad of string ]) result
  (** Read one whole frame (magic, length, payload) off a channel and
      return the payload. [`Eof] only at a clean frame boundary;
      mid-frame EOF, a wrong magic byte or an oversized length are
      [`Bad] — the stream cannot be resynchronized. *)

  val input_frame_body :
    in_channel -> (string, [ `Eof | `Bad of string ]) result
  (** Same, when the magic byte has already been consumed (the
      server's codec-detection path). *)
end
