(** Indexed compatibility query engine: precomputed structures over an
    immutable {!Store.t} that answer the paper's two headline
    questions — API importance (Appendix A.1) and weighted
    completeness of an arbitrary API subset (Appendix A.2) — without
    touching the analysis pipeline again.

    Three precomputations carry every query:

    - {b survival products}. For each API, the product
      [prod (1 - p_pkg)] over its dependent packages, folded in the
      store's dependents order — the exact arithmetic of
      {!Lapis_metrics.Importance.importance} — so importance is an
      O(1) lookup that is bit-identical to the closed-form oracle.

    - {b closure requirement arrays}. Completeness propagates support
      through dependencies to a fixed point; that fixpoint equals
      "every package in my transitive dependency closure is directly
      supported". We condense the dependency graph into strongly
      connected components (iterative Tarjan, emitted in reverse
      topological order) and give every package the sorted, deduped
      array of APIs required anywhere in its closure. An arbitrary
      subset query is then one linear pass: a package is supported iff
      every id in its closure array is in the queried set. A
      syscall-specialized copy of the arrays (just the numbers) backs
      the hot [eval_syscalls] path with a flat [bool array] probe.

    - {b the Section 3 ranking}, computed once with the oracle's own
      comparator over index-derived values.

    The weighted sums replicate the oracle's accumulation order
    (ascending package index, total weight folded over the full row
    array), so results are equal to the closed-form implementations
    bit for bit, not merely within tolerance — the test suite asserts
    [<= 1e-12] but the design target is exact. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Stage = Lapis_perf.Stage

type ranked = {
  rk_nr : int;
  rk_name : string;
  rk_importance : float;
  rk_unweighted_elf : float;
}

type t = {
  store : Store.t;
  n : int;
  probs : float array;  (* pkg index -> install probability *)
  names : string array;
  api_ids : int Api.Tbl.t;  (* interning: api -> dense id *)
  apis : Api.t array;  (* id -> api *)
  survival : float array;  (* id -> prod(1 - p) over dependents *)
  dep_count : int array;  (* id -> number of dependent packages *)
  elf_count : int array;  (* id -> packages using it from own ELFs *)
  closure_req : int array array;
      (* pkg -> sorted api ids required anywhere in its dep closure;
         rows of one SCC share the same physical array *)
  closure_sys : int array array;  (* same, syscall numbers only *)
  max_nr : int;  (* largest syscall nr required by any package *)
  scratch : bool array;  (* nr -> queried?  (eval_syscalls workspace) *)
  ranking : ranked array;  (* Section 3 order, most important first *)
  den : float;  (* total popcon weight, oracle fold order *)
}

(* ------------------------------------------------------------------ *)
(* Index construction                                                  *)
(* ------------------------------------------------------------------ *)

(* Iterative Tarjan SCC over [succ]. Returns [comp] (node -> component
   id) and the component count; components are numbered in emission
   order, which for Tarjan is reverse topological: every component
   reachable from component [c] has an id [< c]. *)
let tarjan n (succ : int array array) =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let comp = Array.make n (-1) in
  let n_comps = ref 0 in
  let counter = ref 0 in
  let frames = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      index.(root) <- !counter;
      low.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      Stack.push (root, ref 0) frames;
      while not (Stack.is_empty frames) do
        let v, next_edge = Stack.top frames in
        if !next_edge < Array.length succ.(v) then begin
          let w = succ.(v).(!next_edge) in
          incr next_edge;
          if index.(w) < 0 then begin
            index.(w) <- !counter;
            low.(w) <- !counter;
            incr counter;
            stack := w :: !stack;
            on_stack.(w) <- true;
            Stack.push (w, ref 0) frames
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          (match Stack.top_opt frames with
           | Some (u, _) -> low.(u) <- min low.(u) low.(v)
           | None -> ());
          if low.(v) = index.(v) then begin
            let cid = !n_comps in
            incr n_comps;
            let finished = ref false in
            while not !finished do
              match !stack with
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp.(w) <- cid;
                if w = v then finished := true
              | [] -> assert false
            done
          end
        end
      done
    end
  done;
  (comp, !n_comps)

let index (store : Store.t) : t =
  Stage.time "query:index-build" @@ fun () ->
  let n = store.Store.n_packages in
  let probs = Array.map (fun p -> p.Store.pr_prob) store.Store.packages in
  let names = Array.map (fun p -> p.Store.pr_name) store.Store.packages in
  (* Intern every API reachable from any package footprint. *)
  let api_ids = Api.Tbl.create 4096 in
  let rev_apis = ref [] in
  let n_apis = ref 0 in
  let intern api =
    match Api.Tbl.find_opt api_ids api with
    | Some id -> id
    | None ->
      let id = !n_apis in
      incr n_apis;
      Api.Tbl.add api_ids api id;
      rev_apis := api :: !rev_apis;
      id
  in
  Array.iter
    (fun (p : Store.pkg_row) ->
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_apis;
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_apis_elf)
    store.Store.packages;
  let apis = Array.of_list (List.rev !rev_apis) in
  let n_apis = !n_apis in
  (* Survival products, folded in the store's dependents order — the
     same multiply sequence as the Importance oracle. *)
  let survival = Array.make n_apis 1.0 in
  let dep_count = Array.make n_apis 0 in
  Array.iteri
    (fun id api ->
      let deps = Store.dependents store api in
      dep_count.(id) <- List.length deps;
      survival.(id) <-
        List.fold_left (fun acc i -> acc *. (1.0 -. probs.(i))) 1.0 deps)
    apis;
  let elf_count = Array.make n_apis 0 in
  Array.iter
    (fun (p : Store.pkg_row) ->
      Api.Set.iter
        (fun a -> elf_count.(Api.Tbl.find api_ids a) <- elf_count.(Api.Tbl.find api_ids a) + 1)
        p.Store.pr_apis_elf)
    store.Store.packages;
  (* Direct requirement arrays and resolvable dependency edges. *)
  let req =
    Array.map
      (fun (p : Store.pkg_row) ->
        let ids =
          Api.Set.fold (fun a acc -> Api.Tbl.find api_ids a :: acc)
            p.Store.pr_apis []
        in
        let arr = Array.of_list ids in
        Array.sort (fun (a : int) b -> compare a b) arr;
        arr)
      store.Store.packages
  in
  let succ =
    Array.map
      (fun (p : Store.pkg_row) ->
        p.Store.pr_deps
        |> List.filter_map (Hashtbl.find_opt store.Store.pkg_index)
        |> Array.of_list)
      store.Store.packages
  in
  let comp, n_comps = tarjan n succ in
  let members = Array.make n_comps [] in
  for i = n - 1 downto 0 do
    members.(comp.(i)) <- i :: members.(comp.(i))
  done;
  (* Closure per component, successors first (their ids are smaller). *)
  let comp_closure = Array.make n_comps [||] in
  let mark = Array.make n_apis false in
  for c = 0 to n_comps - 1 do
    let acc = ref [] in
    let add id =
      if not mark.(id) then begin
        mark.(id) <- true;
        acc := id :: !acc
      end
    in
    List.iter
      (fun i ->
        Array.iter add req.(i);
        Array.iter
          (fun j -> if comp.(j) <> c then Array.iter add comp_closure.(comp.(j)))
          succ.(i))
      members.(c);
    let arr = Array.of_list !acc in
    Array.sort (fun (a : int) b -> compare a b) arr;
    Array.iter (fun id -> mark.(id) <- false) arr;
    comp_closure.(c) <- arr
  done;
  let closure_req = Array.init n (fun i -> comp_closure.(comp.(i))) in
  (* Syscall-specialized copies: just the numbers, for the hot path. *)
  let sys_nr =
    Array.map (function Api.Syscall nr -> nr | _ -> -1) apis
  in
  let comp_sys =
    Array.map
      (fun ids ->
        let nrs =
          Array.to_list ids
          |> List.filter_map (fun id ->
                 if sys_nr.(id) >= 0 then Some sys_nr.(id) else None)
        in
        let arr = Array.of_list nrs in
        Array.sort (fun (a : int) b -> compare a b) arr;
        arr)
      comp_closure
  in
  let closure_sys = Array.init n (fun i -> comp_sys.(comp.(i))) in
  let max_nr = Array.fold_left (fun acc nr -> max acc nr) (-1) sys_nr in
  let den = Array.fold_left (fun a p -> a +. p) 0.0 probs in
  (* Section 3 ranking, with the oracle's comparator over
     index-derived values (both bit-identical to the oracle's). *)
  let importance_of_nr nr =
    match Api.Tbl.find_opt api_ids (Api.Syscall nr) with
    | Some id -> 1.0 -. survival.(id)
    | None -> 0.0
  in
  let unweighted_elf_of_nr nr =
    let k =
      match Api.Tbl.find_opt api_ids (Api.Syscall nr) with
      | Some id -> elf_count.(id)
      | None -> 0
    in
    float_of_int k /. float_of_int n
  in
  let ranking =
    Array.to_list Syscall_table.all
    |> List.map (fun (e : Syscall_table.entry) ->
           ( e.Syscall_table.nr,
             e.Syscall_table.name,
             importance_of_nr e.Syscall_table.nr,
             unweighted_elf_of_nr e.Syscall_table.nr ))
    |> List.sort (fun (na, _, ia, ua) (nb, _, ib, ub) ->
           match compare ib ia with
           | 0 -> (match compare ub ua with 0 -> compare na nb | c -> c)
           | c -> c)
    |> List.map (fun (nr, name, imp, uelf) ->
           {
             rk_nr = nr;
             rk_name = name;
             rk_importance = imp;
             rk_unweighted_elf = uelf;
           })
    |> Array.of_list
  in
  {
    store;
    n;
    probs;
    names;
    api_ids;
    apis;
    survival;
    dep_count;
    elf_count;
    closure_req;
    closure_sys;
    max_nr;
    scratch = Array.make (max_nr + 2) false;
    ranking;
    den;
  }

(* ------------------------------------------------------------------ *)
(* Point queries                                                       *)
(* ------------------------------------------------------------------ *)

let store t = t.store
let n_packages t = t.n
let n_apis t = Array.length t.apis

let survival t api =
  match Api.Tbl.find_opt t.api_ids api with
  | Some id -> t.survival.(id)
  | None -> 1.0

let importance t api = 1.0 -. survival t api

let unweighted t api =
  let k =
    match Api.Tbl.find_opt t.api_ids api with
    | Some id -> t.dep_count.(id)
    | None -> 0
  in
  float_of_int k /. float_of_int t.n

let unweighted_elf t api =
  let k =
    match Api.Tbl.find_opt t.api_ids api with
    | Some id -> t.elf_count.(id)
    | None -> 0
  in
  float_of_int k /. float_of_int t.n

let ranking t = Array.to_list t.ranking |> List.map (fun r -> r.rk_nr)

let top_n t n =
  let len = min (max n 0) (Array.length t.ranking) in
  List.init len (fun i -> t.ranking.(i))

let dependents_ranked ?limit t api =
  Stage.incr "query:dependents";
  let rows =
    Store.dependents t.store api
    |> List.map (fun i -> (t.names.(i), t.probs.(i)))
    |> List.sort (fun (na, pa) (nb, pb) ->
           match compare pb pa with 0 -> compare na nb | c -> c)
  in
  match limit with
  | None -> rows
  | Some k -> List.filteri (fun i _ -> i < k) rows

(* ------------------------------------------------------------------ *)
(* Completeness over arbitrary subsets                                 *)
(* ------------------------------------------------------------------ *)

type scope = Syscalls_only | All_apis

let scoped scope supported api =
  match scope with
  | All_apis -> supported api
  | Syscalls_only ->
    (match api with Api.Syscall _ -> supported api | _ -> true)

let eval_pred ?(scope = All_apis) t ~supported =
  Stage.incr "query:eval";
  let n_apis = Array.length t.apis in
  let good = Array.make n_apis true in
  for id = 0 to n_apis - 1 do
    good.(id) <- scoped scope supported t.apis.(id)
  done;
  let num = ref 0.0 in
  for i = 0 to t.n - 1 do
    let reqs = t.closure_req.(i) in
    let len = Array.length reqs in
    let k = ref 0 in
    while !k < len && good.(reqs.(!k)) do
      incr k
    done;
    if !k = len then num := !num +. t.probs.(i)
  done;
  if t.den = 0.0 then 0.0 else !num /. t.den

let eval_syscalls t nrs =
  Stage.incr "query:eval";
  let sup = t.scratch in
  let marked = List.filter (fun nr -> nr >= 0 && nr <= t.max_nr) nrs in
  List.iter (fun nr -> sup.(nr) <- true) marked;
  let num = ref 0.0 in
  for i = 0 to t.n - 1 do
    let reqs = t.closure_sys.(i) in
    let len = Array.length reqs in
    let k = ref 0 in
    while !k < len && sup.(reqs.(!k)) do
      incr k
    done;
    if !k = len then num := !num +. t.probs.(i)
  done;
  List.iter (fun nr -> sup.(nr) <- false) marked;
  if t.den = 0.0 then 0.0 else !num /. t.den

let eval_subsets t subsets =
  Stage.time "query:eval-subsets" @@ fun () ->
  List.map (eval_syscalls t) subsets

(* ------------------------------------------------------------------ *)
(* API naming (serve protocol / CLI)                                   *)
(* ------------------------------------------------------------------ *)

let api_to_string = function
  | Api.Syscall nr ->
    if Syscall_table.is_valid_nr nr then
      "syscall:" ^ Syscall_table.name_of_nr nr
    else "syscall:" ^ string_of_int nr
  | Api.Vop (Api.Ioctl, code) -> Printf.sprintf "ioctl:%d" code
  | Api.Vop (Api.Fcntl, code) -> Printf.sprintf "fcntl:%d" code
  | Api.Vop (Api.Prctl, code) -> Printf.sprintf "prctl:%d" code
  | Api.Pseudo_file path -> "pseudo:" ^ path
  | Api.Libc_sym name -> "libc:" ^ name

let parse_syscall s =
  match int_of_string_opt s with
  | Some nr -> Ok (Api.Syscall nr)
  | None ->
    (match Syscall_table.nr_of_name s with
     | Some nr -> Ok (Api.Syscall nr)
     | None -> Error (Printf.sprintf "unknown system call %S" s))

let api_of_string s =
  match String.index_opt s ':' with
  | None -> parse_syscall s
  | Some i ->
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let vop v =
      match int_of_string_opt rest with
      | Some code -> Ok (Api.Vop (v, code))
      | None -> Error (Printf.sprintf "%s code must be an integer: %S" kind rest)
    in
    (match kind with
     | "syscall" -> parse_syscall rest
     | "ioctl" -> vop Api.Ioctl
     | "fcntl" -> vop Api.Fcntl
     | "prctl" -> vop Api.Prctl
     | "pseudo" -> Ok (Api.Pseudo_file rest)
     | "libc" -> Ok (Api.Libc_sym rest)
     | _ -> Error (Printf.sprintf "unknown api kind %S" kind))
