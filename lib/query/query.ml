(** Indexed compatibility query engine: precomputed structures over an
    immutable {!Store.t} that answer the paper's two headline
    questions — API importance (Appendix A.1) and weighted
    completeness of an arbitrary API subset (Appendix A.2) — without
    touching the analysis pipeline again.

    Three precomputations carry every query:

    - {b survival products}. For each API, the product
      [prod (1 - p_pkg)] over its dependent packages, folded in the
      store's dependents order — the exact arithmetic of
      {!Lapis_metrics.Importance.importance} — so importance is an
      O(1) lookup that is bit-identical to the closed-form oracle.

    - {b packed closure bitsets}. Completeness propagates support
      through dependencies to a fixed point; that fixpoint equals
      "every package in my transitive dependency closure is directly
      supported". We condense the dependency graph into strongly
      connected components (iterative Tarjan, emitted in reverse
      topological order) and give every component a {!Bitset} over the
      dense API universe holding every API required anywhere in its
      closure. An arbitrary subset query then costs one word-wise
      subset test per component — a handful of machine words instead
      of an element-wise scan — plus one gated sweep over the package
      probability array in store order. A syscall-specialized copy of
      the bitsets (over the syscall-number universe) backs the hot
      [eval_syscalls] path.

    - {b the Section 3 ranking}, computed once with the oracle's own
      comparator over index-derived values.

    Every structure above also exists {b per phase}: the temporal
    attribution of {!Lapis_analysis.Phase} gives each package an
    init-phase and a serving-phase requirement set, and the index
    carries packed closure classes (with their own universal cores)
    and survival products for both. A query with [phase = All] walks
    the exact arrays an unphased build would have produced, so
    existing results are bit-identical; [Init]/[Serving] swap in the
    phased classes and nothing else.

    The weighted sums replicate the oracle's accumulation order
    (ascending package index, total weight folded over the full row
    array), so results are equal to the closed-form implementations
    bit for bit, not merely within tolerance — the test suite asserts
    [<= 1e-12] but the design target is exact. Sharded evaluation
    ({!eval_syscalls_sharded}) merges per-range partial sums and is
    the one deliberate exception: float addition is not associative,
    so it is held to the 1e-12 tolerance instead.

    Index construction fans out over {!Lapis_perf.Parmap} — survival
    products by API range, direct requirement bitsets by package
    range — and merges deterministically: every per-element fold runs
    whole on one domain in the oracle's order, so the built index is
    bit-identical to a sequential build. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Stage = Lapis_perf.Stage
module Bitset = Lapis_perf.Bitset
module Parmap = Lapis_perf.Parmap

type ranked = {
  rk_nr : int;
  rk_name : string;
  rk_importance : float;
  rk_unweighted_elf : float;
}

type phase = Init | Serving | All

(* Distinct closure classes: SCCs whose closures are equal share one
   class, so a query runs one subset test per *distinct* closure
   (typically fewer than packages), then one gated sweep. Class rows
   live unwrapped in one flat row-major word array (row [c] at
   [c * nw]) so the hot loop walks contiguous memory, and [ci_common]
   holds the intersection of every class — the universal core: a
   query that misses any core bit can satisfy no class at all, so
   one word-wise test against the core answers most subsets without
   touching the class rows. One such index exists per (phase,
   universe) pair: the full API universe and the syscall-number
   specialization, for each of All/Init/Serving. *)
type class_index = {
  ci_nc : int;  (* distinct closure classes *)
  ci_nw : int;  (* words per class row *)
  ci_flat : int array;  (* ci_nc * ci_nw, row-major *)
  ci_common : int array;  (* ci_nw words: bits required everywhere *)
  ci_pkg_class : int array;  (* pkg -> class row *)
}

type t = {
  store : Store.t;
  n : int;
  probs : float array;  (* pkg index -> install probability *)
  names : string array;
  api_ids : int Api.Tbl.t;  (* interning: api -> dense id *)
  apis : Api.t array;  (* id -> api *)
  survival : float array;  (* id -> prod(1 - p) over dependents *)
  survival_init : float array;  (* same, over init-phase requirers *)
  survival_serving : float array;
  dep_count : int array;  (* id -> number of dependent packages *)
  elf_count : int array;  (* id -> packages using it from own ELFs *)
  n_comps : int;  (* SCCs of the dependency graph *)
  req : class_index;  (* API universe, whole footprints *)
  sys : class_index;  (* syscall-nr universe, whole footprints *)
  req_init : class_index;
  sys_init : class_index;
  req_serving : class_index;
  sys_serving : class_index;
  max_nr : int;  (* largest syscall nr required by any package *)
  ranking : ranked array;  (* Section 3 order, most important first *)
  den : float;  (* total popcon weight, oracle fold order *)
}

let req_of t = function
  | All -> t.req
  | Init -> t.req_init
  | Serving -> t.req_serving

let sys_of t = function
  | All -> t.sys
  | Init -> t.sys_init
  | Serving -> t.sys_serving

let phase_to_string = function
  | Init -> "init"
  | Serving -> "serving"
  | All -> "all"

let phase_of_string = function
  | "init" -> Ok Init
  | "serving" -> Ok Serving
  | "all" | "" -> Ok All
  | s -> Error (Printf.sprintf "unknown phase %S (init|serving|all)" s)

(* ------------------------------------------------------------------ *)
(* Index construction                                                  *)
(* ------------------------------------------------------------------ *)

(* Iterative Tarjan SCC over [succ]. Returns [comp] (node -> component
   id) and the component count; components are numbered in emission
   order, which for Tarjan is reverse topological: every component
   reachable from component [c] has an id [< c]. *)
let tarjan n (succ : int array array) =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let comp = Array.make n (-1) in
  let n_comps = ref 0 in
  let counter = ref 0 in
  let frames = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      index.(root) <- !counter;
      low.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      Stack.push (root, ref 0) frames;
      while not (Stack.is_empty frames) do
        let v, next_edge = Stack.top frames in
        if !next_edge < Array.length succ.(v) then begin
          let w = succ.(v).(!next_edge) in
          incr next_edge;
          if index.(w) < 0 then begin
            index.(w) <- !counter;
            low.(w) <- !counter;
            incr counter;
            stack := w :: !stack;
            on_stack.(w) <- true;
            Stack.push (w, ref 0) frames
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          (match Stack.top_opt frames with
           | Some (u, _) -> low.(u) <- min low.(u) low.(v)
           | None -> ());
          if low.(v) = index.(v) then begin
            let cid = !n_comps in
            incr n_comps;
            let finished = ref false in
            while not !finished do
              match !stack with
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp.(w) <- cid;
                if w = v then finished := true
              | [] -> assert false
            done
          end
        end
      done
    end
  done;
  (comp, !n_comps)

(* [lo, hi) index ranges for the Parmap fan-outs below: coarse enough
   that per-range overhead is negligible, fine enough to balance. *)
let ranges n =
  let step = max 256 (n / 64) in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + step) ((lo, min n (lo + step)) :: acc)
  in
  go 0 []

let index ?domains (store : Store.t) : t =
  Stage.time "query:index-build" @@ fun () ->
  let n = store.Store.n_packages in
  let probs = Array.map (fun p -> p.Store.pr_prob) store.Store.packages in
  let names = Array.map (fun p -> p.Store.pr_name) store.Store.packages in
  (* Intern every API reachable from any package footprint. Sequential:
     first-seen order defines the dense ids everything below shares. *)
  let api_ids = Api.Tbl.create 4096 in
  let rev_apis = ref [] in
  let n_apis = ref 0 in
  let intern api =
    match Api.Tbl.find_opt api_ids api with
    | Some id -> id
    | None ->
      let id = !n_apis in
      incr n_apis;
      Api.Tbl.add api_ids api id;
      rev_apis := api :: !rev_apis;
      id
  in
  Array.iter
    (fun (p : Store.pkg_row) ->
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_apis;
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_apis_elf;
      (* Phased sets are subsets of [pr_apis] on pipeline-built stores,
         so these add no ids there (the dense universe — and with it
         every unphased structure — is unchanged); hand-built stores
         may violate the subset invariant and still get interned. *)
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_init;
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_serving)
    store.Store.packages;
  let apis = Array.of_list (List.rev !rev_apis) in
  let n_apis = !n_apis in
  (* Survival products, folded in the store's dependents order — the
     same multiply sequence as the Importance oracle. Fanned out by
     API range; each API's product runs whole on one domain, so the
     merge (a blit per range) is bit-identical to a sequential build. *)
  let survival = Array.make n_apis 1.0 in
  let dep_count = Array.make n_apis 0 in
  Parmap.map ?domains
    (fun (lo, hi) ->
      let s = Array.make (hi - lo) 1.0 in
      let d = Array.make (hi - lo) 0 in
      for id = lo to hi - 1 do
        let deps = Store.dependents store apis.(id) in
        d.(id - lo) <- List.length deps;
        s.(id - lo) <-
          List.fold_left (fun acc i -> acc *. (1.0 -. probs.(i))) 1.0 deps
      done;
      (lo, s, d))
    (ranges n_apis)
  |> List.iter (fun (lo, s, d) ->
         Array.blit s 0 survival lo (Array.length s);
         Array.blit d 0 dep_count lo (Array.length d));
  let elf_count = Array.make n_apis 0 in
  Array.iter
    (fun (p : Store.pkg_row) ->
      Api.Set.iter
        (fun a -> elf_count.(Api.Tbl.find api_ids a) <- elf_count.(Api.Tbl.find api_ids a) + 1)
        p.Store.pr_apis_elf)
    store.Store.packages;
  (* Phased survival products: the same multiply, restricted to the
     packages whose phase-P requirement set has the API. Requirer
     lists are built by prepending over ascending package order —
     descending indexes, the exact shape (and so the exact float fold
     order) of the store's dependents lists behind [survival]. *)
  let phased_survival pick =
    let reqrs : int list array = Array.make n_apis [] in
    Array.iteri
      (fun i (p : Store.pkg_row) ->
        Api.Set.iter
          (fun a ->
            let id = Api.Tbl.find api_ids a in
            reqrs.(id) <- i :: reqrs.(id))
          (pick p))
      store.Store.packages;
    Array.map
      (List.fold_left (fun acc i -> acc *. (1.0 -. probs.(i))) 1.0)
      reqrs
  in
  let survival_init = phased_survival (fun p -> p.Store.pr_init) in
  let survival_serving = phased_survival (fun p -> p.Store.pr_serving) in
  (* Resolvable dependency edges and the SCC condensation — shared by
     every phase: temporal attribution changes which APIs a package
     requires, never which packages it depends on. *)
  let succ =
    Array.map
      (fun (p : Store.pkg_row) ->
        p.Store.pr_deps
        |> List.filter_map (Hashtbl.find_opt store.Store.pkg_index)
        |> Array.of_list)
      store.Store.packages
  in
  let comp, n_comps = tarjan n succ in
  let members = Array.make n_comps [] in
  for i = n - 1 downto 0 do
    members.(comp.(i)) <- i :: members.(comp.(i))
  done;
  let sys_nr =
    Array.map (function Api.Syscall nr -> nr | _ -> -1) apis
  in
  let max_nr = Array.fold_left (fun acc nr -> max acc nr) (-1) sys_nr in
  (* Collapse equal closures into classes: the per-query subset tests
     then run once per distinct closure instead of once per SCC. *)
  let dedup (bitsets : Bitset.t array) =
    let seen = Hashtbl.create 256 in
    let distinct = ref [] in
    let n_distinct = ref 0 in
    let class_of =
      Array.map
        (fun bits ->
          let k = Bitset.key bits in
          match Hashtbl.find_opt seen k with
          | Some c -> c
          | None ->
            let c = !n_distinct in
            incr n_distinct;
            Hashtbl.add seen k c;
            distinct := bits :: !distinct;
            c)
        bitsets
    in
    (Array.of_list (List.rev !distinct), class_of)
  in
  (* Flatten class rows and fold their intersection (the universal
     core). With zero classes the core is all-zero, which gates
     nothing — the eval loop then finds no passing class on its own. *)
  let flatten (classes : Bitset.t array) =
    let nc = Array.length classes in
    let nw = if nc = 0 then 0 else Array.length (Bitset.words classes.(0)) in
    let flat = Array.make (max 1 (nc * nw)) 0 in
    Array.iteri
      (fun c b -> Array.blit (Bitset.words b) 0 flat (c * nw) nw)
      classes;
    let common =
      if nc = 0 then Array.make (max 1 nw) 0
      else Array.copy (Bitset.words classes.(0))
    in
    Array.iter
      (fun b ->
        let w = Bitset.words b in
        for i = 0 to nw - 1 do
          common.(i) <- common.(i) land w.(i)
        done)
      classes;
    (nc, nw, flat, common)
  in
  (* One (API-universe, syscall-universe) class-index pair per phase.
     Direct requirement bitsets come from [pick], fanned out by
     package range (each package's bits are independent of every
     other's); closures, dedup and flattening run on them exactly as
     the unphased build always has — the [All] pair reads [pr_apis]
     through the same code path, so its arrays are bit-identical to
     the pre-phase index. *)
  let build_pair pick =
    let req = Array.make n (Bitset.create 0) in
    Parmap.map ?domains
      (fun (lo, hi) ->
        let rows = Array.make (hi - lo) (Bitset.create 0) in
        for i = lo to hi - 1 do
          let bits = Bitset.create n_apis in
          Api.Set.iter
            (fun a -> Bitset.add bits (Api.Tbl.find api_ids a))
            (pick store.Store.packages.(i));
          rows.(i - lo) <- bits
        done;
        (lo, rows))
      (ranges n)
    |> List.iter (fun (lo, rows) -> Array.blit rows 0 req lo (Array.length rows));
    (* Closure per component, successors first (their ids are smaller):
       a word-wise union of the members' direct bits and the successor
       components' already-final closures. *)
    let comp_req = Array.make n_comps (Bitset.create 0) in
    for c = 0 to n_comps - 1 do
      let bits = Bitset.create n_apis in
      List.iter
        (fun i ->
          Bitset.union_into ~into:bits req.(i);
          Array.iter
            (fun j ->
              if comp.(j) <> c then
                Bitset.union_into ~into:bits comp_req.(comp.(j)))
            succ.(i))
        members.(c);
      comp_req.(c) <- bits
    done;
    (* Syscall-specialized copies over the number universe. *)
    let comp_sys =
      Array.map
        (fun bits ->
          let nrs = Bitset.create (max_nr + 1) in
          Bitset.iter
            (fun id -> if sys_nr.(id) >= 0 then Bitset.add nrs sys_nr.(id))
            bits;
          nrs)
        comp_req
    in
    let class_req, req_class_of_comp = dedup comp_req in
    let class_sys, sys_class_of_comp = dedup comp_sys in
    let mk classes class_of_comp =
      let nc, nw, flat, common = flatten classes in
      {
        ci_nc = nc;
        ci_nw = nw;
        ci_flat = flat;
        ci_common = common;
        ci_pkg_class = Array.init n (fun i -> class_of_comp.(comp.(i)));
      }
    in
    (mk class_req req_class_of_comp, mk class_sys sys_class_of_comp)
  in
  let req_all, sys_all = build_pair (fun p -> p.Store.pr_apis) in
  let req_init, sys_init = build_pair (fun p -> p.Store.pr_init) in
  let req_serving, sys_serving = build_pair (fun p -> p.Store.pr_serving) in
  let den = Array.fold_left (fun a p -> a +. p) 0.0 probs in
  (* Section 3 ranking, with the oracle's comparator over
     index-derived values (both bit-identical to the oracle's). *)
  let importance_of_nr nr =
    match Api.Tbl.find_opt api_ids (Api.Syscall nr) with
    | Some id -> 1.0 -. survival.(id)
    | None -> 0.0
  in
  let unweighted_elf_of_nr nr =
    let k =
      match Api.Tbl.find_opt api_ids (Api.Syscall nr) with
      | Some id -> elf_count.(id)
      | None -> 0
    in
    float_of_int k /. float_of_int n
  in
  let ranking =
    Array.to_list Syscall_table.all
    |> List.map (fun (e : Syscall_table.entry) ->
           ( e.Syscall_table.nr,
             e.Syscall_table.name,
             importance_of_nr e.Syscall_table.nr,
             unweighted_elf_of_nr e.Syscall_table.nr ))
    |> List.sort (fun (na, _, ia, ua) (nb, _, ib, ub) ->
           match compare ib ia with
           | 0 -> (match compare ub ua with 0 -> compare na nb | c -> c)
           | c -> c)
    |> List.map (fun (nr, name, imp, uelf) ->
           {
             rk_nr = nr;
             rk_name = name;
             rk_importance = imp;
             rk_unweighted_elf = uelf;
           })
    |> Array.of_list
  in
  {
    store;
    n;
    probs;
    names;
    api_ids;
    apis;
    survival;
    survival_init;
    survival_serving;
    dep_count;
    elf_count;
    n_comps;
    req = req_all;
    sys = sys_all;
    req_init;
    sys_init;
    req_serving;
    sys_serving;
    max_nr;
    ranking;
    den;
  }

(* ------------------------------------------------------------------ *)
(* Point queries                                                       *)
(* ------------------------------------------------------------------ *)

let store t = t.store
let n_packages t = t.n
let n_apis t = Array.length t.apis
let n_components t = t.n_comps

let survival_array t = function
  | All -> t.survival
  | Init -> t.survival_init
  | Serving -> t.survival_serving

let survival ?(phase = All) t api =
  match Api.Tbl.find_opt t.api_ids api with
  | Some id -> (survival_array t phase).(id)
  | None -> 1.0

let importance ?phase t api = 1.0 -. survival ?phase t api

let unweighted t api =
  let k =
    match Api.Tbl.find_opt t.api_ids api with
    | Some id -> t.dep_count.(id)
    | None -> 0
  in
  float_of_int k /. float_of_int t.n

let unweighted_elf t api =
  let k =
    match Api.Tbl.find_opt t.api_ids api with
    | Some id -> t.elf_count.(id)
    | None -> 0
  in
  float_of_int k /. float_of_int t.n

let ranking t = Array.to_list t.ranking |> List.map (fun r -> r.rk_nr)

let top_n t n =
  let len = min (max n 0) (Array.length t.ranking) in
  List.init len (fun i -> t.ranking.(i))

let dependents_ranked ?limit t api =
  Stage.incr "query:dependents";
  let rows =
    Store.dependents t.store api
    |> List.map (fun i -> (t.names.(i), t.probs.(i)))
    |> List.sort (fun (na, pa) (nb, pb) ->
           match compare pb pa with 0 -> compare na nb | c -> c)
  in
  match limit with
  | None -> rows
  | Some k -> List.filteri (fun i _ -> i < k) rows

(* ------------------------------------------------------------------ *)
(* Completeness over arbitrary subsets                                 *)
(* ------------------------------------------------------------------ *)

type scope = Syscalls_only | All_apis

let scoped scope supported api =
  match scope with
  | All_apis -> supported api
  | Syscalls_only ->
    (match api with Api.Syscall _ -> supported api | _ -> true)

(* Fused [a ⊆ b] over raw word arrays: same loop as [Bitset.subset]
   but without the cross-module call. Equal universes guarantee equal
   lengths. *)
let subset_words (a : int array) (b : int array) =
  let n = Array.length a in
  let i = ref 0 in
  while !i < n && a.(!i) land lnot b.(!i) = 0 do
    incr i
  done;
  !i = n

(* One subset test per distinct closure class against the query's
   support words, gated by the universal core: every class contains
   [common], so a query missing any core bit satisfies no class and
   the numerator is provably 0.0 — the caller can return 0.0 without
   touching the class rows or the package sweep (bit-exact:
   [0.0 /. den] is [0.0] for every positive [den], as is the
   [den = 0.0] guard). Past the gate, the rows are walked in one flat
   array; the [unsafe_get]s are in bounds by construction ([flat] has
   [nc * nw] words, [supw] has [nw]). Every call allocates its own
   flags, so evaluation is safe from any number of domains against one
   shared index. *)
let classes_ok ci (supw : int array) =
  if not (subset_words ci.ci_common supw) then None
  else begin
    let nc = ci.ci_nc and nw = ci.ci_nw and flat = ci.ci_flat in
    let ok = Array.make (max 1 nc) false in
    let any = ref false in
    for c = 0 to nc - 1 do
      let base = c * nw in
      let i = ref 0 in
      while
        !i < nw
        && Array.unsafe_get flat (base + !i)
           land lnot (Array.unsafe_get supw !i)
           = 0
      do
        incr i
      done;
      if !i = nw then begin
        ok.(c) <- true;
        any := true
      end
    done;
    if !any then Some ok else None
  end

(* The probability sweep in store order — the oracle's exact numerator
   fold (ascending package index over the full row array). *)
let sweep t (ok : bool array) ci =
  let pkg_class = ci.ci_pkg_class in
  let num = ref 0.0 in
  for i = 0 to t.n - 1 do
    if ok.(pkg_class.(i)) then num := !num +. t.probs.(i)
  done;
  if t.den = 0.0 then 0.0 else !num /. t.den

let eval_pred ?(scope = All_apis) ?(phase = All) t ~supported =
  Stage.incr "query:eval";
  let ci = req_of t phase in
  let n_apis = Array.length t.apis in
  let good = Bitset.create n_apis in
  for id = 0 to n_apis - 1 do
    if scoped scope supported t.apis.(id) then Bitset.add good id
  done;
  match classes_ok ci (Bitset.words good) with
  | None -> 0.0
  | Some ok -> sweep t ok ci

let eval_syscalls ?(phase = All) t nrs =
  Stage.incr "query:eval";
  let ci = sys_of t phase in
  let sup = Bitset.create (t.max_nr + 1) in
  List.iter (fun nr -> if nr >= 0 && nr <= t.max_nr then Bitset.add sup nr) nrs;
  match classes_ok ci (Bitset.words sup) with
  | None -> 0.0
  | Some ok -> sweep t ok ci

let eval_subsets ?domains ?phase t subsets =
  Stage.time "query:eval-subsets" @@ fun () ->
  Parmap.map ?domains (eval_syscalls ?phase t) subsets

(* ------------------------------------------------------------------ *)
(* Sharded evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* Package-range shards: the component subset tests run once, then the
   probability sweep fans out over contiguous ranges and the partial
   sums merge in range order. The per-shard folds regroup the float
   additions, so the result is within accumulation noise (<= 1e-12 in
   the test suite) of the unsharded sweep, not bit-identical — use
   {!eval_syscalls} when exactness matters more than the fan-out. *)
let shard_ranges n shards =
  let shards = max 1 (min shards (max 1 n)) in
  let step = (n + shards - 1) / shards in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + step) ((lo, min n (lo + step)) :: acc)
  in
  go 0 []

let eval_syscalls_sharded ?domains ?(shards = 4) ?(phase = All) t nrs =
  Stage.incr "query:eval-sharded";
  let ci = sys_of t phase in
  let sup = Bitset.create (t.max_nr + 1) in
  List.iter (fun nr -> if nr >= 0 && nr <= t.max_nr then Bitset.add sup nr) nrs;
  match classes_ok ci (Bitset.words sup) with
  | None -> 0.0
  | Some ok ->
    let pkg_class = ci.ci_pkg_class in
    let partials =
      Parmap.map ?domains
        (fun (lo, hi) ->
          let num = ref 0.0 in
          for i = lo to hi - 1 do
            if ok.(pkg_class.(i)) then num := !num +. t.probs.(i)
          done;
          !num)
        (shard_ranges t.n shards)
    in
    let num = List.fold_left ( +. ) 0.0 partials in
    if t.den = 0.0 then 0.0 else num /. t.den

(* ------------------------------------------------------------------ *)
(* API naming (serve protocol / CLI)                                   *)
(* ------------------------------------------------------------------ *)

let api_to_string = function
  | Api.Syscall nr ->
    if Syscall_table.is_valid_nr nr then
      "syscall:" ^ Syscall_table.name_of_nr nr
    else "syscall:" ^ string_of_int nr
  | Api.Vop (Api.Ioctl, code) -> Printf.sprintf "ioctl:%d" code
  | Api.Vop (Api.Fcntl, code) -> Printf.sprintf "fcntl:%d" code
  | Api.Vop (Api.Prctl, code) -> Printf.sprintf "prctl:%d" code
  | Api.Pseudo_file path -> "pseudo:" ^ path
  | Api.Libc_sym name -> "libc:" ^ name

let parse_syscall s =
  match int_of_string_opt s with
  | Some nr -> Ok (Api.Syscall nr)
  | None ->
    (match Syscall_table.nr_of_name s with
     | Some nr -> Ok (Api.Syscall nr)
     | None -> Error (Printf.sprintf "unknown system call %S" s))

let api_of_string s =
  match String.index_opt s ':' with
  | None -> parse_syscall s
  | Some i ->
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let vop v =
      match int_of_string_opt rest with
      | Some code -> Ok (Api.Vop (v, code))
      | None -> Error (Printf.sprintf "%s code must be an integer: %S" kind rest)
    in
    (match kind with
     | "syscall" -> parse_syscall rest
     | "ioctl" -> vop Api.Ioctl
     | "fcntl" -> vop Api.Fcntl
     | "prctl" -> vop Api.Prctl
     | "pseudo" -> Ok (Api.Pseudo_file rest)
     | "libc" -> Ok (Api.Libc_sym rest)
     | _ -> Error (Printf.sprintf "unknown api kind %S" kind))
