(** Indexed compatibility query engine: precomputed structures over an
    immutable {!Store.t} that answer the paper's two headline
    questions — API importance (Appendix A.1) and weighted
    completeness of an arbitrary API subset (Appendix A.2) — without
    touching the analysis pipeline again.

    Three precomputations carry every query:

    - {b survival products}. For each API, the product
      [prod (1 - p_pkg)] over its dependent packages, folded in the
      store's dependents order — the exact arithmetic of
      {!Lapis_metrics.Importance.importance} — so importance is an
      O(1) lookup that is bit-identical to the closed-form oracle.

    - {b packed closure bitsets}. Completeness propagates support
      through dependencies to a fixed point; that fixpoint equals
      "every package in my transitive dependency closure is directly
      supported". We condense the dependency graph into strongly
      connected components (iterative Tarjan, emitted in reverse
      topological order) and give every component a {!Bitset} over the
      dense API universe holding every API required anywhere in its
      closure. An arbitrary subset query then costs one word-wise
      subset test per component — a handful of machine words instead
      of an element-wise scan — plus one gated sweep over the package
      probability array in store order. A syscall-specialized copy of
      the bitsets (over the syscall-number universe) backs the hot
      [eval_syscalls] path.

    - {b the Section 3 ranking}, computed once with the oracle's own
      comparator over index-derived values.

    Every structure above also exists {b per phase}: the temporal
    attribution of {!Lapis_analysis.Phase} gives each package an
    init-phase and a serving-phase requirement set, and the index
    carries packed closure classes (with their own universal cores)
    and survival products for both. A query with [phase = All] walks
    the exact arrays an unphased build would have produced, so
    existing results are bit-identical; [Init]/[Serving] swap in the
    phased classes and nothing else.

    The weighted sums replicate the oracle's accumulation order
    (ascending package index, total weight folded over the full row
    array), so results are equal to the closed-form implementations
    bit for bit, not merely within tolerance — the test suite asserts
    [<= 1e-12] but the design target is exact. Sharded evaluation
    ({!eval_syscalls_sharded}) merges per-range partial sums and is
    the one deliberate exception: float addition is not associative,
    so it is held to the 1e-12 tolerance instead.

    Index construction fans out over {!Lapis_perf.Parmap} — survival
    products by API range, direct requirement bitsets by package
    range — and merges deterministically: every per-element fold runs
    whole on one domain in the oracle's order, so the built index is
    bit-identical to a sequential build. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Snapshot = Lapis_store.Snapshot
module Wire = Lapis_store.Snapshot.Wire
module Footprint = Lapis_analysis.Footprint
module Stage = Lapis_perf.Stage
module Bitset = Lapis_perf.Bitset
module Parmap = Lapis_perf.Parmap

type ranked = {
  rk_nr : int;
  rk_name : string;
  rk_importance : float;
  rk_unweighted_elf : float;
}

type phase = Init | Serving | All

(* Distinct closure classes: SCCs whose closures are equal share one
   class, so a query runs one subset test per *distinct* closure
   (typically fewer than packages), then one gated sweep. Class rows
   live unwrapped in one flat row-major word array (row [c] at
   [c * nw]) so the hot loop walks contiguous memory, and [ci_common]
   holds the intersection of every class — the universal core: a
   query that misses any core bit can satisfy no class at all, so
   one word-wise test against the core answers most subsets without
   touching the class rows. One such index exists per (phase,
   universe) pair: the full API universe and the syscall-number
   specialization, for each of All/Init/Serving. *)
type class_index = {
  ci_nc : int;  (* distinct closure classes *)
  ci_nw : int;  (* words per class row *)
  ci_flat : Bitset.words;  (* ci_nc * ci_nw, row-major *)
  ci_common : int array;  (* ci_nw words: bits required everywhere *)
  ci_pkg_class : Bitset.words;  (* pkg slice index -> class row *)
}

(* A binary's resolved footprint split by phase — the per-binary data
   the seccomp generator consumes, carried by the index so a format-4
   image can serve [lapis seccomp] without the row snapshot. *)
type bin_sets = {
  bs_digest : Digest.t;
  bs_all : Api.Set.t;
  bs_init : Api.Set.t;
  bs_serving : Api.Set.t;
}

(* The index owns everything it answers from — no [Store.t] reference
   survives construction. Dependent-package lists are flattened into a
   CSR pair ([deps_off]/[deps_dat]); per-binary footprints are kept as
   a lazily decoded array (the bins section of an image is varint-
   encoded, and the server never asks for it). Numeric planes sit
   behind {!Bitset.words}/{!Bitset.floats} so a mapped image and a
   fresh build run the same hot loops. *)
type t = {
  n : int;  (* packages in the whole world, sliced or not *)
  slice_lo : int;  (* per-package planes cover [slice_lo, slice_hi) *)
  slice_hi : int;
  mapped : bool;  (* true when backed by a mapped format-4 image *)
  meta_seed : int;
  meta_source_key : string;
  total_installs : int;
  n_bins : int;
  probs : Bitset.floats;  (* pkg slice index -> install probability *)
  names : string array;  (* pkg slice index -> name *)
  api_ids : int Api.Tbl.t;  (* interning: api -> dense id *)
  apis : Api.t array;  (* id -> api *)
  survival : Bitset.floats;  (* id -> prod(1 - p) over dependents *)
  survival_init : Bitset.floats;  (* same, over init-phase requirers *)
  survival_serving : Bitset.floats;
  dep_count : Bitset.words;  (* id -> number of dependent packages *)
  elf_count : Bitset.words;  (* id -> packages using it from own ELFs *)
  deps_off : Bitset.words;  (* id -> offset into deps_dat; n_apis+1 *)
  deps_dat : Bitset.words;  (* dependent pkg ids, store list order *)
  n_comps : int;  (* SCCs of the dependency graph *)
  req : class_index;  (* API universe, whole footprints *)
  sys : class_index;  (* syscall-nr universe, whole footprints *)
  req_init : class_index;
  sys_init : class_index;
  req_serving : class_index;
  sys_serving : class_index;
  max_nr : int;  (* largest syscall nr required by any package *)
  ranking : ranked array;  (* Section 3 order, most important first *)
  den : float;  (* total popcon weight, oracle fold order *)
  bins : (bin_sets array, Snapshot.error) result Lazy.t;
}

let req_of t = function
  | All -> t.req
  | Init -> t.req_init
  | Serving -> t.req_serving

let sys_of t = function
  | All -> t.sys
  | Init -> t.sys_init
  | Serving -> t.sys_serving

let phase_to_string = function
  | Init -> "init"
  | Serving -> "serving"
  | All -> "all"

let phase_of_string = function
  | "init" -> Ok Init
  | "serving" -> Ok Serving
  | "all" | "" -> Ok All
  | s -> Error (Printf.sprintf "unknown phase %S (init|serving|all)" s)

(* ------------------------------------------------------------------ *)
(* Index construction                                                  *)
(* ------------------------------------------------------------------ *)

(* Iterative Tarjan SCC over [succ]. Returns [comp] (node -> component
   id) and the component count; components are numbered in emission
   order, which for Tarjan is reverse topological: every component
   reachable from component [c] has an id [< c]. *)
let tarjan n (succ : int array array) =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let comp = Array.make n (-1) in
  let n_comps = ref 0 in
  let counter = ref 0 in
  let frames = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      index.(root) <- !counter;
      low.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      Stack.push (root, ref 0) frames;
      while not (Stack.is_empty frames) do
        let v, next_edge = Stack.top frames in
        if !next_edge < Array.length succ.(v) then begin
          let w = succ.(v).(!next_edge) in
          incr next_edge;
          if index.(w) < 0 then begin
            index.(w) <- !counter;
            low.(w) <- !counter;
            incr counter;
            stack := w :: !stack;
            on_stack.(w) <- true;
            Stack.push (w, ref 0) frames
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          (match Stack.top_opt frames with
           | Some (u, _) -> low.(u) <- min low.(u) low.(v)
           | None -> ());
          if low.(v) = index.(v) then begin
            let cid = !n_comps in
            incr n_comps;
            let finished = ref false in
            while not !finished do
              match !stack with
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp.(w) <- cid;
                if w = v then finished := true
              | [] -> assert false
            done
          end
        end
      done
    end
  done;
  (comp, !n_comps)

(* [lo, hi) index ranges for the Parmap fan-outs below: coarse enough
   that per-range overhead is negligible, fine enough to balance. *)
let ranges n =
  let step = max 256 (n / 64) in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + step) ((lo, min n (lo + step)) :: acc)
  in
  go 0 []

(* Section 3 ranking with the oracle's comparator over index-derived
   values. Shared by the builder and the image loader — both feed it
   the same survival/elf-count planes, so a loaded image reproduces
   the built ranking bit for bit. *)
let build_ranking ~n ~api_ids ~(survival : Bitset.floats)
    ~(elf_count : Bitset.words) =
  let importance_of_nr nr =
    match Api.Tbl.find_opt api_ids (Api.Syscall nr) with
    | Some id -> 1.0 -. Bitset.floats_get survival id
    | None -> 0.0
  in
  let unweighted_elf_of_nr nr =
    let k =
      match Api.Tbl.find_opt api_ids (Api.Syscall nr) with
      | Some id -> Bitset.words_get elf_count id
      | None -> 0
    in
    float_of_int k /. float_of_int n
  in
  Array.to_list Syscall_table.all
  |> List.map (fun (e : Syscall_table.entry) ->
         ( e.Syscall_table.nr,
           e.Syscall_table.name,
           importance_of_nr e.Syscall_table.nr,
           unweighted_elf_of_nr e.Syscall_table.nr ))
  |> List.sort (fun (na, _, ia, ua) (nb, _, ib, ub) ->
         match compare ib ia with
         | 0 -> (match compare ub ua with 0 -> compare na nb | c -> c)
         | c -> c)
  |> List.map (fun (nr, name, imp, uelf) ->
         {
           rk_nr = nr;
           rk_name = name;
           rk_importance = imp;
           rk_unweighted_elf = uelf;
         })
  |> Array.of_list

let index ?domains (store : Store.t) : t =
  Stage.time "query:index-build" @@ fun () ->
  let n = store.Store.n_packages in
  let probs = Array.map (fun p -> p.Store.pr_prob) store.Store.packages in
  let names = Array.map (fun p -> p.Store.pr_name) store.Store.packages in
  (* Intern every API reachable from any package footprint. Sequential:
     first-seen order defines the dense ids everything below shares. *)
  let api_ids = Api.Tbl.create 4096 in
  let rev_apis = ref [] in
  let n_apis = ref 0 in
  let intern api =
    match Api.Tbl.find_opt api_ids api with
    | Some id -> id
    | None ->
      let id = !n_apis in
      incr n_apis;
      Api.Tbl.add api_ids api id;
      rev_apis := api :: !rev_apis;
      id
  in
  Array.iter
    (fun (p : Store.pkg_row) ->
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_apis;
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_apis_elf;
      (* Phased sets are subsets of [pr_apis] on pipeline-built stores,
         so these add no ids there (the dense universe — and with it
         every unphased structure — is unchanged); hand-built stores
         may violate the subset invariant and still get interned. *)
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_init;
      Api.Set.iter (fun a -> ignore (intern a)) p.Store.pr_serving)
    store.Store.packages;
  let apis = Array.of_list (List.rev !rev_apis) in
  let n_apis = !n_apis in
  (* Survival products, folded in the store's dependents order — the
     same multiply sequence as the Importance oracle. Fanned out by
     API range; each API's product runs whole on one domain, so the
     merge (a blit per range) is bit-identical to a sequential build. *)
  let survival = Array.make n_apis 1.0 in
  let dep_count = Array.make n_apis 0 in
  Parmap.map ?domains
    (fun (lo, hi) ->
      let s = Array.make (hi - lo) 1.0 in
      let d = Array.make (hi - lo) 0 in
      for id = lo to hi - 1 do
        let deps = Store.dependents store apis.(id) in
        d.(id - lo) <- List.length deps;
        s.(id - lo) <-
          List.fold_left (fun acc i -> acc *. (1.0 -. probs.(i))) 1.0 deps
      done;
      (lo, s, d))
    (ranges n_apis)
  |> List.iter (fun (lo, s, d) ->
         Array.blit s 0 survival lo (Array.length s);
         Array.blit d 0 dep_count lo (Array.length d));
  let elf_count = Array.make n_apis 0 in
  Array.iter
    (fun (p : Store.pkg_row) ->
      Api.Set.iter
        (fun a -> elf_count.(Api.Tbl.find api_ids a) <- elf_count.(Api.Tbl.find api_ids a) + 1)
        p.Store.pr_apis_elf)
    store.Store.packages;
  (* Phased survival products: the same multiply, restricted to the
     packages whose phase-P requirement set has the API. Requirer
     lists are built by prepending over ascending package order —
     descending indexes, the exact shape (and so the exact float fold
     order) of the store's dependents lists behind [survival]. *)
  let phased_survival pick =
    let reqrs : int list array = Array.make n_apis [] in
    Array.iteri
      (fun i (p : Store.pkg_row) ->
        Api.Set.iter
          (fun a ->
            let id = Api.Tbl.find api_ids a in
            reqrs.(id) <- i :: reqrs.(id))
          (pick p))
      store.Store.packages;
    Array.map
      (List.fold_left (fun acc i -> acc *. (1.0 -. probs.(i))) 1.0)
      reqrs
  in
  let survival_init = phased_survival (fun p -> p.Store.pr_init) in
  let survival_serving = phased_survival (fun p -> p.Store.pr_serving) in
  (* Resolvable dependency edges and the SCC condensation — shared by
     every phase: temporal attribution changes which APIs a package
     requires, never which packages it depends on. *)
  let succ =
    Array.map
      (fun (p : Store.pkg_row) ->
        p.Store.pr_deps
        |> List.filter_map (Hashtbl.find_opt store.Store.pkg_index)
        |> Array.of_list)
      store.Store.packages
  in
  let comp, n_comps = tarjan n succ in
  let members = Array.make n_comps [] in
  for i = n - 1 downto 0 do
    members.(comp.(i)) <- i :: members.(comp.(i))
  done;
  let sys_nr =
    Array.map (function Api.Syscall nr -> nr | _ -> -1) apis
  in
  let max_nr = Array.fold_left (fun acc nr -> max acc nr) (-1) sys_nr in
  (* Collapse equal closures into classes: the per-query subset tests
     then run once per distinct closure instead of once per SCC. *)
  let dedup (bitsets : Bitset.t array) =
    let seen = Hashtbl.create 256 in
    let distinct = ref [] in
    let n_distinct = ref 0 in
    let class_of =
      Array.map
        (fun bits ->
          let k = Bitset.key bits in
          match Hashtbl.find_opt seen k with
          | Some c -> c
          | None ->
            let c = !n_distinct in
            incr n_distinct;
            Hashtbl.add seen k c;
            distinct := bits :: !distinct;
            c)
        bitsets
    in
    (Array.of_list (List.rev !distinct), class_of)
  in
  (* Flatten class rows and fold their intersection (the universal
     core). With zero classes the core is all-zero, which gates
     nothing — the eval loop then finds no passing class on its own. *)
  let flatten (classes : Bitset.t array) =
    let nc = Array.length classes in
    let nw = if nc = 0 then 0 else Array.length (Bitset.words classes.(0)) in
    let flat = Array.make (max 1 (nc * nw)) 0 in
    Array.iteri
      (fun c b -> Array.blit (Bitset.words b) 0 flat (c * nw) nw)
      classes;
    let common =
      if nc = 0 then Array.make (max 1 nw) 0
      else Array.copy (Bitset.words classes.(0))
    in
    Array.iter
      (fun b ->
        let w = Bitset.words b in
        for i = 0 to nw - 1 do
          common.(i) <- common.(i) land w.(i)
        done)
      classes;
    (nc, nw, flat, common)
  in
  (* One (API-universe, syscall-universe) class-index pair per phase.
     Direct requirement bitsets come from [pick], fanned out by
     package range (each package's bits are independent of every
     other's); closures, dedup and flattening run on them exactly as
     the unphased build always has — the [All] pair reads [pr_apis]
     through the same code path, so its arrays are bit-identical to
     the pre-phase index. *)
  let build_pair pick =
    let req = Array.make n (Bitset.create 0) in
    Parmap.map ?domains
      (fun (lo, hi) ->
        let rows = Array.make (hi - lo) (Bitset.create 0) in
        for i = lo to hi - 1 do
          let bits = Bitset.create n_apis in
          Api.Set.iter
            (fun a -> Bitset.add bits (Api.Tbl.find api_ids a))
            (pick store.Store.packages.(i));
          rows.(i - lo) <- bits
        done;
        (lo, rows))
      (ranges n)
    |> List.iter (fun (lo, rows) -> Array.blit rows 0 req lo (Array.length rows));
    (* Closure per component, successors first (their ids are smaller):
       a word-wise union of the members' direct bits and the successor
       components' already-final closures. *)
    let comp_req = Array.make n_comps (Bitset.create 0) in
    for c = 0 to n_comps - 1 do
      let bits = Bitset.create n_apis in
      List.iter
        (fun i ->
          Bitset.union_into ~into:bits req.(i);
          Array.iter
            (fun j ->
              if comp.(j) <> c then
                Bitset.union_into ~into:bits comp_req.(comp.(j)))
            succ.(i))
        members.(c);
      comp_req.(c) <- bits
    done;
    (* Syscall-specialized copies over the number universe. *)
    let comp_sys =
      Array.map
        (fun bits ->
          let nrs = Bitset.create (max_nr + 1) in
          Bitset.iter
            (fun id -> if sys_nr.(id) >= 0 then Bitset.add nrs sys_nr.(id))
            bits;
          nrs)
        comp_req
    in
    let class_req, req_class_of_comp = dedup comp_req in
    let class_sys, sys_class_of_comp = dedup comp_sys in
    let mk classes class_of_comp =
      let nc, nw, flat, common = flatten classes in
      {
        ci_nc = nc;
        ci_nw = nw;
        ci_flat = Bitset.Words_heap flat;
        ci_common = common;
        ci_pkg_class =
          Bitset.Words_heap (Array.init n (fun i -> class_of_comp.(comp.(i))));
      }
    in
    (mk class_req req_class_of_comp, mk class_sys sys_class_of_comp)
  in
  let req_all, sys_all = build_pair (fun p -> p.Store.pr_apis) in
  let req_init, sys_init = build_pair (fun p -> p.Store.pr_init) in
  let req_serving, sys_serving = build_pair (fun p -> p.Store.pr_serving) in
  let den = Array.fold_left (fun a p -> a +. p) 0.0 probs in
  (* Flatten the dependents lists into CSR form, preserving the
     store's list order exactly (it defines the survival fold order
     and the [dependents_ranked] pre-sort input). *)
  let deps_off = Array.make (n_apis + 1) 0 in
  for id = 0 to n_apis - 1 do
    deps_off.(id + 1) <- deps_off.(id) + dep_count.(id)
  done;
  let deps_dat = Array.make deps_off.(n_apis) 0 in
  for id = 0 to n_apis - 1 do
    let k = ref deps_off.(id) in
    List.iter
      (fun i ->
        deps_dat.(!k) <- i;
        incr k)
      (Store.dependents store apis.(id))
  done;
  let bin_rows =
    store.Store.bins
    |> List.map (fun (b : Store.bin_row) ->
           {
             bs_digest = b.Store.br_digest;
             bs_all = b.Store.br_resolved.Footprint.apis;
             bs_init = b.Store.br_init;
             bs_serving = b.Store.br_serving;
           })
    |> Array.of_list
  in
  let survival = Bitset.Floats_heap survival in
  let elf_count = Bitset.Words_heap elf_count in
  let ranking = build_ranking ~n ~api_ids ~survival ~elf_count in
  {
    n;
    slice_lo = 0;
    slice_hi = n;
    mapped = false;
    meta_seed = 0;
    meta_source_key = "";
    total_installs = store.Store.total_installs;
    n_bins = Array.length bin_rows;
    probs = Bitset.Floats_heap probs;
    names;
    api_ids;
    apis;
    survival;
    survival_init = Bitset.Floats_heap survival_init;
    survival_serving = Bitset.Floats_heap survival_serving;
    dep_count = Bitset.Words_heap dep_count;
    elf_count;
    deps_off = Bitset.Words_heap deps_off;
    deps_dat = Bitset.Words_heap deps_dat;
    n_comps;
    req = req_all;
    sys = sys_all;
    req_init;
    sys_init;
    req_serving;
    sys_serving;
    max_nr;
    ranking;
    den;
    bins = Lazy.from_val (Ok bin_rows);
  }

(* ------------------------------------------------------------------ *)
(* Point queries                                                       *)
(* ------------------------------------------------------------------ *)

let n_packages t = t.n
let n_apis t = Array.length t.apis
let n_components t = t.n_comps
let n_binaries t = t.n_bins
let total_installs t = t.total_installs
let is_mapped t = t.mapped
let slice_lo t = t.slice_lo
let slice_hi t = t.slice_hi
let is_sliced t = t.slice_lo > 0 || t.slice_hi < t.n
let image_seed t = t.meta_seed
let image_source_key t = t.meta_source_key

let bins t = Lazy.force t.bins

let find_bin t digest =
  match Lazy.force t.bins with
  | Error e -> Error e
  | Ok rows ->
    Ok (Array.find_opt (fun b -> String.equal b.bs_digest digest) rows)

let survival_array t = function
  | All -> t.survival
  | Init -> t.survival_init
  | Serving -> t.survival_serving

let survival ?(phase = All) t api =
  match Api.Tbl.find_opt t.api_ids api with
  | Some id -> Bitset.floats_get (survival_array t phase) id
  | None -> 1.0

let importance ?phase t api = 1.0 -. survival ?phase t api

let unweighted t api =
  let k =
    match Api.Tbl.find_opt t.api_ids api with
    | Some id -> Bitset.words_get t.dep_count id
    | None -> 0
  in
  float_of_int k /. float_of_int t.n

let unweighted_elf t api =
  let k =
    match Api.Tbl.find_opt t.api_ids api with
    | Some id -> Bitset.words_get t.elf_count id
    | None -> 0
  in
  float_of_int k /. float_of_int t.n

let ranking t = Array.to_list t.ranking |> List.map (fun r -> r.rk_nr)

let top_n t n =
  let len = min (max n 0) (Array.length t.ranking) in
  List.init len (fun i -> t.ranking.(i))

let dependents_ranked ?limit t api =
  Stage.incr "query:dependents";
  let ids =
    match Api.Tbl.find_opt t.api_ids api with
    | None -> []
    | Some id ->
      let lo = Bitset.words_get t.deps_off id in
      let hi = Bitset.words_get t.deps_off (id + 1) in
      List.init (hi - lo) (fun k -> Bitset.words_get t.deps_dat (lo + k))
  in
  (* A slice's deps data only holds ids inside [slice_lo, slice_hi),
     so on a full index the subtraction is the identity. *)
  let rows =
    ids
    |> List.map (fun i ->
           let k = i - t.slice_lo in
           (t.names.(k), Bitset.floats_get t.probs k))
    |> List.sort (fun (na, pa) (nb, pb) ->
           match compare pb pa with 0 -> compare na nb | c -> c)
  in
  match limit with
  | None -> rows
  | Some k -> List.filteri (fun i _ -> i < k) rows

(* ------------------------------------------------------------------ *)
(* Completeness over arbitrary subsets                                 *)
(* ------------------------------------------------------------------ *)

type scope = Syscalls_only | All_apis

let scoped scope supported api =
  match scope with
  | All_apis -> supported api
  | Syscalls_only ->
    (match api with Api.Syscall _ -> supported api | _ -> true)

(* Universal-core gate: [common] and the query words have equal length
   on every built or validated index; the loop still tolerates a
   length mismatch (a degenerate hand-built index) by treating missing
   query words as zero instead of reading out of bounds. *)
let core_gate (common : int array) (supw : int array) =
  let na = Array.length common and nb = Array.length supw in
  let m = if na < nb then na else nb in
  let i = ref 0 in
  while !i < m && common.(!i) land lnot supw.(!i) = 0 do
    incr i
  done;
  if !i < m then false
  else begin
    let ok = ref true in
    for j = m to na - 1 do
      if common.(j) <> 0 then ok := false
    done;
    !ok
  end

(* One subset test per distinct closure class against the query's
   support words, gated by the universal core: every class contains
   [common], so a query missing any core bit satisfies no class and
   the numerator is provably 0.0 — the caller can return 0.0 without
   touching the class rows or the package sweep (bit-exact:
   [0.0 /. den] is [0.0] for every positive [den], as is the
   [den = 0.0] guard). Past the gate, the rows are walked in one flat
   plane — a heap array on a fresh build, a mapped [Bigarray] slice on
   a loaded image; the backend is matched once per call, so both loops
   run monomorphically. The [unsafe_get]s are in bounds by
   construction and by load-time validation ([flat] has [nc * nw]
   words inside the mapping, [supw] has [nw]). Every call allocates
   its own flags, so evaluation is safe from any number of domains
   against one shared index. *)
let classes_ok ci (supw : int array) =
  if not (core_gate ci.ci_common supw) then None
  else begin
    let nc = ci.ci_nc and nw = ci.ci_nw in
    let ok = Array.make (max 1 nc) false in
    let any = ref false in
    (match ci.ci_flat with
    | Bitset.Words_heap flat ->
      for c = 0 to nc - 1 do
        let base = c * nw in
        let i = ref 0 in
        while
          !i < nw
          && Array.unsafe_get flat (base + !i)
             land lnot (Array.unsafe_get supw !i)
             = 0
        do
          incr i
        done;
        if !i = nw then begin
          ok.(c) <- true;
          any := true
        end
      done
    | Bitset.Words_map { wba; woff; _ } ->
      for c = 0 to nc - 1 do
        let base = woff + (c * nw) in
        let i = ref 0 in
        while
          !i < nw
          && Bigarray.Array1.unsafe_get wba (base + !i)
             land lnot (Array.unsafe_get supw !i)
             = 0
        do
          incr i
        done;
        if !i = nw then begin
          ok.(c) <- true;
          any := true
        end
      done);
    if !any then Some ok else None
  end

(* The probability sweep in store order — the oracle's exact numerator
   fold (ascending package index over the full row array) — over the
   global package range [lo, hi). On a sliced index the per-package
   planes only cover [slice_lo, slice_hi): the request intersects with
   the slice and plane reads shift by [slice_lo], so the surviving
   elements are visited in the same order with the same values as the
   full image — partial sums over in-slice ranges are bit-identical.
   Matched once on the backing pair; the common case is both planes
   heap or both mapped. *)
let sweep_range t (ok : bool array) ci lo hi =
  let lo = max lo t.slice_lo and hi = min hi t.slice_hi in
  let base = t.slice_lo in
  let num = ref 0.0 in
  (match (ci.ci_pkg_class, t.probs) with
  | Bitset.Words_heap pc, Bitset.Floats_heap pr ->
    for i = lo - base to hi - 1 - base do
      if ok.(pc.(i)) then num := !num +. pr.(i)
    done
  | Bitset.Words_map { wba; woff; _ }, Bitset.Floats_map { fba; foff; _ } ->
    for i = lo - base to hi - 1 - base do
      if ok.(Bigarray.Array1.unsafe_get wba (woff + i)) then
        num := !num +. Bigarray.Array1.unsafe_get fba (foff + i)
    done
  | pc, pr ->
    for i = lo - base to hi - 1 - base do
      if ok.(Bitset.words_get pc i) then num := !num +. Bitset.floats_get pr i
    done);
  !num

let sweep t (ok : bool array) ci =
  let num = sweep_range t ok ci 0 t.n in
  if t.den = 0.0 then 0.0 else num /. t.den

let eval_pred ?(scope = All_apis) ?(phase = All) t ~supported =
  Stage.incr "query:eval";
  let ci = req_of t phase in
  let n_apis = Array.length t.apis in
  let good = Bitset.create n_apis in
  for id = 0 to n_apis - 1 do
    if scoped scope supported t.apis.(id) then Bitset.add good id
  done;
  match classes_ok ci (Bitset.words good) with
  | None -> 0.0
  | Some ok -> sweep t ok ci

let eval_syscalls ?(phase = All) t nrs =
  Stage.incr "query:eval";
  let ci = sys_of t phase in
  let sup = Bitset.create (t.max_nr + 1) in
  List.iter (fun nr -> if nr >= 0 && nr <= t.max_nr then Bitset.add sup nr) nrs;
  match classes_ok ci (Bitset.words sup) with
  | None -> 0.0
  | Some ok -> sweep t ok ci

let eval_subsets ?domains ?phase t subsets =
  Stage.time "query:eval-subsets" @@ fun () ->
  Parmap.map ?domains (eval_syscalls ?phase t) subsets

(* ------------------------------------------------------------------ *)
(* Sharded evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* Package-range shards: the component subset tests run once, then the
   probability sweep fans out over contiguous ranges and the partial
   sums merge in range order. The per-shard folds regroup the float
   additions, so the result is within accumulation noise (<= 1e-12 in
   the test suite) of the unsharded sweep, not bit-identical — use
   {!eval_syscalls} when exactness matters more than the fan-out. *)
let shard_ranges n shards =
  let shards = max 1 (min shards (max 1 n)) in
  let step = (n + shards - 1) / shards in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + step) ((lo, min n (lo + step)) :: acc)
  in
  go 0 []

let eval_syscalls_sharded ?domains ?(shards = 4) ?(phase = All) t nrs =
  Stage.incr "query:eval-sharded";
  let ci = sys_of t phase in
  let sup = Bitset.create (t.max_nr + 1) in
  List.iter (fun nr -> if nr >= 0 && nr <= t.max_nr then Bitset.add sup nr) nrs;
  match classes_ok ci (Bitset.words sup) with
  | None -> 0.0
  | Some ok ->
    let partials =
      Parmap.map ?domains
        (fun (lo, hi) -> sweep_range t ok ci lo hi)
        (shard_ranges t.n shards)
    in
    let num = List.fold_left ( +. ) 0.0 partials in
    if t.den = 0.0 then 0.0 else num /. t.den

(* One shard's share of a scattered completeness query: the partial
   numerator over its package range, plus the world denominator so the
   gatherer can check every shard answered from the same index. The
   range sweep is the exact [sweep_range] the in-process sharded
   evaluator uses, so a fleet shard's partial is bit-identical to the
   corresponding term of [eval_syscalls_sharded]. *)
let eval_syscalls_partial ?(phase = All) t nrs ~lo ~hi =
  Stage.incr "query:eval-partial";
  let lo = max 0 (min lo t.n) and hi = max 0 (min hi t.n) in
  if hi <= lo then (0.0, t.den)
  else begin
    let ci = sys_of t phase in
    let sup = Bitset.create (t.max_nr + 1) in
    List.iter
      (fun nr -> if nr >= 0 && nr <= t.max_nr then Bitset.add sup nr)
      nrs;
    match classes_ok ci (Bitset.words sup) with
    | None -> (0.0, t.den)
    | Some ok -> (sweep_range t ok ci lo hi, t.den)
  end

(* ------------------------------------------------------------------ *)
(* API naming (serve protocol / CLI)                                   *)
(* ------------------------------------------------------------------ *)

let api_to_string = function
  | Api.Syscall nr ->
    if Syscall_table.is_valid_nr nr then
      "syscall:" ^ Syscall_table.name_of_nr nr
    else "syscall:" ^ string_of_int nr
  | Api.Vop (Api.Ioctl, code) -> Printf.sprintf "ioctl:%d" code
  | Api.Vop (Api.Fcntl, code) -> Printf.sprintf "fcntl:%d" code
  | Api.Vop (Api.Prctl, code) -> Printf.sprintf "prctl:%d" code
  | Api.Pseudo_file path -> "pseudo:" ^ path
  | Api.Libc_sym name -> "libc:" ^ name

let parse_syscall s =
  match int_of_string_opt s with
  | Some nr -> Ok (Api.Syscall nr)
  | None ->
    (match Syscall_table.nr_of_name s with
     | Some nr -> Ok (Api.Syscall nr)
     | None -> Error (Printf.sprintf "unknown system call %S" s))

let api_of_string s =
  match String.index_opt s ':' with
  | None -> parse_syscall s
  | Some i ->
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let vop v =
      match int_of_string_opt rest with
      | Some code -> Ok (Api.Vop (v, code))
      | None -> Error (Printf.sprintf "%s code must be an integer: %S" kind rest)
    in
    (match kind with
     | "syscall" -> parse_syscall rest
     | "ioctl" -> vop Api.Ioctl
     | "fcntl" -> vop Api.Fcntl
     | "prctl" -> vop Api.Prctl
     | "pseudo" -> Ok (Api.Pseudo_file rest)
     | "libc" -> Ok (Api.Libc_sym rest)
     | _ -> Error (Printf.sprintf "unknown api kind %S" kind))

(* ------------------------------------------------------------------ *)
(* Format-4 index images                                               *)
(* ------------------------------------------------------------------ *)

(* A format-4 file is the built index itself, laid out flat so it can
   be mapped read-only and consumed in place with zero decode:

     offset  size  field
     0       8     magic "LAPISNAP"
     8       4     format version = 4 (u32 LE)
     12      16    MD5 of the payload
     28      8     payload length (u64 LE)
     36      4     zero padding (the payload starts 8-aligned)
     40      -     payload

   The payload is a sequence of little-endian 64-bit words:

     word 0        endianness probe (IMAGE_PROBE)
     word 1        section count
     words 2..     section table: (id, byte offset, byte length) per
                   section, offsets payload-relative and 8-aligned
     ...           section bodies, each padded to 8 bytes

   Numeric sections (float planes, word planes, class rows) are raw
   8-byte-per-element images of the arrays the query engine walks;
   the meta and bins sections are varint-encoded with the row
   snapshot's own codecs ({!Snapshot.Wire}) and are decoded eagerly
   (meta) or lazily (bins) at load. Loading validates every offset,
   length, width and cross-reference up front, so the mapped hot
   loops can use unchecked reads.

   An image may be {b range-sliced}: the meta section carries a
   [slice_lo, slice_hi) package range (a full image writes [0, n)),
   and the per-package planes — probs, names, the six class maps, the
   dependents CSR — cover only that range, while per-API planes
   (survival, counts), the class rows/cores and the denominator stay
   whole, so point queries and the partial sweep over in-slice ranges
   answer bit-identically to the full image at ~1/N the mapped
   bytes. Proper slices drop the per-binary rows. *)

let image_version = 4
let image_header_len = 40
let image_probe = 0x0123456789ABCDEF

let sec_meta = 1
let sec_probs = 2
let sec_survival = 3 (* +0 all, +1 init, +2 serving *)
let sec_dep_count = 6
let sec_elf_count = 7
let sec_deps_off = 8
let sec_deps_dat = 9
let sec_bins = 10

(* Class-index sections: for [k]th entry of [class_list], flat is
   [sec_class_base + 3k], common [+1], pkg_class [+2]. *)
let sec_class_base = 16

let class_list t =
  [ t.req; t.sys; t.req_init; t.sys_init; t.req_serving; t.sys_serving ]

let fail e = raise (Wire.Fail e)
let corrupt fmt = Printf.ksprintf (fun msg -> fail (Snapshot.Corrupt msg)) fmt

(* --- writer ------------------------------------------------------- *)

(* [lo, hi) is the global package range the written image covers; the
   range header rides between [den] and the name list, and the name
   list holds [hi - lo] entries. A full image writes [0, n). *)
let meta_section t ~seed ~source_key ~lo ~hi ~n_bins ~class_dims =
  let b = Buffer.create 4096 in
  Wire.w_int b seed;
  Wire.w_int b t.total_installs;
  Wire.w_str b source_key;
  Wire.w_int b t.n;
  Wire.w_int b (Array.length t.apis);
  Wire.w_int b t.n_comps;
  Wire.w_int b t.max_nr;
  Wire.w_int b n_bins;
  Wire.w_float b t.den;
  Wire.w_int b lo;
  Wire.w_int b hi;
  for i = lo - t.slice_lo to hi - 1 - t.slice_lo do
    Wire.w_str b t.names.(i)
  done;
  Array.iter (Wire.w_api b) t.apis;
  List.iter
    (fun (nc, nw) ->
      Wire.w_int b nc;
      Wire.w_int b nw)
    class_dims;
  Buffer.contents b

(* Bins section: a pool of distinct encoded API sets (bitset bytes
   over the interned universe, plus any APIs outside it — hand-built
   stores may hold phase sets that are not footprint subsets), then
   one (digest, all, init, serving) row per binary referencing pool
   ids. Phase sets usually repeat across binaries, hence the pool. *)
let bins_section t (rows : bin_sets array) =
  let n_apis = Array.length t.apis in
  let encode_set set =
    let bits = Bitset.create n_apis in
    let extra = ref [] in
    Api.Set.iter
      (fun a ->
        match Api.Tbl.find_opt t.api_ids a with
        | Some id -> Bitset.add bits id
        | None -> extra := a :: !extra)
      set;
    let b = Buffer.create 64 in
    Wire.w_str b (Bitset.to_bytes bits);
    let extra = List.rev !extra in
    Wire.w_varint b (List.length extra);
    List.iter (Wire.w_api b) extra;
    Buffer.contents b
  in
  let pool = Hashtbl.create 64 in
  let pool_rev = ref [] in
  let n_pool = ref 0 in
  let pool_id enc =
    match Hashtbl.find_opt pool enc with
    | Some id -> id
    | None ->
      let id = !n_pool in
      incr n_pool;
      Hashtbl.add pool enc id;
      pool_rev := enc :: !pool_rev;
      id
  in
  let triples =
    Array.map
      (fun r ->
        ( r.bs_digest,
          pool_id (encode_set r.bs_all),
          pool_id (encode_set r.bs_init),
          pool_id (encode_set r.bs_serving) ))
      rows
  in
  let b = Buffer.create 4096 in
  Wire.w_varint b !n_pool;
  List.iter (Buffer.add_string b) (List.rev !pool_rev);
  Wire.w_varint b (Array.length triples);
  Array.iter
    (fun (digest, a, i, s) ->
      Buffer.add_string b digest;
      Wire.w_varint b a;
      Wire.w_varint b i;
      Wire.w_varint b s)
    triples;
  Buffer.contents b

let to_image_string ?(seed = 0) ?(source_key = "") ?range t =
  match Lazy.force t.bins with
  | Error e -> Error e
  | Ok rows ->
    let lo, hi =
      match range with
      | None -> (t.slice_lo, t.slice_hi)
      | Some (lo, hi) -> (lo, hi)
    in
    if lo < t.slice_lo || hi > t.slice_hi || lo > hi then
      invalid_arg
        (Printf.sprintf
           "Query.to_image_string: range %d:%d outside the source slice \
            [%d, %d)"
           lo hi t.slice_lo t.slice_hi);
    (* [full] = the written range is exactly what the source covers: the
       output is the image that always was. A proper slice drops the
       per-binary rows (they have no package attribution), trims the
       per-package planes, and keeps only the class rows some in-range
       package references (remapping [pkg_class] onto the kept rows, in
       original order — the sweep reads bit-identical rows under new
       ids); per-API planes are written whole either way. *)
    let full = lo = t.slice_lo && hi = t.slice_hi in
    let np = hi - lo in
    let base = lo - t.slice_lo in
    let rows = if full then rows else [||] in
    let wsec w = Bitset.words_to_le (Bitset.words_to_array w) in
    let fsec f = Bitset.floats_to_le (Bitset.floats_to_array f) in
    (* Dependents CSR restricted to packages in range: per-API segments
       keep their relative order (global package ids), offsets
       recomputed over the kept entries. On the full range this is a
       copy. *)
    let deps_off_s, deps_dat_s =
      if full then (wsec t.deps_off, wsec t.deps_dat)
      else begin
        let n_apis = Array.length t.apis in
        let off = Array.make (n_apis + 1) 0 in
        for id = 0 to n_apis - 1 do
          let s = Bitset.words_get t.deps_off id in
          let e = Bitset.words_get t.deps_off (id + 1) in
          let c = ref 0 in
          for k = s to e - 1 do
            let v = Bitset.words_get t.deps_dat k in
            if v >= lo && v < hi then incr c
          done;
          off.(id + 1) <- off.(id) + !c
        done;
        let dat = Array.make off.(n_apis) 0 in
        let w = ref 0 in
        for id = 0 to n_apis - 1 do
          let s = Bitset.words_get t.deps_off id in
          let e = Bitset.words_get t.deps_off (id + 1) in
          for k = s to e - 1 do
            let v = Bitset.words_get t.deps_dat k in
            if v >= lo && v < hi then begin
              dat.(!w) <- v;
              incr w
            end
          done
        done;
        (Bitset.words_to_le off, Bitset.words_to_le dat)
      end
    in
    (* (nc, nw, flat body, common body, pkg_class body) per class
       plane. An empty kept set (possible on an empty range) writes the
       loader's zero-class convention: dims (0, 0), one zero word of
       flat and of common. *)
    let slice_class ci =
      if full then
        ( ci.ci_nc,
          ci.ci_nw,
          wsec ci.ci_flat,
          Bitset.words_to_le ci.ci_common,
          Bitset.words_to_le (Bitset.words_sub ci.ci_pkg_class base np) )
      else begin
        let used = Array.make (max 1 ci.ci_nc) false in
        for i = base to base + np - 1 do
          used.(Bitset.words_get ci.ci_pkg_class i) <- true
        done;
        let remap = Array.make (max 1 ci.ci_nc) (-1) in
        let kept = ref 0 in
        for c = 0 to ci.ci_nc - 1 do
          if used.(c) then begin
            remap.(c) <- !kept;
            incr kept
          end
        done;
        let kept = !kept in
        if kept = 0 then
          ( 0,
            0,
            Bitset.words_to_le [| 0 |],
            Bitset.words_to_le [| 0 |],
            Bitset.words_to_le [||] )
        else begin
          let flat = Array.make (kept * ci.ci_nw) 0 in
          for c = 0 to ci.ci_nc - 1 do
            if used.(c) then
              for w = 0 to ci.ci_nw - 1 do
                flat.((remap.(c) * ci.ci_nw) + w) <-
                  Bitset.words_get ci.ci_flat ((c * ci.ci_nw) + w)
              done
          done;
          let pkg_class =
            Array.init np (fun i ->
                remap.(Bitset.words_get ci.ci_pkg_class (base + i)))
          in
          ( kept,
            ci.ci_nw,
            Bitset.words_to_le flat,
            Bitset.words_to_le ci.ci_common,
            Bitset.words_to_le pkg_class )
        end
      end
    in
    let classes = List.map slice_class (class_list t) in
    let class_dims =
      List.map (fun (nc, nw, _, _, _) -> (nc, nw)) classes
    in
    let sections =
      [
        (sec_meta,
         meta_section t ~seed ~source_key ~lo ~hi ~class_dims
           ~n_bins:(Array.length rows));
        (sec_probs, Bitset.floats_to_le (Bitset.floats_sub t.probs base np));
        (sec_survival, fsec t.survival);
        (sec_survival + 1, fsec t.survival_init);
        (sec_survival + 2, fsec t.survival_serving);
        (sec_dep_count, wsec t.dep_count);
        (sec_elf_count, wsec t.elf_count);
        (sec_deps_off, deps_off_s);
        (sec_deps_dat, deps_dat_s);
        (sec_bins, bins_section t rows);
      ]
      @ List.concat
          (List.mapi
             (fun k (_, _, flat, common, pkg_class) ->
               [
                 (sec_class_base + (3 * k), flat);
                 (sec_class_base + (3 * k) + 1, common);
                 (sec_class_base + (3 * k) + 2, pkg_class);
               ])
             classes)
    in
    let n_sections = List.length sections in
    let pad8 k = (k + 7) land lnot 7 in
    let table_bytes = 8 * (2 + (3 * n_sections)) in
    let entries, payload_len =
      List.fold_left
        (fun (acc, off) (id, body) ->
          ((id, off, String.length body) :: acc, off + pad8 (String.length body)))
        ([], table_bytes) sections
    in
    let entries = List.rev entries in
    let payload = Bytes.make payload_len '\000' in
    Bytes.set_int64_le payload 0 (Int64.of_int image_probe);
    Bytes.set_int64_le payload 8 (Int64.of_int n_sections);
    List.iteri
      (fun i (id, off, len) ->
        let base = 16 + (24 * i) in
        Bytes.set_int64_le payload base (Int64.of_int id);
        Bytes.set_int64_le payload (base + 8) (Int64.of_int off);
        Bytes.set_int64_le payload (base + 16) (Int64.of_int len))
      entries;
    List.iter2
      (fun (_, body) (_, off, _) ->
        Bytes.blit_string body 0 payload off (String.length body))
      sections entries;
    let payload = Bytes.unsafe_to_string payload in
    let out = Buffer.create (image_header_len + payload_len) in
    Buffer.add_string out Snapshot.magic;
    let scratch = Bytes.create 8 in
    Bytes.set_int32_le scratch 0 (Int32.of_int image_version);
    Buffer.add_subbytes out scratch 0 4;
    Buffer.add_string out (Digest.string payload);
    Bytes.set_int64_le scratch 0 (Int64.of_int payload_len);
    Buffer.add_bytes out scratch;
    Buffer.add_string out "\000\000\000\000";
    Buffer.add_string out payload;
    Ok (Buffer.contents out)

let save_image ?seed ?source_key ?range path t =
  match to_image_string ?seed ?source_key ?range t with
  | Error e -> Error e
  | Ok s -> (
    match
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc s)
    with
    | () -> Ok ()
    | exception Sys_error msg -> Error (Snapshot.Io msg))

(* --- loader ------------------------------------------------------- *)

(* One payload, three views: [img_read] pulls varint-encoded section
   bytes (pread on the file path, substring on the in-memory path);
   the two Bigarrays are whole-payload element views the numeric
   sections slice into. Byte offset [8k] is element [k] of either. *)
type image_source = {
  img_read : int -> int -> string;
  img_iba : Bitset.int_ba;
  img_fba : Bitset.float_ba;
  img_len : int;
}

let decode_bins ~apis ~expect (raw : string) =
  try
    let n_apis = Array.length apis in
    let c = Wire.cursor raw in
    let n_pool = Wire.r_varint c "image.bins.pool-count" in
    if n_pool < 0 || n_pool > String.length raw then
      corrupt "image: bins pool count %d" n_pool;
    let pool = Array.make (max 1 n_pool) Api.Set.empty in
    for p = 0 to n_pool - 1 do
      let bytes = Wire.r_str c "image.bins.pool-bits" in
      let base =
        match Bitset.of_bytes n_apis bytes with
        | Ok b -> b
        | Error msg -> corrupt "image: bins bitset: %s" msg
      in
      let set =
        Bitset.fold (fun id acc -> Api.Set.add apis.(id) acc) base Api.Set.empty
      in
      let n_extra = Wire.r_varint c "image.bins.pool-extra" in
      if n_extra < 0 || n_extra > String.length raw then
        corrupt "image: bins extra count %d" n_extra;
      let set = ref set in
      for _ = 1 to n_extra do
        set := Api.Set.add (Wire.r_api c) !set
      done;
      pool.(p) <- !set
    done;
    let n_bins = Wire.r_varint c "image.bins.count" in
    if n_bins <> expect then
      corrupt "image: bins section holds %d rows, meta says %d" n_bins expect;
    let rows = Array.make (max 1 n_bins) None in
    for r = 0 to n_bins - 1 do
      if c.Wire.pos + 16 > c.Wire.stop then
        fail (Snapshot.Truncated "image.bins.digest");
      let digest = String.sub c.Wire.buf c.Wire.pos 16 in
      c.Wire.pos <- c.Wire.pos + 16;
      let pid () =
        let id = Wire.r_varint c "image.bins.set-id" in
        if id < 0 || id >= n_pool then
          corrupt "image: bins pool id %d of %d" id n_pool;
        pool.(id)
      in
      let bs_all = pid () in
      let bs_init = pid () in
      let bs_serving = pid () in
      rows.(r) <- Some { bs_digest = digest; bs_all; bs_init; bs_serving }
    done;
    if c.Wire.pos <> c.Wire.stop then corrupt "image: bins section underrun";
    Ok
      (Array.init n_bins (fun r ->
           match rows.(r) with Some b -> b | None -> assert false))
  with Wire.Fail e -> Error e

(* Total validation of an image payload, then assembly of a [t] whose
   numeric planes alias the payload words. Everything the unchecked
   hot loops rely on is established here: section bounds, alignment,
   exact plane widths against the meta counts, class map entries in
   range, CSR offsets monotone and consistent. Raises {!Wire.Fail};
   the entry points catch. *)
let load_image_src (src : image_source) : t =
  if src.img_len land 7 <> 0 then
    corrupt "image: payload length %d not 8-aligned" src.img_len;
  if src.img_len < 16 then fail (Snapshot.Truncated "image: section table");
  let head = src.img_read 0 16 in
  let probe = Int64.to_int (String.get_int64_le head 0) in
  if probe <> image_probe then
    corrupt "image: bad probe word (wrong endianness or not an index image)";
  let n_sections = Int64.to_int (String.get_int64_le head 8) in
  if n_sections < 0 || n_sections > 128 then
    corrupt "image: section count %d" n_sections;
  let table_len = 16 + (24 * n_sections) in
  if table_len > src.img_len then fail (Snapshot.Truncated "image: section table");
  let table = src.img_read 16 (24 * n_sections) in
  let secs = Hashtbl.create 32 in
  for i = 0 to n_sections - 1 do
    let id = Int64.to_int (String.get_int64_le table (24 * i)) in
    let off = Int64.to_int (String.get_int64_le table ((24 * i) + 8)) in
    let len = Int64.to_int (String.get_int64_le table ((24 * i) + 16)) in
    if Hashtbl.mem secs id then corrupt "image: duplicate section %d" id;
    if len < 0 || off < table_len || off > src.img_len - len then
      fail
        (Snapshot.Truncated (Printf.sprintf "image: section %d out of bounds" id));
    if off land 7 <> 0 then corrupt "image: section %d unaligned" id;
    Hashtbl.add secs id (off, len)
  done;
  let find id what =
    match Hashtbl.find_opt secs id with
    | Some s -> s
    | None -> corrupt "image: missing %s section" what
  in
  (* meta *)
  let moff, mlen = find sec_meta "meta" in
  let c = Wire.cursor (src.img_read moff mlen) in
  let meta_seed = Wire.r_int c "image.meta.seed" in
  let total_installs = Wire.r_int c "image.meta.total-installs" in
  let meta_source_key = Wire.r_str c "image.meta.source-key" in
  let n = Wire.r_int c "image.meta.n-packages" in
  let n_apis = Wire.r_int c "image.meta.n-apis" in
  let n_comps = Wire.r_int c "image.meta.n-comps" in
  let max_nr = Wire.r_int c "image.meta.max-nr" in
  let n_bins = Wire.r_int c "image.meta.n-bins" in
  let den = Wire.r_float c "image.meta.den" in
  let slice_lo = Wire.r_int c "image.meta.slice-lo" in
  let slice_hi = Wire.r_int c "image.meta.slice-hi" in
  if n < 0 || n_apis < 0 || n_comps < 0 || n_bins < 0 || max_nr < -1 then
    corrupt "image: negative meta counts";
  if n > mlen || n_apis > mlen || n_comps > n then
    corrupt "image: meta counts exceed the meta section";
  if slice_lo < 0 || slice_hi < slice_lo || slice_hi > n then
    corrupt "image: slice range %d:%d outside %d packages" slice_lo slice_hi n;
  (* Per-package planes cover the slice only. *)
  let np = slice_hi - slice_lo in
  let names = Array.make np "" in
  for i = 0 to np - 1 do
    names.(i) <- Wire.r_str c "image.meta.name"
  done;
  let apis = Array.make n_apis (Api.Syscall 0) in
  for i = 0 to n_apis - 1 do
    apis.(i) <- Wire.r_api c
  done;
  let class_meta = Array.make 6 (0, 0) in
  for k = 0 to 5 do
    let nc = Wire.r_int c "image.meta.class-nc" in
    let nw = Wire.r_int c "image.meta.class-nw" in
    class_meta.(k) <- (nc, nw)
  done;
  if c.Wire.pos <> c.Wire.stop then corrupt "image: meta section underrun";
  let api_ids = Api.Tbl.create (max 16 n_apis) in
  Array.iteri
    (fun id a ->
      if Api.Tbl.mem api_ids a then corrupt "image: duplicate api in dictionary";
      Api.Tbl.add api_ids a id)
    apis;
  (* numeric planes *)
  let words_sec id what count =
    let off, len = find id what in
    if len <> 8 * count then
      corrupt "image: %s section is %d bytes, expected %d" what len (8 * count);
    Bitset.Words_map { wba = src.img_iba; woff = off / 8; wlen = count }
  in
  let floats_sec id what count =
    let off, len = find id what in
    if len <> 8 * count then
      corrupt "image: %s section is %d bytes, expected %d" what len (8 * count);
    Bitset.Floats_map { fba = src.img_fba; foff = off / 8; flen = count }
  in
  let probs = floats_sec sec_probs "probs" np in
  let survival = floats_sec sec_survival "survival" n_apis in
  let survival_init = floats_sec (sec_survival + 1) "survival-init" n_apis in
  let survival_serving =
    floats_sec (sec_survival + 2) "survival-serving" n_apis
  in
  let dep_count = words_sec sec_dep_count "dep-count" n_apis in
  let elf_count = words_sec sec_elf_count "elf-count" n_apis in
  let deps_off = words_sec sec_deps_off "deps-offsets" (n_apis + 1) in
  let doff, dlen = find sec_deps_dat "deps-data" in
  if dlen land 7 <> 0 then corrupt "image: deps-data length not 8-aligned";
  let deps_total = dlen / 8 in
  let deps_dat =
    Bitset.Words_map { wba = src.img_iba; woff = doff / 8; wlen = deps_total }
  in
  if Bitset.words_get deps_off 0 <> 0 then
    corrupt "image: deps offsets must start at 0";
  for id = 0 to n_apis - 1 do
    if Bitset.words_get deps_off (id + 1) < Bitset.words_get deps_off id then
      corrupt "image: deps offsets not monotone"
  done;
  if Bitset.words_get deps_off n_apis <> deps_total then
    corrupt "image: deps offsets disagree with deps-data length";
  for k = 0 to deps_total - 1 do
    let v = Bitset.words_get deps_dat k in
    if v < slice_lo || v >= slice_hi then
      corrupt "image: dependent package id %d outside slice %d:%d" v slice_lo
        slice_hi
  done;
  (* class indexes *)
  let universes = [| n_apis; max_nr + 1; n_apis; max_nr + 1; n_apis; max_nr + 1 |] in
  let read_class k =
    let nc, nw = class_meta.(k) in
    if nc < 0 || nw < 0 then corrupt "image: negative class dimensions";
    if nc > max 1 n_comps then
      corrupt "image: %d classes exceed %d components" nc n_comps;
    if nc = 0 then begin
      if nw <> 0 then corrupt "image: empty class index with %d words" nw
    end
    else if nw <> Bitset.words_for universes.(k) then
      corrupt "image: class width %d disagrees with universe %d" nw universes.(k);
    let flat_count = max 1 (nc * nw) in
    let flat = words_sec (sec_class_base + (3 * k)) "class-rows" flat_count in
    let common =
      let off, len = find (sec_class_base + (3 * k) + 1) "class-core" in
      let expect = if nc = 0 then max 1 nw else nw in
      if len <> 8 * expect then
        corrupt "image: class-core section is %d bytes, expected %d" len
          (8 * expect);
      Array.init expect (fun i -> Bigarray.Array1.get src.img_iba ((off / 8) + i))
    in
    let pkg_class = words_sec (sec_class_base + (3 * k) + 2) "class-map" np in
    for i = 0 to np - 1 do
      let v = Bitset.words_get pkg_class i in
      if v < 0 || v >= nc then corrupt "image: package class %d of %d" v nc
    done;
    { ci_nc = nc; ci_nw = nw; ci_flat = flat; ci_common = common; ci_pkg_class = pkg_class }
  in
  let req = read_class 0 in
  let sys = read_class 1 in
  let req_init = read_class 2 in
  let sys_init = read_class 3 in
  let req_serving = read_class 4 in
  let sys_serving = read_class 5 in
  (* bins: pull the raw bytes eagerly (the fd may close after load),
     decode on first use — the server never asks for them. *)
  let boff, blen = find sec_bins "bins" in
  let bins_raw = src.img_read boff blen in
  let bins = lazy (decode_bins ~apis ~expect:n_bins bins_raw) in
  let ranking = build_ranking ~n ~api_ids ~survival ~elf_count in
  {
    n;
    slice_lo;
    slice_hi;
    mapped = true;
    meta_seed;
    meta_source_key;
    total_installs;
    n_bins;
    probs;
    names;
    api_ids;
    apis;
    survival;
    survival_init;
    survival_serving;
    dep_count;
    elf_count;
    deps_off;
    deps_dat;
    n_comps;
    req;
    sys;
    req_init;
    sys_init;
    req_serving;
    sys_serving;
    max_nr;
    ranking;
    den;
    bins;
  }

let check_header ~what ~len ~read_prefix =
  let prefix = read_prefix (min image_header_len len) in
  let mlen = min 8 (String.length prefix) in
  if String.sub prefix 0 mlen <> String.sub Snapshot.magic 0 mlen then
    fail Snapshot.Not_snapshot;
  if len < image_header_len then fail (Snapshot.Truncated "header");
  let version = Int32.to_int (String.get_int32_le prefix 8) in
  if version <> image_version then fail (Snapshot.Unsupported_version version);
  let digest = String.sub prefix 12 16 in
  let payload_len = Int64.to_int (String.get_int64_le prefix 28) in
  if payload_len < 0 || payload_len > len - image_header_len then
    fail (Snapshot.Truncated "payload");
  if image_header_len + payload_len < len then
    corrupt "image: %d trailing bytes after the payload" (len - image_header_len - payload_len);
  ignore what;
  (digest, payload_len)

let of_image ?(verify = true) (s : string) =
  try
    let digest, payload_len =
      check_header ~what:"image" ~len:(String.length s)
        ~read_prefix:(fun k -> String.sub s 0 k)
    in
    if verify && Digest.substring s image_header_len payload_len <> digest then
      fail Snapshot.Digest_mismatch;
    if payload_len land 7 <> 0 then
      corrupt "image: payload length %d not 8-aligned" payload_len;
    let nwords = payload_len / 8 in
    let iba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout nwords in
    let fba = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout nwords in
    for i = 0 to nwords - 1 do
      let bits = String.get_int64_le s (image_header_len + (8 * i)) in
      Bigarray.Array1.set iba i (Int64.to_int bits);
      Bigarray.Array1.set fba i (Int64.float_of_bits bits)
    done;
    let src =
      {
        img_read =
          (fun pos len ->
            if pos < 0 || len < 0 || pos > payload_len - len then
              fail (Snapshot.Truncated "image: section read");
            String.sub s (image_header_len + pos) len);
        img_iba = iba;
        img_fba = fba;
        img_len = payload_len;
      }
    in
    Ok (load_image_src src)
  with Wire.Fail e -> Error e

let load_image ?(verify = true) path =
  Stage.time "image-load" @@ fun () ->
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Snapshot.Io (path ^ ": " ^ Unix.error_message e))
  | fd -> (
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    try
      let file_len = (Unix.fstat fd).Unix.st_size in
      let pread pos len what =
        ignore (Unix.lseek fd pos Unix.SEEK_SET);
        let b = Bytes.create len in
        let k = ref 0 in
        while !k < len do
          let r = Unix.read fd b !k (len - !k) in
          if r = 0 then fail (Snapshot.Truncated what);
          k := !k + r
        done;
        Bytes.unsafe_to_string b
      in
      let digest, payload_len =
        check_header ~what:path ~len:file_len
          ~read_prefix:(fun k -> pread 0 k "header")
      in
      if verify then begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            seek_in ic image_header_len;
            if Digest.channel ic payload_len <> digest then
              fail Snapshot.Digest_mismatch)
      end;
      if payload_len land 7 <> 0 then
        corrupt "image: payload length %d not 8-aligned" payload_len;
      if payload_len < 16 then fail (Snapshot.Truncated "image: section table");
      let nwords = payload_len / 8 in
      let iba =
        Bigarray.array1_of_genarray
          (Unix.map_file fd ~pos:(Int64.of_int image_header_len) Bigarray.int
             Bigarray.c_layout false [| nwords |])
      in
      let fba =
        Bigarray.array1_of_genarray
          (Unix.map_file fd ~pos:(Int64.of_int image_header_len)
             Bigarray.float64 Bigarray.c_layout false [| nwords |])
      in
      let src =
        {
          img_read =
            (fun pos len ->
              if pos < 0 || len < 0 || pos > payload_len - len then
                fail (Snapshot.Truncated "image: section read");
              pread (image_header_len + pos) len "image: section read");
          img_iba = iba;
          img_fba = fba;
          img_len = payload_len;
        }
      in
      Ok (load_image_src src)
    with
    | Wire.Fail e -> Error e
    | Unix.Unix_error (e, fn, _) ->
      Error
        (Snapshot.Io
           (Printf.sprintf "%s: %s (%s)" path (Unix.error_message e) fn))
    | Sys_error msg -> Error (Snapshot.Io msg)
    | End_of_file -> Error (Snapshot.Truncated "image: payload"))
