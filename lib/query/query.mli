(** Indexed compatibility query engine.

    {!index} precomputes, from an immutable {!Lapis_store.Store.t}:
    per-API survival products (O(1) importance), per-SCC packed
    closure requirement {!Lapis_perf.Bitset}s (arbitrary-subset
    weighted completeness as one word-wise subset test per component
    plus a gated linear sweep), and the Section 3 syscall ranking.
    All results are designed to be bit-identical to the closed-form
    oracles in {!Lapis_metrics} — same fold orders, same comparators —
    and the test suite holds them to [<= 1e-12].

    An index is cheap relative to analysis (milliseconds), built with
    a deterministic {!Lapis_perf.Parmap} fan-out, and fully immutable
    afterwards: evaluation allocates its own scratch per call, so one
    index may be queried concurrently from any number of domains —
    which is what the TCP worker pool in {!Server} does.

    Every metric takes an optional {!phase}: [Init] and [Serving]
    evaluate against the temporal requirement sets attributed by
    {!Lapis_analysis.Phase} (packed into their own closure classes and
    survival products at build time), while the default [All] walks
    the exact structures an unphased build produces — so existing
    callers see bit-identical results. *)

open Lapis_apidb

type t
(** The immutable index. Safe to share across domains. *)

type phase = Init | Serving | All
(** Which temporal requirement set a query evaluates against: the
    APIs packages need during initialization ([Init]), while serving
    ([Serving]), or their union — the whole footprint ([All], the
    default everywhere). Since [init ∪ serving = total] per package,
    phase-filtered completeness is always [>=] the unfiltered value:
    the phased requirement sets are subsets of the total. *)

val phase_to_string : phase -> string
(** ["init"], ["serving"], ["all"] — the serve-protocol / CLI names. *)

val phase_of_string : string -> (phase, string) result
(** Inverse of {!phase_to_string}; [""] means [All]. *)

type ranked = {
  rk_nr : int;
  rk_name : string;
  rk_importance : float;
  rk_unweighted_elf : float;  (** the plateau tie-breaker of Section 3 *)
}

val index : ?domains:int -> Lapis_store.Store.t -> t
(** Build the index (timed under the ["query:index-build"] stage).
    [domains] caps the construction fan-out (default: all); the
    result is bit-identical for every value of it. The index captures
    everything it answers from — dependents, per-binary footprints,
    store meta — so the store itself is not retained. *)

val n_packages : t -> int

val n_apis : t -> int
(** Distinct APIs appearing in any package footprint. *)

val n_components : t -> int
(** Strongly connected components of the dependency graph — the
    number of subset tests one completeness query costs. *)

val n_binaries : t -> int
(** Binary rows carried for the seccomp generator. *)

val total_installs : t -> int
(** The popcon denominator of the producing world. *)

val is_mapped : t -> bool
(** True when the numeric planes alias a mapped format-4 image. *)

val slice_lo : t -> int
val slice_hi : t -> int
(** The global package range [slice_lo, slice_hi) this index's
    per-package planes cover. A full index (every build, every
    unsliced image) covers [0, {!n_packages}). On a range-sliced
    image ({!to_image_string} with [~range]) only queries touching
    in-slice packages see them: {!eval_syscalls_partial} over an
    in-slice range is bit-identical to the full image, point metrics
    (importance, survival, ranking) are whole-world exact, and
    {!dependents_ranked} lists in-slice packages only. *)

val is_sliced : t -> bool
(** [slice_lo t > 0 || slice_hi t < n_packages t]. *)

val image_seed : t -> int
val image_source_key : t -> string
(** The generator identity recorded in the image this index was
    mapped from ([0] / [""] for a fresh build) — pass them back to
    {!save_image} when re-slicing so a slice keeps its source's
    identity. *)

val importance : ?phase:phase -> t -> Api.t -> float
(** Appendix A.1 importance, O(1): [1 - prod(1 - p)] over dependent
    packages. Zero for APIs no package uses. With [~phase], the
    product runs over the packages whose phase requirement set has
    the API — "how much breaks {e in this phase} without it". *)

val survival : ?phase:phase -> t -> Api.t -> float
(** The stored product [prod(1 - p)] itself ([1.0] for unused APIs). *)

val unweighted : t -> Api.t -> float
(** Fraction of packages whose footprint contains the API. *)

val unweighted_elf : t -> Api.t -> float
(** Same, counting only the packages' own ELF executables. *)

val ranking : t -> int list
(** Syscall numbers, most important first — the Section 3 order,
    identical to {!Lapis_metrics.Importance.rank_syscalls}. *)

val top_n : t -> int -> ranked list
(** First [n] of {!ranking} with their metric values attached. *)

val dependents_ranked : ?limit:int -> t -> Api.t -> (string * float) list
(** Packages requiring the API, highest install probability first
    (name order on ties). *)

type scope = Syscalls_only | All_apis
(** Mirrors {!Lapis_metrics.Completeness.scope} (the metrics layer
    sits above this one, so the type is re-declared here). *)

val eval_pred :
  ?scope:scope -> ?phase:phase -> t -> supported:(Api.t -> bool) -> float
(** Weighted completeness of the support predicate, dependency rule
    included — one packed subset test per component. Default scope
    [All_apis], default phase [All]. *)

val eval_syscalls : ?phase:phase -> t -> int list -> float
(** Weighted completeness of a syscall-number set
    ([scope = Syscalls_only]), on the specialized hot path. With the
    default phase, equal to
    {!Lapis_metrics.Completeness.of_syscall_set}, bit for bit; with
    [Init]/[Serving], a package counts as supported when its
    phase-restricted dependency closure fits the set. *)

val eval_subsets : ?domains:int -> ?phase:phase -> t -> int list list -> float list
(** Batch {!eval_syscalls}, fanned out over domains with
    {!Lapis_perf.Parmap} (each subset evaluates whole on one domain,
    so every element is still bit-identical to the oracle). Timed
    under ["query:eval-subsets"]. *)

val eval_syscalls_sharded :
  ?domains:int -> ?shards:int -> ?phase:phase -> t -> int list -> float
(** {!eval_syscalls} with the probability sweep sharded into
    [shards] contiguous package ranges (default 4) evaluated in
    parallel and merged in range order. Regrouping the float sums
    makes this equal to {!eval_syscalls} within accumulation noise
    (held to 1e-12 by the test suite), not bit-identical. *)

val shard_ranges : int -> int -> (int * int) list
(** [shard_ranges n shards]: the contiguous [(lo, hi)] package-range
    partition of [0, n) the sharded evaluator sweeps — exported so a
    fleet router assigns its shards the exact same ranges (clamped to
    at most [n] non-empty ranges, in order, covering [0, n)). *)

val eval_syscalls_partial :
  ?phase:phase -> t -> int list -> lo:int -> hi:int -> float * float
(** [(partial numerator over packages [lo, hi), world denominator)] —
    the shard side of a scattered completeness query. The component
    subset tests run whole (they are range-independent); the
    probability sweep covers only the clamped range, with the exact
    per-range fold of {!eval_syscalls_sharded}, so summing the
    partials of a range partition in range order and dividing by the
    (shared) denominator reproduces the sharded result: within
    accumulation noise ([<= 1e-12] in the test suite) of
    {!eval_syscalls}. The denominator lets a gatherer assert every
    shard evaluated the same world. *)

val api_to_string : Api.t -> string
(** Stable textual form: [syscall:read], [ioctl:21505],
    [pseudo:/proc/self/stat], [libc:qsort], ... *)

val api_of_string : string -> (Api.t, string) result
(** Inverse of {!api_to_string}; also accepts bare syscall names or
    numbers ([read], [42]). *)

(** {2 Per-binary footprints}

    Carried by the index for the seccomp generator (digest-keyed
    lookup of a binary's phased API sets). On a mapped image these
    decode lazily from the varint bins section on first use — from
    one thread; the serving hot paths never touch them. *)

type bin_sets = {
  bs_digest : Digest.t;
  bs_all : Api.Set.t;  (** the binary's whole resolved footprint *)
  bs_init : Api.Set.t;
  bs_serving : Api.Set.t;
}

val bins : t -> (bin_sets array, Lapis_store.Snapshot.error) result
(** Every binary row. [Error] only on a mapped image whose bins
    section is corrupt (the sections the queries run on are validated
    at load; this one is validated on first decode). *)

val find_bin :
  t -> Digest.t -> (bin_sets option, Lapis_store.Snapshot.error) result
(** The row for a binary's content digest, if any. *)

(** {2 Format-4 index images}

    A built index serialized flat — little-endian, 8-aligned,
    section-tabled — so serving processes map it read-only
    ({!load_image}) and answer queries in place with zero decode,
    bit-identically to a freshly built index. Shares the [LAPISNAP]
    header discipline and {!Lapis_store.Snapshot.error} taxonomy with
    row snapshots; {!Lapis_store.Snapshot.file_version} routes a path
    to the right loader. *)

val image_version : int
(** 4 — the version word distinguishing index images from the
    decode-and-build row snapshot formats 1–3. *)

val to_image_string : ?seed:int -> ?source_key:string -> ?range:int * int -> t -> (string, Lapis_store.Snapshot.error) result
(** Serialize to the image wire format. [seed]/[source_key] stamp the
    producing world's identity into the meta section (defaults [0] /
    [""]). [~range:(lo, hi)] writes a {b range-sliced} image: the
    per-package planes (probs, names, class maps, dependents CSR)
    cover only [lo, hi) of the global package order, while the shared
    per-API planes, class rows and denominator are written whole — a
    shard mapping such a slice answers partial sweeps over in-slice
    ranges bit-identically to the full image at roughly [1/N] the
    mapped bytes. Proper slices drop the per-binary rows. The range
    must lie within the source's own slice (raises
    [Invalid_argument] otherwise); the default writes the source's
    full coverage. [Error] only if a mapped source's bins section is
    corrupt. *)

val save_image : ?seed:int -> ?source_key:string -> ?range:int * int -> string -> t -> (unit, Lapis_store.Snapshot.error) result

val of_image : ?verify:bool -> string -> (t, Lapis_store.Snapshot.error) result
(** Decode an image from memory (the fuzz harness's entry point; the
    payload is copied into fresh backing stores). Total: truncation,
    bit flips, unaligned or out-of-bounds section offsets all come
    back as structured errors, never an exception or a wild read.
    [verify] (default true) checks the payload MD5 — pass [false] to
    exercise the structural validators on flipped payloads. *)

val load_image : ?verify:bool -> string -> (t, Lapis_store.Snapshot.error) result
(** Map an image file read-only ([Unix.map_file]) and validate every
    section offset, length, plane width and cross-reference up front;
    the returned index answers queries straight from the mapping.
    [verify] (default true) streams the payload once to check the MD5
    — skipping it makes loading O(validation), not O(file). Timed
    under the ["image-load"] stage. *)
