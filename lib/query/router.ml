(** See the interface for semantics. Threading model: the front
    (accept loop, per-connection readers, response resequencing) is
    the {!Server} pattern, but the pool is plain threads — gather
    work is IO-bound waiting on shard sockets, not CPU-bound
    evaluation. Each shard has one pipelined connection: a mutex
    serializes writes, a reader thread completes waiters by
    router-assigned id, and a receive timeout turns a stalled shard
    into failed calls rather than hung ones. Invariants:

    - all of a shard's mutable state ([fd], [healthy], [pending],
      [generation]) is touched only under its mutex; waiters are
      completed outside it (their own mutex/condvar);
    - a connection generation is bumped on every (re)connect, and a
      reader that finds its generation stale exits without touching
      anything — so a late reader from a torn-down connection cannot
      fail the fresh one;
    - every waiter is eventually completed: by a response, by the
      reader's failure sweep (timeout/EOF/bad frame fail {e all}
      pending), or by shutdown closing the connection. *)

module Stage = Lapis_perf.Stage
module Histogram = Lapis_perf.Histogram
module P = Protocol

type shard_spec = { sh_host : string; sh_port : int }

let shard_spec_of_string s =
  let mk host port_s =
    match int_of_string_opt port_s with
    | Some p when p > 0 && p < 65536 -> Ok { sh_host = host; sh_port = p }
    | _ -> Error (Printf.sprintf "bad shard port %S" port_s)
  in
  match String.rindex_opt s ':' with
  | None -> mk "127.0.0.1" s
  | Some i ->
    mk (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))

type config = {
  host : string;
  port : int;
  backlog : int;
  workers : int;
  queue_bound : int;
  shard_timeout : float;
  health_period : float;
  batching : bool;
  cache_capacity : int;
}

let default =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    workers = 8;
    queue_bound = 256;
    shard_timeout = 5.0;
    health_period = 1.0;
    batching = true;
    cache_capacity = 512;
  }

(* ------------------------------------------------------------------ *)
(* Shard clients                                                       *)
(* ------------------------------------------------------------------ *)

(* One gather cell per scatter round: every in-flight sub-request owns
   a slot, and the condvar fires once, when the last slot lands. The
   old design gave each sub-request its own mutex + condvar, so a
   worker gathering K partials could sleep and wake up to K times per
   scatter — on the hot path that is K-1 avoidable context-switch
   round trips. A forwarded single call is just a gather of one. *)
type gather = {
  g_mutex : Mutex.t;
  g_cond : Condition.t;
  g_results : (P.response, string) result option array;
  mutable g_missing : int;
}

type waiter = { g : gather; slot : int }

let new_gather n =
  {
    g_mutex = Mutex.create ();
    g_cond = Condition.create ();
    g_results = Array.make n None;
    g_missing = n;
  }

let waiter_of g slot = { g; slot }

let new_waiter () = waiter_of (new_gather 1) 0

let complete_waiter w result =
  let g = w.g in
  Mutex.lock g.g_mutex;
  if g.g_results.(w.slot) = None then begin
    g.g_results.(w.slot) <- Some result;
    g.g_missing <- g.g_missing - 1;
    if g.g_missing = 0 then Condition.signal g.g_cond
  end;
  Mutex.unlock g.g_mutex

(* After [await_all] returns, every slot is [Some] and no completer
   can touch the array again (the [None] check above), so slots are
   safe to read without the lock. *)
let await_all g =
  Mutex.lock g.g_mutex;
  while g.g_missing > 0 do
    Condition.wait g.g_cond g.g_mutex
  done;
  Mutex.unlock g.g_mutex

let await w =
  await_all w.g;
  Option.get w.g.g_results.(w.slot)

type shard = {
  spec : shard_spec;
  sm : Mutex.t;
  mutable s_fd : Unix.file_descr option;
  mutable s_healthy : bool;
  mutable s_gen : int;  (* bumped per (re)connect *)
  mutable s_next_id : int;
  s_pending : (int, waiter) Hashtbl.t;
  s_outq : (int * P.req) Queue.t;  (* registered but not yet written *)
  mutable s_draining : bool;  (* the single-writer token for [s_outq] *)
  s_coalesce : bool;  (* >= 2 queued messages leave as one [batch] *)
}

let shard_name sh = Printf.sprintf "%s:%d" sh.spec.sh_host sh.spec.sh_port

let shard_healthy sh = Mutex.protect sh.sm (fun () -> sh.s_healthy)

(* Under [sm]: tear the connection down and fail every in-flight call.
   Waiters are collected under the lock but completed outside it. *)
let fail_locked sh =
  (match sh.s_fd with
   | Some fd ->
     sh.s_fd <- None;
     (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  sh.s_healthy <- false;
  Queue.clear sh.s_outq;  (* queued ids are in [s_pending]; fail once *)
  let waiters = Hashtbl.fold (fun _ w acc -> w :: acc) sh.s_pending [] in
  Hashtbl.reset sh.s_pending;
  waiters

let fail_conn sh gen msg =
  let waiters =
    Mutex.protect sh.sm (fun () ->
        if sh.s_gen = gen then begin
          Stage.incr "router:shard-fail";
          fail_locked sh
        end
        else [])
  in
  List.iter (fun w -> complete_waiter w (Error msg)) waiters

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let rec read_exact fd buf off len =
  if len = 0 then true
  else
    match Unix.read fd buf off len with
    | 0 -> false
    | n -> read_exact fd buf (off + n) (len - n)

let pending_empty sh gen =
  Mutex.protect sh.sm (fun () ->
      sh.s_gen <> gen || Hashtbl.length sh.s_pending = 0)

let rec complete_response sh gen resp =
  match resp.P.rs_result with
  | Ok (P.Batch_r rs) ->
    (* A coalesced frame coming back: each sub-response carries the
       router-assigned id of one coalesced request (the outer envelope
       itself correlates with nothing), so the whole frame correlates
       under a single [sm] acquisition rather than one per member.
       Completions still run outside the lock. A nested batch — which
       no shard produces — falls through to the recursive walk. *)
    let nested, flat =
      List.partition
        (fun r ->
          match r.P.rs_result with Ok (P.Batch_r _) -> true | _ -> false)
        rs
    in
    let completed =
      Mutex.protect sh.sm (fun () ->
          if sh.s_gen <> gen then []
          else
            List.filter_map
              (fun r ->
                match Option.bind r.P.rs_id Json.to_int with
                | None -> None
                | Some id ->
                  (match Hashtbl.find_opt sh.s_pending id with
                   | None -> None
                   | Some w ->
                     Hashtbl.remove sh.s_pending id;
                     Some (w, r)))
              flat)
    in
    List.iter (fun (w, r) -> complete_waiter w (Ok r)) completed;
    List.iter (complete_response sh gen) nested
  | _ ->
    let waiter =
      Mutex.protect sh.sm (fun () ->
          if sh.s_gen <> gen then None
          else
            match Option.bind resp.P.rs_id Json.to_int with
            | None -> None
            | Some id ->
              let w = Hashtbl.find_opt sh.s_pending id in
              Hashtbl.remove sh.s_pending id;
              w)
    in
    (match waiter with
     | Some w -> complete_waiter w (Ok resp)
     | None -> ())  (* uncorrelated response; nothing waits for it *)

(* One reader per connection generation. The receive timeout only
   counts as idleness at a frame boundary with nothing in flight;
   anywhere else it means the shard stalled mid-conversation, which
   fails the connection (the never-hang contract). *)
let shard_reader sh fd gen () =
  let hdr = Bytes.create 4 in
  let first = Bytes.create 1 in
  let rec loop () =
    match Unix.read fd first 0 1 with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      if pending_empty sh gen then loop ()
      else fail_conn sh gen "shard timed out"
    | exception _ -> fail_conn sh gen "shard read error"
    | 0 -> fail_conn sh gen "shard closed connection"
    | _ ->
      if Bytes.get first 0 <> P.Bin.magic then
        fail_conn sh gen "bad frame magic from shard"
      else (
        match read_exact fd hdr 0 4 with
        | exception _ -> fail_conn sh gen "shard stalled mid-frame"
        | false -> fail_conn sh gen "EOF inside frame header"
        | true ->
          let len =
            Char.code (Bytes.get hdr 0)
            lor (Char.code (Bytes.get hdr 1) lsl 8)
            lor (Char.code (Bytes.get hdr 2) lsl 16)
            lor (Char.code (Bytes.get hdr 3) lsl 24)
          in
          if len > P.Bin.max_frame then
            fail_conn sh gen "oversized frame from shard"
          else
            let payload = Bytes.create len in
            (match read_exact fd payload 0 len with
             | exception _ -> fail_conn sh gen "shard stalled mid-frame"
             | false -> fail_conn sh gen "EOF inside frame payload"
             | true ->
               (match
                  P.Bin.decode_response (Bytes.unsafe_to_string payload)
                with
                | Error msg ->
                  fail_conn sh gen ("undecodable shard response: " ^ msg)
                | Ok resp ->
                  complete_response sh gen resp;
                  loop ())))
  in
  loop ()

(* Under [sm]. Raises on connection failure (caller turns it into
   [Error] and the health flag is already down). *)
let connect_locked ~timeout sh =
  match sh.s_fd with
  | Some fd -> fd
  | None ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       let addr =
         try Unix.inet_addr_of_string sh.spec.sh_host
         with Failure _ -> Unix.inet_addr_loopback
       in
       Unix.connect fd (Unix.ADDR_INET (addr, sh.spec.sh_port));
       (* scatter frames are small and latency-bound: never Nagle *)
       (try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ());
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
       sh.s_fd <- Some fd;
       sh.s_gen <- sh.s_gen + 1;
       sh.s_healthy <- true;
       ignore (Thread.create (shard_reader sh fd sh.s_gen) ());
       fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       sh.s_healthy <- false;
       raise e)

(* The single-writer drain loop. Whichever thread holds the
   [s_draining] token swaps the whole outgoing queue out under the
   mutex and writes it outside the lock; everything other threads
   enqueue during that in-flight write is picked up by the next swap.
   That window {e is} the adaptive batch: with coalescing on, >= 2
   queued messages leave as one [batch] frame (the shard drains it
   through [eval_subsets]); with it off they leave as individual
   frames in one writev-sized burst — either way exactly one thread
   writes, so frames never interleave. *)
let drain_outq sh =
  let rec loop () =
    let next =
      Mutex.protect sh.sm (fun () ->
          if Queue.is_empty sh.s_outq || sh.s_fd = None then begin
            sh.s_draining <- false;
            None
          end
          else begin
            let items = List.of_seq (Queue.to_seq sh.s_outq) in
            Queue.clear sh.s_outq;
            Some (items, Option.get sh.s_fd)
          end)
    in
    match next with
    | None -> ()
    | Some (items, fd) ->
      let mk (id, op) =
        { P.rq_id = Some (Json.Num (float_of_int id)); rq_op = op }
      in
      let bytes =
        match items with
        | [ one ] -> P.Bin.encode_request (mk one)
        | many when sh.s_coalesce ->
          Stage.incr "router:batches";
          Stage.incr ~by:(List.length many) "router:batched-msgs";
          P.Bin.encode_request
            { P.rq_id = None; rq_op = P.Batch (List.map mk many) }
        | many ->
          String.concat ""
            (List.map (fun item -> P.Bin.encode_request (mk item)) many)
      in
      (match write_all fd bytes with
       | () -> loop ()
       | exception _ ->
         let waiters =
           Mutex.protect sh.sm (fun () ->
               sh.s_draining <- false;
               fail_locked sh)
         in
         List.iter
           (fun w -> complete_waiter w (Error "shard write error"))
           waiters)
  in
  loop ()

(* Register the caller's waiter and queue one request for the shard;
   the caller becomes the drainer if nobody holds the token. Raises
   (like the dial it performs) on connection failure; waiting happens
   outside every lock. *)
let send ~timeout sh w req =
  let drain =
    Mutex.protect sh.sm (fun () ->
        let _fd = connect_locked ~timeout sh in
        let id = sh.s_next_id in
        sh.s_next_id <- id + 1;
        Hashtbl.replace sh.s_pending id w;
        Queue.push (id, req) sh.s_outq;
        if sh.s_draining then false
        else begin
          sh.s_draining <- true;
          true
        end)
  in
  if drain then drain_outq sh

let call ~timeout sh req =
  let w = new_waiter () in
  match send ~timeout sh w req with
  | exception e ->
    Error (Printf.sprintf "cannot reach shard %s: %s" (shard_name sh)
             (Printexc.to_string e))
  | () -> await w

(* Retry-once-then-degrade: the retry reconnects (send dials when the
   fd is gone); a second failure leaves the shard marked unhealthy
   for the health thread to revive. *)
let call_retry ~timeout sh req =
  match call ~timeout sh req with
  | Ok r -> Ok r
  | Error _ ->
    Stage.incr "router:shard-retry";
    call ~timeout sh req

(* ------------------------------------------------------------------ *)
(* Router state                                                        *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  cmutex : Mutex.t;
  mutable next_seq : int;
  mutable next_write : int;
  pending : (int, string) Hashtbl.t;
  mutable outstanding : int;
  mutable reader_done : bool;
  mutable dead : bool;
  mutable closed : bool;
}

type msg = Line of string | Frame of string | Broken of string

type job = Job of conn * int * msg | Quit

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  bound_port : int;
  shards : shard array;
  ranges : (shard * (int * int)) array;  (* range order = merge order *)
  sliced : bool;  (* shards serve range-sliced images, not full copies *)
  meta : int * int * int * int;  (* packages, apis, binaries, installs *)
  cache : (string, (P.reply, P.err) result) Lru.t option;
  rr : int Atomic.t;  (* round-robin cursor for forwarded ops *)
  queue : job Queue.t;
  qmutex : Mutex.t;
  not_empty : Condition.t;
  stop_flag : bool Atomic.t;
  shutdown_started : bool Atomic.t;
  accepted : int Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable workers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable health_thread : Thread.t option;
  fin_mutex : Mutex.t;
  fin_cv : Condition.t;
  mutable finished : bool;
}

(* Admission control: never blocks. [false] means the queue is full
   and the caller must shed. *)
let try_enqueue t job =
  Mutex.protect t.qmutex (fun () ->
      if Queue.length t.queue >= t.cfg.queue_bound then false
      else begin
        Queue.push job t.queue;
        Condition.signal t.not_empty;
        true
      end)

(* Shutdown control jobs bypass the bound — a full queue must never
   be able to strand a worker. *)
let enqueue_ctl t job =
  Mutex.protect t.qmutex (fun () ->
      Queue.push job t.queue;
      Condition.signal t.not_empty)

let dequeue t =
  Mutex.lock t.qmutex;
  while Queue.is_empty t.queue do
    Condition.wait t.not_empty t.qmutex
  done;
  let job = Queue.pop t.queue in
  Mutex.unlock t.qmutex;
  job

let queue_depth t = Mutex.protect t.qmutex (fun () -> Queue.length t.queue)

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let err kind msg = Error { P.e_kind = kind; e_msg = msg }

let healthy_count t =
  Array.fold_left (fun n sh -> if shard_healthy sh then n + 1 else n) 0 t.shards

(* One round of pipelined sends (every request is on the wire — and
   coalescible into one batch frame per shard — before any await)
   into a single gather cell, so the worker parks once and wakes once
   when the last partial lands, then a retry-once pass over whatever
   failed. Result order = [pairs] order. *)
let scatter_calls t pairs =
  let timeout = t.cfg.shard_timeout in
  let pairs_a = Array.of_list pairs in
  let g = new_gather (Array.length pairs_a) in
  Array.iteri
    (fun i (sh, req) ->
      let w = waiter_of g i in
      match send ~timeout sh w req with
      | () -> ()
      | exception _ ->
        complete_waiter w (Error ("cannot reach shard " ^ shard_name sh)))
    pairs_a;
  await_all g;
  Array.to_list
    (Array.mapi
       (fun i (sh, req) ->
         let final =
           match g.g_results.(i) with
           | Some (Ok r) -> Ok r
           | Some (Error _) | None ->
             Stage.incr "router:shard-retry";
             call ~timeout sh req
         in
         (sh, final))
       pairs_a)

(* Sum Partial_r numerators in [pieces] order over the common
   denominator. Any shard failing (after its retry) degrades the
   whole query: a partial sum is never returned. *)
let gather_partials t pieces =
  let results =
    scatter_calls t
      (List.map
         (fun (sh, req, _range) -> (sh, req))
         pieces)
  in
  let partials = ref [] and den = ref None and failure = ref None in
  List.iter
    (fun (sh, result) ->
      if !failure = None then
        match result with
        | Error msg ->
          failure :=
            Some
              (err P.degraded
                 (Printf.sprintf "shard %s unavailable: %s" (shard_name sh)
                    msg))
        | Ok { P.rs_result = Ok (P.Partial_r { num; den = d; _ }); _ } ->
          (match !den with
           | None -> den := Some d
           | Some d0 when d0 <> d ->
             failure :=
               Some
                 (err P.internal_error
                    (Printf.sprintf
                       "shard %s denominator %.17g disagrees with %.17g — \
                        shards serve different worlds"
                       (shard_name sh) d d0))
           | Some _ -> ());
          partials := num :: !partials
        | Ok { P.rs_result = Error e; _ } -> failure := Some (Error e)
        | Ok _ ->
          failure :=
            Some
              (err P.internal_error
                 (Printf.sprintf "shard %s answered the wrong reply shape"
                    (shard_name sh))))
    results;
  match !failure with
  | Some e -> Error e
  | None ->
    let num = List.fold_left ( +. ) 0.0 (List.rev !partials) in
    Ok (num, Option.value ~default:0.0 !den)

(* Scatter one completeness query: every shard gets its fixed package
   range in one round of pipelined sends, then the partials merge in
   range order over the common denominator — the float regrouping of
   [Query.eval_syscalls_sharded], so the answer is within 1e-12 of a
   single-process evaluation. *)
let scatter t ~syscalls ~phase =
  let pieces =
    Array.to_list t.ranges
    |> List.map (fun (sh, (lo, hi)) ->
           (sh, P.Partial_completeness { syscalls; phase; lo; hi }, (lo, hi)))
  in
  match gather_partials t pieces with
  | Error e -> e
  | Ok (num, den) ->
    Ok
      (P.Completeness_r
         {
           n_syscalls = List.length syscalls;
           phase;
           completeness = (if den = 0.0 then 0.0 else num /. den);
         })

(* A partial-completeness query against a sliced fleet: no single
   shard holds the whole [lo, hi) sweep, so it scatters to the shards
   whose slices intersect it — each evaluates exactly its
   intersection, bit-identically to the same range on a full image —
   and the numerators sum in range order. An empty (or fully
   out-of-range) request still needs the world denominator, which any
   shard answers from an empty sweep. *)
let scatter_partial t ~syscalls ~phase ~lo ~hi =
  let pieces =
    Array.to_list t.ranges
    |> List.filter_map (fun (sh, (slo, shi)) ->
           let ilo = max lo slo and ihi = min hi shi in
           if ilo < ihi then
             Some
               ( sh,
                 P.Partial_completeness { syscalls; phase; lo = ilo; hi = ihi },
                 (ilo, ihi) )
           else None)
  in
  let pieces =
    match pieces with
    | [] ->
      [ ( t.shards.(0),
          P.Partial_completeness { syscalls; phase; lo = 0; hi = 0 },
          (0, 0) ) ]
    | ps -> ps
  in
  match gather_partials t pieces with
  | Error e -> e
  | Ok (num, den) -> Ok (P.Partial_r { lo; hi; num; den })

(* Dependents against a sliced fleet: each shard lists only its own
   slice's packages, so the rows concatenate across every shard and
   re-sort with the exact [Query.dependents_ranked] comparator
   (probability descending, name ascending on ties — names are
   unique, so the merged order is the single-process order); the
   per-shard [limit] keeps each reply small and is re-applied to the
   merged rows (top-k of a union is the top-k of per-shard
   top-ks). *)
let scatter_dependents t ~api ~limit =
  let results =
    scatter_calls t
      (Array.to_list t.ranges
      |> List.map (fun (sh, _) -> (sh, P.Dependents { api; limit })))
  in
  let rows = ref [] and name = ref None and failure = ref None in
  List.iter
    (fun (sh, result) ->
      if !failure = None then
        match result with
        | Error msg ->
          failure :=
            Some
              (err P.degraded
                 (Printf.sprintf "shard %s unavailable: %s" (shard_name sh)
                    msg))
        | Ok { P.rs_result = Ok (P.Dependents_r { api; packages }); _ } ->
          name := Some api;
          rows := packages :: !rows
        | Ok { P.rs_result = Error e; _ } -> failure := Some (Error e)
        | Ok _ ->
          failure :=
            Some
              (err P.internal_error
                 (Printf.sprintf "shard %s answered the wrong reply shape"
                    (shard_name sh))))
    results;
  match !failure with
  | Some e -> e
  | None ->
    let merged =
      List.concat (List.rev !rows)
      |> List.sort (fun (na, pa) (nb, pb) ->
             match compare pb pa with 0 -> compare na nb | c -> c)
    in
    let merged =
      match limit with
      | None -> merged
      | Some k -> List.filteri (fun i _ -> i < k) merged
    in
    Ok
      (P.Dependents_r
         { api = Option.value ~default:api !name; packages = merged })

(* Point ops go to one shard, round-robin over the healthy ones; with
   none healthy, one reconnection attempt is made (the call dials on
   demand) before degrading. *)
let forward t req =
  let n = Array.length t.shards in
  let start = Atomic.fetch_and_add t.rr 1 in
  let rec pick k =
    if k >= n then t.shards.(start mod n)
    else
      let sh = t.shards.((start + k) mod n) in
      if shard_healthy sh then sh else pick (k + 1)
  in
  let sh = pick 0 in
  match call_retry ~timeout:t.cfg.shard_timeout sh req with
  | Ok resp -> resp.P.rs_result
  | Error msg ->
    err P.degraded
      (Printf.sprintf "shard %s unavailable: %s" (shard_name sh) msg)

let router_gauges t () =
  [
    ("queue_depth", float_of_int (queue_depth t));
    ("queue_capacity", float_of_int t.cfg.queue_bound);
    ("workers", float_of_int t.cfg.workers);
    ("connections", float_of_int (Atomic.get t.accepted));
    ("shards", float_of_int (Array.length t.shards));
    ("shards_healthy", float_of_int (healthy_count t));
    ("shed", float_of_int (Stage.counter "router:shed"));
    ("batching", if t.cfg.batching then 1.0 else 0.0);
    ("batches", float_of_int (Stage.counter "router:batches"));
    ("sliced", if t.sliced then 1.0 else 0.0);
  ]
  @
  match t.cache with
  | None -> []
  | Some c ->
    let hits, misses = Lru.stats c in
    [
      ("cache_entries", float_of_int (Lru.length c));
      ("cache_hits", float_of_int hits);
      ("cache_misses", float_of_int misses);
    ]

(* What the router-side LRU may hold: point ops that forward to a
   single shard — pure functions of the fleet's (shared, immutable)
   index. Scatter ops never cache, even though they are just as
   deterministic: a cached scatter would keep answering [Ok] while a
   shard is down, hiding exactly the degradation the scatter's
   all-shards dependency exists to surface. (On a sliced fleet
   [dependents] and [partial-completeness] scatter too, so their
   cacheability follows the partition.) Live-state ops never cache;
   neither do [batch] envelopes (their members would defeat the
   point-query hit rate the cache exists for). *)
let cacheable_op t = function
  | P.Importance _ | P.Top _ -> true
  | P.Dependents _ | P.Partial_completeness _ -> not t.sliced
  | P.Hello _ | P.Ping | P.Stats | P.Completeness _ | P.Batch _
  | P.Unknown _ ->
    false

(* Only deterministic results enter the cache: an [Ok] or a
   validation error is the same answer forever, but [degraded] /
   [overloaded] / [internal] describe a moment — caching one would
   keep answering it after the fleet recovered. *)
let cache_worthy = function
  | Ok _ -> true
  | Error { P.e_kind; _ } ->
    e_kind = P.bad_api || e_kind = P.bad_phase || e_kind = P.bad_request
    || e_kind = P.unknown_op

let rec handle_req t (req : P.req) : (P.reply, P.err) result =
  match req with
  | P.Hello versions ->
    (match P.negotiate versions with
     | Ok version -> Ok (P.Hello_r { version; codecs = P.codec_names })
     | Error (kind, msg) -> err kind msg)
  | P.Ping -> Ok P.Pong
  | P.Stats ->
    let pk, ap, bn, ins = t.meta in
    Ok
      (P.Stats_r
         {
           st_packages = pk;
           st_apis = ap;
           st_binaries = bn;
           st_installs = ins;
           st_gauges = router_gauges t ();
           st_hists = Histogram.all ();
         })
  | P.Completeness { syscalls; phase } -> scatter t ~syscalls ~phase
  | P.Dependents { api; limit } when t.sliced ->
    scatter_dependents t ~api ~limit
  | P.Partial_completeness { syscalls; phase; lo; hi } when t.sliced ->
    scatter_partial t ~syscalls ~phase ~lo ~hi
  | P.Importance _ | P.Top _ | P.Dependents _ | P.Partial_completeness _ ->
    forward t req
  | P.Batch reqs ->
    (* Client-side batches: answer each member (through the cache)
       and return the envelope — member order preserved, sub-ids
       echoed. *)
    Ok (P.Batch_r (List.map (handle_request t) reqs))
  | P.Unknown other ->
    err P.unknown_op (Printf.sprintf "unknown op %S" other)

and handle_timed t (request : P.request) : (P.reply, P.err) result =
  let name = "router:" ^ P.op_name request.P.rq_op in
  let t0 = Stage.now_ns () in
  let result = Stage.time name (fun () -> handle_req t request.P.rq_op) in
  Histogram.observe_ns name (Int64.to_int (Int64.sub (Stage.now_ns ()) t0));
  result

and handle_request t (request : P.request) : P.response =
  let result =
    match t.cache with
    | Some c when cacheable_op t request.P.rq_op ->
      let key = P.canonical_key request in
      (match Lru.find c key with
       | Some r ->
         Stage.incr "router:cache-hit";
         r
       | None ->
         let r = handle_timed t request in
         if cache_worthy r then Lru.add c key r;
         r)
    | _ -> handle_timed t request
  in
  { P.rs_id = request.P.rq_id; rs_result = result }

let answer t msg =
  Stage.incr "router:requests";
  match msg with
  | Line line ->
    let response =
      match Json.parse line with
      | Error m -> P.error_response ~kind:P.parse_error m
      | Ok j ->
        (match P.request_of_json j with
         | Error e -> e
         | Ok request -> handle_request t request)
    in
    Json.to_string (P.json_of_response response) ^ "\n"
  | Frame payload ->
    let response =
      match P.Bin.decode_request payload with
      | Error m -> P.error_response ~kind:P.parse_error m
      | Ok request -> handle_request t request
    in
    P.Bin.encode_response response
  | Broken m ->
    P.Bin.encode_response (P.error_response ~kind:P.parse_error m)

(* The shed response still flows through the resequencer, so a client
   pipelining requests sees its responses — served and shed alike —
   in send order. The id is recovered with a best-effort parse (the
   queue is full; the worker pool never sees this request). *)
let shed_response msg =
  match msg with
  | Line line ->
    let id =
      match Json.parse line with
      | Ok j -> Json.member "id" j
      | Error _ -> None
    in
    Json.to_string
      (P.json_of_response
         (P.error_response ?id ~kind:P.overloaded "router queue full"))
    ^ "\n"
  | Frame payload ->
    let id =
      match P.Bin.decode_request payload with
      | Ok r -> r.P.rq_id
      | Error _ -> None
    in
    P.Bin.encode_response
      (P.error_response ?id ~kind:P.overloaded "router queue full")
  | Broken m ->
    P.Bin.encode_response (P.error_response ~kind:P.parse_error m)

(* ------------------------------------------------------------------ *)
(* Client connections (the Server front, with shedding)                *)
(* ------------------------------------------------------------------ *)

let maybe_close conn =
  if conn.reader_done && conn.outstanding = 0 && not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let deliver conn seq bytes =
  Mutex.lock conn.cmutex;
  Hashtbl.replace conn.pending seq bytes;
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt conn.pending conn.next_write with
    | None -> continue := false
    | Some response ->
      Hashtbl.remove conn.pending conn.next_write;
      conn.next_write <- conn.next_write + 1;
      conn.outstanding <- conn.outstanding - 1;
      if not (conn.dead || conn.closed) then (
        try write_all conn.fd response
        with Unix.Unix_error _ | Sys_error _ -> conn.dead <- true)
  done;
  maybe_close conn;
  Mutex.unlock conn.cmutex

let submit t conn msg =
  Mutex.lock conn.cmutex;
  let seq = conn.next_seq in
  conn.next_seq <- seq + 1;
  conn.outstanding <- conn.outstanding + 1;
  Mutex.unlock conn.cmutex;
  if not (try_enqueue t (Job (conn, seq, msg))) then begin
    Stage.incr "router:shed";
    deliver conn seq (shed_response msg)
  end

let json_reader t conn ic ~first =
  (match first with
   | Some line when String.trim line <> "" -> submit t conn (Line line)
   | _ -> ());
  let continue = ref true in
  while !continue do
    match In_channel.input_line ic with
    | None -> continue := false
    | Some line -> if String.trim line <> "" then submit t conn (Line line)
  done

let binary_reader t conn ic =
  let rec go input =
    match input ic with
    | Ok payload ->
      submit t conn (Frame payload);
      go P.Bin.input_frame
    | Error `Eof -> ()
    | Error (`Bad msg) -> submit t conn (Broken msg)
  in
  go P.Bin.input_frame_body

let client_reader t conn () =
  let ic = Unix.in_channel_of_descr conn.fd in
  (try
     match input_char ic with
     | exception End_of_file -> ()
     | c when c = P.Bin.magic -> binary_reader t conn ic
     | '\n' -> json_reader t conn ic ~first:None
     | c ->
       let rest = Option.value ~default:"" (In_channel.input_line ic) in
       json_reader t conn ic ~first:(Some (String.make 1 c ^ rest))
   with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.lock conn.cmutex;
  conn.reader_done <- true;
  maybe_close conn;
  Mutex.unlock conn.cmutex

let worker t () =
  let rec go () =
    match dequeue t with
    | Quit -> ()
    | Job (conn, seq, msg) ->
      let response =
        try answer t msg
        with e ->
          let r =
            P.error_response ~kind:P.internal_error (Printexc.to_string e)
          in
          (match msg with
           | Line _ -> Json.to_string (P.json_of_response r) ^ "\n"
           | Frame _ | Broken _ -> P.Bin.encode_response r)
      in
      deliver conn seq response;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let port t = t.bound_port
let connections_served t = Atomic.get t.accepted
let n_shards t = Array.length t.shards
let healthy_shards t = healthy_count t

let health_loop t () =
  while not (Atomic.get t.stop_flag) do
    (* Sleep in small steps so shutdown is prompt. *)
    let slept = ref 0.0 in
    while !slept < t.cfg.health_period && not (Atomic.get t.stop_flag) do
      Unix.sleepf 0.05;
      slept := !slept +. 0.05
    done;
    if not (Atomic.get t.stop_flag) then
      Array.iter
        (fun sh ->
          match call ~timeout:t.cfg.shard_timeout sh P.Ping with
          | Ok { P.rs_result = Ok P.Pong; _ } -> ()
          | Ok _ | Error _ -> ()
          (* failure already marked the shard unhealthy; a successful
             dial inside [call] already restored it *))
        t.shards
  done

let drain t =
  Mutex.lock t.conns_mutex;
  let conns = t.conns and readers = t.readers in
  Mutex.unlock t.conns_mutex;
  List.iter
    (fun c ->
      Mutex.lock c.cmutex;
      if not c.closed then (
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ());
      Mutex.unlock c.cmutex)
    conns;
  List.iter Thread.join readers;
  List.iter (fun _ -> enqueue_ctl t Quit) t.workers;
  List.iter Thread.join t.workers;
  (match t.health_thread with Some th -> Thread.join th | None -> ());
  List.iter
    (fun c ->
      Mutex.lock c.cmutex;
      if not c.closed then begin
        c.closed <- true;
        (try Unix.close c.fd with Unix.Unix_error _ -> ())
      end;
      Mutex.unlock c.cmutex)
    conns;
  Array.iter
    (fun sh ->
      let waiters =
        Mutex.protect sh.sm (fun () -> fail_locked sh)
      in
      List.iter (fun w -> complete_waiter w (Error "router stopped")) waiters)
    t.shards;
  Mutex.lock t.fin_mutex;
  t.finished <- true;
  Condition.broadcast t.fin_cv;
  Mutex.unlock t.fin_mutex

let track t fd =
  (* Small frames + closed-loop clients: without TCP_NODELAY, Nagle
     parks each response waiting for a delayed ACK. *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  Atomic.incr t.accepted;
  Stage.incr "router:connections";
  let conn =
    {
      fd;
      cmutex = Mutex.create ();
      next_seq = 0;
      next_write = 0;
      pending = Hashtbl.create 8;
      outstanding = 0;
      reader_done = false;
      dead = false;
      closed = false;
    }
  in
  Mutex.lock t.conns_mutex;
  t.conns <- conn :: t.conns;
  t.readers <- Thread.create (client_reader t conn) () :: t.readers;
  Mutex.unlock t.conns_mutex

let acceptor t () =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.lsock ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.lsock with
      | exception Unix.Unix_error _ -> ()
      | fd, _addr -> track t fd)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Accept what the backlog already holds before closing the listen
     socket: those clients' handshakes (and possibly requests) made it
     in, and closing now would RST them unanswered — the same
     last-gasp accept {!Server}'s acceptor does. *)
  let rec drain_backlog () =
    match Unix.select [ t.lsock ] [] [] 0.0 with
    | _ :: _, _, _ -> (
      match Unix.accept t.lsock with
      | exception Unix.Unix_error _ -> ()
      | fd, _addr ->
        track t fd;
        drain_backlog ())
    | _ -> ()
  in
  (try drain_backlog () with Unix.Unix_error _ -> ());
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  if Atomic.compare_and_set t.shutdown_started false true then drain t

let wait t =
  Mutex.lock t.fin_mutex;
  while not t.finished do
    Condition.wait t.fin_cv t.fin_mutex
  done;
  Mutex.unlock t.fin_mutex

let signal_stop t = Atomic.set t.stop_flag true

let stop t =
  Atomic.set t.stop_flag true;
  if Atomic.compare_and_set t.shutdown_started false true then begin
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    drain t
  end;
  wait t

let make_shard ~coalesce spec =
  {
    spec;
    sm = Mutex.create ();
    s_fd = None;
    s_healthy = false;
    s_gen = 0;
    s_next_id = 0;
    s_pending = Hashtbl.create 16;
    s_outq = Queue.create ();
    s_draining = false;
    s_coalesce = coalesce;
  }

(* A shard serving a range-sliced image reports its coverage in the
   [slice_lo]/[slice_hi] stats gauges; one serving a full image
   reports (or predates) the whole range. *)
let slice_of (s : P.stats_reply) =
  match
    ( List.assoc_opt "slice_lo" s.P.st_gauges,
      List.assoc_opt "slice_hi" s.P.st_gauges )
  with
  | Some lo, Some hi -> (int_of_float lo, int_of_float hi)
  | _ -> (0, s.P.st_packages)

(* Probe every shard with [stats]: all must answer, and all must
   report the same package count (the range partition depends on it)
   — refusing at startup beats merging sums over different worlds. *)
let probe_shards ~timeout shards =
  let stats =
    Array.map
      (fun sh ->
        match call_retry ~timeout sh P.Stats with
        | Ok { P.rs_result = Ok (P.Stats_r s); _ } -> Ok s
        | Ok { P.rs_result = Error e; _ } ->
          Error
            (Printf.sprintf "shard %s refused stats: %s" (shard_name sh)
               e.P.e_msg)
        | Ok _ ->
          Error
            (Printf.sprintf "shard %s answered the wrong reply shape"
               (shard_name sh))
        | Error msg ->
          Error
            (Printf.sprintf "shard %s unreachable: %s" (shard_name sh) msg))
      shards
  in
  let rec collect i acc =
    if i = Array.length stats then Ok (List.rev acc)
    else
      match stats.(i) with
      | Ok s -> collect (i + 1) (s :: acc)
      | Error msg -> Error msg
  in
  match collect 0 [] with
  | Error msg -> Error msg
  | Ok [] -> Error "no shards"
  | Ok (first :: rest as all) ->
    (match
       List.find_opt
         (fun (s : P.stats_reply) -> s.P.st_packages <> first.P.st_packages)
         rest
     with
     | Some s ->
       Error
         (Printf.sprintf
            "shards disagree on package count (%d vs %d) — different \
             snapshots?"
            first.P.st_packages s.P.st_packages)
     | None -> Ok (first, List.map slice_of all))

(* The scatter partition. Full-image shards get the
   [Query.shard_ranges] split of [0, n) (padded with empty ranges
   when shards outnumber packages). Sliced shards own their slices —
   which must then partition [0, n) exactly: scatter correctness
   depends on every package being swept once. *)
let plan_ranges n shards slices =
  if List.for_all (fun (lo, hi) -> lo = 0 && hi = n) slices then
    let ranges = Query.shard_ranges n (Array.length shards) in
    Ok
      ( false,
        Array.init (Array.length shards) (fun i ->
            ( shards.(i),
              match List.nth_opt ranges i with
              | Some r -> r
              | None -> (n, n) )) )
  else begin
    let owned =
      List.mapi (fun i slice -> (shards.(i), slice)) slices
      |> List.sort (fun (_, (a, _)) (_, (b, _)) -> compare a b)
    in
    let rec check at = function
      | [] -> if at = n then Ok () else Error at
      | (_, (lo, hi)) :: rest -> if lo <> at then Error at else check hi rest
    in
    match check 0 owned with
    | Ok () -> Ok (true, Array.of_list owned)
    | Error at ->
      Error
        (Printf.sprintf
           "shard slices do not partition the %d packages (gap or overlap \
            at %d) — re-cut the slices"
           n at)
  end

let start ?(config = default) specs =
  if specs = [] then Error "a fleet needs at least one shard"
  else begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let shards =
      Array.of_list (List.map (make_shard ~coalesce:config.batching) specs)
    in
    match probe_shards ~timeout:config.shard_timeout shards with
    | Error msg -> Error msg
    | Ok (meta, slices) ->
      match plan_ranges meta.P.st_packages shards slices with
      | Error msg -> Error msg
      | Ok (sliced, ranges) ->
      let addr =
        try Unix.inet_addr_of_string config.host
        with Failure _ -> Unix.inet_addr_loopback
      in
      (match
         let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         (try
            Unix.setsockopt lsock Unix.SO_REUSEADDR true;
            Unix.bind lsock (Unix.ADDR_INET (addr, config.port));
            Unix.listen lsock config.backlog
          with e ->
            (try Unix.close lsock with Unix.Unix_error _ -> ());
            raise e);
         lsock
       with
       | exception Unix.Unix_error (e, _, _) ->
         Error
           (Printf.sprintf "cannot listen on %s:%d: %s" config.host
              config.port (Unix.error_message e))
       | lsock ->
         let bound_port =
           match Unix.getsockname lsock with
           | Unix.ADDR_INET (_, p) -> p
           | _ -> config.port
         in
         let t =
           {
             cfg = config;
             lsock;
             bound_port;
             shards;
             ranges;
             sliced;
             meta =
               ( meta.P.st_packages,
                 meta.P.st_apis,
                 meta.P.st_binaries,
                 meta.P.st_installs );
             cache =
               (if config.cache_capacity > 0 then
                  Some (Lru.create ~capacity:config.cache_capacity)
                else None);
             rr = Atomic.make 0;
             queue = Queue.create ();
             qmutex = Mutex.create ();
             not_empty = Condition.create ();
             stop_flag = Atomic.make false;
             shutdown_started = Atomic.make false;
             accepted = Atomic.make 0;
             conns_mutex = Mutex.create ();
             conns = [];
             readers = [];
             workers = [];
             accept_thread = None;
             health_thread = None;
             fin_mutex = Mutex.create ();
             fin_cv = Condition.create ();
             finished = false;
           }
         in
         t.workers <-
           List.init (max 1 config.workers) (fun _ ->
               Thread.create (worker t) ());
         t.health_thread <- Some (Thread.create (health_loop t) ());
         t.accept_thread <- Some (Thread.create (acceptor t) ());
         Ok t)
  end
