(** Scatter/gather front-end for a serving fleet — the [lapis fleet]
    surface. The router listens like a single {!Server} (same
    {!Protocol}, both codecs, per-connection response ordering) but
    owns no index: behind it, N shard processes each serve the full
    index over TCP, and the router turns one [completeness] request
    into N [partial-completeness] requests — one contiguous package
    range per shard, the exact {!Query.shard_ranges} partition — and
    merges the partial sums in range order over the shared
    denominator. That is the same float regrouping
    {!Query.eval_syscalls_sharded} performs in-process, so a routed
    answer is within accumulation noise ([<= 1e-12] in the test
    suite) of a single-process one; every shard's denominator is
    asserted equal before merging, so shards serving different worlds
    answer a structured error instead of a silently wrong sum.

    Point ops ([importance], [top], [dependents],
    [partial-completeness]) forward to one shard, round-robin over
    the healthy ones. [ping], [hello] and [stats] answer locally —
    the router's [stats] reports its own gauges (queue depth and
    bound, shard health, shed count, batching and cache counters) and
    latency histograms.

    {b Sliced fleets.} When the shards serve range-sliced images
    (their [stats] gauges report proper [slice_lo]/[slice_hi]
    ranges), the slices must partition the package range exactly and
    become the scatter partition. [dependents] and
    [partial-completeness] then scatter too — each shard only knows
    its own packages — and merge with the single-process comparators;
    [importance] and [top] still forward anywhere, because the
    per-API planes are whole in every slice.

    {b Micro-batching.} All shard writes go through a per-shard
    single-writer drain: while one thread's write is in flight, every
    message other threads queue for that shard coalesces into one
    [batch] frame, which the shard evaluates as one [eval_subsets]
    pass. The batch size adapts to the load — idle fleets send single
    frames, saturated ones amortize framing and evaluation across the
    whole in-flight window.

    {b Caching.} Deterministic single-shard responses (results and
    validation errors, never [degraded]/[overloaded]) are memoized in
    a router-side LRU keyed on {!Protocol.canonical_key}, so repeated
    point queries answer without touching a shard. Scatter ops never
    cache — a cached scatter would keep answering while a shard is
    down, hiding the degradation its all-shards dependency exists to
    surface.

    {b Admission control.} The router's job queue is bounded and
    {e shedding}: when it is full, new requests are answered
    immediately with an ["overloaded"] error (in order, through the
    per-connection resequencer) instead of queueing unboundedly —
    under saturation the router degrades by refusing crisply, not by
    growing latency without bound.

    {b Degradation.} Shard connections are pipelined and correlated
    by router-assigned ids, with a receive timeout so a stalled shard
    fails its in-flight calls instead of hanging them. A failed call
    is retried once (reconnecting); if it fails again the shard is
    marked unhealthy and requests that need it answer a structured
    ["degraded"] error — never a partial sum, never a hang. A health
    thread pings shards every period and restores [healthy] when one
    comes back. *)

type shard_spec = { sh_host : string; sh_port : int }

val shard_spec_of_string : string -> (shard_spec, string) result
(** ["host:port"], or just ["port"] (host defaults to 127.0.0.1). *)

type config = {
  host : string;  (** bind address; default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port *)
  backlog : int;
  workers : int;
      (** gather threads — each scatters one request and waits on all
          its shard calls, so this bounds concurrent scatters *)
  queue_bound : int;
      (** admission-control bound; requests beyond it are shed with
          ["overloaded"] *)
  shard_timeout : float;
      (** seconds a shard call may take before it counts as failed *)
  health_period : float;  (** seconds between shard health pings *)
  batching : bool;
      (** coalesce same-shard messages queued during an in-flight
          write into one [batch] frame (the adaptive micro-batch);
          off, they still leave through the single-writer drain, one
          frame each *)
  cache_capacity : int;
      (** router-side LRU over deterministic responses, keyed on
          {!Protocol.canonical_key} — repeated point queries answer
          without crossing a shard wire. [0] disables. *)
}

val default : config
(** Loopback, ephemeral port, 8 workers, queue bound 256, 5s shard
    timeout, 1s health period, batching on, 512 cache entries. *)

type t

val start : ?config:config -> shard_spec list -> (t, string) result
(** Connect to every shard, probe each with [stats] (all must be
    reachable and must report the same package count — the range
    partition depends on it), then bind and start accepting.
    [Error] if the shard list is empty, a shard is unreachable, the
    shards disagree, or the socket cannot be bound. *)

val port : t -> int
val connections_served : t -> int

val n_shards : t -> int

val healthy_shards : t -> int
(** How many shards currently answer — what the health pings and the
    per-call failures left standing. *)

val signal_stop : t -> unit
(** Async-signal-safe stop request; pair with {!wait}. *)

val wait : t -> unit

val stop : t -> unit
(** Graceful shutdown: stop accepting, answer everything queued,
    close shard connections, join every thread. Idempotent. *)
