(** See the interface. The evaluator is deliberately the only place
    that touches {!Query}: the wire layer ({!Protocol}) cannot
    evaluate, and this module cannot parse — one direction each. *)

module Stage = Lapis_perf.Stage
module Histogram = Lapis_perf.Histogram
module P = Protocol

type cache = (string, (P.reply, P.err) result) Lru.t

let err kind msg = Error { P.e_kind = kind; e_msg = msg }

let rec eval ?(gauges = fun () -> []) idx (req : P.req) :
    (P.reply, P.err) result =
  match req with
  | P.Hello versions ->
    (match P.negotiate versions with
     | Ok version ->
       Ok (P.Hello_r { version; codecs = P.codec_names })
     | Error (kind, msg) -> err kind msg)
  | P.Ping -> Ok P.Pong
  | P.Stats ->
    Ok
      (P.Stats_r
         {
           st_packages = Query.n_packages idx;
           st_apis = Query.n_apis idx;
           st_binaries = Query.n_binaries idx;
           st_installs = Query.total_installs idx;
           st_gauges = gauges ();
           st_hists = Histogram.all ();
         })
  | P.Importance { api; phase } ->
    (match Query.api_of_string api with
     | Error msg -> err P.bad_api msg
     | Ok api ->
       Ok
         (P.Importance_r
            {
              api = Query.api_to_string api;
              phase;
              importance = Query.importance ~phase idx api;
              unweighted = Query.unweighted idx api;
            }))
  | P.Completeness { syscalls; phase } ->
    Ok
      (P.Completeness_r
         {
           n_syscalls = List.length syscalls;
           phase;
           completeness = Query.eval_syscalls ~phase idx syscalls;
         })
  | P.Partial_completeness { syscalls; phase; lo; hi } ->
    let num, den = Query.eval_syscalls_partial ~phase idx syscalls ~lo ~hi in
    Ok (P.Partial_r { lo; hi; num; den })
  | P.Top n -> Ok (P.Top_r (Query.top_n idx n))
  | P.Dependents { api; limit } ->
    (match Query.api_of_string api with
     | Error msg -> err P.bad_api msg
     | Ok api ->
       Ok
         (P.Dependents_r
            {
              api = Query.api_to_string api;
              packages = Query.dependents_ranked ?limit idx api;
            }))
  | P.Batch reqs ->
    (* The fleet router coalesces same-shard traffic into one frame;
       draining the completeness sub-requests through [eval_subsets]
       (grouped by phase — the evaluator is per-phase) is where the
       batch beats N single evals. Partial-completeness sub-requests
       evaluate in a plain loop — their per-item cost is far below a
       domain spawn, so the batch's win there is the amortized frame,
       job and resequencer work, not eval parallelism. Every other op
       evaluates singly. Responses come back in request order with
       sub-ids echoed. *)
    let reqs_a = Array.of_list reqs in
    let results = Array.make (Array.length reqs_a) None in
    let subsets = ref [] in
    let partials = ref [] in
    Array.iteri
      (fun i (r : P.request) ->
        match r.P.rq_op with
        | P.Completeness { syscalls; phase } ->
          let cur =
            try List.assoc phase !subsets with Not_found -> []
          in
          subsets :=
            (phase, (i, syscalls) :: cur)
            :: List.remove_assoc phase !subsets
        | P.Partial_completeness { syscalls; phase; lo; hi } ->
          partials := (i, syscalls, phase, lo, hi) :: !partials
        | op -> results.(i) <- Some (eval ~gauges idx op))
      reqs_a;
    List.iter
      (fun (i, syscalls, phase, lo, hi) ->
        let num, den =
          Query.eval_syscalls_partial ~phase idx syscalls ~lo ~hi
        in
        results.(i) <- Some (Ok (P.Partial_r { lo; hi; num; den })))
      (List.rev !partials);
    List.iter
      (fun (phase, items) ->
        let items = List.rev items in
        let vals = Query.eval_subsets ~phase idx (List.map snd items) in
        List.iter2
          (fun (i, syscalls) completeness ->
            results.(i) <-
              Some
                (Ok
                   (P.Completeness_r
                      {
                        n_syscalls = List.length syscalls;
                        phase;
                        completeness;
                      })))
          items vals)
      !subsets;
    Ok
      (P.Batch_r
         (Array.to_list
            (Array.mapi
               (fun i (r : P.request) ->
                 {
                   P.rs_id = r.P.rq_id;
                   rs_result =
                     (match results.(i) with
                      | Some r -> r
                      | None -> err P.internal_error "batch bookkeeping");
                 })
               reqs_a)))
  | P.Unknown other ->
    err P.unknown_op (Printf.sprintf "unknown op %S" other)

let handle_req ?gauges idx req =
  let name = "serve:" ^ P.op_name req in
  let t0 = Stage.now_ns () in
  let result = Stage.time name (fun () -> eval ?gauges idx req) in
  Histogram.observe_ns name (Int64.to_int (Int64.sub (Stage.now_ns ()) t0));
  result

(* [hello] negotiates per connection and [stats] samples live gauges
   and histograms — neither is a pure function of the index, so
   neither is memoized. [batch] is a container whose member set never
   repeats usefully — caching it would only evict real entries.
   Everything else (errors included) is. *)
let cacheable = function
  | P.Hello _ | P.Stats | P.Batch _ -> false
  | _ -> true

let handle_request ?cache ?gauges idx (request : P.request) : P.response =
  let result =
    match cache with
    | Some c when cacheable request.P.rq_op ->
      let key = P.canonical_key request in
      (match Lru.find c key with
       | Some r ->
         Stage.incr "serve:cache-hit";
         r
       | None ->
         let r = handle_req ?gauges idx request.P.rq_op in
         Lru.add c key r;
         r)
    | _ -> handle_req ?gauges idx request.P.rq_op
  in
  { P.rs_id = request.P.rq_id; rs_result = result }

let handle_line ?cache ?gauges idx (line : string) : string =
  Stage.incr "serve:requests";
  let response =
    match Json.parse line with
    | Error msg -> P.error_response ~kind:P.parse_error msg
    | Ok j ->
      (match P.request_of_json j with
       | Error error -> error
       | Ok request -> handle_request ?cache ?gauges idx request)
  in
  Json.to_string (P.json_of_response response)

let loop idx ic oc =
  let rec go () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      if String.trim line <> "" then begin
        Out_channel.output_string oc (handle_line idx line);
        Out_channel.output_char oc '\n';
        Out_channel.flush oc
      end;
      go ()
  in
  go ()
