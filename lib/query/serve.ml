(** Line-delimited JSON request/response loop over an index — the
    [lapis serve] surface. One request object per line on stdin, one
    response object per line on stdout; malformed input produces an
    error {e response}, never a crash or exit, so a misbehaving client
    cannot take the server down.

    Requests: [{"op": "...", ...}] with an optional ["id"] echoed back
    verbatim for correlation. Responses: [{"ok": true, ...}] or
    [{"ok": false, "error": {"kind": ..., "msg": ...}}]. The
    ["importance"] and ["completeness"] ops accept an optional
    ["phase"] field (["init"] | ["serving"] | ["all"], default
    ["all"]) selecting the temporal requirement sets the query
    evaluates against; the answering phase is echoed back.

    Every request increments the ["serve:requests"] counter and
    accumulates wall time under ["serve:<op>"] stages, which is what
    lets [lapis query --stats] prove a snapshot-backed run spent zero
    time in analysis. *)

module Stage = Lapis_perf.Stage

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let err kind msg =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ("error", Json.Obj [ ("kind", Json.Str kind); ("msg", Json.Str msg) ]);
    ]

let with_id request response =
  match (Json.member "id" request, response) with
  | Some id, Json.Obj fields -> Json.Obj (("id", id) :: fields)
  | _ -> response

let api_field request =
  match Json.member "api" request with
  | None -> Error (err "bad-request" "missing \"api\" field")
  | Some j ->
    (match Json.to_str j with
     | None -> Error (err "bad-request" "\"api\" must be a string")
     | Some s ->
       (match Query.api_of_string s with
        | Ok api -> Ok api
        | Error msg -> Error (err "bad-api" msg)))

(* Optional "phase" field; absent or "" means All. *)
let phase_field request =
  match Json.member "phase" request with
  | None -> Ok Query.All
  | Some j ->
    (match Json.to_str j with
     | None -> Error (err "bad-request" "\"phase\" must be a string")
     | Some s ->
       (match Query.phase_of_string s with
        | Ok ph -> Ok ph
        | Error msg -> Error (err "bad-phase" msg)))

let int_list_field request key =
  match Json.member key request with
  | None -> Error (err "bad-request" (Printf.sprintf "missing %S field" key))
  | Some j ->
    (match Json.to_list j with
     | None -> Error (err "bad-request" (Printf.sprintf "%S must be an array" key))
     | Some items ->
       let rec go acc = function
         | [] -> Ok (List.rev acc)
         | x :: rest ->
           (match Json.to_int x with
            | Some n -> go (n :: acc) rest
            | None ->
              Error
                (err "bad-request"
                   (Printf.sprintf "%S must contain integers" key)))
       in
       go [] items)

let ranked_json (r : Query.ranked) =
  Json.Obj
    [
      ("nr", Json.Num (float_of_int r.Query.rk_nr));
      ("name", Json.Str r.Query.rk_name);
      ("importance", Json.Num r.Query.rk_importance);
      ("unweighted_elf", Json.Num r.Query.rk_unweighted_elf);
    ]

let handle_request idx (request : Json.t) : Json.t =
  match Json.member "op" request with
  | None -> err "bad-request" "missing \"op\" field"
  | Some op_j ->
    (match Json.to_str op_j with
     | None -> err "bad-request" "\"op\" must be a string"
     | Some op ->
       Stage.time ("serve:" ^ op) @@ fun () ->
       (match op with
        | "ping" -> ok [ ("pong", Json.Bool true) ]
        | "stats" ->
          ok
            [
              ("n_packages", Json.Num (float_of_int (Query.n_packages idx)));
              ("n_apis", Json.Num (float_of_int (Query.n_apis idx)));
              ( "n_binaries",
                Json.Num (float_of_int (Query.n_binaries idx)) );
              ( "total_installs",
                Json.Num (float_of_int (Query.total_installs idx)) );
            ]
        | "importance" ->
          (match api_field request with
           | Error e -> e
           | Ok api ->
             (match phase_field request with
              | Error e -> e
              | Ok phase ->
                ok
                  [
                    ("api", Json.Str (Query.api_to_string api));
                    ("phase", Json.Str (Query.phase_to_string phase));
                    ( "importance",
                      Json.Num (Query.importance ~phase idx api) );
                    ("unweighted", Json.Num (Query.unweighted idx api));
                  ]))
        | "completeness" ->
          (match int_list_field request "syscalls" with
           | Error e -> e
           | Ok nrs ->
             (match phase_field request with
              | Error e -> e
              | Ok phase ->
                ok
                  [
                    ("n_syscalls", Json.Num (float_of_int (List.length nrs)));
                    ("phase", Json.Str (Query.phase_to_string phase));
                    ( "completeness",
                      Json.Num (Query.eval_syscalls ~phase idx nrs) );
                  ]))
        | "top" ->
          let n =
            match Json.member "n" request with
            | Some j -> Option.value ~default:10 (Json.to_int j)
            | None -> 10
          in
          ok
            [
              ( "syscalls",
                Json.Arr (List.map ranked_json (Query.top_n idx n)) );
            ]
        | "dependents" ->
          (match api_field request with
           | Error e -> e
           | Ok api ->
             let limit =
               Option.bind (Json.member "limit" request) Json.to_int
             in
             let rows = Query.dependents_ranked ?limit idx api in
             ok
               [
                 ("api", Json.Str (Query.api_to_string api));
                 ( "packages",
                   Json.Arr
                     (List.map
                        (fun (name, prob) ->
                          Json.Obj
                            [
                              ("package", Json.Str name);
                              ("prob", Json.Num prob);
                            ])
                        rows) );
               ])
        | other -> err "unknown-op" (Printf.sprintf "unknown op %S" other)))

(* Canonical form for cache keys: drop the correlation "id", sort every
   object's fields by name, serialize. Semantically identical requests
   collapse onto one key regardless of field order or id. *)
let rec canonical = function
  | Json.Obj fields ->
    Json.Obj
      (fields
      |> List.map (fun (k, v) -> (k, canonical v))
      |> List.sort (fun (a, _) (b, _) -> compare a b))
  | Json.Arr items -> Json.Arr (List.map canonical items)
  | x -> x

(* "phase" spellings that mean the All default. A request saying
   "phase": "all" (or "") must share a cache entry with one omitting
   the field entirely — they produce the same response. *)
let is_default_phase = function
  | Json.Str s -> (match Query.phase_of_string s with
                   | Ok Query.All -> true
                   | Ok _ | Error _ -> false)
  | _ -> false

let canonical_key request =
  let request =
    match request with
    | Json.Obj fields ->
      Json.Obj
        (List.filter
           (fun (k, v) ->
             k <> "id" && not (k = "phase" && is_default_phase v))
           fields)
    | x -> x
  in
  Json.to_string (canonical request)

let handle_line ?cache idx (line : string) : string =
  Stage.incr "serve:requests";
  let response =
    match Json.parse line with
    | Error msg -> err "parse" msg
    | Ok request ->
      let resp =
        match cache with
        | None -> handle_request idx request
        | Some c ->
          let key = canonical_key request in
          (match Lru.find c key with
           | Some r ->
             Stage.incr "serve:cache-hit";
             r
           | None ->
             let r = handle_request idx request in
             Lru.add c key r;
             r)
      in
      with_id request resp
  in
  Json.to_string response

let loop idx ic oc =
  let rec go () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      if String.trim line <> "" then begin
        Out_channel.output_string oc (handle_line idx line);
        Out_channel.output_char oc '\n';
        Out_channel.flush oc
      end;
      go ()
  in
  go ()
