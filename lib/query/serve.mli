(** Line-delimited JSON request/response protocol over a
    {!Query.t} — the [lapis serve] surface.

    Ops: [ping], [stats], [importance] (["api"]), [completeness]
    (["syscalls"]: array of numbers), [top] (["n"]), [dependents]
    (["api"], optional ["limit"]). An optional ["id"] field is echoed
    into the response. Malformed requests yield
    [{"ok": false, "error": {...}}] — the loop never raises and never
    exits on bad input. *)

val handle_request : Query.t -> Json.t -> Json.t
(** Answer one already-parsed request (timed under ["serve:<op>"]). *)

val canonical_key : Json.t -> string
(** A cache key equal for semantically identical requests: the request
    with its ["id"] stripped, a ["phase"] that spells the default
    ([""] or ["all"]) dropped (so the three spellings of "no phase
    filter" share one cache entry), and every object's fields sorted
    by name, serialized. Two requests with the same key get the same
    response (every op is a pure function of the index), which is
    what makes the response cache sound. *)

val handle_line : ?cache:(string, Json.t) Lru.t -> Query.t -> string -> string
(** Answer one raw request line; total. The returned string is a
    single-line JSON response without the trailing newline. With
    [cache], responses are memoized under {!canonical_key} (the
    ["id"] is attached after lookup, so correlation survives hits);
    parse errors are never cached. *)

val loop : Query.t -> in_channel -> out_channel -> unit
(** Serve until EOF, one request per line, flushing per response.
    Blank lines are ignored. *)
