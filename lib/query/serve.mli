(** The protocol evaluator: answers typed {!Protocol.req}s against a
    {!Query.t}, and wraps that in the line-delimited JSON loop that is
    the [lapis serve] stdin surface.

    All wire concerns — parsing, canonical spellings, error shapes,
    codecs — live in {!Protocol}; this module only evaluates. Every
    request accumulates wall time under the ["serve:<op>"] stage and a
    ["serve:<op>"] latency histogram, and bumps the
    ["serve:requests"] counter, which is what lets
    [lapis query --stats] prove a snapshot-backed run spent zero time
    in analysis. *)

type cache = (string, (Protocol.reply, Protocol.err) result) Lru.t
(** Response cache keyed on {!Protocol.canonical_key}. The value is
    the typed result, so JSON and binary connections share entries. *)

val handle_req :
  ?gauges:(unit -> (string * float) list) ->
  Query.t ->
  Protocol.req ->
  (Protocol.reply, Protocol.err) result
(** Answer one typed request (timed under ["serve:<op>"]).
    Evaluation-time validation (unknown API names, unsupported
    protocol versions, unknown ops) produces [Error]; it never raises.
    [gauges] is sampled by the [stats] op — the host injects
    point-in-time numbers (queue depth, cache hit counts, shard
    health) it alone knows; the per-stage latency histograms are
    appended from the {!Lapis_perf.Histogram} registry. *)

val handle_request :
  ?cache:cache ->
  ?gauges:(unit -> (string * float) list) ->
  Query.t ->
  Protocol.request ->
  Protocol.response
(** {!handle_req} plus id correlation and memoization. With [cache],
    results are memoized under {!Protocol.canonical_key} — except
    [hello] and [stats], whose answers depend on live state. *)

val handle_line :
  ?cache:cache ->
  ?gauges:(unit -> (string * float) list) ->
  Query.t ->
  string ->
  string
(** Answer one raw JSON request line; total. The returned string is a
    single-line JSON response without the trailing newline. Parse
    errors are never cached. Bumps ["serve:requests"]. *)

val loop : Query.t -> in_channel -> out_channel -> unit
(** Serve line-delimited JSON until EOF, flushing per response. Blank
    lines are ignored. *)
