(** TCP serving: reader threads parse line/frame boundaries, worker
    domains evaluate, responses re-sequence per connection. See the
    interface for the architecture; the concurrency invariants are:

    - a connection's mutable state ([next_seq], [outstanding],
      [pending], [next_write], flags) is only touched under its own
      mutex;
    - the job queue is a bounded Mutex/Condition queue — readers block
      when it fills (back-pressure toward the sockets), workers block
      when it drains;
    - the index and the cache are the only structures shared by all
      workers, and both are safe by construction (immutable / mutex'd);
      they live in an epoch behind an atomic pointer so {!reload} can
      swap them without touching connections (pin protocol below);
    - shutdown runs exactly once (an [Atomic] compare-and-set), either
      on the thread that called {!stop} or on the accept thread after
      a {!signal_stop}, and joins everything before declaring the
      server finished. *)

module Stage = Lapis_perf.Stage
module P = Protocol

type config = {
  host : string;
  port : int;
  backlog : int;
  workers : int option;
  queue_bound : int option;
  cache_capacity : int;
}

let default =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    workers = None;
    queue_bound = None;
    cache_capacity = 1024;
  }

type conn = {
  fd : Unix.file_descr;
  cmutex : Mutex.t;
  mutable next_seq : int;  (* next sequence number the reader assigns *)
  mutable next_write : int;  (* next sequence number to go on the wire *)
  pending : (int, string) Hashtbl.t;  (* finished out-of-order responses *)
  mutable outstanding : int;  (* enqueued and not yet written *)
  mutable reader_done : bool;
  mutable dead : bool;  (* write failed; drop the rest silently *)
  mutable closed : bool;
}

(* What a reader hands the pool: a JSON line, a binary frame payload,
   or an unrecoverable framing error (answered, then the connection's
   read side is done). The response bytes are fully formed by the
   worker — newline included for JSON, frame included for binary — so
   [deliver] is codec-blind. *)
type msg = Line of string | Frame of string | Broken of string

type job = Job of conn * int * msg | Quit

(* One index + its response cache, immutable once published. Workers
   pin the current epoch for the duration of a single request; reload
   publishes a successor and waits for the old epoch's pin count to
   drain, so an epoch's cache can never answer a request evaluated
   against a different index. *)
type epoch = {
  ep_id : int;
  ep_idx : Query.t;
  ep_cache : Serve.cache option;
  ep_inflight : int Atomic.t;
}

type t = {
  lsock : Unix.file_descr;
  bound_port : int;
  epoch : epoch Atomic.t;
  cache_capacity : int;
  n_workers : int;
  reload_mutex : Mutex.t;
  queue : job Queue.t;
  qcap : int;
  qmutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  stop_flag : bool Atomic.t;
  shutdown_started : bool Atomic.t;
  accepted : int Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable workers : unit Domain.t list;
  mutable accept_thread : Thread.t option;
  fin_mutex : Mutex.t;
  fin_cv : Condition.t;
  mutable finished : bool;
}

(* ------------------------------------------------------------------ *)
(* Bounded job queue                                                   *)
(* ------------------------------------------------------------------ *)

let enqueue t job =
  Mutex.lock t.qmutex;
  while Queue.length t.queue >= t.qcap do
    Condition.wait t.not_full t.qmutex
  done;
  Queue.push job t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.qmutex

let dequeue t =
  Mutex.lock t.qmutex;
  while Queue.is_empty t.queue do
    Condition.wait t.not_empty t.qmutex
  done;
  let job = Queue.pop t.queue in
  Condition.signal t.not_full;
  Mutex.unlock t.qmutex;
  job

let queue_depth t = Mutex.protect t.qmutex (fun () -> Queue.length t.queue)

(* ------------------------------------------------------------------ *)
(* Per-connection plumbing                                             *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Under [cmutex]. The fd closes exactly once, when the reader has hit
   EOF and every accepted request has been answered. *)
let maybe_close conn =
  if conn.reader_done && conn.outstanding = 0 && not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Park the finished response, then flush the contiguous run starting
   at [next_write] — this is what keeps each client's responses in its
   own send order while the pool finishes jobs in any order. *)
let deliver conn seq bytes =
  Mutex.lock conn.cmutex;
  Hashtbl.replace conn.pending seq bytes;
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt conn.pending conn.next_write with
    | None -> continue := false
    | Some response ->
      Hashtbl.remove conn.pending conn.next_write;
      conn.next_write <- conn.next_write + 1;
      conn.outstanding <- conn.outstanding - 1;
      if not (conn.dead || conn.closed) then (
        try write_all conn.fd response
        with Unix.Unix_error _ | Sys_error _ -> conn.dead <- true)
  done;
  maybe_close conn;
  Mutex.unlock conn.cmutex

let submit t conn msg =
  Mutex.lock conn.cmutex;
  let seq = conn.next_seq in
  conn.next_seq <- seq + 1;
  conn.outstanding <- conn.outstanding + 1;
  Mutex.unlock conn.cmutex;
  enqueue t (Job (conn, seq, msg))

let json_reader t conn ic ~first =
  (match first with
   | Some line when String.trim line <> "" -> submit t conn (Line line)
   | _ -> ());
  let continue = ref true in
  while !continue do
    match In_channel.input_line ic with
    | None -> continue := false
    | Some line -> if String.trim line <> "" then submit t conn (Line line)
  done

let binary_reader t conn ic =
  (* The codec-detection byte was this connection's first frame's
     magic, so the first read starts after it. *)
  let rec go input =
    match input ic with
    | Ok payload ->
      submit t conn (Frame payload);
      go P.Bin.input_frame
    | Error `Eof -> ()
    | Error (`Bad msg) ->
      (* The stream cannot be resynchronized: answer once, stop
         reading. Responses already in flight still flush (the error
         takes a sequence number like any other message). *)
      submit t conn (Broken msg)
  in
  go P.Bin.input_frame_body

(* A connection speaks the codec its first byte announces: the binary
   magic can never start a JSON line, and a JSON request can never
   start with 0xB1. *)
let reader t conn () =
  let ic = Unix.in_channel_of_descr conn.fd in
  (try
     match input_char ic with
     | exception End_of_file -> ()
     | c when c = P.Bin.magic -> binary_reader t conn ic
     | '\n' -> json_reader t conn ic ~first:None
     | c ->
       let rest = Option.value ~default:"" (In_channel.input_line ic) in
       json_reader t conn ic ~first:(Some (String.make 1 c ^ rest))
   with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.lock conn.cmutex;
  conn.reader_done <- true;
  maybe_close conn;
  Mutex.unlock conn.cmutex

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

(* The stats op samples these live — the serving state only the
   server knows. *)
let gauges t ep () =
  let base =
    [
      ("queue_depth", float_of_int (queue_depth t));
      ("queue_capacity", float_of_int t.qcap);
      ("workers", float_of_int t.n_workers);
      ("connections", float_of_int (Atomic.get t.accepted));
      ("epoch", float_of_int ep.ep_id);
      (* The package range this shard's per-package planes cover — how
         a fleet router learns its scatter partition from sliced
         shards. A full index reports the whole range. *)
      ("slice_lo", float_of_int (Query.slice_lo ep.ep_idx));
      ("slice_hi", float_of_int (Query.slice_hi ep.ep_idx));
    ]
  in
  match ep.ep_cache with
  | None -> base
  | Some c ->
    let hits, misses = Lru.stats c in
    base
    @ [
        ("cache_entries", float_of_int (Lru.length c));
        ("cache_hits", float_of_int hits);
        ("cache_misses", float_of_int misses);
      ]

let internal_error_json e =
  Json.to_string
    (P.json_of_response
       (P.error_response ~kind:P.internal_error (Printexc.to_string e)))
  ^ "\n"

let answer t ep msg =
  let gauges = gauges t ep in
  match msg with
  | Line line ->
    Serve.handle_line ?cache:ep.ep_cache ~gauges ep.ep_idx line ^ "\n"
  | Frame payload ->
    Stage.incr "serve:requests";
    let response =
      match P.Bin.decode_request payload with
      | Error msg -> P.error_response ~kind:P.parse_error msg
      | Ok request ->
        Serve.handle_request ?cache:ep.ep_cache ~gauges ep.ep_idx request
    in
    P.Bin.encode_response response
  | Broken msg ->
    P.Bin.encode_response (P.error_response ~kind:P.parse_error msg)

(* Pin the current epoch: bump its in-flight count, then re-check the
   pointer. If a reload won the race between the read and the bump,
   the count we incremented may already have been observed as drained,
   so undo and retry against the new pointer. After this returns, the
   drain loop in [reload] cannot pass until we unpin. *)
let rec pin_epoch t =
  let ep = Atomic.get t.epoch in
  Atomic.incr ep.ep_inflight;
  if Atomic.get t.epoch == ep then ep
  else begin
    Atomic.decr ep.ep_inflight;
    pin_epoch t
  end

let worker t () =
  let rec go () =
    match dequeue t with
    | Quit -> ()
    | Job (conn, seq, msg) ->
      let ep = pin_epoch t in
      (* [answer] is total; the catch-all is the never-crash
         contract's last line of defense for the whole pool. *)
      let response =
        try answer t ep msg
        with e -> (
          match msg with
          | Line _ -> internal_error_json e
          | Frame _ | Broken _ ->
            P.Bin.encode_response
              (P.error_response ~kind:P.internal_error (Printexc.to_string e)))
      in
      Atomic.decr ep.ep_inflight;
      deliver conn seq response;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

(* Runs at most once; the accept thread is already gone (we are either
   past [Thread.join] in [stop] or on the accept thread itself after
   its loop exited), so [t.conns] cannot grow any more. *)
let drain t =
  Mutex.lock t.conns_mutex;
  let conns = t.conns and readers = t.readers in
  Mutex.unlock t.conns_mutex;
  (* Half-close: readers consume what clients already sent, then see
     EOF. Nothing accepted is dropped. *)
  List.iter
    (fun c ->
      Mutex.lock c.cmutex;
      if not c.closed then (
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ());
      Mutex.unlock c.cmutex)
    conns;
  List.iter Thread.join readers;
  (* Every job is in the queue now; a Quit per worker lets the pool
     finish the backlog first (the queue is FIFO). *)
  List.iter (fun _ -> enqueue t Quit) t.workers;
  List.iter Domain.join t.workers;
  List.iter
    (fun c ->
      Mutex.lock c.cmutex;
      if not c.closed then begin
        c.closed <- true;
        (try Unix.close c.fd with Unix.Unix_error _ -> ())
      end;
      Mutex.unlock c.cmutex)
    conns;
  Mutex.lock t.fin_mutex;
  t.finished <- true;
  Condition.broadcast t.fin_cv;
  Mutex.unlock t.fin_mutex

let track t fd =
  (* Request/response frames are small; without TCP_NODELAY, Nagle
     holds a response frame back waiting for the client's delayed ACK
     — tens of ms of idle on every exchange of a closed-loop client. *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  Atomic.incr t.accepted;
  Stage.incr "serve:connections";
  let conn =
    {
      fd;
      cmutex = Mutex.create ();
      next_seq = 0;
      next_write = 0;
      pending = Hashtbl.create 8;
      outstanding = 0;
      reader_done = false;
      dead = false;
      closed = false;
    }
  in
  Mutex.lock t.conns_mutex;
  t.conns <- conn :: t.conns;
  t.readers <- Thread.create (reader t conn) () :: t.readers;
  Mutex.unlock t.conns_mutex

let acceptor t () =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.lsock ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.lsock with
      | exception Unix.Unix_error _ -> ()
      | fd, _addr -> track t fd)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* The backlog may hold handshaken connections whose requests are
     already queued — their clients' writes "made it in", and closing
     the listening socket now would RST them unanswered. Accept
     whatever is pending so the drain below serves it. *)
  let rec drain_backlog () =
    match Unix.select [ t.lsock ] [] [] 0.0 with
    | _ :: _, _, _ -> (
      match Unix.accept t.lsock with
      | exception Unix.Unix_error _ -> ()
      | fd, _addr ->
        track t fd;
        drain_backlog ())
    | _ -> ()
  in
  (try drain_backlog () with Unix.Unix_error _ -> ());
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  (* A signal_stop with nobody in [stop] still needs the drain to run
     somewhere; first claimant does it. *)
  if Atomic.compare_and_set t.shutdown_started false true then drain t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let port t = t.bound_port
let connections_served t = Atomic.get t.accepted
let epoch_id t = (Atomic.get t.epoch).ep_id

let make_epoch ~id ~cache_capacity idx =
  {
    ep_id = id;
    ep_idx = idx;
    ep_cache =
      (if cache_capacity > 0 then Some (Lru.create ~capacity:cache_capacity)
       else None);
    ep_inflight = Atomic.make 0;
  }

let reload t idx =
  Mutex.lock t.reload_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.reload_mutex)
    (fun () ->
      let old = Atomic.get t.epoch in
      let fresh =
        make_epoch ~id:(old.ep_id + 1) ~cache_capacity:t.cache_capacity idx
      in
      Atomic.set t.epoch fresh;
      (* Every pin taken after the store above lands on [fresh]; a pin
         racing the store either saw the new pointer (and retried onto
         [fresh]) or is counted here. So once the count reaches zero it
         stays zero, and no query references [old] any more. *)
      while Atomic.get old.ep_inflight > 0 do
        Unix.sleepf 0.001
      done;
      Stage.incr "serve:reloads")

let wait t =
  Mutex.lock t.fin_mutex;
  while not t.finished do
    Condition.wait t.fin_cv t.fin_mutex
  done;
  Mutex.unlock t.fin_mutex

let signal_stop t = Atomic.set t.stop_flag true

let stop t =
  Atomic.set t.stop_flag true;
  (* Whoever wins the compare-and-set (us or the accept thread after a
     signal_stop) runs the drain; the other just waits. In the winning
     branch the accept thread lost, so joining it here is safe and
     guarantees the connection list is final before [drain] snapshots
     it. *)
  if Atomic.compare_and_set t.shutdown_started false true then begin
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    drain t
  end;
  wait t

let start ?(config = default) idx =
  let workers =
    match config.workers with
    | Some w -> max 1 w
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let qcap =
    match config.queue_bound with
    | Some b -> max 1 b
    | None -> max 128 (workers * 32)
  in
  (* A worker writing to a gone client must get EPIPE, not a fatal
     signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr =
    try Unix.inet_addr_of_string config.host
    with Failure _ -> Unix.inet_addr_loopback
  in
  match
    let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt lsock Unix.SO_REUSEADDR true;
       Unix.bind lsock (Unix.ADDR_INET (addr, config.port));
       Unix.listen lsock config.backlog
     with e ->
       (try Unix.close lsock with Unix.Unix_error _ -> ());
       raise e);
    lsock
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot listen on %s:%d: %s" config.host config.port
         (Unix.error_message e))
  | lsock ->
    let bound_port =
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> config.port
    in
    let t =
      {
        lsock;
        bound_port;
        epoch =
          Atomic.make
            (make_epoch ~id:0 ~cache_capacity:config.cache_capacity idx);
        cache_capacity = config.cache_capacity;
        n_workers = workers;
        reload_mutex = Mutex.create ();
        queue = Queue.create ();
        qcap;
        qmutex = Mutex.create ();
        not_empty = Condition.create ();
        not_full = Condition.create ();
        stop_flag = Atomic.make false;
        shutdown_started = Atomic.make false;
        accepted = Atomic.make 0;
        conns_mutex = Mutex.create ();
        conns = [];
        readers = [];
        workers = [];
        accept_thread = None;
        fin_mutex = Mutex.create ();
        fin_cv = Condition.create ();
        finished = false;
      }
    in
    t.workers <- List.init workers (fun _ -> Domain.spawn (worker t));
    t.accept_thread <- Some (Thread.create (acceptor t) ());
    Ok t
