(** Concurrent TCP front-end for the serve protocol — the
    [lapis serve --tcp PORT] surface, and the process behind each
    shard of a [lapis fleet].

    The wire protocol is {!Protocol}, in either codec: a connection's
    first byte routes it — [0xB1] means length-prefixed binary frames
    (the router↔shard codec), anything else means line-delimited JSON
    (the human/client codec, byte-compatible with the stdin loop of
    {!Serve}). Malformed input produces an error response, never a
    dropped connection; an unframeable binary stream answers one
    error frame and stops reading (binary framing cannot be
    resynchronized). On top of that, the server multiplexes any
    number of clients:

    - an accept loop hands each connection to a lightweight reader
      thread that only parses line/frame boundaries and enqueues jobs,
      so an idle or slow client never occupies a worker;
    - a fixed pool of worker {e domains} drains a bounded job queue and
      evaluates queries in parallel against the shared immutable
      {!Query.t} (evaluation allocates per-call scratch only, so no
      locking on the index);
    - responses are re-sequenced per connection before writing, so each
      client sees answers in the order it sent requests even though
      the pool completes them out of order;
    - one shared {!Lru} cache memoizes typed results across all
      clients and both codecs ({!Protocol.canonical_key} is
      codec-independent).

    The [stats] op answers with live gauges — queue depth and bound,
    connections, epoch id, cache entries/hits/misses — plus the
    per-op latency histograms from the {!Lapis_perf.Histogram}
    registry; this is the observability surface the fleet router
    scrapes.

    Shutdown ({!stop} or SIGINT wired by the CLI) is graceful: stop
    accepting, half-close every connection so readers drain what was
    already sent, finish every queued job, flush, join.

    {b Hot reload.} The index and the response cache live together in
    an {e epoch} behind an atomic pointer. {!reload} installs a new
    epoch — new index, fresh empty cache, next id — and returns once
    every query that started against the old epoch has finished.
    Connections are untouched: a client sees answers from the old
    index up to some point in its stream and from the new one after,
    never a mix within one response, never a stale cache entry (the
    cache is scoped to its epoch and dies with it). *)

type config = {
  host : string;  (** bind address; default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port, see {!port} *)
  backlog : int;
  workers : int option;
      (** evaluation domains; [None] means the machine's recommended
          domain count (at least 1) *)
  queue_bound : int option;
      (** job-queue capacity — readers block (back-pressure toward
          the sockets) when it fills; [None] means
          [max 128 (workers * 32)] *)
  cache_capacity : int;  (** response-cache entries; [0] disables *)
}
(** Everything {!start} needs beyond the index. Build one as
    [{ Server.default with workers = Some 4 }]. *)

val default : config
(** Loopback, ephemeral port, backlog 64, recommended workers,
    derived queue bound, cache of 1024. *)

type t

val start : ?config:config -> Query.t -> (t, string) result
(** Bind and start accepting (default config {!default}). Returns
    [Error] with a human-readable message if the socket cannot be
    bound. *)

val port : t -> int
(** The actually bound port — useful with [port = 0] in tests. *)

val stop : t -> unit
(** Graceful shutdown; blocks until every queued request is answered
    and every thread and worker domain has been joined. Idempotent. *)

val signal_stop : t -> unit
(** Async-signal-safe stop request (just an atomic flag store) — this
    is what the SIGINT handler calls; the accept loop notices within
    its poll interval. Pair with {!wait}. *)

val wait : t -> unit
(** Block until the server has fully shut down (via {!stop} or a
    {!signal_stop} noticed by the accept loop). *)

val connections_served : t -> int
(** Total connections accepted since start (for the smoke tests). *)

val reload : t -> Query.t -> unit
(** Atomically swap the serving index. Queries already executing
    finish against the epoch they started with — [reload] blocks
    until the last of them has delivered, so when it returns the old
    index is unreferenced and collectable. The response cache is
    replaced by a fresh one sized like the original [cache_capacity];
    no entry computed against the old index can ever answer a request
    after the swap. Serialized internally: concurrent reloads apply
    one at a time. Connections and queued-but-unstarted jobs are
    unaffected (the latter run against the new epoch). *)

val epoch_id : t -> int
(** Identifier of the currently serving epoch: 0 at {!start},
    incremented by each {!reload}. *)
