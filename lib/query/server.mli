(** Concurrent TCP front-end for the serve protocol — the
    [lapis serve --tcp PORT] surface.

    The wire protocol is exactly the stdin/stdout one ({!Serve}): one
    JSON request per line, one JSON response per line, malformed input
    produces an error response, never a dropped connection. On top of
    that, the server multiplexes any number of clients:

    - an accept loop hands each connection to a lightweight reader
      thread that only parses line boundaries and enqueues jobs, so an
      idle or slow client never occupies a worker;
    - a fixed pool of worker {e domains} drains a bounded job queue and
      evaluates queries in parallel against the shared immutable
      {!Query.t} (evaluation allocates per-call scratch only, so no
      locking on the index);
    - responses are re-sequenced per connection before writing, so each
      client sees answers in the order it sent requests even though
      the pool completes them out of order;
    - one shared {!Lru} cache memoizes responses across all clients.

    Shutdown ({!stop} or SIGINT wired by the CLI) is graceful: stop
    accepting, half-close every connection so readers drain what was
    already sent, finish every queued job, flush, join.

    {b Hot reload.} The index and the response cache live together in
    an {e epoch} behind an atomic pointer. {!reload} installs a new
    epoch — new index, fresh empty cache, next id — and returns once
    every query that started against the old epoch has finished.
    Connections are untouched: a client sees answers from the old
    index up to some point in its stream and from the new one after,
    never a mix within one response, never a stale cache entry (the
    cache is scoped to its epoch and dies with it). *)

type t

val start :
  ?host:string ->
  ?backlog:int ->
  ?workers:int ->
  ?cache_capacity:int ->
  port:int ->
  Query.t ->
  (t, string) result
(** Bind [host:port] (default host 127.0.0.1; port 0 picks an
    ephemeral port, see {!port}) and start accepting. [workers]
    defaults to the machine's recommended domain count (at least 1);
    [cache_capacity] (default 1024) sizes the shared response cache,
    [0] disables it. Returns [Error] with a human-readable message if
    the socket cannot be bound. *)

val port : t -> int
(** The actually bound port — useful with [~port:0] in tests. *)

val stop : t -> unit
(** Graceful shutdown; blocks until every queued request is answered
    and every thread and worker domain has been joined. Idempotent. *)

val signal_stop : t -> unit
(** Async-signal-safe stop request (just an atomic flag store) — this
    is what the SIGINT handler calls; the accept loop notices within
    its poll interval. Pair with {!wait}. *)

val wait : t -> unit
(** Block until the server has fully shut down (via {!stop} or a
    {!signal_stop} noticed by the accept loop). *)

val connections_served : t -> int
(** Total connections accepted since start (for the smoke tests). *)

val reload : t -> Query.t -> unit
(** Atomically swap the serving index. Queries already executing
    finish against the epoch they started with — [reload] blocks
    until the last of them has delivered, so when it returns the old
    index is unreferenced and collectable. The response cache is
    replaced by a fresh one sized like the original [cache_capacity];
    no entry computed against the old index can ever answer a request
    after the swap. Serialized internally: concurrent reloads apply
    one at a time. Connections and queued-but-unstarted jobs are
    unaffected (the latter run against the new epoch). *)

val epoch_id : t -> int
(** Identifier of the currently serving epoch: 0 at {!start},
    incremented by each {!reload}. *)
