(** Concurrent TCP front-end for the serve protocol — the
    [lapis serve --tcp PORT] surface.

    The wire protocol is exactly the stdin/stdout one ({!Serve}): one
    JSON request per line, one JSON response per line, malformed input
    produces an error response, never a dropped connection. On top of
    that, the server multiplexes any number of clients:

    - an accept loop hands each connection to a lightweight reader
      thread that only parses line boundaries and enqueues jobs, so an
      idle or slow client never occupies a worker;
    - a fixed pool of worker {e domains} drains a bounded job queue and
      evaluates queries in parallel against the shared immutable
      {!Query.t} (evaluation allocates per-call scratch only, so no
      locking on the index);
    - responses are re-sequenced per connection before writing, so each
      client sees answers in the order it sent requests even though
      the pool completes them out of order;
    - one shared {!Lru} cache memoizes responses across all clients.

    Shutdown ({!stop} or SIGINT wired by the CLI) is graceful: stop
    accepting, half-close every connection so readers drain what was
    already sent, finish every queued job, flush, join. *)

type t

val start :
  ?host:string ->
  ?backlog:int ->
  ?workers:int ->
  ?cache_capacity:int ->
  port:int ->
  Query.t ->
  (t, string) result
(** Bind [host:port] (default host 127.0.0.1; port 0 picks an
    ephemeral port, see {!port}) and start accepting. [workers]
    defaults to the machine's recommended domain count (at least 1);
    [cache_capacity] (default 1024) sizes the shared response cache,
    [0] disables it. Returns [Error] with a human-readable message if
    the socket cannot be bound. *)

val port : t -> int
(** The actually bound port — useful with [~port:0] in tests. *)

val stop : t -> unit
(** Graceful shutdown; blocks until every queued request is answered
    and every thread and worker domain has been joined. Idempotent. *)

val signal_stop : t -> unit
(** Async-signal-safe stop request (just an atomic flag store) — this
    is what the SIGINT handler calls; the accept loop notices within
    its poll interval. Pair with {!wait}. *)

val wait : t -> unit
(** Block until the server has fully shut down (via {!stop} or a
    {!signal_stop} noticed by the accept loop). *)

val connections_served : t -> int
(** Total connections accepted since start (for the smoke tests). *)
